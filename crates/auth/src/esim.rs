//! Remotely provisionable eSIMs.
//!
//! §4.2: *"The GSMA recently finalized specifications for remotely
//! provisionable e-SIMs, which allow for holding multiple identities on
//! different networks simultaneously... end users could simultaneously
//! maintain an open dLTE SIM alongside other secured SIMs."* An
//! [`EsimCard`] holds multiple [`Profile`]s — each a full [`Usim`] tagged
//! with the network it belongs to and whether its key is published — and
//! can switch between them or download new ones.

use crate::usim::Usim;
use crate::{Imsi, Key};
use serde::{Deserialize, Serialize};

/// How a profile's key is handled.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ProfileKind {
    /// Traditional carrier profile: key known only to SIM + home HSS.
    CarrierSecured,
    /// Open dLTE profile: key pre-published to the directory.
    OpenPublished,
}

/// One eSIM profile.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Profile {
    /// Home network identifier (PLMN-ish).
    pub network_id: u64,
    pub kind: ProfileKind,
    pub usim: Usim,
}

/// A multi-profile eSIM card.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EsimCard {
    profiles: Vec<Profile>,
    active: Option<usize>,
}

impl EsimCard {
    pub fn new() -> Self {
        EsimCard {
            profiles: Vec::new(),
            active: None,
        }
    }

    /// Download (provision) a profile; becomes active if it's the first.
    /// Duplicate IMSIs are rejected (a card can't hold two profiles with the
    /// same identity).
    pub fn download(&mut self, network_id: u64, kind: ProfileKind, imsi: Imsi, k: Key) -> bool {
        if self.profiles.iter().any(|p| p.usim.imsi == imsi) {
            return false;
        }
        self.profiles.push(Profile {
            network_id,
            kind,
            usim: Usim::new(imsi, k),
        });
        if self.active.is_none() {
            self.active = Some(self.profiles.len() - 1);
        }
        true
    }

    /// Delete a profile by IMSI. Deleting the active profile deactivates it.
    pub fn delete(&mut self, imsi: Imsi) -> bool {
        let Some(pos) = self.profiles.iter().position(|p| p.usim.imsi == imsi) else {
            return false;
        };
        self.profiles.remove(pos);
        self.active = match self.active {
            Some(a) if a == pos => None,
            Some(a) if a > pos => Some(a - 1),
            other => other,
        };
        true
    }

    /// Activate the profile with `imsi`.
    pub fn activate(&mut self, imsi: Imsi) -> bool {
        match self.profiles.iter().position(|p| p.usim.imsi == imsi) {
            Some(pos) => {
                self.active = Some(pos);
                true
            }
            None => false,
        }
    }

    /// The active profile.
    pub fn active_profile(&self) -> Option<&Profile> {
        self.active.map(|i| &self.profiles[i])
    }

    /// Mutable active profile (to run AKA on its USIM).
    pub fn active_profile_mut(&mut self) -> Option<&mut Profile> {
        self.active.map(move |i| &mut self.profiles[i])
    }

    /// Find the best profile for a network: exact network match first, then
    /// any open/published profile (the dLTE fallback — an open AP accepts
    /// any published identity).
    pub fn profile_for_network(
        &mut self,
        network_id: u64,
        network_is_open: bool,
    ) -> Option<&mut Profile> {
        let pos = self
            .profiles
            .iter()
            .position(|p| p.network_id == network_id)
            .or_else(|| {
                if network_is_open {
                    self.profiles
                        .iter()
                        .position(|p| p.kind == ProfileKind::OpenPublished)
                } else {
                    None
                }
            })?;
        Some(&mut self.profiles[pos])
    }

    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    pub fn profiles(&self) -> &[Profile] {
        &self.profiles
    }
}

impl Default for EsimCard {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn download_and_activate() {
        let mut card = EsimCard::new();
        assert!(card.is_empty());
        assert!(card.download(100, ProfileKind::CarrierSecured, 1001, 0xAA));
        assert!(card.download(0, ProfileKind::OpenPublished, 1002, 0xBB));
        assert_eq!(card.len(), 2);
        // First download auto-activates.
        assert_eq!(card.active_profile().unwrap().usim.imsi, 1001);
        assert!(card.activate(1002));
        assert_eq!(card.active_profile().unwrap().usim.imsi, 1002);
        assert!(!card.activate(9999));
    }

    #[test]
    fn duplicate_imsi_rejected() {
        let mut card = EsimCard::new();
        assert!(card.download(100, ProfileKind::CarrierSecured, 1001, 0xAA));
        assert!(!card.download(200, ProfileKind::OpenPublished, 1001, 0xBB));
        assert_eq!(card.len(), 1);
    }

    #[test]
    fn delete_adjusts_active_index() {
        let mut card = EsimCard::new();
        card.download(1, ProfileKind::CarrierSecured, 1, 0x1);
        card.download(2, ProfileKind::CarrierSecured, 2, 0x2);
        card.download(3, ProfileKind::CarrierSecured, 3, 0x3);
        card.activate(3);
        assert!(card.delete(1), "delete earlier profile");
        assert_eq!(
            card.active_profile().unwrap().usim.imsi,
            3,
            "active follows"
        );
        assert!(card.delete(3), "delete active");
        assert!(card.active_profile().is_none());
        assert!(!card.delete(99));
    }

    #[test]
    fn network_selection_prefers_exact_then_open() {
        let mut card = EsimCard::new();
        card.download(100, ProfileKind::CarrierSecured, 1001, 0xAA);
        card.download(0, ProfileKind::OpenPublished, 1002, 0xBB);
        // Exact carrier match.
        assert_eq!(
            card.profile_for_network(100, false).unwrap().usim.imsi,
            1001
        );
        // Unknown closed network: no profile.
        assert!(card.profile_for_network(555, false).is_none());
        // Unknown *open* network: the published profile applies — the
        // paper's "open dLTE SIM alongside other secured SIMs".
        assert_eq!(card.profile_for_network(555, true).unwrap().usim.imsi, 1002);
    }
}
