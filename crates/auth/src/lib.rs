//! # dlte-auth — LTE authentication, open and closed
//!
//! LTE builds mutual authentication on symmetric keys held in the SIM and
//! the operator's HSS (EPS-AKA). The paper's move (§4.2) is to *"intentionally
//! undermine"* this: users pre-publish their keys so that **any** dLTE AP can
//! run the same AKA handshake, pushing identity out of the access layer
//! entirely. This crate implements both sides:
//!
//! * [`milenage`] — the f1–f5 key-derivation functions (structure-faithful,
//!   **deliberately non-cryptographic** — see the module docs);
//! * [`usim`] — the SIM side of AKA: MAC verification, sequence-number
//!   freshness, resynchronization;
//! * [`vectors`] — the network side: subscriber records and authentication
//!   vector generation (what an HSS, or a dLTE stub core, computes);
//! * [`esim`] — remotely provisionable multi-profile eSIMs (GSMA-style),
//!   which let one device hold a secured carrier identity *and* an open
//!   dLTE identity simultaneously;
//! * [`open`] — the published-key directory that makes dLTE APs universal
//!   authenticators.

pub mod esim;
pub mod milenage;
pub mod open;
pub mod usim;
pub mod vectors;

pub use esim::{EsimCard, Profile, ProfileKind};
pub use open::PublishedKeyDirectory;
pub use usim::{AkaError, AkaResponse, Usim};
pub use vectors::{AuthVector, SubscriberDb, SubscriberRecord};

/// International mobile subscriber identity.
pub type Imsi = u64;

/// A 128-bit subscriber key.
pub type Key = u128;
