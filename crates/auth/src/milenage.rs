//! MILENAGE-shaped key derivation functions.
//!
//! **Security notice:** these functions reproduce the *interfaces and
//! algebraic structure* of 3GPP TS 35.206 (f1: network MAC, f2: RES,
//! f3: CK, f4: IK, f5: AK, f1\*: resync MAC, f5\*: resync AK) but replace
//! the AES core with a SplitMix64-based mixer. They are **not
//! cryptographically secure** and must never guard real traffic. For the
//! simulation this is exactly right: the paper's architecture argument
//! depends on *who holds which key and which procedures run where*, not on
//! AES; and a dependency-free mixer keeps the workspace inside its approved
//! crate set.

use crate::Key;

/// SplitMix64 finalizer — a strong 64-bit mixing permutation.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mix a 128-bit key with up to three 64-bit words into a 128-bit output.
fn prf(k: Key, domain: u64, a: u64, b: u64) -> u128 {
    let kh = (k >> 64) as u64;
    let kl = k as u64;
    // Both output words must depend on every input word; chain the second
    // through the first and fold the full key and both data words into each.
    let h1 = mix64(
        kh ^ mix64(kl ^ 0xA5A5)
            ^ mix64(domain ^ 0xD1)
            ^ mix64(a)
            ^ mix64(b ^ 0xB7E1_5162_8AED_2A6A),
    );
    let h2 = mix64(
        kl ^ mix64(kh ^ 0x5A5A)
            ^ mix64(domain ^ 0xD2)
            ^ mix64(b)
            ^ mix64(a ^ 0x243F_6A88_85A3_08D3)
            ^ h1,
    );
    ((h1 as u128) << 64) | h2 as u128
}

/// f1 — network authentication code MAC-A over (SQN, RAND, AMF).
pub fn f1(k: Key, rand: u128, sqn: u64, amf: u16) -> u64 {
    (prf(k, 1, (rand >> 64) as u64 ^ sqn, rand as u64 ^ amf as u64) >> 64) as u64
}

/// f1\* — resynchronization MAC MAC-S.
pub fn f1_star(k: Key, rand: u128, sqn: u64, amf: u16) -> u64 {
    (prf(k, 11, (rand >> 64) as u64 ^ sqn, rand as u64 ^ amf as u64) >> 64) as u64
}

/// f2 — the challenge response RES.
pub fn f2(k: Key, rand: u128) -> u64 {
    (prf(k, 2, (rand >> 64) as u64, rand as u64) >> 64) as u64
}

/// f3 — cipher key CK.
pub fn f3(k: Key, rand: u128) -> u128 {
    prf(k, 3, (rand >> 64) as u64, rand as u64)
}

/// f4 — integrity key IK.
pub fn f4(k: Key, rand: u128) -> u128 {
    prf(k, 4, (rand >> 64) as u64, rand as u64)
}

/// f5 — anonymity key AK (conceals SQN on the wire).
pub fn f5(k: Key, rand: u128) -> u64 {
    // 48-bit AK in the spec; keep 48 bits for shape fidelity.
    (prf(k, 5, (rand >> 64) as u64, rand as u64) as u64) & 0xffff_ffff_ffff
}

/// f5\* — resynchronization anonymity key.
pub fn f5_star(k: Key, rand: u128) -> u64 {
    (prf(k, 15, (rand >> 64) as u64, rand as u64) as u64) & 0xffff_ffff_ffff
}

/// KASME derivation (TS 33.401 KDF shape): binds CK/IK to the serving
/// network id, so vectors issued for one network are useless at another —
/// unless, as in open dLTE, the key itself is public.
pub fn kasme(ck: u128, ik: u128, serving_network_id: u64, sqn_xor_ak: u64) -> u128 {
    prf(ck ^ ik.rotate_left(64), 6, serving_network_id, sqn_xor_ak)
}

#[cfg(test)]
mod tests {
    use super::*;

    const K: Key = 0x0123_4567_89ab_cdef_0123_4567_89ab_cdef;
    const RAND: u128 = 0xdead_beef_cafe_f00d_dead_beef_cafe_f00d;

    #[test]
    fn deterministic() {
        assert_eq!(f1(K, RAND, 7, 0x8000), f1(K, RAND, 7, 0x8000));
        assert_eq!(f2(K, RAND), f2(K, RAND));
        assert_eq!(f3(K, RAND), f3(K, RAND));
    }

    #[test]
    fn functions_are_domain_separated() {
        // Same inputs, different functions → different outputs.
        let outs = [
            f2(K, RAND),
            f3(K, RAND) as u64,
            f4(K, RAND) as u64,
            f5(K, RAND),
            f5_star(K, RAND),
        ];
        for i in 0..outs.len() {
            for j in (i + 1)..outs.len() {
                assert_ne!(outs[i], outs[j], "collision between f{} and f{}", i, j);
            }
        }
        assert_ne!(f1(K, RAND, 7, 0), f1_star(K, RAND, 7, 0));
    }

    #[test]
    fn sensitive_to_every_input() {
        assert_ne!(f1(K, RAND, 7, 0), f1(K, RAND, 8, 0), "sqn");
        assert_ne!(f1(K, RAND, 7, 0), f1(K, RAND, 7, 1), "amf");
        assert_ne!(f1(K, RAND, 7, 0), f1(K ^ 1, RAND, 7, 0), "key");
        assert_ne!(f1(K, RAND, 7, 0), f1(K, RAND ^ 1, 7, 0), "rand");
        assert_ne!(f2(K, RAND), f2(K ^ (1 << 127), RAND), "high key bit");
    }

    #[test]
    fn ak_is_48_bits() {
        for r in [RAND, RAND ^ 1, RAND ^ 2] {
            assert!(f5(K, r) < (1 << 48));
            assert!(f5_star(K, r) < (1 << 48));
        }
    }

    #[test]
    fn kasme_binds_serving_network() {
        let ck = f3(K, RAND);
        let ik = f4(K, RAND);
        let a = kasme(ck, ik, 310_410, 7);
        let b = kasme(ck, ik, 310_260, 7);
        assert_ne!(
            a, b,
            "different serving networks must derive different KASME"
        );
    }

    #[test]
    fn outputs_look_uniform() {
        // A smoke test that the mixer isn't degenerate: over many RANDs the
        // low bit of f2 should be balanced.
        let mut ones = 0;
        let n = 4096;
        for i in 0..n {
            if f2(K, RAND ^ (i as u128) << 17) & 1 == 1 {
                ones += 1;
            }
        }
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "bias {frac}");
    }
}
