//! The published-key directory — dLTE's open authentication substrate.
//!
//! §4.2: *"users can simply pre-publish their keys to allow any associated
//! dLTE AP to authenticate with them."* The directory is a public mapping
//! IMSI → K that every dLTE AP consults when an unknown subscriber attaches.
//! Publishing deliberately forfeits link-layer confidentiality (the paper is
//! explicit about this trade: honeypots become easy; applications must use
//! end-to-end security), but preserves *mutual* authentication mechanics so
//! unmodified UEs work.

use crate::vectors::SubscriberRecord;
use crate::{Imsi, Key};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A public IMSI → key directory.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PublishedKeyDirectory {
    keys: HashMap<Imsi, Key>,
    /// Lookup counter — the E9 scaling experiment tracks directory load.
    pub lookups: u64,
}

impl PublishedKeyDirectory {
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish (or re-publish) a subscriber key.
    pub fn publish(&mut self, imsi: Imsi, k: Key) {
        self.keys.insert(imsi, k);
    }

    /// Revoke a published key (the subscriber rotates identities). Returns
    /// whether it was present.
    pub fn revoke(&mut self, imsi: Imsi) -> bool {
        self.keys.remove(&imsi).is_some()
    }

    /// Look up a published key.
    pub fn lookup(&mut self, imsi: Imsi) -> Option<Key> {
        self.lookups += 1;
        self.keys.get(&imsi).copied()
    }

    /// Build a fresh HSS-style record an AP can mint vectors from. The AP
    /// starts at SQN 0 and relies on the AKA resync procedure if the SIM is
    /// ahead (which it will be after visiting other APs — see the resync
    /// test in [`crate::usim`]).
    pub fn record_for(&mut self, imsi: Imsi) -> Option<SubscriberRecord> {
        self.lookup(imsi)
            .map(|k| SubscriberRecord { imsi, k, sqn: 0 })
    }

    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::usim::{AkaError, Usim};
    use crate::vectors::generate_vector;
    use dlte_sim::SimRng;

    #[test]
    fn publish_lookup_revoke() {
        let mut dir = PublishedKeyDirectory::new();
        dir.publish(7, 0x77);
        assert_eq!(dir.lookup(7), Some(0x77));
        assert_eq!(dir.lookup(8), None);
        assert_eq!(dir.lookups, 2);
        assert!(dir.revoke(7));
        assert!(!dir.revoke(7));
        assert_eq!(dir.lookup(7), None);
    }

    #[test]
    fn two_aps_serially_authenticate_same_sim_via_resync() {
        // The roaming story: SIM attaches at AP1, then at AP2. Both APs read
        // the directory independently; AP2's SQN starts stale and recovers
        // via resync — this sequence is the crux of multi-AP open auth.
        let mut dir = PublishedKeyDirectory::new();
        let mut sim = Usim::new(1001, 0xABCD);
        dir.publish(1001, sim.published_key());
        let mut rng = SimRng::new(20);

        // AP1.
        let mut rec1 = dir.record_for(1001).expect("published");
        let v = generate_vector(&mut rec1, 1, &mut rng);
        sim.authenticate(v.rand, v.autn, 1).expect("AP1 auth");

        // AP2: first attempt hits sync failure, resyncs, succeeds.
        let mut rec2 = dir.record_for(1001).expect("published");
        let v = generate_vector(&mut rec2, 2, &mut rng);
        match sim.authenticate(v.rand, v.autn, 2) {
            Err(AkaError::SyncFailure { ue_sqn }) => {
                rec2.sqn = rec2.sqn.max(ue_sqn);
                let v = generate_vector(&mut rec2, 2, &mut rng);
                sim.authenticate(v.rand, v.autn, 2).expect("post-resync");
            }
            Ok(_) => panic!("expected stale SQN at AP2"),
            Err(e) => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn unpublished_sim_cannot_be_served() {
        let mut dir = PublishedKeyDirectory::new();
        assert!(dir.record_for(404).is_none());
    }
}
