//! The SIM side of EPS-AKA.
//!
//! A [`Usim`] verifies the network's AUTN (proving the network knows K),
//! enforces sequence-number freshness (replay protection), and produces the
//! RES the network checks (proving the SIM knows K). Mutual authentication
//! — the property dLTE *keeps* even with published keys, because knowing K
//! is still required to compute either side.

use crate::milenage::{f1, f2, f3, f4, f5, kasme};
use crate::vectors::{Autn, AMF_EPS};
use crate::Key;
use serde::{Deserialize, Serialize};

/// Why authentication failed on the SIM.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum AkaError {
    /// AUTN MAC didn't verify: the network does not know K.
    MacFailure,
    /// MAC verified but SQN was stale: replay or desynchronization. Carries
    /// the SIM's current SQN for the resync procedure.
    SyncFailure { ue_sqn: u64 },
}

/// Successful SIM-side authentication output.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AkaResponse {
    /// Response the network compares to XRES.
    pub res: u64,
    /// Session master key (matches the network's vector when both sides
    /// used the same serving network id).
    pub kasme: u128,
}

/// A universal SIM: identity + key + replay window.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Usim {
    pub imsi: crate::Imsi,
    k: Key,
    /// Highest SQN accepted so far.
    sqn: u64,
}

impl Usim {
    pub fn new(imsi: crate::Imsi, k: Key) -> Self {
        Usim { imsi, k, sqn: 0 }
    }

    /// The key — exposed because dLTE *publishes* it (§4.2). A real USIM
    /// would never surface this; the accessor models the publication step.
    pub fn published_key(&self) -> Key {
        self.k
    }

    /// Current SQN (diagnostics/tests).
    pub fn sqn(&self) -> u64 {
        self.sqn
    }

    /// Run the AKA challenge. On success the SIM's SQN advances.
    pub fn authenticate(
        &mut self,
        rand: u128,
        autn: Autn,
        serving_network_id: u64,
    ) -> Result<AkaResponse, AkaError> {
        let ak = f5(self.k, rand);
        let sqn = autn.sqn_xor_ak ^ ak;
        let expected_mac = f1(self.k, rand, sqn, autn.amf);
        if expected_mac != autn.mac {
            return Err(AkaError::MacFailure);
        }
        if sqn <= self.sqn {
            return Err(AkaError::SyncFailure { ue_sqn: self.sqn });
        }
        self.sqn = sqn;
        let ck = f3(self.k, rand);
        let ik = f4(self.k, rand);
        Ok(AkaResponse {
            res: f2(self.k, rand),
            kasme: kasme(ck, ik, serving_network_id, autn.sqn_xor_ak),
        })
    }
}

/// Convenience: checks that AMF has the EPS separation bit (TS 33.401 §6.1.1
/// requires rejecting non-EPS vectors in an EPS context).
pub fn is_eps_vector(autn: &Autn) -> bool {
    autn.amf & AMF_EPS != 0
}

#[cfg(test)]
// IMSIs and serving-network ids group digits as MCC_MNC_MSIN, not thousands.
#[allow(clippy::inconsistent_digit_grouping)]
mod tests {
    use super::*;
    use crate::vectors::{generate_vector, SubscriberRecord};
    use dlte_sim::SimRng;

    const K: Key = 0x0f0e_0d0c_0b0a_0908_0706_0504_0302_0100;
    const IMSI: crate::Imsi = 510_89_0000000042;
    const SN_ID: u64 = 510_89;

    fn network_and_sim() -> (SubscriberRecord, Usim) {
        (
            SubscriberRecord {
                imsi: IMSI,
                k: K,
                sqn: 0,
            },
            Usim::new(IMSI, K),
        )
    }

    #[test]
    fn full_mutual_authentication_succeeds() {
        let (mut rec, mut sim) = network_and_sim();
        let mut rng = SimRng::new(10);
        let v = generate_vector(&mut rec, SN_ID, &mut rng);
        assert!(is_eps_vector(&v.autn));
        let resp = sim.authenticate(v.rand, v.autn, SN_ID).expect("auth ok");
        assert_eq!(resp.res, v.xres, "network accepts the SIM");
        assert_eq!(resp.kasme, v.kasme, "both derive the same session key");
        assert_eq!(sim.sqn(), 1);
    }

    #[test]
    fn wrong_key_network_is_rejected() {
        let (_, mut sim) = network_and_sim();
        let mut imposter = SubscriberRecord {
            imsi: IMSI,
            k: K ^ 0xffff, // doesn't know the real key
            sqn: 0,
        };
        let mut rng = SimRng::new(11);
        let v = generate_vector(&mut imposter, SN_ID, &mut rng);
        assert_eq!(
            sim.authenticate(v.rand, v.autn, SN_ID),
            Err(AkaError::MacFailure),
            "SIM must reject a network that lacks K"
        );
        assert_eq!(sim.sqn(), 0, "failed auth must not advance SQN");
    }

    #[test]
    fn replayed_vector_triggers_sync_failure() {
        let (mut rec, mut sim) = network_and_sim();
        let mut rng = SimRng::new(12);
        let v = generate_vector(&mut rec, SN_ID, &mut rng);
        sim.authenticate(v.rand, v.autn, SN_ID)
            .expect("first use ok");
        let err = sim.authenticate(v.rand, v.autn, SN_ID).expect_err("replay");
        assert_eq!(err, AkaError::SyncFailure { ue_sqn: 1 });
    }

    #[test]
    fn resync_flow_recovers() {
        let (mut rec, mut sim) = network_and_sim();
        let mut rng = SimRng::new(13);
        // The SIM somehow got ahead (e.g. authenticated with another copy of
        // the record — the published-key world makes this routine).
        for _ in 0..5 {
            let v = generate_vector(&mut rec, SN_ID, &mut rng);
            sim.authenticate(v.rand, v.autn, SN_ID).unwrap();
        }
        // A second network with a stale record at sqn=0.
        let mut stale = SubscriberRecord {
            imsi: IMSI,
            k: K,
            sqn: 0,
        };
        let v = generate_vector(&mut stale, SN_ID, &mut rng);
        let err = sim.authenticate(v.rand, v.autn, SN_ID).expect_err("stale");
        let AkaError::SyncFailure { ue_sqn } = err else {
            panic!("expected sync failure, got {err:?}")
        };
        // Resync: the stale network fast-forwards and tries again.
        stale.sqn = stale.sqn.max(ue_sqn);
        let v = generate_vector(&mut stale, SN_ID, &mut rng);
        sim.authenticate(v.rand, v.autn, SN_ID)
            .expect("post-resync auth succeeds");
    }

    #[test]
    fn serving_network_mismatch_diverges_session_keys() {
        // The SIM derives KASME for the network it *believes* it talks to;
        // a vector minted for another network yields a different KASME even
        // though RES verifies — modeling the binding property.
        let (mut rec, mut sim) = network_and_sim();
        let mut rng = SimRng::new(14);
        let v = generate_vector(&mut rec, 999_99, &mut rng);
        let resp = sim.authenticate(v.rand, v.autn, SN_ID).expect("MAC ok");
        assert_eq!(resp.res, v.xres);
        assert_ne!(resp.kasme, v.kasme, "session keys diverge across networks");
    }

    #[test]
    fn published_key_lets_any_network_authenticate() {
        // The dLTE scenario: an AP that never saw this subscriber before
        // reads the published key and succeeds at mutual auth.
        let (_, mut sim) = network_and_sim();
        let published = sim.published_key();
        let mut ap_record = SubscriberRecord {
            imsi: sim.imsi,
            k: published,
            sqn: 0,
        };
        let mut rng = SimRng::new(15);
        let v = generate_vector(&mut ap_record, 42, &mut rng);
        let resp = sim.authenticate(v.rand, v.autn, 42).expect("open auth");
        assert_eq!(resp.res, v.xres);
        assert_eq!(resp.kasme, v.kasme);
    }
}
