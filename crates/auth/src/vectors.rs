//! The network side of EPS-AKA: subscriber records and authentication
//! vectors.
//!
//! In centralized LTE only the home HSS can mint vectors, which is exactly
//! why *"reliance on symmetric key authentication drives a need to securely
//! store secret keys"* (§2.1) and why new cores can't be added organically.
//! In dLTE any AP that can read the published key can mint the same vectors
//! (see [`crate::open`]).

use crate::milenage::{f1, f2, f3, f4, f5, kasme};
use crate::{Imsi, Key};
use dlte_sim::SimRng;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One subscriber's HSS record.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SubscriberRecord {
    pub imsi: Imsi,
    pub k: Key,
    /// Last sequence number issued for this subscriber.
    pub sqn: u64,
}

/// An EPS authentication vector (RAND, XRES, AUTN, KASME).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuthVector {
    pub rand: u128,
    pub xres: u64,
    /// AUTN = (SQN ⊕ AK, AMF, MAC).
    pub autn: Autn,
    pub kasme: u128,
}

/// The authentication token sent to the UE.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Autn {
    pub sqn_xor_ak: u64,
    pub amf: u16,
    pub mac: u64,
}

/// The default authentication management field (separation bit set, per
/// TS 33.401 for EPS vectors).
pub const AMF_EPS: u16 = 0x8000;

/// Generate one vector for `record` bound to `serving_network_id`,
/// incrementing the record's SQN.
pub fn generate_vector(
    record: &mut SubscriberRecord,
    serving_network_id: u64,
    rng: &mut SimRng,
) -> AuthVector {
    record.sqn += 1;
    let sqn = record.sqn;
    let rand = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    let mac = f1(record.k, rand, sqn, AMF_EPS);
    let xres = f2(record.k, rand);
    let ck = f3(record.k, rand);
    let ik = f4(record.k, rand);
    let ak = f5(record.k, rand);
    let sqn_xor_ak = sqn ^ ak;
    AuthVector {
        rand,
        xres,
        autn: Autn {
            sqn_xor_ak,
            amf: AMF_EPS,
            mac,
        },
        kasme: kasme(ck, ik, serving_network_id, sqn_xor_ak),
    }
}

/// The subscriber database of an HSS (or of a dLTE stub core's local cache).
#[derive(Clone, Debug, Default)]
pub struct SubscriberDb {
    records: HashMap<Imsi, SubscriberRecord>,
}

impl SubscriberDb {
    pub fn new() -> Self {
        Self::default()
    }

    /// Provision a subscriber. Returns the previous record if replaced.
    pub fn provision(&mut self, imsi: Imsi, k: Key) -> Option<SubscriberRecord> {
        self.records
            .insert(imsi, SubscriberRecord { imsi, k, sqn: 0 })
    }

    pub fn contains(&self, imsi: Imsi) -> bool {
        self.records.contains_key(&imsi)
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Mint a vector for `imsi`, or `None` for unknown subscribers.
    pub fn vector_for(
        &mut self,
        imsi: Imsi,
        serving_network_id: u64,
        rng: &mut SimRng,
    ) -> Option<AuthVector> {
        self.records
            .get_mut(&imsi)
            .map(|r| generate_vector(r, serving_network_id, rng))
    }

    /// Resynchronize a subscriber's SQN (after a UE reported SQN failure).
    pub fn resync(&mut self, imsi: Imsi, ue_sqn: u64) -> bool {
        match self.records.get_mut(&imsi) {
            Some(r) => {
                r.sqn = r.sqn.max(ue_sqn);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
// IMSIs group digits as MCC_MNC_MSIN, not thousands.
#[allow(clippy::inconsistent_digit_grouping)]
mod tests {
    use super::*;

    fn record() -> SubscriberRecord {
        SubscriberRecord {
            imsi: 510_89_0000000001,
            k: 0xfeed_f00d_dead_beef_0011_2233_4455_6677,
            sqn: 0,
        }
    }

    #[test]
    fn vector_generation_advances_sqn() {
        let mut r = record();
        let mut rng = SimRng::new(1);
        let v1 = generate_vector(&mut r, 1, &mut rng);
        let v2 = generate_vector(&mut r, 1, &mut rng);
        assert_eq!(r.sqn, 2);
        assert_ne!(v1.rand, v2.rand, "fresh RAND each vector");
        assert_ne!(v1.xres, v2.xres);
    }

    #[test]
    fn xres_matches_usim_computation() {
        let mut r = record();
        let mut rng = SimRng::new(2);
        let v = generate_vector(&mut r, 1, &mut rng);
        assert_eq!(v.xres, f2(r.k, v.rand), "network and SIM agree on RES");
    }

    #[test]
    fn kasme_differs_per_network() {
        let mut r1 = record();
        let mut r2 = record();
        // Same RAND stream, different serving networks.
        let v1 = generate_vector(&mut r1, 310_410, &mut SimRng::new(3));
        let v2 = generate_vector(&mut r2, 310_260, &mut SimRng::new(3));
        assert_eq!(v1.rand, v2.rand);
        assert_ne!(v1.kasme, v2.kasme);
    }

    #[test]
    fn db_provision_and_vector() {
        let mut db = SubscriberDb::new();
        assert!(db.is_empty());
        db.provision(42, 0x1234);
        assert!(db.contains(42));
        assert_eq!(db.len(), 1);
        let mut rng = SimRng::new(4);
        assert!(db.vector_for(42, 1, &mut rng).is_some());
        assert!(db.vector_for(43, 1, &mut rng).is_none());
    }

    #[test]
    fn resync_moves_sqn_forward_only() {
        let mut db = SubscriberDb::new();
        db.provision(42, 0x1234);
        let mut rng = SimRng::new(5);
        for _ in 0..5 {
            db.vector_for(42, 1, &mut rng);
        }
        assert!(db.resync(42, 100));
        let v = db.vector_for(42, 1, &mut rng).unwrap();
        // Next SQN is 101; verify via the MAC recomputation.
        assert_eq!(v.autn.mac, f1(0x1234, v.rand, 101, AMF_EPS));
        // Resync backwards is a no-op.
        assert!(db.resync(42, 3));
        let v2 = db.vector_for(42, 1, &mut rng).unwrap();
        assert_eq!(v2.autn.mac, f1(0x1234, v2.rand, 102, AMF_EPS));
        assert!(!db.resync(999, 1));
    }
}
