//! The §4.2 dual-identity story, end to end across the auth stack: one
//! eSIM device holds a carrier-secured profile *and* an open dLTE profile
//! ("end users could simultaneously maintain an open dLTE SIM alongside
//! other secured SIMs for different networks"), and each works only where
//! its trust model says it should.

use dlte_auth::esim::{EsimCard, ProfileKind};
use dlte_auth::open::PublishedKeyDirectory;
use dlte_auth::vectors::{generate_vector, SubscriberDb};
use dlte_sim::SimRng;

const CARRIER_NET: u64 = 51_089;
const DLTE_NET: u64 = 42_000;
const CARRIER_IMSI: u64 = 510_890_000_001;
const OPEN_IMSI: u64 = 990_000_001;
const CARRIER_KEY: u128 = 0xC0FFEE;
const OPEN_KEY: u128 = 0x0D17E;

fn provisioned_device() -> EsimCard {
    let mut card = EsimCard::new();
    // The carrier installs its secured profile over the air…
    assert!(card.download(
        CARRIER_NET,
        ProfileKind::CarrierSecured,
        CARRIER_IMSI,
        CARRIER_KEY
    ));
    // …and the user later downloads an open dLTE identity next to it.
    assert!(card.download(DLTE_NET, ProfileKind::OpenPublished, OPEN_IMSI, OPEN_KEY));
    card
}

#[test]
fn carrier_profile_authenticates_at_the_carrier() {
    let mut card = provisioned_device();
    // The carrier HSS knows only its own subscribers.
    let mut hss = SubscriberDb::new();
    hss.provision(CARRIER_IMSI, CARRIER_KEY);
    let mut rng = SimRng::new(1);

    let profile = card
        .profile_for_network(CARRIER_NET, false)
        .expect("carrier match");
    assert_eq!(profile.kind, ProfileKind::CarrierSecured);
    let imsi = profile.usim.imsi;
    let v = hss
        .vector_for(imsi, CARRIER_NET, &mut rng)
        .expect("subscriber known");
    let resp = profile
        .usim
        .authenticate(v.rand, v.autn, CARRIER_NET)
        .expect("mutual auth at home carrier");
    assert_eq!(resp.res, v.xres);
    assert_eq!(resp.kasme, v.kasme);
}

#[test]
fn open_profile_authenticates_at_any_dlte_ap() {
    let mut card = provisioned_device();
    // The open key was pre-published; two unrelated APs read it.
    let mut dir = PublishedKeyDirectory::new();
    dir.publish(OPEN_IMSI, OPEN_KEY);
    let mut rng = SimRng::new(2);

    for ap_net in [DLTE_NET, DLTE_NET + 7] {
        let profile = card
            .profile_for_network(ap_net, true)
            .expect("open fallback applies");
        assert_eq!(profile.kind, ProfileKind::OpenPublished);
        let mut rec = dir.record_for(OPEN_IMSI).expect("published");
        // Second AP starts stale; resync if needed.
        let v = generate_vector(&mut rec, ap_net, &mut rng);
        match profile.usim.authenticate(v.rand, v.autn, ap_net) {
            Ok(resp) => assert_eq!(resp.res, v.xres),
            Err(dlte_auth::usim::AkaError::SyncFailure { ue_sqn }) => {
                rec.sqn = rec.sqn.max(ue_sqn);
                let v = generate_vector(&mut rec, ap_net, &mut rng);
                let resp = profile
                    .usim
                    .authenticate(v.rand, v.autn, ap_net)
                    .expect("post-resync");
                assert_eq!(resp.res, v.xres);
            }
            Err(e) => panic!("unexpected {e:?}"),
        }
    }
}

#[test]
fn trust_boundaries_hold() {
    let mut card = provisioned_device();
    let mut rng = SimRng::new(3);

    // A dLTE AP cannot serve the carrier profile: its key was never
    // published, so the directory has nothing to mint vectors from.
    let mut dir = PublishedKeyDirectory::new();
    dir.publish(OPEN_IMSI, OPEN_KEY);
    assert!(dir.record_for(CARRIER_IMSI).is_none());

    // The carrier cannot serve the open profile: its HSS never provisioned
    // that IMSI.
    let mut hss = SubscriberDb::new();
    hss.provision(CARRIER_IMSI, CARRIER_KEY);
    assert!(hss.vector_for(OPEN_IMSI, CARRIER_NET, &mut rng).is_none());

    // A *malicious* AP guessing at the carrier key fails MAC verification
    // at the SIM: publishing one identity does not weaken the other.
    let profile = card
        .profile_for_network(CARRIER_NET, false)
        .expect("carrier profile");
    let mut fake = dlte_auth::vectors::SubscriberRecord {
        imsi: CARRIER_IMSI,
        k: OPEN_KEY, // attacker only knows the published key
        sqn: 0,
    };
    let v = generate_vector(&mut fake, CARRIER_NET, &mut rng);
    assert_eq!(
        profile.usim.authenticate(v.rand, v.autn, CARRIER_NET),
        Err(dlte_auth::usim::AkaError::MacFailure)
    );

    // And a closed network that isn't the carrier gets no profile at all.
    assert!(card.profile_for_network(12_345, false).is_none());
}
