//! Property-based tests for the authentication stack: mutual AKA always
//! succeeds with matching keys, always fails with mismatched keys, and the
//! resync procedure recovers from any SQN skew.

use dlte_auth::usim::{AkaError, Usim};
use dlte_auth::vectors::{generate_vector, SubscriberRecord};
use dlte_auth::Imsi;
use dlte_sim::SimRng;
use proptest::prelude::*;

proptest! {
    /// Matching keys: the full handshake succeeds and both sides derive the
    /// same session key, for arbitrary keys, identities and networks.
    #[test]
    fn aka_round_trip(k in any::<u128>(), imsi in any::<u64>(), sn in any::<u64>(), seed in any::<u64>()) {
        let mut rec = SubscriberRecord { imsi, k, sqn: 0 };
        let mut sim = Usim::new(imsi, k);
        let mut rng = SimRng::new(seed);
        let v = generate_vector(&mut rec, sn, &mut rng);
        let resp = sim.authenticate(v.rand, v.autn, sn).expect("mutual auth");
        prop_assert_eq!(resp.res, v.xres);
        prop_assert_eq!(resp.kasme, v.kasme);
    }

    /// Mismatched keys: the SIM rejects the network with a MAC failure (not
    /// a sync failure), and its SQN does not advance.
    #[test]
    fn wrong_key_always_mac_failure(
        k in any::<u128>(),
        delta in 1u128..,
        seed in any::<u64>(),
    ) {
        let wrong = k.wrapping_add(delta);
        prop_assume!(wrong != k);
        let mut rec = SubscriberRecord { imsi: 1, k: wrong, sqn: 0 };
        let mut sim = Usim::new(1, k);
        let mut rng = SimRng::new(seed);
        let v = generate_vector(&mut rec, 9, &mut rng);
        prop_assert_eq!(
            sim.authenticate(v.rand, v.autn, 9),
            Err(AkaError::MacFailure)
        );
        prop_assert_eq!(sim.sqn(), 0);
    }

    /// Whatever SQN skew exists between a SIM and a stale network record,
    /// one resync round recovers mutual authentication — the property that
    /// makes multi-AP open authentication work (§4.2).
    #[test]
    fn resync_recovers_any_skew(
        k in any::<u128>(),
        sim_ahead_by in 0u64..500,
        seed in any::<u64>(),
    ) {
        const IMSI: Imsi = 77;
        const K_NET: u64 = 5;
        let mut rng = SimRng::new(seed);
        let mut sim = Usim::new(IMSI, k);
        // Advance the SIM by authenticating against a reference record.
        let mut reference = SubscriberRecord { imsi: IMSI, k, sqn: 0 };
        for _ in 0..sim_ahead_by {
            let v = generate_vector(&mut reference, K_NET, &mut rng);
            sim.authenticate(v.rand, v.autn, K_NET).expect("advance");
        }
        // A brand-new AP starts from a stale (sqn = 0) record.
        let mut stale = SubscriberRecord { imsi: IMSI, k, sqn: 0 };
        let v = generate_vector(&mut stale, K_NET, &mut rng);
        match sim.authenticate(v.rand, v.autn, K_NET) {
            Ok(_) => prop_assert_eq!(sim_ahead_by, 0, "fresh SIM accepts directly"),
            Err(AkaError::SyncFailure { ue_sqn }) => {
                stale.sqn = stale.sqn.max(ue_sqn);
                let v2 = generate_vector(&mut stale, K_NET, &mut rng);
                let resp = sim.authenticate(v2.rand, v2.autn, K_NET);
                prop_assert!(resp.is_ok(), "post-resync must succeed: {resp:?}");
            }
            Err(e) => prop_assert!(false, "unexpected {e:?}"),
        }
    }

    /// Replaying any previously accepted vector is always rejected.
    #[test]
    fn replay_always_rejected(k in any::<u128>(), n in 1usize..20, seed in any::<u64>()) {
        let mut rec = SubscriberRecord { imsi: 3, k, sqn: 0 };
        let mut sim = Usim::new(3, k);
        let mut rng = SimRng::new(seed);
        let mut history = Vec::new();
        for _ in 0..n {
            let v = generate_vector(&mut rec, 1, &mut rng);
            sim.authenticate(v.rand, v.autn, 1).expect("fresh ok");
            history.push(v);
        }
        for v in history {
            let outcome = sim.authenticate(v.rand, v.autn, 1);
            let rejected = matches!(outcome, Err(AkaError::SyncFailure { .. }));
            prop_assert!(rejected, "replay accepted: {outcome:?}");
        }
    }
}
