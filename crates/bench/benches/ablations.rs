//! Ablation benches for the design choices DESIGN.md §6 calls out.
//!
//! These are *quality* ablations run under Criterion so they regenerate with
//! `cargo bench`: each group evaluates the alternatives of one design choice
//! on a fixed workload and reports the figure of merit through
//! `criterion::black_box` (the timing numbers double as a regression guard
//! on the simulator's hot paths).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dlte_mac::lte::scheduler::SchedulerKind;
use dlte_mac::{CellConfig, CellSim, UeConfig};
use dlte_phy::harq::{Combining, HarqConfig, HarqProcessModel};
use dlte_phy::mcs::CQI_TABLE;
use dlte_sim::{SimDuration, SimRng};
use dlte_x2::bandwidth::x2_bps;
use dlte_x2::CoordinationMode;

/// Choice 1 — cell scheduler: PF (default) vs RR vs Max-C/I on a mixed
/// near/far population.
fn ablate_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/scheduler");
    g.sample_size(10);
    for kind in [
        SchedulerKind::ProportionalFair,
        SchedulerKind::RoundRobin,
        SchedulerKind::MaxCi,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut cfg = CellConfig::rural_default();
                    cfg.scheduler = kind;
                    let ues = vec![
                        UeConfig::at_km(0.5),
                        UeConfig::at_km(2.0),
                        UeConfig::at_km(8.0),
                        UeConfig::at_km(15.0),
                    ];
                    let mut sim = CellSim::new(cfg, ues, &SimRng::new(1));
                    let r = sim.run(SimDuration::from_millis(500));
                    black_box((r.aggregate_goodput_bps, r.jain_fairness))
                })
            },
        );
    }
    g.finish();
}

/// Choice 2 — HARQ depth and combining: 1/2/4/6 transmissions, chase vs
/// plain, evaluated 2 dB under the MCS threshold.
fn ablate_harq(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/harq");
    for (label, max_tx, combining) in [
        ("1tx", 1u8, Combining::None),
        ("2tx_chase", 2, Combining::Chase),
        ("4tx_chase", 4, Combining::Chase),
        ("6tx_chase", 6, Combining::Chase),
        ("4tx_plain", 4, Combining::None),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            let m = HarqProcessModel::new(HarqConfig {
                max_transmissions: max_tx,
                bler_slope_db: 0.6,
                combining,
            });
            let cqi = &CQI_TABLE[8];
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..1_000 {
                    let snr = cqi.sinr_threshold_db - 2.0 + (i % 40) as f64 * 0.1;
                    acc += m.goodput_bps(snr, cqi, 50);
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

/// Choice 3 — FEC group size in the modern transport: off / 4 / 8 / 16 on a
/// 3%-lossy link (figure of merit: retransmissions avoided).
fn ablate_fec(c: &mut Criterion) {
    use dlte_net::{Addr, LinkConfig, NetworkBuilder, Prefix};
    use dlte_sim::SimTime;
    use dlte_transport::connection::TransportConfig;
    use dlte_transport::{TransportClientNode, TransportServerNode};

    let mut g = c.benchmark_group("ablation/fec_group");
    g.sample_size(10);
    for k in [0u32, 4, 8, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let cfg = TransportConfig {
                    fec_k: k,
                    ..TransportConfig::default()
                };
                let mut nb = NetworkBuilder::new(33);
                let server_addr = Addr::new(10, 0, 0, 2);
                let client = nb.host(
                    "c",
                    Box::new(TransportClientNode::new(cfg, server_addr, 240_000)),
                );
                nb.addr(client, Addr::new(10, 0, 0, 1));
                let server = nb.host("s", Box::new(TransportServerNode::new(7, cfg)));
                nb.addr(server, server_addr);
                let mut link = LinkConfig {
                    delay: SimDuration::from_millis(20),
                    rate_bps: 50e6,
                    queue_pkts: 500,
                    loss: 0.03,
                };
                link.loss = 0.03;
                let l = nb.link(client, server, link);
                nb.route(client, Prefix::new(server_addr, 32), l);
                nb.route(server, Prefix::new(Addr::new(10, 0, 0, 1), 32), l);
                let mut sim = nb.build();
                sim.run_until(SimTime::from_secs(30), 2_000_000);
                let w = sim.world();
                let cl = w.handler_as::<TransportClientNode>(client).unwrap();
                black_box((cl.conn.retransmissions, cl.completed_at))
            })
        });
    }
    g.finish();
}

/// Choice 4 — X2 reporting interval: overhead at 100 ms / 500 ms / 2 s for
/// an 8-peer cooperative mesh (closed form; the live measurement is E11).
fn ablate_x2_interval(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/x2_interval");
    for ms in [100u64, 500, 2_000] {
        g.bench_with_input(BenchmarkId::from_parameter(ms), &ms, |b, &ms| {
            b.iter(|| {
                let bps = x2_bps(
                    CoordinationMode::Cooperative,
                    8,
                    SimDuration::from_millis(ms),
                    40,
                );
                black_box(bps)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablate_scheduler,
    ablate_harq,
    ablate_fec,
    ablate_x2_interval
);
criterion_main!(benches);
