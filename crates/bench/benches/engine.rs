//! Criterion benches for the simulation substrate: event engine, RNG,
//! statistics — the loops every experiment spins millions of times.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dlte_sim::stats::{jain_index, Samples, Welford};
use dlte_sim::{EventQueue, SimDuration, SimRng, SimTime, Simulation, World};

struct Ticker {
    remaining: u64,
}

impl World for Ticker {
    type Event = ();
    fn handle(&mut self, _now: SimTime, _ev: (), queue: &mut EventQueue<()>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            queue.schedule_in(SimDuration::from_micros(10), ());
        }
    }
}

fn bench_event_engine(c: &mut Criterion) {
    c.bench_function("engine/dispatch_100k_events", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(Ticker { remaining: 100_000 });
            sim.queue_mut().schedule_now(());
            sim.run_to_completion(1_000_000);
            black_box(sim.events_dispatched())
        })
    });

    c.bench_function("engine/schedule_cancel_10k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u32> = EventQueue::new();
            let keys: Vec<_> = (0..10_000)
                .map(|i| q.schedule_at(SimTime::from_micros(i), i as u32))
                .collect();
            for k in keys {
                q.cancel(k);
            }
            black_box(q.pending())
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/normal_100k", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..100_000 {
                acc += rng.normal(0.0, 1.0);
            }
            black_box(acc)
        })
    });
    c.bench_function("rng/fork_1k", |b| {
        let root = SimRng::new(1);
        b.iter(|| {
            for i in 0..1_000u64 {
                black_box(root.fork_idx("bench", i));
            }
        })
    });
}

fn bench_stats(c: &mut Criterion) {
    c.bench_function("stats/welford_100k", |b| {
        b.iter(|| {
            let mut w = Welford::new();
            for i in 0..100_000 {
                w.push(i as f64);
            }
            black_box(w.variance())
        })
    });
    c.bench_function("stats/quantile_10k", |b| {
        let mut rng = SimRng::new(3);
        let xs: Vec<f64> = (0..10_000).map(|_| rng.unit()).collect();
        b.iter(|| {
            let mut s = Samples::new();
            for &x in &xs {
                s.push(x);
            }
            black_box(s.p99())
        })
    });
    c.bench_function("stats/jain_1k", |b| {
        let xs: Vec<f64> = (1..=1_000).map(|i| i as f64).collect();
        b.iter(|| black_box(jain_index(&xs)))
    });
}

criterion_group!(benches, bench_event_engine, bench_rng, bench_stats);
criterion_main!(benches);
