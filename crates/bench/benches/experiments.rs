//! One Criterion bench target per paper table/figure.
//!
//! Each bench regenerates its experiment end-to-end (reduced sweeps where
//! the full ones take tens of seconds), so `cargo bench` exercises every
//! row EXPERIMENTS.md reports. The experiment binaries (`cargo run -p
//! dlte-bench --bin e1_range`) produce the full-size tables.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dlte::experiments as ex;

fn light(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments/light");
    g.sample_size(20);
    g.bench_function("t1_design_space", |b| {
        b.iter(|| black_box(ex::t1_design_space::run()))
    });
    g.bench_function("f2_deployment", |b| {
        b.iter(|| black_box(ex::f2_deployment::run()))
    });
    g.bench_function("e3_harq", |b| b.iter(|| black_box(ex::e3_harq::run())));
    g.finish();
}

fn radio(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments/radio");
    g.sample_size(10);
    g.bench_function("e1_range", |b| {
        b.iter(|| {
            black_box(ex::e1_range::run_with(ex::e1_range::Params {
                distances_km: vec![0.5, 4.0, 16.0],
                seed: 1,
            }))
        })
    });
    g.bench_function("e2_uplink", |b| {
        b.iter(|| {
            black_box(ex::e2_uplink::run_with(ex::e2_uplink::Params {
                distances_km: vec![4.0, 16.0],
                seed: 1,
            }))
        })
    });
    g.bench_function("e4_timing_advance", |b| {
        b.iter(|| {
            black_box(ex::e4_timing_advance::run_with(
                ex::e4_timing_advance::Params {
                    distances_km: vec![0.5, 5.0, 10.0],
                    seed: 1,
                },
            ))
        })
    });
    g.bench_function("e5_fairness", |b| {
        b.iter(|| {
            black_box(ex::e5_fairness::run_with(ex::e5_fairness::Params {
                ap_counts: vec![2, 8],
                client_km: 1.0,
                seconds: 1,
                seed: 1,
            }))
        })
    });
    g.bench_function("e6_hidden_terminal", |b| {
        b.iter(|| {
            black_box(ex::e6_hidden_terminal::run_with(
                ex::e6_hidden_terminal::Params {
                    seconds: 1,
                    seed: 1,
                },
            ))
        })
    });
    g.bench_function("e7_cooperative", |b| {
        b.iter(|| {
            black_box(ex::e7_cooperative::run_with(ex::e7_cooperative::Params {
                seconds: 1,
                ..Default::default()
            }))
        })
    });
    g.finish();
}

fn architecture(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments/architecture");
    g.sample_size(10);
    g.bench_function("f1_architecture", |b| {
        b.iter(|| {
            black_box(ex::f1_architecture::run_with(ex::f1_architecture::Params {
                seconds: 5,
                seed: 1,
            }))
        })
    });
    g.bench_function("e8_mobility", |b| {
        b.iter(|| {
            black_box(ex::e8_mobility::run_with(ex::e8_mobility::Params {
                dwell_s: vec![5.0, 1.0],
                inet_delay_ms: 10,
                seed: 1,
            }))
        })
    });
    g.bench_function("e9_core_scaling", |b| {
        b.iter(|| {
            black_box(ex::e9_core_scaling::run_with(ex::e9_core_scaling::Params {
                ue_counts: vec![10, 50],
                ues_per_site: 10,
                seed: 1,
            }))
        })
    });
    g.bench_function("e10_breakout", |b| {
        b.iter(|| {
            black_box(ex::e10_breakout::run_with(ex::e10_breakout::Params {
                epc_delay_ms: vec![5, 30],
                seed: 1,
            }))
        })
    });
    g.bench_function("e11_x2_overhead", |b| {
        b.iter(|| {
            black_box(ex::e11_x2_overhead::run_with(ex::e11_x2_overhead::Params {
                ap_counts: vec![2, 4],
                seconds: 5,
                seed: 1,
            }))
        })
    });
    g.bench_function("e13_backhaul_resilience", |b| {
        b.iter(|| {
            black_box(ex::e13_backhaul_resilience::run_with(
                ex::e13_backhaul_resilience::Params {
                    fail_at_s: 3.0,
                    reconverge_after_s: 2.0,
                    total_s: 10.0,
                    seed: 1,
                },
            ))
        })
    });
    g.bench_function("e12_transport_ablation", |b| {
        b.iter(|| {
            black_box(ex::e12_transport_ablation::run_with(
                ex::e12_transport_ablation::Params {
                    dwell_s: 3.0,
                    total_s: 12.0,
                    seed: 1,
                },
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, light, radio, architecture);
criterion_main!(benches);
