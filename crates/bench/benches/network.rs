//! Criterion benches for the packet substrate and the control planes:
//! forwarding throughput, full attach procedures, transport transfers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dlte::scenario::{DlteNetworkBuilder, DltePlan};
use dlte_epc::topology::{CentralizedLteBuilder, UePlan};
use dlte_net::handlers::CbrSource;
use dlte_net::{Addr, LinkConfig, NetworkBuilder, Prefix};
use dlte_sim::SimTime;

fn bench_forwarding(c: &mut Criterion) {
    let mut g = c.benchmark_group("net/forwarding");
    g.sample_size(20);
    // 3-hop line, 10k packets.
    g.bench_function("line_10k_packets", |b| {
        b.iter(|| {
            let mut nb = NetworkBuilder::new(1);
            let dst_addr = Addr::new(10, 0, 0, 9);
            let src = nb.host("src", Box::new(CbrSource::new(dst_addr, 1, 80e6, 1000)));
            nb.addr(src, Addr::new(10, 0, 0, 1));
            let r1 = nb.node("r1");
            let r2 = nb.node("r2");
            let dst = nb.node("dst");
            nb.addr(dst, dst_addr);
            nb.link(src, r1, LinkConfig::lan());
            nb.link(r1, r2, LinkConfig::lan());
            nb.link(r2, dst, LinkConfig::lan());
            nb.auto_routes();
            let mut sim = nb.build();
            sim.run_until(SimTime::from_secs(1), 500_000);
            black_box(sim.world().trace().total_delivered())
        })
    });
    g.finish();
}

fn bench_attach(c: &mut Criterion) {
    let mut g = c.benchmark_group("net/attach");
    g.sample_size(10);
    g.bench_function("centralized_10ues", |b| {
        b.iter(|| {
            let mut net = CentralizedLteBuilder::new(1, 10)
                .with_ue_plan(|_| UePlan::default())
                .build();
            net.sim.run_until(SimTime::from_secs(10), 10_000_000);
            black_box(net.sim.events_dispatched())
        })
    });
    g.bench_function("dlte_10ues", |b| {
        b.iter(|| {
            let mut net = DlteNetworkBuilder::new(1, 10)
                .with_ue_plan(|_| DltePlan::default())
                .build();
            net.sim.run_until(SimTime::from_secs(10), 10_000_000);
            black_box(net.sim.events_dispatched())
        })
    });
    g.finish();
}

fn bench_transport(c: &mut Criterion) {
    use dlte_transport::connection::TransportConfig;
    use dlte_transport::{TransportClientNode, TransportServerNode};
    let mut g = c.benchmark_group("net/transport");
    g.sample_size(10);
    g.bench_function("upload_1mb", |b| {
        b.iter(|| {
            let mut nb = NetworkBuilder::new(1);
            let server_addr = Addr::new(10, 0, 0, 2);
            let client = nb.host(
                "c",
                Box::new(TransportClientNode::new(
                    TransportConfig::modern(),
                    server_addr,
                    1_000_000,
                )),
            );
            nb.addr(client, Addr::new(10, 0, 0, 1));
            let server = nb.host(
                "s",
                Box::new(TransportServerNode::new(7, TransportConfig::modern())),
            );
            nb.addr(server, server_addr);
            let l = nb.link(client, server, LinkConfig::lan());
            nb.route(client, Prefix::new(server_addr, 32), l);
            nb.route(server, Prefix::new(Addr::new(10, 0, 0, 1), 32), l);
            let mut sim = nb.build();
            sim.run_until(SimTime::from_secs(30), 5_000_000);
            black_box(sim.events_dispatched())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_forwarding, bench_attach, bench_transport);
criterion_main!(benches);
