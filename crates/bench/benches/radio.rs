//! Criterion benches for the radio models: the subframe cell simulator,
//! the slotted DCF MAC, HARQ and propagation math.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dlte_mac::wifi::dcf::{DcfConfig, DcfSim, StationConfig};
use dlte_mac::{CellConfig, CellSim, UeConfig};
use dlte_phy::harq::{HarqConfig, HarqProcessModel};
use dlte_phy::mcs::CQI_TABLE;
use dlte_phy::propagation::PathLossModel;
use dlte_sim::{SimDuration, SimRng};

fn bench_cell_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("radio/cell_sim");
    g.sample_size(20);
    g.bench_function("1s_4ues", |b| {
        b.iter(|| {
            let rng = SimRng::new(1);
            let ues = vec![
                UeConfig::at_km(0.5),
                UeConfig::at_km(2.0),
                UeConfig::at_km(5.0),
                UeConfig::at_km(10.0),
            ];
            let mut sim = CellSim::new(CellConfig::rural_default(), ues, &rng);
            black_box(sim.run(SimDuration::from_secs(1)).aggregate_goodput_bps)
        })
    });
    g.finish();
}

fn bench_dcf(c: &mut Criterion) {
    let mut g = c.benchmark_group("radio/dcf");
    g.sample_size(20);
    g.bench_function("1s_8stations", |b| {
        b.iter(|| {
            let mut sim = DcfSim::fully_connected(
                DcfConfig::default(),
                vec![StationConfig::saturated(25.0); 8],
                SimRng::new(1),
            );
            black_box(sim.run(SimDuration::from_secs(1)).aggregate_goodput_bps)
        })
    });
    g.finish();
}

fn bench_phy_math(c: &mut Criterion) {
    c.bench_function("radio/harq_stats_10k", |b| {
        let m = HarqProcessModel::new(HarqConfig::default());
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..10_000 {
                let snr = -10.0 + (i % 400) as f64 * 0.1;
                acc += m.stats(snr, &CQI_TABLE[8]).efficiency;
            }
            black_box(acc)
        })
    });
    c.bench_function("radio/hata_100k", |b| {
        let model = PathLossModel::rural_macro();
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..100_000 {
                acc += model.path_loss_db(850.0, i as f64 * 0.001);
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_cell_sim, bench_dcf, bench_phy_math);
criterion_main!(benches);
