//! The unified experiment runner.
//!
//! ```text
//! dlte-run <id...|all> [--json] [--jobs N] [--shards N] [--seed S] [--params JSON] [--trace FILE] [--metrics]
//! dlte-run profile <id...> [--jobs N] [--seed S] [--params JSON]
//! dlte-run bench [id...] [--sizes N,N,...] [--shards N,N,...] [--ues-per-ap N] [--seed S] [--total SECS] [--out FILE] [--baseline FILE]
//! dlte-run fuzz [--seeds A..B] [--shards N] [--out DIR] [--repro FILE] [--registry] [--mobility]
//! dlte-run --list
//! ```
//!
//! Resolves experiments through `dlte::experiments::registry`, runs each one
//! instrumented (wall clock, events dispatched, simulated time — attached to
//! the table as `meta`), and prints tables as text or JSON. `--jobs` sets the
//! thread count parallel sweeps fan out to; `--shards` splits every
//! simulation the run builds across N engine shards (0 = one per CPU core);
//! results are bit-identical for any value of either. `--trace FILE` writes
//! the structured event trace as JSONL (also jobs- and shards-invariant);
//! `--metrics` attaches the full metrics snapshot to each table's `meta`;
//! `profile` writes per-experiment timing to `BENCH_profile.json`.

use dlte_bench::runner;

fn main() {
    // `fuzz` is its own dispatch: a seed sweep (or repro replay) over the
    // chaos fuzzer, not an experiment-registry run.
    if std::env::args().nth(1).as_deref() == Some("fuzz") {
        let inv = match runner::parse_fuzz_args(std::env::args().skip(2)) {
            Ok(inv) => inv,
            Err(msg) => {
                eprintln!("dlte-run: {msg}");
                std::process::exit(2);
            }
        };
        let (report, ok) = runner::run_fuzz(&inv);
        print!("{report}");
        std::process::exit(if ok { 0 } else { 1 });
    }
    // `bench` likewise: a topology-size macro-benchmark written to
    // BENCH_fabric.json (e15, with optional --baseline comparison) or
    // BENCH_shard.json (e16 shard sweep), not a registry table run.
    if std::env::args().nth(1).as_deref() == Some("bench") {
        let inv = match runner::parse_bench_args(std::env::args().skip(2)) {
            Ok(inv) => inv,
            Err(msg) => {
                eprintln!("dlte-run: {msg}");
                std::process::exit(2);
            }
        };
        let doc = match runner::run_bench_doc(&inv) {
            Ok(doc) => doc,
            Err(msg) => {
                eprintln!("dlte-run: {msg}");
                std::process::exit(1);
            }
        };
        let out = inv.out_path();
        let json = serde_json::to_string_pretty(&doc).expect("bench doc serializes");
        if let Err(e) = std::fs::write(out, &json) {
            eprintln!("dlte-run: writing {out}: {e}");
            std::process::exit(1);
        }
        print!("{}", runner::render_bench_doc(&doc));
        eprintln!("dlte-run: wrote {out}");
        return;
    }
    let inv = match runner::parse_args(std::env::args().skip(1)) {
        Ok(inv) => inv,
        Err(msg) => {
            eprintln!("dlte-run: {msg}");
            std::process::exit(2);
        }
    };
    if inv.list {
        println!("{}", runner::render_list());
        return;
    }
    match runner::run(&inv) {
        Ok(tables) => {
            if let Some(path) = &inv.trace {
                let jsonl = runner::take_trace_jsonl();
                if let Err(e) = std::fs::write(path, &jsonl) {
                    eprintln!("dlte-run: writing trace {path}: {e}");
                    std::process::exit(1);
                }
                eprintln!(
                    "dlte-run: wrote {} trace records to {path}",
                    jsonl.lines().count()
                );
            }
            if inv.profile {
                let profile = runner::render_profile(&tables);
                if let Err(e) = std::fs::write("BENCH_profile.json", &profile) {
                    eprintln!("dlte-run: writing BENCH_profile.json: {e}");
                    std::process::exit(1);
                }
                println!("{profile}");
            } else {
                println!("{}", runner::render(&tables, inv.json));
            }
        }
        Err(e) => {
            eprintln!("dlte-run: {e}");
            std::process::exit(1);
        }
    }
}
