//! The unified experiment runner.
//!
//! ```text
//! dlte-run <id...|all> [--json] [--jobs N] [--seed S] [--params JSON]
//! dlte-run --list
//! ```
//!
//! Resolves experiments through `dlte::experiments::registry`, runs each one
//! instrumented (wall clock, events dispatched, simulated time — attached to
//! the table as `meta`), and prints tables as text or JSON. `--jobs` sets the
//! thread count parallel sweeps fan out to; results are bit-identical for any
//! value.

use dlte_bench::runner;

fn main() {
    let inv = match runner::parse_args(std::env::args().skip(1)) {
        Ok(inv) => inv,
        Err(msg) => {
            eprintln!("dlte-run: {msg}");
            std::process::exit(2);
        }
    };
    if inv.list {
        println!("{}", runner::render_list());
        return;
    }
    match runner::run(&inv) {
        Ok(tables) => println!("{}", runner::render(&tables, inv.json)),
        Err(e) => {
            eprintln!("dlte-run: {e}");
            std::process::exit(1);
        }
    }
}
