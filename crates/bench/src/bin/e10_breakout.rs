//! Regenerates experiment e10 — see EXPERIMENTS.md and DESIGN.md §3.
fn main() {
    dlte_bench::emit(dlte::experiments::e10_breakout::run());
}
