//! Regenerates experiment e11 — see EXPERIMENTS.md and DESIGN.md §3.
fn main() {
    dlte_bench::emit(dlte::experiments::e11_x2_overhead::run());
}
