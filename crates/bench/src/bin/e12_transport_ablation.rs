//! Regenerates experiment e12 — see EXPERIMENTS.md and DESIGN.md §3.
fn main() {
    dlte_bench::emit(dlte::experiments::e12_transport_ablation::run());
}
