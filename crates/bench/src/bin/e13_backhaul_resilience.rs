//! Regenerates experiment E13 — see EXPERIMENTS.md and DESIGN.md §3.
fn main() {
    dlte_bench::emit(dlte::experiments::e13_backhaul_resilience::run());
}
