//! Regenerates experiment e1 — see EXPERIMENTS.md and DESIGN.md §3.
fn main() {
    dlte_bench::emit(dlte::experiments::e1_range::run());
}
