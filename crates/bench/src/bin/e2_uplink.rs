//! Regenerates experiment e2 — see EXPERIMENTS.md and DESIGN.md §3.
fn main() {
    dlte_bench::emit(dlte::experiments::e2_uplink::run());
}
