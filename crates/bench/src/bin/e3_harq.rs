//! Regenerates experiment e3 — see EXPERIMENTS.md and DESIGN.md §3.
fn main() {
    dlte_bench::emit(dlte::experiments::e3_harq::run());
}
