//! Regenerates experiment e4 — see EXPERIMENTS.md and DESIGN.md §3.
fn main() {
    dlte_bench::emit(dlte::experiments::e4_timing_advance::run());
}
