//! Regenerates experiment e5 — see EXPERIMENTS.md and DESIGN.md §3.
fn main() {
    dlte_bench::emit(dlte::experiments::e5_fairness::run());
}
