//! Regenerates experiment e6 — see EXPERIMENTS.md and DESIGN.md §3.
fn main() {
    dlte_bench::emit(dlte::experiments::e6_hidden_terminal::run());
}
