//! Regenerates experiment e7 — see EXPERIMENTS.md and DESIGN.md §3.
fn main() {
    dlte_bench::emit(dlte::experiments::e7_cooperative::run());
}
