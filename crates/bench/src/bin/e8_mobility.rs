//! Regenerates experiment e8 — see EXPERIMENTS.md and DESIGN.md §3.
fn main() {
    dlte_bench::emit(dlte::experiments::e8_mobility::run());
}
