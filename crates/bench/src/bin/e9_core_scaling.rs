//! Regenerates experiment e9 — see EXPERIMENTS.md and DESIGN.md §3.
fn main() {
    dlte_bench::emit(dlte::experiments::e9_core_scaling::run());
}
