//! Regenerates experiment f1 — see EXPERIMENTS.md and DESIGN.md §3.
fn main() {
    dlte_bench::emit(dlte::experiments::f1_architecture::run());
}
