//! Regenerates experiment f2 — see EXPERIMENTS.md and DESIGN.md §3.
fn main() {
    dlte_bench::emit(dlte::experiments::f2_deployment::run());
}
