//! Thin alias for `dlte-run all` — kept because EXPERIMENTS.md and older
//! scripts invoke it. Accepts the same flags as `dlte-run` (minus the id).

use dlte_bench::runner;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    args.insert(0, "all".to_string());
    let inv = match runner::parse_args(args) {
        Ok(inv) => inv,
        Err(msg) => {
            eprintln!("run_all: {msg}");
            std::process::exit(2);
        }
    };
    match runner::run(&inv) {
        Ok(tables) => println!("{}", runner::render(&tables, inv.json)),
        Err(e) => {
            eprintln!("run_all: {e}");
            std::process::exit(1);
        }
    }
}
