//! Regenerates every table and figure of the reproduction in one pass
//! (the source of EXPERIMENTS.md). Pass `--json` for machine-readable
//! output.
use dlte::experiments as ex;

fn main() {
    let tables = vec![
        ex::t1_design_space::run(),
        ex::f1_architecture::run(),
        ex::f2_deployment::run(),
        ex::e1_range::run(),
        ex::e2_uplink::run(),
        ex::e3_harq::run(),
        ex::e4_timing_advance::run(),
        ex::e5_fairness::run(),
        ex::e6_hidden_terminal::run(),
        ex::e7_cooperative::run(),
        ex::e8_mobility::run(),
        ex::e9_core_scaling::run(),
        ex::e10_breakout::run(),
        ex::e11_x2_overhead::run(),
        ex::e12_transport_ablation::run(),
        ex::e13_backhaul_resilience::run(),
    ];
    let json = std::env::args().any(|a| a == "--json");
    if json {
        let all: Vec<_> = tables.iter().collect();
        println!("{}", serde_json::to_string_pretty(&all).unwrap());
    } else {
        for t in tables {
            println!("{t}");
        }
    }
}
