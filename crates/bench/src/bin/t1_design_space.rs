//! Regenerates experiment t1 — see EXPERIMENTS.md and DESIGN.md §3.
fn main() {
    dlte_bench::emit(dlte::experiments::t1_design_space::run());
}
