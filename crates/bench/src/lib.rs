//! Shared plumbing for the `dlte-run` experiment runner.
//!
//! The [`runner`] module holds everything the `dlte-run` binary does —
//! argument parsing, registry resolution, parameter overrides, execution,
//! rendering — so the integration tests can drive the exact same code path
//! without spawning a process.
//!
//! With the `count-allocs` feature, the crate installs a counting global
//! allocator so `dlte-run bench`/`profile` can report heap-allocation
//! columns (see [`count_allocs`]).

/// Counting global allocator (feature `count-allocs`): wraps the system
/// allocator and reports every allocation to the thread-local tally behind
/// [`dlte_sim::report::scope`], which turns into the `allocs` /
/// `alloc_bytes` columns of `BENCH_fabric.json` and `BENCH_profile.json`.
/// Dealloc is deliberately uncounted — the interesting number is allocator
/// pressure per event, and the reporting hook must stay allocation-free
/// (it only bumps const-initialized thread-local `Cell`s, so reentry is
/// impossible).
#[cfg(feature = "count-allocs")]
pub mod count_allocs {
    use std::alloc::{GlobalAlloc, Layout, System};

    pub struct CountingAlloc;

    // SAFETY: defers every allocation to `System`; the tally hook touches
    // only a const-initialized thread-local `Cell` (no allocation, no lazy
    // init, no destructor), so it is safe to call from inside the
    // allocator on any thread.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            dlte_sim::report::note_alloc(layout.size());
            System.alloc(layout)
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            dlte_sim::report::note_alloc(layout.size());
            System.alloc_zeroed(layout)
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            dlte_sim::report::note_alloc(new_size);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static COUNTING_ALLOC: CountingAlloc = CountingAlloc;
}

pub mod runner {
    use dlte::experiments::registry::{find, registry, Experiment, ExperimentError};
    use dlte::experiments::Table;
    use serde_json::{Map, Value};

    /// A parsed `dlte-run` command line.
    #[derive(Clone, Debug, PartialEq)]
    pub struct Invocation {
        /// Experiment ids, run in the order given; `"all"` expands to the
        /// whole registry in report order.
        pub targets: Vec<String>,
        /// Emit JSON instead of human-readable tables.
        pub json: bool,
        /// Worker-thread override for parallel sweeps (`--jobs N`).
        pub jobs: Option<usize>,
        /// Seed override, injected into each experiment's params as `seed`
        /// (ignored by experiments without a seed knob).
        pub seed: Option<u64>,
        /// JSON object of parameter overrides; fields it omits keep their
        /// defaults, fields unknown to an experiment are ignored.
        pub params: Option<Value>,
        /// List registry ids and titles instead of running anything.
        pub list: bool,
        /// Write the structured event trace as JSONL to this file
        /// (`--trace FILE`). Deterministic for a given seed and independent
        /// of `--jobs`.
        pub trace: Option<String>,
        /// Attach the full metrics snapshot (counters, gauges, histograms)
        /// to each table's `meta` (`--metrics`).
        pub metrics: bool,
        /// Profile mode (`dlte-run profile <id...>`): run the targets and
        /// write per-experiment timing to `BENCH_profile.json`.
        pub profile: bool,
        /// Engine shard count for every simulation built by this run
        /// (`--shards N`; 0 = one shard per CPU core). Results are
        /// bit-identical for any value.
        pub shards: Option<usize>,
    }

    impl Default for Invocation {
        fn default() -> Self {
            Invocation {
                targets: vec!["all".to_string()],
                json: false,
                jobs: None,
                seed: None,
                params: None,
                list: false,
                trace: None,
                metrics: false,
                profile: false,
                shards: None,
            }
        }
    }

    pub const USAGE: &str = "usage: dlte-run <id...|all> [--json] [--jobs N] [--shards N] [--seed S] [--params JSON] [--trace FILE] [--metrics]\n       dlte-run profile <id...> [--jobs N] [--seed S] [--params JSON]\n       dlte-run bench [id...] [--sizes N,N,...] [--shards N,N,...] [--ues-per-ap N] [--seed S] [--total SECS] [--out FILE] [--baseline FILE | --mem-baseline]\n       dlte-run fuzz [--seeds A..B] [--shards N] [--out DIR] [--repro FILE] [--registry] [--mobility]\n       dlte-run --list";

    /// Parse command-line arguments (without the program name).
    pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Invocation, String> {
        let mut inv = Invocation::default();
        let mut targets: Vec<String> = Vec::new();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--json" => inv.json = true,
                "--list" => inv.list = true,
                "--metrics" => inv.metrics = true,
                "--trace" => {
                    let v = args.next().ok_or("--trace needs a file path")?;
                    inv.trace = Some(v);
                }
                "profile" if targets.is_empty() && !inv.profile => inv.profile = true,
                "--jobs" => {
                    let v = args.next().ok_or("--jobs needs a thread count")?;
                    let n: usize = v.parse().map_err(|_| format!("bad --jobs value {v:?}"))?;
                    if n == 0 {
                        return Err("--jobs must be at least 1".into());
                    }
                    inv.jobs = Some(n);
                }
                "--shards" => {
                    let v = args
                        .next()
                        .ok_or("--shards needs a shard count (0 = per-CPU)")?;
                    let n: usize = v.parse().map_err(|_| format!("bad --shards value {v:?}"))?;
                    inv.shards = Some(n);
                }
                "--seed" => {
                    let v = args.next().ok_or("--seed needs a value")?;
                    inv.seed = Some(v.parse().map_err(|_| format!("bad --seed value {v:?}"))?);
                }
                "--params" => {
                    let v = args.next().ok_or("--params needs a JSON object")?;
                    let parsed: Value =
                        serde_json::from_str(&v).map_err(|e| format!("bad --params JSON: {e}"))?;
                    if !matches!(parsed, Value::Object(_)) {
                        return Err("--params must be a JSON object".into());
                    }
                    inv.params = Some(parsed);
                }
                flag if flag.starts_with('-') => {
                    return Err(format!("unknown flag {flag:?}\n{USAGE}"));
                }
                id => targets.push(id.to_string()),
            }
        }
        if targets.is_empty() && !inv.list {
            return Err(USAGE.to_string());
        }
        if !targets.is_empty() {
            inv.targets = targets;
        }
        Ok(inv)
    }

    /// The params an invocation hands to one experiment: the caller's
    /// `--params` object (or `{}`), with `--seed` injected on top.
    /// Defaults for omitted fields come from the experiment's own
    /// `#[serde(default)]` fallback.
    pub fn effective_params(inv: &Invocation) -> Value {
        let mut params = inv
            .params
            .clone()
            .unwrap_or_else(|| Value::Object(Map::new()));
        if let (Some(seed), Value::Object(map)) = (inv.seed, &mut params) {
            map.insert(
                "seed".to_string(),
                serde_json::to_value(seed).expect("u64 serializes"),
            );
        }
        params
    }

    /// The experiments an invocation selects, in execution order. Each
    /// target resolves independently; `all` expands in place to the whole
    /// registry.
    pub fn selection(inv: &Invocation) -> Result<Vec<&'static dyn Experiment>, ExperimentError> {
        let mut out = Vec::new();
        for target in &inv.targets {
            if target.eq_ignore_ascii_case("all") {
                out.extend(registry().iter().copied());
            } else {
                out.push(find(target)?);
            }
        }
        Ok(out)
    }

    /// Execute an invocation: apply `--jobs`, resolve the selection, run each
    /// experiment instrumented, and return the tables in execution order.
    ///
    /// With `trace` set, event tracing is enabled for the whole invocation;
    /// the caller collects the buffered records afterwards with
    /// [`take_trace_jsonl`] (which also turns tracing back off). With
    /// `metrics` set, each table's `meta` carries the full metrics snapshot.
    pub fn run(inv: &Invocation) -> Result<Vec<Table>, ExperimentError> {
        if let Some(n) = inv.jobs {
            dlte_sim::set_jobs(n);
        }
        if let Some(n) = inv.shards {
            dlte_sim::set_shards(n);
        }
        dlte_obs::metrics::set_capture(inv.metrics);
        if inv.trace.is_some() {
            dlte_obs::set_tracing(true);
        }
        let params = effective_params(inv);
        selection(inv)?
            .iter()
            .map(|exp| exp.run_instrumented(&params))
            .collect()
    }

    /// Drain the event trace buffered by a `run` with tracing enabled and
    /// render it as JSONL — one [`dlte_obs::Record`] per line, `seq` dense
    /// from 0 across the whole invocation. Disables tracing afterwards.
    pub fn take_trace_jsonl() -> String {
        let records = dlte_obs::take_records();
        dlte_obs::set_tracing(false);
        let mut out = String::with_capacity(records.len() * 64);
        for r in &records {
            out.push_str(&serde_json::to_string(r).expect("record serializes"));
            out.push('\n');
        }
        out
    }

    /// One `BENCH_profile.json` entry: an experiment's identity plus the
    /// run instrumentation from its table's `meta`.
    #[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
    pub struct ProfileEntry {
        pub id: String,
        pub title: String,
        pub wall_ms: f64,
        pub events_dispatched: u64,
        pub sim_time_ns: u64,
        pub events_per_sec: f64,
        pub drops: std::collections::BTreeMap<String, u64>,
        /// Memory columns: heap allocations / bytes requested during the
        /// run (non-zero only under the `count-allocs` allocator) and
        /// packet bytes duplicated by `Packet::clone`.
        #[serde(default)]
        pub allocs: u64,
        #[serde(default)]
        pub alloc_bytes: u64,
        #[serde(default)]
        pub bytes_copied: u64,
    }

    /// The `BENCH_profile.json` document shape.
    #[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
    pub struct Profile {
        pub profile: Vec<ProfileEntry>,
    }

    /// Render profile-mode output: one entry per table with the run's
    /// timing and work counters, as written to `BENCH_profile.json`.
    pub fn render_profile(tables: &[Table]) -> String {
        let entries = tables
            .iter()
            .map(|t| {
                let m = t.meta.clone().unwrap_or_default();
                ProfileEntry {
                    id: t.id.clone(),
                    title: t.title.clone(),
                    wall_ms: m.wall_ms,
                    events_dispatched: m.events_dispatched,
                    sim_time_ns: m.sim_time_ns,
                    events_per_sec: m.events_per_sec,
                    drops: m.drops,
                    allocs: m.allocs,
                    alloc_bytes: m.alloc_bytes,
                    bytes_copied: m.bytes_copied,
                }
            })
            .collect();
        serde_json::to_string_pretty(&Profile { profile: entries }).expect("profile serializes")
    }

    /// One line per registry entry: `id  title`, plus a footer naming the
    /// experiments `dlte-run bench` can size-sweep.
    pub fn render_list() -> String {
        let mut out = registry()
            .iter()
            .map(|e| format!("{:<4} {}", e.id(), e.title()))
            .collect::<Vec<_>>()
            .join("\n");
        out.push_str(&format!(
            "\n\nbench-capable (dlte-run bench): {}",
            SIZEABLE.join(", ")
        ));
        out
    }

    /// Render run output. JSON: a single table prints as one object, several
    /// print as an array (both carry `meta`). Text: each table followed by a
    /// one-line run summary from its meta.
    pub fn render(tables: &[Table], json: bool) -> String {
        if json {
            if tables.len() == 1 {
                tables[0].to_json()
            } else {
                serde_json::to_string_pretty(&tables.iter().collect::<Vec<_>>())
                    .expect("tables serialize")
            }
        } else {
            tables
                .iter()
                .map(|t| {
                    let mut s = t.to_string();
                    if let Some(m) = &t.meta {
                        s.push_str(&format!(
                            "run: {:.1} ms wall, {} events, {:.1} s simulated, {:.0} events/s\n",
                            m.wall_ms,
                            m.events_dispatched,
                            m.sim_secs(),
                            m.events_per_sec
                        ));
                    }
                    s
                })
                .collect::<Vec<_>>()
                .join("\n")
        }
    }

    /// Experiments whose `Params` accept a `sizes` topology sweep — the
    /// only valid `dlte-run bench` targets. `e15` sweeps architectures
    /// into `BENCH_fabric.json`; `e16` sweeps engine shard counts into
    /// `BENCH_shard.json`.
    pub const SIZEABLE: &[&str] = &["e15", "e16"];

    /// A parsed `dlte-run bench` command line: a macro-benchmark sweep
    /// over topology sizes, written to `BENCH_fabric.json` (or, for the
    /// shard sweep, `BENCH_shard.json`; override with `--out`).
    /// `--baseline FILE` loads a previous document and attaches
    /// per-(arch, size) events/sec speedups against its runs.
    #[derive(Clone, Debug, PartialEq)]
    pub struct BenchInvocation {
        /// Bench targets; every id must be in [`SIZEABLE`].
        pub targets: Vec<String>,
        /// Topology sizes to sweep (approximate node counts for `e15`,
        /// total UE counts for `e16`).
        pub sizes: Vec<usize>,
        pub seed: Option<u64>,
        /// Simulated seconds per arm (`--total`).
        pub total_s: Option<f64>,
        /// Output document path; `None` picks the target's default name.
        pub out: Option<String>,
        /// Previous `BENCH_fabric.json` to compare against (`e15` only).
        pub baseline: Option<String>,
        /// Record the baseline in the same process by first running every
        /// arm in naive-memory mode (`dlte_net::set_naive_memory`), then in
        /// the default fast mode (`e15` only; excludes `--baseline`).
        pub mem_baseline: bool,
        /// Engine shard counts each size runs at (`e16` only).
        pub shards: Option<Vec<usize>>,
        /// UEs homed on each AP (`e16` only); the AP count follows as
        /// `size / ues_per_ap`.
        pub ues_per_ap: Option<usize>,
    }

    impl Default for BenchInvocation {
        fn default() -> Self {
            BenchInvocation {
                targets: vec!["e15".to_string()],
                sizes: vec![50, 200, 1000],
                seed: None,
                total_s: None,
                out: None,
                baseline: None,
                mem_baseline: false,
                shards: None,
                ues_per_ap: None,
            }
        }
    }

    impl BenchInvocation {
        /// Where the document goes: `--out` if given, else the default
        /// name for the target kind.
        pub fn out_path(&self) -> &str {
            match &self.out {
                Some(p) => p,
                None if self.targets.iter().any(|t| t == "e16") => "BENCH_shard.json",
                None => "BENCH_fabric.json",
            }
        }
    }

    /// Parse the arguments after the leading `bench` word. Targets must
    /// support topology sizing; anything else gets a pointed error rather
    /// than a silent single-size run.
    pub fn parse_bench_args<I: IntoIterator<Item = String>>(
        args: I,
    ) -> Result<BenchInvocation, String> {
        let mut inv = BenchInvocation::default();
        let mut targets: Vec<String> = Vec::new();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--sizes" => {
                    let v = args.next().ok_or("--sizes needs a list like 50,200,1000")?;
                    let sizes: Result<Vec<usize>, _> =
                        v.split(',').map(|s| s.trim().parse::<usize>()).collect();
                    inv.sizes =
                        sizes.map_err(|_| format!("bad --sizes value {v:?} (want 50,200,1000)"))?;
                    if inv.sizes.is_empty() || inv.sizes.contains(&0) {
                        return Err(format!("--sizes must be positive node counts, got {v:?}"));
                    }
                }
                "--seed" => {
                    let v = args.next().ok_or("--seed needs a value")?;
                    inv.seed = Some(v.parse().map_err(|_| format!("bad --seed value {v:?}"))?);
                }
                "--total" => {
                    let v = args.next().ok_or("--total needs simulated seconds")?;
                    let t: f64 = v.parse().map_err(|_| format!("bad --total value {v:?}"))?;
                    if !t.is_finite() || t <= 0.0 {
                        return Err(format!("--total must be positive, got {v:?}"));
                    }
                    inv.total_s = Some(t);
                }
                "--out" => {
                    inv.out = Some(args.next().ok_or("--out needs a file path")?);
                }
                "--baseline" => {
                    inv.baseline = Some(args.next().ok_or("--baseline needs a file path")?);
                }
                "--mem-baseline" => {
                    inv.mem_baseline = true;
                }
                "--shards" => {
                    let v = args.next().ok_or("--shards needs a list like 1,2,4")?;
                    let shards: Result<Vec<usize>, _> =
                        v.split(',').map(|s| s.trim().parse::<usize>()).collect();
                    let shards =
                        shards.map_err(|_| format!("bad --shards value {v:?} (want 1,2,4)"))?;
                    if shards.is_empty() || shards.contains(&0) {
                        return Err(format!("--shards must be positive shard counts, got {v:?}"));
                    }
                    inv.shards = Some(shards);
                }
                "--ues-per-ap" => {
                    let v = args.next().ok_or("--ues-per-ap needs a count")?;
                    let n: usize = v
                        .parse()
                        .map_err(|_| format!("bad --ues-per-ap value {v:?}"))?;
                    if n == 0 {
                        return Err("--ues-per-ap must be at least 1".into());
                    }
                    inv.ues_per_ap = Some(n);
                }
                flag if flag.starts_with('-') => {
                    return Err(format!("unknown bench flag {flag:?}\n{USAGE}"));
                }
                id => targets.push(id.to_string()),
            }
        }
        if !targets.is_empty() {
            inv.targets = targets;
        }
        let mut kinds = std::collections::BTreeSet::new();
        for id in &inv.targets {
            // Unknown ids get the registry's error; known-but-unsizeable
            // ids get told which experiments bench can sweep.
            let exp = find(id).map_err(|e| e.to_string())?;
            if !SIZEABLE.contains(&exp.id()) {
                return Err(format!(
                    "experiment {:?} does not support topology sizing; \
                     bench targets must take a `sizes` sweep (try: {})",
                    exp.id(),
                    SIZEABLE.join(", ")
                ));
            }
            kinds.insert(exp.id());
        }
        // The two bench kinds write different document shapes; one
        // invocation produces one document.
        if kinds.len() > 1 {
            return Err(format!(
                "bench targets {:?} write different documents (fabric vs shard sweep); \
                 run them as separate invocations",
                inv.targets
            ));
        }
        let shard_sweep = kinds.contains("e16");
        if !shard_sweep && inv.shards.is_some() {
            return Err("--shards only applies to the shard sweep (bench e16)".into());
        }
        if !shard_sweep && inv.ues_per_ap.is_some() {
            return Err("--ues-per-ap only applies to the shard sweep (bench e16)".into());
        }
        if shard_sweep && inv.baseline.is_some() {
            return Err(
                "bench e16 compares shard counts within one run and takes no --baseline".into(),
            );
        }
        if shard_sweep && inv.mem_baseline {
            return Err("--mem-baseline only applies to the fabric sweep (bench e15)".into());
        }
        if inv.mem_baseline && inv.baseline.is_some() {
            return Err(
                "--baseline and --mem-baseline both define the comparison baseline; pick one"
                    .into(),
            );
        }
        Ok(inv)
    }

    /// One entry of the bench document's `speedup` array: the optimized
    /// run's events/sec over the baseline's, per (arch, size).
    #[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
    #[serde(default)]
    pub struct Speedup {
        pub arch: String,
        pub size: usize,
        pub baseline_events_per_sec: f64,
        pub events_per_sec: f64,
        pub ratio: f64,
        /// Heap allocations per dispatched event, baseline vs this run.
        /// Zero when either side was recorded without the counting
        /// allocator (`count-allocs`), in which case `alloc_ratio` is also
        /// zero rather than a misleading infinity.
        pub baseline_allocs_per_event: f64,
        pub allocs_per_event: f64,
        /// How many times fewer allocations per event this run does than
        /// the baseline (`baseline_allocs_per_event / allocs_per_event`).
        pub alloc_ratio: f64,
    }

    impl Default for Speedup {
        fn default() -> Self {
            Speedup {
                arch: String::new(),
                size: 0,
                baseline_events_per_sec: 0.0,
                events_per_sec: 0.0,
                ratio: 0.0,
                baseline_allocs_per_event: 0.0,
                allocs_per_event: 0.0,
                alloc_ratio: 0.0,
            }
        }
    }

    /// The `BENCH_fabric.json` document: the current runs, the baseline
    /// runs they were compared against (empty without `--baseline`), and
    /// the per-(arch, size) speedups.
    #[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
    #[serde(default)]
    pub struct FabricBench {
        pub sizes: Vec<usize>,
        pub seed: u64,
        pub total_s: f64,
        pub runs: Vec<dlte::experiments::e15_fabric_scale::BenchRun>,
        pub baseline: Vec<dlte::experiments::e15_fabric_scale::BenchRun>,
        pub speedup: Vec<Speedup>,
        /// True when `baseline` holds naive-memory arms recorded by this
        /// same process (`--mem-baseline`) rather than a loaded file.
        pub mem_baseline: bool,
    }

    /// Match current runs to baseline runs by (arch, size) and compute
    /// events/sec ratios. A baseline that cannot be compared — a current
    /// run with no (arch, size) counterpart, or a baseline run whose
    /// recorded throughput is not a positive finite number — is an error,
    /// not a silently-dropped row or a 0.0 ratio.
    pub fn bench_speedups(
        baseline: &[dlte::experiments::e15_fabric_scale::BenchRun],
        runs: &[dlte::experiments::e15_fabric_scale::BenchRun],
    ) -> Result<Vec<Speedup>, String> {
        runs.iter()
            .map(|r| {
                let b = baseline
                    .iter()
                    .find(|b| b.arch == r.arch && b.size == r.size)
                    .ok_or_else(|| {
                        format!(
                            "baseline has no run for arch {:?} at size {} — it was recorded \
                             for a different sweep; re-record it with matching --sizes",
                            r.arch, r.size
                        )
                    })?;
                if !(b.events_per_sec.is_finite() && b.events_per_sec > 0.0) {
                    return Err(format!(
                        "baseline run for arch {:?} at size {} records a non-positive \
                         throughput ({} events/s) — the file is corrupt or was written \
                         by a failed run; re-record it",
                        b.arch, b.size, b.events_per_sec
                    ));
                }
                let per_event = |allocs: u64, events: u64| {
                    if events == 0 {
                        0.0
                    } else {
                        allocs as f64 / events as f64
                    }
                };
                let base_ape = per_event(b.allocs, b.events_dispatched);
                let ape = per_event(r.allocs, r.events_dispatched);
                Ok(Speedup {
                    arch: r.arch.clone(),
                    size: r.size,
                    baseline_events_per_sec: b.events_per_sec,
                    events_per_sec: r.events_per_sec,
                    ratio: r.events_per_sec / b.events_per_sec,
                    baseline_allocs_per_event: base_ape,
                    allocs_per_event: ape,
                    // Meaningful only when both sides were counted.
                    alloc_ratio: if base_ape > 0.0 && ape > 0.0 {
                        base_ape / ape
                    } else {
                        0.0
                    },
                })
            })
            .collect()
    }

    /// Execute a bench invocation: run the size sweep sequentially (each
    /// arm's wall clock is measured unshared), load the baseline document
    /// if given, and return the comparison document. The caller writes it
    /// to `inv.out`.
    pub fn run_bench(inv: &BenchInvocation) -> Result<FabricBench, String> {
        use dlte::experiments::e15_fabric_scale as e15;
        let mut p = e15::Params {
            sizes: inv.sizes.clone(),
            ..Default::default()
        };
        if let Some(s) = inv.seed {
            p.seed = s;
        }
        if let Some(t) = inv.total_s {
            p.total_s = t;
        }
        let baseline = if inv.mem_baseline {
            // Record the before/after memory comparison in one process:
            // naive-memory arms first (heap-spilled tunnels, Arc-always
            // control, boxed arrivals, clone-per-handler), then the fast
            // arms below. The mode is captured at topology build time, so
            // flipping the flag between sweeps is sufficient.
            dlte_net::set_naive_memory(true);
            let naive = e15::bench_runs(&p);
            dlte_net::set_naive_memory(false);
            naive
        } else {
            match &inv.baseline {
                Some(path) => {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("reading --baseline {path}: {e}"))?;
                    let doc: FabricBench = serde_json::from_str(&text)
                        .map_err(|e| format!("parsing --baseline {path}: {e}"))?;
                    // Fail before the (expensive) sweep runs: a baseline
                    // recorded for different sizes can't be compared, and an
                    // empty `runs` means the file isn't a bench document at
                    // all (every field defaults, so any JSON object parses).
                    if doc.runs.is_empty() {
                        return Err(format!(
                            "--baseline {path} contains no runs — not a BENCH_fabric.json \
                             document (or written by a failed run)"
                        ));
                    }
                    if doc.sizes != p.sizes {
                        return Err(format!(
                            "--baseline {path} was recorded for sizes {:?} but this run sweeps \
                             {:?}; pass matching --sizes or re-record the baseline",
                            doc.sizes, p.sizes
                        ));
                    }
                    doc.runs
                }
                None => Vec::new(),
            }
        };
        let runs = e15::bench_runs(&p);
        let speedup = if baseline.is_empty() {
            Vec::new()
        } else {
            let what = if inv.mem_baseline {
                "--mem-baseline".to_string()
            } else {
                format!("--baseline {}", inv.baseline.as_deref().unwrap_or(""))
            };
            bench_speedups(&baseline, &runs).map_err(|e| format!("{what}: {e}"))?
        };
        Ok(FabricBench {
            sizes: p.sizes.clone(),
            seed: p.seed,
            total_s: p.total_s,
            runs,
            baseline,
            speedup,
            mem_baseline: inv.mem_baseline,
        })
    }

    /// Human-readable bench report: one line per run, plus speedup lines
    /// when a baseline was compared.
    pub fn render_bench(doc: &FabricBench) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut line = |r: &dlte::experiments::e15_fabric_scale::BenchRun, tag: &str| {
            let _ = write!(
                out,
                "{:<12} size {:>5} ({} nodes, {} UEs): {} events in {:.1} ms \
                 ({:.0} events/s), {} pkts forwarded, {} pongs",
                format!("{}{}", r.arch, tag),
                r.size,
                r.nodes,
                r.ues,
                r.events_dispatched,
                r.wall_ms,
                r.events_per_sec,
                r.packets_forwarded,
                r.pongs
            );
            if r.allocs > 0 {
                let _ = write!(
                    out,
                    ", {} allocs ({} B), {} B copied",
                    r.allocs, r.alloc_bytes, r.bytes_copied
                );
            }
            out.push('\n');
        };
        if doc.mem_baseline {
            for r in &doc.baseline {
                line(r, "/naive");
            }
        }
        for r in &doc.runs {
            line(r, "");
        }
        for s in &doc.speedup {
            let _ = write!(
                out,
                "speedup {:<12} size {:>5}: {:.2}x ({:.0} -> {:.0} events/s)",
                s.arch, s.size, s.ratio, s.baseline_events_per_sec, s.events_per_sec
            );
            if s.alloc_ratio > 0.0 {
                let _ = write!(
                    out,
                    ", {:.1}x fewer allocs/event ({:.1} -> {:.1})",
                    s.alloc_ratio, s.baseline_allocs_per_event, s.allocs_per_event
                );
            }
            out.push('\n');
        }
        out
    }

    /// The `BENCH_shard.json` document: one dLTE deployment per size, run
    /// at each shard count. The counter columns are bit-identical across
    /// shard counts (asserted by the sweep itself); the timing columns are
    /// this machine's.
    #[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
    #[serde(default)]
    pub struct ShardBench {
        pub sizes: Vec<usize>,
        pub ues_per_ap: usize,
        pub shard_counts: Vec<usize>,
        pub seed: u64,
        pub total_s: f64,
        /// Worker threads `available_parallelism` reported on the machine
        /// that recorded the document — context for the speedup numbers.
        pub cores: usize,
        pub runs: Vec<dlte::experiments::e16_shard_scale::ShardBenchRun>,
    }

    /// Execute a shard-sweep bench invocation (`bench e16`): run every
    /// (size × shard count) combination sequentially and return the
    /// document for `BENCH_shard.json`. The sweep itself panics if any
    /// work counter diverges across shard counts.
    pub fn run_shard_bench(inv: &BenchInvocation) -> Result<ShardBench, String> {
        use dlte::experiments::e16_shard_scale as e16;
        let mut p = e16::Params {
            sizes: inv.sizes.clone(),
            ..Default::default()
        };
        if let Some(s) = inv.seed {
            p.seed = s;
        }
        if let Some(t) = inv.total_s {
            p.total_s = t;
        }
        if let Some(shards) = &inv.shards {
            p.shard_counts = shards.clone();
        }
        if let Some(n) = inv.ues_per_ap {
            p.ues_per_ap = n;
        }
        let runs = e16::bench_runs(&p);
        Ok(ShardBench {
            sizes: p.sizes.clone(),
            ues_per_ap: p.ues_per_ap,
            shard_counts: p.shard_counts.clone(),
            seed: p.seed,
            total_s: p.total_s,
            cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            runs,
        })
    }

    /// Human-readable shard-bench report: one line per run, plus a
    /// per-size speedup line against that size's single-shard run.
    pub fn render_shard_bench(doc: &ShardBench) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in &doc.runs {
            let _ = writeln!(
                out,
                "size {:>7} x {} shard(s) ({} nodes, {} UEs): {} events in {:.1} ms \
                 ({:.0} events/s), {} pkts forwarded, {} delivered",
                r.size,
                r.shards,
                r.nodes,
                r.ues,
                r.events_dispatched,
                r.wall_ms,
                r.events_per_sec,
                r.packets_forwarded,
                r.delivered
            );
        }
        for &size in &doc.sizes {
            let base = doc
                .runs
                .iter()
                .find(|r| r.size == size && r.shards == 1)
                .map(|r| r.events_per_sec);
            if let Some(base) = base.filter(|b| *b > 0.0) {
                for r in doc.runs.iter().filter(|r| r.size == size && r.shards > 1) {
                    let _ = writeln!(
                        out,
                        "speedup size {:>7} at {} shards: {:.2}x ({:.0} -> {:.0} events/s, {} cores)",
                        size,
                        r.shards,
                        r.events_per_sec / base,
                        base,
                        r.events_per_sec,
                        doc.cores
                    );
                }
            }
        }
        out
    }

    /// The two documents `dlte-run bench` can produce, unified so the
    /// binary has one code path for running, rendering and writing.
    #[derive(Clone, Debug)]
    pub enum BenchDoc {
        Fabric(FabricBench),
        Shard(ShardBench),
    }

    // Untagged: each document serializes as itself, so the files on disk
    // stay plain FabricBench / ShardBench shapes.
    impl serde::Serialize for BenchDoc {
        fn serialize_value(&self) -> serde_json::Value {
            match self {
                BenchDoc::Fabric(d) => d.serialize_value(),
                BenchDoc::Shard(d) => d.serialize_value(),
            }
        }
    }

    /// Run whichever bench kind the invocation selects (`parse_bench_args`
    /// guarantees the targets are all one kind).
    pub fn run_bench_doc(inv: &BenchInvocation) -> Result<BenchDoc, String> {
        if inv.targets.iter().any(|t| t == "e16") {
            run_shard_bench(inv).map(BenchDoc::Shard)
        } else {
            run_bench(inv).map(BenchDoc::Fabric)
        }
    }

    /// Render either bench document for the terminal.
    pub fn render_bench_doc(doc: &BenchDoc) -> String {
        match doc {
            BenchDoc::Fabric(d) => render_bench(d),
            BenchDoc::Shard(d) => render_shard_bench(d),
        }
    }

    /// A parsed `dlte-run fuzz` command line. Fuzz mode is a separate
    /// dispatch from the experiment registry: `dlte-run fuzz [--seeds A..B]
    /// [--out DIR]` sweeps seeds through `dlte::fuzz`, and `--repro FILE`
    /// replays one minimized case bit-for-bit instead.
    #[derive(Clone, Debug, PartialEq)]
    pub struct FuzzInvocation {
        pub seed_start: u64,
        pub seed_end: u64,
        /// Directory minimized `fuzz_repro_<seed>.json` files are written to.
        pub out_dir: String,
        /// Replay this repro file instead of sweeping.
        pub repro: Option<String>,
        /// Engine shard count for every fuzz case (`--shards N`; 0 =
        /// per-CPU). Oracles and evidence are bit-identical for any value.
        pub shards: Option<usize>,
        /// Fuzz the spectrum registry (`dlte::fuzz_registry`) instead of
        /// the network chaos cases. Repros are
        /// `fuzz_repro_registry_<seed>.json`.
        pub registry: bool,
        /// Layer seeded moving-UE populations (handover storms) under the
        /// chaos plans (`--mobility`; `dlte::fuzz::generate_mobility`).
        pub mobility: bool,
    }

    impl Default for FuzzInvocation {
        fn default() -> Self {
            FuzzInvocation {
                seed_start: 0,
                seed_end: 100,
                out_dir: ".".to_string(),
                repro: None,
                shards: None,
                registry: false,
                mobility: false,
            }
        }
    }

    /// Parse the arguments after the leading `fuzz` word.
    pub fn parse_fuzz_args<I: IntoIterator<Item = String>>(
        args: I,
    ) -> Result<FuzzInvocation, String> {
        let mut inv = FuzzInvocation::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--seeds" => {
                    let v = args.next().ok_or("--seeds needs a range like 0..200")?;
                    let (a, b) = v
                        .split_once("..")
                        .ok_or_else(|| format!("bad --seeds range {v:?} (want A..B)"))?;
                    inv.seed_start = a.parse().map_err(|_| format!("bad --seeds start {a:?}"))?;
                    inv.seed_end = b.parse().map_err(|_| format!("bad --seeds end {b:?}"))?;
                    if inv.seed_end <= inv.seed_start {
                        return Err(format!("empty --seeds range {v:?}"));
                    }
                }
                "--out" => {
                    inv.out_dir = args.next().ok_or("--out needs a directory")?;
                }
                "--repro" => {
                    inv.repro = Some(args.next().ok_or("--repro needs a file path")?);
                }
                "--registry" => {
                    inv.registry = true;
                }
                "--mobility" => {
                    inv.mobility = true;
                }
                "--shards" => {
                    let v = args
                        .next()
                        .ok_or("--shards needs a shard count (0 = per-CPU)")?;
                    let n: usize = v.parse().map_err(|_| format!("bad --shards value {v:?}"))?;
                    inv.shards = Some(n);
                }
                other => return Err(format!("unknown fuzz argument {other:?}\n{USAGE}")),
            }
        }
        if inv.registry && inv.mobility {
            return Err(
                "--mobility layers moving UEs under network chaos; it does not apply to --registry"
                    .to_string(),
            );
        }
        Ok(inv)
    }

    /// Execute a fuzz invocation. Returns the rendered report and whether
    /// every oracle held (`false` means the caller should exit nonzero).
    /// Failing sweep seeds write their minimized repro to
    /// `<out_dir>/fuzz_repro_<seed>.json`.
    pub fn run_fuzz(inv: &FuzzInvocation) -> (String, bool) {
        use dlte::fuzz;
        use std::fmt::Write as _;
        if let Some(n) = inv.shards {
            dlte_sim::set_shards(n);
        }
        if inv.registry {
            return run_fuzz_registry(inv);
        }
        let mut out = String::new();
        if let Some(path) = &inv.repro {
            match fuzz::replay_repro(std::path::Path::new(path)) {
                Ok((repro, report)) => {
                    let _ = writeln!(
                        out,
                        "replay seed {} ({}, {} cells x {} ues, {} fault specs):",
                        repro.seed,
                        repro.case.arch,
                        repro.case.n_cells,
                        repro.case.ues_per_cell,
                        repro.case.plan.faults.len()
                    );
                    for v in &report.violations {
                        let _ = writeln!(out, "  {v}");
                    }
                    if report.violations.is_empty() {
                        let _ = writeln!(out, "  all oracles green (bug no longer reproduces)");
                    }
                    (out, report.violations.is_empty())
                }
                Err(e) => (format!("fuzz replay: {e}\n"), false),
            }
        } else {
            let mut failures = 0u64;
            for seed in inv.seed_start..inv.seed_end {
                if let Some(repro) = fuzz::fuzz_seed_with(seed, inv.mobility) {
                    failures += 1;
                    let _ = writeln!(
                        out,
                        "seed {seed} FAILED ({} violations, minimized to {} fault specs in {} runs):",
                        repro.violations.len(),
                        repro.case.plan.faults.len(),
                        repro.shrink_runs
                    );
                    for v in &repro.violations {
                        let _ = writeln!(out, "  {v}");
                    }
                    match fuzz::write_repro(&repro, std::path::Path::new(&inv.out_dir)) {
                        Ok(path) => {
                            let _ = writeln!(out, "  repro: {}", path.display());
                        }
                        Err(e) => {
                            let _ = writeln!(out, "  repro write failed: {e}");
                        }
                    }
                }
            }
            let cases = inv.seed_end - inv.seed_start;
            let _ = writeln!(
                out,
                "fuzz{}: {cases} cases ({}..{}), {failures} failed",
                if inv.mobility { " --mobility" } else { "" },
                inv.seed_start,
                inv.seed_end
            );
            (out, failures == 0)
        }
    }

    /// The `--registry` arm of [`run_fuzz`]: sweep (or replay) seeded
    /// registry chaos workloads through `dlte::fuzz_registry`.
    fn run_fuzz_registry(inv: &FuzzInvocation) -> (String, bool) {
        use dlte::fuzz_registry;
        use std::fmt::Write as _;
        let mut out = String::new();
        if let Some(path) = &inv.repro {
            match fuzz_registry::replay_registry_repro(std::path::Path::new(path)) {
                Ok((repro, outcome)) => {
                    let w = &repro.workload;
                    let _ = writeln!(
                        out,
                        "replay registry seed {} ({}, {} zones, {} replicas, {} aps, {} fault specs):",
                        repro.seed,
                        w.flavour,
                        w.n_zones,
                        w.n_replicas,
                        w.n_aps,
                        w.plan.faults.len()
                    );
                    for v in &outcome.violations {
                        let _ = writeln!(out, "  {v}");
                    }
                    if outcome.violations.is_empty() {
                        let _ = writeln!(out, "  all oracles green (bug no longer reproduces)");
                    }
                    (out, outcome.violations.is_empty())
                }
                Err(e) => (format!("registry fuzz replay: {e}\n"), false),
            }
        } else {
            let mut failures = 0u64;
            for seed in inv.seed_start..inv.seed_end {
                if let Some(repro) = fuzz_registry::fuzz_registry_seed(seed) {
                    failures += 1;
                    let _ = writeln!(
                        out,
                        "registry seed {seed} FAILED ({} violations, minimized to {} fault specs in {} runs):",
                        repro.violations.len(),
                        repro.workload.plan.faults.len(),
                        repro.shrink_runs
                    );
                    for v in &repro.violations {
                        let _ = writeln!(out, "  {v}");
                    }
                    match fuzz_registry::write_registry_repro(
                        &repro,
                        std::path::Path::new(&inv.out_dir),
                    ) {
                        Ok(path) => {
                            let _ = writeln!(out, "  repro: {}", path.display());
                        }
                        Err(e) => {
                            let _ = writeln!(out, "  repro write failed: {e}");
                        }
                    }
                }
            }
            let cases = inv.seed_end - inv.seed_start;
            let _ = writeln!(
                out,
                "registry fuzz: {cases} cases ({}..{}), {failures} failed",
                inv.seed_start, inv.seed_end
            );
            (out, failures == 0)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn args(s: &str) -> Vec<String> {
            s.split_whitespace().map(String::from).collect()
        }

        #[test]
        fn parses_the_documented_forms() {
            let inv = parse_args(args("e5 --json --jobs 4 --seed 7")).unwrap();
            assert_eq!(inv.targets, vec!["e5"]);
            assert!(inv.json);
            assert_eq!(inv.jobs, Some(4));
            assert_eq!(inv.seed, Some(7));
            assert_eq!(inv.shards, None);

            let inv = parse_args(args("e13 --shards 4")).unwrap();
            assert_eq!(inv.shards, Some(4));
            // 0 = one shard per CPU core.
            let inv = parse_args(args("e13 --shards 0")).unwrap();
            assert_eq!(inv.shards, Some(0));

            let inv = parse_args(args("all")).unwrap();
            assert_eq!(inv.targets, vec!["all"]);
            assert!(!inv.json);

            // Several ids run back to back, in the order given.
            let inv = parse_args(args("e13 e14 --json")).unwrap();
            assert_eq!(inv.targets, vec!["e13", "e14"]);
            assert!(inv.json);

            let inv = parse_args(args("--list")).unwrap();
            assert!(inv.list);

            let inv = parse_args(args("e14 --trace /tmp/t.jsonl --metrics")).unwrap();
            assert_eq!(inv.trace.as_deref(), Some("/tmp/t.jsonl"));
            assert!(inv.metrics);

            let inv = parse_args(args("profile e1 e9")).unwrap();
            assert!(inv.profile);
            assert_eq!(inv.targets, vec!["e1", "e9"]);
        }

        #[test]
        fn rejects_malformed_command_lines() {
            assert!(parse_args(args("")).is_err());
            assert!(parse_args(args("e1 --trace")).is_err());
            assert!(parse_args(args("profile")).is_err(), "profile needs ids");
            assert!(parse_args(args("e1 --jobs zero")).is_err());
            assert!(parse_args(args("e1 --jobs 0")).is_err());
            assert!(parse_args(args("e1 --shards two")).is_err());
            assert!(parse_args(args("e1 --frobnicate")).is_err());
            assert!(parse_args(vec!["e1".into(), "--params".into(), "[1,2]".into()]).is_err());
        }

        #[test]
        fn parses_fuzz_command_lines() {
            let inv = parse_fuzz_args(args("--seeds 0..200 --out target/fuzz")).unwrap();
            assert_eq!(inv.seed_start, 0);
            assert_eq!(inv.seed_end, 200);
            assert_eq!(inv.out_dir, "target/fuzz");
            assert_eq!(inv.repro, None);

            let inv = parse_fuzz_args(args("--repro fuzz_repro_7.json")).unwrap();
            assert_eq!(inv.repro.as_deref(), Some("fuzz_repro_7.json"));

            let inv = parse_fuzz_args(args("--seeds 0..10 --shards 2")).unwrap();
            assert_eq!(inv.shards, Some(2));
            assert!(parse_fuzz_args(args("--shards two")).is_err());

            let inv = parse_fuzz_args(args("--registry --seeds 0..50")).unwrap();
            assert!(inv.registry);
            assert_eq!((inv.seed_start, inv.seed_end), (0, 50));
            assert!(!parse_fuzz_args(args("--seeds 0..50")).unwrap().registry);

            let inv = parse_fuzz_args(args("--mobility --seeds 0..120")).unwrap();
            assert!(inv.mobility && !inv.registry);
            assert!(!parse_fuzz_args(args("--seeds 0..50")).unwrap().mobility);
            assert!(
                parse_fuzz_args(args("--registry --mobility")).is_err(),
                "mobility does not compose with registry fuzzing"
            );

            assert_eq!(
                parse_fuzz_args(args("")).unwrap(),
                FuzzInvocation::default()
            );
            assert!(parse_fuzz_args(args("--seeds 5")).is_err());
            assert!(parse_fuzz_args(args("--seeds 7..7")).is_err());
            assert!(parse_fuzz_args(args("--seeds x..9")).is_err());
            assert!(parse_fuzz_args(args("--frobnicate")).is_err());
        }

        #[test]
        fn fuzz_sweep_runs_green_on_a_small_range() {
            let inv = FuzzInvocation {
                seed_start: 0,
                seed_end: 3,
                ..FuzzInvocation::default()
            };
            let (report, ok) = run_fuzz(&inv);
            assert!(ok, "seeds 0..3 should be green:\n{report}");
            assert!(report.contains("3 cases (0..3), 0 failed"));
        }

        #[test]
        fn mobility_fuzz_sweep_runs_green_on_a_small_range() {
            let inv = FuzzInvocation {
                seed_start: 0,
                seed_end: 2,
                mobility: true,
                ..FuzzInvocation::default()
            };
            let (report, ok) = run_fuzz(&inv);
            assert!(ok, "mobility seeds 0..2 should be green:\n{report}");
            assert!(report.contains("fuzz --mobility: 2 cases (0..2), 0 failed"));
        }

        #[test]
        fn registry_fuzz_sweep_runs_green_on_a_small_range() {
            let inv = FuzzInvocation {
                seed_start: 0,
                seed_end: 5,
                registry: true,
                ..FuzzInvocation::default()
            };
            let (report, ok) = run_fuzz(&inv);
            assert!(ok, "registry seeds 0..5 should be green:\n{report}");
            assert!(report.contains("registry fuzz: 5 cases (0..5), 0 failed"));
        }

        #[test]
        fn parses_bench_command_lines() {
            assert_eq!(
                parse_bench_args(args("")).unwrap(),
                BenchInvocation::default()
            );
            let inv = parse_bench_args(args(
                "e15 --sizes 50,200,1000 --seed 7 --total 5.0 --out B.json --baseline old.json",
            ))
            .unwrap();
            assert_eq!(inv.targets, vec!["e15"]);
            assert_eq!(inv.sizes, vec![50, 200, 1000]);
            assert_eq!(inv.seed, Some(7));
            assert_eq!(inv.total_s, Some(5.0));
            assert_eq!(inv.out_path(), "B.json");
            assert_eq!(inv.baseline.as_deref(), Some("old.json"));

            // The shard sweep: its own flags, its own default document.
            let inv = parse_bench_args(args("e16 --sizes 10000 --shards 1,2,4,8 --ues-per-ap 20"))
                .unwrap();
            assert_eq!(inv.targets, vec!["e16"]);
            assert_eq!(inv.shards, Some(vec![1, 2, 4, 8]));
            assert_eq!(inv.ues_per_ap, Some(20));
            assert_eq!(inv.out_path(), "BENCH_shard.json");
            assert_eq!(
                parse_bench_args(args("e15")).unwrap().out_path(),
                "BENCH_fabric.json"
            );

            // Same-process memory baseline.
            let inv = parse_bench_args(args("e15 --mem-baseline")).unwrap();
            assert!(inv.mem_baseline);
        }

        #[test]
        fn bench_rejects_unsizeable_and_malformed_targets() {
            // A real experiment without a `sizes` sweep is refused with a
            // pointer at what bench can run.
            let err = parse_bench_args(args("e14")).unwrap_err();
            assert!(
                err.contains("does not support topology sizing") && err.contains("e15"),
                "unhelpful error: {err}"
            );
            // Unknown ids get the registry's unknown-experiment error.
            let err = parse_bench_args(args("e99")).unwrap_err();
            assert!(err.contains("unknown experiment"), "got: {err}");
            assert!(parse_bench_args(args("--sizes")).is_err());
            assert!(parse_bench_args(args("--sizes 50,x")).is_err());
            assert!(parse_bench_args(args("--sizes 0")).is_err());
            assert!(parse_bench_args(args("--total -1")).is_err());
            assert!(parse_bench_args(args("--frobnicate")).is_err());
            // Shard-sweep flag plumbing: no zero shard counts, no
            // fabric/shard document mixing, no kind-mismatched flags.
            assert!(parse_bench_args(args("e16 --shards 0,2")).is_err());
            assert!(parse_bench_args(args("e16 --shards x")).is_err());
            assert!(parse_bench_args(args("e16 --ues-per-ap 0")).is_err());
            let err = parse_bench_args(args("e15 e16")).unwrap_err();
            assert!(err.contains("separate invocations"), "got: {err}");
            let err = parse_bench_args(args("e15 --shards 1,2")).unwrap_err();
            assert!(err.contains("bench e16"), "got: {err}");
            let err = parse_bench_args(args("e15 --ues-per-ap 10")).unwrap_err();
            assert!(err.contains("bench e16"), "got: {err}");
            let err = parse_bench_args(args("e16 --baseline old.json")).unwrap_err();
            assert!(err.contains("no --baseline"), "got: {err}");
            let err = parse_bench_args(args("e16 --mem-baseline")).unwrap_err();
            assert!(err.contains("bench e15"), "got: {err}");
            let err = parse_bench_args(args("e15 --baseline x.json --mem-baseline")).unwrap_err();
            assert!(err.contains("pick one"), "got: {err}");
        }

        /// `--mem-baseline` records naive-memory arms and fast arms in one
        /// process; the naive arms clone per delivery, the fast arms never
        /// copy a packet.
        #[test]
        fn mem_baseline_records_naive_arms_in_one_process() {
            let inv = BenchInvocation {
                sizes: vec![20],
                total_s: Some(2.0),
                mem_baseline: true,
                ..Default::default()
            };
            let doc = run_bench(&inv).unwrap();
            assert!(doc.mem_baseline);
            assert_eq!(doc.baseline.len(), 2, "naive arm per architecture");
            assert_eq!(doc.runs.len(), 2);
            assert_eq!(doc.speedup.len(), 2);
            for (naive, fast) in doc.baseline.iter().zip(&doc.runs) {
                assert_eq!(
                    (naive.arch.as_str(), naive.size),
                    (fast.arch.as_str(), fast.size)
                );
                // Identical simulation work either way — only memory
                // behavior differs.
                assert_eq!(naive.events_dispatched, fast.events_dispatched);
                assert_eq!(naive.packets_forwarded, fast.packets_forwarded);
                assert_eq!(naive.pongs, fast.pongs);
                assert!(naive.bytes_copied > 0, "naive arms clone per delivery");
                assert_eq!(fast.bytes_copied, 0, "fast arms never copy a packet");
            }
        }

        #[test]
        fn bench_speedups_match_runs_by_arch_and_size() {
            use dlte::experiments::e15_fabric_scale::BenchRun;
            let base = vec![BenchRun {
                arch: "dlte".into(),
                size: 50,
                events_per_sec: 100.0,
                ..Default::default()
            }];
            let now = vec![BenchRun {
                arch: "dlte".into(),
                size: 50,
                events_per_sec: 250.0,
                ..Default::default()
            }];
            let s = bench_speedups(&base, &now).unwrap();
            assert_eq!(s.len(), 1);
            assert_eq!((s[0].arch.as_str(), s[0].size), ("dlte", 50));
            assert!((s[0].ratio - 2.5).abs() < 1e-9);

            // A run with no baseline counterpart is an error, not a
            // silently-missing speedup entry.
            let extra = vec![BenchRun {
                arch: "dlte".into(),
                size: 200,
                events_per_sec: 300.0,
                ..Default::default()
            }];
            let err = bench_speedups(&base, &extra).unwrap_err();
            assert!(err.contains("no run for arch"), "got: {err}");

            // A baseline recorded with zero throughput (failed or corrupt
            // run) is an error, not a 0.0 ratio.
            let dead = vec![BenchRun {
                arch: "dlte".into(),
                size: 50,
                events_per_sec: 0.0,
                ..Default::default()
            }];
            let err = bench_speedups(&dead, &now).unwrap_err();
            assert!(err.contains("non-positive"), "got: {err}");
        }

        #[test]
        fn bench_baseline_failures_are_loud_and_early() {
            let dir = std::env::temp_dir();
            // Missing file.
            let inv = BenchInvocation {
                sizes: vec![20],
                baseline: Some(dir.join("dlte_no_such_baseline.json").display().to_string()),
                ..Default::default()
            };
            let err = run_bench(&inv).unwrap_err();
            assert!(err.contains("reading --baseline"), "got: {err}");

            // Malformed JSON.
            let bad = dir.join("dlte_bad_baseline.json");
            std::fs::write(&bad, "{not json").unwrap();
            let inv = BenchInvocation {
                sizes: vec![20],
                baseline: Some(bad.display().to_string()),
                ..Default::default()
            };
            let err = run_bench(&inv).unwrap_err();
            assert!(err.contains("parsing --baseline"), "got: {err}");

            // Parses, but isn't a bench document (every field defaults).
            let empty = dir.join("dlte_empty_baseline.json");
            std::fs::write(&empty, "{}").unwrap();
            let inv = BenchInvocation {
                sizes: vec![20],
                baseline: Some(empty.display().to_string()),
                ..Default::default()
            };
            let err = run_bench(&inv).unwrap_err();
            assert!(err.contains("contains no runs"), "got: {err}");

            // Recorded for different sizes: refused before the sweep runs.
            let doc = FabricBench {
                sizes: vec![50],
                runs: vec![dlte::experiments::e15_fabric_scale::BenchRun {
                    arch: "dlte".into(),
                    size: 50,
                    events_per_sec: 100.0,
                    ..Default::default()
                }],
                ..Default::default()
            };
            let mismatched = dir.join("dlte_mismatched_baseline.json");
            std::fs::write(&mismatched, serde_json::to_string(&doc).unwrap()).unwrap();
            let inv = BenchInvocation {
                sizes: vec![20],
                baseline: Some(mismatched.display().to_string()),
                ..Default::default()
            };
            let err = run_bench(&inv).unwrap_err();
            assert!(
                err.contains("recorded for sizes [50]") && err.contains("[20]"),
                "got: {err}"
            );
        }

        #[test]
        fn shard_bench_smoke_runs_and_round_trips() {
            let inv = parse_bench_args(args(
                "e16 --sizes 40 --shards 1,2 --ues-per-ap 4 --total 1.0",
            ))
            .unwrap();
            let doc = match run_bench_doc(&inv).unwrap() {
                BenchDoc::Shard(d) => d,
                BenchDoc::Fabric(_) => panic!("e16 must produce the shard document"),
            };
            assert_eq!(doc.runs.len(), 2, "one run per shard count");
            assert_eq!(doc.shard_counts, vec![1, 2]);
            assert!(doc.cores >= 1);
            // The sweep asserts counter invariance itself; spot-check the
            // document agrees.
            assert_eq!(
                doc.runs[0].events_dispatched, doc.runs[1].events_dispatched,
                "counters must be shard-invariant"
            );
            let json = serde_json::to_string(&doc).unwrap();
            let back: ShardBench = serde_json::from_str(&json).unwrap();
            assert_eq!(back.runs.len(), 2);
            let report = render_shard_bench(&doc);
            assert!(
                report.contains("2 shard(s)") && report.contains("speedup"),
                "{report}"
            );
        }

        #[test]
        fn bench_smoke_runs_and_round_trips() {
            let inv = BenchInvocation {
                sizes: vec![20],
                total_s: Some(2.0),
                ..Default::default()
            };
            let doc = run_bench(&inv).unwrap();
            assert_eq!(doc.runs.len(), 2, "both arms at one size");
            assert!(doc.baseline.is_empty() && doc.speedup.is_empty());
            for r in &doc.runs {
                assert!(r.events_dispatched > 0 && r.pongs > 0);
            }
            let json = serde_json::to_string(&doc).unwrap();
            let back: FabricBench = serde_json::from_str(&json).unwrap();
            assert_eq!(back.runs.len(), 2);
            let report = render_bench(&doc);
            assert!(report.contains("centralized") && report.contains("events/s"));
        }

        #[test]
        fn list_names_the_bench_targets() {
            let list = render_list();
            assert!(list.contains("e15"));
            assert!(list.contains("e16"));
            assert!(list.contains("bench-capable (dlte-run bench): e15, e16"));
        }

        #[test]
        fn seed_overrides_params_object() {
            let mut inv = parse_args(vec![
                "e1".into(),
                "--params".into(),
                r#"{"distances_km": [1.0], "seed": 3}"#.into(),
                "--seed".into(),
                "9".into(),
            ])
            .unwrap();
            let params = effective_params(&inv);
            assert_eq!(params.get("seed").and_then(Value::as_u64), Some(9));
            inv.seed = None;
            let params = effective_params(&inv);
            assert_eq!(params.get("seed").and_then(Value::as_u64), Some(3));
        }

        #[test]
        fn selection_resolves_all_single_and_multiple_ids() {
            let all = selection(&Invocation::default()).unwrap();
            assert_eq!(all.len(), 21);
            let one = selection(&Invocation {
                targets: vec!["E13".into()],
                ..Invocation::default()
            })
            .unwrap();
            assert_eq!(one.len(), 1);
            assert_eq!(one[0].id(), "e13");
            let pair = selection(&Invocation {
                targets: vec!["e14".into(), "e13".into()],
                ..Invocation::default()
            })
            .unwrap();
            let ids: Vec<&str> = pair.iter().map(|e| e.id()).collect();
            assert_eq!(ids, vec!["e14", "e13"], "order as given");
            assert!(selection(&Invocation {
                targets: vec!["nope".into()],
                ..Invocation::default()
            })
            .is_err());
        }
    }
}
