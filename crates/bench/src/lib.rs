//! Shared plumbing for the experiment binaries.
//!
//! Every binary prints its experiment's [`dlte::experiments::Table`] as
//! human-readable text, or as JSON with `--json` (the form EXPERIMENTS.md
//! is regenerated from).

use dlte::experiments::Table;

/// Print a table honoring the `--json` flag.
pub fn emit(table: Table) {
    let json = std::env::args().any(|a| a == "--json");
    if json {
        println!("{}", table.to_json());
    } else {
        println!("{table}");
    }
}
