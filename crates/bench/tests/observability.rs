//! Integration tests for the cross-layer observability surface: `--trace`
//! JSONL is deterministic and jobs-invariant, every line parses into the
//! typed event enum, `--metrics` attaches a snapshot, and profile mode
//! renders well-formed JSON.
//!
//! Tests in this file serialize on a mutex: `run` flips the process-wide
//! metrics-capture flag, so concurrent invocations would race.

use dlte_bench::runner::{render_profile, run, take_trace_jsonl, Invocation, Profile};
use dlte_obs::{Event, Record};
use std::sync::{Mutex, MutexGuard, OnceLock};

fn lock() -> MutexGuard<'static, ()> {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn quick_params() -> serde_json::Value {
    serde_json::from_str(r#"{ "total_s": 10.0 }"#).expect("literal parses")
}

fn traced(target: &str, jobs: usize) -> String {
    let inv = Invocation {
        targets: vec![target.to_string()],
        jobs: Some(jobs),
        seed: Some(7),
        params: Some(quick_params()),
        trace: Some("in-memory".to_string()),
        ..Invocation::default()
    };
    run(&inv).unwrap_or_else(|e| panic!("{target} runs: {e}"));
    take_trace_jsonl()
}

#[test]
fn e13_trace_is_byte_identical_across_jobs() {
    let _g = lock();
    let sequential = traced("e13", 1);
    let parallel = traced("e13", 4);
    assert!(!sequential.is_empty(), "e13 emits trace records");
    assert_eq!(sequential, parallel, "trace depends on --jobs");
}

#[test]
fn e14_trace_lines_parse_and_cover_event_kinds() {
    let _g = lock();
    let jsonl = traced("e14", 2);
    let records: Vec<Record> = jsonl
        .lines()
        .map(|l| serde_json::from_str(l).unwrap_or_else(|e| panic!("bad trace line {l:?}: {e}")))
        .collect();
    assert!(!records.is_empty());
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.seq, i as u64, "seq must be dense from 0");
    }
    let has = |name: &str, pred: &dyn Fn(&Event) -> bool| {
        assert!(
            records.iter().any(|r| pred(&r.event)),
            "e14 trace has no {name} event"
        );
    };
    has("NAS", &|e| matches!(e, Event::NasStart { .. }));
    has("HARQ", &|e| matches!(e, Event::HarqTx { .. }));
    has("GTP-U path", &|e| {
        matches!(
            e,
            Event::GtpEcho { .. }
                | Event::GtpPathDown { .. }
                | Event::GtpPeerRestart { .. }
                | Event::GtpErrorIndication { .. }
        )
    });
    has("fault transition", &|e| {
        matches!(e, Event::FaultLink { .. } | Event::FaultNode { .. })
    });
    has("drop", &|e| matches!(e, Event::Drop { .. }));
}

#[test]
fn metrics_flag_attaches_snapshot_with_matching_drops() {
    let _g = lock();
    let inv = Invocation {
        targets: vec!["e13".to_string()],
        jobs: Some(2),
        seed: Some(7),
        params: Some(quick_params()),
        metrics: true,
        ..Invocation::default()
    };
    let tables = run(&inv).expect("e13 runs");
    let meta = tables[0].meta.as_ref().expect("meta attached");
    let snap = meta.metrics.as_ref().expect("--metrics attaches snapshot");
    assert_eq!(meta.drops, snap.prefixed("drops_"));
    assert!(
        !meta.drops.is_empty(),
        "e13 injects faults, so some packets must drop"
    );
}

#[test]
fn profile_mode_renders_wellformed_json() {
    let _g = lock();
    let inv = Invocation {
        targets: vec!["e9".to_string(), "e13".to_string()],
        jobs: Some(2),
        seed: Some(7),
        params: Some(quick_params()),
        profile: true,
        ..Invocation::default()
    };
    let tables = run(&inv).expect("e9+e13 run");
    let rendered = render_profile(&tables);
    let profile: Profile = serde_json::from_str(&rendered).expect("profile parses");
    assert_eq!(profile.profile.len(), 2);
    assert_eq!(profile.profile[0].id, "E9");
    assert_eq!(profile.profile[1].id, "E13");
    for e in &profile.profile {
        assert!(e.wall_ms >= 0.0);
        assert!(e.events_dispatched > 0, "{}: no work recorded", e.id);
        assert!(e.sim_time_ns > 0, "{}: no simulated time", e.id);
    }
}
