//! Golden tests for the `dlte-run` runner: the registry is complete, JSON
//! output survives a serde round trip, and results are independent of the
//! worker-thread count.
//!
//! These drive `dlte_bench::runner` directly (the binary is a thin shell
//! around it), with shortened experiment horizons where the defaults would
//! make a debug-build test run take minutes.

use dlte::experiments::registry::registry;
use dlte::experiments::Table;
use dlte_bench::runner::{parse_args, render, run, Invocation};

#[test]
fn registry_lists_all_twenty_one_experiments() {
    let ids: Vec<&str> = registry().iter().map(|e| e.id()).collect();
    assert_eq!(
        ids,
        [
            "t1", "f1", "f2", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11",
            "e12", "e13", "e14", "e15", "e16", "e17", "e18"
        ]
    );
}

/// A params override every experiment tolerates (unknown keys are ignored)
/// that shortens the slowest horizons — e12, e13 and e14 default to 20
/// simulated seconds each — so two full sweeps fit in a debug-build test.
fn quick_params() -> serde_json::Value {
    serde_json::from_str(r#"{ "total_s": 10.0 }"#).expect("literal parses")
}

fn run_all(jobs: usize) -> Vec<Table> {
    let inv = Invocation {
        jobs: Some(jobs),
        seed: Some(7),
        params: Some(quick_params()),
        ..Invocation::default()
    };
    run(&inv).expect("all experiments run")
}

#[test]
fn all_json_round_trips_and_jobs_count_does_not_change_results() {
    let sequential = run_all(1);
    assert_eq!(sequential.len(), 21);

    // Every table carries instrumentation from run_instrumented.
    for t in &sequential {
        let m = t
            .meta
            .as_ref()
            .unwrap_or_else(|| panic!("{} has meta", t.id));
        assert!(m.wall_ms >= 0.0, "{}: wall_ms {}", t.id, m.wall_ms);
    }

    // The rendered JSON array parses back into the same tables.
    let rendered = render(&sequential, true);
    let back: Vec<Table> = serde_json::from_str(&rendered).expect("rendered JSON parses");
    assert_eq!(back, sequential);

    // Re-running with four workers yields byte-identical tables once the
    // timing-dependent meta is stripped, and the same amount of work done.
    let parallel = run_all(4);
    for (s, p) in sequential.iter().zip(&parallel) {
        let (ms, mp) = (s.meta.as_ref().unwrap(), p.meta.as_ref().unwrap());
        assert_eq!(
            ms.events_dispatched, mp.events_dispatched,
            "{}: event count depends on jobs",
            s.id
        );
        assert_eq!(
            ms.sim_time_ns, mp.sim_time_ns,
            "{}: sim time depends on jobs",
            s.id
        );
        let (mut s, mut p) = (s.clone(), p.clone());
        s.meta = None;
        p.meta = None;
        assert_eq!(
            serde_json::to_string(&s).unwrap(),
            serde_json::to_string(&p).unwrap(),
            "{}: results depend on jobs",
            s.id
        );
    }
}

/// The fault-injection experiments (E13's failure script, E14's
/// [`dlte_faults::FaultPlan`]) must be deterministic under the worker-pool:
/// the same seed run under `--jobs 1` and `--jobs 4` produces byte-identical
/// tables. This is the multi-target command line the CI goldens job uses.
#[test]
fn fault_experiments_are_jobs_invariant() {
    let run_pair = |jobs: &str| {
        let inv = parse_args(
            [
                "e13",
                "e14",
                "--json",
                "--jobs",
                jobs,
                "--seed",
                "7",
                "--params",
                r#"{"total_s": 10.0}"#,
            ]
            .map(String::from),
        )
        .expect("parses");
        run(&inv).expect("e13+e14 run")
    };
    let sequential = run_pair("1");
    let parallel = run_pair("4");
    assert_eq!(sequential.len(), 2);
    assert_eq!(sequential[0].id, "E13");
    assert_eq!(sequential[1].id, "E14");
    for (s, p) in sequential.iter().zip(&parallel) {
        let (mut s, mut p) = (s.clone(), p.clone());
        s.meta = None;
        p.meta = None;
        assert_eq!(
            serde_json::to_string(&s).unwrap(),
            serde_json::to_string(&p).unwrap(),
            "{}: fault schedule depends on jobs",
            s.id
        );
    }
}

#[test]
fn single_experiment_json_is_one_object() {
    let inv = parse_args(vec!["e3".into(), "--json".into()]).expect("parses");
    let tables = run(&inv).expect("e3 runs");
    assert_eq!(tables.len(), 1);
    let out = render(&tables, true);
    let table: Table = serde_json::from_str(&out).expect("single table is a JSON object");
    assert_eq!(table.id, "E3");
    assert!(table.meta.is_some());
}
