//! # dlte-check — cross-layer invariant oracles
//!
//! FoundationDB-style simulation-testing oracles: pure functions from
//! post-run evidence (network conservation counters, EPC state snapshots,
//! UE views, the structured event stream) to a list of [`Violation`]s.
//! The `dlte-run fuzz` sweep evaluates every oracle after each randomized
//! chaos run; `cargo test` evaluates them on golden scenarios.
//!
//! The oracles encode the paper's safety claims as machine-checkable
//! invariants:
//!
//! * **Packet conservation** ([`check_conservation`]): every packet the
//!   fabric accepts is delivered, dropped for an attributed reason, or
//!   still in flight — no silent loss, no duplication (§2.1's tunneled
//!   forwarding and §4.1's local breakout must both account for every
//!   byte).
//! * **Session referential consistency** ([`check_sessions`]): the
//!   MME/S-GW/P-GW tables (or the dLTE local cores) agree on who is
//!   attached, with which address, over which TEIDs — and internal lookup
//!   indexes have no dangling entries. A violation is a stranded EPS
//!   session, the failure mode §3.1 attributes to centralized state.
//! * **Event-stream sanity** ([`check_event_stream`]): sequence numbers
//!   dense, timestamps monotone — the determinism contract of `dlte-obs`.
//! * **HARQ bound** ([`check_harq`]): no transport block is transmitted
//!   more than `max_transmissions` times (§3.2's retransmission budget).
//! * **Bounded attach backoff** ([`check_backoff`]): a UE's retry count
//!   cannot exceed run-time divided by the minimum backoff — catches
//!   retry storms that would invalidate the §4 control-load comparison.
//! * **Bounded recovery** ([`check_recovery`]): after the last injected
//!   fault clears, the network re-converges (everyone re-attached,
//!   sessions consistent) within a bound.
//!
//! Everything here is deterministic and serde-able, so a failing fuzz
//! case can embed the evidence in its repro file.

use dlte_epc::audit::{LocalCoreAudit, MmeAudit, PgwAudit, SgwAudit};
use dlte_net::{Addr, NetAudit};
use dlte_obs::{Event, Record};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

pub mod mobility;
pub mod registry;
pub use mobility::{
    check_migration, check_mobility, MigrationView, MobilityEvidence, MobilityUeView, SpanView,
};
pub use registry::{check_registry, CrashRecord, GrantRecord, RegistryEvidence, ReplicaTable};

/// One invariant breach: which oracle fired and what it saw.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    pub oracle: String,
    pub detail: String,
}

impl Violation {
    fn new(oracle: &str, detail: impl Into<String>) -> Self {
        Violation {
            oracle: oracle.to_string(),
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

/// Tunable limits the oracles check against.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Bounds {
    /// HARQ transmissions per block (LTE default 4).
    pub harq_max_tx: u8,
    /// Minimum UE attach-retry backoff, seconds.
    pub attach_base_s: f64,
    /// Minimum UE service-request-retry backoff, seconds.
    pub service_base_s: f64,
    /// Re-convergence budget after the last fault clears, seconds. Must
    /// exceed the UE attach backoff cap (24 s) plus one detection +
    /// re-attach round trip.
    pub recovery_bound_s: f64,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds {
            harq_max_tx: 4,
            attach_base_s: 3.0,
            service_base_s: 0.5,
            recovery_bound_s: 28.0,
        }
    }
}

/// What one UE believes about itself at snapshot time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UeView {
    pub imsi: u64,
    pub attached: bool,
    pub addr: Option<Addr>,
    pub attach_retries: u64,
    pub service_request_retries: u64,
}

/// The core-side state snapshot, by architecture.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CoreView {
    Centralized {
        mme: MmeAudit,
        sgw: SgwAudit,
        pgw: PgwAudit,
    },
    Dlte {
        cores: Vec<LocalCoreAudit>,
    },
}

/// Everything the state oracles consume. Serde-able so a repro can carry
/// the evidence that condemned it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Evidence {
    /// Simulated seconds elapsed at snapshot time.
    pub elapsed_s: f64,
    pub net: NetAudit,
    pub ues: Vec<UeView>,
    pub core: CoreView,
    /// Mobility observations (session spans, per-UE moves and gaps).
    /// `None` for runs without a movement plan; defaulted so evidence
    /// committed before the mobility oracles existed still parses.
    #[serde(default)]
    pub mobility: Option<MobilityEvidence>,
}

/// Packet conservation: three identities over the fabric counters.
///
/// 1. Every packet entering the fabric (originated or re-forwarded) was
///    accepted onto a link or dropped for an attributed pre-link reason.
/// 2. Every accepted packet has arrived or is still on a link.
/// 3. Every arrival terminated: absorbed by a handler, delivered plain,
///    dropped at a down node, or re-forwarded (re-entering identity 1).
pub fn check_conservation(net: &NetAudit) -> Vec<Violation> {
    let mut v = Vec::new();
    let f = &net.fabric;
    let entries = f.originated + f.reforwarded;
    let exits = f.accepted
        + net.drops_ttl
        + net.drops_no_route
        + net.drops_queue
        + net.drops_loss
        + net.drops_link_down;
    if entries != exits {
        v.push(Violation::new(
            "conservation",
            format!("fabric entries {entries} != exits {exits} ({f:?}, {net:?})"),
        ));
    }
    if f.accepted != f.arrivals + net.in_flight {
        v.push(Violation::new(
            "conservation",
            format!(
                "accepted {} != arrivals {} + in_flight {}",
                f.accepted, f.arrivals, net.in_flight
            ),
        ));
    }
    let terminated = f.absorbed + f.delivered_plain + net.drops_node_down + f.reforwarded;
    if f.arrivals != terminated {
        v.push(Violation::new(
            "conservation",
            format!("arrivals {} != terminations {terminated}", f.arrivals),
        ));
    }
    v
}

/// Event-stream sanity: `seq` dense from zero, `t_ns` monotone
/// non-decreasing (events are emitted in dispatch order and simulated
/// time never runs backwards).
pub fn check_event_stream(records: &[Record]) -> Vec<Violation> {
    let mut v = Vec::new();
    let mut last_t = 0u64;
    for (i, r) in records.iter().enumerate() {
        if r.seq != i as u64 {
            v.push(Violation::new(
                "event_stream",
                format!("seq {} at position {i} (expected dense numbering)", r.seq),
            ));
            break;
        }
        if r.t_ns < last_t {
            v.push(Violation::new(
                "event_stream",
                format!("t_ns ran backwards at seq {}: {} < {last_t}", r.seq, r.t_ns),
            ));
            break;
        }
        last_t = r.t_ns;
    }
    v
}

/// HARQ retransmission budget: no attempt beyond `max_tx`, failures only
/// after exactly exhausting the budget.
pub fn check_harq(records: &[Record], max_tx: u8) -> Vec<Violation> {
    let mut v = Vec::new();
    for r in records {
        match r.event {
            Event::HarqRetx { ue, attempt, .. } if attempt < 2 || attempt > max_tx => {
                v.push(Violation::new(
                    "harq",
                    format!(
                        "ue {ue} retx attempt {attempt} outside 2..={max_tx} (seq {})",
                        r.seq
                    ),
                ));
            }
            Event::HarqFail { ue, attempts } if attempts != max_tx => {
                v.push(Violation::new(
                    "harq",
                    format!(
                        "ue {ue} gave up after {attempts} attempts, budget is {max_tx} (seq {})",
                        r.seq
                    ),
                ));
            }
            _ => {}
        }
    }
    v
}

/// Bounded backoff: every retry is preceded by a wait of at least the base
/// backoff and a UE's waits cannot overlap, so its retry count can never
/// exceed `elapsed / base` (+1 for a retry in flight at the cut).
pub fn check_backoff(ues: &[UeView], elapsed_s: f64, bounds: &Bounds) -> Vec<Violation> {
    let mut v = Vec::new();
    let attach_cap = (elapsed_s / bounds.attach_base_s).floor() as u64 + 1;
    let service_cap = (elapsed_s / bounds.service_base_s).floor() as u64 + 1;
    for ue in ues {
        if ue.attach_retries > attach_cap {
            v.push(Violation::new(
                "backoff",
                format!(
                    "imsi {}: {} attach retries in {elapsed_s:.1}s exceeds {attach_cap} \
                     (minimum backoff {}s violated)",
                    ue.imsi, ue.attach_retries, bounds.attach_base_s
                ),
            ));
        }
        if ue.service_request_retries > service_cap {
            v.push(Violation::new(
                "backoff",
                format!(
                    "imsi {}: {} service retries in {elapsed_s:.1}s exceeds {service_cap}",
                    ue.imsi, ue.service_request_retries
                ),
            ));
        }
    }
    v
}

/// Session referential consistency and stranded-session detection.
///
/// At a quiescent point (the fuzz runner retries through a settle window
/// before condemning a run) the attach state must agree across every
/// layer that holds it.
pub fn check_sessions(ev: &Evidence) -> Vec<Violation> {
    match &ev.core {
        CoreView::Centralized { mme, sgw, pgw } => check_centralized(&ev.ues, mme, sgw, pgw),
        CoreView::Dlte { cores } => check_dlte(&ev.ues, cores),
    }
}

fn check_centralized(
    ues: &[UeView],
    mme: &MmeAudit,
    sgw: &SgwAudit,
    pgw: &PgwAudit,
) -> Vec<Violation> {
    const O: &str = "sessions";
    let mut v = Vec::new();
    // Index health.
    for b in &sgw.bearers {
        if !b.indexed {
            v.push(Violation::new(
                O,
                format!("sgw bearer imsi {} not indexed", b.imsi),
            ));
        }
        if b.teid_ul_pgw.is_none() {
            v.push(Violation::new(
                O,
                format!("sgw bearer imsi {} half-open (no P-GW uplink TEID)", b.imsi),
            ));
        }
    }
    if sgw.ul_index_len != sgw.bearers.len() || sgw.dl_index_len != sgw.bearers.len() {
        v.push(Violation::new(
            O,
            format!(
                "sgw index sizes ul={} dl={} vs {} bearers (dangling entries)",
                sgw.ul_index_len,
                sgw.dl_index_len,
                sgw.bearers.len()
            ),
        ));
    }
    for s in &pgw.sessions {
        if !s.indexed {
            v.push(Violation::new(
                O,
                format!("pgw session imsi {} not indexed", s.imsi),
            ));
        }
    }
    if pgw.ul_index_len != pgw.sessions.len() || pgw.imsi_index_len != pgw.sessions.len() {
        v.push(Violation::new(
            O,
            format!(
                "pgw index sizes ul={} imsi={} vs {} sessions",
                pgw.ul_index_len,
                pgw.imsi_index_len,
                pgw.sessions.len()
            ),
        ));
    }
    // No attach may still be in flight at quiescence.
    if !mme.transient.is_empty() {
        v.push(Violation::new(
            O,
            format!(
                "mme has non-Active contexts at quiescence: {:?}",
                mme.transient
            ),
        ));
    }
    let by_imsi_sgw: HashMap<u64, _> = sgw.bearers.iter().map(|b| (b.imsi, b)).collect();
    let by_imsi_pgw: HashMap<u64, _> = pgw.sessions.iter().map(|s| (s.imsi, s)).collect();
    // MME ↔ S-GW ↔ P-GW, per active UE context.
    for u in &mme.ues {
        let Some(b) = by_imsi_sgw.get(&u.imsi) else {
            v.push(Violation::new(
                O,
                format!("imsi {} active at mme but has no sgw bearer", u.imsi),
            ));
            continue;
        };
        if b.teid_ul_sgw != u.teid_ul_sgw || b.ue_addr != Some(u.ue_addr) {
            v.push(Violation::new(
                O,
                format!(
                    "imsi {}: mme (teid_ul {}, addr {}) vs sgw (teid_ul {}, addr {:?})",
                    u.imsi, u.teid_ul_sgw, u.ue_addr, b.teid_ul_sgw, b.ue_addr
                ),
            ));
        }
        let Some(s) = by_imsi_pgw.get(&u.imsi) else {
            v.push(Violation::new(
                O,
                format!("imsi {} active at mme but has no pgw session", u.imsi),
            ));
            continue;
        };
        if s.ue_addr != u.ue_addr {
            v.push(Violation::new(
                O,
                format!(
                    "imsi {}: mme addr {} vs pgw addr {}",
                    u.imsi, u.ue_addr, s.ue_addr
                ),
            ));
        }
        if b.teid_ul_pgw.is_some_and(|t| t != s.teid_ul_pgw) || s.teid_dl_sgw != b.teid_dl_sgw {
            v.push(Violation::new(
                O,
                format!(
                    "imsi {}: sgw↔pgw TEIDs disagree (sgw ul_pgw {:?}/dl {} vs pgw ul {}/dl {})",
                    u.imsi, b.teid_ul_pgw, b.teid_dl_sgw, s.teid_ul_pgw, s.teid_dl_sgw
                ),
            ));
        }
    }
    // No gateway state without an owning active context (stranded sessions).
    let active: HashMap<u64, Addr> = mme.ues.iter().map(|u| (u.imsi, u.ue_addr)).collect();
    for b in &sgw.bearers {
        if !active.contains_key(&b.imsi) {
            v.push(Violation::new(
                O,
                format!("stranded sgw bearer for imsi {} (no mme context)", b.imsi),
            ));
        }
    }
    for s in &pgw.sessions {
        if !active.contains_key(&s.imsi) {
            v.push(Violation::new(
                O,
                format!("stranded pgw session for imsi {} (no mme context)", s.imsi),
            ));
        }
    }
    // UE ↔ core agreement.
    for ue in ues {
        match (ue.attached, active.get(&ue.imsi)) {
            (true, None) => v.push(Violation::new(
                O,
                format!("imsi {} believes it is attached; mme disagrees", ue.imsi),
            )),
            (true, Some(&addr)) if ue.addr != Some(addr) => v.push(Violation::new(
                O,
                format!("imsi {}: ue addr {:?} vs mme addr {addr}", ue.imsi, ue.addr),
            )),
            (false, Some(_)) => v.push(Violation::new(
                O,
                format!(
                    "imsi {} detached but mme still holds an active context",
                    ue.imsi
                ),
            )),
            _ => {}
        }
    }
    v
}

fn check_dlte(ues: &[UeView], cores: &[LocalCoreAudit]) -> Vec<Violation> {
    const O: &str = "sessions";
    let mut v = Vec::new();
    let mut by_imsi: HashMap<u64, Vec<Addr>> = HashMap::new();
    for (i, core) in cores.iter().enumerate() {
        for s in &core.sessions {
            if !s.indexed {
                v.push(Violation::new(
                    O,
                    format!("core {i}: session imsi {} not indexed", s.imsi),
                ));
            }
            by_imsi.entry(s.imsi).or_default().push(s.ue_addr);
        }
        if core.addr_index_len != core.sessions.len() {
            v.push(Violation::new(
                O,
                format!(
                    "core {i}: addr index {} vs {} sessions (dangling entries)",
                    core.addr_index_len,
                    core.sessions.len()
                ),
            ));
        }
        if !core.attaching.is_empty() {
            v.push(Violation::new(
                O,
                format!(
                    "core {i}: attaches in flight at quiescence: {:?}",
                    core.attaching
                ),
            ));
        }
    }
    for ue in ues {
        let sessions = by_imsi.remove(&ue.imsi).unwrap_or_default();
        match (ue.attached, sessions.as_slice()) {
            (true, [addr]) if ue.addr != Some(*addr) => v.push(Violation::new(
                O,
                format!(
                    "imsi {}: ue addr {:?} vs core addr {addr}",
                    ue.imsi, ue.addr
                ),
            )),
            (true, []) => v.push(Violation::new(
                O,
                format!("imsi {} attached but no core holds a session", ue.imsi),
            )),
            (_, many) if many.len() > 1 => v.push(Violation::new(
                O,
                format!("imsi {} has {} sessions across cores", ue.imsi, many.len()),
            )),
            (false, [_]) => v.push(Violation::new(
                O,
                format!("stranded session for detached imsi {}", ue.imsi),
            )),
            _ => {}
        }
    }
    for imsi in by_imsi.keys() {
        v.push(Violation::new(
            O,
            format!("session for unknown imsi {imsi} (no such ue)"),
        ));
    }
    v
}

/// Bounded recovery: the network must have re-converged (first all-green
/// [`check_sessions`] pass) within `recovery_bound_s` of the last fault
/// clearing.
pub fn check_recovery(
    recovered_at_s: Option<f64>,
    last_fault_s: f64,
    bounds: &Bounds,
) -> Vec<Violation> {
    match recovered_at_s {
        Some(t) if t <= last_fault_s + bounds.recovery_bound_s + 1e-9 => Vec::new(),
        Some(t) => vec![Violation::new(
            "recovery",
            format!(
                "re-converged at {t:.1}s, {:.1}s after the last fault (bound {:.1}s)",
                t - last_fault_s,
                bounds.recovery_bound_s
            ),
        )],
        None => vec![Violation::new(
            "recovery",
            format!(
                "never re-converged within {:.1}s of the last fault at {last_fault_s:.1}s",
                bounds.recovery_bound_s
            ),
        )],
    }
}

/// Every oracle that applies to a single final snapshot (the recovery
/// oracle needs the settle-loop history and is checked separately).
pub fn check_all(ev: &Evidence, records: &[Record], bounds: &Bounds) -> Vec<Violation> {
    let mut v = check_conservation(&ev.net);
    v.extend(check_sessions(ev));
    v.extend(check_event_stream(records));
    v.extend(check_harq(records, bounds.harq_max_tx));
    v.extend(check_backoff(&ev.ues, ev.elapsed_s, bounds));
    if let Some(m) = &ev.mobility {
        v.extend(check_mobility(m, ev.elapsed_s, bounds));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlte_epc::audit::{MmeUeAudit, PgwSessionAudit, SgwBearerAudit};
    use dlte_net::FabricCounters;

    fn addr(last: u8) -> Addr {
        Addr::new(100, 64, 0, last)
    }

    fn clean_evidence() -> Evidence {
        let mme = MmeAudit {
            ues: vec![MmeUeAudit {
                imsi: 1000,
                ue_addr: addr(1),
                teid_dl: 1,
                teid_ul_sgw: 7,
                ecm_idle: false,
            }],
            transient: vec![],
        };
        let sgw = SgwAudit {
            bearers: vec![SgwBearerAudit {
                imsi: 1000,
                teid_ul_sgw: 7,
                teid_dl_sgw: 8,
                teid_ul_pgw: Some(9),
                ue_addr: Some(addr(1)),
                enb_connected: true,
                indexed: true,
            }],
            ul_index_len: 1,
            dl_index_len: 1,
        };
        let pgw = PgwAudit {
            sessions: vec![PgwSessionAudit {
                imsi: 1000,
                ue_addr: addr(1),
                teid_dl_sgw: 8,
                teid_ul_pgw: 9,
                indexed: true,
            }],
            ul_index_len: 1,
            imsi_index_len: 1,
        };
        Evidence {
            elapsed_s: 30.0,
            net: NetAudit {
                fabric: FabricCounters {
                    originated: 10,
                    reforwarded: 4,
                    accepted: 12,
                    arrivals: 11,
                    absorbed: 5,
                    delivered_plain: 2,
                },
                in_flight: 1,
                drops_queue: 1,
                drops_loss: 1,
                drops_no_route: 0,
                drops_ttl: 0,
                drops_link_down: 0,
                drops_node_down: 0,
            },
            ues: vec![UeView {
                imsi: 1000,
                attached: true,
                addr: Some(addr(1)),
                attach_retries: 2,
                service_request_retries: 0,
            }],
            core: CoreView::Centralized { mme, sgw, pgw },
            mobility: None,
        }
    }

    #[test]
    fn clean_evidence_passes_every_oracle() {
        let ev = clean_evidence();
        assert_eq!(check_all(&ev, &[], &Bounds::default()), Vec::new());
    }

    #[test]
    fn conservation_catches_silent_loss() {
        let mut ev = clean_evidence();
        ev.net.fabric.arrivals -= 1; // one packet vanished
        let v = check_conservation(&ev.net);
        assert_eq!(v.len(), 2); // identity 2 and 3 both break
        assert!(v.iter().all(|x| x.oracle == "conservation"));
    }

    #[test]
    fn stranded_bearer_is_flagged() {
        let mut ev = clean_evidence();
        if let CoreView::Centralized { mme, .. } = &mut ev.core {
            mme.ues.clear(); // gateway state with no owning context
        }
        let v = check_sessions(&ev);
        assert!(v.iter().any(|x| x.detail.contains("stranded sgw bearer")));
        assert!(v.iter().any(|x| x.detail.contains("stranded pgw session")));
        assert!(v.iter().any(|x| x.detail.contains("mme disagrees")));
    }

    #[test]
    fn teid_mismatch_is_flagged() {
        let mut ev = clean_evidence();
        if let CoreView::Centralized { sgw, .. } = &mut ev.core {
            sgw.bearers[0].teid_ul_pgw = Some(99);
        }
        assert!(check_sessions(&ev)
            .iter()
            .any(|x| x.detail.contains("TEIDs disagree")));
    }

    #[test]
    fn dangling_index_is_flagged() {
        let mut ev = clean_evidence();
        if let CoreView::Centralized { sgw, .. } = &mut ev.core {
            sgw.ul_index_len = 2;
        }
        assert!(check_sessions(&ev)
            .iter()
            .any(|x| x.detail.contains("dangling")));
    }

    #[test]
    fn event_stream_must_be_dense_and_monotone() {
        let rec = |seq, t_ns| Record {
            seq,
            t_ns,
            node: 0,
            event: Event::Drop {
                reason: dlte_obs::DropReason::Queue,
                bytes: 1,
            },
        };
        assert!(check_event_stream(&[rec(0, 5), rec(1, 5), rec(2, 9)]).is_empty());
        assert_eq!(check_event_stream(&[rec(0, 5), rec(2, 6)]).len(), 1);
        assert_eq!(check_event_stream(&[rec(0, 5), rec(1, 4)]).len(), 1);
    }

    #[test]
    fn harq_budget_is_enforced() {
        let rec = |event| Record {
            seq: 0,
            t_ns: 0,
            node: 0,
            event,
        };
        let ok = [
            rec(Event::HarqTx { ue: 1, ok: false }),
            rec(Event::HarqRetx {
                ue: 1,
                attempt: 4,
                ok: false,
            }),
            rec(Event::HarqFail { ue: 1, attempts: 4 }),
        ];
        assert!(check_harq(&ok, 4).is_empty());
        let over = [rec(Event::HarqRetx {
            ue: 1,
            attempt: 5,
            ok: true,
        })];
        assert_eq!(check_harq(&over, 4).len(), 1);
        let early_fail = [rec(Event::HarqFail { ue: 1, attempts: 2 })];
        assert_eq!(check_harq(&early_fail, 4).len(), 1);
    }

    #[test]
    fn backoff_retry_storm_is_flagged() {
        let mut ev = clean_evidence();
        ev.ues[0].attach_retries = 100; // 100 retries in 30 s: impossible at 3 s base
        assert_eq!(
            check_backoff(&ev.ues, ev.elapsed_s, &Bounds::default()).len(),
            1
        );
    }

    #[test]
    fn recovery_bound() {
        let b = Bounds::default();
        assert!(check_recovery(Some(10.0), 5.0, &b).is_empty());
        assert_eq!(check_recovery(Some(40.0), 5.0, &b).len(), 1);
        assert_eq!(check_recovery(None, 5.0, &b).len(), 1);
    }

    #[test]
    fn dlte_duplicate_session_is_flagged() {
        use dlte_epc::audit::LocalSessionAudit;
        let core = |imsi, a| LocalCoreAudit {
            sessions: vec![LocalSessionAudit {
                imsi,
                ue_addr: a,
                indexed: true,
            }],
            addr_index_len: 1,
            attaching: vec![],
        };
        let ev = Evidence {
            elapsed_s: 10.0,
            net: NetAudit::default(),
            ues: vec![UeView {
                imsi: 1000,
                attached: true,
                addr: Some(addr(1)),
                attach_retries: 0,
                service_request_retries: 0,
            }],
            core: CoreView::Dlte {
                cores: vec![core(1000, addr(1)), core(1000, addr(2))],
            },
            mobility: None,
        };
        assert!(check_sessions(&ev)
            .iter()
            .any(|x| x.detail.contains("2 sessions across cores")));
    }

    #[test]
    fn evidence_round_trips_through_json() {
        let ev = clean_evidence();
        let json = serde_json::to_string(&ev).unwrap();
        let back: Evidence = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ev);
    }
}
