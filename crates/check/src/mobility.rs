//! Mobility oracles: serving exclusivity, session residency, bounded
//! service gaps, and migration conservation.
//!
//! The dLTE §4.2 mobility story replaces core-managed handover with
//! detach → re-attach plus endpoint transports. That trade is only safe if
//! the churn it generates preserves four invariants, checked here from
//! post-run evidence:
//!
//! * **Serving exclusivity** — no IMSI is served by two cores in the same
//!   instant. Each local core logs its served intervals
//!   ([`SpanView`]); overlapping spans for one IMSI mean two APs both
//!   believed they owned the UE (split-brain addresses, double-routed
//!   downlink).
//! * **Session residency** — once a handover completes, the UE's single
//!   open session lives at the core it moved *to*; an open span anywhere
//!   else is a stranded session the detach failed to clean up.
//! * **Bounded service gap** — every handover gap the UE measured is under
//!   the dwell-plus-recovery budget; an unbounded gap means a move
//!   blackholed instead of re-attaching.
//! * **Migration conservation** ([`check_migration`]) — a transport
//!   connection that rode an address change accounts for every queued
//!   byte: acknowledged, still in flight, or cleanly errored — never
//!   silently truncated.

use crate::{Bounds, Violation};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One served interval of an IMSI at one core, exported from the local
/// core's session log. `end_ns == None` means still open at snapshot time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanView {
    pub core: usize,
    pub imsi: u64,
    pub start_ns: u64,
    #[serde(default)]
    pub end_ns: Option<u64>,
}

/// Per-UE mobility observations at snapshot time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MobilityUeView {
    pub imsi: u64,
    pub attached: bool,
    /// Index of the core/AP the UE currently camps on (`None` when the
    /// architecture has no per-AP cores, e.g. centralized LTE).
    #[serde(default)]
    pub serving_core: Option<usize>,
    /// Cell changes executed.
    pub moves: u64,
    /// Handover gaps the UE measured (move → first echo on the new cell),
    /// milliseconds.
    #[serde(default)]
    pub gaps_ms: Vec<f64>,
}

/// Everything the mobility oracles consume.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct MobilityEvidence {
    /// Longest scheduled dwell in the movement plan, seconds (the gap
    /// budget scales with it: a UE may legitimately sit out one dwell at a
    /// faulted AP before moving somewhere serviceable).
    pub max_dwell_s: f64,
    /// Served intervals from every core that logs them (empty when the
    /// architecture does not instrument spans).
    pub spans: Vec<SpanView>,
    pub ues: Vec<MobilityUeView>,
}

/// A transport connection's byte accounting across address migrations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationView {
    pub imsi: u64,
    /// Bytes the application handed to the connection.
    pub queued_bytes: u64,
    /// Bytes the peer acknowledged.
    pub acked_bytes: u64,
    /// Bytes sent but not yet acknowledged (still retransmittable).
    pub in_flight_bytes: u64,
    /// The connection surfaced a terminal error to the application.
    pub errored: bool,
}

fn span_end(s: &SpanView, snapshot_ns: u64) -> u64 {
    s.end_ns.unwrap_or(snapshot_ns)
}

/// Serving exclusivity + session residency + gap bound over one snapshot.
pub fn check_mobility(ev: &MobilityEvidence, elapsed_s: f64, bounds: &Bounds) -> Vec<Violation> {
    const O: &str = "mobility";
    let mut v = Vec::new();
    let snapshot_ns = (elapsed_s * 1e9) as u64;

    // Serving exclusivity: per IMSI, no two spans strictly overlap. A span
    // ending exactly when the next starts is fine (the detach and the new
    // accept can land in the same nanosecond of simulated time).
    let mut by_imsi: HashMap<u64, Vec<&SpanView>> = HashMap::new();
    for s in &ev.spans {
        if s.end_ns.is_some_and(|e| e < s.start_ns) {
            v.push(Violation::new(
                O,
                format!(
                    "core {}: span for imsi {} ends before it starts ({:?} < {})",
                    s.core, s.imsi, s.end_ns, s.start_ns
                ),
            ));
        }
        by_imsi.entry(s.imsi).or_default().push(s);
    }
    for (imsi, mut spans) in by_imsi {
        spans.sort_by_key(|s| (s.start_ns, s.core));
        for w in spans.windows(2) {
            let (a, b) = (w[0], w[1]);
            if b.start_ns < span_end(a, snapshot_ns) {
                v.push(Violation::new(
                    O,
                    format!(
                        "imsi {imsi} served by two cores at once: core {} [{}, {:?}] \
                         overlaps core {} starting {}",
                        a.core, a.start_ns, a.end_ns, b.core, b.start_ns
                    ),
                ));
            }
        }
    }

    // Session residency (only meaningful when cores log spans): an
    // attached UE's single open span lives at its serving core; a
    // detached UE has none.
    if !ev.spans.is_empty() {
        let mut open: HashMap<u64, Vec<usize>> = HashMap::new();
        for s in &ev.spans {
            if s.end_ns.is_none() {
                open.entry(s.imsi).or_default().push(s.core);
            }
        }
        for ue in &ev.ues {
            let cores = open.remove(&ue.imsi).unwrap_or_default();
            match (ue.attached, ue.serving_core, cores.as_slice()) {
                (true, Some(serving), [core]) if *core != serving => v.push(Violation::new(
                    O,
                    format!(
                        "imsi {}: attached at core {serving} but the open session \
                         lives at core {core} (handover left it behind)",
                        ue.imsi
                    ),
                )),
                (true, Some(serving), []) => v.push(Violation::new(
                    O,
                    format!(
                        "imsi {}: attached at core {serving} but no core holds an \
                         open session",
                        ue.imsi
                    ),
                )),
                (_, _, many) if many.len() > 1 => v.push(Violation::new(
                    O,
                    format!(
                        "imsi {}: {} open sessions across cores {many:?}",
                        ue.imsi,
                        many.len()
                    ),
                )),
                (false, _, [core]) => v.push(Violation::new(
                    O,
                    format!(
                        "imsi {}: detached but core {core} still holds an open \
                         session (stranded by a move)",
                        ue.imsi
                    ),
                )),
                _ => {}
            }
        }
        for (imsi, cores) in open {
            v.push(Violation::new(
                O,
                format!("open session for unknown imsi {imsi} at cores {cores:?}"),
            ));
        }
    }

    // Bounded service gap: dwell (the UE may sit one full dwell at a
    // faulted AP before its schedule moves it on) plus the recovery budget
    // (backoff cap + detection + re-attach).
    let budget_ms = (ev.max_dwell_s + bounds.recovery_bound_s) * 1_000.0;
    for ue in &ev.ues {
        for &gap in &ue.gaps_ms {
            if gap > budget_ms {
                v.push(Violation::new(
                    O,
                    format!(
                        "imsi {}: service gap {gap:.0}ms exceeds dwell+recovery \
                         budget {budget_ms:.0}ms",
                        ue.imsi
                    ),
                ));
            }
        }
    }
    v
}

/// Migration conservation: every byte queued on a migrating connection is
/// acknowledged or still in flight, unless the connection cleanly errored.
/// Catches the silent-truncation failure mode where an address change
/// drops queued data without telling the application.
pub fn check_migration(conns: &[MigrationView]) -> Vec<Violation> {
    let mut v = Vec::new();
    for c in conns {
        if c.errored {
            continue; // a surfaced error is a legitimate outcome
        }
        if c.acked_bytes + c.in_flight_bytes != c.queued_bytes {
            v.push(Violation::new(
                "migration",
                format!(
                    "imsi {}: {} bytes queued but only {} acked + {} in flight \
                     (silent truncation)",
                    c.imsi, c.queued_bytes, c.acked_bytes, c.in_flight_bytes
                ),
            ));
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(core: usize, imsi: u64, start_ns: u64, end_ns: Option<u64>) -> SpanView {
        SpanView {
            core,
            imsi,
            start_ns,
            end_ns,
        }
    }

    fn ue(imsi: u64, attached: bool, serving: Option<usize>) -> MobilityUeView {
        MobilityUeView {
            imsi,
            attached,
            serving_core: serving,
            moves: 1,
            gaps_ms: vec![],
        }
    }

    #[test]
    fn clean_handover_history_passes() {
        let ev = MobilityEvidence {
            max_dwell_s: 2.0,
            spans: vec![
                span(0, 1000, 0, Some(5_000_000_000)),
                span(1, 1000, 5_100_000_000, None),
            ],
            ues: vec![ue(1000, true, Some(1))],
        };
        assert_eq!(check_mobility(&ev, 10.0, &Bounds::default()), Vec::new());
    }

    #[test]
    fn overlapping_spans_are_split_brain() {
        // Core 0 never saw the detach; core 1 accepted while 0 still serves.
        let ev = MobilityEvidence {
            max_dwell_s: 2.0,
            spans: vec![
                span(0, 1000, 0, Some(6_000_000_000)),
                span(1, 1000, 5_000_000_000, None),
            ],
            ues: vec![ue(1000, true, Some(1))],
        };
        let v = check_mobility(&ev, 10.0, &Bounds::default());
        assert!(v.iter().any(|x| x.detail.contains("two cores at once")));
    }

    #[test]
    fn open_span_without_detach_is_an_overlap_too() {
        // The stranded span is open; the exclusivity check must treat it
        // as running to the snapshot, not ignore it.
        let ev = MobilityEvidence {
            max_dwell_s: 2.0,
            spans: vec![span(0, 1000, 0, None), span(1, 1000, 5_000_000_000, None)],
            ues: vec![ue(1000, true, Some(1))],
        };
        let v = check_mobility(&ev, 10.0, &Bounds::default());
        assert!(v.iter().any(|x| x.detail.contains("two cores at once")));
        assert!(v.iter().any(|x| x.detail.contains("open sessions across")));
    }

    #[test]
    fn stranded_and_misplaced_sessions_are_flagged() {
        // Detached UE with an open span; attached UE whose session lives
        // at the core it left.
        let ev = MobilityEvidence {
            max_dwell_s: 2.0,
            spans: vec![span(0, 1000, 0, None), span(1, 2000, 0, None)],
            ues: vec![ue(1000, false, None), ue(2000, true, Some(0))],
        };
        let v = check_mobility(&ev, 10.0, &Bounds::default());
        assert!(v.iter().any(|x| x.detail.contains("stranded by a move")));
        assert!(v.iter().any(|x| x.detail.contains("left it behind")));
    }

    #[test]
    fn gap_budget_scales_with_dwell() {
        let mut view = ue(1000, true, Some(0));
        view.gaps_ms = vec![29_500.0];
        let ev = MobilityEvidence {
            max_dwell_s: 2.0,
            spans: vec![span(0, 1000, 0, None)],
            ues: vec![view],
        };
        // Budget = (2 + 28) s = 30 s: a 29.5 s gap passes...
        assert_eq!(check_mobility(&ev, 40.0, &Bounds::default()), Vec::new());
        // ...but shrinking the dwell to 1 s (29 s budget) condemns it.
        let tight = MobilityEvidence {
            max_dwell_s: 1.0,
            ..ev
        };
        let v = check_mobility(&tight, 40.0, &Bounds::default());
        assert!(v
            .iter()
            .any(|x| x.detail.contains("exceeds dwell+recovery")));
    }

    #[test]
    fn migration_truncation_is_flagged() {
        let ok = MigrationView {
            imsi: 1,
            queued_bytes: 1_000,
            acked_bytes: 900,
            in_flight_bytes: 100,
            errored: false,
        };
        let truncated = MigrationView {
            imsi: 2,
            queued_bytes: 1_000,
            acked_bytes: 900,
            in_flight_bytes: 0,
            errored: false,
        };
        let errored = MigrationView {
            errored: true,
            ..truncated
        };
        assert!(check_migration(&[ok]).is_empty());
        assert_eq!(check_migration(&[truncated]).len(), 1);
        assert!(
            check_migration(&[errored]).is_empty(),
            "clean error is not truncation"
        );
    }

    #[test]
    fn mobility_evidence_round_trips_and_defaults() {
        let ev = MobilityEvidence {
            max_dwell_s: 1.5,
            spans: vec![span(0, 1000, 7, Some(9))],
            ues: vec![ue(1000, true, Some(0))],
        };
        let json = serde_json::to_string(&ev).unwrap();
        let back: MobilityEvidence = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ev);
        // Old evidence without the mobility block parses to the default.
        let empty: MobilityEvidence = serde_json::from_str("{}").unwrap();
        assert_eq!(empty, MobilityEvidence::default());
    }
}
