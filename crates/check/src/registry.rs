//! Registry chaos oracles: the §4.3 safety claims as machine-checkable
//! invariants over post-run evidence.
//!
//! * **No double grant** ([`check_double_grant`]): under the exclusive
//!   policy, no two grants that were ever *live at the same time* overlap
//!   in channel and interference contour — across zones, replicas, crashes
//!   and partitions. This is the invariant the registry exists to provide;
//!   everything else (availability, latency) is negotiable, this is not.
//! * **Crash accountability** ([`check_crash_accountability`]): a grant
//!   issued before a state-losing crash is either honored (snapshot
//!   recovery) or provably lapses by `crash + max_lease` (quarantined
//!   restart) — and no grant id is ever reissued to someone else.
//! * **Replica convergence** ([`check_replica_convergence`]): once every
//!   partition heals and sync runs, all replicas derive the same grant
//!   table.
//!
//! Evidence here is raw numbers (no `dlte-registry` types): the driver
//! flattens grants to what the oracles need, and repro files stay readable.

use crate::Violation;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One grant's lifetime as the *client* experienced it: `live_until_s` is
/// when the client stopped transmitting (release, lapsed lease, or end of
/// run) — the registry's own table may forget sooner (crash) or later
/// (partition), which is exactly what the oracles probe.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GrantRecord {
    pub id: u64,
    pub operator: u64,
    /// Zone (or writer incarnation owner) that issued the grant.
    pub zone: usize,
    pub channel: u32,
    pub x_km: f64,
    pub y_km: f64,
    pub contour_km: f64,
    pub granted_at_s: f64,
    pub live_until_s: f64,
}

/// One zone crash the fault plan injected.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CrashRecord {
    pub zone: usize,
    pub at_s: f64,
    pub state_loss: bool,
}

/// One replica's derived grant table at the end of the run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReplicaTable {
    pub replica: usize,
    /// False while a desync window still covers the end of the run — an
    /// unhealed replica is allowed to lag and is exempt from convergence.
    pub healed: bool,
    /// Grant ids in the derived table, sorted.
    pub grant_ids: Vec<u64>,
}

/// Everything the registry oracles consume; serde-able so a failing fuzz
/// case can carry it in its repro file.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RegistryEvidence {
    /// Exclusive grant policy (contour overlap forbidden). The shared
    /// policy admits co-channel neighbors by design, so the overlap oracle
    /// only fires under exclusive.
    pub exclusive: bool,
    /// The registry's lease cap, seconds.
    pub max_lease_s: f64,
    pub grants: Vec<GrantRecord>,
    pub crashes: Vec<CrashRecord>,
    #[serde(default)]
    pub replicas: Vec<ReplicaTable>,
}

fn overlap(a: &GrantRecord, b: &GrantRecord) -> bool {
    if a.channel != b.channel {
        return false;
    }
    // Live intervals must intersect: [start, end) vs [start, end).
    if a.live_until_s <= b.granted_at_s || b.live_until_s <= a.granted_at_s {
        return false;
    }
    let d = ((a.x_km - b.x_km).powi(2) + (a.y_km - b.y_km).powi(2)).sqrt();
    d < a.contour_km + b.contour_km
}

/// No two grants live at the same time overlap in channel + contour
/// (exclusive policy), and no grant id was ever issued twice — whatever
/// mix of zones, crashes and partitions produced them.
pub fn check_double_grant(ev: &RegistryEvidence) -> Vec<Violation> {
    const O: &str = "double_grant";
    let mut v = Vec::new();
    let mut seen: HashMap<u64, &GrantRecord> = HashMap::new();
    for g in &ev.grants {
        if let Some(first) = seen.insert(g.id, g) {
            v.push(Violation::new(
                O,
                format!(
                    "grant id {} issued twice (zone {} op {} at {:.2}s, then zone {} op {} at {:.2}s)",
                    g.id,
                    first.zone,
                    first.operator,
                    first.granted_at_s,
                    g.zone,
                    g.operator,
                    g.granted_at_s
                ),
            ));
        }
    }
    if !ev.exclusive {
        return v;
    }
    for i in 0..ev.grants.len() {
        for j in (i + 1)..ev.grants.len() {
            let (a, b) = (&ev.grants[i], &ev.grants[j]);
            if a.id != b.id && overlap(a, b) {
                v.push(Violation::new(
                    O,
                    format!(
                        "grants {} (zone {}) and {} (zone {}) overlap: channel {}, \
                         contours {:.1}+{:.1} km, live [{:.2},{:.2}) vs [{:.2},{:.2})",
                        a.id,
                        a.zone,
                        b.id,
                        b.zone,
                        a.channel,
                        a.contour_km,
                        b.contour_km,
                        a.granted_at_s,
                        a.live_until_s,
                        b.granted_at_s,
                        b.live_until_s
                    ),
                ));
            }
        }
    }
    v
}

/// Every grant issued by a zone before a state-losing crash provably
/// lapses by `crash + max_lease`: the restarting zone forgot it, so the
/// only safe outcome is that the client's lease (capped at `max_lease`)
/// ran out before the zone resumed granting. A grant outliving that bound
/// means the quarantine was too short — the forgotten grant could collide
/// with a fresh one.
pub fn check_crash_accountability(ev: &RegistryEvidence) -> Vec<Violation> {
    const O: &str = "crash_accountability";
    const EPS: f64 = 1e-6;
    let mut v = Vec::new();
    for c in ev.crashes.iter().filter(|c| c.state_loss) {
        for g in &ev.grants {
            if g.zone == c.zone
                && g.granted_at_s < c.at_s
                && g.live_until_s > c.at_s + ev.max_lease_s + EPS
            {
                v.push(Violation::new(
                    O,
                    format!(
                        "grant {} (zone {}, granted {:.2}s) lived to {:.2}s, past the \
                         state-loss crash at {:.2}s + max_lease {:.0}s",
                        g.id, g.zone, g.granted_at_s, g.live_until_s, c.at_s, ev.max_lease_s
                    ),
                ));
            }
        }
    }
    v
}

/// After every partition heals and sync runs, all healed replicas derive
/// the same grant table.
pub fn check_replica_convergence(ev: &RegistryEvidence) -> Vec<Violation> {
    const O: &str = "replica_convergence";
    let mut v = Vec::new();
    let mut healed = ev.replicas.iter().filter(|r| r.healed);
    let Some(reference) = healed.next() else {
        return v;
    };
    for r in healed {
        if r.grant_ids != reference.grant_ids {
            v.push(Violation::new(
                O,
                format!(
                    "replica {} table {:?} diverges from replica {} table {:?} after heal",
                    r.replica, r.grant_ids, reference.replica, reference.grant_ids
                ),
            ));
        }
    }
    v
}

/// Every registry oracle over one evidence bundle.
pub fn check_registry(ev: &RegistryEvidence) -> Vec<Violation> {
    let mut v = check_double_grant(ev);
    v.extend(check_crash_accountability(ev));
    v.extend(check_replica_convergence(ev));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grant(id: u64, zone: usize, channel: u32, x: f64, from: f64, until: f64) -> GrantRecord {
        GrantRecord {
            id,
            operator: id * 10,
            zone,
            channel,
            x_km: x,
            y_km: 0.0,
            contour_km: 10.0,
            granted_at_s: from,
            live_until_s: until,
        }
    }

    fn clean() -> RegistryEvidence {
        RegistryEvidence {
            exclusive: true,
            max_lease_s: 30.0,
            grants: vec![
                grant(1, 0, 0, 0.0, 0.0, 50.0),
                grant(2, 0, 1, 0.0, 0.0, 50.0),  // other channel
                grant(3, 1, 0, 25.0, 0.0, 50.0), // out of contour reach
                grant(4, 0, 0, 5.0, 60.0, 90.0), // after 1 lapsed
            ],
            crashes: vec![],
            replicas: vec![],
        }
    }

    #[test]
    fn clean_evidence_passes() {
        assert_eq!(check_registry(&clean()), Vec::new());
    }

    #[test]
    fn cochannel_overlap_in_time_and_space_is_flagged() {
        let mut ev = clean();
        // Same spot and channel as grant 1, inside its life (far from 3).
        ev.grants.push(grant(5, 1, 0, 0.0, 10.0, 20.0));
        let v = check_double_grant(&ev);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("overlap"));
        // The shared policy admits the same layout.
        ev.exclusive = false;
        assert!(check_double_grant(&ev).is_empty());
    }

    #[test]
    fn disjoint_lifetimes_do_not_conflict() {
        let mut ev = clean();
        // Same spot, same channel as grant 1, but strictly after it lapsed.
        ev.grants.push(grant(6, 1, 0, 0.0, 50.0, 55.0));
        assert!(check_double_grant(&ev).is_empty());
    }

    #[test]
    fn duplicate_id_is_flagged_even_without_overlap() {
        let mut ev = clean();
        ev.grants.push(grant(1, 1, 5, 40.0, 70.0, 80.0));
        let v = check_double_grant(&ev);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("issued twice"));
    }

    #[test]
    fn grant_outliving_state_loss_crash_is_flagged() {
        let mut ev = clean();
        ev.crashes.push(CrashRecord {
            zone: 0,
            at_s: 10.0,
            state_loss: true,
        });
        // Zone 0's pre-crash grants (1 and 2) live to 50 > 10 + 30; grant 4
        // postdates the crash and is exempt.
        let v = check_crash_accountability(&ev);
        assert_eq!(v.len(), 2);
        assert!(v[0].detail.contains("grant 1"));
        assert!(v[1].detail.contains("grant 2"));
        // A snapshot-recovered crash honors its grants: no violation.
        ev.crashes[0].state_loss = false;
        assert!(check_crash_accountability(&ev).is_empty());
    }

    #[test]
    fn crash_accountability_ignores_other_zones_and_later_grants() {
        let mut ev = clean();
        ev.crashes.push(CrashRecord {
            zone: 1,
            at_s: 55.0,
            state_loss: true,
        });
        // Zone 1's only pre-crash grant (3) lapses at 50 < 55 + 30; zone 0
        // grants are not zone 1's problem; grant 6 postdates the crash.
        ev.grants.push(grant(6, 1, 2, 40.0, 60.0, 95.0));
        assert!(check_crash_accountability(&ev).is_empty());
    }

    #[test]
    fn healed_replicas_must_agree() {
        let mut ev = clean();
        ev.replicas = vec![
            ReplicaTable {
                replica: 0,
                healed: true,
                grant_ids: vec![1, 2],
            },
            ReplicaTable {
                replica: 1,
                healed: true,
                grant_ids: vec![1, 2],
            },
            ReplicaTable {
                replica: 2,
                healed: false,
                grant_ids: vec![1], // still desynced: exempt
            },
        ];
        assert!(check_replica_convergence(&ev).is_empty());
        ev.replicas[1].grant_ids = vec![1];
        let v = check_replica_convergence(&ev);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("diverges"));
    }

    #[test]
    fn evidence_round_trips_through_json() {
        let mut ev = clean();
        ev.crashes.push(CrashRecord {
            zone: 0,
            at_s: 1.0,
            state_loss: true,
        });
        ev.replicas.push(ReplicaTable {
            replica: 0,
            healed: true,
            grant_ids: vec![1],
        });
        let json = serde_json::to_string(&ev).unwrap();
        let back: RegistryEvidence = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ev);
    }
}
