//! The dLTE access point: local core + X2 agent on one node.
//!
//! §4.1's "one stub per site" composed with §4.3's peer coordination. The
//! AP is a single network host; this handler demultiplexes its inbound
//! traffic: NAS and directory answers to the local core, X2 to the peer
//! agent, everything else to the user plane (local breakout).
//!
//! The AP also closes the coordination loop: after each X2 share update it
//! re-derives the MAC-level resource partition its cell scheduler would
//! enforce (exposed via [`DlteApNode::tdm_share`] for the radio layer and
//! the E5/E7 experiments).

use crate::resilience::BackhaulFailover;
use dlte_epc::local_core::{DirMsg, LocalCoreNode};
use dlte_epc::messages::{Nas, S1Nas};
use dlte_net::{NodeCtx, NodeHandler, Packet};
use dlte_sim::SimDuration;
use dlte_x2::messages::wire as x2wire;
use dlte_x2::{X2Agent, X2Msg};
use std::collections::HashMap;

/// Fetch-timeout timer tags are `TAG_FETCH_BASE + epoch`; the X2 agent owns
/// `7_000_000..8_000_000` and the core's processor allocates upward from 0.
const TAG_FETCH_BASE: u64 = 8_000_000;

/// How long the AP holds an attach while a context fetch is outstanding
/// before falling back to the wide-area directory. Covers several X2
/// backhaul round trips; a crashed peer simply never answers.
const FETCH_TIMEOUT: SimDuration = SimDuration::from_millis(150);

/// An attach held while the AP asks its neighbors for the subscriber
/// context.
struct PendingFetch {
    packet: Packet,
    /// Peers queried and not yet heard from.
    outstanding: usize,
    /// Guards the timeout timer against a later fetch for the same IMSI.
    epoch: u64,
}

/// X2 context-fetch counters (mobility extension).
#[derive(Clone, Copy, Debug, Default)]
pub struct FetchStats {
    /// Attaches held while neighbors were queried.
    pub started: u64,
    /// Resolved by a neighbor's context (directory round trip skipped).
    pub hits: u64,
    /// Fell back to the directory (all neighbors nacked, or timeout).
    pub fallbacks: u64,
    /// Contexts this AP served to fetching neighbors.
    pub served: u64,
}

/// A dLTE access point node handler.
pub struct DlteApNode {
    pub core: LocalCoreNode,
    pub x2: X2Agent,
    /// §7 extension: emergency egress via a mesh neighbor when the backhaul
    /// dies (detected through X2 peer silence).
    pub failover: Option<BackhaulFailover>,
    /// Mobility extension: on an attach from an unknown IMSI, ask fresh X2
    /// peers for the subscriber context before paying the wide-area
    /// directory round trip.
    x2_fetch: bool,
    pending_fetch: HashMap<u64, PendingFetch>,
    fetch_epoch: u64,
    pub fetch_stats: FetchStats,
}

impl DlteApNode {
    pub fn new(core: LocalCoreNode, x2: X2Agent) -> Self {
        DlteApNode {
            core,
            x2,
            failover: None,
            x2_fetch: false,
            pending_fetch: HashMap::new(),
            fetch_epoch: 0,
            fetch_stats: FetchStats::default(),
        }
    }

    /// Enable backhaul failover over a mesh link.
    pub fn with_failover(mut self, failover: BackhaulFailover) -> Self {
        self.failover = Some(failover);
        self
    }

    /// Enable the X2 handover context fetch: on an attach from an unknown
    /// IMSI, ask fresh peers for the subscriber context before paying the
    /// wide-area directory round trip.
    pub fn with_context_fetch(mut self, enabled: bool) -> Self {
        self.x2_fetch = enabled;
        self
    }

    /// The time-domain share of the channel this AP is entitled to under
    /// the current X2 agreement (1.0 when independent or peerless).
    pub fn tdm_share(&self) -> f64 {
        self.x2.my_share
    }

    /// Keep the X2 demand signal fresh from the core's load: an AP with no
    /// attached clients advertises (almost) no demand, donating its share.
    fn refresh_demand(&mut self) {
        let sessions = self.core.active_sessions();
        self.x2.my_clients = sessions as u32;
        self.x2.my_demand = if sessions == 0 { 0.05 } else { 1.0 };
    }

    /// If `packet` is an attach/service request from an IMSI this core has
    /// no subscriber record for, hold it and fan a context fetch out to
    /// every fresh X2 peer. Returns the packet back if it should follow the
    /// normal path instead.
    fn try_start_fetch(&mut self, ctx: &mut NodeCtx<'_>, packet: Packet) -> Option<Packet> {
        let imsi = match packet.payload.as_control::<S1Nas>() {
            Some(s1)
                if matches!(
                    s1.nas,
                    Nas::AttachRequest { .. } | Nas::ServiceRequest { .. }
                ) =>
            {
                s1.imsi
            }
            _ => return Some(packet),
        };
        if self.core.has_record(imsi) || self.pending_fetch.contains_key(&imsi) {
            return Some(packet);
        }
        let peers = self.x2.fresh_peers();
        if peers.is_empty() {
            return Some(packet); // nobody to ask — straight to the directory
        }
        let my_addr = ctx.my_addr();
        for &p in &peers {
            self.x2.send_to_peer(
                ctx,
                p,
                X2Msg::HandoverRequest {
                    from: my_addr,
                    client: imsi,
                },
                x2wire::HANDOVER,
            );
        }
        self.fetch_epoch += 1;
        self.fetch_stats.started += 1;
        self.pending_fetch.insert(
            imsi,
            PendingFetch {
                packet,
                outstanding: peers.len(),
                epoch: self.fetch_epoch,
            },
        );
        ctx.set_timer(FETCH_TIMEOUT, TAG_FETCH_BASE + self.fetch_epoch);
        None
    }

    /// A queried peer answered (or acked without context). `key` is the
    /// subscriber material, `None` for a nack.
    fn on_fetch_reply(&mut self, ctx: &mut NodeCtx<'_>, client: u64, key: Option<u128>, sqn: u64) {
        if let Some(k) = key {
            // Install even with no fetch pending (a late reply after the
            // timeout fallback): it warms the cache for the next arrival
            // and max-merges the SQN, so it can never regress state.
            self.core.install_record(client, k, sqn);
        }
        let Some(pending) = self.pending_fetch.get_mut(&client) else {
            return;
        };
        if key.is_some() {
            let pf = self.pending_fetch.remove(&client).unwrap();
            self.fetch_stats.hits += 1;
            self.core.on_packet(ctx, pf.packet);
        } else {
            pending.outstanding = pending.outstanding.saturating_sub(1);
            if pending.outstanding == 0 {
                let pf = self.pending_fetch.remove(&client).unwrap();
                self.fetch_stats.fallbacks += 1;
                self.core.on_packet(ctx, pf.packet);
            }
        }
    }

    /// Handle the X2 mobility-extension messages at the AP level (the bare
    /// agent only knows the cooperative-handoff semantics). Returns the
    /// packet back if the agent should process it instead.
    fn try_handle_x2_mobility(&mut self, ctx: &mut NodeCtx<'_>, packet: Packet) -> Option<Packet> {
        let Some(msg) = packet.payload.as_control::<X2Msg>() else {
            return Some(packet);
        };
        match *msg {
            X2Msg::HandoverRequest { from, client } => {
                // A neighbor is asking whether we hold this client's
                // context: the client just arrived there, so any session we
                // still hold is a leftover — release it (idempotent with
                // the client's own detach) and hand the context over.
                self.x2.stats.msgs_received += 1;
                let my_addr = ctx.my_addr();
                let reply = match self.core.subscriber_record(client) {
                    Some((k, sqn)) => {
                        self.fetch_stats.served += 1;
                        X2Msg::HandoverContext {
                            from: my_addr,
                            client,
                            key: Some(k),
                            sqn,
                        }
                    }
                    None => X2Msg::HandoverContext {
                        from: my_addr,
                        client,
                        key: None,
                        sqn: 0,
                    },
                };
                self.core.release_session(ctx, client);
                self.x2
                    .send_to_peer(ctx, from, reply, x2wire::HANDOVER_CONTEXT);
                None
            }
            X2Msg::HandoverContext {
                client, key, sqn, ..
            } => {
                self.x2.stats.msgs_received += 1;
                self.on_fetch_reply(ctx, client, key, sqn);
                None
            }
            // A plain ack from a peer without the mobility extension: a
            // nack as far as the fetch is concerned.
            X2Msg::HandoverAck { client, .. } if self.pending_fetch.contains_key(&client) => {
                self.x2.stats.msgs_received += 1;
                self.on_fetch_reply(ctx, client, None, 0);
                None
            }
            _ => Some(packet),
        }
    }
}

impl NodeHandler for DlteApNode {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        self.x2.on_start(ctx);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tag: u64) {
        // Tag spaces: fetch timeouts ≥ 8_000_000, the X2 tick ≥ 7_000_000,
        // the core's processor allocates upward from 0.
        if tag >= TAG_FETCH_BASE {
            let epoch = tag - TAG_FETCH_BASE;
            let timed_out = self
                .pending_fetch
                .iter()
                .find(|(_, p)| p.epoch == epoch)
                .map(|(&imsi, _)| imsi);
            if let Some(imsi) = timed_out {
                // A queried peer never answered (crashed, partitioned):
                // stop waiting and take the wide-area directory path.
                let pf = self.pending_fetch.remove(&imsi).unwrap();
                self.fetch_stats.fallbacks += 1;
                self.core.on_packet(ctx, pf.packet);
            }
        } else if tag >= 7_000_000 {
            self.refresh_demand();
            self.x2.on_timer(ctx, tag);
            if let Some(fo) = &mut self.failover {
                fo.tick(ctx);
            }
        } else {
            self.core.on_timer(ctx, tag);
        }
    }

    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, packet: Packet) {
        if let Some(fo) = &mut self.failover {
            if fo.on_packet(ctx, &packet) {
                return;
            }
        }
        if packet.payload.as_control::<X2Msg>().is_some() {
            let packet = if self.x2_fetch {
                match self.try_handle_x2_mobility(ctx, packet) {
                    Some(p) => p,
                    None => return,
                }
            } else {
                packet
            };
            self.x2.on_packet(ctx, packet);
        } else if packet.payload.as_control::<S1Nas>().is_some()
            || packet.payload.as_control::<DirMsg>().is_some()
        {
            let packet = if self.x2_fetch {
                match self.try_start_fetch(ctx, packet) {
                    Some(p) => p,
                    None => return, // held pending the context fetch
                }
            } else {
                packet
            };
            self.core.on_packet(ctx, packet);
        } else {
            // User plane (and anything else): the local core forwards it —
            // local breakout.
            self.core.on_packet(ctx, packet);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlte_auth::open::PublishedKeyDirectory;
    use dlte_epc::local_core::KeySource;
    use dlte_net::{Addr, AddrPool, Prefix};
    use dlte_sim::{SimDuration, SimRng};
    use dlte_x2::CoordinationMode;

    #[test]
    fn ap_composes_core_and_x2() {
        let pool = AddrPool::new(Prefix::new(Addr::new(100, 66, 0, 0), 24));
        let core = LocalCoreNode::new(
            42,
            pool,
            KeySource::Local(PublishedKeyDirectory::new()),
            SimDuration::from_micros(200),
            SimRng::new(1),
        );
        let x2 = X2Agent::new(
            CoordinationMode::FairShare,
            vec![],
            SimDuration::from_millis(100),
        );
        let ap = DlteApNode::new(core, x2);
        assert_eq!(ap.tdm_share(), 1.0, "no peers yet → full channel");
        assert_eq!(ap.core.active_sessions(), 0);
    }
}
