//! The dLTE access point: local core + X2 agent on one node.
//!
//! §4.1's "one stub per site" composed with §4.3's peer coordination. The
//! AP is a single network host; this handler demultiplexes its inbound
//! traffic: NAS and directory answers to the local core, X2 to the peer
//! agent, everything else to the user plane (local breakout).
//!
//! The AP also closes the coordination loop: after each X2 share update it
//! re-derives the MAC-level resource partition its cell scheduler would
//! enforce (exposed via [`DlteApNode::tdm_share`] for the radio layer and
//! the E5/E7 experiments).

use crate::resilience::BackhaulFailover;
use dlte_epc::local_core::{DirMsg, LocalCoreNode};
use dlte_epc::messages::S1Nas;
use dlte_net::{NodeCtx, NodeHandler, Packet};
use dlte_x2::{X2Agent, X2Msg};

/// A dLTE access point node handler.
pub struct DlteApNode {
    pub core: LocalCoreNode,
    pub x2: X2Agent,
    /// §7 extension: emergency egress via a mesh neighbor when the backhaul
    /// dies (detected through X2 peer silence).
    pub failover: Option<BackhaulFailover>,
}

impl DlteApNode {
    pub fn new(core: LocalCoreNode, x2: X2Agent) -> Self {
        DlteApNode {
            core,
            x2,
            failover: None,
        }
    }

    /// Enable backhaul failover over a mesh link.
    pub fn with_failover(mut self, failover: BackhaulFailover) -> Self {
        self.failover = Some(failover);
        self
    }

    /// The time-domain share of the channel this AP is entitled to under
    /// the current X2 agreement (1.0 when independent or peerless).
    pub fn tdm_share(&self) -> f64 {
        self.x2.my_share
    }

    /// Keep the X2 demand signal fresh from the core's load: an AP with no
    /// attached clients advertises (almost) no demand, donating its share.
    fn refresh_demand(&mut self) {
        let sessions = self.core.active_sessions();
        self.x2.my_clients = sessions as u32;
        self.x2.my_demand = if sessions == 0 { 0.05 } else { 1.0 };
    }
}

impl NodeHandler for DlteApNode {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        self.x2.on_start(ctx);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tag: u64) {
        // The X2 agent owns tags ≥ 7_000_000 (its tick); the core's
        // processor allocates upward from 0.
        if tag >= 7_000_000 {
            self.refresh_demand();
            self.x2.on_timer(ctx, tag);
            if let Some(fo) = &mut self.failover {
                fo.tick(ctx);
            }
        } else {
            self.core.on_timer(ctx, tag);
        }
    }

    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, packet: Packet) {
        if let Some(fo) = &mut self.failover {
            if fo.on_packet(ctx, &packet) {
                return;
            }
        }
        if packet.payload.as_control::<X2Msg>().is_some() {
            self.x2.on_packet(ctx, packet);
        } else if packet.payload.as_control::<S1Nas>().is_some()
            || packet.payload.as_control::<DirMsg>().is_some()
        {
            self.core.on_packet(ctx, packet);
        } else {
            // User plane (and anything else): the local core forwards it —
            // local breakout.
            self.core.on_packet(ctx, packet);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlte_auth::open::PublishedKeyDirectory;
    use dlte_epc::local_core::KeySource;
    use dlte_net::{Addr, AddrPool, Prefix};
    use dlte_sim::{SimDuration, SimRng};
    use dlte_x2::CoordinationMode;

    #[test]
    fn ap_composes_core_and_x2() {
        let pool = AddrPool::new(Prefix::new(Addr::new(100, 66, 0, 0), 24));
        let core = LocalCoreNode::new(
            42,
            pool,
            KeySource::Local(PublishedKeyDirectory::new()),
            SimDuration::from_micros(200),
            SimRng::new(1),
        );
        let x2 = X2Agent::new(
            CoordinationMode::FairShare,
            vec![],
            SimDuration::from_millis(100),
        );
        let ap = DlteApNode::new(core, x2);
        assert_eq!(ap.tdm_share(), 1.0, "no peers yet → full channel");
        assert_eq!(ap.core.active_sessions(), 0);
    }
}
