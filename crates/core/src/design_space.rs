//! Table 1 as an executable classification.
//!
//! The paper divides the wireless design space along two axes — core
//! openness and radio regime — and observes that one quadrant (open core ×
//! licensed radio) was unexplored until dLTE. Here the known systems are
//! values, the axes are functions of their construction, and the table is
//! generated, so the claim "dLTE uniquely occupies that quadrant among the
//! listed systems" is a test rather than prose.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Who can add an access point that extends the network.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum CoreOpenness {
    /// Anyone conforming to the protocol (legacy WiFi joins a LAN; dLTE
    /// joins the registry and peers).
    Open,
    /// Only the operator of the central core.
    Closed,
}

/// Spectrum access regime of the radio.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum RadioRegime {
    /// Licensed (or license-by-rule) coordinated spectrum.
    Licensed,
    /// Unlicensed ISM bands.
    Unlicensed,
}

/// A known wireless system design.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum SystemDesign {
    LegacyWifi,
    WifiMesh,
    EnterpriseWifi,
    PrivateLte,
    TelecomLte,
    FiveGCellular,
    Dlte,
}

impl SystemDesign {
    pub fn all() -> [SystemDesign; 7] {
        [
            SystemDesign::LegacyWifi,
            SystemDesign::WifiMesh,
            SystemDesign::EnterpriseWifi,
            SystemDesign::PrivateLte,
            SystemDesign::TelecomLte,
            SystemDesign::FiveGCellular,
            SystemDesign::Dlte,
        ]
    }

    /// Core-openness axis.
    pub fn core(self) -> CoreOpenness {
        match self {
            // Anyone can stand up an AP and have clients use it.
            SystemDesign::LegacyWifi | SystemDesign::WifiMesh | SystemDesign::Dlte => {
                CoreOpenness::Open
            }
            // A controller/EPC gate-keeps which APs extend the network.
            SystemDesign::EnterpriseWifi
            | SystemDesign::PrivateLte
            | SystemDesign::TelecomLte
            | SystemDesign::FiveGCellular => CoreOpenness::Closed,
        }
    }

    /// Radio-regime axis.
    pub fn radio(self) -> RadioRegime {
        match self {
            SystemDesign::LegacyWifi
            | SystemDesign::WifiMesh
            | SystemDesign::EnterpriseWifi
            | SystemDesign::PrivateLte => RadioRegime::Unlicensed,
            SystemDesign::TelecomLte | SystemDesign::FiveGCellular | SystemDesign::Dlte => {
                RadioRegime::Licensed
            }
        }
    }
}

impl fmt::Display for SystemDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SystemDesign::LegacyWifi => "Legacy WiFi",
            SystemDesign::WifiMesh => "WiFi Mesh",
            SystemDesign::EnterpriseWifi => "Enterprise WiFi",
            SystemDesign::PrivateLte => "Private LTE",
            SystemDesign::TelecomLte => "Telecom LTE",
            SystemDesign::FiveGCellular => "5G Cellular",
            SystemDesign::Dlte => "dLTE",
        };
        f.write_str(s)
    }
}

/// Systems in a given quadrant.
pub fn quadrant(core: CoreOpenness, radio: RadioRegime) -> Vec<SystemDesign> {
    SystemDesign::all()
        .into_iter()
        .filter(|s| s.core() == core && s.radio() == radio)
        .collect()
}

/// Render the 2×2 table (Table 1).
pub fn render_table() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} | {:<32} | {:<32}\n",
        "", "Open Core", "Closed Core"
    ));
    out.push_str(&"-".repeat(88));
    out.push('\n');
    for radio in [RadioRegime::Unlicensed, RadioRegime::Licensed] {
        let label = match radio {
            RadioRegime::Unlicensed => "Unlicensed Radio",
            RadioRegime::Licensed => "Licensed Radio",
        };
        let open: Vec<String> = quadrant(CoreOpenness::Open, radio)
            .iter()
            .map(|s| s.to_string())
            .collect();
        let closed: Vec<String> = quadrant(CoreOpenness::Closed, radio)
            .iter()
            .map(|s| s.to_string())
            .collect();
        out.push_str(&format!(
            "{:<18} | {:<32} | {:<32}\n",
            label,
            open.join(", "),
            closed.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dlte_uniquely_fills_the_open_licensed_quadrant() {
        // The headline of Table 1.
        let q = quadrant(CoreOpenness::Open, RadioRegime::Licensed);
        assert_eq!(q, vec![SystemDesign::Dlte]);
    }

    #[test]
    fn other_quadrants_match_the_paper() {
        assert_eq!(
            quadrant(CoreOpenness::Open, RadioRegime::Unlicensed),
            vec![SystemDesign::LegacyWifi, SystemDesign::WifiMesh]
        );
        assert_eq!(
            quadrant(CoreOpenness::Closed, RadioRegime::Unlicensed),
            vec![SystemDesign::EnterpriseWifi, SystemDesign::PrivateLte]
        );
        assert_eq!(
            quadrant(CoreOpenness::Closed, RadioRegime::Licensed),
            vec![SystemDesign::TelecomLte, SystemDesign::FiveGCellular]
        );
    }

    #[test]
    fn every_system_lands_in_exactly_one_quadrant() {
        let mut count = 0;
        for core in [CoreOpenness::Open, CoreOpenness::Closed] {
            for radio in [RadioRegime::Licensed, RadioRegime::Unlicensed] {
                count += quadrant(core, radio).len();
            }
        }
        assert_eq!(count, SystemDesign::all().len());
    }

    #[test]
    fn table_renders_all_systems() {
        let t = render_table();
        for s in SystemDesign::all() {
            assert!(t.contains(&s.to_string()), "{s} missing from table");
        }
    }
}
