//! Deployment economics — the quantitative content of §5 and Figure 2.
//!
//! The paper reports a working single-site deployment in Papua, Indonesia:
//! two commercial eNodeBs (two sectors), two 15 dBi antennas, an
//! off-the-shelf computer running the EPC stub, and cabling — under $8,000
//! in materials, covering an entire town from one gym roof. This module
//! prices that bill of materials, computes the coverage a site buys from
//! the link budget, and compares cost-per-km² across deployment options.

use dlte_phy::band::Band;
use dlte_phy::link::{LinkBudget, RadioConfig};
use dlte_phy::mcs::CQI_TABLE;
use dlte_phy::propagation::PathLossModel;
use dlte_phy::wifi::WIFI_RATES;
use serde::{Deserialize, Serialize};

/// One line of a bill of materials.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BomItem {
    pub name: &'static str,
    pub unit_usd: f64,
    pub quantity: u32,
}

impl BomItem {
    pub fn total(&self) -> f64 {
        self.unit_usd * self.quantity as f64
    }
}

/// A deployment option to price out.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Deployment {
    /// The paper's prototype: 2-sector dLTE site, band 5.
    DlteSite,
    /// An outdoor long-range WiFi AP installation.
    WifiSite,
    /// A traditional telecom macro site (tower build + EPC share).
    TelecomMacro,
}

impl Deployment {
    /// Bill of materials (unit prices representative of 2018 hardware, as
    /// in the paper's account).
    pub fn bom(self) -> Vec<BomItem> {
        match self {
            Deployment::DlteSite => vec![
                BomItem {
                    name: "Commercial eNodeB (1 sector)",
                    unit_usd: 2_800.0,
                    quantity: 2,
                },
                BomItem {
                    name: "15 dBi sector antenna",
                    unit_usd: 250.0,
                    quantity: 2,
                },
                BomItem {
                    name: "EPC-stub mini computer",
                    unit_usd: 500.0,
                    quantity: 1,
                },
                BomItem {
                    name: "Cabling, mounts, surge",
                    unit_usd: 600.0,
                    quantity: 1,
                },
            ],
            Deployment::WifiSite => vec![
                BomItem {
                    name: "Outdoor WiFi AP",
                    unit_usd: 300.0,
                    quantity: 2,
                },
                BomItem {
                    name: "Sector antenna",
                    unit_usd: 150.0,
                    quantity: 2,
                },
                BomItem {
                    name: "PoE, cabling, mounts",
                    unit_usd: 300.0,
                    quantity: 1,
                },
            ],
            Deployment::TelecomMacro => vec![
                BomItem {
                    name: "Macro eNodeB (3 sectors)",
                    unit_usd: 25_000.0,
                    quantity: 1,
                },
                BomItem {
                    name: "Tower construction",
                    unit_usd: 60_000.0,
                    quantity: 1,
                },
                BomItem {
                    name: "Site civil works + power",
                    unit_usd: 20_000.0,
                    quantity: 1,
                },
                BomItem {
                    name: "EPC capacity share",
                    unit_usd: 15_000.0,
                    quantity: 1,
                },
            ],
        }
    }

    /// Total materials cost, USD.
    pub fn capex_usd(self) -> f64 {
        self.bom().iter().map(BomItem::total).sum()
    }

    /// Coverage radius (km) at the lowest usable rate of the system's
    /// radio, rural propagation. The LTE sites are uplink-limited (handset
    /// power); WiFi is limited by its higher sensitivity floor.
    pub fn coverage_radius_km(self) -> f64 {
        match self {
            Deployment::DlteSite | Deployment::TelecomMacro => {
                // Uplink: handset → eNodeB at band 5, cell-edge CQI 1.
                let lb = LinkBudget {
                    tx: RadioConfig::lte_handset(),
                    rx: RadioConfig::rural_enodeb(),
                    model: PathLossModel::rural_macro(),
                    freq_mhz: Band::band5().uplink_center_mhz(),
                    bandwidth_hz: 10e6,
                };
                lb.range_km(CQI_TABLE[0].sinr_threshold_db)
            }
            Deployment::WifiSite => {
                let lb = LinkBudget {
                    tx: RadioConfig::wifi_client(),
                    rx: RadioConfig::wifi_ap(),
                    model: PathLossModel::rural_macro(),
                    freq_mhz: Band::ism24().downlink_center_mhz(),
                    bandwidth_hz: 20e6,
                };
                lb.range_km(WIFI_RATES[0].min_snr_db)
            }
        }
    }

    /// Covered area, km² (two 180° sectors ⇒ full circle for the 2-sector
    /// sites; the macro's 3 sectors likewise).
    pub fn coverage_area_km2(self) -> f64 {
        let r = self.coverage_radius_km();
        std::f64::consts::PI * r * r
    }

    /// Materials cost per covered km².
    pub fn usd_per_km2(self) -> f64 {
        self.capex_usd() / self.coverage_area_km2()
    }
}

/// Render the F2 table.
pub fn render_table() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>12} {:>12} {:>12} {:>12}\n",
        "deployment", "capex $", "radius km", "area km2", "$/km2"
    ));
    for d in [
        Deployment::DlteSite,
        Deployment::WifiSite,
        Deployment::TelecomMacro,
    ] {
        out.push_str(&format!(
            "{:<16} {:>12.0} {:>12.2} {:>12.1} {:>12.1}\n",
            format!("{d:?}"),
            d.capex_usd(),
            d.coverage_radius_km(),
            d.coverage_area_km2(),
            d.usd_per_km2()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dlte_site_under_8000_usd_paper_claim() {
        let capex = Deployment::DlteSite.capex_usd();
        assert!(
            capex < 8_000.0,
            "§5: deployment cost less than $8000, got {capex}"
        );
        assert!(capex > 5_000.0, "and it isn't free: {capex}");
    }

    #[test]
    fn dlte_site_covers_a_town_from_one_site() {
        let r = Deployment::DlteSite.coverage_radius_km();
        assert!(r > 3.0, "one site covers the town: {r} km");
    }

    #[test]
    fn wifi_is_cheaper_but_covers_far_less() {
        let dlte = Deployment::DlteSite;
        let wifi = Deployment::WifiSite;
        assert!(wifi.capex_usd() < dlte.capex_usd());
        assert!(
            dlte.coverage_radius_km() > 3.0 * wifi.coverage_radius_km(),
            "dlte {} km vs wifi {} km",
            dlte.coverage_radius_km(),
            wifi.coverage_radius_km()
        );
        // …so per square kilometer, dLTE wins.
        assert!(dlte.usd_per_km2() < wifi.usd_per_km2());
    }

    #[test]
    fn telecom_macro_same_physics_ten_x_cost() {
        let dlte = Deployment::DlteSite;
        let telecom = Deployment::TelecomMacro;
        // Same radio physics (both uplink-limited at band 5)…
        assert!((telecom.coverage_radius_km() - dlte.coverage_radius_km()).abs() < 0.5);
        // …an order of magnitude apart in cost.
        assert!(telecom.capex_usd() > 10.0 * dlte.capex_usd());
        assert!(telecom.usd_per_km2() > 10.0 * dlte.usd_per_km2());
    }

    #[test]
    fn table_renders() {
        let t = render_table();
        assert!(t.contains("DlteSite"));
        assert!(t.contains("WifiSite"));
        assert!(t.contains("TelecomMacro"));
    }
}
