//! E10 — §2.1/§4.2: tunneling everything through the EPC inflates the user
//! path; local breakout removes the detour (and its buffer bloat).
//!
//! Sweep the distance (one-way delay) between the aggregation point and
//! the EPC site. The centralized user RTT grows with it; the dLTE RTT
//! doesn't contain it at all.

use super::{f2c, Table};
use crate::scenario::{DlteNetworkBuilder, DltePlan};
use dlte_epc::topology::{CentralizedLteBuilder, UePlan};
use dlte_epc::ue::{MobilityMode, UeApp, UeNode};
use dlte_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(default)]
pub struct Params {
    pub epc_delay_ms: Vec<u64>,
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            epc_delay_ms: vec![5, 15, 30, 60],
            seed: 1,
        }
    }
}

fn rtt_centralized(epc_delay_ms: u64, seed: u64) -> f64 {
    let mut b = CentralizedLteBuilder::new(1, 1);
    b.epc_delay = SimDuration::from_millis(epc_delay_ms);
    b.seed = seed;
    let mut net = b
        .with_ue_plan(|_| UePlan {
            app: UeApp::Pinger {
                dst: CentralizedLteBuilder::ott_addr(),
                interval: SimDuration::from_millis(100),
                probe_bytes: 100,
            },
            mode: MobilityMode::PathSwitch,
            schedule: vec![],
        })
        .build();
    net.sim.run_until(SimTime::from_secs(6), 10_000_000);
    let ue = net.sim.world().handler_as::<UeNode>(net.ues[0]).unwrap();
    ue.stats.rtt_ms.median()
}

fn rtt_dlte(seed: u64) -> f64 {
    let mut net = DlteNetworkBuilder::new(1, 1)
        .with_ue_plan(|_| DltePlan {
            app: UeApp::Pinger {
                dst: DlteNetworkBuilder::ott_addr(),
                interval: SimDuration::from_millis(100),
                probe_bytes: 100,
            },
            ..Default::default()
        })
        .build();
    let _ = seed;
    net.sim.run_until(SimTime::from_secs(6), 10_000_000);
    let ue = net.sim.handler_as::<UeNode>(net.ues[0]).unwrap();
    ue.stats.rtt_ms.median()
}

pub fn run_with(p: Params) -> Table {
    let dlte = rtt_dlte(p.seed);
    let mut t = Table::new(
        "E10",
        "User RTT vs EPC distance: tunneled vs local breakout (paper §2.1/§4.2)",
        &[
            "EPC distance (ms one-way)",
            "centralized RTT (ms)",
            "dLTE RTT (ms)",
            "inflation (ms)",
        ],
    );
    for &d in &p.epc_delay_ms {
        let c = rtt_centralized(d, p.seed);
        t.row(vec![d.to_string(), f2c(c), f2c(dlte), f2c(c - dlte)]);
    }
    t.expect("centralized RTT grows ~2× the EPC one-way distance; dLTE RTT is constant — the whole detour is architectural");
    t
}

pub fn run() -> Table {
    run_with(Params::default())
}

#[cfg(test)]
mod tests {
    #[test]
    fn shapes_hold() {
        let t = super::run_with(super::Params {
            epc_delay_ms: vec![5, 30],
            seed: 2,
        });
        let cent = t.column_f64(1);
        let dlte = t.column_f64(2);
        // dLTE constant across rows.
        assert!((dlte[0] - dlte[1]).abs() < 0.5);
        // Centralized grows by ≈ 2×25 ms between the rows.
        let growth = cent[1] - cent[0];
        assert!((45.0..55.0).contains(&growth), "growth {growth}");
        // And centralized is never cheaper.
        assert!(cent[0] > dlte[0]);
    }
}
