//! E11 — §4.3: "The X2 interface is relatively low bandwidth, but when
//! backhaul constrained the level of coordination can be minimized."
//!
//! Two parts: (a) measured X2 egress per AP from live scenario runs as the
//! peer count grows, against user-plane traffic for scale; (b) the
//! budget-degradation plan (mode / reporting interval chosen per backhaul
//! budget).

use super::{f2c, Table};
use crate::scenario::{DlteNetworkBuilder, DltePlan};
use crate::DlteApNode;
use dlte_epc::ue::UeApp;
use dlte_sim::{SimDuration, SimTime};
use dlte_x2::bandwidth::{plan_for_budget, x2_bps};
use dlte_x2::CoordinationMode;
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(default)]
pub struct Params {
    pub ap_counts: Vec<usize>,
    pub seconds: u64,
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            ap_counts: vec![2, 4, 8],
            seconds: 10,
            seed: 1,
        }
    }
}

fn measured_x2_bps(n_aps: usize, p: &Params) -> (f64, f64) {
    let mut b = DlteNetworkBuilder::new(n_aps, 1);
    b.seed = p.seed;
    b.x2_interval = SimDuration::from_millis(500);
    let mut net = b
        .with_ue_plan(|_| DltePlan {
            app: UeApp::UplinkCbr {
                dst: DlteNetworkBuilder::ott_addr(),
                rate_bps: 1e6,
                packet_bytes: 1200,
            },
            ..Default::default()
        })
        .build();
    net.sim
        .run_until(SimTime::from_secs(p.seconds), 100_000_000);
    let ap = net.sim.handler_as::<DlteApNode>(net.aps[0]).unwrap();
    let x2_bps_measured = ap.x2.stats.bytes_sent as f64 * 8.0 / p.seconds as f64;
    // User traffic through the same AP for scale.
    let user_bps = ap.core.stats.ul_user_packets as f64 * 1200.0 * 8.0 / p.seconds as f64;
    (x2_bps_measured, user_bps)
}

pub fn run_with(p: Params) -> Table {
    let mut t = Table::new(
        "E11",
        "X2 coordination overhead and backhaul-budget degradation (paper §4.3)",
        &["row", "value 1", "value 2", "value 3"],
    );
    // Part (a): measured overhead.
    t.row(vec![
        "-- measured per-AP egress --".into(),
        "X2 (kbit/s)".into(),
        "user plane (kbit/s)".into(),
        "ratio".into(),
    ]);
    for &n in &p.ap_counts {
        let (x2, user) = measured_x2_bps(n, &p);
        t.row(vec![
            format!("{n} APs"),
            f2c(x2 / 1e3),
            f2c(user / 1e3),
            format!("{:.5}", x2 / user.max(1.0)),
        ]);
    }
    // Part (b): budget plans (closed form).
    t.row(vec![
        "-- budget plan (8 peers, 40 clients) --".into(),
        "mode".into(),
        "interval (ms)".into(),
        "X2 (kbit/s)".into(),
    ]);
    for budget in [1e6, 50e3, 5e3, 100.0] {
        let plan = plan_for_budget(
            CoordinationMode::Cooperative,
            8,
            40,
            SimDuration::from_millis(100),
            SimDuration::from_secs(30),
            budget,
        );
        t.row(vec![
            format!("budget {budget:.0} bit/s"),
            format!("{:?}", plan.mode),
            plan.report_interval.as_millis().to_string(),
            f2c(plan.bps / 1e3),
        ]);
    }
    // Closed-form check row.
    let closed = x2_bps(
        CoordinationMode::FairShare,
        7,
        SimDuration::from_millis(500),
        0,
    );
    t.row(vec![
        "closed-form 8-AP fair-share".into(),
        f2c(closed / 1e3),
        "kbit/s".into(),
        "".into(),
    ]);
    t.expect("X2 egress is a few kbit/s — orders of magnitude under user traffic; shrinking budgets stretch the interval first, then drop cooperative → fair-share → independent");
    t
}

pub fn run() -> Table {
    run_with(Params::default())
}

#[cfg(test)]
mod tests {
    #[test]
    fn shapes_hold() {
        let t = super::run_with(super::Params {
            ap_counts: vec![2, 4],
            seconds: 5,
            seed: 2,
        });
        // Measured rows are 1..=2; ratio column must be tiny.
        for i in 1..=2 {
            let ratio: f64 = t.rows[i][3].parse().unwrap();
            assert!(ratio < 0.02, "X2/user ratio {ratio}");
        }
        // Budget rows: the tightest budget forces Independent.
        let last_budget_row = &t.rows[t.rows.len() - 2];
        assert_eq!(last_budget_row[1], "Independent");
        // Most generous budget keeps Cooperative at the base interval.
        let first_budget_row = &t.rows[4];
        assert_eq!(first_budget_row[1], "Cooperative");
        assert_eq!(first_budget_row[2], "100");
    }
}
