//! E12 — §4.2's transport feature list, ablated: "zero RTT secure flow
//! resumption, forward error correction to mask discontinuity, non head of
//! line blocking, and multiple IP address support for client managed
//! handoff."
//!
//! A UE uploads continuously through a dLTE network while hopping APs every
//! few seconds. Four transport stacks ride the identical churn:
//!
//! * legacy (TCP-like: 4-tuple bound, 1-RTT, global order);
//! * +0-RTT (reconnects resume with cached tokens);
//! * +migration (connection IDs survive the address change);
//! * modern (migration + 0-RTT + FEC).

use super::{f2c, mbps, Table};
use crate::scenario::{DlteNetworkBuilder, DltePlan};
use crate::transport_app::TransportUeApp;
use dlte_epc::ue::{MobilityMode, UeApp, UeNode};
use dlte_sim::SimTime;
use dlte_transport::connection::TransportConfig;
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(default)]
pub struct Params {
    /// Dwell per AP, seconds.
    pub dwell_s: f64,
    pub total_s: f64,
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            dwell_s: 3.0,
            total_s: 20.0,
            seed: 1,
        }
    }
}

fn schedule(dwell_s: f64, total_s: f64) -> Vec<(SimTime, usize)> {
    let mut out = Vec::new();
    let mut t = 2.0 + dwell_s;
    let mut cell = 1;
    while t < total_s - 1.0 {
        out.push((SimTime::from_secs_f64(t), cell));
        cell = 1 - cell;
        t += dwell_s;
    }
    out
}

struct Arm {
    label: &'static str,
    cfg: TransportConfig,
}

fn arms() -> Vec<Arm> {
    vec![
        Arm {
            label: "legacy (TCP-like)",
            cfg: TransportConfig::legacy(),
        },
        Arm {
            label: "+0-RTT resume",
            cfg: TransportConfig {
                zero_rtt: true,
                migration: false,
                fec_k: 0,
                legacy_ordering: false,
                ..TransportConfig::default()
            },
        },
        Arm {
            label: "+migration",
            cfg: TransportConfig {
                zero_rtt: false,
                migration: true,
                fec_k: 0,
                legacy_ordering: false,
                ..TransportConfig::default()
            },
        },
        Arm {
            label: "modern (mig+0rtt+FEC)",
            cfg: TransportConfig::modern(),
        },
    ]
}

struct Outcome {
    mean_resume_ms: f64,
    handshakes: u64,
    goodput_bps: f64,
}

fn run_arm(cfg: TransportConfig, p: &Params) -> Outcome {
    let dwell = p.dwell_s;
    let total = p.total_s;
    let mut b = DlteNetworkBuilder::new(2, 1);
    b.wire_all_cells = true;
    b.seed = p.seed;
    b.transport_cfg = cfg;
    let mut net = b
        .with_ue_plan(move |i| DltePlan {
            app: if i == 0 {
                UeApp::Upper(Box::new(TransportUeApp::new(
                    cfg,
                    DlteNetworkBuilder::ott_transport_addr(),
                )))
            } else {
                UeApp::None
            },
            mode: MobilityMode::ReAttach,
            schedule: if i == 0 {
                schedule(dwell, total)
            } else {
                vec![]
            },
        })
        .build();
    net.sim
        .run_until(SimTime::from_secs_f64(p.total_s), 100_000_000);
    let ue = net.sim.handler_as::<UeNode>(net.ues[0]).unwrap();
    let app = ue.upper_as::<TransportUeApp>().expect("transport app");
    Outcome {
        mean_resume_ms: if app.resume_ms.is_empty() {
            f64::NAN
        } else {
            app.resume_ms.mean()
        },
        handshakes: app.conn.handshakes,
        goodput_bps: app.conn.acked_bytes() as f64 * 8.0 / p.total_s,
    }
}

pub fn run_with(p: Params) -> Table {
    let mut t = Table::new(
        "E12",
        "Transport feature ablation under AP churn (paper §4.2)",
        &[
            "transport",
            "mean resume (ms)",
            "handshakes",
            "goodput (Mbit/s)",
        ],
    );
    let rows = dlte_sim::par_map(arms(), |arm| {
        let o = run_arm(arm.cfg, &p);
        vec![
            arm.label.into(),
            f2c(o.mean_resume_ms),
            o.handshakes.to_string(),
            mbps(o.goodput_bps),
        ]
    });
    for row in rows {
        t.row(row);
    }
    t.expect("legacy re-handshakes at every hop and resumes slowest; 0-RTT cuts the resume RTT; migration eliminates handshakes entirely; the modern stack is fastest overall");
    t
}

pub fn run() -> Table {
    run_with(Params::default())
}

#[cfg(test)]
mod tests {
    #[test]
    fn shapes_hold() {
        let t = super::run_with(super::Params {
            dwell_s: 3.0,
            total_s: 15.0,
            seed: 2,
        });
        let resume = t.column_f64(1);
        let handshakes = t.column_f64(2);
        let (legacy, _zrtt, migration, modern) = (0, 1, 2, 3);
        // Migration arms never re-handshake; legacy does at every hop.
        assert_eq!(handshakes[migration], 1.0);
        assert_eq!(handshakes[modern], 1.0);
        assert!(handshakes[legacy] > 1.0);
        // Modern resumes at least as fast as legacy.
        assert!(
            resume[modern] <= resume[legacy],
            "modern {} vs legacy {}",
            resume[modern],
            resume[legacy]
        );
    }
}
