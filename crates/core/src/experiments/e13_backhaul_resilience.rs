//! E13 — §7 (future work): "multi-hop approaches to sharing and aggregating
//! bandwidth between neighboring LTE APs... could provide redundancy for
//! users in emergencies when the backhaul link goes down."
//!
//! Two APs; AP0's backhaul is cut mid-run. Without a mesh, AP0's users are
//! offline for the remainder. With an inter-AP mesh link: AP0 detects the
//! failure through X2 peer silence and fails its egress over to AP1; the
//! wide-area routing reconverges the downlink (modeled as scripted route
//! updates after an IGP-style convergence delay). Users ride it out with a
//! bounded outage and a modest RTT penalty from the extra hop.

use super::{f2c, Table};
use crate::scenario::{DlteNetworkBuilder, DltePlan};
use crate::DlteApNode;
use dlte_epc::ue::{UeApp, UeNode};
use dlte_net::{NetFault, Prefix};
use dlte_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(default)]
pub struct Params {
    /// When the backhaul dies.
    pub fail_at_s: f64,
    /// Scripted IGP reconvergence delay after the failure.
    pub reconverge_after_s: f64,
    pub total_s: f64,
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            fail_at_s: 5.0,
            reconverge_after_s: 2.0,
            total_s: 20.0,
            seed: 1,
        }
    }
}

struct Outcome {
    pongs: u64,
    outage_s: f64,
    rtt_before_ms: f64,
    rtt_after_ms: f64,
    failed_over: bool,
    /// Seconds from the failure until the first post-failure pong (None =
    /// service never came back within the experiment).
    recovery_s: Option<f64>,
    /// Probes sent that never drew a pong.
    probes_lost: u64,
}

fn run_arm(mesh: bool, p: &Params) -> Outcome {
    let mut b = DlteNetworkBuilder::new(2, 1);
    b.mesh = mesh;
    b.seed = p.seed;
    let ping_interval = SimDuration::from_millis(50);
    let mut net = b
        .with_ue_plan(move |_| DltePlan {
            app: UeApp::Pinger {
                dst: DlteNetworkBuilder::ott_addr(),
                interval: ping_interval,
                probe_bytes: 100,
            },
            ..Default::default()
        })
        .build();

    // Fault timeline: kill AP0's backhaul; later, the routing system points
    // AP0's pool (and AP0's own address, healing X2) through AP1. Faults are
    // broadcast into every shard, so this arm runs unchanged — and
    // bit-identically — at any `--shards` setting.
    let fail_at = SimTime::from_secs_f64(p.fail_at_s);
    let reconverge_at = SimTime::from_secs_f64(p.fail_at_s + p.reconverge_after_s);
    net.sim.schedule_fault_broadcast(
        fail_at,
        NetFault::LinkUp {
            link: net.ap_backhaul[0],
            up: false,
        },
    );
    if mesh {
        let ap0_addr = net.sim.node_addrs(net.aps[0])[0];
        let mesh_link = net.ap_mesh[0];
        let reroutes = [
            (
                net.r_agg,
                DlteNetworkBuilder::ap_pool(0),
                net.ap_backhaul[1],
            ),
            (net.aps[1], DlteNetworkBuilder::ap_pool(0), mesh_link),
            (net.r_agg, Prefix::new(ap0_addr, 32), net.ap_backhaul[1]),
            (net.aps[1], Prefix::new(ap0_addr, 32), mesh_link),
        ];
        for (node, prefix, link) in reroutes {
            net.sim
                .schedule_fault_broadcast(reconverge_at, NetFault::RouteSet { node, prefix, link });
        }
    }

    // Segmented run so recovery can be timestamped: run to the failure,
    // drain in-flight replies, then step in 100 ms increments watching for
    // the first post-failure pong. Splitting `run_until` does not perturb
    // event order, so the arm stays byte-identical to a single run.
    let total = SimTime::from_secs_f64(p.total_s);
    let drain = fail_at + SimDuration::from_millis(250);
    net.sim.run_until(drain.min(total), 100_000_000);
    let pongs_at_fail = net
        .sim
        .handler_as::<UeNode>(net.ues[0])
        .unwrap()
        .stats
        .pongs;
    let mut recovery_s = None;
    let mut mark = drain;
    while mark < total {
        mark = (mark + SimDuration::from_millis(100)).min(total);
        net.sim.run_until(mark, 100_000_000);
        let pongs = net
            .sim
            .handler_as::<UeNode>(net.ues[0])
            .unwrap()
            .stats
            .pongs;
        if pongs > pongs_at_fail {
            recovery_s = Some(mark.saturating_since(fail_at).as_secs_f64());
            break;
        }
    }
    net.sim.run_until(total, 100_000_000);
    let ue = net.sim.handler_as::<UeNode>(net.ues[0]).unwrap();
    let ap0 = net.sim.handler_as::<DlteApNode>(net.aps[0]).unwrap();

    // Outage: expected pongs at 20/s minus observed, spread over the
    // post-failure window.
    let expected = (p.total_s / 0.05).round() as u64;
    let missing = expected.saturating_sub(ue.stats.pongs);
    // Split RTTs around the failure instant (RTT samples are ordered).
    let values = ue.stats.rtt_ms.values();
    let before_count = (p.fail_at_s / 0.05) as usize;
    let before: Vec<f64> = values
        .iter()
        .take(before_count.min(values.len()))
        .copied()
        .collect();
    let after: Vec<f64> = values
        .iter()
        .skip(before_count.min(values.len()))
        .copied()
        .collect();
    let mean = |v: &[f64]| {
        if v.is_empty() {
            f64::NAN
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    Outcome {
        pongs: ue.stats.pongs,
        outage_s: missing as f64 * 0.05,
        rtt_before_ms: mean(&before),
        rtt_after_ms: mean(&after),
        failed_over: ap0.failover.as_ref().is_some_and(|f| f.failed_over),
        recovery_s,
        probes_lost: ue.stats.probes_sent.saturating_sub(ue.stats.pongs),
    }
}

fn fmt_recovery(r: Option<f64>) -> String {
    match r {
        Some(s) => f2c(s),
        None => "never".into(),
    }
}

pub fn run_with(p: Params) -> Table {
    // The two arms are independent seeded simulations — run them on
    // separate threads; par_map keeps the (no-mesh, mesh) order.
    let mut arms = dlte_sim::par_map(vec![false, true], |mesh| run_arm(mesh, &p));
    let with = arms.pop().expect("two arms");
    let without = arms.pop().expect("two arms");
    let mut t = Table::new(
        "E13",
        "Backhaul failure: standalone APs vs §7 mesh redundancy",
        &["metric", "no mesh", "mesh"],
    );
    t.row(vec![
        "pongs delivered".into(),
        without.pongs.to_string(),
        with.pongs.to_string(),
    ]);
    t.row(vec![
        "service outage (s)".into(),
        f2c(without.outage_s),
        f2c(with.outage_s),
    ]);
    t.row(vec![
        "RTT before failure (ms)".into(),
        f2c(without.rtt_before_ms),
        f2c(with.rtt_before_ms),
    ]);
    t.row(vec![
        "RTT after failure (ms)".into(),
        f2c(without.rtt_after_ms),
        f2c(with.rtt_after_ms),
    ]);
    t.row(vec![
        "AP0 failed over".into(),
        without.failed_over.to_string(),
        with.failed_over.to_string(),
    ]);
    t.row(vec![
        "recovery time (s)".into(),
        fmt_recovery(without.recovery_s),
        fmt_recovery(with.recovery_s),
    ]);
    t.row(vec![
        "probes lost to outage".into(),
        without.probes_lost.to_string(),
        with.probes_lost.to_string(),
    ]);
    t.expect("without a mesh the outage runs to the end of the experiment; with the mesh it is bounded by detection (3 X2 intervals) + reconvergence, and service continues at a slightly higher RTT via the neighbor");
    t
}

pub fn run() -> Table {
    run_with(Params::default())
}

#[cfg(test)]
mod tests {
    #[test]
    fn shapes_hold() {
        let t = super::run_with(super::Params {
            fail_at_s: 4.0,
            reconverge_after_s: 2.0,
            total_s: 16.0,
            seed: 2,
        });
        let no_mesh = t.column_f64(1);
        let mesh = t.column_f64(2);
        // Outage without mesh ≈ the whole post-failure window (12 s here);
        // with mesh it is bounded well under half of it.
        assert!(no_mesh[1] > 10.0, "no-mesh outage {}", no_mesh[1]);
        assert!(mesh[1] < 4.0, "mesh outage {}", mesh[1]);
        assert!(
            mesh[0] > no_mesh[0] + 100.0,
            "mesh delivered far more pongs"
        );
        // Service continues at a higher RTT via the neighbor.
        assert!(
            mesh[3] > mesh[2],
            "post-failure RTT {} should exceed pre-failure {}",
            mesh[3],
            mesh[2]
        );
        assert!(mesh[3].is_finite());
        // The AP actually performed the X2-silence failover.
        assert_eq!(t.rows[4][2], "true");
        assert_eq!(t.rows[4][1], "false", "no failover without a mesh");
        // Recovery time: the mesh arm comes back within detection +
        // reconvergence (+ stepping granularity); the standalone arm never
        // does.
        assert_eq!(t.rows[5][1], "never", "no recovery without a mesh");
        assert!(no_mesh[5].is_nan());
        assert!(
            mesh[5] > 0.0 && mesh[5] < 4.0,
            "mesh recovery {} s",
            mesh[5]
        );
        // Loss during the outage tracks the outage length (20 probes/s).
        assert!(
            no_mesh[6] > mesh[6] + 100.0,
            "no-mesh lost {} vs mesh {}",
            no_mesh[6],
            mesh[6]
        );
        assert!(
            (mesh[6] - mesh[1] * 20.0).abs() <= 20.0,
            "mesh probes lost {} vs outage {} s",
            mesh[6],
            mesh[1]
        );
    }
}
