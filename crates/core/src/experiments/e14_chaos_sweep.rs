//! E14 — chaos sweep: the same backhaul outage thrown at both
//! architectures (§2.2/§4.2).
//!
//! Two UEs on one cell exchange constant-rate traffic with each other
//! while a [`dlte_faults::FaultPlan`] cuts the site's backhaul for a
//! window — and, in the centralized arm, crashes the S-GW with full state
//! loss for the same window (the outage takes the EPC site with it).
//!
//! The architectural claim under test: dLTE's local core keeps switching
//! UE↔UE traffic at the AP through the outage (local breakout — the
//! backhaul is not on the path), while the centralized EPC hairpins every
//! user-plane packet through the S/P-GW, so its users lose *all* traffic
//! and their sessions. Both must recover after the outage: dLTE trivially,
//! the EPC through GTP-U error indications bouncing the stale tunnels into
//! NAS re-attach.

use super::{f2c, Table};
use crate::scenario::{DlteNetworkBuilder, DltePlan};
use dlte_epc::topology::{CentralizedLteBuilder, UePlan};
use dlte_epc::ue::{UeApp, UeNode};
use dlte_faults::{FaultPlan, FaultSpec};
use dlte_net::{Addr, NodeId, ShardedSim};
use dlte_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(default)]
pub struct Params {
    /// When the backhaul dies (and, centralized, the S-GW crashes).
    pub outage_at_s: f64,
    /// How long the outage lasts.
    pub outage_s: f64,
    pub total_s: f64,
    pub seed: u64,
    /// Per-UE constant rate of the UE↔UE traffic.
    pub rate_bps: f64,
    pub packet_bytes: u32,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            outage_at_s: 5.0,
            outage_s: 4.0,
            total_s: 20.0,
            seed: 1,
            rate_bps: 200e3,
            packet_bytes: 500,
        }
    }
}

struct Outcome {
    delivered_during: u64,
    lost_during: u64,
    sessions_lost: u64,
    /// Seconds from the end of the outage to the first delivery (None =
    /// traffic never resumed).
    recovery_s: Option<f64>,
    delivered_after: u64,
}

/// Sum of delivered UE↔UE packets across both flows (flow id = sender
/// IMSI; both topologies number UEs from 1000).
fn delivered(sim: &ShardedSim, ues: &[NodeId]) -> u64 {
    let t = sim.trace_merged();
    (0..ues.len())
        .map(|i| {
            t.flow(CentralizedLteBuilder::imsi_of(i))
                .map(|f| f.delivered_packets)
                .unwrap_or(0)
        })
        .sum()
}

fn sent(sim: &ShardedSim, ues: &[NodeId]) -> u64 {
    ues.iter()
        .map(|&u| sim.handler_as::<UeNode>(u).unwrap().stats.cbr_packets_sent)
        .sum()
}

/// Drive one arm through the outage with segmented `run_until` calls
/// (which do not perturb event order) and measure delivery around it.
fn measure(sim: &mut ShardedSim, ues: &[NodeId], p: &Params) -> Outcome {
    let outage_start = SimTime::from_secs_f64(p.outage_at_s);
    let outage_end = outage_start + SimDuration::from_secs_f64(p.outage_s);
    let total = SimTime::from_secs_f64(p.total_s);
    // Let traffic that was in flight when the fault hit drain before the
    // "during the outage" window opens, so it measures the steady state.
    let drain = outage_start + SimDuration::from_millis(500);
    sim.run_until(drain.min(outage_end), 100_000_000);
    let (d0, s0) = (delivered(sim, ues), sent(sim, ues));
    sim.run_until(outage_end, 100_000_000);
    let (d1, s1) = (delivered(sim, ues), sent(sim, ues));
    // Step in 100 ms increments watching for the first post-outage
    // delivery.
    let mut recovery_s = None;
    let mut mark = outage_end;
    while mark < total {
        mark = (mark + SimDuration::from_millis(100)).min(total);
        sim.run_until(mark, 100_000_000);
        if delivered(sim, ues) > d1 {
            recovery_s = Some(mark.saturating_since(outage_end).as_secs_f64());
            break;
        }
    }
    sim.run_until(total, 100_000_000);
    let sessions_lost: u64 = ues
        .iter()
        .map(|&u| {
            sim.handler_as::<UeNode>(u)
                .unwrap()
                .stats
                .attaches_completed
                .saturating_sub(1)
        })
        .sum();
    Outcome {
        delivered_during: d1 - d0,
        lost_during: (s1 - s0).saturating_sub(d1 - d0),
        sessions_lost,
        recovery_s,
        delivered_after: delivered(sim, ues) - d1,
    }
}

fn run_centralized(p: &Params) -> Outcome {
    let mut builder = CentralizedLteBuilder::new(1, 2);
    builder.path_mgmt = Some((SimDuration::from_millis(500), 2));
    let (rate_bps, packet_bytes) = (p.rate_bps, p.packet_bytes);
    let net = builder
        .with_ue_plan(move |i| UePlan {
            app: UeApp::UplinkCbr {
                // Each UE talks to the other's (deterministic) pool
                // address; the traffic hairpins at the P-GW.
                dst: Addr::new(100, 64, 0, if i == 0 { 2 } else { 1 }),
                rate_bps,
                packet_bytes,
            },
            ..Default::default()
        })
        .build();
    // The centralized twin always runs on one engine; wrapping it keeps
    // the measurement code shared with the (possibly sharded) dLTE arm.
    let mut sim = ShardedSim::single(net.sim);
    FaultPlan::new(p.seed)
        .with(FaultSpec::LinkFlap {
            link: net.l_agg_epc,
            at_s: p.outage_at_s,
            down_s: p.outage_s,
            times: 1,
            gap_s: 0.0,
        })
        .with(FaultSpec::NodeCrash {
            node: net.sgw,
            at_s: p.outage_at_s,
            restart_after_s: Some(p.outage_s),
        })
        .inject_sharded(&mut sim);
    measure(&mut sim, &net.ues, p)
}

fn run_dlte(p: &Params) -> Outcome {
    let mut b = DlteNetworkBuilder::new(1, 2);
    b.seed = p.seed;
    let (rate_bps, packet_bytes) = (p.rate_bps, p.packet_bytes);
    let mut net = b
        .with_ue_plan(move |i| DltePlan {
            app: UeApp::UplinkCbr {
                // The AP's own pool: UE↔UE traffic breaks out locally and
                // never touches the backhaul.
                dst: Addr::new(100, 66, 0, if i == 0 { 2 } else { 1 }),
                rate_bps,
                packet_bytes,
            },
            ..Default::default()
        })
        .build();
    FaultPlan::new(p.seed)
        .with(FaultSpec::LinkFlap {
            link: net.ap_backhaul[0],
            at_s: p.outage_at_s,
            down_s: p.outage_s,
            times: 1,
            gap_s: 0.0,
        })
        .inject_sharded(&mut net.sim);
    let ues = net.ues.clone();
    measure(&mut net.sim, &ues, p)
}

fn fmt_recovery(r: Option<f64>) -> String {
    match r {
        Some(s) => f2c(s),
        None => "never".into(),
    }
}

pub fn run_with(p: Params) -> Table {
    // Independent seeded simulations; par_map keeps the arm order.
    let mut arms = dlte_sim::par_map(vec![false, true], |dlte| {
        if dlte {
            run_dlte(&p)
        } else {
            run_centralized(&p)
        }
    });
    let dlte = arms.pop().expect("two arms");
    let cent = arms.pop().expect("two arms");
    let mut t = Table::new(
        "E14",
        "Chaos sweep: backhaul outage + core crash, centralized EPC vs dLTE local core",
        &["metric", "centralized", "dLTE"],
    );
    t.row(vec![
        "UE↔UE packets delivered during outage".into(),
        cent.delivered_during.to_string(),
        dlte.delivered_during.to_string(),
    ]);
    t.row(vec![
        "UE↔UE packets lost during outage".into(),
        cent.lost_during.to_string(),
        dlte.lost_during.to_string(),
    ]);
    t.row(vec![
        "sessions lost (re-attaches)".into(),
        cent.sessions_lost.to_string(),
        dlte.sessions_lost.to_string(),
    ]);
    t.row(vec![
        "recovery time after outage (s)".into(),
        fmt_recovery(cent.recovery_s),
        fmt_recovery(dlte.recovery_s),
    ]);
    t.row(vec![
        "delivered after recovery".into(),
        cent.delivered_after.to_string(),
        dlte.delivered_after.to_string(),
    ]);
    t.expect("the centralized arm delivers nothing during the outage and loses every session (S-GW state loss); the dLTE arm keeps local traffic flowing through the outage with zero sessions lost; both resume full delivery afterwards — the EPC via GTP-U error indications driving re-attach");
    t
}

pub fn run() -> Table {
    run_with(Params::default())
}

#[cfg(test)]
mod tests {
    #[test]
    fn shapes_hold() {
        let t = super::run_with(super::Params {
            outage_at_s: 4.0,
            outage_s: 3.0,
            total_s: 14.0,
            seed: 2,
            ..Default::default()
        });
        let cent = t.column_f64(1);
        let dlte = t.column_f64(2);
        // Local breakout keeps dLTE's UE↔UE traffic alive through the
        // outage; the centralized hairpin delivers nothing.
        assert_eq!(cent[0], 0.0, "centralized delivered {}", cent[0]);
        assert!(dlte[0] > 100.0, "dLTE delivered {}", dlte[0]);
        assert!(cent[1] > 100.0, "centralized lost {}", cent[1]);
        assert!(dlte[1] < 10.0, "dLTE lost {}", dlte[1]);
        // The S-GW crash costs both centralized sessions; dLTE none.
        assert_eq!(cent[2], 2.0, "centralized sessions lost {}", cent[2]);
        assert_eq!(dlte[2], 0.0, "dLTE sessions lost {}", dlte[2]);
        // Both recover: dLTE immediately, the EPC after the error
        // indication → re-attach chain.
        assert!(
            cent[3].is_finite() && cent[3] > 0.0,
            "centralized recovery {}",
            cent[3]
        );
        assert!(
            dlte[3].is_finite() && dlte[3] <= 0.5,
            "dLTE recovery {}",
            dlte[3]
        );
        assert!(cent[4] > 50.0, "centralized post-recovery {}", cent[4]);
        assert!(dlte[4] > 100.0, "dLTE post-recovery {}", dlte[4]);
    }
}
