//! E15 — fabric scale: the packet fabric under a topology size sweep.
//!
//! The ROADMAP north star is a core that "serves heavy traffic from
//! millions of users" — which the simulator can only claim if its own
//! fabric (event scheduling, per-hop route lookup, drop accounting) holds
//! up as topologies grow. This experiment builds matched centralized-EPC
//! and dLTE networks at several sizes, drives proportional UE ping flows
//! through them, and reports the *deterministic* work counters (events
//! dispatched, packets the links accepted, echo round trips completed).
//!
//! Wall-clock throughput (events/sec) is deliberately **not** a table
//! cell: tables are golden-checked byte-for-byte across `--jobs` values
//! and machines. Timing lives in the per-run `meta` the runner attaches,
//! and in `dlte-run bench`, which calls [`bench_runs`] directly and
//! writes `BENCH_fabric.json` with before/after comparisons.

use super::Table;
use crate::scenario::{DlteNetworkBuilder, DltePlan};
use dlte_epc::topology::{CentralizedLteBuilder, UePlan};
use dlte_epc::ue::{UeApp, UeNode};
use dlte_net::{NodeId, ShardedSim};
use dlte_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(default)]
pub struct Params {
    /// Approximate total node counts to sweep (each size builds one
    /// centralized and one dLTE arm; ~10% of nodes are cells, the rest
    /// UEs).
    pub sizes: Vec<usize>,
    pub seed: u64,
    /// Simulated seconds each arm runs.
    pub total_s: f64,
    /// Per-UE echo-probe period toward the OTT server.
    pub ping_interval_ms: u64,
    pub probe_bytes: u32,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            sizes: vec![50],
            seed: 1,
            total_s: 10.0,
            ping_interval_ms: 200,
            probe_bytes: 200,
        }
    }
}

/// One measured arm of the sweep. The deterministic fields (`nodes`,
/// `ues`, `events_dispatched`, `packets_forwarded`, `pongs`) are
/// identical for a given (arch, size, seed, total_s) on any machine;
/// `wall_ms`/`events_per_sec` are this run's timing and only appear in
/// `BENCH_fabric.json`, never in golden-checked table cells.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct BenchRun {
    pub arch: String,
    pub size: usize,
    /// Actual node count of the built topology (UEs + cells + core).
    pub nodes: usize,
    pub ues: usize,
    pub events_dispatched: u64,
    /// Transmissions the links accepted — per-hop forwarding work.
    pub packets_forwarded: u64,
    /// Echo round trips completed across all UEs.
    pub pongs: u64,
    pub wall_ms: f64,
    pub events_per_sec: f64,
    /// Heap allocations observed during the run. Zero unless the binary
    /// was built with the counting allocator (`dlte-bench` feature
    /// `count-allocs`); like timing, these never reach golden tables.
    pub allocs: u64,
    /// Bytes requested from the heap during the run (same caveat).
    pub alloc_bytes: u64,
    /// Packet bytes duplicated by `Packet::clone` during the run.
    pub bytes_copied: u64,
}

/// size → (cells, ues_per_cell): ~10% of nodes are cells, the rest UEs,
/// capped at 255 cells (the AP pool allocator keys pools by a u8 octet).
fn shape(size: usize) -> (usize, usize) {
    let cells = (size / 10).clamp(1, 255);
    let ues = (size.saturating_sub(cells) / cells).max(1);
    (cells, ues)
}

fn finish(arch: &str, size: usize, p: &Params, mut sim: ShardedSim, ues: Vec<NodeId>) -> BenchRun {
    let ((), report) = dlte_sim::report::scope(|| {
        sim.run_until(SimTime::from_secs_f64(p.total_s), u64::MAX);
    });
    let pongs = ues
        .iter()
        .map(|&u| sim.handler_as::<UeNode>(u).unwrap().stats.pongs)
        .sum();
    let nodes = sim.shards()[0].world().core.nodes.len();
    BenchRun {
        arch: arch.to_string(),
        size,
        nodes,
        ues: ues.len(),
        events_dispatched: report.events_dispatched,
        packets_forwarded: sim.audit_merged().fabric.accepted,
        pongs,
        wall_ms: report.wall_ms,
        events_per_sec: report.events_per_sec,
        allocs: report.allocs,
        alloc_bytes: report.alloc_bytes,
        bytes_copied: report.bytes_copied,
    }
}

fn run_centralized(size: usize, p: &Params) -> BenchRun {
    let (cells, ues_per_cell) = shape(size);
    let interval = SimDuration::from_millis(p.ping_interval_ms);
    let probe_bytes = p.probe_bytes;
    let mut b = CentralizedLteBuilder::new(cells, ues_per_cell);
    b.seed = p.seed;
    let net = b
        .with_ue_plan(move |_| UePlan {
            app: UeApp::Pinger {
                dst: CentralizedLteBuilder::ott_addr(),
                interval,
                probe_bytes,
            },
            ..Default::default()
        })
        .build();
    finish("centralized", size, p, ShardedSim::single(net.sim), net.ues)
}

fn run_dlte(size: usize, p: &Params) -> BenchRun {
    let (cells, ues_per_cell) = shape(size);
    let interval = SimDuration::from_millis(p.ping_interval_ms);
    let probe_bytes = p.probe_bytes;
    let mut b = DlteNetworkBuilder::new(cells, ues_per_cell);
    b.seed = p.seed;
    let net = b
        .with_ue_plan(move |_| DltePlan {
            app: UeApp::Pinger {
                dst: DlteNetworkBuilder::ott_addr(),
                interval,
                probe_bytes,
            },
            ..Default::default()
        })
        .build();
    finish("dlte", size, p, net.sim, net.ues)
}

/// Run the full sweep and return every measured arm. Arms run
/// sequentially (not `par_map`) so each one's wall-clock measurement is
/// unshared — this is the entry point `dlte-run bench` uses.
pub fn bench_runs(p: &Params) -> Vec<BenchRun> {
    let mut runs = Vec::new();
    for &size in &p.sizes {
        runs.push(run_centralized(size, p));
        runs.push(run_dlte(size, p));
    }
    runs
}

pub fn run_with(p: Params) -> Table {
    let runs = bench_runs(&p);
    let mut t = Table::new(
        "E15",
        "Fabric scale sweep: dispatch and forwarding work vs topology size, centralized EPC vs dLTE",
        &["size", "arch", "nodes", "UEs", "events", "pkts forwarded", "pongs"],
    );
    for r in &runs {
        t.row(vec![
            r.size.to_string(),
            r.arch.clone(),
            r.nodes.to_string(),
            r.ues.to_string(),
            r.events_dispatched.to_string(),
            r.packets_forwarded.to_string(),
            r.pongs.to_string(),
        ]);
    }
    t.expect(
        "work counters grow with topology size in both arms and every arm completes echo \
         round trips; the cells are deterministic (timing lives in meta and BENCH_fabric.json)",
    );
    t
}

pub fn run() -> Table {
    run_with(Params::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_scales_and_is_deterministic() {
        let p = Params {
            sizes: vec![20, 40],
            total_s: 3.0,
            ..Default::default()
        };
        let runs = bench_runs(&p);
        assert_eq!(runs.len(), 4, "two arms per size");
        for r in &runs {
            assert!(r.events_dispatched > 0, "{} did no work", r.arch);
            assert!(r.pongs > 0, "{} size {} completed no pings", r.arch, r.size);
            assert!(r.nodes > r.ues, "cells and core nodes exist beyond UEs");
        }
        // Bigger topologies do more fabric work.
        assert!(runs[2].events_dispatched > runs[0].events_dispatched);
        assert!(runs[3].events_dispatched > runs[1].events_dispatched);
        // The deterministic counters replay exactly.
        let again = bench_runs(&p);
        for (a, b) in runs.iter().zip(&again) {
            assert_eq!(a.events_dispatched, b.events_dispatched);
            assert_eq!(a.packets_forwarded, b.packets_forwarded);
            assert_eq!(a.pongs, b.pongs);
        }
    }

    #[test]
    fn shape_allocates_ten_percent_cells() {
        assert_eq!(shape(50), (5, 9));
        assert_eq!(shape(200), (20, 9));
        assert_eq!(shape(1000), (100, 9));
        assert_eq!(shape(5), (1, 4));
        assert_eq!(shape(1), (1, 1));
    }
}
