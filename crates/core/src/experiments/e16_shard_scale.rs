//! E16 — shard scale: one simulation, N engine shards.
//!
//! The ROADMAP north star is a core that "serves heavy traffic from
//! millions of users"; PR 5 made the fabric fast on one core, and this
//! experiment proves the sharded engine buys the next axis: a *single*
//! run split across cores. It builds a wide dLTE deployment (many APs,
//! every UE's traffic breaking out locally at its home AP), partitions it
//! by AP cluster ([`DlteNetworkBuilder::build_sharded`]), and sweeps the
//! shard count over the same topology sizes.
//!
//! Two claims, both enforced here rather than eyeballed:
//!
//! * **Invariance** — events dispatched, packets forwarded and packets
//!   delivered are bit-identical at every shard count. The sweep panics
//!   if any counter diverges, so a golden run at `--shards 4` *is* the
//!   single-engine result.
//! * **Throughput** — with AP-local traffic the shards exchange no
//!   packets, so wall-clock throughput (events/sec) scales with cores.
//!   Timing never enters the golden-checked table; it lives in
//!   `BENCH_shard.json`, written by `dlte-run bench e16`.

use super::Table;
use crate::scenario::{DlteNetworkBuilder, DltePlan};
use dlte_epc::ue::UeApp;
use dlte_net::Addr;
use dlte_sim::SimTime;
use dlte_x2::CoordinationMode;
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(default)]
pub struct Params {
    /// Total UE counts to sweep (each size runs once per shard count).
    pub sizes: Vec<usize>,
    /// UEs homed on each AP; the AP count is `size / ues_per_ap`.
    pub ues_per_ap: usize,
    /// Shard counts to run each size at.
    pub shard_counts: Vec<usize>,
    pub seed: u64,
    /// Simulated seconds each run covers.
    pub total_s: f64,
    /// Per-UE constant uplink rate toward its paired neighbor.
    pub rate_bps: f64,
    pub packet_bytes: u32,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            sizes: vec![600],
            ues_per_ap: 10,
            shard_counts: vec![1, 2, 4],
            seed: 1,
            total_s: 2.0,
            rate_bps: 100e3,
            packet_bytes: 400,
        }
    }
}

/// One measured run. The counter fields are identical for a given
/// (size, seed, total_s) at *any* shard count — enforced by
/// [`bench_runs`] — while `wall_ms`/`events_per_sec` are this machine's
/// timing and only appear in `BENCH_shard.json`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct ShardBenchRun {
    pub size: usize,
    pub shards: usize,
    pub nodes: usize,
    pub ues: usize,
    pub events_dispatched: u64,
    pub packets_forwarded: u64,
    /// UE↔UE packets delivered across all flows.
    pub delivered: u64,
    pub wall_ms: f64,
    pub events_per_sec: f64,
}

fn run_one(size: usize, n_shards: usize, p: &Params) -> ShardBenchRun {
    let ues_per_ap = p.ues_per_ap.clamp(1, 250);
    let n_aps = (size / ues_per_ap).max(1);
    let (rate_bps, packet_bytes) = (p.rate_bps, p.packet_bytes);
    let mut b = DlteNetworkBuilder::new(n_aps, ues_per_ap);
    b.seed = p.seed;
    // Independent APs: no X2 reporting, so the only inter-shard links are
    // the (idle) backhauls — the workload the sharding is built for.
    b.x2_mode = CoordinationMode::Independent;
    let mut net = b
        .with_ue_plan(move |i| {
            let home_ap = i / ues_per_ap;
            let within = i % ues_per_ap;
            // Pair neighbors (0↔1, 2↔3, …); an odd tail UE talks to its
            // own future address — still a valid AP-local flow. Pool
            // addresses are handed out in attach order, so the peer slot
            // maps to *some* UE homed on the same AP either way: all user
            // traffic breaks out locally and never crosses shards.
            let peer = if within ^ 1 < ues_per_ap {
                within ^ 1
            } else {
                within
            };
            let pool = DlteNetworkBuilder::ap_pool(home_ap).addr;
            DltePlan {
                app: UeApp::UplinkCbr {
                    dst: Addr(pool.0 | (peer as u32 + 1)),
                    rate_bps,
                    packet_bytes,
                },
                ..Default::default()
            }
        })
        .build_sharded(n_shards);
    let ((), report) = dlte_sim::report::scope(|| {
        net.sim
            .run_until(SimTime::from_secs_f64(p.total_s), u64::MAX);
    });
    let trace = net.sim.trace_merged();
    let delivered = trace
        .flow_ids()
        .iter()
        .map(|&f| trace.flow(f).map(|t| t.delivered_packets).unwrap_or(0))
        .sum();
    let nodes = net.sim.shards()[0].world().core.nodes.len();
    ShardBenchRun {
        size,
        shards: net.sim.num_shards(),
        nodes,
        ues: net.ues.len(),
        events_dispatched: report.events_dispatched,
        packets_forwarded: net.sim.audit_merged().fabric.accepted,
        delivered,
        wall_ms: report.wall_ms,
        events_per_sec: report.events_per_sec,
    }
}

/// Run the full (size × shard count) sweep sequentially (each run owns
/// the machine, so its wall-clock is honest) and enforce the invariance
/// claim: every counter must be bit-identical across shard counts.
/// This is the entry point `dlte-run bench e16` uses.
pub fn bench_runs(p: &Params) -> Vec<ShardBenchRun> {
    let mut runs = Vec::new();
    for &size in &p.sizes {
        let mut first: Option<&ShardBenchRun> = None;
        let start = runs.len();
        for &n in &p.shard_counts {
            runs.push(run_one(size, n, p));
        }
        for r in &runs[start..] {
            match first {
                None => first = Some(r),
                Some(base) => {
                    assert_eq!(
                        (r.events_dispatched, r.packets_forwarded, r.delivered),
                        (
                            base.events_dispatched,
                            base.packets_forwarded,
                            base.delivered
                        ),
                        "shard-count invariance violated at size {} ({} vs {} shards)",
                        size,
                        base.shards,
                        r.shards,
                    );
                }
            }
        }
    }
    runs
}

pub fn run_with(p: Params) -> Table {
    let runs = bench_runs(&p);
    let mut t = Table::new(
        "E16",
        "Shard scale sweep: one dLTE deployment on N engine shards, counters shard-invariant",
        &[
            "size",
            "shards",
            "nodes",
            "UEs",
            "events",
            "pkts forwarded",
            "delivered",
        ],
    );
    for r in &runs {
        t.row(vec![
            r.size.to_string(),
            r.shards.to_string(),
            r.nodes.to_string(),
            r.ues.to_string(),
            r.events_dispatched.to_string(),
            r.packets_forwarded.to_string(),
            r.delivered.to_string(),
        ]);
    }
    t.expect(
        "for each size, every counter column is identical across the shard rows (the sweep \
         asserts it) and traffic flowed; wall-clock scaling lives in BENCH_shard.json, \
         never in golden cells",
    );
    t
}

pub fn run() -> Table {
    run_with(Params::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_bit_identical_across_shard_counts() {
        let p = Params {
            sizes: vec![120],
            ues_per_ap: 4,
            shard_counts: vec![1, 2, 4],
            total_s: 2.0,
            ..Default::default()
        };
        // bench_runs itself asserts invariance; here we also check the
        // runs actually did meaningful, distinct-shard work.
        let runs = bench_runs(&p);
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0].shards, 1);
        assert_eq!(runs[1].shards, 2);
        assert_eq!(runs[2].shards, 4);
        for r in &runs {
            assert_eq!(r.ues, 120);
            assert!(r.events_dispatched > 0);
            assert!(r.delivered > 0, "no UE↔UE traffic delivered");
        }
    }

    #[test]
    fn table_is_deterministic_and_shard_invariant_per_size() {
        let p = Params {
            sizes: vec![40],
            ues_per_ap: 4,
            shard_counts: vec![1, 2],
            total_s: 1.0,
            ..Default::default()
        };
        let t = run_with(p.clone());
        assert_eq!(t.rows.len(), 2);
        // Counter cells (events, pkts, delivered) agree across shard rows.
        for col in 4..7 {
            assert_eq!(t.rows[0][col], t.rows[1][col], "column {col} diverged");
        }
        let again = run_with(p);
        assert_eq!(t.rows, again.rows);
    }
}
