//! E17 — registry chaos: one identical fault schedule thrown at all three
//! §4.3 registry governance flavours.
//!
//! The same seeded AP population and the same compiled chaos schedule
//! (zone crashes with and without state loss, partitions, replica
//! desyncs) drive a centralized SAS, a federated zone grid, and a
//! replicated-log writer. The claim under test: **safety is not
//! negotiable and none of the flavours gives it up** — zero double
//! grants and zero oracle violations everywhere — so the flavours
//! differentiate purely on *availability* (what fraction of APs hold a
//! live license through the churn) and recovery traffic.

use super::Table;
use crate::registry_chaos::{run_chaos, ChaosOutcome, Flavour, RegistryWorkload};
use dlte_faults::registry::RegistryFaultPlan;
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(default)]
pub struct Params {
    pub seed: u64,
    /// Zones in the federated arm (the others map the same schedule onto
    /// what they have).
    pub n_zones: usize,
    /// Read replicas in the replicated arm.
    pub n_replicas: usize,
    pub n_aps: usize,
    /// Side of the square service area, km.
    pub area_km: f64,
    pub contour_km: f64,
    pub lease_s: f64,
    pub max_lease_s: f64,
    pub total_s: f64,
    /// Faults in the shared chaos schedule.
    pub n_faults: usize,
    /// Fault window start/end, seconds.
    pub fault_start_s: f64,
    pub fault_end_s: f64,
    pub max_down_s: f64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            seed: 1,
            n_zones: 3,
            n_replicas: 2,
            n_aps: 10,
            area_km: 180.0,
            contour_km: 10.0,
            lease_s: 8.0,
            max_lease_s: 12.0,
            total_s: 60.0,
            n_faults: 4,
            fault_start_s: 8.0,
            fault_end_s: 40.0,
            max_down_s: 8.0,
        }
    }
}

fn workload(p: &Params, flavour: Flavour, plan: &RegistryFaultPlan) -> RegistryWorkload {
    RegistryWorkload {
        seed: p.seed,
        flavour,
        n_zones: p.n_zones,
        n_replicas: p.n_replicas,
        n_aps: p.n_aps,
        area_km: p.area_km,
        contour_km: p.contour_km,
        lease_s: p.lease_s,
        max_lease_s: p.max_lease_s,
        total_s: p.total_s,
        plan: plan.clone(),
    }
}

fn double_grants(out: &ChaosOutcome) -> usize {
    out.violations
        .iter()
        .filter(|v| v.oracle == "double_grant")
        .count()
}

pub fn run_with(p: Params) -> Table {
    // ONE schedule, compiled once, handed to every arm: the comparison is
    // over governance, not over luck of the fault draw.
    let plan = RegistryFaultPlan::chaos_mix(
        p.seed,
        p.n_zones,
        p.n_replicas,
        p.n_faults,
        p.fault_start_s,
        p.fault_end_s,
        p.max_down_s,
    );
    let mut arms = dlte_sim::par_map(
        vec![
            Flavour::Centralized,
            Flavour::Federated,
            Flavour::Replicated,
        ],
        |flavour| run_chaos(&workload(&p, flavour, &plan)),
    );
    let rep = arms.pop().expect("three arms");
    let fed = arms.pop().expect("three arms");
    let cent = arms.pop().expect("three arms");

    let mut t = Table::new(
        "E17",
        "Registry chaos: identical fault schedule vs centralized / federated / replicated governance",
        &["metric", "centralized", "federated", "replicated"],
    );
    let int = |f: fn(&ChaosOutcome) -> u64| {
        [
            f(&cent).to_string(),
            f(&fed).to_string(),
            f(&rep).to_string(),
        ]
    };
    let mut row = |name: &str, cells: [String; 3]| {
        let mut v = vec![name.to_string()];
        v.extend(cells);
        t.row(v);
    };
    row("grant requests", int(|o| o.requests));
    row("granted", int(|o| o.granted));
    row("denied (incl. zone-unavailable)", int(|o| o.denied));
    row("renewals ok", int(|o| o.renews_ok));
    row("renewals failed", int(|o| o.renews_failed));
    row(
        "grant availability (% of AP-ticks licensed)",
        [
            format!("{:.1}", cent.availability_pct),
            format!("{:.1}", fed.availability_pct),
            format!("{:.1}", rep.availability_pct),
        ],
    );
    row(
        "double grants (oracle)",
        [
            double_grants(&cent).to_string(),
            double_grants(&fed).to_string(),
            double_grants(&rep).to_string(),
        ],
    );
    row(
        "oracle violations (all)",
        [
            cent.violations.len().to_string(),
            fed.violations.len().to_string(),
            rep.violations.len().to_string(),
        ],
    );
    row("zone crashes", int(|o| o.zone_crashes));
    row(
        "resyncs (restarts + anti-entropy + replica adoptions)",
        int(|o| o.resyncs),
    );
    row("log compactions", int(|o| o.compactions));
    t.expect(
        "every flavour survives the identical chaos schedule with zero double grants and zero \
         oracle violations — the governance flavours trade only availability and recovery \
         traffic, never exclusivity; replica adoptions and compactions appear only in the \
         replicated arm",
    );
    t
}

pub fn run() -> Table {
    run_with(Params::default())
}

#[cfg(test)]
mod tests {
    #[test]
    fn shapes_hold() {
        let t = super::run_with(super::Params {
            total_s: 40.0,
            fault_end_s: 25.0,
            seed: 2,
            ..Default::default()
        });
        for (i, col) in [(1, "centralized"), (2, "federated"), (3, "replicated")] {
            let c = t.column_f64(i);
            assert!(c[0] > 0.0, "{col}: no requests");
            assert!(c[1] > 0.0, "{col}: nothing granted");
            assert!(c[3] > 0.0, "{col}: no renewals");
            assert!(c[5] > 30.0, "{col}: availability {:.1}%", c[5]);
            assert_eq!(c[6], 0.0, "{col}: double grants");
            assert_eq!(c[7], 0.0, "{col}: oracle violations");
        }
        // The schedule is identical, so the crash count is too.
        let crashes: Vec<f64> = (1..=3).map(|i| t.column_f64(i)[8]).collect();
        assert_eq!(crashes[0], crashes[1]);
        assert_eq!(crashes[1], crashes[2]);
        // Only the replicated arm compacts its log or adopts chains.
        assert_eq!(t.column_f64(1)[10], 0.0);
        assert_eq!(t.column_f64(2)[10], 0.0);
    }
}
