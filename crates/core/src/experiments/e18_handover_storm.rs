//! E18 — handover storms under chaos: a moving UE *population* (not E8's
//! single scripted hop) rides a seeded waypoint plan while a fixed backhaul
//! chaos schedule plays out, and three architectures absorb the storm:
//!
//! * **centralized LTE** — S1 path switch (IP preserved, wide-area
//!   signaling per move);
//! * **dLTE** — detach → re-attach at the new AP, subscriber keys fetched
//!   from the wide-area directory on first arrival;
//! * **dLTE + X2 fetch** — re-attach, but the arriving AP first asks its
//!   fresh X2 peers for the subscriber context, skipping the directory
//!   round trip on the hot path.
//!
//! Per dwell setting the table reports the population's p99 service gap and
//! the availability (1 − lost time / offered dwell time), plus how many of
//! the X2 arm's arrivals were served by a neighbor. Every arm is seeded and
//! shard-invariant: the table is byte-identical across `--jobs`/`--shards`,
//! which the `mobility-chaos` CI job enforces against `goldens/e18.json`.

use super::{f2c, Table};
use crate::ap::DlteApNode;
use crate::mobility::{cell_index_for, MovementModel};
use crate::scenario::{DlteNetworkBuilder, DltePlan, KeyDistribution};
use dlte_epc::topology::{CentralizedLteBuilder, UePlan};
use dlte_epc::ue::{MobilityMode, UeApp, UeNode};
use dlte_faults::{FaultPlan, FaultSpec, MovePlan};
use dlte_sim::stats::Samples;
use dlte_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(default)]
pub struct Params {
    /// Mean dwell per AP before a move, seconds (sweep axis). The waypoint
    /// model draws each dwell uniformly from ±30% of this.
    pub dwell_s: Vec<f64>,
    pub n_aps: usize,
    pub ues_per_ap: usize,
    /// Simulated horizon per arm, seconds. Moves stop 3 s before it so the
    /// last storm has room to drain.
    pub total_s: f64,
    pub seed: u64,
    /// Play the fixed backhaul chaos schedule under the storm (a flap and a
    /// loss burst on two AP backhauls). Off gives the storm-only baseline.
    pub chaos: bool,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            dwell_s: vec![4.0, 2.0, 1.0],
            n_aps: 6,
            ues_per_ap: 2,
            total_s: 16.0,
            seed: 1,
            chaos: true,
        }
    }
}

fn ping_app(dst: dlte_net::Addr) -> UeApp {
    UeApp::Pinger {
        dst,
        interval: SimDuration::from_millis(25),
        probe_bytes: 100,
    }
}

/// The population's movement plan for one dwell setting: seeded waypoint
/// churn across every AP, confined to `[2, total_s - 3)`.
fn storm_plan(p: &Params, dwell_s: f64) -> MovePlan {
    MovementModel::Waypoint {
        dwell_min_s: 0.7 * dwell_s,
        dwell_max_s: 1.3 * dwell_s,
    }
    .plan(
        p.seed,
        p.n_aps * p.ues_per_ap,
        p.n_aps,
        2.0,
        p.total_s - 3.0,
    )
}

/// The fixed chaos schedule, realized onto one arm's backhaul links: the
/// same shape hits every architecture at the same simulated times.
fn chaos_plan(seed: u64, backhauls: &[dlte_net::LinkId]) -> FaultPlan {
    FaultPlan::new(seed)
        .with(FaultSpec::LinkFlap {
            link: backhauls[0],
            at_s: 6.0,
            down_s: 1.2,
            times: 1,
            gap_s: 0.0,
        })
        .with(FaultSpec::LossBurst {
            link: backhauls[1 % backhauls.len()],
            at_s: 8.0,
            for_s: 1.5,
            loss: 0.3,
        })
}

struct Arm {
    p99_gap_ms: f64,
    availability: f64,
    moves: u64,
    /// X2-fetch arrivals answered by a neighbor (0 for the other arms).
    x2_hits: u64,
}

/// Fold the population's per-UE gap samples and move counts into the arm
/// summary. A move whose gap never closed (no traffic resumed before the
/// snapshot) counts as a full dwell lost.
fn arm_from(gaps: Samples, moves: u64, dwell_s: f64, x2_hits: u64) -> Arm {
    let dwell_ms = dwell_s * 1_000.0;
    let closed = gaps.len() as u64;
    let unclosed = moves.saturating_sub(closed);
    let lost_ms = gaps.values().iter().sum::<f64>() + unclosed as f64 * dwell_ms;
    Arm {
        p99_gap_ms: if gaps.is_empty() {
            f64::NAN
        } else {
            gaps.p99()
        },
        availability: 1.0 - (lost_ms / (moves.max(1) as f64 * dwell_ms)).min(1.0),
        moves,
        x2_hits,
    }
}

fn run_centralized(p: &Params, dwell_s: f64) -> Arm {
    let plan = storm_plan(p, dwell_s);
    let mut b = CentralizedLteBuilder::new(p.n_aps, p.ues_per_ap);
    b.wire_all_cells = true;
    b.seed = p.seed;
    let n_aps = p.n_aps;
    let ues_per_ap = p.ues_per_ap;
    let mut net = b
        .with_ue_plan(move |i| {
            let home = i / ues_per_ap;
            UePlan {
                app: ping_app(CentralizedLteBuilder::ott_addr()),
                mode: MobilityMode::PathSwitch,
                schedule: plan
                    .schedule_for(i)
                    .into_iter()
                    .filter(|&(_, ap)| ap < n_aps)
                    .map(|(t, ap)| (t, cell_index_for(home, ap, n_aps)))
                    .collect(),
            }
        })
        .build();
    if p.chaos {
        chaos_plan(p.seed, &net.enb_backhaul).inject(&mut net.sim);
    }
    net.sim
        .run_until(SimTime::from_secs_f64(p.total_s), 50_000_000);
    let mut gaps = Samples::new();
    let mut moves = 0;
    let w = net.sim.world();
    for &u in &net.ues {
        let ue = w.handler_as::<UeNode>(u).unwrap();
        gaps.extend(&ue.stats.handover_gap_ms);
        moves += ue.stats.cell_moves;
    }
    arm_from(gaps, moves, dwell_s, 0)
}

fn run_dlte(p: &Params, dwell_s: f64, x2_fetch: bool) -> Arm {
    let plan = storm_plan(p, dwell_s);
    let mut b = DlteNetworkBuilder::new(p.n_aps, p.ues_per_ap);
    b.seed = p.seed;
    b.keys = KeyDistribution::RemoteDirectory;
    b.x2_context_fetch = x2_fetch;
    let mut net = b
        .with_ue_plan(|_| DltePlan {
            app: ping_app(DlteNetworkBuilder::ott_addr()),
            mode: MobilityMode::ReAttach,
            schedule: Vec::new(),
        })
        .with_move_plan(plan)
        .build();
    if p.chaos {
        chaos_plan(p.seed, &net.ap_backhaul).inject_sharded(&mut net.sim);
    }
    net.sim
        .run_until(SimTime::from_secs_f64(p.total_s), 50_000_000);
    let mut gaps = Samples::new();
    let mut moves = 0;
    for &u in &net.ues {
        let ue = net.sim.handler_as::<UeNode>(u).unwrap();
        gaps.extend(&ue.stats.handover_gap_ms);
        moves += ue.stats.cell_moves;
    }
    let x2_hits = net
        .aps
        .iter()
        .map(|&a| {
            net.sim
                .handler_as::<DlteApNode>(a)
                .unwrap()
                .fetch_stats
                .hits
        })
        .sum();
    arm_from(gaps, moves, dwell_s, x2_hits)
}

pub fn run_with(p: Params) -> Table {
    let mut t = Table::new(
        "E18",
        "Handover storm under chaos: population availability and p99 gap vs dwell",
        &[
            "dwell (s)",
            "LTE p99 gap (ms)",
            "dLTE p99 gap (ms)",
            "dLTE+X2 p99 gap (ms)",
            "LTE avail",
            "dLTE avail",
            "dLTE+X2 avail",
            "moves",
            "x2 hits",
        ],
    );
    for &dwell in &p.dwell_s {
        let c = run_centralized(&p, dwell);
        let d = run_dlte(&p, dwell, false);
        let x = run_dlte(&p, dwell, true);
        t.row(vec![
            f2c(dwell),
            f2c(c.p99_gap_ms),
            f2c(d.p99_gap_ms),
            f2c(x.p99_gap_ms),
            f2c(c.availability),
            f2c(d.availability),
            f2c(x.availability),
            d.moves.to_string(),
            x.x2_hits.to_string(),
        ]);
    }
    t.expect("availability degrades as dwell shrinks for every arm; the X2 context fetch keeps dLTE's storm arrivals off the wide-area directory (hits > 0) so its p99 gap does not exceed plain dLTE's; the fixed chaos schedule widens tails without breaking any arm's recovery");
    t
}

pub fn run() -> Table {
    run_with(Params::default())
}

#[cfg(test)]
mod tests {
    #[test]
    fn storm_shapes_hold() {
        let t = super::run_with(super::Params {
            dwell_s: vec![3.0, 1.0],
            n_aps: 4,
            ues_per_ap: 1,
            total_s: 14.0,
            seed: 2,
            chaos: true,
        });
        let moves: Vec<f64> = t.column_f64(7);
        assert!(
            moves.iter().all(|&m| m >= 4.0),
            "population must actually move: {moves:?}"
        );
        let x2_hits = t.column_f64(8);
        assert!(
            x2_hits.iter().sum::<f64>() > 0.0,
            "X2 fetch should serve some storm arrivals"
        );
        // Availability degrades (or at best holds) as dwell shrinks 3 s → 1 s.
        let lte = t.column_f64(4);
        let dlte = t.column_f64(5);
        let x2 = t.column_f64(6);
        for (arm, a) in [("lte", &lte), ("dlte", &dlte), ("x2", &x2)] {
            assert!(
                a[1] <= a[0] + 0.02,
                "{arm} availability should not improve at shorter dwell: {a:?}"
            );
            assert!(
                a.iter().all(|&v| v > 0.2),
                "{arm} must stay serviceable under the storm: {a:?}"
            );
        }
    }
}
