//! E1 — §3.2: the LTE waveform out-ranges WiFi on rural links.
//!
//! Downlink throughput vs distance: an LTE band-5 macro cell (the paper's
//! deployment) against outdoor WiFi at 2.4 and 5 GHz, all over the same
//! rural Okumura-Hata terrain. WiFi throughput is DCF goodput for a single
//! station at the SNR its link budget yields.

use super::{f2c, mbps, Table};
use dlte_mac::wifi::dcf::{DcfConfig, DcfSim, StationConfig};
use dlte_mac::{CellConfig, CellSim, UeConfig};
use dlte_phy::band::Band;
use dlte_phy::link::{LinkBudget, RadioConfig};
use dlte_phy::propagation::PathLossModel;
use dlte_sim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(default)]
pub struct Params {
    pub distances_km: Vec<f64>,
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            distances_km: vec![0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 24.0, 32.0],
            seed: 1,
        }
    }
}

fn lte_goodput(dist_km: f64, seed: u64) -> f64 {
    let rng = SimRng::new(seed);
    let mut sim = CellSim::new(
        CellConfig::rural_default(),
        vec![UeConfig::at_km(dist_km)],
        &rng,
    );
    sim.run(SimDuration::from_millis(500)).ues[0].goodput_bps
}

fn wifi_goodput(dist_km: f64, band: &Band, seed: u64) -> f64 {
    let lb = LinkBudget {
        tx: RadioConfig::wifi_ap(),
        rx: RadioConfig::wifi_client(),
        model: PathLossModel::rural_macro(),
        freq_mhz: band.downlink_center_mhz(),
        bandwidth_hz: 20e6,
    };
    let snr = lb.snr_db(dist_km, 0.0);
    let mut sim = DcfSim::fully_connected(
        DcfConfig::default(),
        vec![StationConfig::saturated(snr)],
        SimRng::new(seed),
    );
    sim.run(SimDuration::from_millis(500)).aggregate_goodput_bps
}

pub fn run_with(p: Params) -> Table {
    let mut t = Table::new(
        "E1",
        "Downlink throughput vs distance, rural terrain (paper §3.2)",
        &[
            "distance (km)",
            "LTE b5 850MHz (Mbit/s)",
            "WiFi 2.4GHz (Mbit/s)",
            "WiFi 5GHz (Mbit/s)",
        ],
    );
    // Each distance is an independent seeded simulation triple — fan the
    // sweep out across threads; par_map keeps row order deterministic.
    let rows = dlte_sim::par_map(p.distances_km.clone(), |d| {
        vec![
            f2c(d),
            mbps(lte_goodput(d, p.seed)),
            mbps(wifi_goodput(d, Band::ism24(), p.seed)),
            mbps(wifi_goodput(d, Band::ism5(), p.seed)),
        ]
    });
    for row in rows {
        t.row(row);
    }
    t.expect("comparable at very short range, then WiFi falls off a cliff; LTE band 5 still delivers at 10+ km — the rural-coverage argument");
    t
}

pub fn run() -> Table {
    run_with(Params::default())
}

#[cfg(test)]
mod tests {
    #[test]
    fn shapes_hold() {
        let t = super::run_with(super::Params {
            distances_km: vec![0.25, 2.0, 8.0, 16.0],
            seed: 2,
        });
        let lte = t.column_f64(1);
        let w24 = t.column_f64(2);
        let w5 = t.column_f64(3);
        // At 250 m the two are comparable (WiFi's wider channel vs LTE's
        // contention-free scheduling trade off within 2×).
        assert!(
            w24[0] > 0.4 * lte[0] && w24[0] < 2.5 * lte[0],
            "short range comparable: wifi {} lte {}",
            w24[0],
            lte[0]
        );
        // By 8 km WiFi is dead; LTE still delivers megabits.
        assert_eq!(w24[2], 0.0, "2.4 GHz dead at 8 km");
        assert_eq!(w5[2], 0.0, "5 GHz dead at 8 km");
        assert!(lte[2] > 1.0, "LTE > 1 Mbit/s at 8 km");
        // LTE survives to 16 km.
        assert!(lte[3] > 0.5, "LTE at 16 km: {}", lte[3]);
        // 5 GHz dies before 2.4 GHz (monotone in frequency).
        let death24 = w24.iter().position(|&x| x == 0.0).unwrap();
        let death5 = w5.iter().position(|&x| x == 0.0).unwrap();
        assert!(death5 <= death24);
    }
}
