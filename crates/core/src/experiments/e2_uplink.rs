//! E2 — §3.2: "LTE's SC-FDMA uplink modulation allows higher power
//! transmission and greater range from mobile devices."
//!
//! Uplink goodput vs distance for the same handset hardware under two
//! waveforms: SC-FDMA (LTE) vs OFDM (the WiFi/counterfactual uplink). The
//! difference is the PA backoff the waveform demands.

use super::{f2c, mbps, Table};
use dlte_mac::lte::cell::Direction;
use dlte_mac::{CellConfig, CellSim, UeConfig};
use dlte_phy::band::Band;
use dlte_phy::link::LinkBudget;
use dlte_phy::link::RadioConfig;
use dlte_phy::mcs::CQI_TABLE;
use dlte_phy::propagation::PathLossModel;
use dlte_sim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(default)]
pub struct Params {
    pub distances_km: Vec<f64>,
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            distances_km: vec![1.0, 4.0, 8.0, 16.0, 24.0, 32.0, 40.0],
            seed: 1,
        }
    }
}

fn uplink_goodput(dist_km: f64, ue: RadioConfig, seed: u64) -> f64 {
    let mut cfg = CellConfig::rural_default();
    cfg.direction = Direction::Uplink;
    cfg.freq_mhz = Band::band5().uplink_center_mhz();
    let mut ue_cfg = UeConfig::at_km(dist_km);
    ue_cfg.radio = ue;
    let rng = SimRng::new(seed);
    let mut sim = CellSim::new(cfg, vec![ue_cfg], &rng);
    sim.run(SimDuration::from_millis(500)).ues[0].goodput_bps
}

/// Cell-edge range (km) of each waveform: where uplink SNR crosses CQI 1.
fn edge_range_km(ue: RadioConfig) -> f64 {
    let lb = LinkBudget {
        tx: ue,
        rx: RadioConfig::rural_enodeb(),
        model: PathLossModel::rural_macro(),
        freq_mhz: Band::band5().uplink_center_mhz(),
        bandwidth_hz: 10e6,
    };
    lb.range_km(CQI_TABLE[0].sinr_threshold_db)
}

pub fn run_with(p: Params) -> Table {
    let mut t = Table::new(
        "E2",
        "Uplink goodput vs distance: SC-FDMA vs OFDM handset (paper §3.2)",
        &[
            "distance (km)",
            "SC-FDMA uplink (Mbit/s)",
            "OFDM uplink (Mbit/s)",
        ],
    );
    for &d in &p.distances_km {
        t.row(vec![
            f2c(d),
            mbps(uplink_goodput(d, RadioConfig::lte_handset(), p.seed)),
            mbps(uplink_goodput(d, RadioConfig::ofdm_handset(), p.seed)),
        ]);
    }
    t.row(vec![
        "cell-edge range (km)".into(),
        f2c(edge_range_km(RadioConfig::lte_handset())),
        f2c(edge_range_km(RadioConfig::ofdm_handset())),
    ]);
    t.expect("SC-FDMA ≥ OFDM at every distance and reaches farther (the PA-backoff advantage)");
    t
}

pub fn run() -> Table {
    run_with(Params::default())
}

#[cfg(test)]
mod tests {
    #[test]
    fn shapes_hold() {
        let t = super::run_with(super::Params {
            distances_km: vec![4.0, 16.0, 32.0],
            seed: 2,
        });
        let sc = t.column_f64(1);
        let ofdm = t.column_f64(2);
        for i in 0..sc.len() {
            assert!(
                sc[i] >= ofdm[i] - 1e-9,
                "row {i}: SC-FDMA {} < OFDM {}",
                sc[i],
                ofdm[i]
            );
        }
        // The final row is range.
        let (range_sc, range_ofdm) = (sc[sc.len() - 1], ofdm[ofdm.len() - 1]);
        assert!(range_sc > range_ofdm, "{range_sc} vs {range_ofdm}");
    }
}
