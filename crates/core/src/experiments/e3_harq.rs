//! E3 — §3.2: "hybrid ARQ increases throughput under weak signal
//! conditions."
//!
//! Goodput vs SNR for a 10 MHz carrier with HARQ (chase combining, ≤4
//! transmissions) versus single-shot transmission. CQI selection is the
//! same for both arms, so the delta is pure HARQ.

use super::{f1c, mbps, Table};
use dlte_phy::harq::{HarqConfig, HarqProcessModel};
use dlte_phy::mcs::select_cqi;
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(default)]
pub struct Params {
    pub snrs_db: Vec<f64>,
    pub n_prb: u32,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            snrs_db: (-9..=24).step_by(3).map(|x| x as f64).collect(),
            n_prb: 50,
        }
    }
}

pub fn run_with(p: Params) -> Table {
    let harq = HarqProcessModel::new(HarqConfig::default());
    let none = HarqProcessModel::new(HarqConfig::disabled());
    let mut t = Table::new(
        "E3",
        "Goodput vs SNR, HARQ on/off, 10 MHz (paper §3.2)",
        &[
            "SNR (dB)",
            "HARQ on (Mbit/s)",
            "HARQ off (Mbit/s)",
            "gain (x)",
        ],
    );
    for &snr in &p.snrs_db {
        // "Weak signal": operate 2.5 dB below the selected CQI's threshold,
        // as an outdated CQI report under fading would (the regime HARQ
        // exists for; §3.2's "tenuous links").
        let Some(cqi) = select_cqi(snr + 2.5) else {
            t.row(vec![f1c(snr), mbps(0.0), mbps(0.0), "-".into()]);
            continue;
        };
        let g_on = harq.goodput_bps(snr, cqi, p.n_prb);
        let g_off = none.goodput_bps(snr, cqi, p.n_prb);
        let gain = if g_off > 0.0 {
            g_on / g_off
        } else {
            f64::INFINITY
        };
        t.row(vec![
            f1c(snr),
            mbps(g_on),
            mbps(g_off),
            format!("{gain:.2}"),
        ]);
    }
    t.expect("HARQ gain ≈ 1 at high SNR, grows to several × as SNR weakens below the MCS operating point");
    t
}

pub fn run() -> Table {
    run_with(Params::default())
}

#[cfg(test)]
mod tests {
    #[test]
    fn shapes_hold() {
        let t = super::run_with(super::Params::default());
        let gains: Vec<f64> = t.column_f64(3);
        let finite: Vec<f64> = gains.iter().copied().filter(|g| g.is_finite()).collect();
        assert!(!finite.is_empty());
        // Every gain ≥ 1 (HARQ never hurts), and the biggest gain is
        // substantial.
        for &g in &finite {
            assert!(g >= 0.99, "gain {g}");
        }
        let max = finite.iter().cloned().fold(0.0, f64::max);
        assert!(max > 2.0, "peak HARQ gain {max}");
        // At the top SNR the gain is ≈ 1 (HARQ costs nothing when clean).
        let top = finite.last().copied().unwrap();
        assert!((top - 1.0).abs() < 0.05, "top-SNR gain {top}");
    }
}
