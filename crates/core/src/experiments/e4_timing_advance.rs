//! E4 — §3.2: "LTE's scheduler also handles longer links by explicitly
//! compensating for propagation delay."
//!
//! Uplink goodput vs cell radius with timing advance on and off. Without
//! TA, arrivals from beyond ~700 m violate the cyclic prefix and
//! self-interfere; with TA the cell works out to the PRACH format limit.

use super::{f2c, mbps, Table};
use dlte_mac::lte::cell::Direction;
use dlte_mac::lte::timing_advance::PrachFormat;
use dlte_mac::{CellConfig, CellSim, UeConfig};
use dlte_phy::band::Band;
use dlte_sim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(default)]
pub struct Params {
    pub distances_km: Vec<f64>,
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            distances_km: vec![0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 90.0],
            seed: 1,
        }
    }
}

fn uplink(dist_km: f64, ta: bool, prach: PrachFormat, seed: u64) -> (bool, f64) {
    let mut cfg = CellConfig::rural_default();
    cfg.direction = Direction::Uplink;
    cfg.freq_mhz = Band::band5().uplink_center_mhz();
    cfg.timing_advance = ta;
    cfg.prach = prach;
    let rng = SimRng::new(seed);
    let mut sim = CellSim::new(cfg, vec![UeConfig::at_km(dist_km)], &rng);
    let r = sim.run(SimDuration::from_millis(500));
    (r.ues[0].served, r.ues[0].goodput_bps)
}

pub fn run_with(p: Params) -> Table {
    let mut t = Table::new(
        "E4",
        "Uplink vs cell radius, timing advance on/off (paper §3.2)",
        &[
            "distance (km)",
            "TA on (Mbit/s)",
            "TA off (Mbit/s)",
            "TA on served",
        ],
    );
    for &d in &p.distances_km {
        let (served_on, g_on) = uplink(d, true, PrachFormat::Format3, p.seed);
        let (_, g_off) = uplink(d, false, PrachFormat::Format3, p.seed);
        t.row(vec![f2c(d), mbps(g_on), mbps(g_off), served_on.to_string()]);
    }
    t.expect("equal under ~0.7 km (CP absorbs the skew); beyond it TA-off collapses while TA-on holds to the PRACH limit (~100 km)");
    t
}

pub fn run() -> Table {
    run_with(Params::default())
}

#[cfg(test)]
mod tests {
    #[test]
    fn shapes_hold() {
        let t = super::run_with(super::Params {
            distances_km: vec![0.5, 5.0, 10.0, 90.0],
            seed: 2,
        });
        let on = t.column_f64(1);
        let off = t.column_f64(2);
        // Equal at 500 m.
        assert!((on[0] - off[0]).abs() < 0.5, "{} vs {}", on[0], off[0]);
        // TA wins clearly at 5 and 10 km (the band-5 uplink link budget
        // itself runs out near 19 km, so the sweep stays inside it).
        assert!(on[1] > 1.5 * off[1], "5 km: {} vs {}", on[1], off[1]);
        assert!(on[2] > 1.5 * off[2], "10 km: {} vs {}", on[2], off[2]);
        // Still *serveable* (PRACH/TA admit the UE) at 90 km with format 3,
        // even though the link budget yields nothing there.
        assert_eq!(t.rows[3][3], "true");
    }
}
