//! E5 — §4.3: fair-sharing mode "more efficiently achiev\[es\] an equilibrium
//! with similar fairness characteristics to what WiFi achieves today."
//!
//! N co-channel APs, one saturated client each, same spectral resource:
//!
//! * **WiFi**: N DCF contenders — collisions and backoff burn airtime;
//! * **dLTE fair-share**: the X2 max-min partition hands each AP a clean
//!   1/N time share of the scheduled channel (no contention at all).
//!
//! Reported: aggregate goodput, Jain fairness, and the WiFi collision rate
//! (dLTE's is zero by construction).

use super::{f2c, mbps, Table};
use dlte_mac::wifi::dcf::{DcfConfig, DcfSim, StationConfig};
use dlte_mac::{CellConfig, CellSim, UeConfig};
use dlte_sim::stats::jain_index;
use dlte_sim::{SimDuration, SimRng};
use dlte_x2::max_min_shares;
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(default)]
pub struct Params {
    pub ap_counts: Vec<usize>,
    /// Client distance from its AP (sets link quality), km.
    pub client_km: f64,
    pub seconds: u64,
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            ap_counts: vec![2, 4, 8, 16],
            client_km: 1.0,
            seconds: 2,
            seed: 1,
        }
    }
}

struct Outcome {
    aggregate_bps: f64,
    jain: f64,
    collision_rate: f64,
}

fn dlte_fair_share(n: usize, p: &Params) -> Outcome {
    // X2 negotiation over equal demands → 1/n each.
    let shares = max_min_shares(&vec![1.0; n], 1.0);
    let mut rates = Vec::with_capacity(n);
    for (k, &share) in shares.iter().enumerate() {
        let mut cfg = CellConfig::rural_default();
        cfg.tdm_share = share;
        let rng = SimRng::new(p.seed + k as u64);
        let mut sim = CellSim::new(cfg, vec![UeConfig::at_km(p.client_km)], &rng);
        let r = sim.run(SimDuration::from_secs(p.seconds));
        rates.push(r.ues[0].goodput_bps);
    }
    Outcome {
        aggregate_bps: rates.iter().sum(),
        jain: jain_index(&rates),
        collision_rate: 0.0,
    }
}

fn wifi_dcf(n: usize, p: &Params) -> Outcome {
    // Same number of saturated contenders at good SNR (the comparison is
    // about MAC efficiency, not link budget — E1 covers range).
    let stations = vec![StationConfig::saturated(25.0); n];
    let mut sim = DcfSim::fully_connected(DcfConfig::default(), stations, SimRng::new(p.seed));
    let r = sim.run(SimDuration::from_secs(p.seconds));
    let rates: Vec<f64> = r.stations.iter().map(|s| s.goodput_bps).collect();
    Outcome {
        aggregate_bps: r.aggregate_goodput_bps,
        jain: jain_index(&rates),
        collision_rate: r.collision_rate,
    }
}

pub fn run_with(p: Params) -> Table {
    let mut t = Table::new(
        "E5",
        "N co-channel APs: dLTE fair-share vs WiFi DCF (paper §4.3)",
        &[
            "APs",
            "dLTE agg (Mbit/s)",
            "dLTE Jain",
            "WiFi agg (Mbit/s)",
            "WiFi Jain",
            "WiFi collisions",
        ],
    );
    // Each AP count is an independent pair of seeded simulations — fan the
    // sweep out across threads; par_map keeps row order deterministic.
    let rows = dlte_sim::par_map(p.ap_counts.clone(), |n| {
        let d = dlte_fair_share(n, &p);
        let w = wifi_dcf(n, &p);
        vec![
            n.to_string(),
            mbps(d.aggregate_bps),
            f2c(d.jain),
            mbps(w.aggregate_bps),
            f2c(w.jain),
            f2c(w.collision_rate),
        ]
    });
    for row in rows {
        t.row(row);
    }
    t.expect("both systems are near-perfectly fair; dLTE's aggregate is flat in N while DCF's decays with contention — 'similar fairness, more efficient'");
    t
}

pub fn run() -> Table {
    run_with(Params::default())
}

#[cfg(test)]
mod tests {
    #[test]
    fn shapes_hold() {
        let t = super::run_with(super::Params {
            ap_counts: vec![2, 8],
            client_km: 1.0,
            seconds: 1,
            seed: 2,
        });
        let dlte_agg = t.column_f64(1);
        let dlte_jain = t.column_f64(2);
        let wifi_agg = t.column_f64(3);
        let wifi_jain = t.column_f64(4);
        // Fairness similar (both ≥ 0.95).
        for i in 0..t.rows.len() {
            assert!(dlte_jain[i] > 0.95, "dLTE jain {}", dlte_jain[i]);
            assert!(wifi_jain[i] > 0.95, "WiFi jain {}", wifi_jain[i]);
        }
        // dLTE aggregate flat in N (within 5%); WiFi decays.
        assert!((dlte_agg[1] / dlte_agg[0] - 1.0).abs() < 0.05);
        assert!(wifi_agg[1] < wifi_agg[0]);
    }
}
