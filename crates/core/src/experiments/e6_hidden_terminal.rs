//! E6 — §4.3: "a license database ensures that all transmitters in the
//! band are known, thereby mitigating the hidden terminal problem."
//!
//! The classic two-transmitter hidden topology (neither can hear the other;
//! both reach the same receiver area):
//!
//! * **WiFi / carrier sensing**: CSMA fails — the transmitters can't sense
//!   each other, transmissions overlap, goodput craters;
//! * **dLTE / registry**: both transmitters appear in each other's
//!   contention domain regardless of RF visibility, X2 splits the channel,
//!   collisions are structurally impossible.

use super::{f2c, mbps, Table};
use dlte_mac::wifi::dcf::{DcfConfig, DcfSim, StationConfig};
use dlte_mac::{CellConfig, CellSim, UeConfig};
use dlte_phy::band::Band;
use dlte_registry::{ChannelPlan, GrantRequest, Point, SpectrumRegistry};
use dlte_sim::{SimDuration, SimRng, SimTime};
use dlte_x2::max_min_shares;
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(default)]
pub struct Params {
    pub seconds: u64,
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            seconds: 2,
            seed: 1,
        }
    }
}

pub struct Row {
    pub label: &'static str,
    pub aggregate_bps: f64,
    pub collision_rate: f64,
    pub peers_discovered: usize,
}

fn wifi(hidden: bool, p: &Params) -> Row {
    let stations = vec![
        StationConfig::saturated(25.0),
        StationConfig::saturated(25.0),
    ];
    let mut sense = vec![vec![true; 2]; 2];
    if hidden {
        sense[0][1] = false;
        sense[1][0] = false;
    }
    let mut sim = DcfSim::with_sensing(DcfConfig::default(), stations, sense, SimRng::new(p.seed));
    let r = sim.run(SimDuration::from_secs(p.seconds));
    Row {
        label: if hidden {
            "WiFi CSMA, hidden pair"
        } else {
            "WiFi CSMA, mutually visible"
        },
        aggregate_bps: r.aggregate_goodput_bps,
        collision_rate: r.collision_rate,
        peers_discovered: 0,
    }
}

fn dlte_registry_coordination(p: &Params) -> Row {
    // Two APs 15 km apart on terrain that hides them from each other's
    // carrier sense — but both registered. Contention domains come from
    // geometry in the database, not RF sensing.
    let mut reg = SpectrumRegistry::new(ChannelPlan::for_band(Band::band5(), 10.0), 55.0);
    let req = |x: f64| GrantRequest {
        operator: 1,
        location: Point::new(x, 0.0),
        channel: Some(0), // single channel available in this deployment
        max_eirp_dbm: 50.0,
        contour_km: 10.0,
        lease: SimDuration::from_secs(3600),
    };
    let a = reg.request(req(0.0), SimTime::ZERO).expect("open registry");
    let b = reg
        .request(req(15.0), SimTime::ZERO)
        .expect("open registry");
    let dom_a = reg.contention_domain(&a, SimTime::ZERO);
    assert_eq!(dom_a.len(), 1, "registry reveals the hidden peer");
    let _ = b;
    // X2 fair share over the discovered domain → 50/50 TDM, zero overlap.
    let shares = max_min_shares(&[1.0, 1.0], 1.0);
    let mut total = 0.0;
    for (k, &share) in shares.iter().enumerate() {
        let mut cfg = CellConfig::rural_default();
        cfg.tdm_share = share;
        let rng = SimRng::new(p.seed + 10 + k as u64);
        let mut sim = CellSim::new(cfg, vec![UeConfig::at_km(1.0)], &rng);
        total += sim.run(SimDuration::from_secs(p.seconds)).ues[0].goodput_bps;
    }
    Row {
        label: "dLTE registry + X2 TDM",
        aggregate_bps: total,
        collision_rate: 0.0,
        peers_discovered: dom_a.len(),
    }
}

pub fn run_with(p: Params) -> Table {
    let mut t = Table::new(
        "E6",
        "Hidden-terminal topology: carrier sensing vs registry discovery (paper §4.3)",
        &[
            "system",
            "aggregate (Mbit/s)",
            "collision rate",
            "peers found out-of-band",
        ],
    );
    for row in [
        wifi(false, &p),
        wifi(true, &p),
        dlte_registry_coordination(&p),
    ] {
        t.row(vec![
            row.label.into(),
            mbps(row.aggregate_bps),
            f2c(row.collision_rate),
            row.peers_discovered.to_string(),
        ]);
    }
    t.expect("hiding the pair wrecks CSMA (collisions up, goodput down); the registry finds the peer without RF and TDM eliminates collisions entirely");
    t
}

pub fn run() -> Table {
    run_with(Params::default())
}

#[cfg(test)]
mod tests {
    #[test]
    fn shapes_hold() {
        let t = super::run_with(super::Params {
            seconds: 1,
            seed: 2,
        });
        let agg = t.column_f64(1);
        let coll = t.column_f64(2);
        // Hidden CSMA worse than visible CSMA.
        assert!(agg[1] < agg[0], "hidden {} !< visible {}", agg[1], agg[0]);
        assert!(coll[1] > 3.0 * coll[0].max(0.01));
        // Registry arm: zero collisions, healthy aggregate.
        assert_eq!(coll[2], 0.0);
        assert!(
            agg[2] > agg[1],
            "registry {} beats hidden CSMA {}",
            agg[2],
            agg[1]
        );
        assert_eq!(t.rows[2][3], "1", "peer discovered from the database");
    }
}
