//! E7 — §4.3: cooperative mode "allows for client handoff across the APs,
//! QoS aware joint flow scheduling between APs, and the assignment of the
//! best AP to serve each client device."
//!
//! Scenario: two co-channel APs 6 km apart; eight clients clustered so
//! that most naturally associate with AP0 (the overload case the paper's
//! cooperation targets). Three coordination levels:
//!
//! * **independent** — each client on its strongest AP, both APs transmit
//!   whenever they like → co-channel interference at every client;
//! * **fair-share** — same association, X2 splits time 50/50 → no
//!   interference but half the airtime each, idle AP1 wastes its share;
//! * **cooperative** — X2 exchanges measurement reports, clients are
//!   re-balanced (bounded SINR sacrifice), airtime shares follow load.

use super::{f2c, mbps, Table};
use dlte_mac::lte::cell::Direction;
use dlte_mac::{CellConfig, CellSim, UeConfig};
use dlte_phy::link::LinkBudget;
use dlte_phy::link::RadioConfig;
use dlte_phy::propagation::PathLossModel;
use dlte_phy::units::dbm_to_mw;
use dlte_sim::stats::jain_index;
use dlte_sim::{SimDuration, SimRng};
use dlte_x2::cooperative::{best_ap_assignment, load_balanced_assignment, ClientMeasurement};
use dlte_x2::weighted_shares;
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(default)]
pub struct Params {
    /// Client positions along the AP0→AP1 axis, km from AP0.
    pub client_km: Vec<f64>,
    /// AP separation, km.
    pub ap_distance_km: f64,
    pub seconds: u64,
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            // Clustered toward AP0 (one genuine AP1 client at 5.4 km keeps
            // both cells transmitting, so the independent arm interferes).
            client_km: vec![0.4, 0.8, 1.2, 1.6, 2.0, 2.2, 2.4, 5.4],
            ap_distance_km: 6.0,
            seconds: 2,
            seed: 1,
        }
    }
}

/// SINR measurements of every client toward both APs.
fn measurements(p: &Params) -> Vec<ClientMeasurement> {
    let budget = |dist: f64| {
        LinkBudget {
            tx: RadioConfig::rural_enodeb(),
            rx: RadioConfig::lte_handset(),
            model: PathLossModel::rural_macro(),
            freq_mhz: 881.5,
            bandwidth_hz: 10e6,
        }
        .snr_db(dist, 0.0)
    };
    p.client_km
        .iter()
        .enumerate()
        .map(|(i, &x)| ClientMeasurement {
            client: i as u64,
            sinr_db: vec![
                budget(x.max(0.05)),
                budget((p.ap_distance_km - x).max(0.05)),
            ],
        })
        .collect()
}

struct Outcome {
    aggregate_bps: f64,
    jain: f64,
    min_client_bps: f64,
}

/// Evaluate an (assignment, per-AP tdm share, interference) configuration
/// with the cell simulator.
fn evaluate(p: &Params, ap_of: &[usize], shares: &[f64], interference: bool) -> Outcome {
    let mut per_client = vec![0.0f64; p.client_km.len()];
    for (ap, &share) in shares.iter().enumerate().take(2) {
        let members: Vec<usize> = (0..p.client_km.len()).filter(|&i| ap_of[i] == ap).collect();
        if members.is_empty() {
            continue;
        }
        let mut cfg = CellConfig::rural_default();
        cfg.direction = Direction::Downlink;
        cfg.tdm_share = share;
        let ues: Vec<UeConfig> = members
            .iter()
            .map(|&i| {
                let dist_serving = if ap == 0 {
                    p.client_km[i].max(0.05)
                } else {
                    (p.ap_distance_km - p.client_km[i]).max(0.05)
                };
                let dist_other = if ap == 0 {
                    (p.ap_distance_km - p.client_km[i]).max(0.05)
                } else {
                    p.client_km[i].max(0.05)
                };
                let mut ue = UeConfig::at_km(dist_serving);
                if interference {
                    // Uncoordinated neighbor transmits continuously: its
                    // signal is interference at this client.
                    let other = LinkBudget {
                        tx: RadioConfig::rural_enodeb(),
                        rx: RadioConfig::lte_handset(),
                        model: PathLossModel::rural_macro(),
                        freq_mhz: 881.5,
                        bandwidth_hz: 10e6,
                    };
                    let i_dbm = other.rx_power_dbm(dist_other);
                    if dbm_to_mw(i_dbm) > 0.0 {
                        ue.interference_dbm = i_dbm;
                    }
                }
                ue
            })
            .collect();
        let rng = SimRng::new(p.seed + ap as u64);
        let mut sim = CellSim::new(cfg, ues, &rng);
        let r = sim.run(SimDuration::from_secs(p.seconds));
        for (slot, &i) in members.iter().enumerate() {
            per_client[i] = r.ues[slot].goodput_bps;
        }
    }
    Outcome {
        aggregate_bps: per_client.iter().sum(),
        jain: jain_index(&per_client),
        min_client_bps: per_client.iter().cloned().fold(f64::INFINITY, f64::min),
    }
}

pub fn run_with(p: Params) -> Table {
    let meas = measurements(&p);
    let natural = best_ap_assignment(&meas, 2);
    // Cooperative arm: re-balanced association (≤9 dB sacrifice — the eICIC
    // cell-range-expansion regime), demand-weighted shares, clean TDM.
    let balanced = load_balanced_assignment(&meas, 2, 9.0);
    let loads: Vec<f64> = balanced.load.iter().map(|&l| l as f64).collect();
    let shares = weighted_shares(&[1.0, 1.0], &loads, 1.0);

    // The three coordination arms are independent seeded simulations — run
    // them on separate threads. (assignment, per-AP shares, interference):
    // independent = natural association, both APs always on, mutual
    // interference; fair-share = natural association, clean 50/50 TDM.
    let mut outcomes = dlte_sim::par_map(
        vec![
            (natural.ap_of.clone(), vec![1.0, 1.0], true),
            (natural.ap_of.clone(), vec![0.5, 0.5], false),
            (balanced.ap_of.clone(), shares, false),
        ],
        |(ap_of, shares, interference)| evaluate(&p, &ap_of, &shares, interference),
    );
    let cooperative = outcomes.pop().expect("three arms");
    let fair = outcomes.pop().expect("three arms");
    let independent = outcomes.pop().expect("three arms");

    let mut t = Table::new(
        "E7",
        "Two-AP overlap: independent vs fair-share vs cooperative (paper §4.3)",
        &[
            "mode",
            "aggregate (Mbit/s)",
            "Jain",
            "worst client (Mbit/s)",
            "clients on AP0/AP1",
        ],
    );
    let split = |a: &dlte_x2::cooperative::Assignment| format!("{}/{}", a.load[0], a.load[1]);
    for (label, o, assign) in [
        ("independent", &independent, &natural),
        ("fair-share", &fair, &natural),
        ("cooperative", &cooperative, &balanced),
    ] {
        t.row(vec![
            label.into(),
            mbps(o.aggregate_bps),
            f2c(o.jain),
            mbps(o.min_client_bps),
            split(assign),
        ]);
    }
    t.expect("cooperative lifts the worst client and fairness over fair-share at no aggregate cost; uncoordinated reuse-1 maximizes raw aggregate but craters the cell edge; cooperation rebalances clients across APs");
    t
}

pub fn run() -> Table {
    run_with(Params::default())
}

#[cfg(test)]
mod tests {
    #[test]
    fn shapes_hold() {
        let t = super::run_with(super::Params {
            seconds: 1,
            ..super::Params::default()
        });
        let agg = t.column_f64(1);
        let jain = t.column_f64(2);
        let worst = t.column_f64(3);
        let (ind, fair, coop) = (0, 1, 2);
        // With full-buffer clients on both APs the aggregate is roughly the
        // channel capacity whenever transmissions are clean — cooperation's
        // win is in the distribution: worst client and fairness.
        assert!(
            worst[coop] > 1.15 * worst[fair],
            "cooperative worst-client {} !> fair {}",
            worst[coop],
            worst[fair]
        );
        assert!(
            jain[coop] > jain[fair],
            "cooperative jain {} !> fair {}",
            jain[coop],
            jain[fair]
        );
        assert!(
            agg[coop] > 0.85 * agg[fair],
            "cooperative aggregate {} must not sacrifice fair's {}",
            agg[coop],
            agg[fair]
        );
        // Uncoordinated reuse-1 wins raw aggregate (double airtime beats
        // the interference penalty at these SIRs) but pays for it at the
        // edge: its worst client and fairness are the poorest of the three.
        assert!(
            worst[ind] < worst[fair] && worst[ind] < worst[coop],
            "independent must have the worst cell-edge client"
        );
        assert!(jain[ind] < jain[fair] && jain[ind] < jain[coop]);
        // Cooperation actually moved clients.
        assert_ne!(t.rows[coop][4], t.rows[ind][4]);
    }
}
