//! E8 — §4.2: endpoint mobility. Clients get a new address at each AP and
//! transports resume; the approach "may break down... as the client's time
//! on a single AP approaches the same order of magnitude as a round trip
//! to an in use OTT service."
//!
//! Sweep the dwell time per AP and the Internet distance, measure the
//! service gap per cell change:
//!
//! * centralized LTE: S1 path switch (IP preserved) — the gap is the
//!   control-plane switch time;
//! * dLTE: detach → attach (new IP) → application traffic resumes — the
//!   gap includes the attach and the first round trip to the OTT service;
//! * availability = 1 − gap/dwell: the §4.2 breakdown shows up as
//!   availability collapsing when dwell ≈ gap.

use super::{f2c, Table};
use crate::scenario::{DlteNetworkBuilder, DltePlan};
use dlte_epc::topology::{CentralizedLteBuilder, UePlan};
use dlte_epc::ue::{MobilityMode, UeApp, UeNode};
use dlte_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(default)]
pub struct Params {
    /// Dwell time on each AP before moving, seconds.
    pub dwell_s: Vec<f64>,
    /// One-way Internet delay to the OTT service, ms.
    pub inet_delay_ms: u64,
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            dwell_s: vec![10.0, 5.0, 2.0, 1.0, 0.5],
            inet_delay_ms: 10,
            seed: 1,
        }
    }
}

fn ping_app(dst: dlte_net::Addr) -> UeApp {
    UeApp::Pinger {
        dst,
        interval: SimDuration::from_millis(25),
        probe_bytes: 100,
    }
}

/// Schedule of alternating cell changes covering `total_s` seconds.
fn schedule(dwell_s: f64, total_s: f64) -> Vec<(SimTime, usize)> {
    let mut out = Vec::new();
    let mut t = 2.0 + dwell_s; // settle, then start moving
    let mut cell = 1;
    while t < total_s - 1.0 {
        out.push((SimTime::from_secs_f64(t), cell));
        cell = 1 - cell;
        t += dwell_s;
    }
    out
}

struct Arm {
    mean_gap_ms: f64,
    moves: usize,
    availability: f64,
}

fn run_centralized(dwell_s: f64, p: &Params, total_s: f64) -> Arm {
    let mut b = CentralizedLteBuilder::new(2, 1);
    b.wire_all_cells = true;
    b.inet_delay = SimDuration::from_millis(p.inet_delay_ms);
    b.seed = p.seed;
    let sched = schedule(dwell_s, total_s);
    let n_moves = sched.len();
    let mut net = b
        .with_ue_plan(move |i| UePlan {
            app: ping_app(CentralizedLteBuilder::ott_addr()),
            mode: MobilityMode::PathSwitch,
            schedule: if i == 0 {
                schedule(dwell_s, total_s)
            } else {
                vec![]
            },
        })
        .build();
    net.sim
        .run_until(SimTime::from_secs_f64(total_s), 50_000_000);
    let ue = net.sim.world().handler_as::<UeNode>(net.ues[0]).unwrap();
    let gaps = ue.stats.handover_gap_ms.clone();
    arm_from(gaps, n_moves, dwell_s)
}

fn run_dlte(dwell_s: f64, p: &Params, total_s: f64) -> Arm {
    let mut b = DlteNetworkBuilder::new(2, 1);
    b.wire_all_cells = true;
    b.inet_delay = SimDuration::from_millis(p.inet_delay_ms);
    b.seed = p.seed;
    let sched = schedule(dwell_s, total_s);
    let n_moves = sched.len();
    let mut net = b
        .with_ue_plan(move |i| DltePlan {
            app: ping_app(DlteNetworkBuilder::ott_addr()),
            mode: MobilityMode::ReAttach,
            schedule: if i == 0 {
                schedule(dwell_s, total_s)
            } else {
                vec![]
            },
        })
        .build();
    net.sim
        .run_until(SimTime::from_secs_f64(total_s), 50_000_000);
    let ue = net.sim.handler_as::<UeNode>(net.ues[0]).unwrap();
    let gaps = ue.stats.handover_gap_ms.clone();
    arm_from(gaps, n_moves, dwell_s)
}

fn arm_from(gaps: dlte_sim::stats::Samples, n_moves: usize, dwell_s: f64) -> Arm {
    let mean = if gaps.is_empty() {
        f64::NAN
    } else {
        gaps.mean()
    };
    // Moves whose gap was never closed (no traffic resumed before the next
    // move) show up as missing samples.
    let closed = gaps.len();
    let unclosed = n_moves.saturating_sub(closed);
    let dwell_ms = dwell_s * 1_000.0;
    let lost_ms = gaps.values().iter().sum::<f64>() + unclosed as f64 * dwell_ms;
    let availability = 1.0 - (lost_ms / (n_moves.max(1) as f64 * dwell_ms)).min(1.0);
    Arm {
        mean_gap_ms: mean,
        moves: n_moves,
        availability,
    }
}

pub fn run_with(p: Params) -> Table {
    let mut t = Table::new(
        "E8",
        "Service gap per cell change vs dwell time (paper §4.2)",
        &[
            "dwell (s)",
            "LTE switch gap (ms)",
            "dLTE re-attach gap (ms)",
            "LTE availability",
            "dLTE availability",
            "moves",
        ],
    );
    for &dwell in &p.dwell_s {
        let total = (dwell * 8.0 + 6.0).min(60.0);
        let c = run_centralized(dwell, &p, total);
        let d = run_dlte(dwell, &p, total);
        t.row(vec![
            f2c(dwell),
            f2c(c.mean_gap_ms),
            f2c(d.mean_gap_ms),
            f2c(c.availability),
            f2c(d.availability),
            d.moves.to_string(),
        ]);
    }
    t.expect("dLTE's re-attach gap is the same order as LTE's path switch at rural EPC distances (the switch pays wide-area signaling; the re-attach is AP-local plus one OTT RTT); availability degrades as dwell approaches the gap — the §4.2 breakdown");
    t
}

pub fn run() -> Table {
    run_with(Params::default())
}

#[cfg(test)]
mod tests {
    #[test]
    fn shapes_hold() {
        let t = super::run_with(super::Params {
            dwell_s: vec![5.0, 0.5],
            inet_delay_ms: 10,
            seed: 2,
        });
        let lte_gap = t.column_f64(1);
        let dlte_gap = t.column_f64(2);
        let dlte_avail = t.column_f64(4);
        // At rural EPC distances the two are the same order: LTE's path
        // switch pays wide-area signaling RTTs, dLTE's re-attach is
        // AP-local plus one OTT round trip.
        assert!(
            dlte_gap[0] > 0.4 * lte_gap[0] && dlte_gap[0] < 2.5 * lte_gap[0],
            "gaps same order: dLTE {} vs LTE {}",
            dlte_gap[0],
            lte_gap[0]
        );
        // At a 5 s dwell dLTE availability is fine…
        assert!(
            dlte_avail[0] > 0.95,
            "5s dwell availability {}",
            dlte_avail[0]
        );
        // …at 0.5 s it degrades markedly (the §4.2 breakdown).
        assert!(
            dlte_avail[1] < dlte_avail[0] - 0.05,
            "availability should degrade: {} vs {}",
            dlte_avail[1],
            dlte_avail[0]
        );
    }
}
