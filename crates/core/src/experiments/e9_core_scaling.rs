//! E9 — §4.1: "each stub can be independent of others, so the one stub per
//! site model naturally scales as the total number of APs increases" —
//! versus the centralized EPC, where every attach serializes through one
//! MME/HSS.
//!
//! N UEs power on together (the morning-bus scenario); measure the mean
//! and p95 attach latency. Centralized: one EPC, N/10 eNBs. dLTE: N/10
//! APs, each with its own stub.

use super::{f2c, Table};
use crate::scenario::{DlteNetworkBuilder, DltePlan};
use dlte_epc::topology::{CentralizedLteBuilder, UePlan};
use dlte_epc::ue::UeNode;
use dlte_sim::stats::Samples;
use dlte_sim::SimTime;
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(default)]
pub struct Params {
    pub ue_counts: Vec<usize>,
    pub ues_per_site: usize,
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            ue_counts: vec![10, 50, 100, 200],
            ues_per_site: 10,
            seed: 1,
        }
    }
}

fn attach_latencies_centralized(n: usize, p: &Params) -> Samples {
    let sites = (n / p.ues_per_site).max(1);
    let mut b = CentralizedLteBuilder::new(sites, p.ues_per_site);
    b.seed = p.seed;
    let mut net = b.with_ue_plan(|_| UePlan::default()).build();
    net.sim.run_until(SimTime::from_secs(30), 100_000_000);
    let mut s = Samples::new();
    for &ue_id in &net.ues {
        let ue = net.sim.world().handler_as::<UeNode>(ue_id).unwrap();
        for &v in ue.stats.attach_latency_ms.values() {
            s.push(v);
        }
    }
    s
}

fn attach_latencies_dlte(n: usize, p: &Params) -> Samples {
    let sites = (n / p.ues_per_site).max(1);
    let mut b = DlteNetworkBuilder::new(sites, p.ues_per_site);
    b.seed = p.seed;
    let mut net = b.with_ue_plan(|_| DltePlan::default()).build();
    net.sim.run_until(SimTime::from_secs(30), 100_000_000);
    let mut s = Samples::new();
    for &ue_id in &net.ues {
        let ue = net.sim.handler_as::<UeNode>(ue_id).unwrap();
        for &v in ue.stats.attach_latency_ms.values() {
            s.push(v);
        }
    }
    s
}

pub fn run_with(p: Params) -> Table {
    let mut t = Table::new(
        "E9",
        "Simultaneous attach storm: shared EPC vs per-AP stubs (paper §4.1)",
        &[
            "UEs",
            "EPC mean (ms)",
            "EPC p95 (ms)",
            "dLTE mean (ms)",
            "dLTE p95 (ms)",
            "attached (EPC/dLTE)",
        ],
    );
    // Each UE count is an independent pair of whole-network simulations (the
    // heaviest sweep in the suite) — fan it out across threads; par_map keeps
    // row order deterministic.
    let rows = dlte_sim::par_map(p.ue_counts.clone(), |n| {
        let c = attach_latencies_centralized(n, &p);
        let d = attach_latencies_dlte(n, &p);
        vec![
            n.to_string(),
            f2c(c.mean()),
            f2c(c.p95()),
            f2c(d.mean()),
            f2c(d.p95()),
            format!("{}/{}", c.len(), d.len()),
        ]
    });
    for row in rows {
        t.row(row);
    }
    t.expect("dLTE attach latency is flat in N (stubs scale with sites); the shared EPC's mean and tail grow with N as its control plane queues");
    t
}

pub fn run() -> Table {
    run_with(Params::default())
}

#[cfg(test)]
mod tests {
    #[test]
    fn shapes_hold() {
        let t = super::run_with(super::Params {
            ue_counts: vec![10, 100],
            ues_per_site: 10,
            seed: 2,
        });
        let epc_p95 = t.column_f64(2);
        let dlte_mean = t.column_f64(3);
        // Everyone attached.
        assert_eq!(t.rows[0][5], "10/10");
        assert_eq!(t.rows[1][5], "100/100");
        // EPC tail grows with N.
        assert!(
            epc_p95[1] > epc_p95[0] * 1.2,
            "EPC p95 {} → {}",
            epc_p95[0],
            epc_p95[1]
        );
        // dLTE mean stays flat within 20%.
        assert!(
            (dlte_mean[1] / dlte_mean[0] - 1.0).abs() < 0.2,
            "dLTE mean {} → {}",
            dlte_mean[0],
            dlte_mean[1]
        );
        // And dLTE is faster outright at scale.
        let epc_mean = t.column_f64(1);
        assert!(dlte_mean[1] < epc_mean[1]);
    }
}
