//! F1 — Figure 1: centralized LTE vs dLTE, side by side.
//!
//! Same physical geometry (radio, backhaul, Internet distances), same
//! workload (a UE pinging an OTT service), two architectures. The figure's
//! qualitative arrows become measured rows: where user traffic flows
//! (tunnels vs native), where control lives, what that costs in latency.

use super::{f2c, Table};
use crate::scenario::{DlteNetworkBuilder, DltePlan};
use crate::DlteApNode;
use dlte_epc::topology::{CentralizedLteBuilder, UePlan};
use dlte_epc::ue::{MobilityMode, UeApp, UeNode};
use dlte_epc::{PgwNode, SgwNode};
use dlte_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(default)]
pub struct Params {
    pub seconds: u64,
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            seconds: 10,
            seed: 1,
        }
    }
}

struct SideResult {
    attach_ms: f64,
    rtt_ms: f64,
    tunneled_packets: u64,
    breakout_packets: u64,
}

fn centralized(p: &Params) -> SideResult {
    let mut b = CentralizedLteBuilder::new(1, 1);
    b.seed = p.seed;
    let mut net = b
        .with_ue_plan(|_| UePlan {
            app: UeApp::Pinger {
                dst: CentralizedLteBuilder::ott_addr(),
                interval: SimDuration::from_millis(100),
                probe_bytes: 100,
            },
            mode: MobilityMode::PathSwitch,
            schedule: vec![],
        })
        .build();
    net.sim.run_until(SimTime::from_secs(p.seconds), 10_000_000);
    let w = net.sim.world();
    let ue = w.handler_as::<UeNode>(net.ues[0]).unwrap();
    let sgw = w.handler_as::<SgwNode>(net.sgw).unwrap();
    let pgw = w.handler_as::<PgwNode>(net.pgw).unwrap();
    let rtts = &ue.stats.rtt_ms;
    SideResult {
        attach_ms: ue
            .stats
            .attach_latency_ms
            .values()
            .first()
            .copied()
            .unwrap_or(f64::NAN),
        rtt_ms: rtts.median(),
        tunneled_packets: sgw.stats.ul_packets
            + sgw.stats.dl_packets
            + pgw.stats.ul_packets
            + pgw.stats.dl_packets,
        breakout_packets: 0,
    }
}

fn dlte(p: &Params) -> SideResult {
    let mut b = DlteNetworkBuilder::new(1, 1);
    b.seed = p.seed;
    let mut net = b
        .with_ue_plan(|_| DltePlan {
            app: UeApp::Pinger {
                dst: DlteNetworkBuilder::ott_addr(),
                interval: SimDuration::from_millis(100),
                probe_bytes: 100,
            },
            ..Default::default()
        })
        .build();
    net.sim.run_until(SimTime::from_secs(p.seconds), 10_000_000);
    let ue = net.sim.handler_as::<UeNode>(net.ues[0]).unwrap();
    let ap = net.sim.handler_as::<DlteApNode>(net.aps[0]).unwrap();
    let rtts = &ue.stats.rtt_ms;
    SideResult {
        attach_ms: ue
            .stats
            .attach_latency_ms
            .values()
            .first()
            .copied()
            .unwrap_or(f64::NAN),
        rtt_ms: rtts.median(),
        tunneled_packets: 0,
        breakout_packets: ap.core.stats.ul_user_packets + ap.core.stats.dl_user_packets,
    }
}

pub fn run_with(p: Params) -> Table {
    let c = centralized(&p);
    let d = dlte(&p);
    let mut t = Table::new(
        "F1",
        "Architecture comparison on identical geometry (paper Figure 1)",
        &["metric", "centralized LTE", "dLTE"],
    );
    t.row(vec![
        "attach latency (ms)".into(),
        f2c(c.attach_ms),
        f2c(d.attach_ms),
    ]);
    t.row(vec![
        "user RTT to OTT, median (ms)".into(),
        f2c(c.rtt_ms),
        f2c(d.rtt_ms),
    ]);
    t.row(vec![
        "user packets through EPC tunnels".into(),
        c.tunneled_packets.to_string(),
        d.tunneled_packets.to_string(),
    ]);
    t.row(vec![
        "user packets broken out at AP".into(),
        c.breakout_packets.to_string(),
        d.breakout_packets.to_string(),
    ]);
    t.row(vec![
        "control-plane location".into(),
        "EPC site (shared)".into(),
        "at each AP (stub)".into(),
    ]);
    t.row(vec![
        "coordination path".into(),
        "carrier-mediated (S1/S11)".into(),
        "peer-to-peer (X2 over Internet)".into(),
    ]);
    t.expect("dLTE: lower attach latency and RTT; zero tunneled packets; all traffic breaks out at the AP");
    t
}

pub fn run() -> Table {
    run_with(Params::default())
}

#[cfg(test)]
mod tests {
    #[test]
    fn shapes_hold() {
        let t = super::run_with(super::Params {
            seconds: 5,
            seed: 3,
        });
        let cent = t.column_f64(1);
        let dlte = t.column_f64(2);
        assert!(dlte[0] < cent[0], "attach: dLTE faster");
        assert!(dlte[1] < cent[1], "RTT: dLTE lower");
        assert!(cent[2] > 0.0 && dlte[2] == 0.0, "tunnels only centralized");
        assert!(dlte[3] > 0.0 && cent[3] == 0.0, "breakout only dLTE");
    }
}
