//! F2 — Figure 2 / §5: the prototype's bill of materials and what one site
//! buys.

use super::{f1c, f2c, Table};
use crate::econ::Deployment;
use serde::{Deserialize, Serialize};

/// F2 reports the fixed §5 bill of materials: nothing to sweep, so no knobs.
/// The empty params struct keeps the registry interface uniform.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct Params {}

pub fn run_with(_p: Params) -> Table {
    run()
}

pub fn run() -> Table {
    let mut t = Table::new(
        "F2",
        "Deployment economics (paper Figure 2 components, §5 cost report)",
        &[
            "deployment",
            "capex ($)",
            "radius (km)",
            "area (km2)",
            "$ per km2",
        ],
    );
    for d in [
        Deployment::DlteSite,
        Deployment::WifiSite,
        Deployment::TelecomMacro,
    ] {
        t.row(vec![
            format!("{d:?}"),
            f2c(d.capex_usd()),
            f2c(d.coverage_radius_km()),
            f1c(d.coverage_area_km2()),
            f1c(d.usd_per_km2()),
        ]);
    }
    t.expect("dLTE site < $8000 (§5), covers a whole town; WiFi cheaper per site but far costlier per km²; telecom macro same physics at >10× capex");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn shapes_hold() {
        let t = super::run();
        let capex = t.column_f64(1);
        let per_km2 = t.column_f64(4);
        assert!(capex[0] < 8_000.0, "paper: under $8000");
        assert!(per_km2[0] < per_km2[1], "dLTE beats WiFi per km²");
        assert!(per_km2[0] < per_km2[2], "and beats telecom macro");
    }
}
