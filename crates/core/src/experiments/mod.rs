//! The experiment harness: one module per table/figure/claim of the paper.
//!
//! Each module exposes `run()` (with a params struct where sweeps are
//! configurable) returning a [`Table`] — the rows EXPERIMENTS.md records.
//! The `dlte-bench` crate wraps each in a binary (`cargo run -p dlte-bench
//! --release --bin e1_range`) and in Criterion benches.
//!
//! | id | paper anchor | claim |
//! |----|--------------|-------|
//! | T1 | Table 1      | dLTE uniquely occupies open-core × licensed |
//! | F1 | Figure 1     | local breakout vs EPC tunneling, peer vs mediated control |
//! | F2 | Figure 2, §5 | <$8000 site covers a town |
//! | E1 | §3.2         | LTE waveform out-ranges WiFi |
//! | E2 | §3.2         | SC-FDMA uplink buys range |
//! | E3 | §3.2         | HARQ lifts weak-signal throughput |
//! | E4 | §3.2         | timing advance enables long cells |
//! | E5 | §4.3         | fair-share ≈ WiFi fairness, better efficiency |
//! | E6 | §4.3         | registry kills hidden terminals |
//! | E7 | §4.3         | cooperative > fair-share > independent |
//! | E8 | §4.2         | endpoint mobility viable; breaks down at high churn |
//! | E9 | §4.1         | per-AP stubs scale; shared EPC saturates |
//! | E10| §2.1/§4.2    | breakout removes path inflation |
//! | E11| §4.3         | X2 is low-bandwidth, degrades gracefully |
//! | E12| §4.2         | 0-RTT/migration/FEC make churn survivable |
//! | E13| §7           | AP mesh bounds outages when a backhaul dies |

pub mod e1_range;
pub mod e2_uplink;
pub mod e3_harq;
pub mod e4_timing_advance;
pub mod e5_fairness;
pub mod e6_hidden_terminal;
pub mod e7_cooperative;
pub mod e8_mobility;
pub mod e9_core_scaling;
pub mod e10_breakout;
pub mod e11_x2_overhead;
pub mod e12_transport_ablation;
pub mod e13_backhaul_resilience;
pub mod f1_architecture;
pub mod f2_deployment;
pub mod t1_design_space;

use serde::{Deserialize, Serialize};
use std::fmt;

/// A rendered experiment result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table {
    pub id: String,
    pub title: String,
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// One-line statement of the shape the paper predicts (checked by the
    /// integration tests).
    pub expectation: String,
}

impl Table {
    pub fn new(id: &'static str, title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            id: id.into(),
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            expectation: String::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.header.len(), "row width");
        self.rows.push(cells);
    }

    pub fn expect(&mut self, s: impl Into<String>) {
        self.expectation = s.into();
    }

    /// Column values parsed as f64 (NaN for non-numeric cells).
    pub fn column_f64(&self, idx: usize) -> Vec<f64> {
        self.rows
            .iter()
            .map(|r| r[idx].trim().parse::<f64>().unwrap_or(f64::NAN))
            .collect()
    }

    /// JSON for mechanical consumption.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("table serializes")
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}] {}", self.id, self.title)?;
        let widths: Vec<usize> = self
            .header
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain([h.len()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let line = |cells: &[String], f: &mut fmt::Formatter<'_>| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                write!(f, "{:>w$}  ", c, w = widths[i])?;
            }
            writeln!(f)
        };
        line(&self.header, f)?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        )?;
        for r in &self.rows {
            line(r, f)?;
        }
        if !self.expectation.is_empty() {
            writeln!(f, "expected shape: {}", self.expectation)?;
        }
        Ok(())
    }
}

/// Format helpers.
pub(crate) fn mbps(bps: f64) -> String {
    format!("{:.2}", bps / 1e6)
}

pub(crate) fn f2c(x: f64) -> String {
    format!("{x:.2}")
}

pub(crate) fn f1c(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_parses() {
        let mut t = Table::new("T0", "demo", &["x", "y"]);
        t.row(vec!["1".into(), "2.5".into()]);
        t.row(vec!["2".into(), "5.0".into()]);
        t.expect("y doubles");
        let s = t.to_string();
        assert!(s.contains("demo") && s.contains("2.5") && s.contains("y doubles"));
        assert_eq!(t.column_f64(1), vec![2.5, 5.0]);
        assert!(t.to_json().contains("\"id\": \"T0\""));
    }
}
