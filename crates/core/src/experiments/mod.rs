//! The experiment harness: one module per table/figure/claim of the paper.
//!
//! Each module exposes a serde-able `Params` struct, `run_with(Params)` and a
//! default-params `run()`, returning a [`Table`] — the rows EXPERIMENTS.md
//! records. The [`registry`] module unifies all nineteen behind the
//! [`registry::Experiment`] trait so the `dlte-run` binary (in `dlte-bench`)
//! can resolve any experiment by id, override its parameters as JSON, and
//! attach run instrumentation ([`dlte_sim::RunReport`]) to the result.
//!
//! | id | paper anchor | claim |
//! |----|--------------|-------|
//! | T1 | Table 1      | dLTE uniquely occupies open-core × licensed |
//! | F1 | Figure 1     | local breakout vs EPC tunneling, peer vs mediated control |
//! | F2 | Figure 2, §5 | <$8000 site covers a town |
//! | E1 | §3.2         | LTE waveform out-ranges WiFi |
//! | E2 | §3.2         | SC-FDMA uplink buys range |
//! | E3 | §3.2         | HARQ lifts weak-signal throughput |
//! | E4 | §3.2         | timing advance enables long cells |
//! | E5 | §4.3         | fair-share ≈ WiFi fairness, better efficiency |
//! | E6 | §4.3         | registry kills hidden terminals |
//! | E7 | §4.3         | cooperative > fair-share > independent |
//! | E8 | §4.2         | endpoint mobility viable; breaks down at high churn |
//! | E9 | §4.1         | per-AP stubs scale; shared EPC saturates |
//! | E10| §2.1/§4.2    | breakout removes path inflation |
//! | E11| §4.3         | X2 is low-bandwidth, degrades gracefully |
//! | E12| §4.2         | 0-RTT/migration/FEC make churn survivable |
//! | E13| §7           | AP mesh bounds outages when a backhaul dies |
//! | E14| §2.2/§4.2    | chaos sweep: local core rides out a backhaul outage; EPC loses all |
//! | E15| ROADMAP §perf| fabric work scales with topology size; timing in `BENCH_fabric.json` |
//! | E16| ROADMAP §perf| sharded engine: shard-invariant counters, multi-core throughput in `BENCH_shard.json` |

pub mod e10_breakout;
pub mod e11_x2_overhead;
pub mod e12_transport_ablation;
pub mod e13_backhaul_resilience;
pub mod e14_chaos_sweep;
pub mod e15_fabric_scale;
pub mod e16_shard_scale;
pub mod e17_registry_chaos;
pub mod e18_handover_storm;
pub mod e1_range;
pub mod e2_uplink;
pub mod e3_harq;
pub mod e4_timing_advance;
pub mod e5_fairness;
pub mod e6_hidden_terminal;
pub mod e7_cooperative;
pub mod e8_mobility;
pub mod e9_core_scaling;
pub mod f1_architecture;
pub mod f2_deployment;
pub mod t1_design_space;

pub mod registry;

use dlte_sim::RunReport;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A structural error in a [`Table`] operation.
#[derive(Clone, Debug, PartialEq)]
pub enum TableError {
    /// A row's cell count does not match the header width.
    WidthMismatch {
        id: String,
        expected: usize,
        got: usize,
    },
    /// A column index past the header width was requested.
    NoSuchColumn {
        id: String,
        idx: usize,
        width: usize,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::WidthMismatch { id, expected, got } => {
                write!(f, "table {id}: row has {got} cells, header has {expected}")
            }
            TableError::NoSuchColumn { id, idx, width } => {
                write!(f, "table {id}: column {idx} out of range (width {width})")
            }
        }
    }
}

impl std::error::Error for TableError {}

/// A rendered experiment result.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Table {
    pub id: String,
    pub title: String,
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// One-line statement of the shape the paper predicts (checked by the
    /// integration tests).
    pub expectation: String,
    /// Run instrumentation attached by the runner (`None` when the table was
    /// produced outside a `dlte-run` invocation, or parsed from older JSON).
    #[serde(default)]
    pub meta: Option<RunReport>,
}

impl Table {
    pub fn new(id: &'static str, title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            id: id.into(),
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            expectation: String::new(),
            meta: None,
        }
    }

    /// Append a row, checking its width against the header. The check runs in
    /// release builds too — a misshapen row is a harness bug worth failing
    /// loudly on, not silently recording.
    pub fn try_row(&mut self, cells: Vec<String>) -> Result<(), TableError> {
        if cells.len() != self.header.len() {
            return Err(TableError::WidthMismatch {
                id: self.id.clone(),
                expected: self.header.len(),
                got: cells.len(),
            });
        }
        self.rows.push(cells);
        Ok(())
    }

    /// Append a row; panics (in every build profile) on width mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        if let Err(e) = self.try_row(cells) {
            panic!("{e}");
        }
    }

    pub fn expect(&mut self, s: impl Into<String>) {
        self.expectation = s.into();
    }

    /// Column values parsed as f64 (NaN for non-numeric or missing cells).
    /// Errors when the column index is outside the header.
    pub fn try_column_f64(&self, idx: usize) -> Result<Vec<f64>, TableError> {
        if idx >= self.header.len() {
            return Err(TableError::NoSuchColumn {
                id: self.id.clone(),
                idx,
                width: self.header.len(),
            });
        }
        Ok(self
            .rows
            .iter()
            .map(|r| {
                r.get(idx)
                    .and_then(|c| c.trim().parse::<f64>().ok())
                    .unwrap_or(f64::NAN)
            })
            .collect())
    }

    /// Column values parsed as f64 (NaN for non-numeric cells); panics with a
    /// clear message if the column does not exist.
    pub fn column_f64(&self, idx: usize) -> Vec<f64> {
        match self.try_column_f64(idx) {
            Ok(col) => col,
            Err(e) => panic!("{e}"),
        }
    }

    /// JSON for mechanical consumption.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("table serializes")
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}] {}", self.id, self.title)?;
        let widths: Vec<usize> = self
            .header
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r.get(i).map_or(0, String::len))
                    .chain([h.len()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let line = |cells: &[String], f: &mut fmt::Formatter<'_>| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                write!(f, "{:>w$}  ", c, w = widths[i])?;
            }
            writeln!(f)
        };
        line(&self.header, f)?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        )?;
        for r in &self.rows {
            line(r, f)?;
        }
        if !self.expectation.is_empty() {
            writeln!(f, "expected shape: {}", self.expectation)?;
        }
        Ok(())
    }
}

/// Format helpers.
pub(crate) fn mbps(bps: f64) -> String {
    format!("{:.2}", bps / 1e6)
}

pub(crate) fn f2c(x: f64) -> String {
    format!("{x:.2}")
}

pub(crate) fn f1c(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_parses() {
        let mut t = Table::new("T0", "demo", &["x", "y"]);
        t.row(vec!["1".into(), "2.5".into()]);
        t.row(vec!["2".into(), "5.0".into()]);
        t.expect("y doubles");
        let s = t.to_string();
        assert!(s.contains("demo") && s.contains("2.5") && s.contains("y doubles"));
        assert_eq!(t.column_f64(1), vec![2.5, 5.0]);
        assert!(t.to_json().contains("\"id\": \"T0\""));
    }

    #[test]
    fn misshapen_row_is_rejected_in_all_builds() {
        let mut t = Table::new("T0", "demo", &["x", "y"]);
        let err = t.try_row(vec!["only-one".into()]).unwrap_err();
        assert_eq!(
            err,
            TableError::WidthMismatch {
                id: "T0".into(),
                expected: 2,
                got: 1
            }
        );
        assert!(t.rows.is_empty(), "bad row must not be recorded");
    }

    #[test]
    #[should_panic(expected = "row has 3 cells, header has 2")]
    fn row_panics_on_width_mismatch() {
        let mut t = Table::new("T0", "demo", &["x", "y"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
    }

    #[test]
    fn column_out_of_range_is_a_clear_error() {
        let mut t = Table::new("T0", "demo", &["x"]);
        t.row(vec!["1".into()]);
        let err = t.try_column_f64(5).unwrap_err();
        assert_eq!(
            err,
            TableError::NoSuchColumn {
                id: "T0".into(),
                idx: 5,
                width: 1
            }
        );
        assert_eq!(err.to_string(), "table T0: column 5 out of range (width 1)");
    }

    #[test]
    fn meta_defaults_to_none_when_absent_from_json() {
        // JSON produced before the meta field existed must still parse.
        let json = r#"{"id":"T0","title":"demo","header":["x"],"rows":[["1"]],"expectation":""}"#;
        let back: Table = serde_json::from_str(json).expect("parses without meta");
        assert!(back.meta.is_none());
        assert_eq!(back.rows, vec![vec!["1".to_string()]]);
    }
}
