//! The experiment registry: every table/figure/claim behind one trait.
//!
//! Each experiment module keeps its own `Params` struct and `run_with`
//! function; this module wraps them in the object-safe [`Experiment`] trait
//! so a runner can enumerate all twenty-one, resolve one by id, override its
//! parameters as JSON, and attach instrumentation without knowing any
//! concrete type. [`registry`] returns them in canonical report order
//! (`t1`, `f1`, `f2`, `e1`..`e18`) — the order `dlte-run all` executes and
//! prints.

use super::Table;
use serde_json::Value;
use std::fmt;

/// Why an experiment invocation failed before (or instead of) producing a
/// table.
#[derive(Clone, Debug, PartialEq)]
pub enum ExperimentError {
    /// The requested id is not in the registry.
    UnknownExperiment { id: String },
    /// The params JSON did not deserialize into the experiment's `Params`.
    BadParams { id: &'static str, message: String },
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::UnknownExperiment { id } => {
                write!(f, "unknown experiment id {id:?} (try `dlte-run --list`)")
            }
            ExperimentError::BadParams { id, message } => {
                write!(f, "bad params for {id}: {message}")
            }
        }
    }
}

impl std::error::Error for ExperimentError {}

/// One registered experiment: stable id, human title, serde-able params.
pub trait Experiment: Sync {
    /// Stable lowercase id used on the command line (`e1`, `t1`, ...).
    fn id(&self) -> &'static str;

    /// One-line human title (matches the produced table's title).
    fn title(&self) -> &'static str;

    /// The experiment's default parameters, as JSON. Always an object;
    /// experiments without knobs return `{}`.
    fn default_params(&self) -> Value;

    /// Run with the given parameters. Fields absent from `params` fall back
    /// to their defaults; unknown fields are ignored.
    fn run(&self, params: &Value) -> Result<Table, ExperimentError>;

    /// Run like [`Experiment::run`], additionally measuring the invocation
    /// with [`dlte_sim::report::scope`] and attaching the resulting
    /// [`dlte_sim::RunReport`] as the table's `meta`. The metrics registry
    /// is drained around the run so the report's `drops` breakdown (and,
    /// under `--metrics`, the full snapshot) covers exactly this invocation.
    fn run_instrumented(&self, params: &Value) -> Result<Table, ExperimentError> {
        let _ = dlte_obs::metrics::take(); // isolate this run's counters
        let (result, mut report) = dlte_sim::report::scope(|| self.run(params));
        let snap = dlte_obs::metrics::take();
        result.map(|mut table| {
            report.drops = snap.prefixed("drops_");
            if dlte_obs::metrics::capture() {
                report.metrics = Some(snap);
            }
            table.meta = Some(report);
            table
        })
    }
}

macro_rules! experiments {
    ($($ty:ident => $module:ident, $id:literal, $title:literal;)*) => {
        $(
            #[doc = concat!("Registry entry for [`super::", stringify!($module), "`].")]
            pub struct $ty;

            impl Experiment for $ty {
                fn id(&self) -> &'static str {
                    $id
                }

                fn title(&self) -> &'static str {
                    $title
                }

                fn default_params(&self) -> Value {
                    serde_json::to_value(super::$module::Params::default())
                        .expect("default params serialize")
                }

                fn run(&self, params: &Value) -> Result<Table, ExperimentError> {
                    let params: super::$module::Params =
                        serde_json::from_value(params.clone()).map_err(|e| {
                            ExperimentError::BadParams { id: $id, message: e.to_string() }
                        })?;
                    Ok(super::$module::run_with(params))
                }
            }
        )*

        /// All experiments, in canonical report order.
        pub fn registry() -> &'static [&'static dyn Experiment] {
            &[$(&$ty,)*]
        }
    };
}

experiments! {
    T1Exp => t1_design_space, "t1", "Design space: core openness × radio regime (paper Table 1)";
    F1Exp => f1_architecture, "f1", "Architecture comparison on identical geometry (paper Figure 1)";
    F2Exp => f2_deployment, "f2", "Deployment economics (paper Figure 2 components, §5 cost report)";
    E1Exp => e1_range, "e1", "Downlink throughput vs distance, rural terrain (paper §3.2)";
    E2Exp => e2_uplink, "e2", "Uplink goodput vs distance: SC-FDMA vs OFDM handset (paper §3.2)";
    E3Exp => e3_harq, "e3", "Goodput vs SNR, HARQ on/off, 10 MHz (paper §3.2)";
    E4Exp => e4_timing_advance, "e4", "Uplink vs cell radius, timing advance on/off (paper §3.2)";
    E5Exp => e5_fairness, "e5", "N co-channel APs: dLTE fair-share vs WiFi DCF (paper §4.3)";
    E6Exp => e6_hidden_terminal, "e6", "Hidden-terminal topology: carrier sensing vs registry discovery (paper §4.3)";
    E7Exp => e7_cooperative, "e7", "Two-AP overlap: independent vs fair-share vs cooperative (paper §4.3)";
    E8Exp => e8_mobility, "e8", "Service gap per cell change vs dwell time (paper §4.2)";
    E9Exp => e9_core_scaling, "e9", "Simultaneous attach storm: shared EPC vs per-AP stubs (paper §4.1)";
    E10Exp => e10_breakout, "e10", "User RTT vs EPC distance: tunneled vs local breakout (paper §2.1/§4.2)";
    E11Exp => e11_x2_overhead, "e11", "X2 coordination overhead and backhaul-budget degradation (paper §4.3)";
    E12Exp => e12_transport_ablation, "e12", "Transport feature ablation under AP churn (paper §4.2)";
    E13Exp => e13_backhaul_resilience, "e13", "Backhaul failure: standalone APs vs §7 mesh redundancy";
    E14Exp => e14_chaos_sweep, "e14", "Chaos sweep: backhaul outage + core crash, centralized EPC vs dLTE local core";
    E15Exp => e15_fabric_scale, "e15", "Fabric scale sweep: dispatch and forwarding work vs topology size, centralized EPC vs dLTE";
    E16Exp => e16_shard_scale, "e16", "Shard scale sweep: one dLTE deployment on N engine shards, counters shard-invariant";
    E17Exp => e17_registry_chaos, "e17", "Registry chaos: identical fault schedule vs centralized / federated / replicated governance";
    E18Exp => e18_handover_storm, "e18", "Handover storm under chaos: population availability and p99 gap vs dwell, three architectures";
}

/// Look an experiment up by id, case-insensitively (`e1` and `E1` both
/// resolve).
pub fn find(id: &str) -> Result<&'static dyn Experiment, ExperimentError> {
    registry()
        .iter()
        .copied()
        .find(|e| e.id().eq_ignore_ascii_case(id))
        .ok_or_else(|| ExperimentError::UnknownExperiment { id: id.to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_twenty_one_in_report_order() {
        let ids: Vec<&str> = registry().iter().map(|e| e.id()).collect();
        assert_eq!(
            ids,
            vec![
                "t1", "f1", "f2", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10",
                "e11", "e12", "e13", "e14", "e15", "e16", "e17", "e18",
            ]
        );
    }

    #[test]
    fn find_is_case_insensitive_and_rejects_unknown_ids() {
        assert_eq!(find("E5").unwrap().id(), "e5");
        assert_eq!(find("e5").unwrap().id(), "e5");
        match find("e99") {
            Err(err) => {
                assert_eq!(err, ExperimentError::UnknownExperiment { id: "e99".into() })
            }
            Ok(exp) => panic!("e99 unexpectedly resolved to {}", exp.id()),
        }
    }

    #[test]
    fn default_params_are_objects() {
        for exp in registry() {
            let params = exp.default_params();
            assert!(
                matches!(params, Value::Object(_)),
                "{} default params must be a JSON object, got {params:?}",
                exp.id()
            );
        }
    }

    #[test]
    fn bad_params_report_the_experiment_id() {
        let exp = find("e1").unwrap();
        let bad = serde_json::from_str::<Value>(r#"{"distances_km": "not-an-array"}"#).unwrap();
        let err = exp.run(&bad).unwrap_err();
        match err {
            ExperimentError::BadParams { id, .. } => assert_eq!(id, "e1"),
            other => panic!("expected BadParams, got {other:?}"),
        }
    }

    #[test]
    fn run_instrumented_attaches_meta() {
        // t1 is pure classification (no simulation) — cheap enough for a unit
        // test, and still must carry a report.
        let exp = find("t1").unwrap();
        let table = exp.run_instrumented(&exp.default_params()).unwrap();
        let meta = table.meta.expect("meta attached");
        assert!(meta.wall_ms >= 0.0);
        assert_eq!(table.id, "T1");
    }
}
