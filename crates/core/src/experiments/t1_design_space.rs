//! T1 — Table 1: the wireless design space.

use super::Table;
use crate::design_space::{quadrant, CoreOpenness, RadioRegime};
use serde::{Deserialize, Serialize};

/// T1 is a pure classification: nothing to sweep, so no knobs. The empty
/// params struct keeps the registry interface uniform.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct Params {}

pub fn run_with(_p: Params) -> Table {
    run()
}

pub fn run() -> Table {
    let mut t = Table::new(
        "T1",
        "Design space: core openness × radio regime (paper Table 1)",
        &["radio \\ core", "open core", "closed core"],
    );
    for radio in [RadioRegime::Unlicensed, RadioRegime::Licensed] {
        let label = match radio {
            RadioRegime::Unlicensed => "unlicensed",
            RadioRegime::Licensed => "licensed",
        };
        let cell = |core| {
            quadrant(core, radio)
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        t.row(vec![
            label.into(),
            cell(CoreOpenness::Open),
            cell(CoreOpenness::Closed),
        ]);
    }
    t.expect("dLTE alone in the open-core/licensed quadrant");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn reproduces_table_1() {
        let t = super::run();
        assert_eq!(t.rows.len(), 2);
        // The licensed/open cell is exactly dLTE.
        assert_eq!(t.rows[1][1], "dLTE");
        assert!(t.rows[0][1].contains("Legacy WiFi"));
        assert!(t.rows[1][2].contains("Telecom LTE"));
    }
}
