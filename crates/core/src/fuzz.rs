//! # Deterministic chaos fuzzing
//!
//! FoundationDB-style simulation testing: sweep seeds, and for each seed
//! deterministically derive a scenario (architecture, topology size) plus a
//! random [`FaultPlan`] ([`FaultPlan::chaos_mix`]), run it to quiescence,
//! and evaluate every `dlte-check` oracle against the evidence. On a
//! violation, greedily shrink the fault plan to a minimal still-failing
//! case ([`FaultPlan::shrink_candidates`]) and emit a serde-able
//! [`FuzzRepro`] that replays bit-for-bit.
//!
//! Everything downstream of the seed is deterministic: the scenario builder
//! is seeded with the case seed, the fault plan is plain data, and event
//! tracing is force-enabled for the whole run in both the sweep and the
//! replay path so the RNG draw sequence is identical. `run_case(case)`
//! therefore returns the same [`CaseReport`] on every invocation, which is
//! what makes greedy shrinking and `--repro` replay sound.
//!
//! Scenario envelope (kept deliberately narrow so every oracle is a hard
//! invariant, not a flaky heuristic):
//!
//! * UEs run a periodic [`UeApp::Pinger`] so user-plane traffic
//!   continuously exercises tunnels — stale-TEID teardown via GTP error
//!   indication needs packets in flight. The classic envelope keeps them
//!   static; [`FuzzCase::generate_mobility`] (`fuzz --mobility`) layers a
//!   seeded [`MovePlan`] under the faults, turning every case into a
//!   handover storm judged by the mobility oracles (serving exclusivity,
//!   session residency, bounded service gaps) on top of the usual set.
//! * Radio links are never fault targets: a UE that moves mid-case can
//!   always deliver its single-shot detach to the old AP, which is what
//!   makes serving exclusivity a hard invariant rather than a heuristic.
//! * Centralized faults may crash/pause the S-GW and P-GW (both implement
//!   crash/restart) and flap/degrade any backhaul link; path management
//!   (500 ms echo, 2 misses) gives the core a detection channel. The MME is
//!   never crashed: it has no restart path, which would make every such run
//!   trivially (and uninterestingly) unrecoverable.
//! * dLTE faults are link-only: each AP's local core shares fate with the
//!   AP itself, which is the paper's §3 point — there is no remote core
//!   node whose crash strands sessions.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use crate::mobility::{ap_index_for, cell_index_for};
use crate::scenario::{DlteNet, DlteNetworkBuilder, DltePlan, KeyDistribution};
use dlte_check::{
    check_all, check_recovery, check_sessions, Bounds, CoreView, Evidence, MobilityEvidence,
    MobilityUeView, SpanView, UeView, Violation,
};
use dlte_epc::topology::{CentralizedLteBuilder, CentralizedLteNet, UePlan};
use dlte_epc::ue::{MobilityMode, UeApp, UeNode, UeState};
use dlte_epc::{MmeNode, PgwNode, SgwNode};
use dlte_faults::{ChaosTargets, FaultPlan, MovePlan};
use dlte_net::{in_flight_packets, Network, NodeId};
use dlte_obs::{set_tracing, take_records, tracing_enabled};
use dlte_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Event budget per `run_until` segment (same order as the experiments).
const MAX_EVENTS: u64 = 100_000_000;
/// Fuzz fault window: faults start in `[2, 8)` s (after initial attach)…
const FAULT_START_S: f64 = 2.0;
const FAULT_END_S: f64 = 8.0;
/// …and each is repaired within 2 s.
const MAX_DOWN_S: f64 = 2.0;
/// Upper bound on total case executions during one shrink (safety net; a
/// greedy pass over ≤ 4-spec plans stays far below this).
const MAX_SHRINK_RUNS: usize = 200;

/// Which architecture a fuzz case exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Arch {
    Centralized,
    Dlte,
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Arch::Centralized => write!(f, "centralized"),
            Arch::Dlte => write!(f, "dlte"),
        }
    }
}

/// One self-contained fuzz case: everything needed to rebuild the exact
/// simulation. Plain serde data — a repro file carries this verbatim.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FuzzCase {
    pub seed: u64,
    pub arch: Arch,
    /// eNBs (centralized) or APs (dLTE).
    pub n_cells: usize,
    pub ues_per_cell: usize,
    pub plan: FaultPlan,
    /// Mobility dimension (`fuzz --mobility`): a seeded population movement
    /// plan layered under the fault plan. Empty = static UEs (the classic
    /// envelope — and what pre-mobility repro files deserialize to).
    #[serde(default)]
    pub moves: MovePlan,
    /// dLTE: APs query the wide-area key directory on first sight of an
    /// IMSI instead of pre-syncing (mobility cases exercise that path).
    #[serde(default)]
    pub remote_keys: bool,
    /// dLTE: fetch roaming subscriber contexts from X2 peers before
    /// falling back to the directory.
    #[serde(default)]
    pub x2_fetch: bool,
}

/// What one execution of a case produced.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CaseReport {
    pub violations: Vec<Violation>,
    /// First settle step at which every oracle held and every UE was
    /// attached (`None`: never within the recovery bound).
    pub recovered_at_s: Option<f64>,
    /// Simulated seconds at the final snapshot.
    pub elapsed_s: f64,
}

/// Minimal failing repro, written as `fuzz_repro_<seed>.json` and replayed
/// with `dlte-run fuzz --repro FILE`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FuzzRepro {
    /// Seed of the original sweep case (the file name key).
    pub seed: u64,
    /// The *minimized* case (same seed, shrunk fault plan).
    pub case: FuzzCase,
    /// Oracle violations the minimized case still triggers.
    pub violations: Vec<Violation>,
    pub recovered_at_s: Option<f64>,
    /// How many case executions shrinking took.
    pub shrink_runs: usize,
}

impl FuzzCase {
    /// Derive the whole case from a seed. Deterministic: the same seed
    /// always yields the same scenario and fault plan.
    pub fn generate(seed: u64) -> FuzzCase {
        let mut rng = SimRng::new(seed).fork("fuzz-case");
        let arch = if rng.chance(0.5) {
            Arch::Centralized
        } else {
            Arch::Dlte
        };
        // dLTE needs ≥ 2 APs for the architecture comparison to be
        // non-degenerate; one eNB is a perfectly good LTE cell.
        let n_cells = match arch {
            Arch::Centralized => 1 + rng.index(2),
            Arch::Dlte => 2 + rng.index(2),
        };
        let ues_per_cell = 1 + rng.index(2);
        let n_faults = 1 + rng.index(3);
        let targets = chaos_targets(arch, seed, n_cells, ues_per_cell);
        let plan = FaultPlan::chaos_mix(
            seed,
            &targets,
            n_faults,
            FAULT_START_S,
            FAULT_END_S,
            MAX_DOWN_S,
        );
        FuzzCase {
            seed,
            arch,
            n_cells,
            ues_per_cell,
            plan,
            moves: MovePlan::default(),
            remote_keys: false,
            x2_fetch: false,
        }
    }

    /// Derive a *mobility* case from a seed: same chaos envelope, plus a
    /// seeded commuter-mix movement plan in the fault window and (for dLTE)
    /// coin flips over remote key lookup and the X2 context fetch, so the
    /// sweep covers all three handover paths (local re-attach, directory
    /// re-attach, X2 fetch) against the same fault vocabulary.
    pub fn generate_mobility(seed: u64) -> FuzzCase {
        let mut rng = SimRng::new(seed).fork("fuzz-mobility-case");
        let arch = if rng.chance(0.5) {
            Arch::Centralized
        } else {
            Arch::Dlte
        };
        // Movers need somewhere to go: ≥ 2 cells in both arms.
        let n_cells = 2 + rng.index(2);
        let ues_per_cell = 1 + rng.index(2);
        let remote_keys = arch == Arch::Dlte && rng.chance(0.5);
        let x2_fetch = remote_keys && rng.chance(0.5);
        let n_faults = 1 + rng.index(3);
        let dwell_min_s = rng.uniform(0.8, 1.5);
        let dwell_max_s = dwell_min_s + rng.uniform(0.2, 1.0);
        let moves = MovePlan::commuter_mix(
            seed,
            n_cells * ues_per_cell,
            n_cells,
            dwell_min_s,
            dwell_max_s,
            FAULT_START_S,
            FAULT_END_S,
        );
        let mut case = FuzzCase {
            seed,
            arch,
            n_cells,
            ues_per_cell,
            plan: FaultPlan::new(seed),
            moves,
            remote_keys,
            x2_fetch,
        };
        // Targets must come from the *case's* topology: the remote
        // directory adds a node and link ahead of the APs, shifting ids.
        let targets = case_targets(&case);
        case.plan = FaultPlan::chaos_mix(
            seed,
            &targets,
            n_faults,
            FAULT_START_S,
            FAULT_END_S,
            MAX_DOWN_S,
        );
        case
    }
}

/// Node/link ids are assigned in build order, so they are a deterministic
/// function of the scenario shape — build a throwaway topology *with the
/// case's exact configuration* to read the fault-injection handles (the
/// remote key directory, for instance, is built ahead of the APs and
/// shifts every later id).
pub fn case_targets(case: &FuzzCase) -> ChaosTargets {
    match case.arch {
        Arch::Centralized => {
            let net = build_centralized_case(case);
            let mut links = net.enb_backhaul.clone();
            links.push(net.l_agg_epc);
            ChaosTargets {
                links,
                crashable: vec![net.sgw, net.pgw],
            }
        }
        Arch::Dlte => {
            let net = build_dlte_case(case);
            ChaosTargets {
                links: net.ap_backhaul.clone(),
                crashable: Vec::new(),
            }
        }
    }
}

/// [`case_targets`] for the classic static envelope. Public so property
/// tests can aim arbitrary plans at valid targets.
pub fn chaos_targets(arch: Arch, seed: u64, n_cells: usize, ues_per_cell: usize) -> ChaosTargets {
    case_targets(&FuzzCase {
        seed,
        arch,
        n_cells,
        ues_per_cell,
        plan: FaultPlan::new(seed),
        moves: MovePlan::default(),
        remote_keys: false,
        x2_fetch: false,
    })
}

fn pinger(dst: dlte_net::Addr) -> UeApp {
    UeApp::Pinger {
        dst,
        interval: SimDuration::from_millis(200),
        probe_bytes: 64,
    }
}

/// Map a population move plan onto one UE's cell list (home cell first).
fn schedule_of(moves: &MovePlan, ue: usize, home: usize, n_cells: usize) -> Vec<(SimTime, usize)> {
    moves
        .schedule_for(ue)
        .into_iter()
        .filter(|&(_, ap)| ap < n_cells)
        .map(|(t, ap)| (t, cell_index_for(home, ap, n_cells)))
        .collect()
}

fn build_centralized_case(case: &FuzzCase) -> CentralizedLteNet {
    let mut b = CentralizedLteBuilder::new(case.n_cells, case.ues_per_cell);
    b.seed = case.seed;
    b.path_mgmt = Some((SimDuration::from_millis(500), 2));
    b.wire_all_cells = !case.moves.is_empty();
    let moves = case.moves.clone();
    let (n_cells, ues_per_cell) = (case.n_cells, case.ues_per_cell);
    b.with_ue_plan(move |i| UePlan {
        app: pinger(CentralizedLteBuilder::ott_addr()),
        mode: MobilityMode::PathSwitch,
        schedule: schedule_of(&moves, i, i / ues_per_cell, n_cells),
    })
    .build()
}

fn build_dlte_case(case: &FuzzCase) -> DlteNet {
    let mut b = DlteNetworkBuilder::new(case.n_cells, case.ues_per_cell);
    b.seed = case.seed;
    if case.remote_keys {
        b.keys = KeyDistribution::RemoteDirectory;
    }
    b.x2_context_fetch = case.x2_fetch;
    let b = b.with_ue_plan(|_| DltePlan {
        app: pinger(DlteNetworkBuilder::ott_addr()),
        ..DltePlan::default()
    });
    if case.moves.is_empty() {
        b.build()
    } else {
        b.with_move_plan(case.moves.clone()).build()
    }
}

fn build_case(case: &FuzzCase) -> Built {
    match case.arch {
        Arch::Centralized => Built::Cent(build_centralized_case(case)),
        Arch::Dlte => Built::Dl(build_dlte_case(case)),
    }
}

/// The two builds behind one settle-loop driver.
enum Built {
    Cent(CentralizedLteNet),
    Dl(DlteNet),
}

impl Built {
    /// Schedule the fault plan. The dLTE arm may be sharded (global
    /// `--shards`), so its faults are broadcast; the centralized twin
    /// always runs on one engine.
    fn inject(&mut self, plan: &FaultPlan) {
        match self {
            Built::Cent(n) => plan.inject(&mut n.sim),
            Built::Dl(n) => plan.inject_sharded(&mut n.sim),
        }
    }

    fn run_until(&mut self, t: SimTime, max_events: u64) {
        match self {
            Built::Cent(n) => {
                n.sim.run_until(t, max_events);
            }
            Built::Dl(n) => {
                n.sim.run_until(t, max_events);
            }
        }
    }

    fn evidence(&self) -> Evidence {
        match self {
            Built::Cent(n) => {
                let w = n.sim.world();
                Evidence {
                    elapsed_s: n.sim.now().as_secs_f64(),
                    net: w.audit(in_flight_packets(n.sim.queue())),
                    ues: ue_views(w, &n.ues),
                    core: CoreView::Centralized {
                        mme: w.handler_as::<MmeNode>(n.mme).expect("mme typed").audit(),
                        sgw: w.handler_as::<SgwNode>(n.sgw).expect("sgw typed").audit(),
                        pgw: w.handler_as::<PgwNode>(n.pgw).expect("pgw typed").audit(),
                    },
                    mobility: None,
                }
            }
            Built::Dl(n) => Evidence {
                elapsed_s: n.sim.now().as_secs_f64(),
                net: n.sim.audit_merged(),
                ues: n
                    .ues
                    .iter()
                    .map(|&id| ue_view(n.sim.handler_as::<UeNode>(id).expect("ue typed")))
                    .collect(),
                core: CoreView::Dlte {
                    cores: n
                        .aps
                        .iter()
                        .map(|&ap| {
                            n.sim
                                .handler_as::<crate::DlteApNode>(ap)
                                .expect("ap typed")
                                .core
                                .audit()
                        })
                        .collect(),
                },
                mobility: None,
            },
        }
    }
}

/// Mobility evidence for a moving-UE case: per-core session spans (dLTE —
/// the centralized EPC holds sessions centrally, so span-based oracles
/// don't apply) plus per-UE serving state and measured service gaps.
fn mobility_evidence(built: &Built, case: &FuzzCase) -> MobilityEvidence {
    let mut ev = MobilityEvidence {
        // Gap budget: the whole fault window is the worst admissible dwell.
        max_dwell_s: FAULT_END_S - FAULT_START_S,
        ..MobilityEvidence::default()
    };
    match built {
        Built::Cent(n) => {
            let w = n.sim.world();
            for &id in &n.ues {
                let u = w.handler_as::<UeNode>(id).expect("ue typed");
                ev.ues.push(MobilityUeView {
                    imsi: u.imsi,
                    attached: u.state == UeState::Attached,
                    serving_core: None,
                    moves: u.stats.cell_moves,
                    gaps_ms: u.stats.handover_gap_ms.values().to_vec(),
                });
            }
        }
        Built::Dl(n) => {
            for (k, &ap) in n.aps.iter().enumerate() {
                let core = &n
                    .sim
                    .handler_as::<crate::DlteApNode>(ap)
                    .expect("ap typed")
                    .core;
                for s in core.session_spans() {
                    ev.spans.push(SpanView {
                        core: k,
                        imsi: s.imsi,
                        start_ns: s.start_ns,
                        end_ns: s.end_ns,
                    });
                }
            }
            for (i, &id) in n.ues.iter().enumerate() {
                let u = n.sim.handler_as::<UeNode>(id).expect("ue typed");
                let home = i / case.ues_per_cell;
                ev.ues.push(MobilityUeView {
                    imsi: u.imsi,
                    attached: u.state == UeState::Attached,
                    serving_core: Some(ap_index_for(home, u.current_cell_index(), case.n_cells)),
                    moves: u.stats.cell_moves,
                    gaps_ms: u.stats.handover_gap_ms.values().to_vec(),
                });
            }
        }
    }
    ev
}

fn ue_view(u: &UeNode) -> UeView {
    UeView {
        imsi: u.imsi,
        attached: u.state == UeState::Attached,
        addr: u.addr,
        attach_retries: u.stats.attach_retries,
        service_request_retries: u.stats.service_request_retries,
    }
}

fn ue_views(w: &Network, ues: &[NodeId]) -> Vec<UeView> {
    ues.iter()
        .map(|&id| ue_view(w.handler_as::<UeNode>(id).expect("ue typed")))
        .collect()
}

/// Execute one case end to end and evaluate every oracle.
///
/// Drives the sim to the last fault transition, then settles in 1 s steps
/// for up to [`Bounds::recovery_bound_s`], re-checking the state oracles at
/// each step — in-flight control messages (a NAS attach mid-handshake, a
/// GTP response on the wire) are legitimate at a random instant, so state
/// consistency is demanded at quiescence, not mid-step. The first all-green
/// step with every UE attached is the recovery time; the stream/counter
/// oracles and the recovery bound are then judged on the final snapshot.
pub fn run_case(case: &FuzzCase) -> CaseReport {
    let mut built = build_case(case);
    let bounds = Bounds::default();

    // Tracing must be on for the whole run, in sweep and replay alike, so
    // the RNG draw sequence (and thus the trajectory) is identical.
    let was_tracing = tracing_enabled();
    set_tracing(true);
    let _ = take_records(); // discard anything a previous case buffered

    built.inject(&case.plan);
    let t_last = case.plan.last_fault_time().max(case.moves.last_move_time());
    built.run_until(t_last, MAX_EVENTS);

    let mut recovered_at_s = None;
    let mut ev = built.evidence();
    for k in 1..=(bounds.recovery_bound_s.ceil() as u64) {
        let t = t_last + SimDuration::from_secs_f64(k as f64);
        built.run_until(t, MAX_EVENTS);
        ev = built.evidence();
        if check_sessions(&ev).is_empty() && ev.ues.iter().all(|u| u.attached) {
            recovered_at_s = Some(t.as_secs_f64());
            break;
        }
    }

    let records = take_records();
    set_tracing(was_tracing);

    if !case.moves.is_empty() {
        ev.mobility = Some(mobility_evidence(&built, case));
    }
    let mut violations = check_all(&ev, &records, &bounds);
    violations.extend(check_recovery(
        recovered_at_s,
        t_last.as_secs_f64(),
        &bounds,
    ));
    CaseReport {
        violations,
        recovered_at_s,
        elapsed_s: ev.elapsed_s,
    }
}

/// Strictly-simpler variants of a case, in a deterministic order: every
/// fault-plan shrink first (they tend to carry the causal weight), then
/// every move-plan shrink. Each candidate changes exactly one dimension.
fn case_candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out: Vec<FuzzCase> = case
        .plan
        .shrink_candidates()
        .into_iter()
        .map(|plan| FuzzCase {
            plan,
            ..case.clone()
        })
        .collect();
    out.extend(
        case.moves
            .shrink_candidates()
            .into_iter()
            .map(|moves| FuzzCase {
                moves,
                ..case.clone()
            }),
    );
    out
}

/// Greedily minimize a failing case: repeatedly adopt the first
/// strictly-simpler fault or move plan that still trips at least one of
/// the original oracles. Returns the minimized case, its report, and the
/// number of executions spent. Terminates because every candidate is
/// strictly simpler (fewer specs/moves or a floored parameter reduction)
/// and a run budget caps pathological plans.
pub fn shrink_case(case: &FuzzCase, report: &CaseReport) -> (FuzzCase, CaseReport, usize) {
    let original_oracles: HashSet<&str> = report
        .violations
        .iter()
        .map(|v| v.oracle.as_str())
        .collect();
    let still_failing = |r: &CaseReport| {
        r.violations
            .iter()
            .any(|v| original_oracles.contains(v.oracle.as_str()))
    };
    let mut best = case.clone();
    let mut best_report = report.clone();
    let mut runs = 0usize;
    'outer: loop {
        for cand in case_candidates(&best) {
            if runs >= MAX_SHRINK_RUNS {
                break 'outer;
            }
            let r = run_case(&cand);
            runs += 1;
            if still_failing(&r) {
                best = cand;
                best_report = r;
                continue 'outer;
            }
        }
        break;
    }
    (best, best_report, runs)
}

/// Fuzz one seed in the static envelope: generate, run, and on violation
/// shrink to a repro. `None` means every oracle held.
pub fn fuzz_seed(seed: u64) -> Option<FuzzRepro> {
    fuzz_seed_with(seed, false)
}

/// Fuzz one seed; `mobility` switches to the moving-UE envelope
/// ([`FuzzCase::generate_mobility`], `fuzz --mobility`).
pub fn fuzz_seed_with(seed: u64, mobility: bool) -> Option<FuzzRepro> {
    let case = if mobility {
        FuzzCase::generate_mobility(seed)
    } else {
        FuzzCase::generate(seed)
    };
    let report = run_case(&case);
    if report.violations.is_empty() {
        return None;
    }
    let (min_case, min_report, shrink_runs) = shrink_case(&case, &report);
    Some(FuzzRepro {
        seed,
        case: min_case,
        violations: min_report.violations,
        recovered_at_s: min_report.recovered_at_s,
        shrink_runs,
    })
}

/// Write a repro next to the other run artifacts; returns the path.
pub fn write_repro(repro: &FuzzRepro, dir: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("fuzz_repro_{}.json", repro.seed));
    let json = serde_json::to_string_pretty(repro).expect("repro serializes");
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Load a repro file and re-run its minimized case bit-for-bit.
pub fn replay_repro(path: &Path) -> Result<(FuzzRepro, CaseReport), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
    let repro: FuzzRepro =
        serde_json::from_str(&text).map_err(|e| format!("parse {path:?}: {e}"))?;
    let report = run_case(&repro.case);
    Ok((repro, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlte_faults::FaultSpec;

    fn sum_pongs(w: &Network, ues: &[NodeId]) -> u64 {
        ues.iter()
            .map(|&id| w.handler_as::<UeNode>(id).unwrap().stats.pongs)
            .sum()
    }

    #[test]
    fn generation_is_deterministic_and_nonempty() {
        let a = FuzzCase::generate(7);
        let b = FuzzCase::generate(7);
        assert_eq!(a, b);
        assert!(!a.plan.faults.is_empty());
        assert_ne!(a, FuzzCase::generate(8));
    }

    #[test]
    fn run_case_is_deterministic() {
        let case = FuzzCase::generate(3);
        let a = run_case(&case);
        let b = run_case(&case);
        assert_eq!(a, b);
    }

    #[test]
    fn healthy_seeds_sweep_green_and_actually_converge() {
        for seed in 0..6 {
            let case = FuzzCase::generate(seed);
            let report = run_case(&case);
            assert!(
                report.violations.is_empty(),
                "seed {seed} tripped oracles: {:#?}",
                report.violations
            );
            // A green case must be green for the right reason: the network
            // genuinely re-converged, with traffic having flowed.
            assert!(
                report.recovered_at_s.is_some(),
                "seed {seed} never recovered"
            );
            let mut built = build_case(&case);
            built.inject(&case.plan);
            let horizon = case.plan.last_fault_time()
                + SimDuration::from_secs_f64(report.recovered_at_s.unwrap());
            built.run_until(horizon, MAX_EVENTS);
            let ev = built.evidence();
            let pongs: u64 = match &built {
                Built::Cent(n) => sum_pongs(n.sim.world(), &n.ues),
                Built::Dl(n) => n
                    .ues
                    .iter()
                    .map(|&id| n.sim.handler_as::<UeNode>(id).unwrap().stats.pongs)
                    .sum(),
            };
            assert!(pongs > 0, "seed {seed}: no user traffic ever flowed");
            assert!(
                ev.net.fabric.accepted > 0,
                "seed {seed}: fabric carried no packets"
            );
            eprintln!(
                "seed {seed}: {} {}x{} faults={} recovered_at={:?} elapsed={:.1}s",
                case.arch,
                case.n_cells,
                case.ues_per_cell,
                case.plan.faults.len(),
                report.recovered_at_s,
                report.elapsed_s
            );
        }
    }

    #[test]
    fn mobility_generation_is_deterministic_and_moves_ues() {
        let a = FuzzCase::generate_mobility(11);
        let b = FuzzCase::generate_mobility(11);
        assert_eq!(a, b);
        assert!(!a.plan.faults.is_empty());
        assert!(!a.moves.is_empty(), "mobility cases must actually move UEs");
        for m in &a.moves.moves {
            assert!(m.ap < a.n_cells && m.ue < a.n_cells * a.ues_per_cell);
            assert!((FAULT_START_S..FAULT_END_S).contains(&m.at_s));
        }
        assert_ne!(a, FuzzCase::generate_mobility(12));
        // A pre-mobility case file (no moves/remote_keys/x2_fetch fields)
        // still parses, as the static envelope.
        let legacy = serde_json::to_string(&FuzzCase::generate(11)).unwrap();
        let parsed: FuzzCase = serde_json::from_str(&legacy).unwrap();
        assert!(parsed.moves.is_empty());
        assert!(!parsed.x2_fetch);
    }

    #[test]
    fn healthy_mobility_seeds_sweep_green() {
        for seed in 0..4 {
            let case = FuzzCase::generate_mobility(seed);
            let report = run_case(&case);
            assert!(
                report.violations.is_empty(),
                "mobility seed {seed} ({} {}x{} moves={} rk={} x2={}) tripped: {:#?}",
                case.arch,
                case.n_cells,
                case.ues_per_cell,
                case.moves.moves.len(),
                case.remote_keys,
                case.x2_fetch,
                report.violations
            );
            assert!(
                report.recovered_at_s.is_some(),
                "mobility seed {seed} never recovered"
            );
            eprintln!(
                "mobility seed {seed}: {} {}x{} faults={} moves={} recovered_at={:?}",
                case.arch,
                case.n_cells,
                case.ues_per_cell,
                case.plan.faults.len(),
                case.moves.moves.len(),
                report.recovered_at_s
            );
        }
    }

    #[test]
    fn shrink_candidates_cover_both_plan_dimensions() {
        let mut case = FuzzCase::generate_mobility(3);
        let n_plan = case.plan.shrink_candidates().len();
        let n_moves = case.moves.shrink_candidates().len();
        assert!(n_moves > 0);
        let cands = case_candidates(&case);
        assert_eq!(cands.len(), n_plan + n_moves);
        // The move-plan candidates keep the fault plan intact, and vice
        // versa — each candidate is simpler in exactly one dimension.
        assert!(cands[..n_plan].iter().all(|c| c.moves == case.moves));
        assert!(cands[n_plan..].iter().all(|c| c.plan == case.plan));
        // A static case only shrinks the fault plan.
        case.moves = MovePlan::default();
        assert_eq!(
            case_candidates(&case).len(),
            case.plan.shrink_candidates().len()
        );
    }

    #[test]
    fn permanent_sgw_crash_is_caught_and_shrinks_to_one_spec() {
        // Build a deliberately unrecoverable case: the S-GW dies and never
        // restarts, on top of a benign link flap that shrinking must strip.
        let base = FuzzCase::generate(0);
        let cent_seed = match base.arch {
            Arch::Centralized => 0,
            Arch::Dlte => (0..)
                .find(|&s| FuzzCase::generate(s).arch == Arch::Centralized)
                .unwrap(),
        };
        let mut case = FuzzCase::generate(cent_seed);
        let targets = chaos_targets(case.arch, case.seed, case.n_cells, case.ues_per_cell);
        case.plan = FaultPlan::new(case.seed)
            .with(FaultSpec::LinkFlap {
                link: targets.links[0],
                at_s: 2.5,
                down_s: 0.3,
                times: 1,
                gap_s: 0.0,
            })
            .with(FaultSpec::NodeCrash {
                node: targets.crashable[0],
                at_s: 3.0,
                restart_after_s: None,
            });
        let report = run_case(&case);
        assert!(
            report.violations.iter().any(|v| v.oracle == "recovery"),
            "expected a recovery violation, got {:#?}",
            report.violations
        );
        let (min_case, min_report, runs) = shrink_case(&case, &report);
        assert!(runs > 0);
        assert_eq!(
            min_case.plan.faults.len(),
            1,
            "the benign flap should shrink away: {:#?}",
            min_case.plan.faults
        );
        assert!(matches!(
            min_case.plan.faults[0],
            FaultSpec::NodeCrash {
                restart_after_s: None,
                ..
            }
        ));
        assert!(min_report.violations.iter().any(|v| v.oracle == "recovery"));
        // Replay of the minimized case is bit-for-bit: same report again.
        assert_eq!(run_case(&min_case), min_report);
    }

    /// Found by the oracle proptest sweep: an S-GW crash/restart while a
    /// loss burst degrades the eNB backhaul. The MME's post-failure
    /// `NetworkDetach` order was lost in the burst, leaving the UE
    /// believing it was attached (and a P-GW session stranded) forever.
    /// Fixed by re-sending the detach order from the MME path tick until
    /// the UE re-appears; this pins the fix.
    #[test]
    fn lost_detach_order_under_loss_burst_recovers() {
        let targets = chaos_targets(Arch::Centralized, 397_424, 1, 2);
        let case = FuzzCase {
            seed: 397_424,
            arch: Arch::Centralized,
            n_cells: 1,
            ues_per_cell: 2,
            plan: FaultPlan::new(397_424)
                .with(FaultSpec::NodeCrash {
                    node: targets.crashable[0], // the S-GW
                    at_s: 6.287_749_210_955_282,
                    restart_after_s: Some(1.468_965_880_614_459_9),
                })
                .with(FaultSpec::LinkFlap {
                    link: targets.links[1], // aggregation ↔ EPC trunk
                    at_s: 5.305_519_394_647_299,
                    down_s: 1.051_780_482_954_840_7,
                    times: 1,
                    gap_s: 0.0,
                })
                .with(FaultSpec::LossBurst {
                    link: targets.links[0], // the eNB's backhaul
                    at_s: 6.260_627_196_901_638_5,
                    for_s: 1.986_020_044_616_848_3,
                    loss: 0.380_595_506_377_267_5,
                }),
            moves: MovePlan::default(),
            remote_keys: false,
            x2_fetch: false,
        };
        let report = run_case(&case);
        assert!(
            report.violations.is_empty(),
            "lost-detach case regressed: {:#?}",
            report.violations
        );
        assert!(report.recovered_at_s.is_some());
    }

    /// Found by `fuzz --mobility` (seed 164, shrunk to one fault): a 33 ms
    /// S-GW pause landing exactly on a UE's second path switch swallowed
    /// the ModifyBearerRequest, and the MME context wedged in `Switching`
    /// forever — nothing retransmitted the path-switch leg, so the UE
    /// believed it was attached while the S-GW still pointed downlink at
    /// the old eNB. Fixed by re-sending the ModifyBearerRequest from the
    /// MME path tick for contexts stuck in `Switching`; this pins the fix.
    #[test]
    fn switch_stuck_by_sgw_pause_is_retried() {
        use dlte_faults::MoveSpec;
        let case = FuzzCase {
            seed: 164,
            arch: Arch::Centralized,
            n_cells: 2,
            ues_per_cell: 1,
            plan: FaultPlan::new(164),
            moves: MovePlan {
                seed: 164,
                moves: vec![
                    MoveSpec {
                        ue: 1,
                        at_s: 2.016_833_639_812_251_7,
                        ap: 0,
                    },
                    MoveSpec {
                        ue: 1,
                        at_s: 3.236_401_313_841_845,
                        ap: 1,
                    },
                ],
            },
            remote_keys: false,
            x2_fetch: false,
        };
        let targets = case_targets(&case);
        let case = FuzzCase {
            plan: FaultPlan::new(164).with(FaultSpec::NodePause {
                node: targets.crashable[0], // the S-GW
                at_s: 3.238_850_015_472_53,
                for_s: 0.032_656_997_650_172_194,
            }),
            ..case
        };
        let report = run_case(&case);
        assert!(
            report.violations.is_empty(),
            "stuck-switch case regressed: {:#?}",
            report.violations
        );
        assert!(report.recovered_at_s.is_some());
    }

    /// The committed repro (an S-GW that halts and never restarts, leaving
    /// stranded P-GW sessions and stuck MME contexts) must replay
    /// bit-for-bit: same violations, same recovery outcome, on every
    /// machine and forever. Guards both the repro format and run
    /// determinism against regressions.
    #[test]
    fn committed_repro_replays_bit_for_bit() {
        let path =
            Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/data/fuzz_repro_sgw_halt.json");
        let (repro, report) = replay_repro(&path).unwrap();
        assert_eq!(report.violations, repro.violations);
        assert_eq!(report.recovered_at_s, repro.recovered_at_s);
        assert!(report.violations.iter().any(|v| v.oracle == "recovery"));
        assert!(report.violations.iter().any(|v| v.oracle == "sessions"));
    }

    /// Found by `fuzz --mobility` (seed 3): a P-GW crash/restart makes the
    /// S-GW tear its bearers down and signal the eNB each bearer was
    /// anchored at — the *last eNB that completed a path switch*, which for
    /// a UE whose newest move's ServiceRequest was lost in a link flap is
    /// no longer the serving cell. The UE's stale-NAS source filter dropped
    /// the resulting `NetworkDetach` order, wedging the UE "attached" to a
    /// dead bearer forever while the MME (whose own S-GW echo path never
    /// broke) kept the Active context. Fixed by exempting fail-safe detach
    /// orders from the serving-cell filter; the committed repro replays the
    /// storm green, bit-for-bit.
    #[test]
    fn committed_mobility_repro_replays_green() {
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../tests/data/fuzz_repro_mobility_stale_detach.json");
        let (repro, report) = replay_repro(&path).unwrap();
        assert!(!repro.case.moves.is_empty(), "repro must move UEs");
        assert!(
            report.violations.is_empty(),
            "stale-detach mobility case regressed: {:#?}",
            report.violations
        );
        assert_eq!(report.recovered_at_s, repro.recovered_at_s);
    }

    #[test]
    fn repro_round_trips_through_json_and_replays() {
        let dir = std::env::temp_dir().join("dlte_fuzz_test_repro");
        let case = FuzzCase::generate(5);
        let repro = FuzzRepro {
            seed: 5,
            case: case.clone(),
            violations: vec![],
            recovered_at_s: Some(9.0),
            shrink_runs: 0,
        };
        let path = write_repro(&repro, &dir).unwrap();
        assert!(path.ends_with("fuzz_repro_5.json"));
        let (loaded, report) = replay_repro(&path).unwrap();
        assert_eq!(loaded, repro);
        assert_eq!(report, run_case(&case));
        let _ = std::fs::remove_file(&path);
    }
}
