//! # Registry chaos fuzzing
//!
//! The registry-flavoured twin of [`crate::fuzz`]: derive a whole
//! [`RegistryWorkload`] from a seed, run it through [`run_chaos`], and if
//! any registry oracle fires, greedily shrink the fault plan to a minimal
//! repro and write it as JSON. Driven by `dlte-run fuzz --registry`.
//!
//! Everything is a pure function of the seed, so a failing seed from CI
//! reproduces on any machine, and a committed repro file replays
//! bit-for-bit forever.

use crate::registry_chaos::{run_chaos, ChaosOutcome, Flavour, RegistryWorkload};
use dlte_check::Violation;
use dlte_faults::registry::RegistryFaultPlan;
use dlte_sim::SimRng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::path::{Path, PathBuf};

/// Cap on executions one shrink is allowed (each run is ~100 ticks, so
/// this bounds a shrink to well under a second).
const MAX_SHRINK_RUNS: usize = 200;

/// Minimal failing registry repro, written as
/// `fuzz_repro_registry_<seed>.json` and replayed with
/// `dlte-run fuzz --registry --repro FILE`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegistryFuzzRepro {
    /// Seed of the original sweep case (the file name key).
    pub seed: u64,
    /// The *minimized* workload (same seed, shrunk fault plan).
    pub workload: RegistryWorkload,
    /// Oracle violations the minimized workload still triggers.
    pub violations: Vec<Violation>,
    /// How many workload executions shrinking took.
    pub shrink_runs: usize,
}

/// Derive a whole chaos workload from a seed. Deterministic: same seed,
/// same flavour, same fault schedule, same tick trajectory.
pub fn generate_workload(seed: u64) -> RegistryWorkload {
    let mut rng = SimRng::new(seed).fork("registry-fuzz-case");
    let flavour = match rng.index(3) {
        0 => Flavour::Centralized,
        1 => Flavour::Federated,
        _ => Flavour::Replicated,
    };
    let n_zones = 2 + rng.index(3); // 2..=4
    let n_replicas = 2 + rng.index(2); // 2..=3
    let n_aps = 6 + rng.index(7); // 6..=12
    let area_km = rng.uniform(60.0, 120.0);
    let contour_km = rng.uniform(8.0, 15.0);
    let lease_s = rng.uniform(6.0, 12.0);
    // Short cap so crash quarantines (crash + max_lease) end inside the
    // run and post-recovery behavior is actually exercised.
    let max_lease_s = lease_s + rng.uniform(3.0, 6.0);
    let total_s = rng.uniform(40.0, 60.0);
    let n_faults = 2 + rng.index(4); // 2..=5
    let plan = RegistryFaultPlan::chaos_mix(seed, n_zones, n_replicas, n_faults, 5.0, 30.0, 8.0);
    RegistryWorkload {
        seed,
        flavour,
        n_zones,
        n_replicas,
        n_aps,
        area_km,
        contour_km,
        lease_s,
        max_lease_s,
        total_s,
        plan,
    }
}

/// Greedily shrink the workload's fault plan while the original oracles
/// still fire. First-still-failing, restart after every improvement —
/// same discipline as [`crate::fuzz::shrink_case`].
pub fn shrink_workload(
    workload: &RegistryWorkload,
    outcome: &ChaosOutcome,
) -> (RegistryWorkload, ChaosOutcome, usize) {
    let original_oracles: HashSet<&str> = outcome
        .violations
        .iter()
        .map(|v| v.oracle.as_str())
        .collect();
    let still_failing = |o: &ChaosOutcome| {
        o.violations
            .iter()
            .any(|v| original_oracles.contains(v.oracle.as_str()))
    };
    let mut best = workload.clone();
    let mut best_outcome = outcome.clone();
    let mut runs = 0usize;
    'outer: loop {
        for plan in best.plan.shrink_candidates() {
            if runs >= MAX_SHRINK_RUNS {
                break 'outer;
            }
            let cand = RegistryWorkload {
                plan,
                ..best.clone()
            };
            let o = run_chaos(&cand);
            runs += 1;
            if still_failing(&o) {
                best = cand;
                best_outcome = o;
                continue 'outer;
            }
        }
        break;
    }
    (best, best_outcome, runs)
}

/// Fuzz one seed: generate, run, and on violation shrink to a repro.
/// `None` means every registry oracle held.
pub fn fuzz_registry_seed(seed: u64) -> Option<RegistryFuzzRepro> {
    let workload = generate_workload(seed);
    let outcome = run_chaos(&workload);
    if outcome.violations.is_empty() {
        return None;
    }
    let (min_workload, min_outcome, shrink_runs) = shrink_workload(&workload, &outcome);
    Some(RegistryFuzzRepro {
        seed,
        workload: min_workload,
        violations: min_outcome.violations,
        shrink_runs,
    })
}

/// Write a repro next to the other run artifacts; returns the path.
pub fn write_registry_repro(repro: &RegistryFuzzRepro, dir: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("fuzz_repro_registry_{}.json", repro.seed));
    let json = serde_json::to_string_pretty(repro).expect("repro serializes");
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Load a repro file and re-run its minimized workload bit-for-bit.
pub fn replay_registry_repro(path: &Path) -> Result<(RegistryFuzzRepro, ChaosOutcome), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
    let repro: RegistryFuzzRepro =
        serde_json::from_str(&text).map_err(|e| format!("parse {path:?}: {e}"))?;
    let outcome = run_chaos(&repro.workload);
    Ok((repro, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_varied() {
        let a = generate_workload(7);
        let b = generate_workload(7);
        assert_eq!(a, b);
        // Across a seed range, all three flavours appear and plans differ.
        let flavours: HashSet<String> = (0..20)
            .map(|s| generate_workload(s).flavour.to_string())
            .collect();
        assert_eq!(flavours.len(), 3, "{flavours:?}");
        assert_ne!(generate_workload(1).plan, generate_workload(2).plan);
    }

    #[test]
    fn generated_workloads_exercise_faults() {
        // Every generated plan actually schedules faults inside the run.
        for seed in 0..10 {
            let w = generate_workload(seed);
            assert!(!w.plan.compile().is_empty(), "seed {seed}: empty plan");
            assert!(
                w.plan.last_fault_time().as_secs_f64() < w.total_s,
                "seed {seed}: faults after the horizon"
            );
        }
    }

    #[test]
    fn repro_round_trips_through_json_and_replays() {
        // Manufacture a repro from a healthy seed (violations empty is
        // fine for the round-trip) and check replay matches.
        let workload = generate_workload(3);
        let outcome = run_chaos(&workload);
        let repro = RegistryFuzzRepro {
            seed: 3,
            workload: workload.clone(),
            violations: outcome.violations.clone(),
            shrink_runs: 0,
        };
        let dir = std::env::temp_dir().join("dlte-registry-fuzz-test");
        let path = write_registry_repro(&repro, &dir).expect("write repro");
        let (back, replayed) = replay_registry_repro(&path).expect("replay");
        assert_eq!(back, repro);
        assert_eq!(replayed, outcome);
        let _ = std::fs::remove_file(path);
    }

    /// Regression pin for the phantom-crash accounting bug `fuzz
    /// --registry` seed 69 found: two overlapping crash specs for the same
    /// zone made the driver record a second `state_loss: true` crash for a
    /// zone that was already down, and no restart ever patched it — so the
    /// accountability oracle condemned grants the snapshot recovery had
    /// legitimately honored. The committed repro (minimized to the two
    /// overlapping specs) must now replay green, while still actually
    /// crashing the zone once.
    #[test]
    fn committed_overlapping_crash_repro_replays_green() {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../tests/data/fuzz_repro_registry_overlapping_crash.json");
        let (repro, outcome) = replay_registry_repro(&path).unwrap();
        // The file documents the violations the bug used to produce.
        assert!(repro
            .violations
            .iter()
            .all(|v| v.oracle == "crash_accountability"));
        assert_eq!(outcome.violations, Vec::new(), "{:#?}", outcome.violations);
        // Exactly one *real* crash survives in evidence, and the restart
        // patched it to its snapshot recovery.
        assert_eq!(outcome.zone_crashes, 1);
        assert_eq!(outcome.evidence.crashes.len(), 1);
        assert!(!outcome.evidence.crashes[0].state_loss);
    }

    #[test]
    fn short_sweep_holds_all_oracles() {
        for seed in 0..15 {
            if let Some(repro) = fuzz_registry_seed(seed) {
                panic!(
                    "seed {seed} violated registry oracles: {:#?}",
                    repro.violations
                );
            }
        }
    }
}
