//! # dlte — Distributed LTE
//!
//! A full-system reproduction of **"dLTE: Building a more WiFi-like
//! Cellular Network (Instead of the Other Way Around)"** (Johnson, Sevilla,
//! Jang & Heimerl, HotNets-XVII 2018), as a deterministic simulation
//! spanning the radio PHY to the application transport.
//!
//! The paper proposes a federated network of standalone LTE access points:
//! each AP runs a pared-down **local core** ([`dlte_epc::LocalCoreNode`]),
//! discovers co-channel neighbors through an **open license registry**
//! ([`dlte_registry`]), coordinates spectrum **peer-to-peer over X2**
//! ([`dlte_x2`]), and leaves mobility and identity to **endpoint
//! transports** ([`dlte_transport`]). This crate assembles those pieces
//! into runnable networks and provides the baselines they are measured
//! against (centralized LTE with a shared EPC; legacy WiFi DCF):
//!
//! * [`ap::DlteApNode`] — one network node that *is* a dLTE AP: local core
//!   + X2 agent behind a single handler;
//! * [`scenario`] — topology builders for dLTE networks (the centralized
//!   twin lives in [`dlte_epc::topology`]);
//! * [`transport_app`] — the UE upper layer that rides a modern transport
//!   across dLTE's address churn (§4.2);
//! * [`design_space`] — Table 1 as an executable classification;
//! * [`econ`] — the §5 deployment cost/coverage model (Figure 2's bill of
//!   materials);
//! * [`radio`] — the bridge between the subframe-accurate radio simulator
//!   (`dlte-mac`) and the packet-level topologies (`dlte-net`);
//! * [`resilience`] — the §7 future-work extension: multi-hop backhaul
//!   sharing between neighboring APs for emergency redundancy;
//! * [`experiments`] — one function per table/figure/claim, producing the
//!   rows the paper reproduction reports (see EXPERIMENTS.md).
//!
//! ## Quickstart
//!
//! ```
//! use dlte::scenario::{DlteNetworkBuilder};
//! use dlte_epc::{UeApp, UeNode};
//! use dlte_sim::{SimDuration, SimTime};
//!
//! // One AP, two UEs, everything defaulted: build, run 5 simulated
//! // seconds, inspect.
//! let mut net = DlteNetworkBuilder::new(1, 2)
//!     .with_ue_plan(|_| dlte::scenario::DltePlan {
//!         app: UeApp::Pinger {
//!             dst: DlteNetworkBuilder::ott_addr(),
//!             interval: SimDuration::from_millis(100),
//!             probe_bytes: 100,
//!         },
//!         ..Default::default()
//!     })
//!     .build();
//! net.sim.run_until(SimTime::from_secs(5), 1_000_000);
//! let ue = net.sim.handler_as::<UeNode>(net.ues[0]).unwrap();
//! assert!(ue.stats.pongs > 0, "attached and exchanging traffic");
//! ```

pub mod ap;
pub mod design_space;
pub mod econ;
pub mod experiments;
pub mod fuzz;
pub mod fuzz_registry;
pub mod mobility;
pub mod radio;
pub mod registry_chaos;
pub mod resilience;
pub mod scenario;
pub mod transport_app;

pub use ap::DlteApNode;
pub use scenario::{DlteNet, DlteNetworkBuilder, DltePlan};
pub use transport_app::TransportUeApp;
