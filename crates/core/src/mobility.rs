//! Movement models and traffic workloads for mobility scenarios.
//!
//! The paper's §4.2 mobility story (detach → re-attach, endpoint
//! transports absorbing address churn) is only credible if it is tested
//! under *populations* in motion, not a single scripted hop. This module
//! generates deterministic, seeded movement plans ([`dlte_faults::MovePlan`]
//! data — the same shrink/replay machinery as fault plans) from two models:
//!
//! * **waypoint** — each UE dwells a random interval, then jumps to a
//!   uniformly-drawn other AP (the classic random-waypoint churn that
//!   stresses detach/attach storms);
//! * **vehicular** — each UE rides a fixed ring route at constant dwell
//!   (the tinyLTE drive-test shape: predictable sequential handovers at
//!   vehicular cell-crossing rates).
//!
//! plus a heavy-tailed, diurnally-modulated workload model for sizing the
//! traffic the movers carry. Everything is a pure function of the seed.

use dlte_faults::{MovePlan, MoveSpec};
use dlte_sim::rng::hash_unit;
use dlte_sim::SimRng;
use serde::{Deserialize, Serialize};

/// How a UE population moves between APs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum MovementModel {
    /// Seeded random waypoint: dwell `dwell_min_s..dwell_max_s`, then jump
    /// to a uniformly-drawn other AP.
    Waypoint { dwell_min_s: f64, dwell_max_s: f64 },
    /// Deterministic ring route: every `dwell_s` the UE advances `hop`
    /// APs around the ring, phase-staggered per UE so the storm is spread
    /// rather than synchronized.
    Vehicular { dwell_s: f64, hop: usize },
}

impl MovementModel {
    /// Generate the movement plan for `n_ues` UEs over `n_aps` APs, with
    /// moves confined to `[start_s, end_s)`. UE `i` is assumed homed on AP
    /// `i % n_aps` (the topology convention). Deterministic in `seed`.
    pub fn plan(
        &self,
        seed: u64,
        n_ues: usize,
        n_aps: usize,
        start_s: f64,
        end_s: f64,
    ) -> MovePlan {
        match *self {
            MovementModel::Waypoint {
                dwell_min_s,
                dwell_max_s,
            } => {
                MovePlan::commuter_mix(seed, n_ues, n_aps, dwell_min_s, dwell_max_s, start_s, end_s)
            }
            MovementModel::Vehicular { dwell_s, hop } => {
                let mut plan = MovePlan::new(seed);
                if n_aps < 2 || dwell_s <= 0.0 {
                    return plan;
                }
                let hop = hop.max(1);
                for ue in 0..n_ues {
                    let mut here = ue % n_aps;
                    // Stagger departures across one dwell so the ring does
                    // not hand every UE over in the same instant.
                    let mut t = start_s + dwell_s * (ue as f64 / n_ues.max(1) as f64);
                    while t < end_s {
                        let next = (here + hop) % n_aps;
                        if next != here {
                            plan.moves.push(MoveSpec {
                                ue,
                                at_s: t,
                                ap: next,
                            });
                            here = next;
                        }
                        t += dwell_s;
                    }
                }
                plan
            }
        }
    }
}

/// Map an AP index onto a UE's cell-list index. The scenario builders put
/// the home cell first, then all other APs in ascending order, so for home
/// `h`: AP `h` → 0, AP `j < h` → `j + 1`, AP `j > h` → `j`.
pub fn cell_index_for(home_ap: usize, ap: usize, n_aps: usize) -> usize {
    debug_assert!(home_ap < n_aps && ap < n_aps);
    if ap == home_ap {
        0
    } else if ap < home_ap {
        ap + 1
    } else {
        ap
    }
}

/// Inverse of [`cell_index_for`]: which AP a UE's cell-list index refers
/// to (cell 0 is the home AP).
pub fn ap_index_for(home_ap: usize, cell: usize, n_aps: usize) -> usize {
    debug_assert!(home_ap < n_aps && cell < n_aps);
    if cell == 0 {
        home_ap
    } else if cell <= home_ap {
        cell - 1
    } else {
        cell
    }
}

/// A heavy-tailed, diurnally-modulated traffic workload: flow sizes follow
/// a bounded Pareto (the classic mice-and-elephants mix) and the offered
/// load swings sinusoidally over a 24-hour cycle with a commuter-rush
/// peak. Pure functions of the seed — safe to call from any shard.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct WorkloadModel {
    pub seed: u64,
    /// Pareto tail exponent (smaller = heavier tail; 1 < α < 2 gives the
    /// infinite-variance regime measured for flow sizes).
    pub pareto_alpha: f64,
    pub min_flow_bytes: u64,
    pub max_flow_bytes: u64,
    /// Peak-to-mean load swing in \[0, 1\): 0.5 means the rush hour offers
    /// 1.5× the mean and the quietest hour 0.5×.
    pub diurnal_amplitude: f64,
    /// Hour of day (0..24) the load peaks at.
    pub peak_hour: f64,
}

impl Default for WorkloadModel {
    fn default() -> Self {
        WorkloadModel {
            seed: 1,
            pareto_alpha: 1.2,
            min_flow_bytes: 2_000,
            max_flow_bytes: 20_000_000,
            diurnal_amplitude: 0.5,
            peak_hour: 18.0,
        }
    }
}

impl WorkloadModel {
    /// Size of flow number `k` of UE `ue`: a bounded-Pareto draw by inverse
    /// CDF, deterministic in `(seed, ue, k)`.
    pub fn flow_bytes(&self, ue: u64, k: u64) -> u64 {
        let u = hash_unit(&[self.seed, 0xF10B, ue, k]);
        let a = self.pareto_alpha;
        let lo = self.min_flow_bytes.max(1) as f64;
        let hi = self.max_flow_bytes.max(self.min_flow_bytes + 1) as f64;
        // Bounded Pareto inverse CDF: F⁻¹(u) over [lo, hi].
        let num = u * (hi.powf(a) - lo.powf(a)) + lo.powf(a);
        let x = (hi.powf(a) * lo.powf(a) / num).powf(1.0 / a);
        (x.round() as u64).clamp(self.min_flow_bytes, self.max_flow_bytes)
    }

    /// Relative offered load at `hour` of day (mean 1.0 over the cycle).
    pub fn load_factor(&self, hour: f64) -> f64 {
        let phase = (hour - self.peak_hour) / 24.0 * std::f64::consts::TAU;
        1.0 + self.diurnal_amplitude.clamp(0.0, 0.99) * phase.cos()
    }

    /// Per-UE mean think time between flows at `hour`, milliseconds:
    /// `base_ms` at mean load, compressed at the rush peak. A seeded
    /// per-UE jitter (±20%) breaks phase locks between identical UEs.
    pub fn think_ms(&self, ue: u64, hour: f64, base_ms: f64) -> f64 {
        let jitter = 0.8 + 0.4 * hash_unit(&[self.seed, 0x71ED, ue]);
        base_ms * jitter / self.load_factor(hour)
    }
}

/// A seeded RNG for mobility decisions, forked per UE off the workload
/// namespace (kept separate from topology RNGs so adding movers does not
/// perturb existing draws).
pub fn mobility_rng(seed: u64, ue: u64) -> SimRng {
    SimRng::new(seed).fork_idx("mobility-ue", ue)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waypoint_plan_is_deterministic_and_bounded() {
        let m = MovementModel::Waypoint {
            dwell_min_s: 0.5,
            dwell_max_s: 1.5,
        };
        let a = m.plan(9, 6, 4, 2.0, 10.0);
        let b = m.plan(9, 6, 4, 2.0, 10.0);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for mv in &a.moves {
            assert!((2.0..10.0).contains(&mv.at_s));
            assert!(mv.ap < 4);
        }
    }

    #[test]
    fn vehicular_plan_rides_the_ring() {
        let m = MovementModel::Vehicular {
            dwell_s: 1.0,
            hop: 1,
        };
        let plan = m.plan(1, 2, 4, 2.0, 6.5);
        // UE 0 starts at AP 0 and advances one AP per second from t=2.
        let sched = plan.schedule_for(0);
        let aps: Vec<usize> = sched.iter().map(|&(_, ap)| ap).collect();
        assert_eq!(aps, vec![1, 2, 3, 0, 1]);
        // Phase stagger: UE 1's first move is later than UE 0's.
        assert!(plan.schedule_for(1)[0].0 > sched[0].0);
    }

    #[test]
    fn cell_index_mapping_matches_builder_order() {
        // home 2 of 4 APs → cell list is [2, 0, 1, 3].
        assert_eq!(cell_index_for(2, 2, 4), 0);
        assert_eq!(cell_index_for(2, 0, 4), 1);
        assert_eq!(cell_index_for(2, 1, 4), 2);
        assert_eq!(cell_index_for(2, 3, 4), 3);
        // home 0 → identity on the tail.
        assert_eq!(cell_index_for(0, 0, 3), 0);
        assert_eq!(cell_index_for(0, 1, 3), 1);
        assert_eq!(cell_index_for(0, 2, 3), 2);
        // The inverse round-trips for every (home, ap) pair.
        for home in 0..5 {
            for ap in 0..5 {
                let cell = cell_index_for(home, ap, 5);
                assert_eq!(ap_index_for(home, cell, 5), ap, "home {home} ap {ap}");
            }
        }
    }

    #[test]
    fn flow_sizes_are_heavy_tailed_and_bounded() {
        let w = WorkloadModel::default();
        let draws: Vec<u64> = (0..2_000).map(|k| w.flow_bytes(0, k)).collect();
        for &d in &draws {
            assert!((w.min_flow_bytes..=w.max_flow_bytes).contains(&d));
        }
        let mut sorted = draws.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        let p99 = sorted[sorted.len() * 99 / 100] as f64;
        // Heavy tail: the 99th percentile dwarfs the median (mice and
        // elephants), which a light-tailed draw would not produce.
        assert!(p99 / median > 20.0, "p99 {p99} vs median {median}");
        // Determinism.
        assert_eq!(w.flow_bytes(3, 7), w.flow_bytes(3, 7));
        assert_ne!(w.flow_bytes(3, 7), w.flow_bytes(3, 8));
    }

    #[test]
    fn diurnal_load_peaks_at_rush_hour() {
        let w = WorkloadModel::default();
        let peak = w.load_factor(w.peak_hour);
        let trough = w.load_factor(w.peak_hour + 12.0);
        assert!(peak > 1.4 && trough < 0.6, "peak {peak}, trough {trough}");
        // Think time compresses under load, and jitter stays within ±20%.
        let busy = w.think_ms(0, w.peak_hour, 1_000.0);
        let quiet = w.think_ms(0, w.peak_hour + 12.0, 1_000.0);
        assert!(busy < quiet);
        let j = w.think_ms(5, w.peak_hour, 1_000.0) * w.load_factor(w.peak_hour) / 1_000.0;
        assert!((0.8..=1.2).contains(&j), "jitter {j}");
    }
}
