//! Bridging the radio simulator and the packet topologies.
//!
//! Two fidelity levels coexist in this reproduction:
//!
//! * `dlte-mac`'s [`CellSim`] is subframe-accurate — used where the *radio*
//!   is the object of study (range, scheduling, fairness: E1–E7);
//! * `dlte-net` topologies model a radio link as a fixed-rate pipe — used
//!   where the *architecture* is the object of study (attach latency,
//!   handover, path inflation: F1, E8–E10).
//!
//! This module keeps the second honest with the first: it derives the
//! packet-level `LinkConfig` of a UE↔AP radio link from the cell simulator
//! at a given distance, so the pipe's rate is what the PHY/MAC would
//! actually deliver there.

use dlte_mac::{CellConfig, CellSim, UeConfig};
use dlte_net::LinkConfig;
use dlte_sim::{SimDuration, SimRng};

/// Goodput (bits/s) a single full-buffer UE achieves at `dist_km` under
/// `config`, measured by running the cell simulator briefly.
pub fn goodput_at_km(config: &CellConfig, dist_km: f64, seed: u64) -> f64 {
    let rng = SimRng::new(seed);
    let mut sim = CellSim::new(config.clone(), vec![UeConfig::at_km(dist_km)], &rng);
    let report = sim.run(SimDuration::from_millis(500));
    report.ues[0].goodput_bps
}

/// A packet-level radio link calibrated by the radio simulator.
///
/// `delay` models LTE's frame/scheduling latency (~5 ms one way is the
/// classic user-plane figure); the rate is the measured cell goodput at the
/// UE's distance. Returns `None` if the UE is out of range entirely.
pub fn radio_link_at_km(config: &CellConfig, dist_km: f64, seed: u64) -> Option<LinkConfig> {
    let bps = goodput_at_km(config, dist_km, seed);
    if bps <= 0.0 {
        return None;
    }
    Some(LinkConfig {
        delay: SimDuration::from_millis(5),
        rate_bps: bps,
        queue_pkts: 300,
        loss: 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_link_rate_tracks_distance() {
        let cfg = CellConfig::rural_default();
        let near = radio_link_at_km(&cfg, 1.0, 7).expect("in range");
        let far = radio_link_at_km(&cfg, 15.0, 7).expect("in range");
        assert!(near.rate_bps > far.rate_bps);
        // Near a rural macro, tens of Mbit/s; at 15 km, megabits.
        assert!(near.rate_bps > 20e6);
        assert!(far.rate_bps > 1e5);
    }

    #[test]
    fn out_of_range_yields_none() {
        let mut cfg = CellConfig::rural_default();
        // Keep PRACH format 0 (14.5 km) and place the UE beyond it.
        cfg.prach = dlte_mac::lte::timing_advance::PrachFormat::Format0;
        assert!(radio_link_at_km(&cfg, 40.0, 7).is_none());
    }
}
