//! # Registry chaos driver
//!
//! Drives a population of APs (spectrum *clients*) against one of the three
//! §4.3 registry flavours while a [`RegistryFaultPlan`] crashes zones,
//! partitions them, and desyncs log replicas — then condemns the run with
//! the `dlte-check` registry oracles. The E17 experiment and the
//! `dlte-run fuzz --registry` sweep both sit on [`run_chaos`].
//!
//! The driver is a plain tick loop (no event engine): registry traffic is
//! request/renew/release RPCs at human timescales, so a 0.5 s tick is finer
//! than any mechanism it exercises, and a pure loop keeps every run
//! bit-identical however it is scheduled (`par_map` across flavours, any
//! `--jobs`/`--shards` setting).
//!
//! Per tick, in order: fault plan events → lease expiry → AP state machines
//! (request / renew at half-lease / move with break-before-make handoff) →
//! replica sync + compaction / zone checkpoints → availability sample.
//!
//! ## The three flavours
//!
//! * **Centralized** — one zone owning the whole area (the CBRS SAS). Every
//!   fault hits the single point; availability pays for simplicity.
//! * **Federated** — a column grid of zones. Conservative denial at borders
//!   (deny when any zone whose answer matters is down, partitioned, or
//!   quarantined) keeps no-double-grant through churn; only the blast
//!   radius shrinks.
//! * **Replicated** — one writer appending to a [`ReplicatedLog`], with
//!   read replicas that sync each tick (writer first, then gossip). A
//!   state-losing writer restart adopts the longest valid replica chain —
//!   the *history* survives tamper-evidently — but serves nothing new until
//!   one maximum lease has drained past the crash, and never re-renews a
//!   grant it cannot prove it issued: recovery is verifiable, not trusted.

use dlte_check::registry::{
    check_registry, CrashRecord, GrantRecord, RegistryEvidence, ReplicaTable,
};
use dlte_check::Violation;
use dlte_faults::registry::{RegistryFault, RegistryFaultPlan};
use dlte_phy::band::Band;
use dlte_registry::registry::GrantPolicy;
use dlte_registry::{
    ChannelPlan, Entry, FederatedRegistry, GrantDenied, GrantRequest, LicenseGrant, Point, Rect,
    ReplicatedLog, SpectrumRegistry, Zone, ZoneRecovery,
};
use dlte_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Tick length. Registry RPCs happen at human timescales; 0.5 s is finer
/// than every lease, fault window, and sync interval the driver models.
const DT_S: f64 = 0.5;
/// Zones checkpoint (the `ZoneRecovery::Snapshot` source) every 5 s.
const CHECKPOINT_EVERY_S: f64 = 5.0;
/// The replicated writer folds its log every 15 s.
const COMPACT_EVERY_S: f64 = 15.0;
/// Per-tick probability an AP relocates (break-before-make handoff).
const MOVE_CHANCE: f64 = 0.01;

/// Which registry governance flavour a workload runs against.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Flavour {
    Centralized,
    Federated,
    Replicated,
}

impl std::fmt::Display for Flavour {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Flavour::Centralized => write!(f, "centralized"),
            Flavour::Federated => write!(f, "federated"),
            Flavour::Replicated => write!(f, "replicated"),
        }
    }
}

/// One self-contained registry chaos workload: everything needed to rerun
/// the exact tick trajectory. Plain serde data, like `FuzzCase`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegistryWorkload {
    pub seed: u64,
    pub flavour: Flavour,
    /// Zone count for the federated flavour (the others map the plan's zone
    /// indices onto what they have: one zone / one writer).
    pub n_zones: usize,
    /// Read replicas for the replicated flavour.
    pub n_replicas: usize,
    pub n_aps: usize,
    /// Side of the square service area, km.
    pub area_km: f64,
    /// Interference contour every AP requests, km.
    pub contour_km: f64,
    /// Lease APs ask for, seconds.
    pub lease_s: f64,
    /// Registry-side lease cap (bounds crash quarantines), seconds.
    pub max_lease_s: f64,
    /// Run horizon, seconds.
    pub total_s: f64,
    pub plan: RegistryFaultPlan,
}

/// What one chaos run produced: counters for the E17 table and the oracle
/// verdict (with the evidence that justifies it, for repro files).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChaosOutcome {
    pub requests: u64,
    pub granted: u64,
    pub denied: u64,
    pub renews_ok: u64,
    pub renews_failed: u64,
    /// Mean percentage of APs holding a live grant, sampled every tick.
    pub availability_pct: f64,
    pub zone_crashes: u64,
    pub resyncs: u64,
    pub compactions: u64,
    pub violations: Vec<Violation>,
    pub evidence: RegistryEvidence,
}

/// The replicated flavour: a single writer whose serving state is an
/// ordinary [`SpectrumRegistry`] and whose durable record is the hash
/// chain, plus read replicas that follow it.
struct ReplicatedWriter {
    reg: SpectrumRegistry,
    log: ReplicatedLog,
    replicas: Vec<ReplicatedLog>,
    desynced: Vec<bool>,
    up: bool,
    reachable: bool,
    crashed_at: Option<SimTime>,
    incarnation: u64,
}

fn writer_id_base(incarnation: u64) -> u64 {
    // Same namespacing scheme as federated zones (zone 0), so grant ids
    // from before a state-losing restart are never reissued.
    (1u64 << 48) | ((incarnation & 0xFFFF) << 32)
}

impl ReplicatedWriter {
    fn new(plan: ChannelPlan, max_lease: SimDuration, n_replicas: usize) -> Self {
        let mut reg = SpectrumRegistry::exclusive(plan, 55.0).with_lease_cap(max_lease);
        reg.set_id_base(writer_id_base(0));
        ReplicatedWriter {
            reg,
            log: ReplicatedLog::new(),
            replicas: vec![ReplicatedLog::new(); n_replicas],
            desynced: vec![false; n_replicas],
            up: true,
            reachable: true,
            crashed_at: None,
            incarnation: 0,
        }
    }

    fn serving(&self) -> bool {
        self.up && self.reachable
    }

    fn request(&mut self, req: GrantRequest, now: SimTime) -> Result<LicenseGrant, GrantDenied> {
        if !self.serving() {
            return Err(GrantDenied::ZoneUnavailable);
        }
        let g = self.reg.request(req, now)?;
        self.log.append(Entry::Grant(g));
        Ok(g)
    }

    fn renew(
        &mut self,
        id: u64,
        lease: SimDuration,
        now: SimTime,
    ) -> Result<LicenseGrant, GrantDenied> {
        if !self.serving() {
            return Err(GrantDenied::ZoneUnavailable);
        }
        match self.reg.renew(id, lease, now) {
            Some(g) => {
                // A renewal is a later Grant entry with the same id; the
                // derived table supersedes by id.
                self.log.append(Entry::Grant(g));
                Ok(g)
            }
            None => Err(GrantDenied::UnknownGrant),
        }
    }

    fn release(&mut self, id: u64, operator: u64) -> Result<bool, GrantDenied> {
        if !self.serving() {
            return Err(GrantDenied::ZoneUnavailable);
        }
        let had = self.reg.revoke(id);
        if had {
            self.log.append(Entry::Revoke { id, by: operator });
        }
        Ok(had)
    }

    fn crash(&mut self, now: SimTime) {
        if self.up {
            self.up = false;
            self.crashed_at = Some(now);
            dlte_obs::metrics::counter_add("zone_down", 1);
        }
    }

    /// Restart the writer. State loss drops serving state *and* the local
    /// log; the writer re-adopts the longest valid replica chain (history
    /// survives, tamper-evidently) but installs none of it as live: it
    /// cannot prove which grants it issued after the replicas' horizon, so
    /// it quarantines until one maximum lease has drained past the crash
    /// and lets every pre-crash lease lapse client-side. Without state
    /// loss the log is the durable record; serving state rebuilds from the
    /// derived table and renewals keep working.
    fn restart(&mut self, now: SimTime, state_loss: bool) {
        if self.up {
            return;
        }
        self.up = true;
        self.incarnation += 1;
        let base = writer_id_base(self.incarnation);
        if state_loss {
            self.log = ReplicatedLog::new();
            for r in &self.replicas {
                self.log.sync_from(r);
            }
            self.reg.clear_state(base);
            let crashed_at = self.crashed_at.unwrap_or(now);
            let max_lease = self.reg.max_lease();
            self.reg.begin_quarantine(crashed_at + max_lease);
        } else {
            let grants = self.log.grant_table(now);
            self.reg.clear_state(base);
            self.reg.install(&dlte_registry::RegistrySnapshot {
                grants,
                next_id: base,
            });
        }
        self.crashed_at = None;
        dlte_obs::metrics::counter_add("zone_resync", 1);
    }

    /// One sync round: every in-sync replica pulls from the writer (when it
    /// is serving), then gossips with its in-sync peers — so healed
    /// replicas converge even while the writer is down or cut off. Returns
    /// the number of chains adopted.
    fn sync_round(&mut self) -> u64 {
        let mut adopted = 0;
        for i in 0..self.replicas.len() {
            if self.desynced[i] {
                continue;
            }
            if self.serving() && self.replicas[i].sync_from(&self.log) {
                adopted += 1;
            }
            for j in 0..self.replicas.len() {
                if i == j || self.desynced[j] {
                    continue;
                }
                let peer = self.replicas[j].clone();
                if self.replicas[i].sync_from(&peer) {
                    adopted += 1;
                }
            }
        }
        adopted
    }
}

/// The registry under test, behind one request/renew/release surface.
/// The replicated arm is boxed: a writer carries its whole log plus every
/// replica's, dwarfing the federation variant.
enum ChaosRegistry {
    /// Centralized (one zone) and federated (a column grid) share every
    /// mechanism — centralization is just a federation of one.
    Fed(FederatedRegistry),
    Rep(Box<ReplicatedWriter>),
}

impl ChaosRegistry {
    fn build(w: &RegistryWorkload) -> ChaosRegistry {
        let plan = ChannelPlan::for_band(Band::band5(), 10.0);
        let max_lease = SimDuration::from_secs_f64(w.max_lease_s);
        let half = w.area_km / 2.0 + 1.0;
        match w.flavour {
            Flavour::Replicated => ChaosRegistry::Rep(Box::new(ReplicatedWriter::new(
                plan,
                max_lease,
                w.n_replicas,
            ))),
            Flavour::Centralized | Flavour::Federated => {
                let n = match w.flavour {
                    Flavour::Centralized => 1,
                    _ => w.n_zones.max(1),
                };
                let width = (2.0 * half) / n as f64;
                let zones = (0..n)
                    .map(|i| {
                        let x0 = -half + i as f64 * width;
                        // The last column absorbs rounding so the union
                        // covers the whole area.
                        let x1 = if i + 1 == n { half } else { x0 + width };
                        Zone::new(
                            format!("zone-{i}"),
                            Rect::new(Point::new(x0, -half), Point::new(x1, half)),
                            SpectrumRegistry::with_policy(plan, 55.0, GrantPolicy::Exclusive)
                                .with_lease_cap(max_lease),
                        )
                    })
                    .collect();
                ChaosRegistry::Fed(FederatedRegistry::new(zones))
            }
        }
    }

    fn n_zones(&self) -> usize {
        match self {
            ChaosRegistry::Fed(f) => f.zones().len(),
            ChaosRegistry::Rep(_) => 1,
        }
    }

    fn request(&mut self, req: GrantRequest, now: SimTime) -> Result<LicenseGrant, GrantDenied> {
        match self {
            ChaosRegistry::Fed(f) => f.request(req, now),
            ChaosRegistry::Rep(r) => r.request(req, now),
        }
    }

    fn renew(
        &mut self,
        id: u64,
        lease: SimDuration,
        now: SimTime,
    ) -> Result<LicenseGrant, GrantDenied> {
        match self {
            ChaosRegistry::Fed(f) => f.renew(id, lease, now),
            ChaosRegistry::Rep(r) => r.renew(id, lease, now),
        }
    }

    fn release(&mut self, id: u64, operator: u64, now: SimTime) -> Result<bool, GrantDenied> {
        let _ = now;
        match self {
            ChaosRegistry::Fed(f) => f.release(id),
            ChaosRegistry::Rep(r) => r.release(id, operator),
        }
    }

    fn expire(&mut self, now: SimTime) {
        match self {
            ChaosRegistry::Fed(f) => f.expire(now),
            ChaosRegistry::Rep(r) => {
                r.reg.expire(now);
            }
        }
    }

    /// Zone that issued a grant id (for crash accountability bookkeeping).
    fn zone_of_grant(&self, id: u64) -> usize {
        match self {
            ChaosRegistry::Fed(_) => ((id >> 48) as usize).saturating_sub(1),
            ChaosRegistry::Rep(_) => 0,
        }
    }
}

/// One AP as a spectrum client.
struct Ap {
    operator: u64,
    rng: SimRng,
    location: Point,
    state: ApState,
    retry_at: SimTime,
}

enum ApState {
    Idle,
    Licensed {
        grant: LicenseGrant,
        /// Set when a renewal came back `UnknownGrant`/`Recovering`: the
        /// registry no longer honors this grant, so the AP rides out the
        /// lease it already holds and stops at expiry.
        doomed: bool,
    },
}

/// Execute one workload end to end and judge it with the registry oracles.
pub fn run_chaos(w: &RegistryWorkload) -> ChaosOutcome {
    let mut reg = ChaosRegistry::build(w);
    let n_zones = reg.n_zones();
    let faults = w.plan.compile();
    let mut next_fault = 0usize;

    let rng = SimRng::new(w.seed).fork("registry-chaos-run");
    let half = w.area_km / 2.0;
    let mut aps: Vec<Ap> = (0..w.n_aps)
        .map(|i| {
            let mut r = rng.fork_idx("ap", i as u64);
            let location = Point::new(r.uniform(-half, half), r.uniform(-half, half));
            Ap {
                operator: i as u64 + 1,
                rng: r,
                location,
                state: ApState::Idle,
                retry_at: SimTime::ZERO,
            }
        })
        .collect();

    let lease = SimDuration::from_secs_f64(w.lease_s);
    let mut out = ChaosOutcome {
        requests: 0,
        granted: 0,
        denied: 0,
        renews_ok: 0,
        renews_failed: 0,
        availability_pct: 0.0,
        zone_crashes: 0,
        resyncs: 0,
        compactions: 0,
        violations: Vec::new(),
        evidence: RegistryEvidence {
            exclusive: true,
            max_lease_s: w.max_lease_s,
            ..RegistryEvidence::default()
        },
    };
    let mut grant_log: HashMap<u64, GrantRecord> = HashMap::new();
    let mut licensed_samples = 0u64;
    let mut next_checkpoint = SimTime::ZERO;
    let mut next_compaction = SimTime::ZERO + SimDuration::from_secs_f64(COMPACT_EVERY_S);

    let steps = (w.total_s / DT_S).ceil() as u64;
    for step in 0..steps {
        let now = SimTime::ZERO + SimDuration::from_secs_f64(step as f64 * DT_S);

        // 1. Fault plan events due by this tick.
        while next_fault < faults.len() && faults[next_fault].0 <= now {
            let fault = faults[next_fault].1;
            next_fault += 1;
            apply_fault(
                &mut reg,
                fault,
                now,
                n_zones,
                w.n_replicas,
                &mut out,
                &mut grant_log,
                &mut aps,
            );
        }

        // 2. Lease expiry (the reclamation path).
        reg.expire(now);

        // 3. AP state machines.
        for ap in &mut aps {
            tick_ap(
                ap,
                &mut reg,
                now,
                lease,
                w.contour_km,
                &mut out,
                &mut grant_log,
            );
        }

        // 4. Maintenance: checkpoints / replica sync + compaction.
        if now >= next_checkpoint {
            if let ChaosRegistry::Fed(f) = &mut reg {
                for z in 0..f.zones().len() {
                    f.checkpoint_zone(z);
                }
            }
            next_checkpoint = now + SimDuration::from_secs_f64(CHECKPOINT_EVERY_S);
        }
        if let ChaosRegistry::Rep(r) = &mut reg {
            out.resyncs += r.sync_round();
            if now >= next_compaction {
                if r.up && r.log.compact(now) > 0 {
                    out.compactions += 1;
                }
                next_compaction = now + SimDuration::from_secs_f64(COMPACT_EVERY_S);
            }
        }

        // 5. Availability sample.
        licensed_samples += aps
            .iter()
            .filter(
                |ap| matches!(&ap.state, ApState::Licensed { grant, .. } if now < grant.expires_at),
            )
            .count() as u64;
    }

    out.availability_pct = 100.0 * licensed_samples as f64 / (steps * w.n_aps as u64).max(1) as f64;

    // Final evidence: grants sorted by id; replica tables after the last
    // sync round (a replica still inside a desync window is unhealed and
    // exempt from the convergence oracle).
    out.evidence.grants = {
        let mut v: Vec<GrantRecord> = grant_log.into_values().collect();
        v.sort_by_key(|g| g.id);
        v
    };
    if let ChaosRegistry::Rep(r) = &reg {
        let end = SimTime::ZERO + SimDuration::from_secs_f64(w.total_s);
        let ids = |log: &ReplicatedLog| {
            let mut ids: Vec<u64> = log.grant_table(end).iter().map(|g| g.id).collect();
            ids.sort_unstable();
            ids
        };
        out.evidence.replicas.push(ReplicaTable {
            replica: 0,
            healed: r.up,
            grant_ids: ids(&r.log),
        });
        for (i, rep) in r.replicas.iter().enumerate() {
            out.evidence.replicas.push(ReplicaTable {
                replica: i + 1,
                healed: !r.desynced[i],
                grant_ids: ids(rep),
            });
        }
    }
    out.violations = check_registry(&out.evidence);
    out
}

#[allow(clippy::too_many_arguments)]
fn apply_fault(
    reg: &mut ChaosRegistry,
    fault: RegistryFault,
    now: SimTime,
    n_zones: usize,
    n_replicas: usize,
    out: &mut ChaosOutcome,
    grant_log: &mut HashMap<u64, GrantRecord>,
    aps: &mut [Ap],
) {
    match fault {
        RegistryFault::ZoneDown { zone } => {
            let zone = zone % n_zones;
            // Only a crash that actually takes the zone down records a
            // CrashRecord: overlapping crash specs can land a second
            // ZoneDown on an already-dead zone, and recording it would
            // leave an orphan `state_loss: true` record no restart ever
            // patches — a phantom crash the accountability oracle then
            // wrongly condemns snapshot-recovered grants against.
            // (Found by `fuzz --registry` seed 69; pinned in
            // tests/data/fuzz_repro_registry_overlapping_crash.json.)
            let was_up = match reg {
                ChaosRegistry::Fed(f) => f.zones()[zone].is_up(),
                ChaosRegistry::Rep(r) => r.up,
            };
            if !was_up {
                return;
            }
            out.zone_crashes += 1;
            // Worst case until the restart event says otherwise; a
            // permanent crash keeps `state_loss: true`, which is sound —
            // a zone that never resumes granting cannot outlive the bound.
            out.evidence.crashes.push(CrashRecord {
                zone,
                at_s: now.as_secs_f64(),
                state_loss: true,
            });
            match reg {
                ChaosRegistry::Fed(f) => f.crash_zone(zone, now),
                ChaosRegistry::Rep(r) => r.crash(now),
            }
        }
        RegistryFault::ZoneRestart { zone, state_loss } => {
            let zone = zone % n_zones;
            // A restart of an already-up zone (its crash was the
            // suppressed overlap above, or an earlier restart beat it) is
            // a mechanism no-op and must not patch anyone else's record.
            let was_down = match reg {
                ChaosRegistry::Fed(f) => !f.zones()[zone].is_up(),
                ChaosRegistry::Rep(r) => !r.up,
            };
            if !was_down {
                return;
            }
            if !state_loss {
                // Patch the provisional record: this crash recovered its
                // state, so its grants stay honored.
                if let Some(c) = out
                    .evidence
                    .crashes
                    .iter_mut()
                    .rev()
                    .find(|c| c.zone == zone)
                {
                    c.state_loss = false;
                }
            }
            out.resyncs += 1;
            match reg {
                ChaosRegistry::Fed(f) => f.restart_zone(
                    zone,
                    now,
                    if state_loss {
                        ZoneRecovery::StateLoss
                    } else {
                        ZoneRecovery::Snapshot
                    },
                ),
                ChaosRegistry::Rep(r) => r.restart(now, state_loss),
            }
        }
        RegistryFault::ZoneCut { zone } => match reg {
            ChaosRegistry::Fed(f) => f.partition_zone(zone % n_zones),
            ChaosRegistry::Rep(r) => {
                if r.reachable {
                    r.reachable = false;
                    dlte_obs::metrics::counter_add("zone_down", 1);
                }
            }
        },
        RegistryFault::ZoneHeal { zone } => match reg {
            ChaosRegistry::Fed(f) => {
                f.heal_zone(zone % n_zones);
                // Anti-entropy after the heal: any cross-zone divergence
                // the partition produced is repaired deterministically,
                // and revoked licensees are ordered off the air.
                let revoked = f.anti_entropy(now);
                if !revoked.is_empty() {
                    out.resyncs += 1;
                }
                for g in revoked {
                    if let Some(rec) = grant_log.get_mut(&g.id) {
                        rec.live_until_s = now.as_secs_f64();
                    }
                    if let Some(ap) = aps.iter_mut().find(
                        |a| matches!(&a.state, ApState::Licensed { grant, .. } if grant.id == g.id),
                    ) {
                        ap.state = ApState::Idle;
                        ap.retry_at = now;
                    }
                }
            }
            ChaosRegistry::Rep(r) => {
                if !r.reachable {
                    r.reachable = true;
                    dlte_obs::metrics::counter_add("zone_resync", 1);
                }
            }
        },
        RegistryFault::DesyncStart { replica } => {
            if let ChaosRegistry::Rep(r) = reg {
                if n_replicas > 0 {
                    r.desynced[replica % n_replicas] = true;
                }
            }
        }
        RegistryFault::DesyncEnd { replica } => {
            if let ChaosRegistry::Rep(r) = reg {
                if n_replicas > 0 {
                    r.desynced[replica % n_replicas] = false;
                }
            }
        }
    }
}

fn tick_ap(
    ap: &mut Ap,
    reg: &mut ChaosRegistry,
    now: SimTime,
    lease: SimDuration,
    contour_km: f64,
    out: &mut ChaosOutcome,
    grant_log: &mut HashMap<u64, GrantRecord>,
) {
    match &mut ap.state {
        ApState::Idle => {
            if now < ap.retry_at {
                return;
            }
            out.requests += 1;
            let req = GrantRequest {
                operator: ap.operator,
                location: ap.location,
                channel: None,
                max_eirp_dbm: 50.0,
                contour_km,
                lease,
            };
            match reg.request(req, now) {
                Ok(g) => {
                    out.granted += 1;
                    grant_log.insert(
                        g.id,
                        GrantRecord {
                            id: g.id,
                            operator: ap.operator,
                            zone: reg.zone_of_grant(g.id),
                            channel: g.channel,
                            x_km: g.location.x_km,
                            y_km: g.location.y_km,
                            contour_km: g.contour_km,
                            granted_at_s: now.as_secs_f64(),
                            live_until_s: g.expires_at.as_secs_f64(),
                        },
                    );
                    ap.state = ApState::Licensed {
                        grant: g,
                        doomed: false,
                    };
                }
                Err(_) => {
                    out.denied += 1;
                    ap.retry_at = now + SimDuration::from_secs_f64(ap.rng.uniform(0.5, 2.0));
                }
            }
        }
        ApState::Licensed { grant, doomed } => {
            if now >= grant.expires_at {
                // Lease lapsed (renewal denied or never attempted in
                // time): the AP went off the air at expiry, which is what
                // the grant record already says.
                ap.state = ApState::Idle;
                ap.retry_at = now;
                return;
            }
            if ap.rng.chance(MOVE_CHANCE) {
                // Break-before-make handoff: stop transmitting and release
                // at the old spot now; request at the new spot from Idle
                // next tick. A zone crash in between leaves the release
                // unacknowledged — the lease bound reclaims it.
                let id = grant.id;
                if let Some(rec) = grant_log.get_mut(&id) {
                    rec.live_until_s = now.as_secs_f64();
                }
                let _ = reg.release(id, ap.operator, now);
                let half_x = rec_area_half(ap);
                ap.location = Point::new(
                    ap.rng.uniform(-half_x, half_x),
                    ap.rng.uniform(-half_x, half_x),
                );
                ap.state = ApState::Idle;
                ap.retry_at = now + SimDuration::from_secs_f64(DT_S);
                return;
            }
            let renew_due = grant.expires_at.saturating_since(now) < lease.mul_f64(0.5);
            if renew_due && !*doomed {
                match reg.renew(grant.id, lease, now) {
                    Ok(g) => {
                        out.renews_ok += 1;
                        if let Some(rec) = grant_log.get_mut(&g.id) {
                            rec.live_until_s = g.expires_at.as_secs_f64();
                        }
                        *grant = g;
                    }
                    Err(GrantDenied::ZoneUnavailable) => {
                        // Transient: keep trying every tick until expiry.
                        out.renews_failed += 1;
                    }
                    Err(_) => {
                        // The registry no longer knows this grant (state
                        // loss) or refuses to extend it: ride out the
                        // lease, then rejoin the queue.
                        out.renews_failed += 1;
                        *doomed = true;
                    }
                }
            }
        }
    }
}

/// The AP keeps moving inside the area it was placed in; recover that
/// bound from its current position (positions are always in [-half, half]).
fn rec_area_half(ap: &Ap) -> f64 {
    ap.location.x_km.abs().max(ap.location.y_km.abs()).max(30.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlte_faults::registry::RegistryFaultSpec;

    fn workload(flavour: Flavour, seed: u64) -> RegistryWorkload {
        RegistryWorkload {
            seed,
            flavour,
            n_zones: 3,
            n_replicas: 2,
            n_aps: 8,
            area_km: 90.0,
            contour_km: 10.0,
            lease_s: 8.0,
            max_lease_s: 12.0,
            total_s: 40.0,
            plan: RegistryFaultPlan::chaos_mix(seed, 3, 2, 3, 5.0, 25.0, 6.0),
        }
    }

    #[test]
    fn run_is_deterministic() {
        for flavour in [
            Flavour::Centralized,
            Flavour::Federated,
            Flavour::Replicated,
        ] {
            let w = workload(flavour, 7);
            assert_eq!(run_chaos(&w), run_chaos(&w), "{flavour}");
        }
    }

    #[test]
    fn healthy_run_has_no_violations_and_high_availability() {
        for flavour in [
            Flavour::Centralized,
            Flavour::Federated,
            Flavour::Replicated,
        ] {
            let mut w = workload(flavour, 3);
            w.plan = RegistryFaultPlan::new(3); // no faults
            let out = run_chaos(&w);
            assert_eq!(out.violations, Vec::new(), "{flavour}");
            assert!(out.granted > 0, "{flavour}: nothing granted");
            assert!(
                out.availability_pct > 60.0,
                "{flavour}: availability {:.1}%",
                out.availability_pct
            );
            assert!(out.renews_ok > 0, "{flavour}: no renewals succeeded");
        }
    }

    #[test]
    fn chaos_runs_stay_safe_across_flavours() {
        for seed in 0..5 {
            for flavour in [
                Flavour::Centralized,
                Flavour::Federated,
                Flavour::Replicated,
            ] {
                let w = workload(flavour, seed);
                let out = run_chaos(&w);
                assert_eq!(
                    out.violations,
                    Vec::new(),
                    "{flavour} seed {seed}: {:#?}",
                    out.violations
                );
            }
        }
    }

    #[test]
    fn state_loss_crash_dents_availability_but_not_safety() {
        let mut w = workload(Flavour::Federated, 11);
        w.plan = RegistryFaultPlan::new(11).with(RegistryFaultSpec::ZoneCrash {
            zone: 1,
            at_s: 10.0,
            restart_after_s: Some(2.0),
            state_loss: true,
        });
        let out = run_chaos(&w);
        assert_eq!(out.violations, Vec::new());
        assert_eq!(out.zone_crashes, 1);
        let mut clean = w.clone();
        clean.plan = RegistryFaultPlan::new(11);
        let base = run_chaos(&clean);
        assert!(
            out.availability_pct < base.availability_pct,
            "a state-losing crash must cost availability: {:.1}% vs {:.1}%",
            out.availability_pct,
            base.availability_pct
        );
    }

    #[test]
    fn replicated_writer_recovers_through_replicas() {
        let mut w = workload(Flavour::Replicated, 21);
        w.plan = RegistryFaultPlan::new(21)
            .with(RegistryFaultSpec::ZoneCrash {
                zone: 0,
                at_s: 12.0,
                restart_after_s: Some(3.0),
                state_loss: true,
            })
            .with(RegistryFaultSpec::ReplicaDesync {
                replica: 1,
                at_s: 8.0,
                for_s: 5.0,
            });
        let out = run_chaos(&w);
        assert_eq!(out.violations, Vec::new(), "{:#?}", out.violations);
        // The adopted chain means history survived: the writer's log still
        // verifies and every replica converged to it.
        assert!(out.evidence.replicas.iter().all(|r| r.healed));
        let reference = &out.evidence.replicas[0].grant_ids;
        assert!(out
            .evidence
            .replicas
            .iter()
            .all(|r| &r.grant_ids == reference));
        assert!(out.resyncs > 0);
    }

    #[test]
    fn centralized_pays_more_availability_than_federated_for_one_zone_crash() {
        // The same single-zone state-losing crash schedule: the monolith
        // forgets every grant in the service area and quarantines all of
        // it; the federation forgets (and quarantines) one column. The
        // area must be wide enough that a column exceeds the conservative
        // border fan-out (contour + 50 km), or every zone's answer depends
        // on the crashed one and federation buys nothing.
        let plan = |seed| {
            RegistryFaultPlan::new(seed).with(RegistryFaultSpec::ZoneCrash {
                zone: 2,
                at_s: 10.0,
                restart_after_s: Some(4.0),
                state_loss: true,
            })
        };
        let mut cent = workload(Flavour::Centralized, 5);
        cent.area_km = 240.0;
        cent.plan = plan(5);
        let mut fed = workload(Flavour::Federated, 5);
        fed.area_km = 240.0;
        fed.plan = plan(5);
        let c = run_chaos(&cent);
        let f = run_chaos(&fed);
        assert_eq!(c.violations, Vec::new());
        assert_eq!(f.violations, Vec::new());
        assert!(
            f.availability_pct > c.availability_pct,
            "federated {:.1}% should beat centralized {:.1}% under a zone crash",
            f.availability_pct,
            c.availability_pct
        );
    }
}
