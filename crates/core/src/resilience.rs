//! Backhaul resilience through AP meshing — the paper's §7 extension.
//!
//! §7: *"We are planning to explore multi-hop approaches to sharing and
//! aggregating bandwidth between neighboring LTE APs. Such networks could
//! provide redundancy for users in emergencies when the backhaul link goes
//! down."*
//!
//! Mechanics implemented here:
//!
//! * **Detection** is an active gateway probe: the AP echoes a tiny flow
//!   against a well-known Internet beacon every X2 tick and declares its
//!   backhaul dead after `deadline` of silence ([`BackhaulFailover`]).
//!   Peer silence alone is *not* a valid signal — when a neighbor's
//!   backhaul dies, **both** APs stop hearing each other, and a healthy AP
//!   that failed over on peer silence would point its default route at the
//!   mesh and form a forwarding loop with the genuinely dead AP. (This
//!   reproduction initially did exactly that; the TTL-exhaustion drops in
//!   the E13 experiment caught it — a nice example of why the paper's §7
//!   calls deployment practice a research question.)
//! * **Failover** re-points the AP's egress at a provisioned inter-AP mesh
//!   link (the neighbor forwards as plain IP — local breakout composes).
//! * **Reconvergence** of the infrastructure's routes toward the failed
//!   AP's pool (the downlink direction) is the wide-area routing system's
//!   job; [`FailureScript`] models it as scripted route updates after a
//!   configurable convergence delay, the way IGP reconvergence would behave.

use dlte_net::{Addr, LinkId, NetFault, NodeCtx, NodeHandler, Packet, Payload, Prefix};
use dlte_sim::{SimDuration, SimTime};

/// Flow-id namespace for backhaul probes (disjoint from UE IMSIs, which
/// start at 1000 and stay far below this).
const PROBE_FLOW_BASE: u64 = 0xBEEF_0000_0000;

/// Failover configuration and state carried by a dLTE AP.
#[derive(Clone, Debug)]
pub struct BackhaulFailover {
    /// The mesh link to the neighbor used when the backhaul dies.
    pub fallback_link: LinkId,
    /// Internet beacon the AP probes to establish backhaul liveness (any
    /// echo-capable well-known service; the scenarios use the OTT echo).
    pub probe_dst: Addr,
    /// Silence longer than this, after at least one successful probe,
    /// means the backhaul is dead.
    pub deadline: SimDuration,
    /// Set once the AP has rerouted.
    pub failed_over: bool,
    pub failed_over_at: Option<SimTime>,
    last_reply: Option<SimTime>,
    seq: u64,
}

impl BackhaulFailover {
    pub fn new(fallback_link: LinkId, probe_dst: Addr) -> Self {
        BackhaulFailover {
            fallback_link,
            probe_dst,
            deadline: SimDuration::from_millis(1_500),
            failed_over: false,
            failed_over_at: None,
            last_reply: None,
            seq: 0,
        }
    }

    fn flow_id(ctx: &NodeCtx<'_>) -> u64 {
        PROBE_FLOW_BASE + ctx.node as u64
    }

    /// Called by the AP on every X2 tick: send a probe, and fail over if
    /// the beacon has been silent past the deadline.
    pub fn tick(&mut self, ctx: &mut NodeCtx<'_>) -> bool {
        let seq = self.seq;
        self.seq += 1;
        let probe = ctx
            .make_packet(self.probe_dst, 64)
            .with_payload(Payload::Flow {
                flow: Self::flow_id(ctx),
                seq,
            });
        ctx.forward(probe);

        let Some(last) = self.last_reply else {
            return false; // never had connectivity: nothing to fail from
        };
        if self.failed_over || ctx.now.saturating_since(last) <= self.deadline {
            return false;
        }
        self.failed_over = true;
        self.failed_over_at = Some(ctx.now);
        let fallback = self.fallback_link;
        let info = ctx.node_info_mut();
        // Keep only the radio-side host routes into client pools; every
        // infrastructure route went through the dead backhaul.
        info.retain_routes(|p, _| p.len == 32 && crate::scenario::any_ap_pool_contains(p.addr));
        info.set_route(Prefix::DEFAULT, fallback);
        true
    }

    /// Give the failover a chance to consume a probe echo. Returns true if
    /// the packet was ours.
    pub fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, packet: &Packet) -> bool {
        if let Payload::Flow { flow, .. } = packet.payload {
            if flow == Self::flow_id(ctx) {
                self.last_reply = Some(ctx.now);
                return true;
            }
        }
        false
    }

    /// Whether the beacon has ever answered (diagnostics).
    pub fn has_connectivity_baseline(&self) -> bool {
        self.last_reply.is_some()
    }
}

/// A scripted sequence of infrastructure actions — the fault injector and
/// the modeled routing reconvergence.
pub struct FailureScript {
    actions: Vec<(SimTime, Action)>,
    fired: usize,
}

/// One scripted action.
#[derive(Clone, Debug)]
pub enum Action {
    /// Kill or revive a link.
    SetLink { link: LinkId, up: bool },
    /// Install a route on a node (IGP reconvergence step).
    SetRoute {
        node: usize,
        prefix: Prefix,
        link: LinkId,
    },
    /// Inject a first-class network fault (crash, pause, link override,
    /// partition) through the `dlte-net` fault layer. `SetLink` is kept as
    /// a shorthand for the common case; everything richer goes here.
    Fault(NetFault),
}

impl FailureScript {
    /// Actions must be supplied in time order.
    pub fn new(actions: Vec<(SimTime, Action)>) -> Self {
        debug_assert!(actions.windows(2).all(|w| w[0].0 <= w[1].0));
        FailureScript { actions, fired: 0 }
    }

    /// Number of actions executed so far.
    pub fn fired(&self) -> usize {
        self.fired
    }
}

impl NodeHandler for FailureScript {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        for (i, &(when, _)) in self.actions.iter().enumerate() {
            ctx.set_timer(when.saturating_since(ctx.now), i as u64);
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tag: u64) {
        let Some((_, action)) = self.actions.get(tag as usize).cloned() else {
            return;
        };
        self.fired += 1;
        match action {
            Action::SetLink { link, up } => ctx.set_link_up(link, up),
            Action::SetRoute { node, prefix, link } => ctx.set_route_on(node, prefix, link),
            Action::Fault(fault) => {
                ctx.schedule_fault(SimDuration::ZERO, fault);
            }
        }
    }

    fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, _packet: Packet) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlte_net::handlers::{CbrSource, EchoServer};
    // (EchoServer used by the probe tests below.)
    use dlte_net::{LinkConfig, NetworkBuilder};

    /// A failure script kills a link mid-flow and a scripted "IGP" reroutes
    /// around it; delivery resumes.
    #[test]
    fn scripted_failure_and_reconvergence() {
        let mut b = NetworkBuilder::new(3);
        let dst_addr = Addr::new(10, 0, 0, 9);
        let src = b.host("src", Box::new(CbrSource::new(dst_addr, 1, 1e6, 500)));
        b.addr(src, Addr::new(10, 0, 0, 1));
        let r1 = b.node("r1");
        let r2 = b.node("r2");
        // Plain addressed node: deliveries land in the trace sink.
        let dst = b.node("dst");
        b.addr(dst, dst_addr);
        let l_src_r1 = b.link(src, r1, LinkConfig::lan());
        let l_r1_dst = b.link(r1, dst, LinkConfig::lan());
        // Alternate path via r2.
        let l_r1_r2 = b.link(r1, r2, LinkConfig::lan());
        let l_r2_dst = b.link(r2, dst, LinkConfig::lan());
        b.route(src, Prefix::new(dst_addr, 32), l_src_r1);
        b.route(r1, Prefix::new(dst_addr, 32), l_r1_dst);
        b.route(r2, Prefix::new(dst_addr, 32), l_r2_dst);
        let script = FailureScript::new(vec![
            (
                SimTime::from_secs(2),
                Action::SetLink {
                    link: l_r1_dst,
                    up: false,
                },
            ),
            (
                SimTime::from_millis(2_500),
                Action::SetRoute {
                    node: r1,
                    prefix: Prefix::new(dst_addr, 32),
                    link: l_r1_r2,
                },
            ),
        ]);
        let chaos = b.host("chaos", Box::new(script));
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(4), 1_000_000);
        let t = sim.world().trace();
        // ~0.5 s of traffic died on the downed link, the rest arrived:
        // 250 pkts/s × (4 − 0.5) ≈ 875.
        let delivered = t.flow(1).unwrap().delivered_packets;
        assert!(
            t.drops_link_down > 50,
            "link-down drops {}",
            t.drops_link_down
        );
        assert!(
            (800..950).contains(&delivered),
            "delivered {delivered} (outage bounded by reconvergence)"
        );
        let s = sim.world().handler_as::<FailureScript>(chaos).unwrap();
        assert_eq!(s.fired(), 2);
    }

    /// The probe-based detector: no baseline → never fails over; silence
    /// after a baseline → fails over exactly once; echoes reset the clock.
    #[test]
    fn probe_detector_state_machine() {
        let beacon_addr = Addr::new(8, 8, 8, 8);
        struct Probe {
            fo: BackhaulFailover,
            fired_at: Vec<u64>, // ms timestamps of failover
        }
        impl NodeHandler for Probe {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                for k in 0..10 {
                    ctx.set_timer(SimDuration::from_millis(500 * (k + 1)), k);
                }
            }
            fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _tag: u64) {
                if self.fo.tick(ctx) {
                    self.fired_at.push(ctx.now.as_millis());
                }
            }
            fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, packet: Packet) {
                self.fo.on_packet(ctx, &packet);
            }
        }
        let mut b = NetworkBuilder::new(1);
        let beacon = b.host("beacon", Box::new(EchoServer::new()));
        b.addr(beacon, beacon_addr);
        let other = b.node("other");
        let ap = b.node("ap");
        b.addr(ap, Addr::new(10, 2, 0, 1));
        let mesh = b.link(ap, other, LinkConfig::lan());
        let uplink = b.link(ap, beacon, LinkConfig::lan());
        b.route(ap, Prefix::new(beacon_addr, 32), uplink);
        b.route(beacon, Prefix::new(Addr::new(10, 2, 0, 1), 32), uplink);
        let probe = Probe {
            fo: BackhaulFailover::new(mesh, beacon_addr),
            fired_at: vec![],
        };
        b.set_handler(ap, Box::new(probe));
        // Kill the uplink at 1.2 s (after a couple of successful probes).
        b.set_handler(
            other,
            Box::new(FailureScript::new(vec![(
                SimTime::from_millis(1_200),
                Action::SetLink {
                    link: uplink,
                    up: false,
                },
            )])),
        );
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(6), 100_000);
        let p = sim.world().handler_as::<Probe>(ap).unwrap();
        assert!(p.fo.has_connectivity_baseline(), "probes echoed first");
        assert_eq!(p.fired_at.len(), 1, "fails over exactly once");
        // Deadline 1.5 s after the last echo (~1.0 s) → trips at the 3.0 s
        // tick (2.5 s tick is exactly at the 1.5 s boundary, not past it).
        assert_eq!(p.fired_at[0], 3_000);
        assert!(p.fo.failed_over);
    }

    /// A CBR source feeding a plain sink over one link, with a chaos node
    /// driving the script. Returns (sim, chaos node, sink node) after
    /// `secs` of run. Node ids are build order: src=0, dst=1, chaos=2;
    /// the link is id 0.
    fn chaos_rig(
        script: FailureScript,
        secs: u64,
    ) -> (dlte_sim::Simulation<dlte_net::Network>, usize, usize) {
        let mut b = NetworkBuilder::new(5);
        let dst_addr = Addr::new(10, 0, 0, 9);
        let src = b.host("src", Box::new(CbrSource::new(dst_addr, 1, 1e6, 500)));
        b.addr(src, Addr::new(10, 0, 0, 1));
        // Plain addressed node: deliveries land in the trace sink.
        let dst = b.node("dst");
        b.addr(dst, dst_addr);
        let l = b.link(src, dst, LinkConfig::lan());
        b.route(src, Prefix::new(dst_addr, 32), l);
        let chaos = b.host("chaos", Box::new(script));
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(secs), 1_000_000);
        (sim, chaos, dst)
    }

    /// Overlapping actions at the same instant fire in script order: a
    /// down+up pair scheduled for the same time nets out to "up" and the
    /// flow barely notices.
    #[test]
    fn overlapping_actions_at_same_instant_apply_in_order() {
        let t = SimTime::from_secs(2);
        let script = FailureScript::new(vec![
            (t, Action::Fault(NetFault::LinkUp { link: 0, up: false })),
            (t, Action::Fault(NetFault::LinkUp { link: 0, up: true })),
        ]);
        let (sim, chaos, _dst) = chaos_rig(script, 4);
        let s = sim.world().handler_as::<FailureScript>(chaos).unwrap();
        assert_eq!(s.fired(), 2, "both same-instant actions executed");
        assert!(sim.world().core.links[0].up, "net effect: link up");
        let delivered = sim.world().trace().flow(1).unwrap().delivered_packets;
        // 250 pkt/s × 4 s, minus at most the instant of the flap.
        assert!(delivered > 950, "delivered {delivered}");
    }

    /// A fault scheduled at t = 0 applies before any traffic moves.
    #[test]
    fn fault_at_time_zero_applies_before_first_packet() {
        let script = FailureScript::new(vec![(
            SimTime::ZERO,
            Action::Fault(NetFault::LinkUp { link: 0, up: false }),
        )]);
        let (sim, _chaos, _dst) = chaos_rig(script, 2);
        let t = sim.world().trace();
        // The source's own t=0 packet is already in flight when the fault
        // lands (start order) and in-flight traffic is never retracted;
        // everything after is dropped at the dead link.
        let delivered = t.flow(1).map(|f| f.delivered_packets).unwrap_or(0);
        assert!(delivered <= 1, "delivered {delivered} through a dead link");
        assert!(t.drops_link_down > 100, "drops {}", t.drops_link_down);
    }

    /// A restart scheduled before the crash ever happens is a no-op: the
    /// node goes down at the (later) crash and stays down.
    #[test]
    fn restart_before_crash_is_a_no_op() {
        let script_for = |dst: usize| {
            FailureScript::new(vec![
                (
                    SimTime::from_secs(1),
                    Action::Fault(NetFault::NodeUp { node: dst }),
                ),
                (
                    SimTime::from_secs(2),
                    Action::Fault(NetFault::NodeDown { node: dst }),
                ),
            ])
        };
        let (sim, chaos, dst) = chaos_rig(script_for(1), 4);
        assert_eq!(dst, 1);
        let s = sim.world().handler_as::<FailureScript>(chaos).unwrap();
        assert_eq!(s.fired(), 2);
        assert!(sim.world().node_is_down(dst), "crash held: still down");
        let t = sim.world().trace();
        assert!(t.drops_node_down > 100, "drops {}", t.drops_node_down);
        let delivered = t.flow(1).unwrap().delivered_packets;
        // Only the pre-crash 2 s of traffic got through.
        assert!(
            (450..=520).contains(&delivered),
            "delivered {delivered} (pre-crash only)"
        );
    }

    /// Crash and restart at the same instant (script order): state is lost
    /// but the node is immediately serviceable again.
    #[test]
    fn crash_and_restart_at_same_instant_recovers() {
        let t = SimTime::from_secs(2);
        let script_for = |dst: usize| {
            FailureScript::new(vec![
                (t, Action::Fault(NetFault::NodeDown { node: dst })),
                (t, Action::Fault(NetFault::NodeUp { node: dst })),
            ])
        };
        let (sim, _chaos, dst) = chaos_rig(script_for(1), 4);
        assert!(!sim.world().node_is_down(dst), "back up");
        let delivered = sim.world().trace().flow(1).unwrap().delivered_packets;
        assert!(delivered > 950, "delivered {delivered}");
    }

    /// An AP that never reached the beacon (cold start behind a dead
    /// backhaul) must not fail over.
    #[test]
    fn no_baseline_no_failover() {
        struct Probe {
            fo: BackhaulFailover,
        }
        impl NodeHandler for Probe {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                for k in 0..8 {
                    ctx.set_timer(SimDuration::from_millis(500 * (k + 1)), k);
                }
            }
            fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _tag: u64) {
                assert!(!self.fo.tick(ctx), "must not fail over w/o baseline");
            }
            fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, _p: Packet) {}
        }
        let mut b = NetworkBuilder::new(1);
        let other = b.node("other");
        let ap = b.node("ap");
        let mesh = b.link(ap, other, LinkConfig::lan());
        b.set_handler(
            ap,
            Box::new(Probe {
                fo: BackhaulFailover::new(mesh, Addr::new(8, 8, 8, 8)),
            }),
        );
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(5), 100_000);
        let p = sim.world().handler_as::<Probe>(ap).unwrap();
        assert!(!p.fo.failed_over);
    }
}
