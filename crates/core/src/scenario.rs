//! dLTE network topologies.
//!
//! The dLTE half of Figure 1:
//!
//! ```text
//!  UE ~~radio~~ AP(local core + X2) --backhaul-- Ragg --wan-- Rinet -- OTT
//!                                                              Rinet -- DIR
//! ```
//!
//! Contrast with [`dlte_epc::topology::CentralizedLteBuilder`]: no EPC site,
//! no tunnels — the AP forwards native IP at the aggregation point (local
//! breakout), and the only wide-area control dependencies are the published
//! key directory (first attach per AP, then cached) and the X2 reports
//! between peer APs.

use crate::ap::DlteApNode;
use dlte_auth::open::PublishedKeyDirectory;
use dlte_auth::usim::Usim;
use dlte_auth::{Imsi, Key};
use dlte_epc::local_core::{KeyDirectoryNode, KeySource, LocalCoreNode};
use dlte_epc::ue::{CellAttachment, MobilityMode, UeApp, UeNode};
use dlte_net::handlers::EchoServer;
use dlte_net::{Addr, AddrPool, LinkConfig, NetworkBuilder, NodeId, Prefix, ShardedSim};
use dlte_sim::{SimDuration, SimRng, SimTime, Simulation};
use dlte_transport::connection::TransportConfig;
use dlte_transport::handlers::TransportServerNode;
use dlte_x2::{CoordinationMode, X2Agent};
use std::cell::RefCell;

/// Per-UE plan for dLTE scenarios.
pub struct DltePlan {
    pub app: UeApp,
    pub mode: MobilityMode,
    pub schedule: Vec<(SimTime, usize)>,
}

impl Default for DltePlan {
    fn default() -> Self {
        DltePlan {
            app: UeApp::None,
            mode: MobilityMode::ReAttach,
            schedule: Vec::new(),
        }
    }
}

/// Where APs get subscriber keys.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KeyDistribution {
    /// Registry copy synced to every AP ahead of time (zero attach RTTs).
    PreSynced,
    /// Remote directory queried on first sight of an IMSI, then cached.
    RemoteDirectory,
}

/// Builder for dLTE networks.
pub struct DlteNetworkBuilder {
    pub n_aps: usize,
    pub ues_per_ap: usize,
    /// Aggregation ↔ Internet-core delay (the paper's backhaul to the
    /// nearest exchange).
    pub inet_delay: SimDuration,
    pub radio: LinkConfig,
    pub backhaul: LinkConfig,
    pub stub_per_msg: SimDuration,
    pub dir_per_msg: SimDuration,
    pub keys: KeyDistribution,
    pub x2_mode: CoordinationMode,
    pub x2_interval: SimDuration,
    pub transport_cfg: TransportConfig,
    /// Wire every UE to every AP (mobility experiments).
    pub wire_all_cells: bool,
    /// Provision inter-AP mesh links and backhaul failover (§7 extension).
    pub mesh: bool,
    /// Fetch roaming subscriber contexts from peer APs over X2 before
    /// falling back to the wide-area directory (the dLTE X2 handover arm).
    pub x2_context_fetch: bool,
    /// Population movement plan (AP indices); merged into each UE's
    /// schedule unless its [`DltePlan`] already scripts one. Implies
    /// `wire_all_cells` when set via [`DlteNetworkBuilder::with_move_plan`].
    pub moves: Option<dlte_faults::MovePlan>,
    pub seed: u64,
    ue_plan: Box<dyn Fn(usize) -> DltePlan>,
}

/// The built network and its node handles.
pub struct DlteNet {
    /// The driver: a [`ShardedSim`] so the same scenario runs on one engine
    /// or on N conservative shards (`--shards`), bit-identically.
    pub sim: ShardedSim,
    pub ues: Vec<NodeId>,
    pub aps: Vec<NodeId>,
    pub ott_echo: NodeId,
    pub ott_transport: NodeId,
    pub dir: Option<NodeId>,
    pub r_agg: NodeId,
    pub r_inet: NodeId,
    /// A handler-less spare node: attach a
    /// [`crate::resilience::FailureScript`] via [`ShardedSim::set_handler`]
    /// before running. Scripted cross-node mutation is single-shard only —
    /// sharded runs must inject faults with
    /// [`ShardedSim::schedule_fault_broadcast`] instead.
    pub chaos: NodeId,
    /// Backhaul link of each AP (fault-injection handle).
    pub ap_backhaul: Vec<dlte_net::LinkId>,
    /// Mesh link ring: `ap_mesh[k]` connects AP k to AP (k+1) % n (empty
    /// unless `mesh` was enabled).
    pub ap_mesh: Vec<dlte_net::LinkId>,
}

impl DlteNetworkBuilder {
    pub fn new(n_aps: usize, ues_per_ap: usize) -> Self {
        DlteNetworkBuilder {
            n_aps,
            ues_per_ap,
            inet_delay: SimDuration::from_millis(10),
            radio: LinkConfig {
                delay: SimDuration::from_millis(5),
                rate_bps: 20e6,
                queue_pkts: 300,
                loss: 0.0,
            },
            backhaul: LinkConfig::rural_backhaul(),
            stub_per_msg: SimDuration::from_micros(500),
            dir_per_msg: SimDuration::from_micros(300),
            keys: KeyDistribution::PreSynced,
            x2_mode: CoordinationMode::FairShare,
            x2_interval: SimDuration::from_millis(500),
            transport_cfg: TransportConfig::modern(),
            wire_all_cells: false,
            mesh: false,
            x2_context_fetch: false,
            moves: None,
            seed: 1,
            ue_plan: Box::new(|_| DltePlan::default()),
        }
    }

    pub fn with_ue_plan(mut self, f: impl Fn(usize) -> DltePlan + 'static) -> Self {
        self.ue_plan = Box::new(f);
        self
    }

    /// Put the UE population in motion: each UE whose [`DltePlan`] does not
    /// script its own schedule follows `plan` (AP indices, mapped onto the
    /// UE's cell list). Wires every UE to every AP, since any AP may now be
    /// visited.
    pub fn with_move_plan(mut self, plan: dlte_faults::MovePlan) -> Self {
        self.wire_all_cells = true;
        self.moves = Some(plan);
        self
    }

    /// Well-known addresses (shared with the centralized twin so
    /// experiments can address "the same" OTT service).
    pub fn ott_addr() -> Addr {
        Addr::new(8, 8, 8, 8)
    }

    pub fn ott_transport_addr() -> Addr {
        Addr::new(8, 8, 4, 4)
    }

    pub fn dir_addr() -> Addr {
        Addr::new(9, 9, 9, 9)
    }

    /// The /24 pool of AP `k`. Pools are carved from 100.64.0.0/10
    /// (CGNAT space) starting at 100.66.0.0, so deployments up to ~15k
    /// APs get disjoint /24s; the first 256 APs keep their historical
    /// `100.66.k.0/24` pools.
    pub fn ap_pool(k: usize) -> Prefix {
        assert!(k < 15_872, "AP pool space exhausted (k={k})");
        Prefix::new(Addr::new(100, (66 + k / 256) as u8, (k % 256) as u8, 0), 24)
    }

    /// The aggregate client space across all APs.
    pub fn all_pools() -> Prefix {
        Prefix::new(Addr::new(100, 64, 0, 0), 10)
    }

    /// Control-plane address of AP `k` (10.2.0.0/15-ish space; the first
    /// 250 APs keep their historical `10.2.k.1`).
    pub fn ap_addr(k: usize) -> Addr {
        assert!(k < 500_000, "AP address space exhausted (k={k})");
        Addr::new(
            10,
            (2 + k / 62_500) as u8,
            (k % 250) as u8,
            ((k / 250) % 250) as u8 + 1,
        )
    }

    /// Pre-attach control address of UE `i` (172.16.0.0/12-ish space; the
    /// first 62 500 UEs keep their historical `172.16.(i/250).(i%250+1)`).
    pub fn ue_ctrl_addr(i: usize) -> Addr {
        assert!(i < 14_937_500, "UE control address space exhausted (i={i})");
        Addr::new(
            172,
            (16 + i / 62_500) as u8,
            ((i / 250) % 250) as u8,
            (i % 250) as u8 + 1,
        )
    }

    pub fn imsi_of(i: usize) -> Imsi {
        1_000 + i as Imsi
    }

    pub fn key_of(i: usize) -> Key {
        0x0D17E_u128 << 100 | i as u128
    }

    /// Build with the process-wide shard setting ([`dlte_sim::shards`],
    /// i.e. the runner's `--shards` knob). The default is one shard —
    /// classic single-engine execution.
    pub fn build(self) -> DlteNet {
        let n = dlte_sim::shards();
        self.build_sharded(n)
    }

    /// Build an `n`-shard simulation, partitioned by AP cluster: the core
    /// (routers, OTT services, directory) lands on shard 0 and the APs are
    /// split into contiguous cluster ranges, each UE following its home
    /// AP. Radio traffic thus stays intra-shard; only backhaul/mesh links
    /// cross the cut, so the conservative lookahead is the backhaul delay.
    /// Results are bit-identical at any `n` (the tentpole invariant).
    pub fn build_sharded(self, n: usize) -> DlteNet {
        let handles: RefCell<Option<ReplicaHandles>> = RefCell::new(None);
        let sim = ShardedSim::build(
            n,
            || {
                let (sim, h) = self.build_replica();
                *handles.borrow_mut() = Some(h);
                sim
            },
            |net| {
                let h = handles.borrow();
                let h = h.as_ref().expect("first replica built");
                let m = n.min(self.n_aps).max(1);
                let mut map = vec![0usize; net.core.nodes.len()];
                for (k, &ap) in h.aps.iter().enumerate() {
                    map[ap] = k * m / self.n_aps;
                }
                for (i, &ue) in h.ues.iter().enumerate() {
                    map[ue] = (i / self.ues_per_ap) * m / self.n_aps;
                }
                map
            },
        );
        let h = handles.into_inner().expect("replica built");
        DlteNet {
            sim,
            ues: h.ues,
            aps: h.aps,
            ott_echo: h.ott_echo,
            ott_transport: h.ott_transport,
            dir: h.dir,
            r_agg: h.r_agg,
            r_inet: h.r_inet,
            chaos: h.chaos,
            ap_backhaul: h.ap_backhaul,
            ap_mesh: h.ap_mesh,
        }
    }

    /// Build one full replica of the topology. Deterministic: every call
    /// produces the same network, handlers and seeds, which is what lets
    /// [`ShardedSim::build`] replicate it per shard and prune.
    fn build_replica(&self) -> (Simulation<dlte_net::Network>, ReplicaHandles) {
        let mut b = NetworkBuilder::new(self.seed);
        let rng = SimRng::new(self.seed ^ 0xD17E);
        let total_ues = self.n_aps * self.ues_per_ap;

        // Published-key directory contents (every subscriber pre-publishes,
        // per §4.2). With pre-synced keys and UEs pinned to their home
        // cell, each AP holds only its own subscribers' records — the
        // full-registry copy is materialized only where some node may
        // actually be asked about a foreign IMSI.
        let directory_of = |range: std::ops::Range<usize>| {
            let mut d = PublishedKeyDirectory::new();
            for i in range {
                d.publish(Self::imsi_of(i), Self::key_of(i));
            }
            d
        };

        // Core routers and services (plus a spare node the experiments can
        // hang a fault-injection script on).
        let r_agg = b.node("r-agg");
        let r_inet = b.node("r-inet");
        let chaos = b.node("chaos");
        let l_agg_inet = b.link(r_agg, r_inet, LinkConfig::wan(self.inet_delay));
        let ott_echo = b.host("ott-echo", Box::new(EchoServer::new()));
        b.addr(ott_echo, Self::ott_addr());
        let l_ott = b.link(r_inet, ott_echo, LinkConfig::lan());
        let ott_transport = b.host(
            "ott-transport",
            Box::new(TransportServerNode::new(0x7CB, self.transport_cfg)),
        );
        b.addr(ott_transport, Self::ott_transport_addr());
        let l_ott_tp = b.link(r_inet, ott_transport, LinkConfig::lan());
        let dir = match self.keys {
            KeyDistribution::RemoteDirectory => {
                let dir = b.host(
                    "key-dir",
                    Box::new(KeyDirectoryNode::new(
                        directory_of(0..total_ues),
                        self.dir_per_msg,
                    )),
                );
                b.addr(dir, Self::dir_addr());
                let l = b.link(r_inet, dir, LinkConfig::lan());
                b.route(dir, Prefix::DEFAULT, l);
                Some(dir)
            }
            KeyDistribution::PreSynced => None,
        };

        // APs.
        let mut aps = Vec::new();
        let mut ap_addrs = Vec::new();
        let mut ap_links = Vec::new();
        for k in 0..self.n_aps {
            ap_addrs.push(Self::ap_addr(k));
        }
        for k in 0..self.n_aps {
            let key_source = match self.keys {
                // Pinned UEs only ever attach at home: sync just the home
                // subscribers (keeps per-AP state O(ues_per_ap) at scale).
                KeyDistribution::PreSynced if !self.wire_all_cells => {
                    KeySource::Local(directory_of(k * self.ues_per_ap..(k + 1) * self.ues_per_ap))
                }
                KeyDistribution::PreSynced => KeySource::Local(directory_of(0..total_ues)),
                KeyDistribution::RemoteDirectory => KeySource::Remote {
                    addr: Self::dir_addr(),
                },
            };
            let core = LocalCoreNode::new(
                42_000 + k as u64,
                AddrPool::new(Self::ap_pool(k)),
                key_source,
                self.stub_per_msg,
                rng.fork_idx("stub", k as u64),
            );
            // Independent agents never report to peers — skip the
            // O(n_aps²) peer lists the other modes need.
            let peers: Vec<Addr> = if self.x2_mode == CoordinationMode::Independent {
                Vec::new()
            } else {
                ap_addrs
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != k)
                    .map(|(_, &a)| a)
                    .collect()
            };
            let x2 = X2Agent::new(self.x2_mode, peers, self.x2_interval);
            let ap = b.host(
                format!("ap{k}"),
                Box::new(DlteApNode::new(core, x2).with_context_fetch(self.x2_context_fetch)),
            );
            b.addr(ap, ap_addrs[k]);
            let l = b.link(ap, r_agg, self.backhaul);
            aps.push(ap);
            ap_links.push(l);
        }

        // UEs.
        let mut ues = Vec::new();
        let mut wiring: Vec<(usize, Imsi, dlte_net::LinkId, Addr)> = Vec::new();
        for i in 0..total_ues {
            let imsi = Self::imsi_of(i);
            let home_ap = i / self.ues_per_ap;
            let ue_ctrl = Self::ue_ctrl_addr(i);
            let ue = b.node(format!("ue{i}"));
            let mut cells = Vec::new();
            // Home cell first (mobility indices are positions in this list).
            let cell_range: Vec<usize> = if self.wire_all_cells {
                std::iter::once(home_ap)
                    .chain((0..self.n_aps).filter(|&k| k != home_ap))
                    .collect()
            } else {
                vec![home_ap]
            };
            for &k in &cell_range {
                let link = b.link(ue, aps[k], self.radio);
                cells.push(CellAttachment {
                    enb_addr: ap_addrs[k],
                    radio_link: link,
                });
                wiring.push((k, imsi, link, ue_ctrl));
            }
            let plan = (self.ue_plan)(i);
            // A population move plan fills in schedules the per-UE plan
            // left empty, mapping AP indices onto this UE's cell list.
            let schedule = match (&self.moves, plan.schedule.is_empty()) {
                (Some(moves), true) if self.wire_all_cells => moves
                    .schedule_for(i)
                    .into_iter()
                    .filter(|&(_, ap)| ap < self.n_aps)
                    .map(|(t, ap)| (t, crate::mobility::cell_index_for(home_ap, ap, self.n_aps)))
                    .collect(),
                _ => plan.schedule,
            };
            let ue_node = UeNode::new(imsi, Usim::new(imsi, Self::key_of(i)), cells, plan.app)
                .with_mobility(plan.mode, schedule);
            b.set_handler(ue, Box::new(ue_node));
            ues.push(ue);
        }

        // Routing.
        b.auto_routes();
        for (k, &link) in ap_links.iter().enumerate().take(self.n_aps) {
            b.route(r_agg, Self::ap_pool(k), link);
        }
        // Whole dLTE client space from the Internet side.
        b.route(r_inet, Self::all_pools(), l_agg_inet);
        b.route(ott_echo, Prefix::DEFAULT, l_ott);
        b.route(ott_transport, Prefix::DEFAULT, l_ott_tp);

        // §7 mesh: a ring of inter-AP links plus failover config.
        let mut ap_mesh = Vec::new();
        if self.mesh && self.n_aps >= 2 {
            for k in 0..self.n_aps {
                let next = (k + 1) % self.n_aps;
                if self.n_aps == 2 && k == 1 {
                    break; // avoid a duplicate second link between the pair
                }
                let l = b.link(aps[k], aps[next], self.backhaul);
                ap_mesh.push(l);
            }
        }

        let mut sim = b.build();
        for (k, imsi, link, ue_ctrl) in wiring {
            sim.world_mut()
                .handler_as_mut::<DlteApNode>(aps[k])
                .expect("ap handler")
                .core
                .wire_ue(imsi, link, ue_ctrl);
        }
        if self.mesh && !ap_mesh.is_empty() {
            for k in 0..self.n_aps {
                // Fall back over the mesh link this AP participates in.
                let fallback = ap_mesh[k.min(ap_mesh.len() - 1)];
                sim.world_mut()
                    .handler_as_mut::<DlteApNode>(aps[k])
                    .expect("ap handler")
                    .failover = Some(crate::resilience::BackhaulFailover::new(
                    fallback,
                    Self::ott_addr(),
                ));
            }
        }
        (
            sim,
            ReplicaHandles {
                ues,
                aps,
                ott_echo,
                ott_transport,
                dir,
                r_agg,
                r_inet,
                chaos,
                ap_backhaul: ap_links,
                ap_mesh,
            },
        )
    }
}

/// Node handles produced by one replica build. Handles are identical
/// across replicas (the builder is deterministic), so the first build's
/// copy serves the whole sharded simulation.
struct ReplicaHandles {
    ues: Vec<NodeId>,
    aps: Vec<NodeId>,
    ott_echo: NodeId,
    ott_transport: NodeId,
    dir: Option<NodeId>,
    r_agg: NodeId,
    r_inet: NodeId,
    chaos: NodeId,
    ap_backhaul: Vec<dlte_net::LinkId>,
    ap_mesh: Vec<dlte_net::LinkId>,
}

/// True if `addr` belongs to any dLTE AP pool (used by the failover logic
/// to recognize radio-side host routes it must preserve).
pub fn any_ap_pool_contains(addr: Addr) -> bool {
    DlteNetworkBuilder::all_pools().contains(addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport_app::TransportUeApp;
    use dlte_epc::ue::UeState;

    #[test]
    fn ue_attaches_to_dlte_ap_with_published_keys() {
        let mut net = DlteNetworkBuilder::new(1, 1).build();
        net.sim.run_until(SimTime::from_secs(3), 1_000_000);
        let w = net.sim.world();
        let ue = w.handler_as::<UeNode>(net.ues[0]).unwrap();
        assert_eq!(ue.state, UeState::Attached);
        let addr = ue.addr.expect("assigned");
        assert!(
            DlteNetworkBuilder::ap_pool(0).contains(addr),
            "address from the AP's own pool: {addr}"
        );
        let ap = w.handler_as::<DlteApNode>(net.aps[0]).unwrap();
        assert_eq!(ap.core.active_sessions(), 1);
        assert_eq!(ap.core.stats.attaches_completed, 1);
    }

    #[test]
    fn dlte_attach_is_faster_than_centralized() {
        // dLTE: all control stays at the AP (one radio RTT per NAS step).
        // Centralized: every step crosses backhaul + EPC distance.
        let mut dlte = DlteNetworkBuilder::new(1, 1).build();
        dlte.sim.run_until(SimTime::from_secs(3), 1_000_000);
        let dlte_lat = {
            let ue = dlte.sim.world().handler_as::<UeNode>(dlte.ues[0]).unwrap();
            ue.stats.attach_latency_ms.values()[0]
        };
        let mut cent = dlte_epc::topology::CentralizedLteBuilder::new(1, 1).build();
        cent.sim.run_until(SimTime::from_secs(3), 1_000_000);
        let cent_lat = {
            let ue = cent.sim.world().handler_as::<UeNode>(cent.ues[0]).unwrap();
            ue.stats.attach_latency_ms.values()[0]
        };
        assert!(
            dlte_lat * 2.0 < cent_lat,
            "dLTE {dlte_lat} ms vs centralized {cent_lat} ms"
        );
    }

    #[test]
    fn ping_rtt_shows_local_breakout() {
        let mut net = DlteNetworkBuilder::new(1, 1)
            .with_ue_plan(|_| DltePlan {
                app: UeApp::Pinger {
                    dst: DlteNetworkBuilder::ott_addr(),
                    interval: SimDuration::from_millis(100),
                    probe_bytes: 100,
                },
                ..Default::default()
            })
            .build();
        net.sim.run_until(SimTime::from_secs(5), 2_000_000);
        let w = net.sim.world();
        let ue = w.handler_as::<UeNode>(net.ues[0]).unwrap();
        assert!(ue.stats.pongs > 30);
        let rtts = &ue.stats.rtt_ms;
        // Path: radio 5 + backhaul 10 + inet 10 + lan ≈ 25 ms one way → ~50
        // ms RTT — no EPC detour (the centralized twin measures ~100 ms).
        let med = rtts.median();
        assert!((45.0..70.0).contains(&med), "median RTT {med} ms");
    }

    #[test]
    fn reattach_mobility_changes_address_and_recovers() {
        let mut builder = DlteNetworkBuilder::new(2, 1);
        builder.wire_all_cells = true;
        let mut net = builder
            .with_ue_plan(|_| DltePlan {
                app: UeApp::Pinger {
                    dst: DlteNetworkBuilder::ott_addr(),
                    interval: SimDuration::from_millis(50),
                    probe_bytes: 100,
                },
                mode: MobilityMode::ReAttach,
                schedule: vec![(SimTime::from_secs(3), 1)],
            })
            .build();
        net.sim.run_until(SimTime::from_secs(8), 5_000_000);
        let w = net.sim.world();
        let ue = w.handler_as::<UeNode>(net.ues[0]).unwrap();
        assert_eq!(ue.state, UeState::Attached);
        assert_eq!(ue.stats.attaches_completed, 2, "full re-attach at AP1");
        let addr = ue.addr.unwrap();
        assert!(
            DlteNetworkBuilder::ap_pool(1).contains(addr),
            "new address from AP1's pool: {addr}"
        );
        assert!(
            !ue.stats.handover_gap_ms.is_empty(),
            "interruption measured"
        );
        assert!(ue.stats.pongs > 50);
    }

    #[test]
    fn remote_directory_adds_one_lookup_then_caches() {
        let mut builder = DlteNetworkBuilder::new(1, 2);
        builder.keys = KeyDistribution::RemoteDirectory;
        let mut net = builder.build();
        net.sim.run_until(SimTime::from_secs(5), 2_000_000);
        let w = net.sim.world();
        for &ue_id in &net.ues {
            let ue = w.handler_as::<UeNode>(ue_id).unwrap();
            assert_eq!(ue.state, UeState::Attached);
        }
        let ap = w.handler_as::<DlteApNode>(net.aps[0]).unwrap();
        assert_eq!(ap.core.stats.directory_queries, 2, "one per new IMSI");
    }

    /// The tentpole invariant at the full-stack level: a dLTE scenario —
    /// attach, auth, address assignment, pinger traffic, X2 reports —
    /// produces bit-identical work counters, per-UE stats, flow traces and
    /// conservation audits at 1, 2 and 4 shards.
    #[test]
    fn sharded_build_is_bit_identical_to_single() {
        let run = |n: usize| {
            let mut net = DlteNetworkBuilder::new(4, 2)
                .with_ue_plan(|_| DltePlan {
                    app: UeApp::Pinger {
                        dst: DlteNetworkBuilder::ott_addr(),
                        interval: SimDuration::from_millis(100),
                        probe_bytes: 100,
                    },
                    ..Default::default()
                })
                .build_sharded(n);
            assert_eq!(net.sim.num_shards(), n);
            net.sim.run_until(SimTime::from_secs(5), 10_000_000);
            let pongs: Vec<u64> = net
                .ues
                .iter()
                .map(|&u| net.sim.handler_as::<UeNode>(u).unwrap().stats.pongs)
                .collect();
            let trace = net.sim.trace_merged();
            (
                net.sim.events_dispatched(),
                pongs,
                format!("{:?}", net.sim.audit_merged()),
                trace.flow_ids().len(),
            )
        };
        let one = run(1);
        let two = run(2);
        let four = run(4);
        assert!(one.0 > 0, "work happened");
        assert!(one.1.iter().all(|&p| p > 10), "every UE's pinger ran");
        assert_eq!(one, two);
        assert_eq!(one, four);
    }

    #[test]
    fn x2_agents_converge_across_aps() {
        let mut net = DlteNetworkBuilder::new(2, 1).build();
        net.sim.run_until(SimTime::from_secs(5), 2_000_000);
        let w = net.sim.world();
        for &ap_id in &net.aps {
            let ap = w.handler_as::<DlteApNode>(ap_id).unwrap();
            assert_eq!(ap.x2.live_peers(), 1);
            // Both APs have one client each → equal demand → 50/50.
            assert!(
                (ap.tdm_share() - 0.5).abs() < 1e-9,
                "share {}",
                ap.tdm_share()
            );
        }
    }

    /// A second move landing while the first move's attach is still in
    /// flight must abandon the half-open attach cleanly: no session or
    /// `attaching` entry leaks at the bypassed AP, the stale challenge is
    /// discarded rather than processed, and the backoff counter is not
    /// double-incremented.
    #[test]
    fn rapid_double_move_does_not_leak_or_double_backoff() {
        let mut builder = DlteNetworkBuilder::new(3, 1);
        builder.wire_all_cells = true;
        let mut net = builder
            .with_ue_plan(|i| DltePlan {
                mode: MobilityMode::ReAttach,
                // UE0: → AP1 at 3 s, → AP2 8 ms later: before AP1's
                // challenge (radio 5 ms each way + processing) can reach
                // the UE. UE1/UE2 stay home.
                schedule: if i == 0 {
                    vec![(SimTime::from_secs(3), 1), (SimTime::from_millis(3_008), 2)]
                } else {
                    Vec::new()
                },
                ..Default::default()
            })
            .build();
        net.sim.run_until(SimTime::from_secs(8), 5_000_000);
        let w = net.sim.world();
        let ue = w.handler_as::<UeNode>(net.ues[0]).unwrap();
        assert_eq!(ue.state, UeState::Attached);
        assert_eq!(ue.stats.cell_moves, 2);
        assert_eq!(
            ue.stats.attaches_completed, 2,
            "AP0, then AP2 — the AP1 attach was abandoned mid-flight"
        );
        assert_eq!(
            ue.stats.attach_retries, 0,
            "the abandoned attach must not inflate the backoff counter"
        );
        assert!(
            ue.stats.stale_nas_dropped >= 1,
            "AP1's late challenge discarded, not processed"
        );
        let addr = ue.addr.unwrap();
        assert!(
            DlteNetworkBuilder::ap_pool(2).contains(addr),
            "address from AP2's pool: {addr}"
        );
        // AP0 freed UE0's session; AP1 holds only its own home UE — UE0's
        // abandoned half-open attach was torn down by the move-2 detach.
        for (k, sessions) in [(0usize, 0usize), (1, 1), (2, 2)] {
            let ap = w.handler_as::<DlteApNode>(net.aps[k]).unwrap();
            assert_eq!(ap.core.active_sessions(), sessions, "ap{k} session count");
            assert!(
                ap.core.audit().attaching.is_empty(),
                "ap{k} leaked a half-open attach"
            );
        }
    }

    /// The X2 handover arm: when a roaming UE shows up at a new AP, the AP
    /// fetches the subscriber context from the previous AP over X2 instead
    /// of paying the wide-area directory round trip.
    #[test]
    fn x2_context_fetch_skips_directory_on_handover() {
        let mut builder = DlteNetworkBuilder::new(2, 1);
        builder.wire_all_cells = true;
        builder.keys = KeyDistribution::RemoteDirectory;
        builder.x2_context_fetch = true;
        let mut net = builder
            .with_ue_plan(|i| DltePlan {
                mode: MobilityMode::ReAttach,
                schedule: if i == 0 {
                    vec![(SimTime::from_secs(3), 1)]
                } else {
                    Vec::new()
                },
                ..Default::default()
            })
            .build();
        net.sim.run_until(SimTime::from_secs(6), 5_000_000);
        let w = net.sim.world();
        let ue = w.handler_as::<UeNode>(net.ues[0]).unwrap();
        assert_eq!(ue.state, UeState::Attached);
        assert_eq!(ue.stats.attaches_completed, 2);
        let addr = ue.addr.unwrap();
        assert!(
            DlteNetworkBuilder::ap_pool(1).contains(addr),
            "address from AP1's pool: {addr}"
        );
        let ap0 = w.handler_as::<DlteApNode>(net.aps[0]).unwrap();
        let ap1 = w.handler_as::<DlteApNode>(net.aps[1]).unwrap();
        // Each AP paid one directory query for the first sight of its own
        // home UE (t≈0, no peer reports yet → no fetch). UE0's handover
        // attach at AP1 was answered by AP0's cached context instead.
        assert_eq!(ap0.core.stats.directory_queries, 1);
        assert_eq!(ap0.fetch_stats.served, 1, "AP0 handed the context over");
        assert_eq!(ap1.fetch_stats.started, 1);
        assert_eq!(ap1.fetch_stats.hits, 1);
        assert_eq!(ap1.fetch_stats.fallbacks, 0);
        assert_eq!(
            ap1.core.stats.directory_queries, 1,
            "the handover attach itself skipped the wide-area directory"
        );
        assert_eq!(ap0.core.active_sessions(), 0, "old session released");
        assert_eq!(ap1.core.active_sessions(), 2, "home UE1 plus roaming UE0");
    }

    /// Handover toward a just-silenced AP must fall back to the directory
    /// instead of blackholing the attach: the target still looks fresh to
    /// its peers (silence shorter than the liveness horizon), so the fetch
    /// is sent, never answered, and the timeout takes the wide-area path.
    #[test]
    fn fetch_falls_back_when_context_peer_is_down() {
        use dlte_faults::{FaultPlan, FaultSpec};
        let mut builder = DlteNetworkBuilder::new(3, 1);
        builder.wire_all_cells = true;
        builder.keys = KeyDistribution::RemoteDirectory;
        builder.x2_context_fetch = true;
        let mut net = builder
            .with_ue_plan(|i| DltePlan {
                mode: MobilityMode::ReAttach,
                schedule: if i == 0 {
                    vec![(SimTime::from_secs(3), 1)]
                } else {
                    Vec::new()
                },
                ..Default::default()
            })
            .build();
        // AP0 goes dark 100 ms before UE0 arrives at AP1: the detach and
        // the context fetch toward it are both lost; AP2 nacks (no record).
        FaultPlan::new(1)
            .with(FaultSpec::NodePause {
                node: net.aps[0],
                at_s: 2.9,
                for_s: 2.0,
            })
            .inject_sharded(&mut net.sim);
        net.sim.run_until(SimTime::from_secs(8), 5_000_000);
        let w = net.sim.world();
        let ue = w.handler_as::<UeNode>(net.ues[0]).unwrap();
        assert_eq!(ue.state, UeState::Attached, "attach not blackholed");
        assert_eq!(
            ue.stats.attach_retries, 0,
            "fallback resolved within the attach timeout"
        );
        let addr = ue.addr.unwrap();
        assert!(
            DlteNetworkBuilder::ap_pool(1).contains(addr),
            "address from AP1's pool: {addr}"
        );
        let ap1 = w.handler_as::<DlteApNode>(net.aps[1]).unwrap();
        assert!(ap1.fetch_stats.started >= 1);
        assert_eq!(ap1.fetch_stats.hits, 0, "nobody held the context");
        assert!(
            ap1.fetch_stats.fallbacks >= 1,
            "timed out toward the dark AP and took the directory path"
        );
        // UE1 at t≈0 plus UE0's fallback — the fetch cost one timeout, not
        // the attach.
        assert_eq!(ap1.core.stats.directory_queries, 2);
        let ap2 = w.handler_as::<DlteApNode>(net.aps[2]).unwrap();
        assert_eq!(ap2.fetch_stats.served, 0);
    }

    /// End-to-end mobility oracle check: a waypoint population churning
    /// across 3 APs leaves evidence that satisfies every mobility invariant
    /// — serving exclusivity, session residency, bounded service gaps.
    #[test]
    fn moving_population_keeps_sessions_exclusive_and_bounded() {
        use crate::mobility::{ap_index_for, MovementModel};
        use dlte_check::{Bounds, MobilityEvidence, MobilityUeView, SpanView};
        let model = MovementModel::Waypoint {
            dwell_min_s: 1.0,
            dwell_max_s: 2.5,
        };
        let plan = model.plan(7, 6, 3, 2.0, 8.0);
        let mut net = DlteNetworkBuilder::new(3, 2)
            .with_move_plan(plan)
            .with_ue_plan(|_| DltePlan {
                app: UeApp::Pinger {
                    dst: DlteNetworkBuilder::ott_addr(),
                    interval: SimDuration::from_millis(100),
                    probe_bytes: 100,
                },
                ..Default::default()
            })
            .build();
        net.sim.run_until(SimTime::from_secs(12), 20_000_000);
        let w = net.sim.world();
        let mut ev = MobilityEvidence {
            max_dwell_s: 2.5,
            ..Default::default()
        };
        for (k, &ap_id) in net.aps.iter().enumerate() {
            let ap = w.handler_as::<DlteApNode>(ap_id).unwrap();
            for s in ap.core.session_spans() {
                ev.spans.push(SpanView {
                    core: k,
                    imsi: s.imsi,
                    start_ns: s.start_ns,
                    end_ns: s.end_ns,
                });
            }
        }
        for (i, &ue_id) in net.ues.iter().enumerate() {
            let ue = w.handler_as::<UeNode>(ue_id).unwrap();
            let home = i / 2;
            ev.ues.push(MobilityUeView {
                imsi: DlteNetworkBuilder::imsi_of(i),
                attached: ue.state == UeState::Attached,
                serving_core: Some(ap_index_for(home, ue.current_cell_index(), 3)),
                moves: ue.stats.cell_moves,
                gaps_ms: ue.stats.handover_gap_ms.values().to_vec(),
            });
        }
        let total_moves: u64 = ev.ues.iter().map(|u| u.moves).sum();
        assert!(
            total_moves >= 6,
            "population actually churned: {total_moves}"
        );
        let violations = dlte_check::check_mobility(&ev, 12.0, &Bounds::default());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn transport_rides_reattach_with_migration() {
        let mut builder = DlteNetworkBuilder::new(2, 1);
        builder.wire_all_cells = true;
        let mut net = builder
            .with_ue_plan(|_| DltePlan {
                app: UeApp::Upper(Box::new(TransportUeApp::new(
                    TransportConfig::modern(),
                    DlteNetworkBuilder::ott_transport_addr(),
                ))),
                mode: MobilityMode::ReAttach,
                schedule: vec![(SimTime::from_secs(3), 1)],
            })
            .build();
        net.sim.run_until(SimTime::from_secs(8), 10_000_000);
        let w = net.sim.world();
        let ue = w.handler_as::<UeNode>(net.ues[0]).unwrap();
        let app = ue.upper_as::<TransportUeApp>().expect("typed upper layer");
        assert_eq!(app.connects, 1, "migration avoided a new handshake");
        assert_eq!(app.resume_ms.len(), 1, "one resume measured");
        assert!(app.conn.acked_bytes() > 100_000, "flow kept moving");
        let resume = app.resume_ms.values()[0];
        // Resume cost ≈ attach (a few radio RTTs) + one path RTT.
        assert!((10.0..1000.0).contains(&resume), "resume {resume} ms");
    }
}
