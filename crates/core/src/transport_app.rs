//! The transport-over-attach integration: a UE upper layer that keeps an
//! application flow alive across dLTE's address churn.
//!
//! This is the working half of §4.2's mobility argument. The UE's attach
//! machine ([`dlte_epc::UeNode`]) reports every (re)attach; this layer
//! drives a [`ClientConn`] through it:
//!
//! * first attach → 1-RTT handshake, token cached;
//! * re-attach after a cell change → connection migration on the same CID
//!   (modern config) or a fresh handshake with 0-RTT resumption (token) or
//!   a cold 1-RTT reconnect (legacy config);
//! * resume latency (address change → first new acknowledged byte) is the
//!   experiment E8/E12 metric.

use dlte_epc::ue::{UeUpperLayer, UPPER_TAG_BASE};
use dlte_net::{Addr, NodeCtx, Packet, Payload};
use dlte_sim::stats::Samples;
use dlte_sim::{SimDuration, SimTime};
use dlte_transport::connection::{ClientConn, ConnEvent, TransportConfig};
use dlte_transport::frames::{Frame, ResumeToken};

const TAG_TICK: u64 = UPPER_TAG_BASE + 1;

/// A continuous upload riding the UE's attach state.
pub struct TransportUeApp {
    pub conn: ClientConn,
    pub server_addr: Addr,
    token: Option<ResumeToken>,
    addr: Option<Addr>,
    tick: SimDuration,
    /// Keep roughly this many bytes queued (continuous source).
    top_up_bytes: u64,
    queued_total: u64,
    /// Resume measurement state.
    waiting_since: Option<SimTime>,
    acked_at_change: u64,
    /// Time from address change to the first newly acknowledged byte, ms.
    pub resume_ms: Samples,
    pub connects: u64,
    ticking: bool,
}

impl TransportUeApp {
    pub fn new(cfg: TransportConfig, server_addr: Addr) -> Self {
        TransportUeApp {
            conn: ClientConn::new(1, cfg),
            server_addr,
            token: None,
            addr: None,
            tick: SimDuration::from_millis(10),
            top_up_bytes: 64 * 1200,
            queued_total: 0,
            waiting_since: None,
            acked_at_change: 0,
            resume_ms: Samples::new(),
            connects: 0,
            ticking: false,
        }
    }

    fn top_up(&mut self) {
        // Keep the pipe full: queue more once the backlog drops under half
        // the target.
        let outstanding = self.queued_total - self.conn.acked_bytes();
        if outstanding < self.top_up_bytes / 2 {
            let add = self.top_up_bytes - outstanding;
            self.conn.queue(1, add, false);
            self.queued_total += add;
        }
    }

    fn flush(&mut self, ctx: &mut NodeCtx<'_>) {
        let Some(src) = self.addr else { return };
        for frame in self.conn.take_output() {
            let bytes = frame.wire_bytes();
            let id = ctx.new_packet_id();
            let p = dlte_net::Packet::new(id, src, self.server_addr, bytes, ctx.now)
                .with_payload(Payload::control(frame));
            ctx.forward(p);
        }
        for ev in self.conn.take_events() {
            if let ConnEvent::TokenIssued(t) = ev {
                self.token = Some(t);
            }
        }
        // Resume detection.
        if let Some(t0) = self.waiting_since {
            if self.conn.acked_bytes() > self.acked_at_change {
                self.resume_ms
                    .push_duration_ms(ctx.now.saturating_since(t0));
                self.waiting_since = None;
            }
        }
    }
}

impl UeUpperLayer for TransportUeApp {
    fn on_attached(&mut self, ctx: &mut NodeCtx<'_>, ue_addr: Addr, reattach: bool) {
        self.addr = Some(ue_addr);
        if !reattach {
            self.top_up();
            self.conn.connect(ctx.now, self.token);
            self.connects += 1;
        } else {
            self.waiting_since = Some(ctx.now);
            self.acked_at_change = self.conn.acked_bytes();
            self.conn.on_address_change(ctx.now);
            if !self.conn.is_established() {
                // Migration unavailable (or connection was still young):
                // reconnect, riding 0-RTT if we hold a token.
                self.top_up();
                self.conn.connect(ctx.now, self.token);
                self.connects += 1;
            }
        }
        self.flush(ctx);
        if !self.ticking {
            self.ticking = true;
            let tick = self.tick;
            ctx.set_timer(tick, TAG_TICK);
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tag: u64) {
        if tag != TAG_TICK {
            return;
        }
        self.conn.on_tick(ctx.now);
        if self.conn.is_established() {
            self.top_up();
        }
        self.flush(ctx);
        let tick = self.tick;
        ctx.set_timer(tick, TAG_TICK);
    }

    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, packet: &Packet) -> bool {
        let Some(frame) = packet.payload.as_control::<Frame>() else {
            return false;
        };
        let frame = frame.clone();
        self.conn.on_frame(ctx.now, &frame);
        self.flush(ctx);
        true
    }
}
