//! Post-run state snapshots for invariant checking.
//!
//! Each stateful EPC entity can export a flat, serializable view of its
//! session/bearer tables. The `dlte-check` oracles cross-reference these
//! snapshots (MME ↔ S-GW ↔ P-GW, or local core ↔ UE) without reaching into
//! any node's private state, and a snapshot embedded in a fuzz repro stays
//! readable after the internals change.
//!
//! Every `Vec` is sorted (by IMSI or address) so equal states serialize to
//! equal JSON — snapshots are directly diffable across runs.

use dlte_net::Addr;
use serde::{Deserialize, Serialize};

/// MME control-plane view: one entry per `Active` UE context.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MmeAudit {
    pub ues: Vec<MmeUeAudit>,
    /// IMSIs with a non-`Active` context (attach or path switch in flight).
    pub transient: Vec<u64>,
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MmeUeAudit {
    pub imsi: u64,
    pub ue_addr: Addr,
    pub teid_dl: u32,
    pub teid_ul_sgw: u32,
    pub ecm_idle: bool,
}

/// S-GW bearer table plus index health.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SgwAudit {
    pub bearers: Vec<SgwBearerAudit>,
    /// Sizes of the TEID lookup maps; each must equal `bearers.len()` when
    /// the table is referentially consistent (no dangling index entries).
    pub ul_index_len: usize,
    pub dl_index_len: usize,
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SgwBearerAudit {
    pub imsi: u64,
    pub teid_ul_sgw: u32,
    pub teid_dl_sgw: u32,
    pub teid_ul_pgw: Option<u32>,
    pub ue_addr: Option<Addr>,
    pub enb_connected: bool,
    /// Both TEID indexes point back at this bearer.
    pub indexed: bool,
}

/// P-GW session table plus index health.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PgwAudit {
    pub sessions: Vec<PgwSessionAudit>,
    pub ul_index_len: usize,
    pub imsi_index_len: usize,
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PgwSessionAudit {
    pub imsi: u64,
    pub ue_addr: Addr,
    pub teid_dl_sgw: u32,
    pub teid_ul_pgw: u32,
    /// Both lookup maps (`by_ul_teid`, `by_imsi`) point back at this session.
    pub indexed: bool,
}

/// dLTE local-core session table plus index health.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LocalCoreAudit {
    pub sessions: Vec<LocalSessionAudit>,
    /// Size of the reverse (address → IMSI) map; equals `sessions.len()`
    /// when consistent.
    pub addr_index_len: usize,
    /// IMSIs with an attach in flight.
    pub attaching: Vec<u64>,
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LocalSessionAudit {
    pub imsi: u64,
    pub ue_addr: Addr,
    /// The reverse map points back at this IMSI.
    pub indexed: bool,
}
