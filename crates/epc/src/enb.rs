//! The eNodeB (radio-side relay and GTP endpoint).
//!
//! In the centralized architecture the eNB is deliberately dumb: it relays
//! NAS between UE and MME (S1AP transport), encapsulates uplink user
//! traffic toward the S-GW, and decapsulates downlink tunnels onto the
//! right radio link. All intelligence lives in the core — which is exactly
//! the design dLTE inverts (see [`crate::local_core`]).

use crate::messages::{wire, Nas, S1Nas, S1ap, Teid};
use crate::obs::{self, HarqTracer};
use dlte_auth::Imsi;
use dlte_net::fxhash::FxHashMap;
use dlte_net::gtp;
use dlte_net::gtp::GtpErrorIndication;
use dlte_net::{Addr, LinkId, NodeCtx, NodeHandler, Packet, Payload, Prefix};
use dlte_obs::{Event, NasProc};
use dlte_sim::{SimDuration, SimRng, SimTime};

/// Tag of the periodic inactivity sweep timer.
const TAG_IDLE_SWEEP: u64 = 9_100_000;

#[derive(Clone, Copy, Debug)]
struct UeRadioCtx {
    ue_addr: Addr,
    sgw_addr: Addr,
    teid_ul: Teid,
    teid_dl: Teid,
    last_activity: SimTime,
    release_requested: bool,
}

/// eNB statistics.
#[derive(Clone, Debug, Default)]
pub struct EnbStats {
    pub nas_relayed_up: u64,
    pub nas_relayed_down: u64,
    pub ul_user_packets: u64,
    pub dl_user_packets: u64,
    pub contexts_installed: u64,
    pub contexts_released: u64,
    pub idle_releases_requested: u64,
    pub pages_relayed: u64,
    pub no_context_drops: u64,
    /// Contexts torn down because the core signalled (via a GTP-U error
    /// indication) that it lost the bearer.
    pub error_indication_releases: u64,
}

/// The eNodeB node handler.
pub struct EnbNode {
    pub mme_addr: Addr,
    /// When set, UEs with no user-plane traffic for this long are moved to
    /// ECM-IDLE via an S1 release request (None = always-connected).
    pub idle_timeout: Option<SimDuration>,
    /// Radio wiring: which link reaches which (potential) UE, and the
    /// control address the UE listens on for relayed NAS.
    radio: FxHashMap<Imsi, (LinkId, Addr)>,
    contexts: FxHashMap<Imsi, UeRadioCtx>,
    by_dl_teid: FxHashMap<Teid, Imsi>,
    by_ue_addr: FxHashMap<Addr, Imsi>,
    /// Trace-only radio HARQ model over the user-plane paths (dedicated
    /// RNG stream; see [`crate::obs::HarqTracer`]).
    harq: HarqTracer,
    pub stats: EnbStats,
}

impl EnbNode {
    pub fn new(mme_addr: Addr) -> Self {
        EnbNode {
            mme_addr,
            idle_timeout: None,
            radio: FxHashMap::default(),
            contexts: FxHashMap::default(),
            by_dl_teid: FxHashMap::default(),
            by_ue_addr: FxHashMap::default(),
            harq: HarqTracer::new(SimRng::new(0x48415251)),
            stats: EnbStats::default(),
        }
    }

    /// Wire a UE's radio link (done at topology build for every UE that can
    /// ever camp on this eNB). `ue_ctrl` is the UE's NAS-relay address.
    pub fn wire_ue(&mut self, imsi: Imsi, link: LinkId, ue_ctrl: Addr) {
        self.radio.insert(imsi, (link, ue_ctrl));
    }

    pub fn attached_ues(&self) -> usize {
        self.contexts.len()
    }

    fn relay_nas_downlink(&mut self, ctx: &mut NodeCtx<'_>, s1nas: S1Nas, size: u32) {
        let Some(&(link, ue_ctrl)) = self.radio.get(&s1nas.imsi) else {
            return; // UE not wired here
        };
        self.stats.nas_relayed_down += 1;
        let p = ctx
            .make_packet(ue_ctrl, size)
            .with_payload(Payload::control(s1nas));
        ctx.forward_via(link, p);
    }

    fn handle_s1ap(&mut self, ctx: &mut NodeCtx<'_>, msg: S1ap) {
        match msg {
            S1ap::InitialContextSetup {
                imsi,
                ue_addr,
                sgw_addr,
                teid_ul,
                teid_dl,
            } => {
                let Some(&(link, _)) = self.radio.get(&imsi) else {
                    return;
                };
                self.contexts.insert(
                    imsi,
                    UeRadioCtx {
                        ue_addr,
                        sgw_addr,
                        teid_ul,
                        teid_dl,
                        last_activity: ctx.now,
                        release_requested: false,
                    },
                );
                self.by_dl_teid.insert(teid_dl, imsi);
                self.by_ue_addr.insert(ue_addr, imsi);
                self.stats.contexts_installed += 1;
                // Bearer activation is instantaneous at the eNB (the real
                // InitialContextSetupResponse is not modelled), so its span
                // is zero-width — it still marks *when* the bearer went in.
                obs::nas_start(ctx, NasProc::Bearer, imsi);
                obs::nas_end(ctx, NasProc::Bearer, imsi, true);
                // Radio route so decapsulated (and any routed) downlink
                // traffic for the UE address leaves on the radio link.
                ctx.node_info_mut()
                    .set_route(Prefix::new(ue_addr, 32), link);
            }
            S1ap::UeContextRelease { imsi } => {
                if let Some(c) = self.contexts.remove(&imsi) {
                    self.by_dl_teid.remove(&c.teid_dl);
                    self.by_ue_addr.remove(&c.ue_addr);
                    ctx.node_info_mut().remove_route(Prefix::new(c.ue_addr, 32));
                    self.stats.contexts_released += 1;
                    // Tell the UE its RRC connection is gone (it keeps the
                    // IP and will service-request before transmitting).
                    let rel = S1Nas {
                        imsi,
                        nas: Nas::RrcRelease { imsi },
                    };
                    self.relay_nas_downlink(ctx, rel, wire::S1AP_RELEASE);
                }
            }
            S1ap::PathSwitchAck { .. } => {
                // Context was installed by the accompanying setup message.
            }
            S1ap::Paging { imsi } => {
                self.stats.pages_relayed += 1;
                let notify = S1Nas {
                    imsi,
                    nas: Nas::PagingNotify { imsi },
                };
                self.relay_nas_downlink(ctx, notify, wire::PAGING);
            }
            S1ap::PathSwitchRequest { .. } | S1ap::UeContextReleaseRequest { .. } => {}
        }
    }

    /// The S-GW has no bearer behind one of our tunnels (it crashed, or the
    /// P-GW behind it did). Tear the radio context down and order the UE to
    /// detach and re-attach — the eNB is the only element with a radio path
    /// to say so.
    fn on_error_indication(&mut self, ctx: &mut NodeCtx<'_>, teid: Teid) {
        // The indication may carry our downlink TEID (S-GW-initiated
        // teardown) or our uplink TEID toward the S-GW (bounced uplink).
        let imsi = match self.by_dl_teid.get(&teid) {
            Some(&imsi) => Some(imsi),
            None => self
                .contexts
                .iter()
                .filter(|(_, c)| c.teid_ul == teid)
                .map(|(&imsi, _)| imsi)
                .min(),
        };
        let Some(imsi) = imsi else { return };
        let Some(c) = self.contexts.remove(&imsi) else {
            return;
        };
        self.by_dl_teid.remove(&c.teid_dl);
        self.by_ue_addr.remove(&c.ue_addr);
        ctx.node_info_mut().remove_route(Prefix::new(c.ue_addr, 32));
        self.stats.error_indication_releases += 1;
        obs::emit(ctx, Event::GtpErrorIndication { teid: teid as u64 });
        let detach = S1Nas {
            imsi,
            nas: Nas::NetworkDetach { imsi },
        };
        self.relay_nas_downlink(ctx, detach, wire::NETWORK_DETACH);
    }

    /// NAS from the radio side → MME (S1AP relay).
    fn relay_nas_uplink(&mut self, ctx: &mut NodeCtx<'_>, mut s1nas: S1Nas, size: u32) {
        self.stats.nas_relayed_up += 1;
        let my_addr = ctx.my_addr();
        // Fill in the S1 transport context the MME needs.
        match &mut s1nas.nas {
            Nas::AttachRequest { via_enb, .. } => *via_enb = my_addr,
            Nas::ServiceRequest { imsi, ue_addr } => {
                // Arriving UE with an existing session: convert to an S1
                // path switch instead of relaying NAS.
                let ps = ctx
                    .make_packet(self.mme_addr, wire::S1AP_PATH_SWITCH)
                    .with_payload(Payload::control(S1ap::PathSwitchRequest {
                        imsi: *imsi,
                        ue_addr: *ue_addr,
                        new_enb: my_addr,
                    }));
                ctx.forward(ps);
                return;
            }
            _ => {}
        }
        let p = ctx
            .make_packet(self.mme_addr, size)
            .with_payload(Payload::control(s1nas));
        ctx.forward(p);
    }
}

impl NodeHandler for EnbNode {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        if let Some(t) = self.idle_timeout {
            ctx.set_timer(t / 2, TAG_IDLE_SWEEP);
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tag: u64) {
        if tag != TAG_IDLE_SWEEP {
            return;
        }
        let Some(timeout) = self.idle_timeout else {
            return;
        };
        let now = ctx.now;
        let mut to_release: Vec<Imsi> = Vec::new();
        for (&imsi, c) in &mut self.contexts {
            if !c.release_requested && now.saturating_since(c.last_activity) >= timeout {
                c.release_requested = true;
                to_release.push(imsi);
            }
        }
        for imsi in to_release {
            self.stats.idle_releases_requested += 1;
            let p = ctx
                .make_packet(self.mme_addr, wire::S1AP_RELEASE)
                .with_payload(Payload::control(S1ap::UeContextReleaseRequest { imsi }));
            ctx.forward(p);
        }
        ctx.set_timer(timeout / 2, TAG_IDLE_SWEEP);
    }

    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, packet: Packet) {
        // Control traffic.
        if let Some(s1nas) = packet.payload.as_control::<S1Nas>().cloned() {
            if packet.src == self.mme_addr {
                self.relay_nas_downlink(ctx, s1nas, packet.size_bytes);
            } else {
                self.relay_nas_uplink(ctx, s1nas, packet.size_bytes);
            }
            return;
        }
        if let Some(msg) = packet.payload.as_control::<S1ap>().cloned() {
            self.handle_s1ap(ctx, msg);
            return;
        }
        if let Some(err) = packet.payload.as_control::<GtpErrorIndication>().copied() {
            self.on_error_indication(ctx, err.teid);
            return;
        }
        // Downlink user plane: tunneled packet addressed to this eNB.
        if ctx.peer_info(ctx.node).owns(packet.dst) {
            if let Some(teid) = packet.tunnels.last().map(|h| h.teid) {
                if let Some(&imsi) = self.by_dl_teid.get(&teid) {
                    if let Some(c) = self.contexts.get_mut(&imsi) {
                        c.last_activity = ctx.now;
                    }
                    if let Ok(inner) = gtp::decapsulate(packet, Some(teid)) {
                        self.stats.dl_user_packets += 1;
                        self.harq.observe_block(ctx, imsi);
                        // The radio route installed at context setup carries
                        // it the rest of the way.
                        ctx.forward(inner);
                    }
                    return;
                }
            }
            return; // addressed to us but not a known tunnel: consume
        }
        // Uplink user plane: native packet from an attached UE.
        if let Some(&imsi) = self.by_ue_addr.get(&packet.src) {
            let Some(c) = self.contexts.get_mut(&imsi) else {
                // Dangling index entry (context released without
                // unindexing): repair the index and treat the sender as
                // context-less instead of panicking on hostile input.
                self.by_ue_addr.remove(&packet.src);
                self.stats.no_context_drops += 1;
                return;
            };
            c.last_activity = ctx.now;
            let c = *c;
            self.stats.ul_user_packets += 1;
            self.harq.observe_block(ctx, imsi);
            let my_addr = ctx.my_addr();
            let out = gtp::encapsulate(packet, c.teid_ul, my_addr, c.sgw_addr);
            ctx.forward(out);
            return;
        }
        // A UE-pool source with no radio context has no bearer: drop (the
        // UE must service-request first — matching LTE, where an idle UE
        // cannot just transmit on PUSCH).
        if crate::topology::CentralizedLteBuilder::ue_pool_prefix().contains(packet.src) {
            self.stats.no_context_drops += 1;
            return;
        }
        // Anything else: plain routing (e.g. backhaul transit).
        ctx.forward(packet);
    }
}
