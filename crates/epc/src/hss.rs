//! The Home Subscriber Server.
//!
//! Holds the subscriber database and mints authentication vectors on S6a
//! request. In the centralized architecture this is the *only* place
//! vectors can come from — the root of the closed-core property (§2.1).

use crate::messages::{wire, S6a};
use crate::proc::Processor;
use dlte_auth::vectors::SubscriberDb;
use dlte_auth::{Imsi, Key};
use dlte_net::{NodeCtx, NodeHandler, Packet, Payload};
use dlte_sim::{SimDuration, SimRng};

/// The HSS node handler.
pub struct HssNode {
    pub db: SubscriberDb,
    pub proc: Processor,
    rng: SimRng,
}

impl HssNode {
    pub fn new(per_msg: SimDuration, rng: SimRng) -> Self {
        HssNode {
            db: SubscriberDb::new(),
            proc: Processor::new(per_msg, 0),
            rng,
        }
    }

    /// Provision a subscriber.
    pub fn provision(&mut self, imsi: Imsi, k: Key) {
        self.db.provision(imsi, k);
    }
}

impl NodeHandler for HssNode {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, packet: Packet) {
        let Some(S6a::AuthInfoRequest {
            imsi,
            sn_id,
            resync_sqn,
        }) = packet.payload.as_control::<S6a>().cloned()
        else {
            // Not for us (e.g. a stray user-plane packet): default-route it.
            if ctx.peer_info(ctx.node).owns(packet.dst) {
                ctx.deliver_local(&packet);
            } else {
                ctx.forward(packet);
            }
            return;
        };
        if let Some(sqn) = resync_sqn {
            self.db.resync(imsi, sqn);
        }
        let vector = self.db.vector_for(imsi, sn_id, &mut self.rng);
        let reply = ctx
            .make_packet(packet.src, wire::S6A_ANSWER)
            .with_payload(Payload::control(S6a::AuthInfoAnswer { imsi, vector }));
        self.proc.process_one(ctx, reply);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tag: u64) {
        self.proc.on_timer(ctx, tag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlte_net::{Addr, LinkConfig, NetworkBuilder, Prefix};
    use dlte_sim::SimTime;

    /// Minimal MME stand-in that asks for one vector and stores the answer.
    struct VectorAsker {
        hss: Addr,
        imsi: Imsi,
        got: Option<Option<dlte_auth::vectors::AuthVector>>,
    }

    impl NodeHandler for VectorAsker {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            let p = ctx
                .make_packet(self.hss, wire::S6A_REQUEST)
                .with_payload(Payload::control(S6a::AuthInfoRequest {
                    imsi: self.imsi,
                    sn_id: 1,
                    resync_sqn: None,
                }));
            ctx.forward(p);
        }
        fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, packet: Packet) {
            if let Some(S6a::AuthInfoAnswer { vector, .. }) = packet.payload.as_control::<S6a>() {
                self.got = Some(*vector);
            }
        }
    }

    fn run(
        imsi_provisioned: Imsi,
        imsi_asked: Imsi,
    ) -> Option<Option<dlte_auth::vectors::AuthVector>> {
        let mut b = NetworkBuilder::new(3);
        let hss_addr = Addr::new(10, 255, 0, 1);
        let mme_addr = Addr::new(10, 255, 0, 2);
        let mme = b.host(
            "mme",
            Box::new(VectorAsker {
                hss: hss_addr,
                imsi: imsi_asked,
                got: None,
            }),
        );
        b.addr(mme, mme_addr);
        let mut hss_node = HssNode::new(SimDuration::from_micros(500), SimRng::new(1));
        hss_node.provision(imsi_provisioned, 0xABCD);
        let hss = b.host("hss", Box::new(hss_node));
        b.addr(hss, hss_addr);
        let l = b.link(mme, hss, LinkConfig::lan());
        b.route(mme, Prefix::new(hss_addr, 32), l);
        b.route(hss, Prefix::new(mme_addr, 32), l);
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(1), 100_000);
        sim.world().handler_as::<VectorAsker>(mme).unwrap().got
    }

    #[test]
    fn known_subscriber_gets_vector() {
        let got = run(42, 42).expect("answer arrived");
        assert!(got.is_some(), "vector for provisioned subscriber");
    }

    #[test]
    fn unknown_subscriber_gets_none() {
        let got = run(42, 99).expect("answer arrived");
        assert!(got.is_none(), "no vector for unknown subscriber");
    }
}
