//! # dlte-epc — the Evolved Packet Core, centralized and stubbed
//!
//! Implements both sides of the paper's architectural comparison as
//! [`dlte_net::NodeHandler`]s over the packet substrate:
//!
//! * **Centralized LTE** (§2.1): [`HssNode`], [`MmeNode`], [`SgwNode`],
//!   [`PgwNode`] — the full attach call flow (NAS attach → EPS-AKA → session
//!   creation → bearer setup), GTP-U user-plane tunneling eNB → S-GW → P-GW,
//!   and S1-style path-switch handover that preserves the UE's IP address.
//! * **dLTE local core** (§4.1): [`LocalCoreNode`] — the pared-down stub
//!   that authenticates against published keys, terminates tunnels at the
//!   AP, assigns locally routable addresses and performs local breakout.
//!   No mobility management, no inter-gateway signaling, no billing.
//! * The common actors: [`EnbNode`] (radio-side relay + GTP endpoint) and
//!   [`UeNode`] (attach state machine + embedded application).
//!
//! Control-plane entities process messages through a [`proc::Processor`]
//! with finite service rate, which is what makes the centralized core a
//! measurable chokepoint (experiment E9) while per-AP stubs scale linearly.

pub mod audit;
pub mod enb;
pub mod hss;
pub mod local_core;
pub mod messages;
pub mod mme;
pub mod obs;
pub mod pgw;
pub mod proc;
pub mod sgw;
pub mod topology;
pub mod ue;

pub use audit::{LocalCoreAudit, MmeAudit, PgwAudit, SgwAudit};
pub use enb::EnbNode;
pub use hss::HssNode;
pub use local_core::LocalCoreNode;
pub use messages::*;
pub use mme::MmeNode;
pub use pgw::PgwNode;
pub use sgw::SgwNode;
pub use topology::{CentralizedLteBuilder, CentralizedLteNet};
pub use ue::{UeApp, UeNode, UeState};
