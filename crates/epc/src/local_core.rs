//! The dLTE local core — §4.1's "EPC stub at each AP".
//!
//! One handler plays every role the UE expects from a network (MME-ish NAS
//! endpoint, HSS-ish vector minting from published keys, P-GW-ish address
//! assignment) while doing *none* of the EPC's wide-area work: no tunnels,
//! no inter-gateway signaling, no mobility management, no billing. User
//! traffic leaves the AP as native IP — local breakout — so the AP owner
//! keeps routing control, exactly as the paper prescribes.
//!
//! Keys come either from a pre-synchronized local directory copy or from a
//! remote [`KeyDirectoryNode`] over the Internet (one extra RTT on first
//! attach, then cached) — letting experiment E8 quantify the cost of
//! keeping identity out of the access network.

use crate::messages::{wire, Nas, RejectCause, S1Nas, SnId};
use crate::obs::{self, HarqTracer};
use crate::proc::Processor;
use dlte_auth::open::PublishedKeyDirectory;
use dlte_auth::vectors::{generate_vector, AuthVector, SubscriberRecord};
use dlte_auth::{Imsi, Key};
use dlte_net::fxhash::FxHashMap;
use dlte_net::{Addr, AddrPool, LinkId, NodeCtx, NodeHandler, Packet, Payload, Prefix};
use dlte_obs::{AkaStep, NasProc};
use dlte_sim::stats::Samples;
use dlte_sim::{SimDuration, SimRng, SimTime};

/// Where the stub gets subscriber keys.
pub enum KeySource {
    /// A locally synchronized copy of the published-key directory.
    Local(PublishedKeyDirectory),
    /// A remote directory service queried over the backhaul on first sight
    /// of an IMSI (answers are cached).
    Remote { addr: Addr },
}

/// Directory protocol messages.
#[derive(Clone, Debug)]
pub enum DirMsg {
    Query { imsi: Imsi, reply_to: Addr },
    Answer { imsi: Imsi, key: Option<Key> },
}

/// On-wire size of directory messages.
pub const DIR_MSG_BYTES: u32 = 96;

/// Local-core statistics.
#[derive(Clone, Debug, Default)]
pub struct LocalCoreStats {
    pub attach_requests: u64,
    pub attaches_completed: u64,
    pub attaches_rejected: u64,
    pub directory_queries: u64,
    pub auth_resyncs: u64,
    /// Attach latency as seen from the stub (request → accept sent), ms.
    pub attach_latency_ms: Samples,
    pub ul_user_packets: u64,
    pub dl_user_packets: u64,
}

/// One served interval of an IMSI at this core: opened when the attach
/// accept is sent, closed on detach/release/replacement. The mobility
/// oracles consume these to prove serving exclusivity (no IMSI held by two
/// cores in the same instant) across handover storms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionSpan {
    pub imsi: Imsi,
    pub start_ns: u64,
    /// `None` while the session is still open at run end.
    pub end_ns: Option<u64>,
}

#[derive(Clone, Debug)]
enum AttachPhase {
    AwaitKey {
        started: SimTime,
    },
    AwaitAuth {
        started: SimTime,
        vector: AuthVector,
        resyncs: u8,
    },
}

/// The dLTE AP's local core.
pub struct LocalCoreNode {
    pub sn_id: SnId,
    pub pool: AddrPool,
    keys: KeySource,
    /// Radio wiring, as in [`crate::EnbNode`].
    radio: FxHashMap<Imsi, (LinkId, Addr)>,
    /// Cached subscriber records (from either key source).
    records: FxHashMap<Imsi, SubscriberRecord>,
    attaching: FxHashMap<Imsi, AttachPhase>,
    sessions: FxHashMap<Imsi, Addr>,
    by_ue_addr: FxHashMap<Addr, Imsi>,
    /// Chronological log of served intervals (see [`SessionSpan`]).
    session_log: Vec<SessionSpan>,
    /// Index into `session_log` of each IMSI's currently open span.
    open_span: FxHashMap<Imsi, usize>,
    pub proc: Processor,
    rng: SimRng,
    /// Trace-only radio HARQ model over the breakout user plane (dedicated
    /// RNG stream forked at construction; never touches `self.rng`).
    harq: HarqTracer,
    pub stats: LocalCoreStats,
}

impl LocalCoreNode {
    pub fn new(
        sn_id: SnId,
        pool: AddrPool,
        keys: KeySource,
        per_msg: SimDuration,
        rng: SimRng,
    ) -> Self {
        LocalCoreNode {
            sn_id,
            pool,
            keys,
            radio: FxHashMap::default(),
            records: FxHashMap::default(),
            attaching: FxHashMap::default(),
            sessions: FxHashMap::default(),
            by_ue_addr: FxHashMap::default(),
            session_log: Vec::new(),
            open_span: FxHashMap::default(),
            proc: Processor::new(per_msg, 0),
            harq: HarqTracer::new(rng.fork("harq-trace")),
            rng,
            stats: LocalCoreStats::default(),
        }
    }

    /// Wire a UE's radio link.
    pub fn wire_ue(&mut self, imsi: Imsi, link: LinkId, ue_ctrl: Addr) {
        self.radio.insert(imsi, (link, ue_ctrl));
    }

    pub fn active_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// The served-interval log, in open order (see [`SessionSpan`]).
    pub fn session_spans(&self) -> &[SessionSpan] {
        &self.session_log
    }

    /// Is the subscriber's key already cached at this core?
    pub fn has_record(&self, imsi: Imsi) -> bool {
        self.records.contains_key(&imsi)
    }

    /// Export the cached subscriber key and SQN (for X2 context transfer to
    /// a neighboring AP).
    pub fn subscriber_record(&self, imsi: Imsi) -> Option<(Key, u64)> {
        self.records.get(&imsi).map(|r| (r.k, r.sqn))
    }

    /// Install a subscriber record obtained out-of-band (X2 context fetch
    /// from a neighbor). SQNs max-merge so a transferred context never
    /// regresses the counter and forces a resync cycle.
    pub fn install_record(&mut self, imsi: Imsi, k: Key, sqn: u64) {
        let rec = self
            .records
            .entry(imsi)
            .or_insert(SubscriberRecord { imsi, k, sqn });
        rec.sqn = rec.sqn.max(sqn);
    }

    fn open_session_span(&mut self, imsi: Imsi, now: SimTime) {
        self.close_session_span(imsi, now);
        self.open_span.insert(imsi, self.session_log.len());
        self.session_log.push(SessionSpan {
            imsi,
            start_ns: now.as_nanos(),
            end_ns: None,
        });
    }

    fn close_session_span(&mut self, imsi: Imsi, now: SimTime) {
        if let Some(i) = self.open_span.remove(&imsi) {
            self.session_log[i].end_ns = Some(now.as_nanos());
        }
    }

    /// Tear down any state held for `imsi`: the active session (address,
    /// route, pool slot) *and* a half-open attach. Serves both the NAS
    /// detach path and the X2 handover-out path, and is deliberately
    /// idempotent — a detach racing a move must leave nothing behind no
    /// matter which arrives first.
    pub fn release_session(&mut self, ctx: &mut NodeCtx<'_>, imsi: Imsi) {
        self.attaching.remove(&imsi);
        if let Some(ue_addr) = self.sessions.remove(&imsi) {
            self.by_ue_addr.remove(&ue_addr);
            ctx.node_info_mut().remove_route(Prefix::new(ue_addr, 32));
            self.pool.release(ue_addr);
        }
        self.close_session_span(imsi, ctx.now);
    }

    /// Snapshot the session table for post-run invariant checking.
    pub fn audit(&self) -> crate::audit::LocalCoreAudit {
        let mut sessions: Vec<_> = self
            .sessions
            .iter()
            .map(|(&imsi, &ue_addr)| crate::audit::LocalSessionAudit {
                imsi,
                ue_addr,
                indexed: self.by_ue_addr.get(&ue_addr) == Some(&imsi),
            })
            .collect();
        sessions.sort_by_key(|s| s.imsi);
        let mut attaching: Vec<u64> = self.attaching.keys().copied().collect();
        attaching.sort_unstable();
        crate::audit::LocalCoreAudit {
            sessions,
            addr_index_len: self.by_ue_addr.len(),
            attaching,
        }
    }

    fn nas_down(&mut self, ctx: &mut NodeCtx<'_>, imsi: Imsi, nas: Nas, size: u32) {
        let Some(&(link, ue_ctrl)) = self.radio.get(&imsi) else {
            return;
        };
        let p = ctx
            .make_packet(ue_ctrl, size)
            .with_payload(Payload::control(S1Nas { imsi, nas }));
        // NAS goes straight down the radio link (no processor charge: the
        // charge was taken when the decision was made).
        ctx.forward_via(link, p);
    }

    fn challenge(&mut self, ctx: &mut NodeCtx<'_>, imsi: Imsi, started: SimTime, resyncs: u8) {
        let Some(record) = self.records.get_mut(&imsi) else {
            return;
        };
        let vector = generate_vector(record, self.sn_id, &mut self.rng);
        obs::aka(ctx, AkaStep::Challenge, imsi);
        self.attaching.insert(
            imsi,
            AttachPhase::AwaitAuth {
                started,
                vector,
                resyncs,
            },
        );
        self.nas_down(
            ctx,
            imsi,
            Nas::AuthenticationRequest {
                rand: vector.rand,
                autn: vector.autn,
                sn_id: self.sn_id,
            },
            wire::AUTH_REQUEST,
        );
    }

    fn reject(&mut self, ctx: &mut NodeCtx<'_>, imsi: Imsi, cause: RejectCause) {
        self.stats.attaches_rejected += 1;
        self.attaching.remove(&imsi);
        obs::aka(ctx, AkaStep::Failure, imsi);
        obs::nas_end(ctx, NasProc::Auth, imsi, false);
        obs::nas_end(ctx, NasProc::Attach, imsi, false);
        self.nas_down(
            ctx,
            imsi,
            Nas::AttachReject { imsi, cause },
            wire::ATTACH_REJECT,
        );
    }

    fn handle_nas(&mut self, ctx: &mut NodeCtx<'_>, imsi: Imsi, nas: Nas) {
        match nas {
            Nas::AttachRequest { .. } | Nas::ServiceRequest { .. } => {
                // dLTE has no path switch: a service request from a roaming
                // UE is just an attach.
                self.stats.attach_requests += 1;
                obs::nas_start(ctx, NasProc::Attach, imsi);
                obs::nas_start(ctx, NasProc::Auth, imsi);
                let started = ctx.now;
                if self.records.contains_key(&imsi) {
                    self.challenge(ctx, imsi, started, 0);
                    return;
                }
                match &mut self.keys {
                    KeySource::Local(dir) => {
                        self.stats.directory_queries += 1;
                        match dir.record_for(imsi) {
                            Some(rec) => {
                                self.records.insert(imsi, rec);
                                self.challenge(ctx, imsi, started, 0);
                            }
                            None => self.reject(ctx, imsi, RejectCause::UnknownSubscriber),
                        }
                    }
                    KeySource::Remote { addr } => {
                        self.stats.directory_queries += 1;
                        let dir_addr = *addr;
                        self.attaching
                            .insert(imsi, AttachPhase::AwaitKey { started });
                        let my_addr = ctx.my_addr();
                        let q = ctx.make_packet(dir_addr, DIR_MSG_BYTES).with_payload(
                            Payload::control(DirMsg::Query {
                                imsi,
                                reply_to: my_addr,
                            }),
                        );
                        self.proc.process_one(ctx, q);
                    }
                }
            }
            Nas::AuthenticationResponse { res, .. } => {
                let Some(AttachPhase::AwaitAuth {
                    started, vector, ..
                }) = self.attaching.get(&imsi).cloned()
                else {
                    return;
                };
                if res != vector.xres {
                    self.reject(ctx, imsi, RejectCause::AuthenticationFailed);
                    return;
                }
                let Some(ue_addr) = self.pool.alloc() else {
                    self.reject(ctx, imsi, RejectCause::NoResources);
                    return;
                };
                self.attaching.remove(&imsi);
                // Release any prior session of this IMSI (re-attach).
                if let Some(old) = self.sessions.insert(imsi, ue_addr) {
                    self.by_ue_addr.remove(&old);
                    ctx.node_info_mut().remove_route(Prefix::new(old, 32));
                    self.pool.release(old);
                }
                self.by_ue_addr.insert(ue_addr, imsi);
                if let Some(&(link, _)) = self.radio.get(&imsi) {
                    ctx.node_info_mut()
                        .set_route(Prefix::new(ue_addr, 32), link);
                }
                self.open_session_span(imsi, ctx.now);
                self.stats.attaches_completed += 1;
                self.stats
                    .attach_latency_ms
                    .push_duration_ms(ctx.now.saturating_since(started));
                obs::aka(ctx, AkaStep::Response, imsi);
                obs::nas_end(ctx, NasProc::Auth, imsi, true);
                obs::nas_end(ctx, NasProc::Attach, imsi, true);
                self.nas_down(
                    ctx,
                    imsi,
                    Nas::AttachAccept { ue_addr },
                    wire::ATTACH_ACCEPT,
                );
            }
            Nas::AuthenticationFailure { ue_sqn, .. } => {
                let Some(AttachPhase::AwaitAuth {
                    started, resyncs, ..
                }) = self.attaching.get(&imsi).cloned()
                else {
                    return;
                };
                match ue_sqn {
                    Some(sqn) if resyncs == 0 => {
                        self.stats.auth_resyncs += 1;
                        obs::aka(ctx, AkaStep::Resync, imsi);
                        if let Some(rec) = self.records.get_mut(&imsi) {
                            rec.sqn = rec.sqn.max(sqn);
                        }
                        self.challenge(ctx, imsi, started, resyncs + 1);
                    }
                    _ => self.reject(ctx, imsi, RejectCause::AuthenticationFailed),
                }
            }
            Nas::DetachRequest { .. } => self.release_session(ctx, imsi),
            _ => {}
        }
    }

    fn handle_dir(&mut self, ctx: &mut NodeCtx<'_>, msg: DirMsg) {
        let DirMsg::Answer { imsi, key } = msg else {
            return;
        };
        let Some(AttachPhase::AwaitKey { started }) = self.attaching.get(&imsi).cloned() else {
            return;
        };
        match key {
            Some(k) => {
                self.records
                    .insert(imsi, SubscriberRecord { imsi, k, sqn: 0 });
                self.challenge(ctx, imsi, started, 0);
            }
            None => self.reject(ctx, imsi, RejectCause::UnknownSubscriber),
        }
    }
}

impl NodeHandler for LocalCoreNode {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, packet: Packet) {
        if let Some(s1nas) = packet.payload.as_control::<S1Nas>().cloned() {
            self.handle_nas(ctx, s1nas.imsi, s1nas.nas);
            return;
        }
        if let Some(msg) = packet.payload.as_control::<DirMsg>().cloned() {
            self.handle_dir(ctx, msg);
            return;
        }
        // User plane: native IP both ways — local breakout.
        if let Some(&imsi) = self.by_ue_addr.get(&packet.src) {
            self.stats.ul_user_packets += 1;
            self.harq.observe_block(ctx, imsi);
        } else if let Some(&imsi) = self.by_ue_addr.get(&packet.dst) {
            self.stats.dl_user_packets += 1;
            self.harq.observe_block(ctx, imsi);
        }
        if ctx.peer_info(ctx.node).owns(packet.dst) {
            ctx.deliver_local(&packet);
        } else {
            ctx.forward(packet);
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tag: u64) {
        self.proc.on_timer(ctx, tag);
    }
}

/// A standalone published-key directory service (for [`KeySource::Remote`]).
pub struct KeyDirectoryNode {
    pub dir: PublishedKeyDirectory,
    pub proc: Processor,
}

impl KeyDirectoryNode {
    pub fn new(dir: PublishedKeyDirectory, per_msg: SimDuration) -> Self {
        KeyDirectoryNode {
            dir,
            proc: Processor::new(per_msg, 0),
        }
    }
}

impl NodeHandler for KeyDirectoryNode {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, packet: Packet) {
        if let Some(DirMsg::Query { imsi, reply_to }) =
            packet.payload.as_control::<DirMsg>().cloned()
        {
            let key = self.dir.lookup(imsi);
            let a = ctx
                .make_packet(reply_to, DIR_MSG_BYTES)
                .with_payload(Payload::control(DirMsg::Answer { imsi, key }));
            self.proc.process_one(ctx, a);
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tag: u64) {
        self.proc.on_timer(ctx, tag);
    }
}
