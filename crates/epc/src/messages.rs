//! Control-plane message vocabulary.
//!
//! One enum per interface, mirroring (a useful subset of) the 3GPP
//! procedures: NAS between UE and its core, S1AP-ish between eNB and MME,
//! S11/S5 between MME, S-GW and P-GW, S6a between MME and HSS. Messages ride
//! the packet substrate as [`dlte_net::Payload::control`] payloads with
//! realistic on-wire sizes, so control-plane latency and load are measured,
//! not assumed.

use dlte_auth::vectors::AuthVector;
use dlte_auth::Imsi;
use dlte_net::Addr;

/// Serving-network identifier (PLMN-ish).
pub type SnId = u64;

/// GTP tunnel endpoint id (re-exported for convenience).
pub type Teid = u32;

/// NAS messages (UE ↔ MME / local core).
#[derive(Clone, Debug)]
pub enum Nas {
    AttachRequest {
        imsi: Imsi,
        /// The eNB the request entered through (filled by the eNB relay so
        /// the MME knows where to set up the bearer — stands in for the
        /// S1AP transport context).
        via_enb: Addr,
    },
    AuthenticationRequest {
        rand: u128,
        autn: dlte_auth::vectors::Autn,
        sn_id: SnId,
    },
    AuthenticationResponse {
        imsi: Imsi,
        res: u64,
    },
    AuthenticationFailure {
        imsi: Imsi,
        /// SIM's SQN for resynchronization, if this was a sync failure.
        ue_sqn: Option<u64>,
    },
    AttachAccept {
        /// Address assigned to the UE.
        ue_addr: Addr,
    },
    AttachReject {
        imsi: Imsi,
        cause: RejectCause,
    },
    DetachRequest {
        imsi: Imsi,
    },
    /// UE → new eNB when arriving with an existing session (triggers the S1
    /// path-switch handover that preserves `ue_addr`), and from ECM-IDLE to
    /// reactivate at the current eNB.
    ServiceRequest {
        imsi: Imsi,
        ue_addr: Addr,
    },
    /// eNB → UE: the RRC connection was released (the UE is now ECM-IDLE;
    /// it keeps its IP address but must send a service request before
    /// using it again).
    RrcRelease {
        imsi: Imsi,
    },
    /// eNB → UE: the network has downlink data waiting (paging).
    PagingNotify {
        imsi: Imsi,
    },
    /// MME → UE (via eNB): the service request completed; the radio bearer
    /// is restored and the UE may transmit.
    ServiceAccept {
        imsi: Imsi,
    },
    /// Network → UE: the core lost this UE's session (peer failure, gateway
    /// restart). The UE must drop its address and re-attach.
    NetworkDetach {
        imsi: Imsi,
    },
}

/// UE-associated NAS transport (the S1AP relay): NAS between UE and MME is
/// carried by the serving eNB, never IP-routed end-to-end — matching LTE,
/// where a UE has no IP address until attach completes.
#[derive(Clone, Debug)]
pub struct S1Nas {
    pub imsi: Imsi,
    pub nas: Nas,
}

/// Why an attach was rejected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RejectCause {
    UnknownSubscriber,
    AuthenticationFailed,
    NoResources,
}

/// S1AP-ish messages (eNB ↔ MME).
#[derive(Clone, Debug)]
pub enum S1ap {
    /// MME → eNB: install the UE context (radio route + uplink tunnel).
    InitialContextSetup {
        imsi: Imsi,
        ue_addr: Addr,
        /// Where uplink user traffic goes (S-GW address) and its TEID.
        sgw_addr: Addr,
        teid_ul: Teid,
        /// Downlink TEID this eNB must accept.
        teid_dl: Teid,
    },
    /// eNB → MME after a UE arrives from another eNB (S1 path switch).
    PathSwitchRequest {
        imsi: Imsi,
        ue_addr: Addr,
        new_enb: Addr,
    },
    /// MME → eNB: path switch completed.
    PathSwitchAck { imsi: Imsi },
    /// MME → eNB: tear down the UE context (detach or handover-out).
    UeContextRelease { imsi: Imsi },
    /// eNB → MME: this UE has been inactive; request S1 release (ECM-IDLE).
    UeContextReleaseRequest { imsi: Imsi },
    /// MME → eNB: page the UE (downlink data pending at the S-GW).
    Paging { imsi: Imsi },
}

/// S6a messages (MME ↔ HSS).
#[derive(Clone, Debug)]
pub enum S6a {
    AuthInfoRequest {
        imsi: Imsi,
        sn_id: SnId,
        /// Resync the subscriber's SQN first (after a UE sync failure).
        resync_sqn: Option<u64>,
    },
    AuthInfoAnswer {
        imsi: Imsi,
        vector: Option<AuthVector>,
    },
}

/// S11/S5 messages (MME ↔ S-GW ↔ P-GW).
#[derive(Clone, Debug)]
pub enum Gtpc {
    CreateSessionRequest {
        imsi: Imsi,
        /// eNB endpoint for the downlink data path.
        enb_addr: Addr,
        teid_dl_enb: Teid,
    },
    CreateSessionResponse {
        imsi: Imsi,
        ue_addr: Addr,
        /// Uplink tunnel endpoint at the S-GW for the eNB to use.
        sgw_addr: Addr,
        teid_ul_sgw: Teid,
    },
    /// MME → S-GW on path switch: move the downlink tunnel to a new eNB.
    ModifyBearerRequest {
        imsi: Imsi,
        new_enb_addr: Addr,
        teid_dl_enb: Teid,
    },
    ModifyBearerResponse {
        imsi: Imsi,
    },
    DeleteSessionRequest {
        imsi: Imsi,
    },
    /// MME → S-GW on S1 release: drop the eNB-side tunnel; buffer downlink
    /// and raise a notification when data arrives.
    ReleaseAccessBearers {
        imsi: Imsi,
    },
    /// S-GW → MME: downlink data arrived for an idle UE (trigger paging).
    DownlinkDataNotification {
        imsi: Imsi,
    },
}

/// S5 messages (S-GW ↔ P-GW).
#[derive(Clone, Debug)]
pub enum S5 {
    CreateRequest {
        imsi: Imsi,
        sgw_addr: Addr,
        /// Downlink tunnel endpoint at the S-GW the P-GW must target.
        teid_dl_sgw: Teid,
    },
    CreateResponse {
        imsi: Imsi,
        ue_addr: Addr,
        pgw_addr: Addr,
        /// Uplink tunnel endpoint at the P-GW the S-GW must target.
        teid_ul_pgw: Teid,
    },
    DeleteRequest {
        imsi: Imsi,
        ue_addr: Addr,
    },
}

/// Approximate on-wire sizes, bytes (headers + typical IE payloads). Used so
/// control traffic loads links honestly.
pub mod wire {
    /// NAS attach request (ESM + EMM IEs).
    pub const ATTACH_REQUEST: u32 = 120;
    pub const AUTH_REQUEST: u32 = 140;
    pub const AUTH_RESPONSE: u32 = 100;
    pub const AUTH_FAILURE: u32 = 100;
    pub const ATTACH_ACCEPT: u32 = 150;
    pub const ATTACH_REJECT: u32 = 90;
    pub const DETACH: u32 = 80;
    pub const NETWORK_DETACH: u32 = 80;
    pub const S1AP_CONTEXT: u32 = 180;
    pub const S1AP_PATH_SWITCH: u32 = 140;
    pub const S1AP_RELEASE: u32 = 100;
    pub const PAGING: u32 = 90;
    pub const S6A_REQUEST: u32 = 150;
    pub const S6A_ANSWER: u32 = 220;
    pub const GTPC: u32 = 180;
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlte_net::{Packet, Payload};
    use dlte_sim::SimTime;

    #[test]
    fn messages_survive_packet_round_trip() {
        let msg = Nas::AttachRequest {
            imsi: 42,
            via_enb: Addr::new(10, 0, 0, 1),
        };
        let p = Packet::new(
            1,
            Addr::new(1, 1, 1, 1),
            Addr::new(2, 2, 2, 2),
            wire::ATTACH_REQUEST,
            SimTime::ZERO,
        )
        .with_payload(Payload::control(msg));
        match p.payload.as_control::<Nas>() {
            Some(Nas::AttachRequest { imsi, via_enb }) => {
                assert_eq!(*imsi, 42);
                assert_eq!(*via_enb, Addr::new(10, 0, 0, 1));
            }
            other => panic!("wrong decode: {other:?}"),
        }
        // Different interface types don't cross-decode.
        assert!(p.payload.as_control::<S1ap>().is_none());
        assert!(p.payload.as_control::<Gtpc>().is_none());
    }

    #[test]
    fn wire_sizes_are_plausible() {
        // All control messages are small relative to an MTU.
        for s in [
            wire::ATTACH_REQUEST,
            wire::AUTH_REQUEST,
            wire::AUTH_RESPONSE,
            wire::ATTACH_ACCEPT,
            wire::S1AP_CONTEXT,
            wire::S6A_REQUEST,
            wire::S6A_ANSWER,
            wire::GTPC,
        ] {
            assert!((60..600).contains(&s), "size {s}");
        }
    }
}
