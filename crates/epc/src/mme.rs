//! The Mobility Management Entity.
//!
//! Runs the attach state machine for every UE in the network: NAS attach →
//! S6a vector fetch (with SQN resync when needed) → EPS-AKA verification →
//! S11 session creation → S1AP context setup; plus S1 path-switch handover
//! and detach. This is the component the paper calls out as the chokepoint:
//! every control event of every UE in a centralized network serializes here.

use crate::messages::{wire, Gtpc, Nas, RejectCause, S1Nas, S1ap, S6a, SnId, Teid};
use crate::obs;
use crate::proc::Processor;
use dlte_auth::vectors::AuthVector;
use dlte_auth::Imsi;
use dlte_net::gtp::{GtpEcho, PathEvent, PathMonitor, GTP_ECHO_BYTES};
use dlte_net::{Addr, NodeCtx, NodeHandler, Packet, Payload};
use dlte_obs::{AkaStep, Event, NasProc};
use dlte_sim::stats::Samples;
use dlte_sim::{SimDuration, SimTime};
use std::collections::HashMap;

/// Timer tag for the S-GW path-management tick (disjoint from the
/// processor's tags, which grow upward from 0).
const TAG_PATH_TICK: u64 = 8_900_000;
/// Timer tag base for EPS-AKA resync guard timers (`base + epoch`).
const TAG_RESYNC_BASE: u64 = 9_200_000;
/// How long a resync retry may wait for the HSS before the attach context
/// is abandoned (the UE's own attach retransmission recovers from there).
const RESYNC_GUARD: SimDuration = SimDuration::from_secs(3);

/// Per-UE control state at the MME.
#[derive(Clone, Debug)]
enum UeCtx {
    AwaitVector {
        via_enb: Addr,
        started: SimTime,
        resyncs: u8,
    },
    AwaitAuthResponse {
        via_enb: Addr,
        started: SimTime,
        vector: AuthVector,
        resyncs: u8,
    },
    AwaitSession {
        via_enb: Addr,
        started: SimTime,
        teid_dl: Teid,
    },
    Active {
        via_enb: Addr,
        ue_addr: Addr,
        teid_dl: Teid,
        /// Uplink TEID at the S-GW (handed to each serving eNB).
        teid_ul_sgw: Teid,
        /// ECM state: true = S1 released, UE reachable only via paging.
        ecm_idle: bool,
    },
    /// Path switch in progress: waiting for the S-GW to move the bearer.
    Switching {
        old_enb: Addr,
        new_enb: Addr,
        ue_addr: Addr,
        teid_dl: Teid,
        teid_ul_sgw: Teid,
        started: SimTime,
    },
}

/// MME statistics.
#[derive(Clone, Debug, Default)]
pub struct MmeStats {
    pub attach_requests: u64,
    pub attaches_completed: u64,
    pub attaches_rejected: u64,
    pub auth_resyncs: u64,
    /// EPS-AKA resync retries abandoned because the HSS answer never came.
    pub resync_timeouts: u64,
    pub handovers_completed: u64,
    pub s1_releases: u64,
    pub pages_sent: u64,
    /// S-GW path failures detected (echo timeout or restart counter change).
    pub peer_failures: u64,
    /// UE sessions torn down because the S-GW died under them.
    pub sessions_cleaned: u64,
    /// Post-failure detach orders re-sent because the UE never showed up
    /// again (the first copy was lost on a degraded backhaul).
    pub detach_retries: u64,
    /// Path-switch ModifyBearerRequests re-sent because the S-GW answer
    /// never arrived (the context sat in `Switching` past a path tick).
    pub switch_retries: u64,
    /// Attach completion latency as seen from the MME (request → accept
    /// sent), milliseconds.
    pub attach_latency_ms: Samples,
    /// Path-switch latency (request → ack sent), milliseconds.
    pub switch_latency_ms: Samples,
}

/// The MME node handler.
pub struct MmeNode {
    pub sn_id: SnId,
    pub hss_addr: Addr,
    pub sgw_addr: Addr,
    pub proc: Processor,
    contexts: HashMap<Imsi, UeCtx>,
    next_teid: Teid,
    pub stats: MmeStats,
    /// Echo-based liveness tracking of the S-GW. Off by default: path
    /// management adds periodic traffic, so topologies opt in explicitly
    /// (keeps fault-free experiment seeds undisturbed).
    path_mgmt: Option<PathMonitor>,
    /// Guard timers for in-flight resync retries: epoch → imsi.
    resync_watch: HashMap<u64, Imsi>,
    next_resync_epoch: u64,
    /// UEs ordered to detach after an S-GW failure that have not re-appeared
    /// yet: imsi → (serving eNB, resends left). The detach order is a single
    /// unacknowledged message over a possibly degraded backhaul; each path
    /// tick re-sends it until the UE's attach shows up (sorted map: resend
    /// order is deterministic).
    pending_detach: std::collections::BTreeMap<Imsi, (Addr, u32)>,
}

/// How many path ticks a lost post-failure detach order is re-sent for.
const DETACH_RESENDS: u32 = 16;

impl MmeNode {
    pub fn new(sn_id: SnId, hss_addr: Addr, sgw_addr: Addr, per_msg: SimDuration) -> Self {
        MmeNode {
            sn_id,
            hss_addr,
            sgw_addr,
            proc: Processor::new(per_msg, 0),
            contexts: HashMap::new(),
            next_teid: 1,
            stats: MmeStats::default(),
            path_mgmt: None,
            resync_watch: HashMap::new(),
            next_resync_epoch: 0,
            pending_detach: std::collections::BTreeMap::new(),
        }
    }

    /// Turn on GTP echo path management toward the S-GW: an echo request
    /// every `interval`, declaring the peer dead after `max_misses`
    /// unanswered requests (or instantly on a restart-counter change), then
    /// tearing down every session it held.
    pub fn enable_path_mgmt(&mut self, interval: SimDuration, max_misses: u32) {
        self.path_mgmt = Some(PathMonitor::new(self.sgw_addr, interval, max_misses));
    }

    /// Whether the S-GW path is currently considered dead.
    pub fn sgw_path_dead(&self) -> bool {
        self.path_mgmt.as_ref().is_some_and(|m| m.is_dead())
    }

    fn alloc_teid(&mut self) -> Teid {
        let t = self.next_teid;
        self.next_teid += 1;
        t
    }

    /// Number of UEs in `Active` state.
    pub fn active_ues(&self) -> usize {
        self.contexts
            .values()
            .filter(|c| matches!(c, UeCtx::Active { .. }))
            .count()
    }

    /// Snapshot the UE context table for post-run invariant checking.
    pub fn audit(&self) -> crate::audit::MmeAudit {
        let mut ues = Vec::new();
        let mut transient = Vec::new();
        for (&imsi, c) in &self.contexts {
            match c {
                UeCtx::Active {
                    ue_addr,
                    teid_dl,
                    teid_ul_sgw,
                    ecm_idle,
                    ..
                } => ues.push(crate::audit::MmeUeAudit {
                    imsi,
                    ue_addr: *ue_addr,
                    teid_dl: *teid_dl,
                    teid_ul_sgw: *teid_ul_sgw,
                    ecm_idle: *ecm_idle,
                }),
                _ => transient.push(imsi),
            }
        }
        ues.sort_by_key(|u| u.imsi);
        transient.sort_unstable();
        crate::audit::MmeAudit { ues, transient }
    }

    /// The address currently assigned to `imsi`, if attached (diagnostics).
    pub fn addr_of(&self, imsi: Imsi) -> Option<Addr> {
        match self.contexts.get(&imsi) {
            Some(UeCtx::Active { ue_addr, .. }) => Some(*ue_addr),
            Some(UeCtx::Switching {
                ue_addr, old_enb, ..
            }) => {
                let _ = old_enb;
                Some(*ue_addr)
            }
            _ => None,
        }
    }

    fn nas_to_enb(ctx: &mut NodeCtx<'_>, enb: Addr, imsi: Imsi, nas: Nas, size: u32) -> Packet {
        ctx.make_packet(enb, size)
            .with_payload(Payload::control(S1Nas { imsi, nas }))
    }

    fn handle_nas(&mut self, ctx: &mut NodeCtx<'_>, imsi: Imsi, nas: Nas, from: Addr) {
        match nas {
            Nas::AttachRequest { via_enb, .. } => {
                self.stats.attach_requests += 1;
                obs::nas_start(ctx, NasProc::Attach, imsi);
                obs::nas_start(ctx, NasProc::Auth, imsi);
                obs::aka(ctx, AkaStep::VectorRequest, imsi);
                // (Re-)start the state machine; a duplicate attach replaces
                // any stale context.
                self.contexts.insert(
                    imsi,
                    UeCtx::AwaitVector {
                        via_enb,
                        started: ctx.now,
                        resyncs: 0,
                    },
                );
                let req = ctx
                    .make_packet(self.hss_addr, wire::S6A_REQUEST)
                    .with_payload(Payload::control(S6a::AuthInfoRequest {
                        imsi,
                        sn_id: self.sn_id,
                        resync_sqn: None,
                    }));
                self.proc.process_one(ctx, req);
            }
            Nas::AuthenticationResponse { res, .. } => {
                let Some(UeCtx::AwaitAuthResponse {
                    via_enb,
                    started,
                    vector,
                    ..
                }) = self.contexts.get(&imsi).cloned()
                else {
                    return; // stray or late response
                };
                if res == vector.xres {
                    obs::nas_end(ctx, NasProc::Auth, imsi, true);
                    obs::nas_start(ctx, NasProc::Session, imsi);
                    let teid_dl = self.alloc_teid();
                    self.contexts.insert(
                        imsi,
                        UeCtx::AwaitSession {
                            via_enb,
                            started,
                            teid_dl,
                        },
                    );
                    let req =
                        ctx.make_packet(self.sgw_addr, wire::GTPC)
                            .with_payload(Payload::control(Gtpc::CreateSessionRequest {
                                imsi,
                                enb_addr: via_enb,
                                teid_dl_enb: teid_dl,
                            }));
                    self.proc.process_one(ctx, req);
                } else {
                    self.stats.attaches_rejected += 1;
                    self.contexts.remove(&imsi);
                    obs::aka(ctx, AkaStep::Failure, imsi);
                    obs::nas_end(ctx, NasProc::Auth, imsi, false);
                    obs::nas_end(ctx, NasProc::Attach, imsi, false);
                    let rej = Self::nas_to_enb(
                        ctx,
                        via_enb,
                        imsi,
                        Nas::AttachReject {
                            imsi,
                            cause: RejectCause::AuthenticationFailed,
                        },
                        wire::ATTACH_REJECT,
                    );
                    self.proc.process_one(ctx, rej);
                }
            }
            Nas::AuthenticationFailure { ue_sqn, .. } => {
                let Some(UeCtx::AwaitAuthResponse {
                    via_enb,
                    started,
                    resyncs,
                    ..
                }) = self.contexts.get(&imsi).cloned()
                else {
                    return;
                };
                match ue_sqn {
                    Some(sqn) if resyncs == 0 => {
                        // Resynchronize at the HSS and retry once. The
                        // retry is guarded by a timer: if the HSS answer is
                        // lost the context is dropped instead of hanging
                        // the attach forever.
                        self.stats.auth_resyncs += 1;
                        obs::aka(ctx, AkaStep::Resync, imsi);
                        self.contexts.insert(
                            imsi,
                            UeCtx::AwaitVector {
                                via_enb,
                                started,
                                resyncs: resyncs + 1,
                            },
                        );
                        let epoch = self.next_resync_epoch;
                        self.next_resync_epoch += 1;
                        self.resync_watch.insert(epoch, imsi);
                        ctx.set_timer(RESYNC_GUARD, TAG_RESYNC_BASE + epoch);
                        let req = ctx
                            .make_packet(self.hss_addr, wire::S6A_REQUEST)
                            .with_payload(Payload::control(S6a::AuthInfoRequest {
                                imsi,
                                sn_id: self.sn_id,
                                resync_sqn: Some(sqn),
                            }));
                        self.proc.process_one(ctx, req);
                    }
                    _ => {
                        self.stats.attaches_rejected += 1;
                        self.contexts.remove(&imsi);
                        obs::aka(ctx, AkaStep::Failure, imsi);
                        obs::nas_end(ctx, NasProc::Auth, imsi, false);
                        obs::nas_end(ctx, NasProc::Attach, imsi, false);
                        let rej = Self::nas_to_enb(
                            ctx,
                            via_enb,
                            imsi,
                            Nas::AttachReject {
                                imsi,
                                cause: RejectCause::AuthenticationFailed,
                            },
                            wire::ATTACH_REJECT,
                        );
                        self.proc.process_one(ctx, rej);
                    }
                }
            }
            Nas::DetachRequest { .. } => {
                if let Some(UeCtx::Active { via_enb, .. }) = self.contexts.remove(&imsi) {
                    obs::nas_start(ctx, NasProc::Detach, imsi);
                    obs::nas_end(ctx, NasProc::Detach, imsi, true);
                    let del = ctx
                        .make_packet(self.sgw_addr, wire::GTPC)
                        .with_payload(Payload::control(Gtpc::DeleteSessionRequest { imsi }));
                    let rel = ctx
                        .make_packet(via_enb, wire::S1AP_CONTEXT)
                        .with_payload(Payload::control(S1ap::UeContextRelease { imsi }));
                    self.proc.process(ctx, vec![del, rel]);
                }
            }
            // ServiceRequest is converted to PathSwitchRequest by the eNB;
            // the MME never sees it as NAS. Downlink NAS types are not
            // expected here.
            _ => {
                let _ = from;
            }
        }
    }

    fn handle_s6a(&mut self, ctx: &mut NodeCtx<'_>, msg: S6a) {
        let S6a::AuthInfoAnswer { imsi, vector } = msg else {
            return;
        };
        let Some(UeCtx::AwaitVector {
            via_enb,
            started,
            resyncs,
        }) = self.contexts.get(&imsi).cloned()
        else {
            return;
        };
        if resyncs > 0 {
            // The guarded resync answer arrived; disarm its watchdog.
            self.resync_watch.retain(|_, i| *i != imsi);
        }
        match vector {
            Some(v) => {
                obs::aka(ctx, AkaStep::VectorIssued, imsi);
                obs::aka(ctx, AkaStep::Challenge, imsi);
                self.contexts.insert(
                    imsi,
                    UeCtx::AwaitAuthResponse {
                        via_enb,
                        started,
                        vector: v,
                        resyncs,
                    },
                );
                let auth = Self::nas_to_enb(
                    ctx,
                    via_enb,
                    imsi,
                    Nas::AuthenticationRequest {
                        rand: v.rand,
                        autn: v.autn,
                        sn_id: self.sn_id,
                    },
                    wire::AUTH_REQUEST,
                );
                self.proc.process_one(ctx, auth);
            }
            None => {
                self.stats.attaches_rejected += 1;
                self.contexts.remove(&imsi);
                obs::aka(ctx, AkaStep::Failure, imsi);
                obs::nas_end(ctx, NasProc::Auth, imsi, false);
                obs::nas_end(ctx, NasProc::Attach, imsi, false);
                let rej = Self::nas_to_enb(
                    ctx,
                    via_enb,
                    imsi,
                    Nas::AttachReject {
                        imsi,
                        cause: RejectCause::UnknownSubscriber,
                    },
                    wire::ATTACH_REJECT,
                );
                self.proc.process_one(ctx, rej);
            }
        }
    }

    fn handle_gtpc(&mut self, ctx: &mut NodeCtx<'_>, msg: Gtpc) {
        match msg {
            Gtpc::CreateSessionResponse {
                imsi,
                ue_addr,
                sgw_addr,
                teid_ul_sgw,
            } => {
                let Some(UeCtx::AwaitSession {
                    via_enb,
                    started,
                    teid_dl,
                }) = self.contexts.get(&imsi).cloned()
                else {
                    return;
                };
                let _ = sgw_addr;
                self.contexts.insert(
                    imsi,
                    UeCtx::Active {
                        via_enb,
                        ue_addr,
                        teid_dl,
                        teid_ul_sgw,
                        ecm_idle: false,
                    },
                );
                self.stats.attaches_completed += 1;
                self.stats
                    .attach_latency_ms
                    .push_duration_ms(ctx.now.saturating_since(started));
                obs::nas_end(ctx, NasProc::Session, imsi, true);
                obs::nas_end(ctx, NasProc::Attach, imsi, true);
                // Install the context at the eNB, then accept the UE.
                let setup =
                    ctx.make_packet(via_enb, wire::S1AP_CONTEXT)
                        .with_payload(Payload::control(S1ap::InitialContextSetup {
                            imsi,
                            ue_addr,
                            sgw_addr: self.sgw_addr,
                            teid_ul: teid_ul_sgw,
                            teid_dl,
                        }));
                let accept = Self::nas_to_enb(
                    ctx,
                    via_enb,
                    imsi,
                    Nas::AttachAccept { ue_addr },
                    wire::ATTACH_ACCEPT,
                );
                self.proc.process(ctx, vec![setup, accept]);
            }
            Gtpc::DownlinkDataNotification { imsi } => {
                let Some(UeCtx::Active {
                    via_enb,
                    ecm_idle: true,
                    ..
                }) = self.contexts.get(&imsi).cloned()
                else {
                    return;
                };
                // Single-tracking-area simplification: page the last
                // serving eNB (a multi-eNB TA would fan this out).
                self.stats.pages_sent += 1;
                let page = ctx
                    .make_packet(via_enb, wire::PAGING)
                    .with_payload(Payload::control(S1ap::Paging { imsi }));
                self.proc.process_one(ctx, page);
            }
            Gtpc::ModifyBearerResponse { imsi } => {
                let Some(UeCtx::Switching {
                    new_enb,
                    ue_addr,
                    teid_dl,
                    teid_ul_sgw,
                    started,
                    ..
                }) = self.contexts.get(&imsi).cloned()
                else {
                    return;
                };
                self.contexts.insert(
                    imsi,
                    UeCtx::Active {
                        via_enb: new_enb,
                        ue_addr,
                        teid_dl,
                        teid_ul_sgw,
                        ecm_idle: false,
                    },
                );
                self.stats.handovers_completed += 1;
                self.stats
                    .switch_latency_ms
                    .push_duration_ms(ctx.now.saturating_since(started));
                obs::nas_end(ctx, NasProc::Handover, imsi, true);
                let _ = (ue_addr, teid_dl, teid_ul_sgw);
                let ack = ctx
                    .make_packet(new_enb, wire::S1AP_PATH_SWITCH)
                    .with_payload(Payload::control(S1ap::PathSwitchAck { imsi }));
                let accept = Self::nas_to_enb(
                    ctx,
                    new_enb,
                    imsi,
                    Nas::ServiceAccept { imsi },
                    wire::S1AP_PATH_SWITCH,
                );
                self.proc.process(ctx, vec![ack, accept]);
            }
            _ => {}
        }
    }

    /// A resync guard fired: if the attach is still waiting on that HSS
    /// answer, give up on it (the UE's own retransmission recovers).
    fn on_resync_guard(&mut self, ctx: &NodeCtx<'_>, epoch: u64) {
        let Some(imsi) = self.resync_watch.remove(&epoch) else {
            return; // answered (or superseded) in time
        };
        if let Some(UeCtx::AwaitVector { resyncs, .. }) = self.contexts.get(&imsi) {
            if *resyncs > 0 {
                self.contexts.remove(&imsi);
                self.stats.resync_timeouts += 1;
                obs::nas_end(ctx, NasProc::Auth, imsi, false);
                obs::nas_end(ctx, NasProc::Attach, imsi, false);
            }
        }
    }

    /// Periodic S-GW path-management tick: send an echo request, and tear
    /// sessions down when the miss threshold declares the peer dead.
    fn path_tick(&mut self, ctx: &mut NodeCtx<'_>) {
        let Some(monitor) = self.path_mgmt.as_mut() else {
            return;
        };
        let interval = monitor.interval;
        let peer = monitor.peer;
        let (echo, edge) = monitor.tick(0);
        obs::emit(
            ctx,
            Event::GtpEcho {
                peer: peer.to_string(),
                restart_counter: 0,
            },
        );
        let req = ctx
            .make_packet(peer, GTP_ECHO_BYTES)
            .with_payload(Payload::control(echo));
        ctx.forward(req);
        ctx.set_timer(interval, TAG_PATH_TICK);
        self.retry_pending_detach(ctx);
        self.retry_stuck_switches(ctx, interval);
        if edge == Some(PathEvent::PeerDead) {
            dlte_obs::metrics::counter_add("gtp_path_down", 1);
            obs::emit(
                ctx,
                Event::GtpPathDown {
                    peer: peer.to_string(),
                },
            );
            self.on_sgw_failure(ctx);
        }
    }

    fn handle_echo(&mut self, ctx: &mut NodeCtx<'_>, echo: GtpEcho, from: Addr) {
        if echo.is_request {
            // Answer echoes regardless of monitoring config (the MME never
            // restarts in our scenarios, so its counter is constant).
            let resp = ctx
                .make_packet(from, GTP_ECHO_BYTES)
                .with_payload(Payload::control(GtpEcho {
                    seq: echo.seq,
                    restart_counter: 0,
                    is_request: false,
                }));
            ctx.forward(resp);
            return;
        }
        let Some(monitor) = self.path_mgmt.as_mut() else {
            return;
        };
        if from == monitor.peer && monitor.on_response(echo) == PathEvent::PeerRestarted {
            dlte_obs::metrics::counter_add("gtp_peer_restart", 1);
            obs::emit(
                ctx,
                Event::GtpPeerRestart {
                    peer: from.to_string(),
                },
            );
            self.on_sgw_failure(ctx);
        }
    }

    /// The S-GW died (or restarted, losing its bearers): drop every session
    /// it backed, releasing eNB contexts and detaching UEs so they
    /// re-attach cleanly. IMSIs are processed in sorted order to keep event
    /// schedules deterministic.
    fn on_sgw_failure(&mut self, ctx: &mut NodeCtx<'_>) {
        self.stats.peer_failures += 1;
        let mut imsis: Vec<Imsi> = self
            .contexts
            .iter()
            .filter(|(_, c)| {
                matches!(
                    c,
                    UeCtx::Active { .. } | UeCtx::Switching { .. } | UeCtx::AwaitSession { .. }
                )
            })
            .map(|(&imsi, _)| imsi)
            .collect();
        imsis.sort_unstable();
        let mut batch = Vec::new();
        for imsi in imsis {
            let Some(c) = self.contexts.remove(&imsi) else {
                continue;
            };
            self.stats.sessions_cleaned += 1;
            let enb = match c {
                UeCtx::Active { via_enb, .. } | UeCtx::AwaitSession { via_enb, .. } => via_enb,
                UeCtx::Switching { new_enb, .. } => new_enb,
                _ => continue,
            };
            if matches!(c, UeCtx::AwaitSession { .. }) {
                // No eNB context installed yet; the UE's attach timer will
                // retry on its own.
                obs::nas_end(ctx, NasProc::Session, imsi, false);
                obs::nas_end(ctx, NasProc::Attach, imsi, false);
                continue;
            }
            let release = ctx
                .make_packet(enb, wire::S1AP_RELEASE)
                .with_payload(Payload::control(S1ap::UeContextRelease { imsi }));
            let detach = Self::nas_to_enb(
                ctx,
                enb,
                imsi,
                Nas::NetworkDetach { imsi },
                wire::NETWORK_DETACH,
            );
            batch.push(release);
            batch.push(detach);
            // Neither message is acknowledged and the backhaul may be the
            // very thing that is failing: remember the order and re-send it
            // from the path tick until the UE re-appears.
            self.pending_detach.insert(imsi, (enb, DETACH_RESENDS));
        }
        if !batch.is_empty() {
            self.proc.process(ctx, batch);
        }
    }

    /// Re-send post-failure detach orders whose UE has not come back. A UE
    /// with *any* context again (an attach in flight or completed) is done;
    /// re-sending then would cancel its own recovery. Driven by the path
    /// tick, so this retries at the path-management cadence and stops
    /// naturally once every UE re-attached.
    fn retry_pending_detach(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.pending_detach.is_empty() {
            return;
        }
        let mut batch = Vec::new();
        let mut done: Vec<Imsi> = Vec::new();
        for (&imsi, &mut (enb, ref mut left)) in self.pending_detach.iter_mut() {
            if self.contexts.contains_key(&imsi) {
                done.push(imsi);
                continue;
            }
            if *left == 0 {
                done.push(imsi);
                continue;
            }
            *left -= 1;
            self.stats.detach_retries += 1;
            let release = ctx
                .make_packet(enb, wire::S1AP_RELEASE)
                .with_payload(Payload::control(S1ap::UeContextRelease { imsi }));
            let detach = Self::nas_to_enb(
                ctx,
                enb,
                imsi,
                Nas::NetworkDetach { imsi },
                wire::NETWORK_DETACH,
            );
            batch.push(release);
            batch.push(detach);
        }
        for imsi in done {
            self.pending_detach.remove(&imsi);
        }
        if !batch.is_empty() {
            self.proc.process(ctx, batch);
        }
    }

    /// Re-send the ModifyBearerRequest for any path switch stuck in
    /// `Switching` longer than one path-tick interval. The original request
    /// (or its answer) was lost — an S-GW pause as short as the switch
    /// itself is enough — and nothing else retransmits it, so without this
    /// the context wedges in `Switching` forever while the UE believes it
    /// is attached. The request is idempotent at the S-GW (it re-points the
    /// bearer's eNB endpoint and replies), and the reply drives the normal
    /// `Switching` → `Active` transition. Sorted IMSI order keeps event
    /// schedules deterministic.
    fn retry_stuck_switches(&mut self, ctx: &mut NodeCtx<'_>, interval: SimDuration) {
        let mut stuck: Vec<(Imsi, Addr, Teid)> = self
            .contexts
            .iter()
            .filter_map(|(&imsi, c)| match c {
                UeCtx::Switching {
                    new_enb,
                    teid_dl,
                    started,
                    ..
                } if ctx.now.saturating_since(*started) >= interval => {
                    Some((imsi, *new_enb, *teid_dl))
                }
                _ => None,
            })
            .collect();
        if stuck.is_empty() {
            return;
        }
        stuck.sort_unstable_by_key(|&(imsi, _, _)| imsi);
        let mut batch = Vec::new();
        for (imsi, new_enb, teid_dl) in stuck {
            self.stats.switch_retries += 1;
            batch.push(
                ctx.make_packet(self.sgw_addr, wire::GTPC)
                    .with_payload(Payload::control(Gtpc::ModifyBearerRequest {
                        imsi,
                        new_enb_addr: new_enb,
                        teid_dl_enb: teid_dl,
                    })),
            );
        }
        self.proc.process(ctx, batch);
    }

    fn handle_s1ap(&mut self, ctx: &mut NodeCtx<'_>, msg: S1ap) {
        match msg {
            S1ap::UeContextReleaseRequest { imsi } => {
                // eNB-reported inactivity: move the UE to ECM-IDLE. The
                // S-GW drops the access bearer; the eNB clears the radio
                // context; the UE keeps its IP.
                let Some(UeCtx::Active {
                    via_enb,
                    ue_addr,
                    teid_dl,
                    teid_ul_sgw,
                    ecm_idle: false,
                }) = self.contexts.get(&imsi).cloned()
                else {
                    return;
                };
                self.contexts.insert(
                    imsi,
                    UeCtx::Active {
                        via_enb,
                        ue_addr,
                        teid_dl,
                        teid_ul_sgw,
                        ecm_idle: true,
                    },
                );
                self.stats.s1_releases += 1;
                let rel_bearers = ctx
                    .make_packet(self.sgw_addr, wire::GTPC)
                    .with_payload(Payload::control(Gtpc::ReleaseAccessBearers { imsi }));
                let rel_enb = ctx
                    .make_packet(via_enb, wire::S1AP_RELEASE)
                    .with_payload(Payload::control(S1ap::UeContextRelease { imsi }));
                self.proc.process(ctx, vec![rel_bearers, rel_enb]);
                return;
            }
            S1ap::PathSwitchRequest { .. } => {}
            _ => return,
        }
        if let S1ap::PathSwitchRequest {
            imsi,
            ue_addr,
            new_enb,
        } = msg
        {
            let Some(UeCtx::Active {
                via_enb: old_enb,
                teid_dl,
                teid_ul_sgw,
                ..
            }) = self.contexts.get(&imsi).cloned()
            else {
                return; // unknown UE: ignore (UE will fall back to attach)
            };
            obs::nas_start(ctx, NasProc::Handover, imsi);
            self.contexts.insert(
                imsi,
                UeCtx::Switching {
                    old_enb,
                    new_enb,
                    ue_addr,
                    teid_dl,
                    teid_ul_sgw,
                    started: ctx.now,
                },
            );
            // The target eNB gets the context immediately (in real S1AP it
            // already holds it — it initiated the path switch), so downlink
            // flushed by the S-GW never races an uninstalled tunnel.
            let setup =
                ctx.make_packet(new_enb, wire::S1AP_CONTEXT)
                    .with_payload(Payload::control(S1ap::InitialContextSetup {
                        imsi,
                        ue_addr,
                        sgw_addr: self.sgw_addr,
                        teid_ul: teid_ul_sgw,
                        teid_dl,
                    }));
            let modify = ctx
                .make_packet(self.sgw_addr, wire::GTPC)
                .with_payload(Payload::control(Gtpc::ModifyBearerRequest {
                    imsi,
                    new_enb_addr: new_enb,
                    teid_dl_enb: teid_dl,
                }));
            let mut batch = vec![setup, modify];
            if old_enb != new_enb {
                let release = ctx
                    .make_packet(old_enb, wire::S1AP_CONTEXT)
                    .with_payload(Payload::control(S1ap::UeContextRelease { imsi }));
                batch.push(release);
            }
            self.proc.process(ctx, batch);
        }
    }
}

impl NodeHandler for MmeNode {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, packet: Packet) {
        if let Some(s1nas) = packet.payload.as_control::<S1Nas>().cloned() {
            self.handle_nas(ctx, s1nas.imsi, s1nas.nas, packet.src);
        } else if let Some(msg) = packet.payload.as_control::<S6a>().cloned() {
            self.handle_s6a(ctx, msg);
        } else if let Some(msg) = packet.payload.as_control::<Gtpc>().cloned() {
            self.handle_gtpc(ctx, msg);
        } else if let Some(msg) = packet.payload.as_control::<S1ap>().cloned() {
            self.handle_s1ap(ctx, msg);
        } else if let Some(echo) = packet.payload.as_control::<GtpEcho>().copied() {
            self.handle_echo(ctx, echo, packet.src);
        } else if !ctx.peer_info(ctx.node).owns(packet.dst) {
            ctx.forward(packet);
        }
    }

    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        if let Some(m) = &self.path_mgmt {
            ctx.set_timer(m.interval, TAG_PATH_TICK);
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tag: u64) {
        if tag == TAG_PATH_TICK {
            self.path_tick(ctx);
        } else if tag >= TAG_RESYNC_BASE {
            self.on_resync_guard(ctx, tag - TAG_RESYNC_BASE);
        } else {
            self.proc.on_timer(ctx, tag);
        }
    }
}
