//! Observability helpers shared by the EPC node handlers.
//!
//! Thin wrappers around [`dlte_obs::emit`] that stamp events with the
//! handler's simulation time and node id, plus [`HarqTracer`] — a
//! trace-only radio HARQ model that rides on the user-plane forwarding
//! paths of [`crate::EnbNode`] and [`crate::LocalCoreNode`].
//!
//! Everything here is gated on [`dlte_obs::tracing_enabled`] (directly or
//! inside `emit`), and the HARQ tracer draws from its **own** dedicated
//! RNG stream, so enabling `--trace` never perturbs packet outcomes,
//! authentication vectors, or any golden-checked result.

use dlte_auth::Imsi;
use dlte_net::NodeCtx;
use dlte_obs::{AkaStep, Event, NasProc};
use dlte_phy::harq::{HarqConfig, HarqProcessModel};
use dlte_phy::mcs::CQI_TABLE;
use dlte_sim::SimRng;

/// Emit `event` stamped with the handler's current time and node.
pub(crate) fn emit(ctx: &NodeCtx<'_>, event: Event) {
    dlte_obs::emit(ctx.now.as_nanos(), ctx.node as u64, event);
}

pub(crate) fn nas_start(ctx: &NodeCtx<'_>, proc: NasProc, imsi: Imsi) {
    emit(ctx, Event::NasStart { proc, imsi });
}

pub(crate) fn nas_end(ctx: &NodeCtx<'_>, proc: NasProc, imsi: Imsi, ok: bool) {
    emit(ctx, Event::NasEnd { proc, imsi, ok });
}

pub(crate) fn aka(ctx: &NodeCtx<'_>, step: AkaStep, imsi: Imsi) {
    emit(ctx, Event::Aka { step, imsi });
}

/// Trace-only per-block HARQ model.
///
/// The packet-level EPC has no radio PHY: links deliver or drop whole
/// packets. When tracing is on, every user-plane block crossing an
/// eNB/local-core radio interface is additionally run through the
/// [`dlte_phy::harq::HarqProcessModel`] at a fixed weak-signal operating
/// point, producing `HarqTx`/`HarqRetx`/`HarqFail` events (and `harq_*`
/// counters) that expose the §3.2 retransmission behaviour in the event
/// stream. The simulated outcome is *observational*: the packet's fate was
/// already decided by the link model.
pub struct HarqTracer {
    model: HarqProcessModel,
    sinr_db: f64,
    cqi_index: usize,
    rng: SimRng,
}

impl HarqTracer {
    /// Tracer at the default operating point: CQI 9, 1.5 dB below its
    /// 10%-BLER threshold — weak enough that retransmissions show up, good
    /// enough that chase combining almost always delivers.
    pub fn new(rng: SimRng) -> Self {
        let cqi_index = 8;
        HarqTracer {
            model: HarqProcessModel::new(HarqConfig::default()),
            sinr_db: CQI_TABLE[cqi_index].sinr_threshold_db - 1.5,
            cqi_index,
            rng,
        }
    }

    /// Override the SINR operating point (tests force failures this way).
    pub fn with_sinr_db(mut self, sinr_db: f64) -> Self {
        self.sinr_db = sinr_db;
        self
    }

    /// Run one block through the HARQ process and emit its attempt trail.
    /// No-op (and no RNG draw) unless tracing is enabled.
    pub fn observe_block(&mut self, ctx: &NodeCtx<'_>, ue: Imsi) {
        if !dlte_obs::tracing_enabled() {
            return;
        }
        let cqi = &CQI_TABLE[self.cqi_index];
        let o = self.model.simulate_block(self.sinr_db, cqi, &mut self.rng);
        dlte_obs::metrics::counter_add("harq_tx", 1);
        emit(
            ctx,
            Event::HarqTx {
                ue,
                ok: o.delivered && o.transmissions == 1,
            },
        );
        for attempt in 2..=o.transmissions {
            dlte_obs::metrics::counter_add("harq_retx", 1);
            emit(
                ctx,
                Event::HarqRetx {
                    ue,
                    attempt,
                    ok: o.delivered && attempt == o.transmissions,
                },
            );
        }
        if !o.delivered {
            dlte_obs::metrics::counter_add("harq_fail", 1);
            emit(
                ctx,
                Event::HarqFail {
                    ue,
                    attempts: o.transmissions,
                },
            );
        }
    }
}
