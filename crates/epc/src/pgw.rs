//! The Packet Data Network Gateway.
//!
//! Terminates GTP tunnels, owns the UE address pool, and is the single
//! point where centralized-LTE user traffic meets the Internet — the
//! "chokepoint to the Internet" of §3.1. Uplink: decapsulate and forward
//! native IP. Downlink: match the destination against allocated UE
//! addresses and tunnel toward the S-GW.

use crate::messages::{wire, Teid, S5};
use crate::obs;
use crate::proc::Processor;
use dlte_auth::Imsi;
use dlte_net::fxhash::FxHashMap;
use dlte_net::gtp;
use dlte_net::gtp::{GtpEcho, GtpErrorIndication, GTP_ECHO_BYTES, GTP_ERROR_BYTES};
use dlte_net::{Addr, AddrPool, NodeCtx, NodeHandler, Packet, Payload};
use dlte_obs::Event;
use dlte_sim::SimDuration;

#[derive(Clone, Debug)]
struct PdnSession {
    imsi: Imsi,
    sgw_addr: Addr,
    teid_dl_sgw: Teid,
    teid_ul_pgw: Teid,
}

/// P-GW statistics.
#[derive(Clone, Debug, Default)]
pub struct PgwStats {
    pub ul_packets: u64,
    pub dl_packets: u64,
    pub sessions: u64,
    pub pool_exhausted: u64,
    pub unknown_dst_drops: u64,
    /// Create requests for an IMSI that already had a session: the S-GW
    /// re-established it (after its own restart) and the UE keeps its
    /// address.
    pub sessions_reestablished: u64,
    /// Tunneled packets for a TEID with no context.
    pub unknown_teid_drops: u64,
    /// GTP-U error indications sent for unknown-TEID traffic.
    pub error_indications_sent: u64,
}

/// The P-GW node handler.
pub struct PgwNode {
    pub pool: AddrPool,
    pub proc: Processor,
    by_ue_addr: FxHashMap<Addr, PdnSession>,
    by_ul_teid: FxHashMap<Teid, Addr>,
    by_imsi: FxHashMap<Imsi, Addr>,
    next_teid: Teid,
    /// GTP restart counter: bumped on every restart so path-managing peers
    /// learn that all sessions here were lost.
    pub restart_counter: u32,
    pub stats: PgwStats,
}

impl PgwNode {
    pub fn new(pool: AddrPool, per_msg: SimDuration) -> Self {
        PgwNode {
            pool,
            proc: Processor::new(per_msg, 0),
            by_ue_addr: FxHashMap::default(),
            by_ul_teid: FxHashMap::default(),
            by_imsi: FxHashMap::default(),
            next_teid: 0x2000_0000,
            restart_counter: 0,
            stats: PgwStats::default(),
        }
    }

    pub fn active_sessions(&self) -> usize {
        self.by_ue_addr.len()
    }

    /// Snapshot the session table for post-run invariant checking.
    pub fn audit(&self) -> crate::audit::PgwAudit {
        let mut sessions: Vec<_> = self
            .by_ue_addr
            .iter()
            .map(|(&addr, s)| crate::audit::PgwSessionAudit {
                imsi: s.imsi,
                ue_addr: addr,
                teid_dl_sgw: s.teid_dl_sgw,
                teid_ul_pgw: s.teid_ul_pgw,
                indexed: self.by_ul_teid.get(&s.teid_ul_pgw) == Some(&addr)
                    && self.by_imsi.get(&s.imsi) == Some(&addr),
            })
            .collect();
        sessions.sort_by_key(|s| s.imsi);
        crate::audit::PgwAudit {
            sessions,
            ul_index_len: self.by_ul_teid.len(),
            imsi_index_len: self.by_imsi.len(),
        }
    }

    /// The IMSI holding `addr`, if any (diagnostics).
    pub fn imsi_of(&self, addr: Addr) -> Option<Imsi> {
        self.by_ue_addr.get(&addr).map(|s| s.imsi)
    }

    fn handle_s5(&mut self, ctx: &mut NodeCtx<'_>, msg: S5, from: Addr) {
        match msg {
            S5::CreateRequest {
                imsi,
                sgw_addr,
                teid_dl_sgw,
            } => {
                // Idempotent on IMSI: a create for a subscriber we already
                // serve is the S-GW re-establishing a bearer it lost (its
                // restart), so keep the UE's address and just re-point the
                // tunnel endpoints.
                let ue_addr = match self.by_imsi.get(&imsi) {
                    Some(&addr) => {
                        if let Some(old) = self.by_ue_addr.get(&addr) {
                            self.by_ul_teid.remove(&old.teid_ul_pgw);
                        }
                        self.stats.sessions_reestablished += 1;
                        addr
                    }
                    None => {
                        let Some(addr) = self.pool.alloc() else {
                            self.stats.pool_exhausted += 1;
                            return;
                        };
                        self.stats.sessions += 1;
                        addr
                    }
                };
                let teid_ul_pgw = self.next_teid;
                self.next_teid += 1;
                self.by_ue_addr.insert(
                    ue_addr,
                    PdnSession {
                        imsi,
                        sgw_addr,
                        teid_dl_sgw,
                        teid_ul_pgw,
                    },
                );
                self.by_ul_teid.insert(teid_ul_pgw, ue_addr);
                self.by_imsi.insert(imsi, ue_addr);
                let my_addr = ctx.my_addr();
                let resp = ctx
                    .make_packet(from, wire::GTPC)
                    .with_payload(Payload::control(S5::CreateResponse {
                        imsi,
                        ue_addr,
                        pgw_addr: my_addr,
                        teid_ul_pgw,
                    }));
                self.proc.process_one(ctx, resp);
            }
            S5::DeleteRequest { imsi, .. } => {
                if let Some(ue_addr) = self.by_imsi.remove(&imsi) {
                    if let Some(s) = self.by_ue_addr.remove(&ue_addr) {
                        self.by_ul_teid.remove(&s.teid_ul_pgw);
                    }
                    self.pool.release(ue_addr);
                }
            }
            _ => {}
        }
    }

    fn handle_user_plane(&mut self, ctx: &mut NodeCtx<'_>, packet: Packet) {
        let Some(header) = packet.tunnels.last() else {
            return;
        };
        let teid = header.teid;
        if self.by_ul_teid.contains_key(&teid) {
            // Uplink: strip the tunnel; UE-to-UE traffic hairpins straight
            // back down its bearer, everything else goes to the Internet.
            if let Ok(inner) = gtp::decapsulate(packet, Some(teid)) {
                self.stats.ul_packets += 1;
                if self.pool.prefix().contains(inner.dst) {
                    self.handle_downlink(ctx, inner);
                } else {
                    ctx.forward(inner);
                }
            }
        } else {
            // No context (e.g. we restarted): tell the S-GW so it tears the
            // stale bearer down instead of blackholing forever.
            self.stats.unknown_teid_drops += 1;
            self.stats.error_indications_sent += 1;
            dlte_obs::metrics::counter_add("gtp_error_indications", 1);
            obs::emit(ctx, Event::GtpErrorIndication { teid: teid as u64 });
            let err = ctx
                .make_packet(packet.src, GTP_ERROR_BYTES)
                .with_payload(Payload::control(GtpErrorIndication { teid }));
            ctx.forward(err);
        }
    }

    fn handle_downlink(&mut self, ctx: &mut NodeCtx<'_>, packet: Packet) {
        match self.by_ue_addr.get(&packet.dst) {
            Some(s) => {
                self.stats.dl_packets += 1;
                let (sgw, teid) = (s.sgw_addr, s.teid_dl_sgw);
                let my_addr = ctx.my_addr();
                let out = gtp::encapsulate(packet, teid, my_addr, sgw);
                ctx.forward(out);
            }
            None => {
                self.stats.unknown_dst_drops += 1;
            }
        }
    }
}

impl NodeHandler for PgwNode {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, packet: Packet) {
        if let Some(msg) = packet.payload.as_control::<S5>().cloned() {
            self.handle_s5(ctx, msg, packet.src);
        } else if let Some(echo) = packet.payload.as_control::<GtpEcho>().copied() {
            if echo.is_request {
                let reply =
                    ctx.make_packet(packet.src, GTP_ECHO_BYTES)
                        .with_payload(Payload::control(GtpEcho {
                            seq: echo.seq,
                            restart_counter: self.restart_counter,
                            is_request: false,
                        }));
                ctx.forward(reply);
            }
        } else if ctx.peer_info(ctx.node).owns(packet.dst) {
            self.handle_user_plane(ctx, packet);
        } else if self.pool.prefix().contains(packet.dst) {
            self.handle_downlink(ctx, packet);
        } else {
            ctx.forward(packet);
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tag: u64) {
        self.proc.on_timer(ctx, tag);
    }

    fn on_crash(&mut self) {
        // State loss: sessions and TEID bindings vanish. The address pool's
        // allocation cursor survives (fresh attaches get fresh addresses —
        // leaked ones are simply never reused), and the restart counter is
        // what advertises the loss to path-managing peers.
        self.by_ue_addr.clear();
        self.by_ul_teid.clear();
        self.by_imsi.clear();
        self.proc.reset();
    }

    fn on_restart(&mut self, ctx: &mut NodeCtx<'_>) {
        self.restart_counter += 1;
        self.on_start(ctx);
    }
}
