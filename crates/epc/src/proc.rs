//! Finite-capacity message processing.
//!
//! Every control-plane entity serializes its work through a [`Processor`]
//! with a fixed per-message service time — an M/D/1-style server. The
//! response to a message is prepared immediately but transmitted only when
//! the processor gets to it, so a busy MME's attach latency grows with
//! offered load. This is the mechanism behind the E9 result: one shared EPC
//! saturates; per-AP stubs each bring their own processor.

use dlte_net::{NodeCtx, Packet};
use dlte_sim::{SimDuration, SimTime};
use std::collections::HashMap;

/// Deferred outputs of one unit of work. Most messages produce exactly one
/// reply; storing it inline skips the historical one-element `Vec` per
/// processed message (the naive-memory baseline re-enacts it).
enum Outputs {
    One(Packet),
    Many(Vec<Packet>),
}

/// Deferred-output message processor.
pub struct Processor {
    /// Service time per message.
    pub per_msg: SimDuration,
    busy_until: SimTime,
    pending: HashMap<u64, Outputs>,
    next_tag: u64,
    /// Messages processed (for load accounting).
    pub processed: u64,
    /// Cumulative queueing delay experienced by messages (excluding their
    /// own service time).
    pub queue_delay_total: SimDuration,
    /// Tag namespace offset so multiple processors can share one node's
    /// timer space (e.g. a local core with control + paging timers).
    tag_base: u64,
}

impl Processor {
    /// A processor with the given service time. `tag_base` partitions the
    /// node's timer-tag space; use distinct bases for distinct processors
    /// (or other timers) on the same node.
    pub fn new(per_msg: SimDuration, tag_base: u64) -> Processor {
        Processor {
            per_msg,
            busy_until: SimTime::ZERO,
            pending: HashMap::new(),
            next_tag: 0,
            processed: 0,
            queue_delay_total: SimDuration::ZERO,
            tag_base,
        }
    }

    /// Accept one unit of work whose result is `outputs`; they are
    /// forwarded when the processor finishes this message.
    pub fn process(&mut self, ctx: &mut NodeCtx<'_>, outputs: Vec<Packet>) {
        self.enqueue(ctx, Outputs::Many(outputs));
    }

    /// [`Self::process`] for the common single-reply message, with the
    /// reply stored inline — no `Vec` allocation.
    pub fn process_one(&mut self, ctx: &mut NodeCtx<'_>, output: Packet) {
        if dlte_net::naive_memory() {
            self.enqueue(ctx, Outputs::Many(vec![output]));
        } else {
            self.enqueue(ctx, Outputs::One(output));
        }
    }

    fn enqueue(&mut self, ctx: &mut NodeCtx<'_>, outputs: Outputs) {
        let start = self.busy_until.max(ctx.now);
        self.queue_delay_total += start.saturating_since(ctx.now);
        let done = start + self.per_msg;
        self.busy_until = done;
        self.processed += 1;
        let tag = self.tag_base + self.next_tag;
        self.next_tag += 1;
        self.pending.insert(tag, outputs);
        ctx.set_timer(done.saturating_since(ctx.now), tag);
    }

    /// Handle a timer tag; returns `true` if it belonged to this processor
    /// (and its outputs were transmitted).
    pub fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tag: u64) -> bool {
        match self.pending.remove(&tag) {
            Some(Outputs::One(p)) => {
                ctx.forward(p);
                true
            }
            Some(Outputs::Many(outputs)) => {
                for p in outputs {
                    ctx.forward(p);
                }
                true
            }
            None => false,
        }
    }

    /// Drop all in-flight work (crash with state loss). Any timers already
    /// armed for the dropped work fire into nothing and are ignored by
    /// `on_timer`. Cumulative stats are preserved.
    pub fn reset(&mut self) {
        self.busy_until = SimTime::ZERO;
        self.pending.clear();
    }

    /// Mean queueing delay per processed message.
    pub fn mean_queue_delay(&self) -> SimDuration {
        match self
            .queue_delay_total
            .as_nanos()
            .checked_div(self.processed)
        {
            Some(mean) => SimDuration::from_nanos(mean),
            None => SimDuration::ZERO,
        }
    }

    /// Current backlog depth (messages accepted, outputs not yet sent).
    pub fn backlog(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlte_net::{Addr, LinkConfig, NetworkBuilder, NodeHandler, Payload, Prefix};
    use dlte_sim::SimTime;

    /// A server that echoes each flow packet through a 10 ms processor.
    struct SlowServer {
        proc: Processor,
    }

    impl NodeHandler for SlowServer {
        fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, packet: Packet) {
            if let Payload::Flow { flow, seq } = packet.payload {
                let reply = ctx
                    .make_packet(packet.src, packet.size_bytes)
                    .with_payload(Payload::Flow { flow, seq });
                self.proc.process_one(ctx, reply);
            }
        }
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tag: u64) {
            self.proc.on_timer(ctx, tag);
        }
    }

    /// Client that fires `n` requests at t=0 and records reply times.
    struct BurstClient {
        dst: Addr,
        n: u64,
        replies: Vec<SimTime>,
    }

    impl NodeHandler for BurstClient {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            for seq in 0..self.n {
                let p = ctx
                    .make_packet(self.dst, 100)
                    .with_payload(Payload::Flow { flow: 1, seq });
                ctx.forward(p);
            }
        }
        fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, _p: Packet) {
            self.replies.push(ctx.now);
        }
    }

    #[test]
    fn processor_serializes_work() {
        let mut b = NetworkBuilder::new(1);
        let server_addr = Addr::new(10, 0, 0, 2);
        let client_addr = Addr::new(10, 0, 0, 1);
        let client = b.host(
            "client",
            Box::new(BurstClient {
                dst: server_addr,
                n: 5,
                replies: vec![],
            }),
        );
        b.addr(client, client_addr);
        let server = b.host(
            "server",
            Box::new(SlowServer {
                proc: Processor::new(SimDuration::from_millis(10), 0),
            }),
        );
        b.addr(server, server_addr);
        let l = b.link(client, server, LinkConfig::lan());
        b.route(client, Prefix::new(server_addr, 32), l);
        b.route(server, Prefix::new(client_addr, 32), l);
        let mut sim = b.build();
        sim.run_to_completion(100_000);
        let world = sim.world();
        let c = world.handler_as::<BurstClient>(client).unwrap();
        assert_eq!(c.replies.len(), 5);
        // Replies spaced ~10 ms apart: the 5th arrives ≈ 50 ms + 2×0.1 ms.
        let last = c.replies.last().unwrap().as_millis();
        assert!((50..52).contains(&last), "last reply at {last} ms");
        let first = c.replies.first().unwrap().as_millis();
        assert!((10..12).contains(&first), "first reply at {first} ms");
        let s = world.handler_as::<SlowServer>(server).unwrap();
        assert_eq!(s.proc.processed, 5);
        // Mean queue delay over 5 back-to-back msgs: (0+10+20+30+40)/5 = 20ms.
        let mq = s.proc.mean_queue_delay().as_millis();
        assert!((19..=21).contains(&mq), "mean queue delay {mq}");
        assert_eq!(s.proc.backlog(), 0);
    }
}
