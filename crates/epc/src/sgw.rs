//! The Serving Gateway.
//!
//! User-plane anchor between eNBs and the P-GW: re-tunnels every user
//! packet in both directions and moves the eNB-side tunnel on handover.
//! Control (S11 from MME, S5 from P-GW) goes through the finite-capacity
//! processor; user-plane forwarding is charged a fixed per-packet time via
//! the same mechanism kept deliberately small (hardware fast path).

use crate::messages::{wire, Gtpc, Teid, S5};
use crate::obs;
use crate::proc::Processor;
use dlte_auth::Imsi;
use dlte_net::fxhash::FxHashMap;
use dlte_net::gtp;
use dlte_net::gtp::{
    GtpEcho, GtpErrorIndication, PathEvent, PathMonitor, GTP_ECHO_BYTES, GTP_ERROR_BYTES,
};
use dlte_net::{Addr, NodeCtx, NodeHandler, Packet, Payload};
use dlte_obs::Event;
use dlte_sim::SimDuration;

/// Timer tag for the GTP-U path-management tick (disjoint from the
/// processor's tag space, which grows upward from 0).
const TAG_PATH_TICK: u64 = 8_900_000;

#[derive(Clone, Debug)]
struct Bearer {
    enb_addr: Addr,
    teid_dl_enb: Teid,
    /// False while the UE is ECM-IDLE: the eNB tunnel is torn down,
    /// downlink is buffered, and a notification wakes the MME.
    enb_connected: bool,
    /// One notification per idle period.
    ddn_sent: bool,
    /// Buffered downlink packets awaiting paging (bounded).
    buffer: Vec<Packet>,
    /// Uplink TEID at this S-GW (eNB → us).
    teid_ul_sgw: Teid,
    /// Downlink TEID at this S-GW (P-GW → us).
    teid_dl_sgw: Teid,
    pgw_addr: Addr,
    teid_ul_pgw: Option<Teid>,
    ue_addr: Option<Addr>,
    /// MME to answer once the P-GW responds.
    pending_mme: Option<Addr>,
}

/// S-GW statistics.
#[derive(Clone, Debug, Default)]
pub struct SgwStats {
    pub ul_packets: u64,
    pub dl_packets: u64,
    pub sessions_created: u64,
    pub bearers_modified: u64,
    pub unknown_teid_drops: u64,
    pub bearers_released: u64,
    pub ddn_sent: u64,
    pub buffered: u64,
    pub buffer_flushed: u64,
    pub buffer_drops: u64,
    /// GTP-U error indications sent for unknown-TEID traffic.
    pub error_indications_sent: u64,
    /// P-GW path failures detected (echo timeout or restart counter).
    pub peer_failures: u64,
    /// Bearers torn down because the P-GW lost their state.
    pub sessions_cleaned: u64,
}

/// The S-GW node handler.
pub struct SgwNode {
    pub pgw_addr: Addr,
    /// The MME to notify of pending downlink data.
    pub mme_addr: Addr,
    /// Downlink buffer capacity per idle bearer, packets.
    pub buffer_cap: usize,
    pub proc: Processor,
    bearers: FxHashMap<Imsi, Bearer>,
    by_ul_teid: FxHashMap<Teid, Imsi>,
    by_dl_teid: FxHashMap<Teid, Imsi>,
    next_teid: Teid,
    /// GTP restart counter: bumped on every restart so peers running path
    /// management can tell "rebooted and lost state" from "slow".
    pub restart_counter: u32,
    path_mgmt: Option<PathMonitor>,
    pub stats: SgwStats,
}

impl SgwNode {
    pub fn new(pgw_addr: Addr, per_msg: SimDuration) -> Self {
        SgwNode {
            pgw_addr,
            mme_addr: Addr::UNSPECIFIED,
            buffer_cap: 16,
            proc: Processor::new(per_msg, 0),
            bearers: FxHashMap::default(),
            by_ul_teid: FxHashMap::default(),
            by_dl_teid: FxHashMap::default(),
            next_teid: 0x1000_0000,
            restart_counter: 0,
            path_mgmt: None,
            stats: SgwStats::default(),
        }
    }

    /// Run GTP-U echo path management toward the P-GW: an echo request
    /// every `interval`, declaring the peer dead after `max_misses`
    /// consecutive unanswered requests. Off by default.
    pub fn enable_path_mgmt(&mut self, interval: SimDuration, max_misses: u32) {
        self.path_mgmt = Some(PathMonitor::new(self.pgw_addr, interval, max_misses));
    }

    /// Whether path management currently considers the P-GW dead.
    pub fn pgw_path_dead(&self) -> bool {
        self.path_mgmt.as_ref().is_some_and(|m| m.is_dead())
    }

    fn alloc_teid(&mut self) -> Teid {
        let t = self.next_teid;
        self.next_teid += 1;
        t
    }

    pub fn active_bearers(&self) -> usize {
        self.bearers.len()
    }

    /// Snapshot the bearer table for post-run invariant checking.
    pub fn audit(&self) -> crate::audit::SgwAudit {
        let mut bearers: Vec<_> = self
            .bearers
            .iter()
            .map(|(&imsi, b)| crate::audit::SgwBearerAudit {
                imsi,
                teid_ul_sgw: b.teid_ul_sgw,
                teid_dl_sgw: b.teid_dl_sgw,
                teid_ul_pgw: b.teid_ul_pgw,
                ue_addr: b.ue_addr,
                enb_connected: b.enb_connected,
                indexed: self.by_ul_teid.get(&b.teid_ul_sgw) == Some(&imsi)
                    && self.by_dl_teid.get(&b.teid_dl_sgw) == Some(&imsi),
            })
            .collect();
        bearers.sort_by_key(|b| b.imsi);
        crate::audit::SgwAudit {
            bearers,
            ul_index_len: self.by_ul_teid.len(),
            dl_index_len: self.by_dl_teid.len(),
        }
    }

    /// No bearer for `teid`: count the drop and tell the sender via a GTP-U
    /// error indication so it tears its side down.
    fn unknown_teid(&mut self, ctx: &mut NodeCtx<'_>, src: Addr, teid: Teid) {
        self.stats.unknown_teid_drops += 1;
        self.stats.error_indications_sent += 1;
        dlte_obs::metrics::counter_add("gtp_error_indications", 1);
        obs::emit(ctx, Event::GtpErrorIndication { teid: teid as u64 });
        let err = ctx
            .make_packet(src, GTP_ERROR_BYTES)
            .with_payload(Payload::control(GtpErrorIndication { teid }));
        ctx.forward(err);
    }

    fn handle_gtpc(&mut self, ctx: &mut NodeCtx<'_>, msg: Gtpc, from: Addr) {
        match msg {
            Gtpc::CreateSessionRequest {
                imsi,
                enb_addr,
                teid_dl_enb,
            } => {
                // Re-create for a subscriber we already serve (the MME
                // re-attached it after tearing the old session down on its
                // side): unindex the stale bearer's TEIDs first.
                if let Some(old) = self.bearers.remove(&imsi) {
                    self.by_ul_teid.remove(&old.teid_ul_sgw);
                    self.by_dl_teid.remove(&old.teid_dl_sgw);
                }
                let teid_ul_sgw = self.alloc_teid();
                let teid_dl_sgw = self.alloc_teid();
                self.by_ul_teid.insert(teid_ul_sgw, imsi);
                self.by_dl_teid.insert(teid_dl_sgw, imsi);
                self.bearers.insert(
                    imsi,
                    Bearer {
                        enb_addr,
                        teid_dl_enb,
                        enb_connected: true,
                        ddn_sent: false,
                        buffer: Vec::new(),
                        teid_ul_sgw,
                        teid_dl_sgw,
                        pgw_addr: self.pgw_addr,
                        teid_ul_pgw: None,
                        ue_addr: None,
                        pending_mme: Some(from),
                    },
                );
                let my_addr = ctx.my_addr();
                let req =
                    ctx.make_packet(self.pgw_addr, wire::GTPC)
                        .with_payload(Payload::control(S5::CreateRequest {
                            imsi,
                            sgw_addr: my_addr,
                            teid_dl_sgw,
                        }));
                self.proc.process_one(ctx, req);
            }
            Gtpc::ModifyBearerRequest {
                imsi,
                new_enb_addr,
                teid_dl_enb,
            } => {
                if let Some(b) = self.bearers.get_mut(&imsi) {
                    b.enb_addr = new_enb_addr;
                    b.teid_dl_enb = teid_dl_enb;
                    b.enb_connected = true;
                    b.ddn_sent = false;
                    self.stats.bearers_modified += 1;
                    // Flush anything buffered while the UE was idle.
                    let waiting = std::mem::take(&mut b.buffer);
                    let (enb, teid) = (b.enb_addr, b.teid_dl_enb);
                    let my_addr = ctx.my_addr();
                    for p in waiting {
                        self.stats.buffer_flushed += 1;
                        let out = gtp::encapsulate(p, teid, my_addr, enb);
                        ctx.forward(out);
                    }
                    let resp = ctx
                        .make_packet(from, wire::GTPC)
                        .with_payload(Payload::control(Gtpc::ModifyBearerResponse { imsi }));
                    self.proc.process_one(ctx, resp);
                }
            }
            Gtpc::ReleaseAccessBearers { imsi } => {
                if let Some(b) = self.bearers.get_mut(&imsi) {
                    b.enb_connected = false;
                    b.ddn_sent = false;
                    self.stats.bearers_released += 1;
                }
            }
            Gtpc::DeleteSessionRequest { imsi } => {
                if let Some(b) = self.bearers.remove(&imsi) {
                    self.by_ul_teid.remove(&b.teid_ul_sgw);
                    self.by_dl_teid.remove(&b.teid_dl_sgw);
                    let del =
                        ctx.make_packet(self.pgw_addr, wire::GTPC)
                            .with_payload(Payload::control(S5::DeleteRequest {
                                imsi,
                                ue_addr: b.ue_addr.unwrap_or(Addr::UNSPECIFIED),
                            }));
                    self.proc.process_one(ctx, del);
                }
            }
            _ => {}
        }
    }

    fn handle_s5(&mut self, ctx: &mut NodeCtx<'_>, msg: S5) {
        if let S5::CreateResponse {
            imsi,
            ue_addr,
            pgw_addr,
            teid_ul_pgw,
        } = msg
        {
            let Some(b) = self.bearers.get_mut(&imsi) else {
                return;
            };
            b.teid_ul_pgw = Some(teid_ul_pgw);
            b.ue_addr = Some(ue_addr);
            b.pgw_addr = pgw_addr;
            self.stats.sessions_created += 1;
            let (teid_ul_sgw, mme) = (b.teid_ul_sgw, b.pending_mme.take());
            if let Some(mme) = mme {
                let my_addr = ctx.my_addr();
                let resp = ctx
                    .make_packet(mme, wire::GTPC)
                    .with_payload(Payload::control(Gtpc::CreateSessionResponse {
                        imsi,
                        ue_addr,
                        sgw_addr: my_addr,
                        teid_ul_sgw,
                    }));
                self.proc.process_one(ctx, resp);
            }
        }
    }

    /// Re-tunnel a user-plane packet (already addressed to this S-GW).
    fn handle_user_plane(&mut self, ctx: &mut NodeCtx<'_>, packet: Packet) {
        let Some(header) = packet.tunnels.last() else {
            // Not tunneled: nothing for a pure user-plane anchor to do.
            return;
        };
        let teid = header.teid;
        let src = packet.src;
        if let Some(&imsi) = self.by_ul_teid.get(&teid) {
            // Uplink: eNB → us → P-GW.
            let Some(b) = self.bearers.get(&imsi) else {
                // Dangling index entry (bearer torn down without
                // unindexing): repair the index and answer as for any
                // unknown TEID instead of panicking on hostile input.
                self.by_ul_teid.remove(&teid);
                self.unknown_teid(ctx, src, teid);
                return;
            };
            let (pgw, teid_ul_pgw) = (b.pgw_addr, b.teid_ul_pgw);
            let Some(teid_pgw) = teid_ul_pgw else { return };
            let inner = match gtp::decapsulate(packet, Some(teid)) {
                Ok(p) => p,
                Err(_) => return,
            };
            self.stats.ul_packets += 1;
            let my_addr = ctx.my_addr();
            let out = gtp::encapsulate(inner, teid_pgw, my_addr, pgw);
            ctx.forward(out);
        } else if let Some(&imsi) = self.by_dl_teid.get(&teid) {
            // Downlink: P-GW → us → eNB (or the idle-mode buffer).
            let inner = match gtp::decapsulate(packet, Some(teid)) {
                Ok(p) => p,
                Err(_) => return,
            };
            let Some(b) = self.bearers.get_mut(&imsi) else {
                // Dangling index entry, as above.
                self.by_dl_teid.remove(&teid);
                self.unknown_teid(ctx, src, teid);
                return;
            };
            if !b.enb_connected {
                // ECM-IDLE: buffer and (once) notify the MME so it pages.
                if b.buffer.len() < self.buffer_cap {
                    b.buffer.push(inner);
                    self.stats.buffered += 1;
                } else {
                    self.stats.buffer_drops += 1;
                }
                if !b.ddn_sent && !self.mme_addr.is_unspecified() {
                    b.ddn_sent = true;
                    self.stats.ddn_sent += 1;
                    let ddn = ctx
                        .make_packet(self.mme_addr, wire::GTPC)
                        .with_payload(Payload::control(Gtpc::DownlinkDataNotification { imsi }));
                    self.proc.process_one(ctx, ddn);
                }
                return;
            }
            let (enb, teid_enb) = (b.enb_addr, b.teid_dl_enb);
            self.stats.dl_packets += 1;
            let my_addr = ctx.my_addr();
            let out = gtp::encapsulate(inner, teid_enb, my_addr, enb);
            ctx.forward(out);
        } else {
            // No context for this TEID (e.g. we restarted and lost all
            // bearers): tell the sender so it can tear its side down.
            self.unknown_teid(ctx, src, teid);
        }
    }

    /// Tear one bearer down and propagate a GTP-U error indication to its
    /// eNB (addressed by the eNB's own downlink TEID) so the radio side
    /// releases the UE and it re-attaches.
    fn teardown_bearer(&mut self, ctx: &mut NodeCtx<'_>, imsi: Imsi) {
        let Some(b) = self.bearers.remove(&imsi) else {
            return;
        };
        self.by_ul_teid.remove(&b.teid_ul_sgw);
        self.by_dl_teid.remove(&b.teid_dl_sgw);
        self.stats.sessions_cleaned += 1;
        if b.enb_connected {
            self.stats.error_indications_sent += 1;
            dlte_obs::metrics::counter_add("gtp_error_indications", 1);
            obs::emit(
                ctx,
                Event::GtpErrorIndication {
                    teid: b.teid_dl_enb as u64,
                },
            );
            let err = ctx
                .make_packet(b.enb_addr, GTP_ERROR_BYTES)
                .with_payload(Payload::control(GtpErrorIndication {
                    teid: b.teid_dl_enb,
                }));
            ctx.forward(err);
        }
    }

    /// The P-GW died or rebooted: every bearer it anchored is gone.
    fn on_pgw_failure(&mut self, ctx: &mut NodeCtx<'_>) {
        self.stats.peer_failures += 1;
        let mut imsis: Vec<Imsi> = self.bearers.keys().copied().collect();
        imsis.sort_unstable();
        for imsi in imsis {
            self.teardown_bearer(ctx, imsi);
        }
    }

    /// The P-GW told us it has no context for a TEID we are still sending
    /// to: that one bearer is stale.
    fn on_error_indication(&mut self, ctx: &mut NodeCtx<'_>, teid: Teid) {
        let mut imsis: Vec<Imsi> = self
            .bearers
            .iter()
            .filter(|(_, b)| b.teid_ul_pgw == Some(teid))
            .map(|(&imsi, _)| imsi)
            .collect();
        imsis.sort_unstable();
        for imsi in imsis {
            self.teardown_bearer(ctx, imsi);
        }
    }

    fn path_tick(&mut self, ctx: &mut NodeCtx<'_>) {
        let Some(monitor) = &mut self.path_mgmt else {
            return;
        };
        let (echo, event) = monitor.tick(self.restart_counter);
        let (peer, interval) = (monitor.peer, monitor.interval);
        obs::emit(
            ctx,
            Event::GtpEcho {
                peer: peer.to_string(),
                restart_counter: self.restart_counter,
            },
        );
        let req = ctx
            .make_packet(peer, GTP_ECHO_BYTES)
            .with_payload(Payload::control(echo));
        ctx.forward(req);
        ctx.set_timer(interval, TAG_PATH_TICK);
        if event == Some(PathEvent::PeerDead) {
            dlte_obs::metrics::counter_add("gtp_path_down", 1);
            obs::emit(
                ctx,
                Event::GtpPathDown {
                    peer: peer.to_string(),
                },
            );
            self.on_pgw_failure(ctx);
        }
    }

    fn handle_echo(&mut self, ctx: &mut NodeCtx<'_>, echo: GtpEcho, from: Addr) {
        if echo.is_request {
            let reply = ctx
                .make_packet(from, GTP_ECHO_BYTES)
                .with_payload(Payload::control(GtpEcho {
                    seq: echo.seq,
                    restart_counter: self.restart_counter,
                    is_request: false,
                }));
            ctx.forward(reply);
        } else if let Some(monitor) = &mut self.path_mgmt {
            if from == monitor.peer && monitor.on_response(echo) == PathEvent::PeerRestarted {
                dlte_obs::metrics::counter_add("gtp_peer_restart", 1);
                obs::emit(
                    ctx,
                    Event::GtpPeerRestart {
                        peer: from.to_string(),
                    },
                );
                self.on_pgw_failure(ctx);
            }
        }
    }
}

impl NodeHandler for SgwNode {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        if let Some(monitor) = &self.path_mgmt {
            ctx.set_timer(monitor.interval, TAG_PATH_TICK);
        }
    }

    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, packet: Packet) {
        if let Some(msg) = packet.payload.as_control::<Gtpc>().cloned() {
            self.handle_gtpc(ctx, msg, packet.src);
        } else if let Some(msg) = packet.payload.as_control::<S5>().cloned() {
            self.handle_s5(ctx, msg);
        } else if let Some(echo) = packet.payload.as_control::<GtpEcho>().copied() {
            self.handle_echo(ctx, echo, packet.src);
        } else if let Some(err) = packet.payload.as_control::<GtpErrorIndication>().copied() {
            self.on_error_indication(ctx, err.teid);
        } else if ctx.peer_info(ctx.node).owns(packet.dst) {
            self.handle_user_plane(ctx, packet);
        } else {
            ctx.forward(packet);
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tag: u64) {
        if tag == TAG_PATH_TICK {
            self.path_tick(ctx);
        } else {
            self.proc.on_timer(ctx, tag);
        }
    }

    fn on_crash(&mut self) {
        // State loss: every bearer, TEID binding, and queued control
        // message is gone. Stats survive (they model the observer, not the
        // box) and so does the restart counter, which is what lets peers
        // *detect* the loss.
        self.bearers.clear();
        self.by_ul_teid.clear();
        self.by_dl_teid.clear();
        self.proc.reset();
        if let Some(m) = &self.path_mgmt {
            self.path_mgmt = Some(PathMonitor::new(m.peer, m.interval, m.max_misses));
        }
    }

    fn on_restart(&mut self, ctx: &mut NodeCtx<'_>) {
        self.restart_counter += 1;
        self.on_start(ctx);
    }
}
