//! Ready-made centralized-LTE topologies.
//!
//! Builds the reference network of Figure 1's left half:
//!
//! ```text
//!  UE ~~radio~~ eNB --backhaul-- Ragg --wan(epc)-- Repc --- MME/SGW/PGW/HSS
//!                                                    \--wan(inet)-- Rinet -- OTT
//! ```
//!
//! Every user packet tunnels eNB → S-GW → P-GW before reaching the Internet;
//! every control event serializes through the shared MME/HSS. The dLTE
//! counterpart topology lives in the `dlte` core crate; this builder is also
//! used directly by experiments E9/E10.

use crate::enb::EnbNode;
use crate::hss::HssNode;
use crate::messages::SnId;
use crate::mme::MmeNode;
use crate::pgw::PgwNode;
use crate::sgw::SgwNode;
use crate::ue::{CellAttachment, MobilityMode, UeApp, UeNode};
use dlte_auth::usim::Usim;
use dlte_auth::{Imsi, Key};
use dlte_net::handlers::EchoServer;
use dlte_net::{Addr, AddrPool, LinkConfig, Network, NetworkBuilder, NodeId, Prefix};
use dlte_sim::{SimDuration, SimRng, SimTime, Simulation};

/// Per-UE experiment plan.
pub struct UePlan {
    pub app: UeApp,
    pub mode: MobilityMode,
    /// (when, cell index) cell changes.
    pub schedule: Vec<(SimTime, usize)>,
}

impl Default for UePlan {
    fn default() -> Self {
        UePlan {
            app: UeApp::None,
            mode: MobilityMode::PathSwitch,
            schedule: Vec::new(),
        }
    }
}

/// Builder for the centralized reference network.
pub struct CentralizedLteBuilder {
    pub n_enb: usize,
    pub ues_per_enb: usize,
    /// Aggregation ↔ EPC-site distance (one-way delay).
    pub epc_delay: SimDuration,
    /// EPC-site ↔ Internet-core distance.
    pub inet_delay: SimDuration,
    pub radio: LinkConfig,
    pub backhaul: LinkConfig,
    pub mme_per_msg: SimDuration,
    pub hss_per_msg: SimDuration,
    pub gw_per_msg: SimDuration,
    /// Wire every UE to every eNB (needed for mobility experiments).
    pub wire_all_cells: bool,
    /// eNB inactivity timeout before S1 release to ECM-IDLE (None =
    /// always-connected).
    pub enb_idle_timeout: Option<SimDuration>,
    pub sn_id: SnId,
    pub seed: u64,
    /// Run GTP-U echo path management (MME→S-GW, S-GW→P-GW) with this
    /// (interval, max_misses). Off by default: fault-free experiments keep
    /// an identical event stream.
    pub path_mgmt: Option<(SimDuration, u32)>,
    ue_plan: Box<dyn Fn(usize) -> UePlan>,
}

/// The built network and its interesting node ids (and the links fault
/// injection most wants to break).
pub struct CentralizedLteNet {
    pub sim: Simulation<Network>,
    pub ues: Vec<NodeId>,
    pub enbs: Vec<NodeId>,
    pub mme: NodeId,
    pub sgw: NodeId,
    pub pgw: NodeId,
    pub hss: NodeId,
    pub ott: NodeId,
    /// Per-eNB backhaul link (eNB ↔ aggregation router), by eNB index.
    pub enb_backhaul: Vec<dlte_net::LinkId>,
    /// Aggregation ↔ EPC-site WAN link (the backhaul trunk every eNB
    /// shares toward the core).
    pub l_agg_epc: dlte_net::LinkId,
}

impl CentralizedLteBuilder {
    pub fn new(n_enb: usize, ues_per_enb: usize) -> Self {
        CentralizedLteBuilder {
            n_enb,
            ues_per_enb,
            epc_delay: SimDuration::from_millis(15),
            inet_delay: SimDuration::from_millis(10),
            radio: LinkConfig {
                delay: SimDuration::from_millis(5),
                rate_bps: 20e6,
                queue_pkts: 300,
                loss: 0.0,
            },
            backhaul: LinkConfig::rural_backhaul(),
            mme_per_msg: SimDuration::from_micros(500),
            hss_per_msg: SimDuration::from_micros(300),
            gw_per_msg: SimDuration::from_micros(100),
            wire_all_cells: false,
            enb_idle_timeout: None,
            sn_id: 51089,
            seed: 1,
            path_mgmt: None,
            ue_plan: Box::new(|_| UePlan::default()),
        }
    }

    /// Set the per-UE plan factory.
    pub fn with_ue_plan(mut self, f: impl Fn(usize) -> UePlan + 'static) -> Self {
        self.ue_plan = Box::new(f);
        self
    }

    /// Well-known addresses.
    pub fn ott_addr() -> Addr {
        Addr::new(8, 8, 8, 8)
    }

    pub fn ue_pool_prefix() -> Prefix {
        Prefix::new(Addr::new(100, 64, 0, 0), 16)
    }

    /// IMSI of UE index `i` and its (deterministic) key.
    pub fn imsi_of(i: usize) -> Imsi {
        1_000 + i as Imsi
    }

    pub fn key_of(i: usize) -> Key {
        0x5EED_0000_0000_0000_0000_0000_0000_0000 | i as u128
    }

    pub fn build(self) -> CentralizedLteNet {
        let mut b = NetworkBuilder::new(self.seed);
        let rng = SimRng::new(self.seed ^ 0xE9C);

        // Core routers.
        let r_agg = b.node("r-agg");
        let r_epc = b.node("r-epc");
        let r_inet = b.node("r-inet");
        let l_agg_epc = b.link(r_agg, r_epc, LinkConfig::wan(self.epc_delay));
        let l_epc_inet = b.link(r_epc, r_inet, LinkConfig::wan(self.inet_delay));

        // OTT echo service.
        let ott = b.host("ott", Box::new(EchoServer::new()));
        b.addr(ott, Self::ott_addr());
        let l_inet_ott = b.link(r_inet, ott, LinkConfig::lan());

        // EPC entities.
        let mme_addr = Addr::new(10, 255, 0, 1);
        let sgw_addr = Addr::new(10, 255, 0, 2);
        let pgw_addr = Addr::new(10, 255, 0, 3);
        let hss_addr = Addr::new(10, 255, 0, 4);
        let mut hss_node = HssNode::new(self.hss_per_msg, rng.fork("hss"));
        let total_ues = self.n_enb * self.ues_per_enb;
        for i in 0..total_ues {
            hss_node.provision(Self::imsi_of(i), Self::key_of(i));
        }
        let mut mme_node = MmeNode::new(self.sn_id, hss_addr, sgw_addr, self.mme_per_msg);
        if let Some((interval, max_misses)) = self.path_mgmt {
            mme_node.enable_path_mgmt(interval, max_misses);
        }
        let mme = b.host("mme", Box::new(mme_node));
        b.addr(mme, mme_addr);
        let mut sgw_node = SgwNode::new(pgw_addr, self.gw_per_msg);
        sgw_node.mme_addr = mme_addr;
        if let Some((interval, max_misses)) = self.path_mgmt {
            sgw_node.enable_path_mgmt(interval, max_misses);
        }
        let sgw = b.host("sgw", Box::new(sgw_node));
        b.addr(sgw, sgw_addr);
        let pgw = b.host(
            "pgw",
            Box::new(PgwNode::new(
                AddrPool::new(Self::ue_pool_prefix()),
                self.gw_per_msg,
            )),
        );
        b.addr(pgw, pgw_addr);
        let hss = b.host("hss", Box::new(hss_node));
        b.addr(hss, hss_addr);
        let l_epc_mme = b.link(r_epc, mme, LinkConfig::lan());
        let l_epc_sgw = b.link(r_epc, sgw, LinkConfig::lan());
        let l_epc_pgw = b.link(r_epc, pgw, LinkConfig::lan());
        let l_epc_hss = b.link(r_epc, hss, LinkConfig::lan());
        let _ = (l_epc_mme, l_epc_sgw, l_epc_hss);

        // eNBs.
        let mut enbs = Vec::new();
        let mut enb_addrs = Vec::new();
        let mut enb_backhaul = Vec::new();
        for e in 0..self.n_enb {
            let addr = Addr::new(10, 1, e as u8, 1);
            let mut enb_node = EnbNode::new(mme_addr);
            enb_node.idle_timeout = self.enb_idle_timeout;
            let enb = b.host(format!("enb{e}"), Box::new(enb_node));
            b.addr(enb, addr);
            enb_backhaul.push(b.link(enb, r_agg, self.backhaul));
            enbs.push(enb);
            enb_addrs.push(addr);
        }

        // UEs with radio links; wire them into the eNB handlers afterwards.
        let mut ues = Vec::new();
        let mut wiring: Vec<(usize, Imsi, dlte_net::LinkId, Addr)> = Vec::new();
        for i in 0..total_ues {
            let imsi = Self::imsi_of(i);
            let home_enb = i / self.ues_per_enb;
            let ue_ctrl = Addr::new(172, 16, (i / 250) as u8, (i % 250) as u8 + 1);
            let ue = b.node(format!("ue{i}"));
            let mut cells = Vec::new();
            // Home cell first: a UE camps on its home AP at start, and a
            // mobility schedule's indices are positions in this list.
            let cell_range: Vec<usize> = if self.wire_all_cells {
                std::iter::once(home_enb)
                    .chain((0..self.n_enb).filter(|&e| e != home_enb))
                    .collect()
            } else {
                vec![home_enb]
            };
            for &e in &cell_range {
                let link = b.link(ue, enbs[e], self.radio);
                cells.push(CellAttachment {
                    enb_addr: enb_addrs[e],
                    radio_link: link,
                });
                wiring.push((e, imsi, link, ue_ctrl));
            }
            let plan = (self.ue_plan)(i);
            let ue_node = UeNode::new(imsi, Usim::new(imsi, Self::key_of(i)), cells, plan.app)
                .with_mobility(plan.mode, plan.schedule);
            b.set_handler(ue, Box::new(ue_node));
            ues.push(ue);
        }

        // Infrastructure routing (host routes to every addressed node).
        b.auto_routes();
        // UE pool routing: downlink lands at the P-GW.
        b.route(r_inet, Self::ue_pool_prefix(), l_epc_inet);
        b.route(r_epc, Self::ue_pool_prefix(), l_epc_pgw);
        b.route(r_agg, Self::ue_pool_prefix(), l_agg_epc);
        // OTT default route (replies to dynamically allocated UE addresses).
        b.route(ott, Prefix::DEFAULT, l_inet_ott);

        let mut sim = b.build();
        // Wire UEs into eNB handlers (needs the built world for typed
        // access).
        for (e, imsi, link, ue_ctrl) in wiring {
            sim.world_mut()
                .handler_as_mut::<EnbNode>(enbs[e])
                .expect("enb handler")
                .wire_ue(imsi, link, ue_ctrl);
        }
        CentralizedLteNet {
            sim,
            ues,
            enbs,
            mme,
            sgw,
            pgw,
            hss,
            ott,
            enb_backhaul,
            l_agg_epc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mme::MmeNode;
    use crate::sgw::SgwNode;
    use crate::ue::{UeNode, UeState};
    use dlte_net::Addr;

    #[test]
    fn single_ue_attaches_end_to_end() {
        let mut net = CentralizedLteBuilder::new(1, 1).build();
        net.sim.run_until(SimTime::from_secs(5), 1_000_000);
        let w = net.sim.world();
        let ue = w.handler_as::<UeNode>(net.ues[0]).expect("ue");
        assert_eq!(ue.state, UeState::Attached);
        assert!(ue.addr.is_some());
        assert!(
            CentralizedLteBuilder::ue_pool_prefix().contains(ue.addr.unwrap()),
            "address from the P-GW pool"
        );
        assert_eq!(ue.stats.attaches_completed, 1);
        let mme = w.handler_as::<MmeNode>(net.mme).unwrap();
        assert_eq!(mme.stats.attaches_completed, 1);
        assert_eq!(mme.active_ues(), 1);
        // Attach latency is bounded by a handful of control RTTs over the
        // radio + backhaul + EPC distance (~6 legs × ~30 ms).
        let lat = ue.stats.attach_latency_ms.values()[0];
        assert!((50.0..500.0).contains(&lat), "attach latency {lat} ms");
    }

    #[test]
    fn attached_ue_pings_ott_through_tunnels() {
        let mut net = CentralizedLteBuilder::new(1, 1)
            .with_ue_plan(|_| UePlan {
                app: UeApp::Pinger {
                    dst: CentralizedLteBuilder::ott_addr(),
                    interval: SimDuration::from_millis(200),
                    probe_bytes: 100,
                },
                mode: MobilityMode::PathSwitch,
                schedule: vec![],
            })
            .build();
        net.sim.run_until(SimTime::from_secs(5), 2_000_000);
        let w = net.sim.world();
        let ue = w.handler_as::<UeNode>(net.ues[0]).unwrap();
        assert!(ue.stats.pongs > 15, "pongs {}", ue.stats.pongs);
        // RTT must include the EPC detour: radio 5 + backhaul 10 + epc 15 +
        // inet 10 + lan ≈ 40 ms one-way ⇒ ≥ 80 ms RTT.
        let rtts = &ue.stats.rtt_ms;
        let med = rtts.median();
        assert!((80.0..120.0).contains(&med), "median RTT {med} ms");
        // User plane actually traversed the gateways.
        let sgw = w.handler_as::<crate::sgw::SgwNode>(net.sgw).unwrap();
        assert!(sgw.stats.ul_packets > 15);
        assert!(sgw.stats.dl_packets > 15);
        let pgw = w.handler_as::<crate::pgw::PgwNode>(net.pgw).unwrap();
        assert!(pgw.stats.ul_packets > 15);
        assert!(pgw.stats.dl_packets > 15);
    }

    #[test]
    fn many_ues_all_attach() {
        let mut net = CentralizedLteBuilder::new(2, 5).build();
        net.sim.run_until(SimTime::from_secs(10), 5_000_000);
        let w = net.sim.world();
        for &ue_id in &net.ues {
            let ue = w.handler_as::<UeNode>(ue_id).unwrap();
            assert_eq!(ue.state, UeState::Attached, "ue {ue_id}");
        }
        let mme = w.handler_as::<MmeNode>(net.mme).unwrap();
        assert_eq!(mme.stats.attaches_completed, 10);
    }

    #[test]
    fn idle_mode_releases_and_uplink_reactivates() {
        // A slow pinger (2 s period) against a 500 ms inactivity timeout:
        // the eNB releases the UE between probes; each probe then triggers
        // a service request and the ping still completes.
        let mut builder = CentralizedLteBuilder::new(1, 1);
        builder.enb_idle_timeout = Some(SimDuration::from_millis(500));
        let mut net = builder
            .with_ue_plan(|_| UePlan {
                app: UeApp::Pinger {
                    dst: CentralizedLteBuilder::ott_addr(),
                    interval: SimDuration::from_secs(2),
                    probe_bytes: 100,
                },
                mode: MobilityMode::PathSwitch,
                schedule: vec![],
            })
            .build();
        net.sim.run_until(SimTime::from_secs(10), 10_000_000);
        let w = net.sim.world();
        let ue = w.handler_as::<UeNode>(net.ues[0]).unwrap();
        assert_eq!(ue.state, UeState::Attached);
        assert!(
            ue.stats.rrc_releases >= 2,
            "releases {}",
            ue.stats.rrc_releases
        );
        assert!(
            ue.stats.service_requests >= 2,
            "service requests {}",
            ue.stats.service_requests
        );
        assert!(
            ue.stats.pongs >= 3,
            "pings still complete: {}",
            ue.stats.pongs
        );
        let mme = w.handler_as::<MmeNode>(net.mme).unwrap();
        assert!(mme.stats.s1_releases >= 2);
        let enb = w.handler_as::<crate::enb::EnbNode>(net.enbs[0]).unwrap();
        assert!(enb.stats.idle_releases_requested >= 2);
        // No paging needed: reactivations were uplink-triggered.
        assert_eq!(mme.stats.pages_sent, 0);
    }

    #[test]
    fn downlink_to_idle_ue_buffers_and_pages() {
        // UE0 has no app; UE1 sends one packet per second *to UE0's
        // address* against a 200 ms inactivity timeout, so UE0 re-idles
        // between packets. Every packet must be buffered at the S-GW,
        // trigger a notification + page, and flow after reactivation.
        let mut builder = CentralizedLteBuilder::new(1, 2);
        builder.enb_idle_timeout = Some(SimDuration::from_millis(200));
        let mut net = builder
            .with_ue_plan(|i| UePlan {
                app: if i == 1 {
                    UeApp::UplinkCbr {
                        // Deterministic: UE0 attaches first and draws the
                        // pool's first address.
                        dst: Addr::new(100, 64, 0, 1),
                        rate_bps: 4_000.0, // 500 B → one packet per second
                        packet_bytes: 500,
                    }
                } else {
                    UeApp::None
                },
                mode: MobilityMode::PathSwitch,
                schedule: vec![],
            })
            .build();
        net.sim.run_until(SimTime::from_secs(8), 20_000_000);
        let w = net.sim.world();
        let ue0 = w.handler_as::<UeNode>(net.ues[0]).unwrap();
        assert_eq!(ue0.addr, Some(Addr::new(100, 64, 0, 1)), "pool determinism");
        let sgw = w.handler_as::<SgwNode>(net.sgw).unwrap();
        assert!(sgw.stats.bearers_released >= 2, "UE0 went idle repeatedly");
        assert!(sgw.stats.ddn_sent >= 3, "downlink raised notifications");
        assert!(sgw.stats.buffered >= 3, "packets buffered while idle");
        assert!(
            sgw.stats.buffer_flushed >= 3,
            "buffers flushed after paging"
        );
        let mme = w.handler_as::<MmeNode>(net.mme).unwrap();
        assert!(mme.stats.pages_sent >= 3, "MME paged");
        assert!(ue0.stats.pages_received >= 3, "UE heard the pages");
        // The stream actually reached UE0 (delivered to its local sink).
        let delivered = w
            .trace()
            .flow(CentralizedLteBuilder::imsi_of(1))
            .map(|f| f.delivered_packets)
            .unwrap_or(0);
        assert!(delivered >= 4, "CBR delivered {delivered}");
    }

    #[test]
    fn sgw_crash_detected_by_path_mgmt_and_sessions_recover() {
        // Two pinging UEs; the S-GW crashes at 3 s and restarts at 6 s.
        // Path management (500 ms echoes, 2 misses) must detect the death,
        // the MME must clean both sessions and detach the UEs, and both
        // must re-attach once the S-GW is back — keeping their addresses,
        // because the P-GW never lost the IMSI→address binding.
        let mut builder = CentralizedLteBuilder::new(1, 2);
        builder.path_mgmt = Some((SimDuration::from_millis(500), 2));
        let mut net = builder
            .with_ue_plan(|_| UePlan {
                app: UeApp::Pinger {
                    dst: CentralizedLteBuilder::ott_addr(),
                    interval: SimDuration::from_millis(200),
                    probe_bytes: 100,
                },
                mode: MobilityMode::PathSwitch,
                schedule: vec![],
            })
            .build();
        net.sim.run_until(SimTime::from_secs(3), 5_000_000);
        let addrs_before: Vec<_> = net
            .ues
            .iter()
            .map(|&u| net.sim.world().handler_as::<UeNode>(u).unwrap().addr)
            .collect();
        assert!(addrs_before.iter().all(|a| a.is_some()));
        let now = net.sim.now();
        net.sim.queue_mut().schedule_at(
            now,
            dlte_net::NetEvent::Fault(dlte_net::NetFault::NodeDown { node: net.sgw }),
        );
        net.sim.queue_mut().schedule_at(
            SimTime::from_secs(6),
            dlte_net::NetEvent::Fault(dlte_net::NetFault::NodeUp { node: net.sgw }),
        );
        net.sim.run_until(SimTime::from_secs(14), 20_000_000);
        let w = net.sim.world();
        let mme = w.handler_as::<MmeNode>(net.mme).unwrap();
        assert!(mme.stats.peer_failures >= 1, "death detected");
        assert!(mme.stats.sessions_cleaned >= 2, "both sessions cleaned");
        for (i, &ue_id) in net.ues.iter().enumerate() {
            let ue = w.handler_as::<UeNode>(ue_id).unwrap();
            assert!(ue.stats.network_detaches >= 1, "ue{i} was detached");
            assert_eq!(ue.state, UeState::Attached, "ue{i} recovered");
            assert!(
                ue.stats.attaches_completed >= 2,
                "ue{i} re-attached: {}",
                ue.stats.attaches_completed
            );
            assert_eq!(ue.addr, addrs_before[i], "ue{i} kept its address");
            assert!(ue.stats.pongs > 20, "ue{i} traffic resumed");
        }
        let pgw = w.handler_as::<crate::pgw::PgwNode>(net.pgw).unwrap();
        assert!(
            pgw.stats.sessions_reestablished >= 2,
            "P-GW re-created in place: {}",
            pgw.stats.sessions_reestablished
        );
    }

    #[test]
    fn sgw_restart_bounces_stale_tunnels_via_error_indication() {
        // No path management at all: a fast S-GW blip (crash at 3 s, back
        // at 3.2 s) leaves every eNB tunneling into a box with no bearer
        // state. Recovery must come from GTP-U error indications: S-GW
        // bounces the unknown TEID, the eNB tears the context down and
        // detaches the UE, and the re-attach rebuilds the chain.
        let mut net = CentralizedLteBuilder::new(1, 1)
            .with_ue_plan(|_| UePlan {
                app: UeApp::Pinger {
                    dst: CentralizedLteBuilder::ott_addr(),
                    interval: SimDuration::from_millis(200),
                    probe_bytes: 100,
                },
                mode: MobilityMode::PathSwitch,
                schedule: vec![],
            })
            .build();
        net.sim.queue_mut().schedule_at(
            SimTime::from_secs(3),
            dlte_net::NetEvent::Fault(dlte_net::NetFault::NodeDown { node: net.sgw }),
        );
        net.sim.queue_mut().schedule_at(
            SimTime::from_millis(3_200),
            dlte_net::NetEvent::Fault(dlte_net::NetFault::NodeUp { node: net.sgw }),
        );
        net.sim.run_until(SimTime::from_secs(8), 20_000_000);
        let w = net.sim.world();
        let sgw = w.handler_as::<SgwNode>(net.sgw).unwrap();
        assert_eq!(sgw.restart_counter, 1);
        assert!(sgw.stats.error_indications_sent >= 1, "stale TEID bounced");
        let enb = w.handler_as::<crate::enb::EnbNode>(net.enbs[0]).unwrap();
        assert!(enb.stats.error_indication_releases >= 1);
        let ue = w.handler_as::<UeNode>(net.ues[0]).unwrap();
        assert!(ue.stats.network_detaches >= 1);
        assert_eq!(ue.state, UeState::Attached, "recovered");
        assert_eq!(ue.stats.attaches_completed, 2);
        assert_eq!(ue.addr, Some(Addr::new(100, 64, 0, 1)), "address kept");
        assert!(ue.stats.pongs > 15, "traffic resumed: {}", ue.stats.pongs);
    }

    #[test]
    fn path_switch_handover_preserves_address_and_resumes_traffic() {
        let mut builder = CentralizedLteBuilder::new(2, 1);
        builder.wire_all_cells = true;
        builder.ues_per_enb = 1;
        builder.n_enb = 2;
        let mut net = builder
            .with_ue_plan(|_| UePlan {
                app: UeApp::Pinger {
                    dst: CentralizedLteBuilder::ott_addr(),
                    interval: SimDuration::from_millis(50),
                    probe_bytes: 100,
                },
                mode: MobilityMode::PathSwitch,
                schedule: vec![(SimTime::from_secs(3), 1)],
            })
            .build();
        // Only one UE: index 0 (2 eNB × 1 UE-per-eNB = 2 UEs; keep both but
        // move only ue0 — plan applies to all, schedule moves all to cell 1;
        // ue1 is already on cell 1? No: ue1's home is enb1 and cells list is
        // all eNBs in order, so moving to index 1 is enb1 for both.)
        net.sim.run_until(SimTime::from_secs(8), 5_000_000);
        let w = net.sim.world();
        let ue = w.handler_as::<UeNode>(net.ues[0]).unwrap();
        assert_eq!(ue.state, UeState::Attached);
        assert_eq!(
            ue.stats.attaches_completed, 1,
            "path switch must not re-attach"
        );
        assert!(!ue.stats.handover_gap_ms.is_empty(), "gap recorded");
        let mme = w.handler_as::<MmeNode>(net.mme).unwrap();
        assert!(mme.stats.handovers_completed >= 1);
        // Traffic resumed: pongs before and after the move.
        assert!(ue.stats.pongs > 50, "pongs {}", ue.stats.pongs);
    }
}
