//! The User Equipment: attach state machine, mobility behaviour, and an
//! embedded measurement application.
//!
//! The same UE code attaches to a centralized MME or a dLTE local core —
//! deliberately: the paper's backwards-compatibility claim (§4.1) is that
//! *standard clients* work against the stub. The difference between
//! architectures is expressed in the UE's **mobility mode**:
//!
//! * [`MobilityMode::PathSwitch`] — centralized LTE: keep the IP address,
//!   send a service request at the new eNB and let the MME move the bearer;
//! * [`MobilityMode::ReAttach`] — dLTE: the address dies with the old AP;
//!   run a full attach at the new one and let the endpoints resume (§4.2).

use crate::messages::{wire, Nas, S1Nas};
use crate::obs;
use dlte_auth::usim::{AkaError, Usim};
use dlte_auth::Imsi;
use dlte_net::{Addr, LinkId, NodeCtx, NodeHandler, Packet, Payload, Prefix};
use dlte_obs::{AkaStep, NasProc};
use dlte_sim::stats::Samples;
use dlte_sim::{SimDuration, SimTime};
use std::collections::HashMap;

/// How the UE handles moving between cells.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MobilityMode {
    /// S1 path switch: IP preserved, core updates tunnels.
    PathSwitch,
    /// Full re-attach with a fresh address (the dLTE way).
    ReAttach,
}

/// Attach state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UeState {
    Detached,
    Attaching,
    Attached,
}

/// Hook for higher layers riding on the UE (e.g. a transport connection
/// that must react to attach/re-attach and address changes — the `dlte`
/// core crate's transport integration implements this). `Send` because the
/// UE handler owning it may run inside a shard on a worker thread.
pub trait UeUpperLayer: std::any::Any + Send {
    /// Attach completed. `reattach` is true when this follows a cell change
    /// (dLTE address churn); `ue_addr` is the fresh address.
    fn on_attached(&mut self, ctx: &mut NodeCtx<'_>, ue_addr: Addr, reattach: bool);
    /// A non-NAS packet arrived; return true if consumed.
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, packet: &Packet) -> bool;
    /// Timer with tag ≥ [`UPPER_TAG_BASE`] fired (the upper layer owns that
    /// tag space).
    fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _tag: u64) {}
}

/// Timer tags at or above this value are routed to the upper layer.
pub const UPPER_TAG_BASE: u64 = 2_000_000;

/// The measurement application embedded in the UE.
pub enum UeApp {
    /// No traffic; control-plane-only experiments.
    None,
    /// Periodic echo probes to `dst` (an [`dlte_net::handlers::EchoServer`]).
    Pinger {
        dst: Addr,
        interval: SimDuration,
        probe_bytes: u32,
    },
    /// Constant-rate uplink to `dst`.
    UplinkCbr {
        dst: Addr,
        rate_bps: f64,
        packet_bytes: u32,
    },
    /// A custom upper layer (e.g. a transport connection).
    Upper(Box<dyn UeUpperLayer>),
}

/// UE measurements.
#[derive(Clone, Debug, Default)]
pub struct UeReportStats {
    pub attaches_completed: u64,
    pub rrc_releases: u64,
    pub pages_received: u64,
    pub service_requests: u64,
    pub attach_rejects: u64,
    /// Attach requests retransmitted after a timeout (lost signalling or a
    /// dead core), counted on top of `service_requests`/attach attempts.
    pub attach_retries: u64,
    pub service_request_retries: u64,
    /// Network-initiated detaches (the core lost our session).
    pub network_detaches: u64,
    /// Attach latency experienced by the UE (request sent → accept
    /// received), milliseconds.
    pub attach_latency_ms: Samples,
    /// Application echo RTTs, milliseconds.
    pub rtt_ms: Samples,
    /// Service interruption across cell changes (move → first echo reply on
    /// the new cell), milliseconds.
    pub handover_gap_ms: Samples,
    pub pongs: u64,
    pub probes_sent: u64,
    pub cbr_packets_sent: u64,
    /// Cell changes executed (mobility schedule entries that took effect).
    pub cell_moves: u64,
    /// Downlink NAS dropped because it came from a cell we no longer camp
    /// on (e.g. a stale attach accept racing a rapid move sequence).
    pub stale_nas_dropped: u64,
}

/// A cell the UE can camp on.
#[derive(Clone, Copy, Debug)]
pub struct CellAttachment {
    pub enb_addr: Addr,
    pub radio_link: LinkId,
}

const TAG_BEGIN_ATTACH: u64 = 1;
const TAG_APP: u64 = 3;
const TAG_MOBILITY_BASE: u64 = 1000;
/// Attach-timeout tags encode the attempt epoch they guard, so a stale
/// timer from a completed attach can never restart a later one.
const TAG_ATTACH_TIMEOUT_BASE: u64 = 100_000;
/// Service-request retransmission tags, epoch-encoded like attach timeouts.
const TAG_SERVICE_RETRY_BASE: u64 = 200_000;

/// Capped exponential backoff: `base_ms << (attempt-1)`, clamped to
/// `cap_ms`. Attempt 1 waits the base interval.
fn backoff(base_ms: u64, attempt: u32, cap_ms: u64) -> SimDuration {
    let exp = attempt.saturating_sub(1).min(16);
    SimDuration::from_millis((base_ms << exp).min(cap_ms))
}

/// The UE node handler.
pub struct UeNode {
    pub imsi: Imsi,
    /// RRC connection state: true after the eNB released us to ECM-IDLE
    /// (we keep the IP, but must service-request before transmitting).
    pub rrc_idle: bool,
    service_requested_at: Option<SimTime>,
    service_epoch: u64,
    service_attempts: u32,
    usim: Usim,
    cells: Vec<CellAttachment>,
    current: usize,
    pub mode: MobilityMode,
    /// Scheduled cell changes: (when, cell index).
    mobility: Vec<(SimTime, usize)>,
    app: UeApp,
    pub state: UeState,
    /// Current user-plane address (None when detached in ReAttach mode).
    pub addr: Option<Addr>,
    attach_started: Option<SimTime>,
    attach_attempts: u32,
    attach_epoch: u64,
    handover_started: Option<SimTime>,
    outstanding: HashMap<u64, SimTime>,
    seq: u64,
    app_running: bool,
    had_first_attach: bool,
    pub stats: UeReportStats,
}

impl UeNode {
    pub fn new(imsi: Imsi, usim: Usim, cells: Vec<CellAttachment>, app: UeApp) -> Self {
        assert!(!cells.is_empty(), "UE needs at least one cell");
        UeNode {
            imsi,
            rrc_idle: false,
            service_requested_at: None,
            service_epoch: 0,
            service_attempts: 0,
            usim,
            cells,
            current: 0,
            mode: MobilityMode::PathSwitch,
            mobility: Vec::new(),
            app,
            state: UeState::Detached,
            addr: None,
            attach_started: None,
            attach_attempts: 0,
            attach_epoch: 0,
            handover_started: None,
            outstanding: HashMap::new(),
            seq: 0,
            app_running: false,
            had_first_attach: false,
            stats: UeReportStats::default(),
        }
    }

    /// Configure the mobility schedule and mode.
    pub fn with_mobility(mut self, mode: MobilityMode, schedule: Vec<(SimTime, usize)>) -> Self {
        self.mode = mode;
        self.mobility = schedule;
        self
    }

    fn current_cell(&self) -> CellAttachment {
        self.cells[self.current]
    }

    /// Index into the cell list the UE currently camps on (0 = home cell).
    pub fn current_cell_index(&self) -> usize {
        self.current
    }

    /// Typed access to the upper layer (result extraction after a run).
    pub fn upper_as<T: UeUpperLayer>(&self) -> Option<&T> {
        match &self.app {
            UeApp::Upper(u) => (u.as_ref() as &dyn std::any::Any).downcast_ref::<T>(),
            _ => None,
        }
    }

    fn send_nas(&mut self, ctx: &mut NodeCtx<'_>, nas: Nas, size: u32) {
        let cell = self.current_cell();
        let p = ctx
            .make_packet(cell.enb_addr, size)
            .with_payload(Payload::control(S1Nas {
                imsi: self.imsi,
                nas,
            }));
        ctx.forward_via(cell.radio_link, p);
    }

    fn begin_attach(&mut self, ctx: &mut NodeCtx<'_>) {
        self.state = UeState::Attaching;
        if self.attach_started.is_none() {
            self.attach_started = Some(ctx.now);
            obs::nas_start(ctx, NasProc::Attach, self.imsi);
        }
        self.attach_attempts += 1;
        self.attach_epoch += 1;
        if self.attach_attempts > 1 {
            self.stats.attach_retries += 1;
        }
        self.send_nas(
            ctx,
            Nas::AttachRequest {
                imsi: self.imsi,
                via_enb: Addr::UNSPECIFIED,
            },
            wire::ATTACH_REQUEST,
        );
        // Retransmission guard with capped exponential backoff (3 s, 6 s,
        // 12 s, then 24 s forever): the UE never gives up — an outage
        // longer than any fixed attempt budget must still end in recovery.
        // The tag carries the epoch so only the *newest* attempt's timer
        // can retry.
        ctx.set_timer(
            backoff(3_000, self.attach_attempts, 24_000),
            TAG_ATTACH_TIMEOUT_BASE + self.attach_epoch,
        );
    }

    fn start_app(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.app_running {
            return;
        }
        if matches!(self.app, UeApp::None | UeApp::Upper(_)) {
            return;
        }
        self.app_running = true;
        ctx.set_timer(SimDuration::ZERO, TAG_APP);
    }

    fn app_packet(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        dst: Addr,
        bytes: u32,
        flow: u64,
    ) -> Option<Packet> {
        let src = self.addr?;
        let id = ctx.new_packet_id();
        Some(
            Packet::new(id, src, dst, bytes, ctx.now).with_payload(Payload::Flow {
                flow,
                seq: {
                    let s = self.seq;
                    self.seq += 1;
                    s
                },
            }),
        )
    }

    fn app_tick(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.state != UeState::Attached {
            // Keep ticking; traffic resumes after re-attach.
            ctx.set_timer(SimDuration::from_millis(20), TAG_APP);
            return;
        }
        if self.rrc_idle {
            // Uplink pending while idle: service-request first, retry the
            // app tick shortly (radio bearer restores in a few control
            // RTTs).
            self.service_request(ctx);
            ctx.set_timer(SimDuration::from_millis(50), TAG_APP);
            return;
        }
        match &self.app {
            UeApp::None | UeApp::Upper(_) => {}
            &UeApp::Pinger {
                dst,
                interval,
                probe_bytes,
            } => {
                let seq_for_probe = self.seq;
                if let Some(p) = self.app_packet(ctx, dst, probe_bytes, self.imsi) {
                    self.outstanding.insert(seq_for_probe, ctx.now);
                    self.stats.probes_sent += 1;
                    ctx.forward(p);
                }
                ctx.set_timer(interval, TAG_APP);
            }
            &UeApp::UplinkCbr {
                dst,
                rate_bps,
                packet_bytes,
            } => {
                if let Some(p) = self.app_packet(ctx, dst, packet_bytes, self.imsi) {
                    self.stats.cbr_packets_sent += 1;
                    ctx.forward(p);
                }
                let gap = SimDuration::from_secs_f64(packet_bytes as f64 * 8.0 / rate_bps);
                ctx.set_timer(gap, TAG_APP);
            }
        }
    }

    fn handle_nas(&mut self, ctx: &mut NodeCtx<'_>, nas: Nas) {
        match nas {
            Nas::AuthenticationRequest { rand, autn, sn_id } => {
                match self.usim.authenticate(rand, autn, sn_id) {
                    Ok(resp) => {
                        obs::aka(ctx, AkaStep::Response, self.imsi);
                        self.send_nas(
                            ctx,
                            Nas::AuthenticationResponse {
                                imsi: self.imsi,
                                res: resp.res,
                            },
                            wire::AUTH_RESPONSE,
                        )
                    }
                    Err(AkaError::SyncFailure { ue_sqn }) => {
                        obs::aka(ctx, AkaStep::Resync, self.imsi);
                        self.send_nas(
                            ctx,
                            Nas::AuthenticationFailure {
                                imsi: self.imsi,
                                ue_sqn: Some(ue_sqn),
                            },
                            wire::AUTH_FAILURE,
                        )
                    }
                    Err(AkaError::MacFailure) => {
                        obs::aka(ctx, AkaStep::Failure, self.imsi);
                        self.send_nas(
                            ctx,
                            Nas::AuthenticationFailure {
                                imsi: self.imsi,
                                ue_sqn: None,
                            },
                            wire::AUTH_FAILURE,
                        )
                    }
                }
            }
            Nas::AttachAccept { ue_addr } => {
                if self.state != UeState::Attaching {
                    return;
                }
                self.state = UeState::Attached;
                self.attach_epoch += 1;
                self.stats.attaches_completed += 1;
                obs::nas_end(ctx, NasProc::Attach, self.imsi, true);
                if let Some(started) = self.attach_started.take() {
                    self.stats
                        .attach_latency_ms
                        .push_duration_ms(ctx.now.saturating_since(started));
                }
                self.attach_attempts = 0;
                let reattach = self.had_first_attach;
                self.had_first_attach = true;
                self.addr = Some(ue_addr);
                ctx.add_addr(ctx.node, ue_addr);
                self.start_app(ctx);
                if let UeApp::Upper(upper) = &mut self.app {
                    upper.on_attached(ctx, ue_addr, reattach);
                }
            }
            Nas::AttachReject { .. } => {
                self.stats.attach_rejects += 1;
                self.state = UeState::Detached;
                if self.attach_started.take().is_some() {
                    obs::nas_end(ctx, NasProc::Attach, self.imsi, false);
                }
            }
            Nas::RrcRelease { .. } if self.state == UeState::Attached => {
                self.rrc_idle = true;
                self.stats.rrc_releases += 1;
            }
            Nas::RrcRelease { .. } => {}
            Nas::PagingNotify { .. } => {
                self.stats.pages_received += 1;
                self.service_request(ctx);
            }
            Nas::ServiceAccept { .. } => {
                self.rrc_idle = false;
                if self.service_requested_at.take().is_some() {
                    obs::nas_end(ctx, NasProc::ServiceRequest, self.imsi, true);
                }
                self.service_attempts = 0;
                self.service_epoch += 1; // invalidate any pending retry
            }
            Nas::NetworkDetach { .. } => {
                // The core lost our session: the address is dead, a full
                // re-attach is the only way back.
                self.stats.network_detaches += 1;
                if let Some(old) = self.addr.take() {
                    ctx.remove_addr(ctx.node, old);
                }
                self.rrc_idle = false;
                self.service_requested_at = None;
                self.service_epoch += 1;
                if self.state == UeState::Attaching {
                    return; // re-attach already under way
                }
                self.state = UeState::Detached;
                self.attach_started = None;
                self.attach_attempts = 0;
                self.begin_attach(ctx);
            }
            _ => {}
        }
    }

    /// Leave ECM-IDLE: ask the network to restore the bearer. The UE keeps
    /// holding uplink until the service accept arrives (an idle UE cannot
    /// just transmit). Retransmission is timer-driven with capped
    /// exponential backoff; this entry point is a no-op while a request is
    /// already in flight.
    fn service_request(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.service_requested_at.is_some() {
            return; // retransmission timer owns the retries
        }
        self.service_attempts = 0;
        self.send_service_request(ctx);
    }

    fn send_service_request(&mut self, ctx: &mut NodeCtx<'_>) {
        let Some(ue_addr) = self.addr else { return };
        if !self.rrc_idle {
            return;
        }
        self.service_requested_at = Some(ctx.now);
        self.service_attempts += 1;
        if self.service_attempts > 1 {
            self.stats.service_request_retries += 1;
        } else {
            obs::nas_start(ctx, NasProc::ServiceRequest, self.imsi);
        }
        self.stats.service_requests += 1;
        self.send_nas(
            ctx,
            Nas::ServiceRequest {
                imsi: self.imsi,
                ue_addr,
            },
            wire::S1AP_PATH_SWITCH,
        );
        // Retransmit at 500 ms, 1 s, 2 s, then every 4 s until accepted.
        self.service_epoch += 1;
        ctx.set_timer(
            backoff(500, self.service_attempts, 4_000),
            TAG_SERVICE_RETRY_BASE + self.service_epoch,
        );
    }

    fn move_to_cell(&mut self, ctx: &mut NodeCtx<'_>, idx: usize) {
        if idx == self.current || idx >= self.cells.len() {
            return;
        }
        if self.mode == MobilityMode::ReAttach {
            // Tell the cell we are leaving to release its session *before*
            // re-pointing the radio: the detach rides the old radio link
            // (which is not a fault target), so the old core frees the
            // address instead of stranding it until an idle sweep. This
            // also covers a move arriving while a previous attach (or
            // detach) is still in flight — the old AP's half-open state is
            // torn down by the same message.
            self.send_nas(ctx, Nas::DetachRequest { imsi: self.imsi }, wire::DETACH);
        }
        self.current = idx;
        self.stats.cell_moves += 1;
        let cell = self.current_cell();
        // Re-point the default route at the new radio link.
        ctx.node_info_mut()
            .set_route(Prefix::DEFAULT, cell.radio_link);
        self.handover_started = Some(ctx.now);
        // Probes in flight across the move are lost; forget them so the gap
        // measurement keys off post-move probes.
        self.outstanding.clear();
        match self.mode {
            MobilityMode::PathSwitch => {
                if let Some(ue_addr) = self.addr {
                    self.send_nas(
                        ctx,
                        Nas::ServiceRequest {
                            imsi: self.imsi,
                            ue_addr,
                        },
                        wire::S1AP_PATH_SWITCH,
                    );
                } else {
                    self.begin_attach(ctx);
                }
            }
            MobilityMode::ReAttach => {
                // The old address dies with the old AP.
                if let Some(old) = self.addr.take() {
                    ctx.remove_addr(ctx.node, old);
                }
                self.state = UeState::Detached;
                self.attach_started = None;
                // A fresh cell is a fresh attach, not a retry: resetting
                // the attempt counter keeps a rapid move sequence from
                // double-incrementing the backoff (and `attach_retries`)
                // for timeouts that belong to a cell we already left.
                self.attach_attempts = 0;
                self.begin_attach(ctx);
            }
        }
    }
}

impl NodeHandler for UeNode {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        // Default route toward the first cell, then attach immediately.
        let cell = self.current_cell();
        ctx.node_info_mut()
            .set_route(Prefix::DEFAULT, cell.radio_link);
        ctx.set_timer(SimDuration::ZERO, TAG_BEGIN_ATTACH);
        for (i, &(when, _)) in self.mobility.iter().enumerate() {
            ctx.set_timer(when.saturating_since(ctx.now), TAG_MOBILITY_BASE + i as u64);
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tag: u64) {
        match tag {
            TAG_BEGIN_ATTACH => self.begin_attach(ctx),
            TAG_APP => self.app_tick(ctx),
            t if t >= UPPER_TAG_BASE => {
                if let UeApp::Upper(upper) = &mut self.app {
                    upper.on_timer(ctx, t);
                }
            }
            t if t >= TAG_SERVICE_RETRY_BASE => {
                let epoch = t - TAG_SERVICE_RETRY_BASE;
                if epoch == self.service_epoch
                    && self.rrc_idle
                    && self.service_requested_at.is_some()
                {
                    self.send_service_request(ctx);
                }
            }
            t if t >= TAG_ATTACH_TIMEOUT_BASE => {
                let epoch = t - TAG_ATTACH_TIMEOUT_BASE;
                if epoch == self.attach_epoch && self.state == UeState::Attaching {
                    self.begin_attach(ctx);
                }
            }
            t if t >= TAG_MOBILITY_BASE => {
                let idx = (t - TAG_MOBILITY_BASE) as usize;
                if let Some(&(_, cell)) = self.mobility.get(idx) {
                    self.move_to_cell(ctx, cell);
                }
            }
            _ => {}
        }
    }

    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, packet: Packet) {
        if let Some(s1nas) = packet.payload.as_control::<S1Nas>() {
            if s1nas.imsi == self.imsi {
                // Only the serving cell may *advance* our NAS state machine.
                // Without this, an attach accept from a cell we already
                // left (a rapid move sequence A→B→C where B's accept is
                // still in flight) would attach us to the wrong core with
                // an address its pool owns — a split-brain session. Fail-safe
                // orders are exempt: a NetworkDetach from an old cell is how
                // the network tears down a bearer it still anchors there
                // (e.g. a GTP error indication landing at the last eNB that
                // completed our path switch while our newest switch is lost
                // in flight) — dropping it wedges the UE with a dead bearer,
                // while honoring it merely costs one safe re-attach.
                let fail_safe = matches!(s1nas.nas, Nas::NetworkDetach { .. });
                if !fail_safe && packet.src != self.current_cell().enb_addr {
                    self.stats.stale_nas_dropped += 1;
                    return;
                }
                let nas = s1nas.nas.clone();
                self.handle_nas(ctx, nas);
            }
            return;
        }
        if let UeApp::Upper(upper) = &mut self.app {
            if upper.on_packet(ctx, &packet) {
                return;
            }
        }
        if let Payload::Flow { flow, seq } = packet.payload {
            if flow == self.imsi {
                // Echo reply for one of our probes.
                if let Some(sent) = self.outstanding.remove(&seq) {
                    self.stats.pongs += 1;
                    self.stats
                        .rtt_ms
                        .push_duration_ms(ctx.now.saturating_since(sent));
                    if let Some(ho) = self.handover_started.take() {
                        self.stats
                            .handover_gap_ms
                            .push_duration_ms(ctx.now.saturating_since(ho));
                    }
                }
                return;
            }
            // Other downlink traffic terminates here.
            ctx.deliver_local(&packet);
        }
    }
}
