//! # dlte-faults — deterministic fault-injection plans
//!
//! The dLTE argument (§4) is about what happens when things *break*: the
//! backhaul flaps, the central EPC crashes, a site is partitioned. This
//! crate turns those scenarios into data: a [`FaultPlan`] is a serde-able,
//! seeded, composable list of [`FaultSpec`]s that compiles to a sorted
//! timeline of raw [`NetFault`]s and injects them into a simulation as
//! ordinary events. Determinism is total — all randomness happens at *plan
//! generation* time (see [`FaultPlan::chaos_mix`]), so the same plan JSON
//! replays identically regardless of `--jobs` or host.
//!
//! Layering: `dlte-net` owns the fault *mechanisms* (`Network::apply_fault`,
//! link overrides, crash/pause handler hooks); this crate owns the fault
//! *policy* — when and what to break.

use dlte_net::{LinkId, LinkOverride, NetEvent, NetFault, Network, NodeId};
use dlte_sim::{SimDuration, SimRng, SimTime, Simulation};
use serde::{Deserialize, Serialize};

pub mod mobility;
pub mod registry;
pub use mobility::{MovePlan, MoveSpec};
pub use registry::{RegistryFault, RegistryFaultPlan, RegistryFaultSpec};

/// A composable fault scenario.
///
/// The `seed` is carried for provenance (plans produced by
/// [`FaultPlan::chaos_mix`] record the seed that generated them); replaying
/// a plan uses only its `faults` list.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    #[serde(default)]
    pub seed: u64,
    #[serde(default)]
    pub faults: Vec<FaultSpec>,
}

/// One scheduled fault (or fault pattern). Times are seconds of simulated
/// time; durations of zero are legal (a `LinkFlap` with `down_s: 0.0`
/// downs and re-ups the link at the same instant, in that order).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultSpec {
    /// `times` down/up flaps of a link: down at `at_s + k*gap_s` for
    /// `down_s` each.
    LinkFlap {
        link: LinkId,
        at_s: f64,
        down_s: f64,
        times: u32,
        gap_s: f64,
    },
    /// Raise a link's loss probability to `loss` during the window.
    LossBurst {
        link: LinkId,
        at_s: f64,
        for_s: f64,
        loss: f64,
    },
    /// Add latency and uniform jitter to a link during the window.
    LatencyStorm {
        link: LinkId,
        at_s: f64,
        for_s: f64,
        extra_ms: f64,
        jitter_ms: f64,
    },
    /// Throttle a link's rate during the window.
    RateThrottle {
        link: LinkId,
        at_s: f64,
        for_s: f64,
        rate_bps: f64,
    },
    /// Crash a node (handler state loss), optionally restarting it later.
    NodeCrash {
        node: NodeId,
        at_s: f64,
        restart_after_s: Option<f64>,
    },
    /// Pause a node (packets dropped, timers deferred), resuming later.
    NodePause { node: NodeId, at_s: f64, for_s: f64 },
    /// Cut `nodes` from the rest of the world, optionally healing later.
    Partition {
        nodes: Vec<NodeId>,
        at_s: f64,
        heal_after_s: Option<f64>,
    },
    /// Escape hatch: a raw fault at a point in time.
    At { at_s: f64, fault: NetFault },
}

fn at(out: &mut Vec<(SimTime, NetFault)>, t_s: f64, fault: NetFault) {
    out.push((
        SimTime::ZERO + SimDuration::from_secs_f64(t_s.max(0.0)),
        fault,
    ));
}

impl FaultSpec {
    /// Expand this spec into raw timed faults.
    pub fn compile_into(&self, out: &mut Vec<(SimTime, NetFault)>) {
        match *self {
            FaultSpec::LinkFlap {
                link,
                at_s,
                down_s,
                times,
                gap_s,
            } => {
                for k in 0..times.max(1) {
                    let start = at_s + k as f64 * gap_s;
                    at(out, start, NetFault::LinkUp { link, up: false });
                    at(out, start + down_s, NetFault::LinkUp { link, up: true });
                }
            }
            FaultSpec::LossBurst {
                link,
                at_s,
                for_s,
                loss,
            } => {
                let ov = LinkOverride {
                    loss: Some(loss),
                    ..Default::default()
                };
                at(out, at_s, NetFault::LinkOverride { link, ov });
                at(
                    out,
                    at_s + for_s,
                    NetFault::LinkOverride {
                        link,
                        ov: LinkOverride::default(),
                    },
                );
            }
            FaultSpec::LatencyStorm {
                link,
                at_s,
                for_s,
                extra_ms,
                jitter_ms,
            } => {
                let ov = LinkOverride {
                    extra_delay: Some(SimDuration::from_secs_f64(extra_ms / 1e3)),
                    jitter: Some(SimDuration::from_secs_f64(jitter_ms / 1e3)),
                    ..Default::default()
                };
                at(out, at_s, NetFault::LinkOverride { link, ov });
                at(
                    out,
                    at_s + for_s,
                    NetFault::LinkOverride {
                        link,
                        ov: LinkOverride::default(),
                    },
                );
            }
            FaultSpec::RateThrottle {
                link,
                at_s,
                for_s,
                rate_bps,
            } => {
                let ov = LinkOverride {
                    rate_bps: Some(rate_bps),
                    ..Default::default()
                };
                at(out, at_s, NetFault::LinkOverride { link, ov });
                at(
                    out,
                    at_s + for_s,
                    NetFault::LinkOverride {
                        link,
                        ov: LinkOverride::default(),
                    },
                );
            }
            FaultSpec::NodeCrash {
                node,
                at_s,
                restart_after_s,
            } => {
                at(out, at_s, NetFault::NodeDown { node });
                if let Some(after) = restart_after_s {
                    at(out, at_s + after, NetFault::NodeUp { node });
                }
            }
            FaultSpec::NodePause { node, at_s, for_s } => {
                at(out, at_s, NetFault::NodePause { node });
                at(out, at_s + for_s, NetFault::NodeResume { node });
            }
            FaultSpec::Partition {
                ref nodes,
                at_s,
                heal_after_s,
            } => {
                at(
                    out,
                    at_s,
                    NetFault::Partition {
                        nodes: nodes.clone(),
                        up: false,
                    },
                );
                if let Some(after) = heal_after_s {
                    at(
                        out,
                        at_s + after,
                        NetFault::Partition {
                            nodes: nodes.clone(),
                            up: true,
                        },
                    );
                }
            }
            FaultSpec::At { at_s, ref fault } => at(out, at_s, fault.clone()),
        }
    }

    /// Strictly simpler variants of this spec, in a deterministic order —
    /// the moves the fuzzer's repro shrinker tries: halve durations,
    /// magnitudes and repetition counts, shed partition members. Floors keep
    /// every move strictly shrinking, so repeated shrinking terminates. May
    /// be empty when the spec is already minimal.
    pub fn shrink(&self) -> Vec<FaultSpec> {
        const FLOOR_S: f64 = 0.05;
        let mut out = Vec::new();
        match *self {
            FaultSpec::LinkFlap {
                link,
                at_s,
                down_s,
                times,
                gap_s,
            } => {
                if times > 1 {
                    out.push(FaultSpec::LinkFlap {
                        link,
                        at_s,
                        down_s,
                        times: times / 2,
                        gap_s,
                    });
                }
                if down_s > FLOOR_S {
                    out.push(FaultSpec::LinkFlap {
                        link,
                        at_s,
                        down_s: down_s / 2.0,
                        times,
                        gap_s,
                    });
                }
            }
            FaultSpec::LossBurst {
                link,
                at_s,
                for_s,
                loss,
            } => {
                if for_s > FLOOR_S {
                    out.push(FaultSpec::LossBurst {
                        link,
                        at_s,
                        for_s: for_s / 2.0,
                        loss,
                    });
                }
                if loss > 0.05 {
                    out.push(FaultSpec::LossBurst {
                        link,
                        at_s,
                        for_s,
                        loss: loss / 2.0,
                    });
                }
            }
            FaultSpec::LatencyStorm {
                link,
                at_s,
                for_s,
                extra_ms,
                jitter_ms,
            } => {
                if for_s > FLOOR_S {
                    out.push(FaultSpec::LatencyStorm {
                        link,
                        at_s,
                        for_s: for_s / 2.0,
                        extra_ms,
                        jitter_ms,
                    });
                }
                if extra_ms > 1.0 {
                    out.push(FaultSpec::LatencyStorm {
                        link,
                        at_s,
                        for_s,
                        extra_ms: extra_ms / 2.0,
                        jitter_ms,
                    });
                }
                if jitter_ms > 0.0 {
                    out.push(FaultSpec::LatencyStorm {
                        link,
                        at_s,
                        for_s,
                        extra_ms,
                        jitter_ms: 0.0,
                    });
                }
            }
            FaultSpec::RateThrottle {
                link,
                at_s,
                for_s,
                rate_bps,
            } => {
                if for_s > FLOOR_S {
                    out.push(FaultSpec::RateThrottle {
                        link,
                        at_s,
                        for_s: for_s / 2.0,
                        rate_bps,
                    });
                }
                if rate_bps < 5e6 {
                    // A gentler throttle (higher rate) is the smaller fault.
                    out.push(FaultSpec::RateThrottle {
                        link,
                        at_s,
                        for_s,
                        rate_bps: (rate_bps * 2.0).min(5e6),
                    });
                }
            }
            FaultSpec::NodeCrash {
                node,
                at_s,
                restart_after_s,
            } => {
                if let Some(after) = restart_after_s {
                    if after > FLOOR_S {
                        out.push(FaultSpec::NodeCrash {
                            node,
                            at_s,
                            restart_after_s: Some(after / 2.0),
                        });
                    }
                }
            }
            FaultSpec::NodePause { node, at_s, for_s } => {
                if for_s > FLOOR_S {
                    out.push(FaultSpec::NodePause {
                        node,
                        at_s,
                        for_s: for_s / 2.0,
                    });
                }
            }
            FaultSpec::Partition {
                ref nodes,
                at_s,
                heal_after_s,
            } => {
                if nodes.len() > 1 {
                    out.push(FaultSpec::Partition {
                        nodes: nodes[..nodes.len() - 1].to_vec(),
                        at_s,
                        heal_after_s,
                    });
                }
                if let Some(after) = heal_after_s {
                    if after > FLOOR_S {
                        out.push(FaultSpec::Partition {
                            nodes: nodes.clone(),
                            at_s,
                            heal_after_s: Some(after / 2.0),
                        });
                    }
                }
            }
            FaultSpec::At { .. } => {}
        }
        out
    }
}

/// Total order on same-instant faults, independent of the order their specs
/// were inserted into the plan: "break" events (link/node down, pause,
/// partition cut, override install) sort before "repair" events (up,
/// restart, resume, heal, override clear), then by affected entity and
/// parameters. Break-before-repair keeps zero-duration faults meaningful
/// (a `down_s: 0.0` flap still downs the link before re-upping it) and the
/// full key makes [`FaultPlan::compile`] a pure function of the *set* of
/// specs — see the permutation-invariance test.
fn same_instant_key(f: &NetFault) -> (u8, u64, Vec<u64>) {
    fn bits_f(v: Option<f64>) -> [u64; 2] {
        [v.is_some() as u64, v.unwrap_or(0.0).to_bits()]
    }
    fn bits_d(v: Option<SimDuration>) -> [u64; 2] {
        [v.is_some() as u64, v.map_or(0, SimDuration::as_nanos)]
    }
    fn ov_bits(ov: &LinkOverride) -> Vec<u64> {
        let mut out = Vec::with_capacity(8);
        out.extend(bits_f(ov.loss));
        out.extend(bits_d(ov.extra_delay));
        out.extend(bits_d(ov.jitter));
        out.extend(bits_f(ov.rate_bps));
        out
    }
    match f {
        NetFault::LinkUp { link, up: false } => (0, *link as u64, Vec::new()),
        NetFault::NodeDown { node } => (1, *node as u64, Vec::new()),
        NetFault::NodePause { node } => (2, *node as u64, Vec::new()),
        NetFault::Partition { nodes, up: false } => {
            (3, 0, nodes.iter().map(|&n| n as u64).collect())
        }
        NetFault::LinkOverride { link, ov } if !ov.is_empty() => (4, *link as u64, ov_bits(ov)),
        NetFault::LinkOverride { link, .. } => (5, *link as u64, Vec::new()),
        NetFault::LinkUp { link, up: true } => (6, *link as u64, Vec::new()),
        NetFault::NodeUp { node } => (7, *node as u64, Vec::new()),
        NetFault::NodeResume { node } => (8, *node as u64, Vec::new()),
        NetFault::Partition { nodes, up: true } => {
            (9, 0, nodes.iter().map(|&n| n as u64).collect())
        }
        // Route installs are reconvergence actions: they sort with (after)
        // the repairs, keyed by the full route so the order is total.
        NetFault::RouteSet { node, prefix, link } => (
            10,
            *node as u64,
            vec![prefix.addr.0 as u64, prefix.len as u64, *link as u64],
        ),
    }
}

impl FaultPlan {
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Append a spec (builder style).
    pub fn with(mut self, spec: FaultSpec) -> FaultPlan {
        self.faults.push(spec);
        self
    }

    /// Expand to the raw fault timeline, sorted by time. Same-instant faults
    /// are ordered by a total key ([`same_instant_key`]: breaks before
    /// repairs, then entity and parameters), never by insertion order — so
    /// any permutation of the same specs compiles to the identical timeline.
    pub fn compile(&self) -> Vec<(SimTime, NetFault)> {
        let mut out = Vec::new();
        for spec in &self.faults {
            spec.compile_into(&mut out);
        }
        out.sort_by_cached_key(|&(t, ref f)| (t, same_instant_key(f)));
        out
    }

    /// Schedule every fault of this plan into `sim` as `NetEvent::Fault`
    /// events. Call once, before (or during) the run.
    pub fn inject(&self, sim: &mut Simulation<Network>) {
        for (t, fault) in self.compile() {
            sim.queue_mut().schedule_at(t, NetEvent::Fault(fault));
        }
    }

    /// Schedule every fault of this plan into a (possibly sharded)
    /// simulation. Each fault is broadcast to every shard so replicated
    /// link/route/liveness state stays in sync — the sharded equivalent of
    /// [`FaultPlan::inject`], and identical to it at one shard.
    pub fn inject_sharded(&self, sim: &mut dlte_net::ShardedSim) {
        for (t, fault) in self.compile() {
            sim.schedule_fault_broadcast(t, fault);
        }
    }

    /// Latest time at which this plan changes anything (used to size
    /// experiment horizons).
    pub fn last_fault_time(&self) -> SimTime {
        self.compile()
            .last()
            .map(|&(t, _)| t)
            .unwrap_or(SimTime::ZERO)
    }

    /// Candidate plans strictly simpler than this one, in a deterministic
    /// order: first each plan with one spec removed, then each plan with one
    /// spec replaced by a [`FaultSpec::shrink`] variant. The fuzzer keeps
    /// the first candidate that still trips an oracle and recurses; because
    /// every candidate is strictly smaller (fewer specs, or a strictly
    /// reduced parameter with a floor), greedy shrinking terminates.
    pub fn shrink_candidates(&self) -> Vec<FaultPlan> {
        let mut out = Vec::new();
        for i in 0..self.faults.len() {
            let mut p = self.clone();
            p.faults.remove(i);
            out.push(p);
        }
        for i in 0..self.faults.len() {
            for s in self.faults[i].shrink() {
                let mut p = self.clone();
                p.faults[i] = s;
                out.push(p);
            }
        }
        out
    }

    /// Generate a seeded random fault mix: `n` faults drawn over the links
    /// in `targets.links` and nodes in `targets.crashable`, starting in
    /// `[start_s, end_s)`, each repaired within `max_down_s`. All randomness
    /// happens *here* — the returned plan is plain data and replays
    /// identically however it is run.
    pub fn chaos_mix(
        seed: u64,
        targets: &ChaosTargets,
        n: usize,
        start_s: f64,
        end_s: f64,
        max_down_s: f64,
    ) -> FaultPlan {
        let mut rng = SimRng::new(seed).fork("chaos-mix");
        let mut plan = FaultPlan::new(seed);
        for _ in 0..n {
            let at_s = rng.uniform(start_s, end_s);
            let for_s = rng.uniform(0.1 * max_down_s, max_down_s);
            // Node faults only when crashable nodes exist; weight link
            // faults 3:1 (they are the common case in deployment reports).
            let node_fault = !targets.crashable.is_empty() && rng.chance(0.25);
            let spec = if node_fault {
                let node = targets.crashable[rng.index(targets.crashable.len())];
                if rng.chance(0.5) {
                    FaultSpec::NodeCrash {
                        node,
                        at_s,
                        restart_after_s: Some(for_s),
                    }
                } else {
                    FaultSpec::NodePause { node, at_s, for_s }
                }
            } else {
                let link = targets.links[rng.index(targets.links.len())];
                match rng.index(4) {
                    0 => FaultSpec::LinkFlap {
                        link,
                        at_s,
                        down_s: for_s,
                        times: 1,
                        gap_s: 0.0,
                    },
                    1 => FaultSpec::LossBurst {
                        link,
                        at_s,
                        for_s,
                        loss: rng.uniform(0.05, 0.5),
                    },
                    2 => FaultSpec::LatencyStorm {
                        link,
                        at_s,
                        for_s,
                        extra_ms: rng.uniform(10.0, 200.0),
                        jitter_ms: rng.uniform(0.0, 50.0),
                    },
                    _ => FaultSpec::RateThrottle {
                        link,
                        at_s,
                        for_s,
                        rate_bps: rng.uniform(1e5, 5e6),
                    },
                }
            };
            plan.faults.push(spec);
        }
        plan
    }
}

/// What a chaos generator is allowed to break.
#[derive(Clone, Debug, Default)]
pub struct ChaosTargets {
    pub links: Vec<LinkId>,
    pub crashable: Vec<NodeId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flap_compiles_to_paired_transitions() {
        let plan = FaultPlan::new(1).with(FaultSpec::LinkFlap {
            link: 2,
            at_s: 1.0,
            down_s: 0.5,
            times: 2,
            gap_s: 2.0,
        });
        let events = plan.compile();
        assert_eq!(
            events,
            vec![
                (
                    SimTime::from_millis(1000),
                    NetFault::LinkUp { link: 2, up: false }
                ),
                (
                    SimTime::from_millis(1500),
                    NetFault::LinkUp { link: 2, up: true }
                ),
                (
                    SimTime::from_millis(3000),
                    NetFault::LinkUp { link: 2, up: false }
                ),
                (
                    SimTime::from_millis(3500),
                    NetFault::LinkUp { link: 2, up: true }
                ),
            ]
        );
        assert_eq!(plan.last_fault_time(), SimTime::from_millis(3500));
    }

    #[test]
    fn zero_duration_flap_keeps_plan_order() {
        // Down and up at the same instant: breaks sort before repairs.
        let plan = FaultPlan::new(1).with(FaultSpec::LinkFlap {
            link: 0,
            at_s: 0.0,
            down_s: 0.0,
            times: 1,
            gap_s: 0.0,
        });
        let events = plan.compile();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].1, NetFault::LinkUp { link: 0, up: false });
        assert_eq!(events[1].1, NetFault::LinkUp { link: 0, up: true });
        assert_eq!(events[0].0, SimTime::ZERO);
        assert_eq!(events[1].0, SimTime::ZERO);
    }

    #[test]
    fn bursts_install_and_clear_overrides() {
        let plan = FaultPlan::new(1)
            .with(FaultSpec::LossBurst {
                link: 1,
                at_s: 2.0,
                for_s: 1.0,
                loss: 0.3,
            })
            .with(FaultSpec::RateThrottle {
                link: 1,
                at_s: 5.0,
                for_s: 1.0,
                rate_bps: 1e6,
            });
        let events = plan.compile();
        assert_eq!(events.len(), 4);
        match &events[1].1 {
            NetFault::LinkOverride { link: 1, ov } => assert!(ov.is_empty(), "clear at burst end"),
            other => panic!("{other:?}"),
        }
        match &events[2].1 {
            NetFault::LinkOverride { link: 1, ov } => assert_eq!(ov.rate_bps, Some(1e6)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn crash_without_restart_stays_down() {
        let plan = FaultPlan::new(1).with(FaultSpec::NodeCrash {
            node: 3,
            at_s: 1.0,
            restart_after_s: None,
        });
        assert_eq!(
            plan.compile(),
            vec![(SimTime::from_millis(1000), NetFault::NodeDown { node: 3 })]
        );
    }

    #[test]
    fn partition_heals_when_asked() {
        let plan = FaultPlan::new(1).with(FaultSpec::Partition {
            nodes: vec![1, 2],
            at_s: 0.5,
            heal_after_s: Some(1.0),
        });
        let events = plan.compile();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[1],
            (
                SimTime::from_millis(1500),
                NetFault::Partition {
                    nodes: vec![1, 2],
                    up: true
                }
            )
        );
    }

    #[test]
    fn negative_times_clamp_to_zero() {
        let plan = FaultPlan::new(1).with(FaultSpec::At {
            at_s: -5.0,
            fault: NetFault::NodeDown { node: 0 },
        });
        assert_eq!(plan.compile()[0].0, SimTime::ZERO);
    }

    #[test]
    fn plan_serde_round_trips() {
        let plan = FaultPlan::new(99)
            .with(FaultSpec::LinkFlap {
                link: 0,
                at_s: 1.0,
                down_s: 2.0,
                times: 3,
                gap_s: 4.0,
            })
            .with(FaultSpec::LatencyStorm {
                link: 1,
                at_s: 2.0,
                for_s: 0.5,
                extra_ms: 50.0,
                jitter_ms: 10.0,
            })
            .with(FaultSpec::NodeCrash {
                node: 7,
                at_s: 3.0,
                restart_after_s: Some(2.0),
            })
            .with(FaultSpec::Partition {
                nodes: vec![4, 5],
                at_s: 6.0,
                heal_after_s: None,
            })
            .with(FaultSpec::At {
                at_s: 8.0,
                fault: NetFault::NodeResume { node: 7 },
            });
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.compile(), plan.compile());
    }

    /// The exact JSON schema documented in EXPERIMENTS.md ("Fault
    /// injection") must keep parsing — it is the crate's wire format.
    #[test]
    fn documented_json_schema_parses() {
        let json = r#"{
          "seed": 7,
          "faults": [
            { "LinkFlap":     { "link": 0, "at_s": 5.0, "down_s": 4.0, "times": 1, "gap_s": 0.0 } },
            { "LossBurst":    { "link": 0, "at_s": 5.0, "for_s": 2.0, "loss": 0.3 } },
            { "LatencyStorm": { "link": 0, "at_s": 5.0, "for_s": 2.0, "extra_ms": 50.0, "jitter_ms": 10.0 } },
            { "RateThrottle": { "link": 0, "at_s": 5.0, "for_s": 2.0, "rate_bps": 1e6 } },
            { "NodeCrash":    { "node": 3, "at_s": 5.0, "restart_after_s": 4.0 } },
            { "NodePause":    { "node": 3, "at_s": 5.0, "for_s": 1.0 } },
            { "Partition":    { "nodes": [1, 2], "at_s": 5.0, "heal_after_s": 2.0 } },
            { "At":           { "at_s": 5.0, "fault": { "NodeDown": { "node": 3 } } } }
          ]
        }"#;
        let plan: FaultPlan = serde_json::from_str(json).expect("documented schema parses");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.faults.len(), 8);
        assert_eq!(plan.compile().len(), 15);
    }

    /// Satellite of ISSUE 4: `compile` must be a pure function of the *set*
    /// of specs. Every permutation of a spec list dense with same-instant
    /// collisions (several faults at t=5.0, including zero-duration ones)
    /// compiles to the identical event list.
    #[test]
    fn compile_is_insertion_order_independent() {
        let specs = vec![
            FaultSpec::LinkFlap {
                link: 0,
                at_s: 5.0,
                down_s: 0.0,
                times: 1,
                gap_s: 0.0,
            },
            FaultSpec::NodeCrash {
                node: 3,
                at_s: 5.0,
                restart_after_s: Some(0.0),
            },
            FaultSpec::LossBurst {
                link: 1,
                at_s: 5.0,
                for_s: 0.0,
                loss: 0.3,
            },
            FaultSpec::Partition {
                nodes: vec![1, 2],
                at_s: 5.0,
                heal_after_s: Some(0.0),
            },
        ];
        let reference = FaultPlan {
            seed: 1,
            faults: specs.clone(),
        }
        .compile();
        // Heap's algorithm: all 24 orderings of the four specs.
        fn permute(k: usize, specs: &mut Vec<FaultSpec>, check: &mut impl FnMut(&[FaultSpec])) {
            if k <= 1 {
                check(specs);
                return;
            }
            for i in 0..k {
                permute(k - 1, specs, check);
                if k.is_multiple_of(2) {
                    specs.swap(i, k - 1);
                } else {
                    specs.swap(0, k - 1);
                }
            }
        }
        let mut specs = specs;
        let n = specs.len();
        let mut permutations = 0;
        permute(n, &mut specs, &mut |order| {
            permutations += 1;
            let plan = FaultPlan {
                seed: 1,
                faults: order.to_vec(),
            };
            assert_eq!(plan.compile(), reference, "order {order:?}");
        });
        assert_eq!(permutations, 24);
        // And the documented semantic: every break precedes every repair at
        // the shared instant.
        let first_repair = reference
            .iter()
            .position(|(_, f)| {
                matches!(
                    f,
                    NetFault::LinkUp { up: true, .. }
                        | NetFault::NodeUp { .. }
                        | NetFault::Partition { up: true, .. }
                ) || matches!(f, NetFault::LinkOverride { ov, .. } if ov.is_empty())
            })
            .unwrap();
        assert!(reference[..first_repair].iter().all(|(_, f)| !matches!(
            f,
            NetFault::LinkUp { up: true, .. }
                | NetFault::NodeUp { .. }
                | NetFault::Partition { up: true, .. }
        )));
    }

    #[test]
    fn shrink_candidates_are_strictly_simpler_and_terminate() {
        let plan = FaultPlan::new(5)
            .with(FaultSpec::LinkFlap {
                link: 0,
                at_s: 1.0,
                down_s: 2.0,
                times: 4,
                gap_s: 3.0,
            })
            .with(FaultSpec::LossBurst {
                link: 1,
                at_s: 2.0,
                for_s: 1.0,
                loss: 0.4,
            })
            .with(FaultSpec::NodeCrash {
                node: 3,
                at_s: 3.0,
                restart_after_s: Some(2.0),
            });
        let candidates = plan.shrink_candidates();
        // 3 single-spec removals come first.
        assert_eq!(candidates[0].faults.len(), 2);
        assert!(candidates.iter().take(3).all(|p| p.faults.len() == 2));
        // Parameter shrinks keep the spec count.
        assert!(candidates.iter().skip(3).all(|p| p.faults.len() == 3));
        assert!(!candidates.is_empty());
        // Greedy always-take-first shrinking reaches a fixpoint: the empty
        // plan (removals shed one spec per round, and parameter floors stop
        // the halvings).
        let mut current = plan;
        let mut rounds = 0;
        while let Some(next) = current.shrink_candidates().into_iter().next() {
            current = next;
            rounds += 1;
            assert!(rounds < 1000, "shrinking did not terminate");
        }
        assert!(current.faults.is_empty());
    }

    #[test]
    fn minimal_specs_have_no_shrinks() {
        assert!(FaultSpec::At {
            at_s: 1.0,
            fault: NetFault::NodeDown { node: 0 }
        }
        .shrink()
        .is_empty());
        assert!(FaultSpec::NodeCrash {
            node: 1,
            at_s: 1.0,
            restart_after_s: None
        }
        .shrink()
        .is_empty());
        assert!(FaultSpec::LinkFlap {
            link: 0,
            at_s: 1.0,
            down_s: 0.01,
            times: 1,
            gap_s: 0.0
        }
        .shrink()
        .is_empty());
    }

    #[test]
    fn chaos_mix_is_deterministic_in_seed() {
        let targets = ChaosTargets {
            links: vec![0, 1, 2],
            crashable: vec![5, 6],
        };
        let a = FaultPlan::chaos_mix(42, &targets, 20, 1.0, 10.0, 3.0);
        let b = FaultPlan::chaos_mix(42, &targets, 20, 1.0, 10.0, 3.0);
        let c = FaultPlan::chaos_mix(43, &targets, 20, 1.0, 10.0, 3.0);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, c, "different seed, different plan");
        assert_eq!(a.faults.len(), 20);
        // Every fault lands inside the requested window.
        for (t, _) in a.compile() {
            assert!(t >= SimTime::from_secs(1));
            // Repair events extend at most max_down_s past the window.
            assert!(t <= SimTime::from_secs(13));
        }
    }
}
