//! Mobility as a fault-plan dimension: seeded, serde-able movement
//! schedules that compile next to a [`crate::FaultPlan`].
//!
//! The dLTE argument (§4.2) stands or falls on what happens when UEs
//! *move* while the network is failing — the "handover storm". Like
//! [`crate::FaultPlan`], a [`MovePlan`] is plain data: all randomness
//! happens at generation time ([`MovePlan::commuter_mix`]), `compile`
//! yields a sorted timeline, and [`MovePlan::shrink_candidates`] gives the
//! fuzzer's repro shrinker strictly-simpler variants, so a minimized
//! moving-UE chaos case replays bit-for-bit from its JSON.
//!
//! The plan speaks in *AP indices* (`0..n_aps`); the topology layer maps
//! them onto each UE's cell list when it arms the schedule.

use dlte_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// One scheduled cell change: UE number `ue` moves to AP number `ap` at
/// `at_s` seconds of simulated time.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MoveSpec {
    pub ue: usize,
    pub at_s: f64,
    pub ap: usize,
}

/// A seeded population-movement schedule. The `seed` is provenance (plans
/// from [`MovePlan::commuter_mix`] record the seed that generated them);
/// replaying a plan uses only its `moves` list.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MovePlan {
    #[serde(default)]
    pub seed: u64,
    #[serde(default)]
    pub moves: Vec<MoveSpec>,
}

impl MovePlan {
    pub fn new(seed: u64) -> MovePlan {
        MovePlan {
            seed,
            moves: Vec::new(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// Append a move (builder style).
    pub fn with(mut self, spec: MoveSpec) -> MovePlan {
        self.moves.push(spec);
        self
    }

    /// The timeline sorted by time, then UE, then target AP — a pure
    /// function of the *set* of moves, like `FaultPlan::compile`.
    pub fn compile(&self) -> Vec<(SimTime, MoveSpec)> {
        let mut out: Vec<(SimTime, MoveSpec)> = self
            .moves
            .iter()
            .map(|&m| {
                (
                    SimTime::ZERO + SimDuration::from_secs_f64(m.at_s.max(0.0)),
                    m,
                )
            })
            .collect();
        out.sort_by_key(|&(t, m)| (t, m.ue, m.ap));
        out
    }

    /// One UE's schedule, sorted by time, as `(time, target AP)` pairs.
    pub fn schedule_for(&self, ue: usize) -> Vec<(SimTime, usize)> {
        self.compile()
            .into_iter()
            .filter(|&(_, m)| m.ue == ue)
            .map(|(t, m)| (t, m.ap))
            .collect()
    }

    /// Latest scheduled move (used to size run horizons).
    pub fn last_move_time(&self) -> SimTime {
        self.compile()
            .last()
            .map(|&(t, _)| t)
            .unwrap_or(SimTime::ZERO)
    }

    /// Strictly simpler plans, in a deterministic order: first the plan
    /// with each single move removed, then the plan with each UE's whole
    /// schedule removed (only when that sheds more than one move — the
    /// single-move case is already covered). Every candidate has strictly
    /// fewer moves, so greedy shrinking terminates.
    pub fn shrink_candidates(&self) -> Vec<MovePlan> {
        let mut out = Vec::new();
        for i in 0..self.moves.len() {
            let mut p = self.clone();
            p.moves.remove(i);
            out.push(p);
        }
        let mut ues: Vec<usize> = self.moves.iter().map(|m| m.ue).collect();
        ues.sort_unstable();
        ues.dedup();
        for ue in ues {
            if self.moves.iter().filter(|m| m.ue == ue).count() > 1 {
                let mut p = self.clone();
                p.moves.retain(|m| m.ue != ue);
                out.push(p);
            }
        }
        out
    }

    /// Generate a commuter-rush movement mix: each of `n_ues` UEs walks a
    /// seeded waypoint tour over `n_aps` APs, dwelling `dwell_min_s..
    /// dwell_max_s` per stop, with moves confined to `[start_s, end_s)`.
    /// All randomness happens here; the returned plan is plain data.
    pub fn commuter_mix(
        seed: u64,
        n_ues: usize,
        n_aps: usize,
        dwell_min_s: f64,
        dwell_max_s: f64,
        start_s: f64,
        end_s: f64,
    ) -> MovePlan {
        let mut plan = MovePlan::new(seed);
        if n_aps < 2 {
            return plan;
        }
        let root = SimRng::new(seed).fork("move-plan");
        for ue in 0..n_ues {
            let mut rng = root.fork_idx("ue", ue as u64);
            // Each UE starts at its home AP (ue % n_aps, the topology
            // convention) and hops to a uniformly-drawn *other* AP.
            let mut here = ue % n_aps;
            let mut t = start_s + rng.uniform(0.0, dwell_max_s.max(dwell_min_s));
            while t < end_s {
                let mut next = rng.index(n_aps - 1);
                if next >= here {
                    next += 1;
                }
                plan.moves.push(MoveSpec {
                    ue,
                    at_s: t,
                    ap: next,
                });
                here = next;
                t += rng.uniform(dwell_min_s, dwell_max_s.max(dwell_min_s));
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_sorts_and_clamps() {
        let plan = MovePlan::new(1)
            .with(MoveSpec {
                ue: 1,
                at_s: 3.0,
                ap: 0,
            })
            .with(MoveSpec {
                ue: 0,
                at_s: -1.0,
                ap: 1,
            })
            .with(MoveSpec {
                ue: 0,
                at_s: 3.0,
                ap: 2,
            });
        let timeline = plan.compile();
        assert_eq!(timeline[0].0, SimTime::ZERO, "negative times clamp");
        assert_eq!(timeline[0].1.ue, 0);
        // Same instant orders by (ue, ap), not insertion.
        assert_eq!(timeline[1].1.ue, 0);
        assert_eq!(timeline[2].1.ue, 1);
        assert_eq!(plan.last_move_time(), SimTime::from_secs(3));
        assert_eq!(plan.schedule_for(1), vec![(SimTime::from_secs(3), 0)]);
    }

    #[test]
    fn commuter_mix_is_deterministic_and_in_window() {
        let a = MovePlan::commuter_mix(7, 4, 3, 0.5, 1.5, 2.0, 8.0);
        let b = MovePlan::commuter_mix(7, 4, 3, 0.5, 1.5, 2.0, 8.0);
        let c = MovePlan::commuter_mix(8, 4, 3, 0.5, 1.5, 2.0, 8.0);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, c, "different seed, different plan");
        assert!(!a.is_empty());
        for m in &a.moves {
            assert!((2.0..8.0).contains(&m.at_s), "move at {}", m.at_s);
            assert!(m.ap < 3);
        }
        // Consecutive moves of one UE never target the AP it sits on.
        for ue in 0..4 {
            let mut here = ue % 3;
            for (_, ap) in a.schedule_for(ue) {
                assert_ne!(ap, here, "self-move for ue {ue}");
                here = ap;
            }
        }
    }

    #[test]
    fn one_ap_generates_no_moves() {
        assert!(MovePlan::commuter_mix(1, 3, 1, 0.5, 1.0, 2.0, 8.0).is_empty());
    }

    #[test]
    fn shrink_candidates_are_strictly_simpler_and_terminate() {
        let plan = MovePlan::commuter_mix(3, 3, 3, 0.4, 0.8, 2.0, 6.0);
        assert!(plan.moves.len() > 3);
        let candidates = plan.shrink_candidates();
        assert!(!candidates.is_empty());
        for c in &candidates {
            assert!(c.moves.len() < plan.moves.len(), "strictly smaller");
        }
        // Greedy always-take-first shrinking reaches the empty plan.
        let mut current = plan;
        let mut rounds = 0;
        while let Some(next) = current.shrink_candidates().into_iter().next() {
            current = next;
            rounds += 1;
            assert!(rounds < 10_000, "shrinking did not terminate");
        }
        assert!(current.is_empty());
    }

    #[test]
    fn plan_serde_round_trips_and_defaults() {
        let plan = MovePlan::commuter_mix(5, 2, 3, 0.5, 1.0, 2.0, 6.0);
        let json = serde_json::to_string(&plan).unwrap();
        let back: MovePlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        // Old documents without the field parse as the empty plan.
        let empty: MovePlan = serde_json::from_str("{}").unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty, MovePlan::default());
    }
}
