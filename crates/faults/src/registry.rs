//! Fault plans for the spectrum registry (§4.3): zone churn, inter-zone
//! partitions, replica desync.
//!
//! Same layering as the network plans in the crate root: `dlte-registry`
//! owns the *mechanisms* (crash/restart with state loss or snapshot
//! recovery, reachability flags, `sync_from` scheduling); this module owns
//! the *policy* — when and what to break. A [`RegistryFaultPlan`] is plain
//! serde data; all randomness happens at generation time
//! ([`RegistryFaultPlan::chaos_mix`]), so a plan replays identically
//! however it is run.

use dlte_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// A composable registry fault scenario. `seed` is provenance, as in
/// [`crate::FaultPlan`]; replay uses only the `faults` list.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RegistryFaultPlan {
    #[serde(default)]
    pub seed: u64,
    #[serde(default)]
    pub faults: Vec<RegistryFaultSpec>,
}

/// One scheduled registry fault. Times are seconds of simulated time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum RegistryFaultSpec {
    /// Crash a zone process at `at_s`. `restart_after_s: None` leaves it
    /// down for good. `state_loss: true` restarts from nothing (the zone
    /// re-enters service quarantined until every grant it could have issued
    /// has lapsed); `false` restarts from its last checkpoint snapshot.
    ZoneCrash {
        zone: usize,
        at_s: f64,
        restart_after_s: Option<f64>,
        state_loss: bool,
    },
    /// Cut a zone off from federated queries (the zone itself stays up and
    /// keeps serving what it can locally), optionally healing later.
    ZonePartition {
        zone: usize,
        at_s: f64,
        heal_after_s: Option<f64>,
    },
    /// Suppress a log replica's periodic `sync_from` during the window, so
    /// it serves a stale grant table until the window ends.
    ReplicaDesync {
        replica: usize,
        at_s: f64,
        for_s: f64,
    },
}

/// A raw timed registry fault, the unit a chaos driver consumes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegistryFault {
    ZoneDown { zone: usize },
    ZoneRestart { zone: usize, state_loss: bool },
    ZoneCut { zone: usize },
    ZoneHeal { zone: usize },
    DesyncStart { replica: usize },
    DesyncEnd { replica: usize },
}

/// Total order on same-instant faults: breaks (down, cut, desync-start)
/// before repairs (restart, heal, desync-end), then by entity — so
/// [`RegistryFaultPlan::compile`] is a pure function of the *set* of specs
/// and zero-duration windows still take effect.
fn same_instant_key(f: &RegistryFault) -> (u8, usize) {
    match *f {
        RegistryFault::ZoneDown { zone } => (0, zone),
        RegistryFault::ZoneCut { zone } => (1, zone),
        RegistryFault::DesyncStart { replica } => (2, replica),
        RegistryFault::ZoneRestart { zone, state_loss } => (3, zone * 2 + state_loss as usize),
        RegistryFault::ZoneHeal { zone } => (4, zone),
        RegistryFault::DesyncEnd { replica } => (5, replica),
    }
}

fn at(out: &mut Vec<(SimTime, RegistryFault)>, t_s: f64, fault: RegistryFault) {
    out.push((
        SimTime::ZERO + SimDuration::from_secs_f64(t_s.max(0.0)),
        fault,
    ));
}

impl RegistryFaultSpec {
    /// Expand this spec into raw timed faults.
    pub fn compile_into(&self, out: &mut Vec<(SimTime, RegistryFault)>) {
        match *self {
            RegistryFaultSpec::ZoneCrash {
                zone,
                at_s,
                restart_after_s,
                state_loss,
            } => {
                at(out, at_s, RegistryFault::ZoneDown { zone });
                if let Some(after) = restart_after_s {
                    at(
                        out,
                        at_s + after,
                        RegistryFault::ZoneRestart { zone, state_loss },
                    );
                }
            }
            RegistryFaultSpec::ZonePartition {
                zone,
                at_s,
                heal_after_s,
            } => {
                at(out, at_s, RegistryFault::ZoneCut { zone });
                if let Some(after) = heal_after_s {
                    at(out, at_s + after, RegistryFault::ZoneHeal { zone });
                }
            }
            RegistryFaultSpec::ReplicaDesync {
                replica,
                at_s,
                for_s,
            } => {
                at(out, at_s, RegistryFault::DesyncStart { replica });
                at(out, at_s + for_s, RegistryFault::DesyncEnd { replica });
            }
        }
    }

    /// Strictly simpler variants, deterministic order, floors guarantee
    /// termination — same contract as [`crate::FaultSpec::shrink`]. A
    /// state-losing crash also shrinks to the gentler snapshot recovery.
    pub fn shrink(&self) -> Vec<RegistryFaultSpec> {
        const FLOOR_S: f64 = 0.05;
        let mut out = Vec::new();
        match *self {
            RegistryFaultSpec::ZoneCrash {
                zone,
                at_s,
                restart_after_s,
                state_loss,
            } => {
                if state_loss {
                    out.push(RegistryFaultSpec::ZoneCrash {
                        zone,
                        at_s,
                        restart_after_s,
                        state_loss: false,
                    });
                }
                if let Some(after) = restart_after_s {
                    if after > FLOOR_S {
                        out.push(RegistryFaultSpec::ZoneCrash {
                            zone,
                            at_s,
                            restart_after_s: Some(after / 2.0),
                            state_loss,
                        });
                    }
                }
            }
            RegistryFaultSpec::ZonePartition {
                zone,
                at_s,
                heal_after_s,
            } => {
                if let Some(after) = heal_after_s {
                    if after > FLOOR_S {
                        out.push(RegistryFaultSpec::ZonePartition {
                            zone,
                            at_s,
                            heal_after_s: Some(after / 2.0),
                        });
                    }
                }
            }
            RegistryFaultSpec::ReplicaDesync {
                replica,
                at_s,
                for_s,
            } => {
                if for_s > FLOOR_S {
                    out.push(RegistryFaultSpec::ReplicaDesync {
                        replica,
                        at_s,
                        for_s: for_s / 2.0,
                    });
                }
            }
        }
        out
    }
}

impl RegistryFaultPlan {
    pub fn new(seed: u64) -> RegistryFaultPlan {
        RegistryFaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Append a spec (builder style).
    pub fn with(mut self, spec: RegistryFaultSpec) -> RegistryFaultPlan {
        self.faults.push(spec);
        self
    }

    /// Expand to the raw fault timeline, sorted by time then
    /// break-before-repair ([`same_instant_key`]) — insertion order never
    /// matters.
    pub fn compile(&self) -> Vec<(SimTime, RegistryFault)> {
        let mut out = Vec::new();
        for spec in &self.faults {
            spec.compile_into(&mut out);
        }
        out.sort_by_key(|&(t, ref f)| (t, same_instant_key(f)));
        out
    }

    /// Latest time at which this plan changes anything.
    pub fn last_fault_time(&self) -> SimTime {
        self.compile()
            .last()
            .map(|&(t, _)| t)
            .unwrap_or(SimTime::ZERO)
    }

    /// Candidate plans strictly simpler than this one: each with one spec
    /// removed, then each with one spec replaced by a shrink variant. Same
    /// greedy-terminates argument as [`crate::FaultPlan::shrink_candidates`].
    pub fn shrink_candidates(&self) -> Vec<RegistryFaultPlan> {
        let mut out = Vec::new();
        for i in 0..self.faults.len() {
            let mut p = self.clone();
            p.faults.remove(i);
            out.push(p);
        }
        for i in 0..self.faults.len() {
            for s in self.faults[i].shrink() {
                let mut p = self.clone();
                p.faults[i] = s;
                out.push(p);
            }
        }
        out
    }

    /// Generate a seeded random registry fault mix over `n_zones` zones and
    /// `n_replicas` log replicas: `n` faults starting in `[start_s, end_s)`,
    /// each repaired within `max_down_s` (a small fraction never restart —
    /// the permanent-loss case the lease-expiry oracle exists for). All
    /// randomness happens here; the returned plan is plain data.
    pub fn chaos_mix(
        seed: u64,
        n_zones: usize,
        n_replicas: usize,
        n: usize,
        start_s: f64,
        end_s: f64,
        max_down_s: f64,
    ) -> RegistryFaultPlan {
        let mut rng = SimRng::new(seed).fork("registry-chaos");
        let mut plan = RegistryFaultPlan::new(seed);
        for _ in 0..n {
            let at_s = rng.uniform(start_s, end_s);
            let for_s = rng.uniform(0.1 * max_down_s, max_down_s);
            let desync = n_replicas > 0 && rng.chance(0.25);
            let spec = if desync {
                RegistryFaultSpec::ReplicaDesync {
                    replica: rng.index(n_replicas),
                    at_s,
                    for_s,
                }
            } else if rng.chance(0.5) {
                RegistryFaultSpec::ZoneCrash {
                    zone: rng.index(n_zones.max(1)),
                    at_s,
                    // 1-in-10 crashes are permanent.
                    restart_after_s: (!rng.chance(0.1)).then_some(for_s),
                    state_loss: rng.chance(0.5),
                }
            } else {
                RegistryFaultSpec::ZonePartition {
                    zone: rng.index(n_zones.max(1)),
                    at_s,
                    heal_after_s: (!rng.chance(0.1)).then_some(for_s),
                }
            };
            plan.faults.push(spec);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_compiles_to_down_then_restart() {
        let plan = RegistryFaultPlan::new(1).with(RegistryFaultSpec::ZoneCrash {
            zone: 2,
            at_s: 1.0,
            restart_after_s: Some(3.0),
            state_loss: true,
        });
        assert_eq!(
            plan.compile(),
            vec![
                (SimTime::from_secs(1), RegistryFault::ZoneDown { zone: 2 }),
                (
                    SimTime::from_secs(4),
                    RegistryFault::ZoneRestart {
                        zone: 2,
                        state_loss: true
                    }
                ),
            ]
        );
        assert_eq!(plan.last_fault_time(), SimTime::from_secs(4));
    }

    #[test]
    fn permanent_crash_never_restarts() {
        let plan = RegistryFaultPlan::new(1).with(RegistryFaultSpec::ZoneCrash {
            zone: 0,
            at_s: 2.0,
            restart_after_s: None,
            state_loss: true,
        });
        assert_eq!(plan.compile().len(), 1);
    }

    #[test]
    fn same_instant_breaks_sort_before_repairs() {
        // A zero-length partition and a crash/restart landing at the same
        // instant: both cuts precede both repairs, whatever the insertion
        // order.
        let specs = vec![
            RegistryFaultSpec::ZonePartition {
                zone: 1,
                at_s: 5.0,
                heal_after_s: Some(0.0),
            },
            RegistryFaultSpec::ZoneCrash {
                zone: 0,
                at_s: 5.0,
                restart_after_s: Some(0.0),
                state_loss: false,
            },
            RegistryFaultSpec::ReplicaDesync {
                replica: 0,
                at_s: 5.0,
                for_s: 0.0,
            },
        ];
        let reference = RegistryFaultPlan {
            seed: 1,
            faults: specs.clone(),
        }
        .compile();
        assert_eq!(reference.len(), 6);
        assert!(reference[..3].iter().all(|(_, f)| matches!(
            f,
            RegistryFault::ZoneDown { .. }
                | RegistryFault::ZoneCut { .. }
                | RegistryFault::DesyncStart { .. }
        )));
        let mut reversed = specs;
        reversed.reverse();
        assert_eq!(
            RegistryFaultPlan {
                seed: 1,
                faults: reversed
            }
            .compile(),
            reference
        );
    }

    #[test]
    fn negative_times_clamp_to_zero() {
        let plan = RegistryFaultPlan::new(1).with(RegistryFaultSpec::ZonePartition {
            zone: 0,
            at_s: -2.0,
            heal_after_s: Some(1.0),
        });
        assert_eq!(plan.compile()[0].0, SimTime::ZERO);
    }

    #[test]
    fn plan_serde_round_trips() {
        let plan = RegistryFaultPlan::new(9)
            .with(RegistryFaultSpec::ZoneCrash {
                zone: 1,
                at_s: 1.0,
                restart_after_s: Some(2.0),
                state_loss: true,
            })
            .with(RegistryFaultSpec::ZonePartition {
                zone: 0,
                at_s: 3.0,
                heal_after_s: None,
            })
            .with(RegistryFaultSpec::ReplicaDesync {
                replica: 2,
                at_s: 4.0,
                for_s: 1.5,
            });
        let json = serde_json::to_string(&plan).unwrap();
        let back: RegistryFaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.compile(), plan.compile());
    }

    #[test]
    fn shrinking_is_strictly_simpler_and_terminates() {
        let plan = RegistryFaultPlan::new(5)
            .with(RegistryFaultSpec::ZoneCrash {
                zone: 0,
                at_s: 1.0,
                restart_after_s: Some(4.0),
                state_loss: true,
            })
            .with(RegistryFaultSpec::ReplicaDesync {
                replica: 1,
                at_s: 2.0,
                for_s: 3.0,
            });
        let candidates = plan.shrink_candidates();
        assert!(candidates.iter().take(2).all(|p| p.faults.len() == 1));
        assert!(candidates.iter().skip(2).all(|p| p.faults.len() == 2));
        // A state-losing crash offers the gentler snapshot recovery first.
        assert!(matches!(
            candidates[2].faults[0],
            RegistryFaultSpec::ZoneCrash {
                state_loss: false,
                ..
            }
        ));
        let mut current = plan;
        let mut rounds = 0;
        while let Some(next) = current.shrink_candidates().into_iter().next() {
            current = next;
            rounds += 1;
            assert!(rounds < 1000, "shrinking did not terminate");
        }
        assert!(current.faults.is_empty());
    }

    #[test]
    fn minimal_specs_have_no_shrinks() {
        assert!(RegistryFaultSpec::ZoneCrash {
            zone: 0,
            at_s: 1.0,
            restart_after_s: None,
            state_loss: false,
        }
        .shrink()
        .is_empty());
        assert!(RegistryFaultSpec::ZonePartition {
            zone: 0,
            at_s: 1.0,
            heal_after_s: None,
        }
        .shrink()
        .is_empty());
        assert!(RegistryFaultSpec::ReplicaDesync {
            replica: 0,
            at_s: 1.0,
            for_s: 0.01,
        }
        .shrink()
        .is_empty());
    }

    #[test]
    fn chaos_mix_is_deterministic_in_seed() {
        let a = RegistryFaultPlan::chaos_mix(42, 4, 3, 20, 1.0, 10.0, 3.0);
        let b = RegistryFaultPlan::chaos_mix(42, 4, 3, 20, 1.0, 10.0, 3.0);
        let c = RegistryFaultPlan::chaos_mix(43, 4, 3, 20, 1.0, 10.0, 3.0);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, c, "different seed, different plan");
        assert_eq!(a.faults.len(), 20);
        for (t, _) in a.compile() {
            assert!(t >= SimTime::from_secs(1));
            assert!(t <= SimTime::from_secs(13));
        }
        // Zone indices stay in range.
        for f in &a.faults {
            match *f {
                RegistryFaultSpec::ZoneCrash { zone, .. }
                | RegistryFaultSpec::ZonePartition { zone, .. } => assert!(zone < 4),
                RegistryFaultSpec::ReplicaDesync { replica, .. } => assert!(replica < 3),
            }
        }
    }

    #[test]
    fn chaos_mix_without_replicas_never_desyncs() {
        let plan = RegistryFaultPlan::chaos_mix(7, 3, 0, 30, 0.0, 10.0, 2.0);
        assert!(plan
            .faults
            .iter()
            .all(|f| !matches!(f, RegistryFaultSpec::ReplicaDesync { .. })));
    }
}
