//! Property-based tests for fault plans: compilation is sorted and
//! deterministic, serde round-trips arbitrary plans, and chaos generation
//! is a pure function of its seed.

use dlte_faults::{ChaosTargets, FaultPlan, FaultSpec};
use dlte_net::NetFault;
use proptest::prelude::*;

fn arb_opt_s() -> impl Strategy<Value = Option<f64>> {
    (any::<bool>(), 0.0f64..5.0).prop_map(|(some, v)| some.then_some(v))
}

fn arb_spec() -> impl Strategy<Value = FaultSpec> {
    prop_oneof![
        (0usize..8, 0.0f64..20.0, 0.0f64..5.0, 1u32..4, 0.0f64..10.0).prop_map(
            |(link, at_s, down_s, times, gap_s)| FaultSpec::LinkFlap {
                link,
                at_s,
                down_s,
                times,
                gap_s,
            }
        ),
        (0usize..8, 0.0f64..20.0, 0.0f64..5.0, 0.0f64..1.0).prop_map(
            |(link, at_s, for_s, loss)| FaultSpec::LossBurst {
                link,
                at_s,
                for_s,
                loss,
            }
        ),
        (
            0usize..8,
            0.0f64..20.0,
            0.0f64..5.0,
            0.0f64..500.0,
            0.0f64..100.0
        )
            .prop_map(
                |(link, at_s, for_s, extra_ms, jitter_ms)| FaultSpec::LatencyStorm {
                    link,
                    at_s,
                    for_s,
                    extra_ms,
                    jitter_ms,
                }
            ),
        (0usize..8, 0.0f64..20.0, 0.0f64..5.0, 1e4f64..1e9).prop_map(
            |(link, at_s, for_s, rate_bps)| FaultSpec::RateThrottle {
                link,
                at_s,
                for_s,
                rate_bps,
            }
        ),
        (0usize..8, 0.0f64..20.0, arb_opt_s()).prop_map(|(node, at_s, restart_after_s)| {
            FaultSpec::NodeCrash {
                node,
                at_s,
                restart_after_s,
            }
        }),
        (0usize..8, 0.0f64..20.0, 0.0f64..5.0)
            .prop_map(|(node, at_s, for_s)| { FaultSpec::NodePause { node, at_s, for_s } }),
        (
            prop::collection::vec(0usize..8, 1..4),
            0.0f64..20.0,
            arb_opt_s()
        )
            .prop_map(|(nodes, at_s, heal_after_s)| FaultSpec::Partition {
                nodes,
                at_s,
                heal_after_s,
            }),
        (0usize..8, 0.0f64..20.0).prop_map(|(node, at_s)| FaultSpec::At {
            at_s,
            fault: NetFault::NodeResume { node },
        }),
    ]
}

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (any::<u64>(), prop::collection::vec(arb_spec(), 0..12))
        .prop_map(|(seed, faults)| FaultPlan { seed, faults })
}

proptest! {
    /// compile() always yields a time-sorted, deterministic timeline.
    #[test]
    fn compile_is_sorted_and_deterministic(plan in arb_plan()) {
        let a = plan.compile();
        let b = plan.compile();
        prop_assert_eq!(&a, &b);
        for w in a.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "unsorted: {:?}", w);
        }
        if let Some(&(last, _)) = a.last() {
            prop_assert_eq!(plan.last_fault_time(), last);
        }
    }

    /// Serde round-trips any plan to an identical plan (and timeline).
    #[test]
    fn serde_round_trips(plan in arb_plan()) {
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &plan);
        prop_assert_eq!(back.compile(), plan.compile());
    }

    /// Chaos generation is a pure function of (seed, params).
    #[test]
    fn chaos_mix_pure_in_seed(seed in any::<u64>(), n in 1usize..30) {
        let targets = ChaosTargets {
            links: vec![0, 1, 2, 3],
            crashable: vec![9],
        };
        let a = FaultPlan::chaos_mix(seed, &targets, n, 0.0, 10.0, 2.0);
        let b = FaultPlan::chaos_mix(seed, &targets, n, 0.0, 10.0, 2.0);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.faults.len(), n);
    }
}

// ---------------------------------------------------------------------------
// Oracle-backed properties: arbitrary fault plans, run on real topologies.
//
// Shapes mirror the `chaos_mix` envelope (every fault is repaired; loss,
// latency, and rate stay inside the ranges the fuzzer sweeps) but the
// *combinations* are arbitrary — proptest explores plans `chaos_mix` would
// never draw. Link/node indices are abstract here and mapped onto the
// topology's real fault-injection handles per architecture, so the same
// shape vector exercises both an E14-style centralized LTE net (S-GW/P-GW
// crashes allowed) and an E13-style dLTE mesh (link faults only).
// ---------------------------------------------------------------------------

use dlte::fuzz::{chaos_targets, run_case, Arch, FuzzCase};

#[derive(Clone, Debug)]
enum ChaosShape {
    Flap {
        i: usize,
        at: f64,
        down: f64,
    },
    Loss {
        i: usize,
        at: f64,
        for_s: f64,
        loss: f64,
    },
    Storm {
        i: usize,
        at: f64,
        for_s: f64,
        extra_ms: f64,
        jitter_ms: f64,
    },
    Throttle {
        i: usize,
        at: f64,
        for_s: f64,
        rate_bps: f64,
    },
    Crash {
        i: usize,
        at: f64,
        restart_s: f64,
    },
    Pause {
        i: usize,
        at: f64,
        for_s: f64,
    },
}

fn arb_chaos_shape() -> impl Strategy<Value = ChaosShape> {
    let at = 2.0f64..8.0;
    let dur = 0.1f64..2.0;
    prop_oneof![
        (0usize..8, at.clone(), dur.clone()).prop_map(|(i, at, down)| ChaosShape::Flap {
            i,
            at,
            down
        }),
        (0usize..8, at.clone(), dur.clone(), 0.05f64..0.5)
            .prop_map(|(i, at, for_s, loss)| ChaosShape::Loss { i, at, for_s, loss }),
        (
            0usize..8,
            at.clone(),
            dur.clone(),
            10.0f64..200.0,
            0.0f64..50.0
        )
            .prop_map(|(i, at, for_s, extra_ms, jitter_ms)| ChaosShape::Storm {
                i,
                at,
                for_s,
                extra_ms,
                jitter_ms
            }),
        (0usize..8, at.clone(), dur.clone(), 1e5f64..5e6).prop_map(|(i, at, for_s, rate_bps)| {
            ChaosShape::Throttle {
                i,
                at,
                for_s,
                rate_bps,
            }
        }),
        (0usize..8, at.clone(), dur.clone()).prop_map(|(i, at, restart_s)| ChaosShape::Crash {
            i,
            at,
            restart_s
        }),
        (0usize..8, at, dur).prop_map(|(i, at, for_s)| ChaosShape::Pause { i, at, for_s }),
    ]
}

/// Map abstract shapes onto a topology's real targets. Node faults fall
/// back to link faults when the architecture has no crashable node (dLTE:
/// the local core shares fate with its AP).
fn realize(arch: Arch, seed: u64, n_cells: usize, ues: usize, shapes: &[ChaosShape]) -> FuzzCase {
    let targets = chaos_targets(arch, seed, n_cells, ues);
    let link = |i: usize| targets.links[i % targets.links.len()];
    let mut plan = FaultPlan::new(seed);
    for s in shapes {
        let spec = match *s {
            ChaosShape::Flap { i, at, down } => FaultSpec::LinkFlap {
                link: link(i),
                at_s: at,
                down_s: down,
                times: 1,
                gap_s: 0.0,
            },
            ChaosShape::Loss { i, at, for_s, loss } => FaultSpec::LossBurst {
                link: link(i),
                at_s: at,
                for_s,
                loss,
            },
            ChaosShape::Storm {
                i,
                at,
                for_s,
                extra_ms,
                jitter_ms,
            } => FaultSpec::LatencyStorm {
                link: link(i),
                at_s: at,
                for_s,
                extra_ms,
                jitter_ms,
            },
            ChaosShape::Throttle {
                i,
                at,
                for_s,
                rate_bps,
            } => FaultSpec::RateThrottle {
                link: link(i),
                at_s: at,
                for_s,
                rate_bps,
            },
            ChaosShape::Crash { i, at, restart_s } if !targets.crashable.is_empty() => {
                FaultSpec::NodeCrash {
                    node: targets.crashable[i % targets.crashable.len()],
                    at_s: at,
                    restart_after_s: Some(restart_s),
                }
            }
            ChaosShape::Pause { i, at, for_s } if !targets.crashable.is_empty() => {
                FaultSpec::NodePause {
                    node: targets.crashable[i % targets.crashable.len()],
                    at_s: at,
                    for_s,
                }
            }
            ChaosShape::Crash { i, at, restart_s } => FaultSpec::LinkFlap {
                link: link(i),
                at_s: at,
                down_s: restart_s,
                times: 1,
                gap_s: 0.0,
            },
            ChaosShape::Pause { i, at, for_s } => FaultSpec::LinkFlap {
                link: link(i),
                at_s: at,
                down_s: for_s,
                times: 1,
                gap_s: 0.0,
            },
        };
        plan.faults.push(spec);
    }
    FuzzCase {
        seed,
        arch,
        n_cells,
        ues_per_cell: ues,
        plan,
        moves: dlte_faults::MovePlan::default(),
        remote_keys: false,
        x2_fetch: false,
    }
}

proptest! {
    /// E14-style centralized LTE: any repaired chaos mix — including S-GW
    /// and P-GW crash/restart — leaves every cross-layer invariant intact.
    #[test]
    fn oracles_hold_under_arbitrary_centralized_chaos(
        seed in 0u64..1_000_000,
        shapes in prop::collection::vec(arb_chaos_shape(), 1..4),
    ) {
        let case = realize(Arch::Centralized, seed, 1, 2, &shapes);
        let report = run_case(&case);
        prop_assert!(
            report.violations.is_empty(),
            "case {:?} tripped: {:#?}",
            case,
            report.violations
        );
    }

    /// E13-style dLTE mesh: any repaired backhaul chaos leaves every
    /// invariant intact (sessions live in the APs, so only links can fail).
    #[test]
    fn oracles_hold_under_arbitrary_dlte_chaos(
        seed in 0u64..1_000_000,
        shapes in prop::collection::vec(arb_chaos_shape(), 1..4),
    ) {
        let case = realize(Arch::Dlte, seed, 2, 2, &shapes);
        let report = run_case(&case);
        prop_assert!(
            report.violations.is_empty(),
            "case {:?} tripped: {:#?}",
            case,
            report.violations
        );
    }
}
