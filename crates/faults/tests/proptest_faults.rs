//! Property-based tests for fault plans: compilation is sorted and
//! deterministic, serde round-trips arbitrary plans, and chaos generation
//! is a pure function of its seed.

use dlte_faults::{ChaosTargets, FaultPlan, FaultSpec};
use dlte_net::NetFault;
use proptest::prelude::*;

fn arb_opt_s() -> impl Strategy<Value = Option<f64>> {
    (any::<bool>(), 0.0f64..5.0).prop_map(|(some, v)| some.then_some(v))
}

fn arb_spec() -> impl Strategy<Value = FaultSpec> {
    prop_oneof![
        (0usize..8, 0.0f64..20.0, 0.0f64..5.0, 1u32..4, 0.0f64..10.0).prop_map(
            |(link, at_s, down_s, times, gap_s)| FaultSpec::LinkFlap {
                link,
                at_s,
                down_s,
                times,
                gap_s,
            }
        ),
        (0usize..8, 0.0f64..20.0, 0.0f64..5.0, 0.0f64..1.0).prop_map(
            |(link, at_s, for_s, loss)| FaultSpec::LossBurst {
                link,
                at_s,
                for_s,
                loss,
            }
        ),
        (
            0usize..8,
            0.0f64..20.0,
            0.0f64..5.0,
            0.0f64..500.0,
            0.0f64..100.0
        )
            .prop_map(
                |(link, at_s, for_s, extra_ms, jitter_ms)| FaultSpec::LatencyStorm {
                    link,
                    at_s,
                    for_s,
                    extra_ms,
                    jitter_ms,
                }
            ),
        (0usize..8, 0.0f64..20.0, 0.0f64..5.0, 1e4f64..1e9).prop_map(
            |(link, at_s, for_s, rate_bps)| FaultSpec::RateThrottle {
                link,
                at_s,
                for_s,
                rate_bps,
            }
        ),
        (0usize..8, 0.0f64..20.0, arb_opt_s()).prop_map(|(node, at_s, restart_after_s)| {
            FaultSpec::NodeCrash {
                node,
                at_s,
                restart_after_s,
            }
        }),
        (0usize..8, 0.0f64..20.0, 0.0f64..5.0)
            .prop_map(|(node, at_s, for_s)| { FaultSpec::NodePause { node, at_s, for_s } }),
        (
            prop::collection::vec(0usize..8, 1..4),
            0.0f64..20.0,
            arb_opt_s()
        )
            .prop_map(|(nodes, at_s, heal_after_s)| FaultSpec::Partition {
                nodes,
                at_s,
                heal_after_s,
            }),
        (0usize..8, 0.0f64..20.0).prop_map(|(node, at_s)| FaultSpec::At {
            at_s,
            fault: NetFault::NodeResume { node },
        }),
    ]
}

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (any::<u64>(), prop::collection::vec(arb_spec(), 0..12))
        .prop_map(|(seed, faults)| FaultPlan { seed, faults })
}

proptest! {
    /// compile() always yields a time-sorted, deterministic timeline.
    #[test]
    fn compile_is_sorted_and_deterministic(plan in arb_plan()) {
        let a = plan.compile();
        let b = plan.compile();
        prop_assert_eq!(&a, &b);
        for w in a.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "unsorted: {:?}", w);
        }
        if let Some(&(last, _)) = a.last() {
            prop_assert_eq!(plan.last_fault_time(), last);
        }
    }

    /// Serde round-trips any plan to an identical plan (and timeline).
    #[test]
    fn serde_round_trips(plan in arb_plan()) {
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &plan);
        prop_assert_eq!(back.compile(), plan.compile());
    }

    /// Chaos generation is a pure function of (seed, params).
    #[test]
    fn chaos_mix_pure_in_seed(seed in any::<u64>(), n in 1usize..30) {
        let targets = ChaosTargets {
            links: vec![0, 1, 2, 3],
            crashable: vec![9],
        };
        let a = FaultPlan::chaos_mix(seed, &targets, n, 0.0, 10.0, 2.0);
        let b = FaultPlan::chaos_mix(seed, &targets, n, 0.0, 10.0, 2.0);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.faults.len(), n);
    }
}
