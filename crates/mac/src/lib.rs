//! # dlte-mac — medium-access models
//!
//! Two MACs, one per side of the paper's comparison:
//!
//! * [`lte`] — the scheduled LTE MAC: a PRB resource grid filled each TTI by
//!   a pluggable scheduler (round-robin / proportional-fair / max-C/I),
//!   timing advance for long rural links, HARQ at the MAC boundary, and a
//!   subframe-granularity cell simulator used by the range/fairness
//!   experiments.
//! * [`wifi`] — the contention-based 802.11 DCF MAC: slotted CSMA/CA with
//!   binary exponential backoff, carrier-sensing graphs (hence hidden
//!   terminals), and per-station goodput accounting.
//!
//! The contrast between these two modules *is* the paper's §3.2/§4.3
//! argument: coordination via a schedule (granted by licensing and X2
//! peering) versus coordination via carrier sensing.

pub mod lte;
pub mod wifi;

pub use lte::cell::{CellConfig, CellSim, UeConfig, UeReport};
pub use lte::scheduler::{SchedulerKind, TtiScheduler};
pub use lte::timing_advance::{TimingAdvance, MAX_TA_KM};
pub use wifi::dcf::{DcfConfig, DcfSim, StationConfig};
