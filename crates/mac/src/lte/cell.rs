//! A subframe-granularity single-cell simulator.
//!
//! Composes the PHY models (link budget, shadowing, CQI, HARQ) with the MAC
//! (grid, scheduler, timing advance) and runs TTI-by-TTI. This is the
//! workhorse behind experiments E1–E5 and E7: the range sweeps run one cell
//! at increasing UE distance; the fairness and cooperation experiments run
//! several cells whose time/frequency shares and interference couplings are
//! set by the X2 coordination layer above.
//!
//! The cell is direction-explicit: a downlink cell transmits eNodeB → UE; an
//! uplink cell UE → eNodeB (where SC-FDMA and timing advance matter).

use super::grid::PrbGrid;
use super::scheduler::{SchedUe, SchedulerKind, TtiScheduler};
use super::timing_advance::{PrachFormat, TimingAdvance};
use dlte_obs::Event;
use dlte_phy::fading::{LinkShadowing, ShadowingConfig};
use dlte_phy::harq::{HarqConfig, HarqProcessModel};
use dlte_phy::link::{LinkBudget, RadioConfig};
use dlte_phy::mcs::{select_cqi, transport_block_bits};
use dlte_phy::propagation::PathLossModel;
use dlte_phy::units::dbm_to_mw;
use dlte_phy::waveform::LteBandwidth;
use dlte_sim::stats::jain_index;
use dlte_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Link direction of the simulated cell.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Direction {
    Downlink,
    Uplink,
}

/// Traffic model of one UE.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum Traffic {
    /// Always has data — saturation workloads.
    FullBuffer,
    /// Constant bit rate source, bits/s.
    Cbr { bps: f64 },
}

/// Cell-wide configuration.
#[derive(Clone, Debug)]
pub struct CellConfig {
    /// Carrier frequency, MHz.
    pub freq_mhz: f64,
    /// Channel bandwidth (one of the six E-UTRA configs).
    pub bandwidth: LteBandwidth,
    pub direction: Direction,
    pub scheduler: SchedulerKind,
    pub harq: HarqConfig,
    /// eNodeB radio.
    pub enb: RadioConfig,
    pub path_loss: PathLossModel,
    pub shadowing: ShadowingConfig,
    pub prach: PrachFormat,
    /// Timing advance enabled (the E4 switch).
    pub timing_advance: bool,
    /// PRBs reserved for a peer AP by a frequency-domain fair-share
    /// agreement (0 = whole grid).
    pub masked_prb: u32,
    /// Fraction of subframes this cell may use (time-domain fair share;
    /// 1.0 = all). Implemented as a deterministic TTI pattern.
    pub tdm_share: f64,
    /// EWMA weight for the PF average-rate tracker.
    pub pf_alpha: f64,
}

impl CellConfig {
    /// The paper's prototype cell: band 5, 10 MHz, PF scheduler, rural
    /// propagation, TA on, full grid.
    pub fn rural_default() -> Self {
        CellConfig {
            freq_mhz: 881.5,
            bandwidth: LteBandwidth::by_mhz(10.0).expect("10 MHz in table"),
            direction: Direction::Downlink,
            scheduler: SchedulerKind::ProportionalFair,
            harq: HarqConfig::default(),
            enb: RadioConfig::rural_enodeb(),
            path_loss: PathLossModel::rural_macro(),
            shadowing: ShadowingConfig::disabled(),
            prach: PrachFormat::Format1,
            timing_advance: true,
            masked_prb: 0,
            tdm_share: 1.0,
            pf_alpha: 0.01,
        }
    }
}

/// Per-UE configuration.
#[derive(Clone, Debug)]
pub struct UeConfig {
    pub dist_km: f64,
    pub radio: RadioConfig,
    pub traffic: Traffic,
    /// Received co-channel interference power at this UE (downlink) or at
    /// the eNodeB from this UE's direction (uplink), dBm.
    /// `f64::NEG_INFINITY` = none.
    pub interference_dbm: f64,
}

impl UeConfig {
    pub fn at_km(dist_km: f64) -> Self {
        UeConfig {
            dist_km,
            radio: RadioConfig::lte_handset(),
            traffic: Traffic::FullBuffer,
            interference_dbm: f64::NEG_INFINITY,
        }
    }
}

/// Result for one UE after a run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct UeReport {
    pub id: usize,
    /// False if the UE could not attach (out of PRACH/TA range).
    pub served: bool,
    pub goodput_bps: f64,
    pub mean_sinr_db: f64,
    pub mean_cqi: f64,
    /// Fraction of TTIs in which this UE received an allocation.
    pub scheduled_fraction: f64,
    pub delivered_bits: u64,
}

/// Result for the whole cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellReport {
    pub ues: Vec<UeReport>,
    pub aggregate_goodput_bps: f64,
    pub jain_fairness: f64,
    pub mean_grid_utilization: f64,
    pub duration: SimDuration,
}

struct UeState {
    config: UeConfig,
    shadowing: LinkShadowing,
    ta: TimingAdvance,
    served: bool,
    backlog_bits: f64,
    delivered_bits: u64,
    avg_rate: f64, // bits per TTI, EWMA
    sinr_sum: f64,
    cqi_sum: f64,
    sinr_samples: u64,
    scheduled_ttis: u64,
}

/// The single-cell simulator.
pub struct CellSim {
    config: CellConfig,
    ues: Vec<UeState>,
    scheduler: Box<dyn TtiScheduler>,
    grid: PrbGrid,
    harq: HarqProcessModel,
    tti: u64,
    util_sum: f64,
    util_ttis: u64,
    /// Node id stamped on trace events (0 unless the caller names the cell).
    trace_node: u64,
    /// Dedicated RNG for trace-only sampled HARQ outcomes — never consumed
    /// when tracing is off, so results are identical either way.
    harq_trace_rng: SimRng,
}

impl CellSim {
    pub fn new(config: CellConfig, ues: Vec<UeConfig>, rng: &SimRng) -> Self {
        let ue_states = ues
            .into_iter()
            .enumerate()
            .map(|(i, ue)| {
                let ta = if config.timing_advance {
                    TimingAdvance::for_distance(ue.dist_km).unwrap_or(TimingAdvance { steps: None })
                } else {
                    TimingAdvance::disabled()
                };
                let served = if config.timing_advance {
                    TimingAdvance::serveable(ue.dist_km, config.prach, true)
                } else {
                    true
                };
                UeState {
                    shadowing: LinkShadowing::new(
                        config.shadowing,
                        rng.fork_idx("ue-shadow", i as u64),
                    ),
                    ta,
                    served,
                    backlog_bits: 0.0,
                    delivered_bits: 0,
                    avg_rate: 0.0,
                    sinr_sum: 0.0,
                    cqi_sum: 0.0,
                    sinr_samples: 0,
                    scheduled_ttis: 0,
                    config: ue,
                }
            })
            .collect();
        let grid = PrbGrid::new(config.bandwidth.n_prb, config.masked_prb);
        CellSim {
            scheduler: config.scheduler.build(),
            harq: HarqProcessModel::new(config.harq),
            grid,
            ues: ue_states,
            config,
            tti: 0,
            util_sum: 0.0,
            util_ttis: 0,
            trace_node: 0,
            harq_trace_rng: rng.fork("harq-trace"),
        }
    }

    /// Name this cell in trace output (multi-cell experiments give each cell
    /// a distinct id so grant events stay attributable).
    pub fn set_trace_node(&mut self, id: u64) {
        self.trace_node = id;
    }

    /// Link budget toward UE `i` for the configured direction.
    fn budget_for(&self, i: usize) -> LinkBudget {
        let ue = &self.ues[i].config;
        let (tx, rx) = match self.config.direction {
            Direction::Downlink => (self.config.enb, ue.radio),
            Direction::Uplink => (ue.radio, self.config.enb),
        };
        LinkBudget {
            tx,
            rx,
            model: self.config.path_loss,
            freq_mhz: self.config.freq_mhz,
            bandwidth_hz: self.config.bandwidth.occupied_hz(),
        }
    }

    /// SINR for UE `i` at `now`, including fading, interference and (uplink)
    /// timing-advance residual penalties.
    fn sinr_db(&mut self, i: usize, now: SimTime) -> f64 {
        let budget = self.budget_for(i);
        let fading = self.ues[i].shadowing.sample_db(now);
        let ue = &self.ues[i];
        let rx_dbm = budget.rx_power_dbm(ue.config.dist_km) - fading;
        let noise_mw = dbm_to_mw(budget.noise_floor_dbm());
        let interference_mw = if ue.config.interference_dbm.is_finite() {
            dbm_to_mw(ue.config.interference_dbm)
        } else {
            0.0
        };
        let mut sinr = rx_dbm - 10.0 * (noise_mw + interference_mw).log10();
        // Misaligned uplink arrivals self-interfere (E4). Downlink is always
        // aligned (single transmitter).
        if self.config.direction == Direction::Uplink {
            sinr -= ue.ta.isi_penalty_db(ue.config.dist_km);
        }
        sinr
    }

    /// Whether this cell owns TTI `tti` under its time-domain share.
    /// Deterministic interleaving: cell owns the TTIs whose fractional
    /// position wraps below `share` (an exact Bresenham pattern).
    fn owns_tti(&self, tti: u64) -> bool {
        let share = self.config.tdm_share.clamp(0.0, 1.0);
        if share >= 1.0 {
            return true;
        }
        if share <= 0.0 {
            return false;
        }
        // Own floor((t+1)·share) > floor(t·share).
        ((tti + 1) as f64 * share).floor() > (tti as f64 * share).floor()
    }

    /// Run one TTI (1 ms).
    pub fn step_tti(&mut self) {
        let now = SimTime::from_millis(self.tti);
        // Accrue CBR traffic regardless of ownership.
        for ue in &mut self.ues {
            if let Traffic::Cbr { bps } = ue.config.traffic {
                ue.backlog_bits += bps / 1000.0;
            }
        }
        if !self.owns_tti(self.tti) {
            // Decay PF averages so the tracker stays consistent in time.
            for ue in &mut self.ues {
                ue.avg_rate *= 1.0 - self.config.pf_alpha;
            }
            self.tti += 1;
            return;
        }

        // Per-UE channel state this TTI.
        let n = self.ues.len();
        let mut sched_inputs = Vec::with_capacity(n);
        let mut per_ue_sinr = vec![f64::NEG_INFINITY; n];
        let mut per_ue_bits_per_prb = vec![0f64; n];
        for i in 0..n {
            if !self.ues[i].served {
                continue;
            }
            let sinr = self.sinr_db(i, now);
            per_ue_sinr[i] = sinr;
            let ue = &mut self.ues[i];
            ue.sinr_sum += sinr;
            ue.sinr_samples += 1;
            let Some(cqi) = select_cqi(sinr) else {
                continue; // out of range this TTI
            };
            ue.cqi_sum += cqi.cqi as f64;
            let bits_per_prb = transport_block_bits(cqi, 1) as f64;
            per_ue_bits_per_prb[i] = bits_per_prb;
            let backlog = match ue.config.traffic {
                Traffic::FullBuffer => u64::MAX,
                Traffic::Cbr { .. } => ue.backlog_bits.max(0.0) as u64,
            };
            sched_inputs.push(SchedUe {
                id: i,
                bits_per_prb,
                backlog_bits: backlog,
                avg_rate: ue.avg_rate,
            });
        }

        self.grid.reset();
        self.scheduler
            .schedule(self.tti, &sched_inputs, &mut self.grid);
        self.util_sum += self.grid.utilization();
        self.util_ttis += 1;
        // Per-TTI hot path: interned counter handle, no string lookup.
        static SCHED_GRANTS: std::sync::OnceLock<dlte_obs::metrics::CounterId> =
            std::sync::OnceLock::new();
        SCHED_GRANTS
            .get_or_init(|| dlte_obs::metrics::register_counter("sched_grants"))
            .add(self.grid.allocations().len() as u64);
        if dlte_obs::tracing_enabled() {
            self.trace_allocations(now, &per_ue_sinr);
        }

        // Deliver allocated bits through the HARQ model.
        let mut served_bits = vec![0f64; n];
        for alloc in self.grid.allocations() {
            let i = alloc.ue;
            let sinr = per_ue_sinr[i];
            let Some(cqi) = select_cqi(sinr) else {
                continue;
            };
            let raw_bits = per_ue_bits_per_prb[i] * alloc.n_prb as f64;
            let eff = self.harq.stats(sinr, cqi).efficiency;
            served_bits[i] += raw_bits * eff;
        }
        for (i, &bits) in served_bits.iter().enumerate() {
            let alpha = self.config.pf_alpha;
            let ue = &mut self.ues[i];
            if bits > 0.0 {
                ue.scheduled_ttis += 1;
                // Goodput counts only bits the UE actually had queued: PRB
                // granularity can over-allocate the last block of a CBR
                // drain, and padding is not goodput.
                let counted = match ue.config.traffic {
                    Traffic::FullBuffer => bits,
                    Traffic::Cbr { .. } => bits.min(ue.backlog_bits),
                };
                ue.delivered_bits += counted as u64;
                if let Traffic::Cbr { .. } = ue.config.traffic {
                    ue.backlog_bits = (ue.backlog_bits - bits).max(0.0);
                }
            }
            ue.avg_rate = (1.0 - alpha) * ue.avg_rate + alpha * bits;
        }
        self.tti += 1;
    }

    /// Emit one `SchedGrant` per allocation this TTI, plus a sampled HARQ
    /// outcome for the granted block. Trace-only: the delivery model above
    /// uses the analytic HARQ expectation, so sampling here perturbs nothing.
    fn trace_allocations(&mut self, now: SimTime, per_ue_sinr: &[f64]) {
        let allocs: Vec<super::grid::Allocation> = self.grid.allocations().to_vec();
        let t_ns = now.as_nanos();
        for alloc in allocs {
            let sinr = per_ue_sinr[alloc.ue];
            let Some(cqi) = select_cqi(sinr) else {
                continue;
            };
            let ue = alloc.ue as u64;
            dlte_obs::emit(
                t_ns,
                self.trace_node,
                Event::SchedGrant {
                    ue,
                    rbs: alloc.n_prb,
                    tbs_bits: transport_block_bits(cqi, alloc.n_prb),
                },
            );
            let o = self
                .harq
                .simulate_block(sinr, cqi, &mut self.harq_trace_rng);
            dlte_obs::metrics::counter_add("harq_tx", 1);
            dlte_obs::emit(
                t_ns,
                self.trace_node,
                Event::HarqTx {
                    ue,
                    ok: o.delivered && o.transmissions == 1,
                },
            );
            for attempt in 2..=o.transmissions {
                dlte_obs::metrics::counter_add("harq_retx", 1);
                dlte_obs::emit(
                    t_ns,
                    self.trace_node,
                    Event::HarqRetx {
                        ue,
                        attempt,
                        ok: o.delivered && attempt == o.transmissions,
                    },
                );
            }
            if !o.delivered {
                dlte_obs::metrics::counter_add("harq_fail", 1);
                dlte_obs::emit(
                    t_ns,
                    self.trace_node,
                    Event::HarqFail {
                        ue,
                        attempts: o.transmissions,
                    },
                );
            }
        }
    }

    /// Run for `duration` and produce the report.
    pub fn run(&mut self, duration: SimDuration) -> CellReport {
        let ttis = duration.as_millis();
        for _ in 0..ttis {
            self.step_tti();
        }
        // One TTI = one unit of work for the run instrumentation.
        dlte_sim::report::credit(ttis, duration);
        self.report(duration)
    }

    /// Produce a report for the elapsed simulation.
    pub fn report(&self, duration: SimDuration) -> CellReport {
        let secs = duration.as_secs_f64().max(1e-9);
        let total_ttis = self.tti.max(1);
        let ues: Vec<UeReport> = self
            .ues
            .iter()
            .enumerate()
            .map(|(id, ue)| UeReport {
                id,
                served: ue.served,
                goodput_bps: ue.delivered_bits as f64 / secs,
                mean_sinr_db: if ue.sinr_samples > 0 {
                    ue.sinr_sum / ue.sinr_samples as f64
                } else {
                    f64::NEG_INFINITY
                },
                mean_cqi: if ue.sinr_samples > 0 {
                    ue.cqi_sum / ue.sinr_samples as f64
                } else {
                    0.0
                },
                scheduled_fraction: ue.scheduled_ttis as f64 / total_ttis as f64,
                delivered_bits: ue.delivered_bits,
            })
            .collect();
        let rates: Vec<f64> = ues.iter().map(|u| u.goodput_bps).collect();
        CellReport {
            aggregate_goodput_bps: rates.iter().sum(),
            jain_fairness: jain_index(&rates),
            mean_grid_utilization: if self.util_ttis > 0 {
                self.util_sum / self.util_ttis as f64
            } else {
                0.0
            },
            duration,
            ues,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cell(config: CellConfig, ues: Vec<UeConfig>, secs: u64) -> CellReport {
        let rng = SimRng::new(42);
        let mut sim = CellSim::new(config, ues, &rng);
        sim.run(SimDuration::from_secs(secs))
    }

    #[test]
    fn single_close_ue_gets_near_peak() {
        let report = run_cell(CellConfig::rural_default(), vec![UeConfig::at_km(0.5)], 2);
        // 10 MHz SISO with 25% overhead peaks at ~35 Mbit/s.
        let g = report.ues[0].goodput_bps;
        assert!((30e6..40e6).contains(&g), "goodput {g}");
        assert!(report.ues[0].mean_cqi > 14.0);
        assert!(report.mean_grid_utilization > 0.99);
    }

    #[test]
    fn goodput_decreases_with_distance() {
        let mut prev = f64::INFINITY;
        for d in [1.0, 5.0, 10.0, 20.0, 40.0] {
            let r = run_cell(CellConfig::rural_default(), vec![UeConfig::at_km(d)], 1);
            let g = r.ues[0].goodput_bps;
            assert!(g < prev, "{d} km: {g} !< {prev}");
            prev = g;
        }
    }

    #[test]
    fn two_ues_share_the_grid() {
        let r = run_cell(
            CellConfig::rural_default(),
            vec![UeConfig::at_km(1.0), UeConfig::at_km(1.0)],
            2,
        );
        let (a, b) = (r.ues[0].goodput_bps, r.ues[1].goodput_bps);
        assert!(
            (a / b - 1.0).abs() < 0.05,
            "equal UEs should split: {a} vs {b}"
        );
        assert!(r.jain_fairness > 0.99);
        // Sum still ≈ one-UE peak.
        assert!((30e6..40e6).contains(&(a + b)));
    }

    #[test]
    fn tdm_share_halves_throughput() {
        let mut half = CellConfig::rural_default();
        half.tdm_share = 0.5;
        let full = run_cell(CellConfig::rural_default(), vec![UeConfig::at_km(1.0)], 2);
        let shared = run_cell(half, vec![UeConfig::at_km(1.0)], 2);
        let ratio = shared.ues[0].goodput_bps / full.ues[0].goodput_bps;
        assert!((ratio - 0.5).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn masked_prbs_halve_throughput() {
        let mut half = CellConfig::rural_default();
        half.masked_prb = 25;
        let full = run_cell(CellConfig::rural_default(), vec![UeConfig::at_km(1.0)], 2);
        let shared = run_cell(half, vec![UeConfig::at_km(1.0)], 2);
        let ratio = shared.ues[0].goodput_bps / full.ues[0].goodput_bps;
        assert!((ratio - 0.5).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn cbr_ue_gets_exactly_its_rate() {
        let mut ue = UeConfig::at_km(1.0);
        ue.traffic = Traffic::Cbr { bps: 2e6 };
        let r = run_cell(CellConfig::rural_default(), vec![ue], 5);
        let g = r.ues[0].goodput_bps;
        assert!((g / 2e6 - 1.0).abs() < 0.02, "CBR goodput {g}");
        // And the grid is mostly idle.
        assert!(r.mean_grid_utilization < 0.2);
    }

    #[test]
    fn interference_reduces_goodput() {
        let mut interfered = UeConfig::at_km(2.0);
        interfered.interference_dbm = -90.0;
        let clean = run_cell(CellConfig::rural_default(), vec![UeConfig::at_km(2.0)], 1);
        let dirty = run_cell(CellConfig::rural_default(), vec![interfered], 1);
        assert!(dirty.ues[0].goodput_bps < clean.ues[0].goodput_bps);
    }

    #[test]
    fn uplink_without_ta_fails_at_range_paper_e4() {
        let mut cfg = CellConfig::rural_default();
        cfg.direction = Direction::Uplink;
        cfg.timing_advance = false;
        let no_ta = run_cell(cfg.clone(), vec![UeConfig::at_km(8.0)], 1);
        cfg.timing_advance = true;
        let with_ta = run_cell(cfg, vec![UeConfig::at_km(8.0)], 1);
        assert!(
            with_ta.ues[0].goodput_bps > 1.5 * no_ta.ues[0].goodput_bps,
            "TA {} vs no-TA {}",
            with_ta.ues[0].goodput_bps,
            no_ta.ues[0].goodput_bps
        );
    }

    #[test]
    fn ue_beyond_prach_range_not_served() {
        let mut cfg = CellConfig::rural_default();
        cfg.prach = PrachFormat::Format0; // 14.5 km
        let r = run_cell(cfg, vec![UeConfig::at_km(20.0), UeConfig::at_km(5.0)], 1);
        assert!(!r.ues[0].served);
        assert_eq!(r.ues[0].goodput_bps, 0.0);
        assert!(r.ues[1].served);
        assert!(r.ues[1].goodput_bps > 0.0);
    }

    #[test]
    fn pf_beats_rr_with_mixed_channels() {
        // One near, one far UE: PF should deliver more aggregate than RR
        // while keeping the far UE served.
        let ues = || vec![UeConfig::at_km(0.5), UeConfig::at_km(15.0)];
        let mut pf_cfg = CellConfig::rural_default();
        pf_cfg.scheduler = SchedulerKind::ProportionalFair;
        let mut rr_cfg = CellConfig::rural_default();
        rr_cfg.scheduler = SchedulerKind::RoundRobin;
        let pf = run_cell(pf_cfg, ues(), 2);
        let rr = run_cell(rr_cfg, ues(), 2);
        assert!(pf.aggregate_goodput_bps >= rr.aggregate_goodput_bps * 0.98);
        assert!(pf.ues[1].goodput_bps > 0.0, "PF must serve the far UE");
    }

    #[test]
    fn max_ci_maximizes_aggregate_but_starves() {
        let ues = || vec![UeConfig::at_km(0.5), UeConfig::at_km(15.0)];
        let mut ci_cfg = CellConfig::rural_default();
        ci_cfg.scheduler = SchedulerKind::MaxCi;
        let mut rr_cfg = CellConfig::rural_default();
        rr_cfg.scheduler = SchedulerKind::RoundRobin;
        let ci = run_cell(ci_cfg, ues(), 2);
        let rr = run_cell(rr_cfg, ues(), 2);
        assert!(ci.aggregate_goodput_bps > rr.aggregate_goodput_bps);
        assert!(ci.jain_fairness < rr.jain_fairness);
        assert_eq!(ci.ues[1].goodput_bps, 0.0, "Max C/I starves the far UE");
    }

    #[test]
    fn tracing_emits_grants_without_changing_results() {
        let base = run_cell(CellConfig::rural_default(), vec![UeConfig::at_km(1.0)], 1);
        dlte_obs::set_tracing(true);
        let traced = run_cell(CellConfig::rural_default(), vec![UeConfig::at_km(1.0)], 1);
        let records = dlte_obs::take_records();
        dlte_obs::set_tracing(false);
        assert_eq!(base.ues[0].delivered_bits, traced.ues[0].delivered_bits);
        assert!(records
            .iter()
            .any(|r| matches!(r.event, Event::SchedGrant { .. })));
        assert!(records
            .iter()
            .any(|r| matches!(r.event, Event::HarqTx { .. })));
    }

    #[test]
    fn tdm_pattern_is_exact() {
        let mut cfg = CellConfig::rural_default();
        cfg.tdm_share = 0.25;
        let sim = CellSim::new(cfg, vec![], &SimRng::new(1));
        let owned = (0..1000).filter(|&t| sim.owns_tti(t)).count();
        assert_eq!(owned, 250);
    }
}
