//! The per-subframe physical resource block grid.
//!
//! A thin allocation ledger: each TTI the scheduler hands out PRBs to UEs;
//! the grid enforces that no PRB is double-booked and reports utilization.
//! The grid also supports *masking* a subset of PRBs as unavailable, which
//! is how the dLTE fair-sharing mode (frequency-domain partitions agreed
//! over X2) is expressed at the MAC.

use serde::{Deserialize, Serialize};

/// Identifies a UE within one cell's scheduling scope.
pub type UeId = usize;

/// Allocation of a contiguous count of PRBs to one UE in one TTI (we track
/// counts, not indices — with wideband CQI the position is immaterial).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    pub ue: UeId,
    pub n_prb: u32,
}

/// The PRB grid of one subframe.
#[derive(Clone, Debug)]
pub struct PrbGrid {
    total_prb: u32,
    masked_prb: u32,
    allocated: Vec<Allocation>,
    used_prb: u32,
}

impl PrbGrid {
    /// A grid of `total_prb` blocks with `masked_prb` of them unavailable
    /// (reserved for a peer AP by the fair-share partition).
    pub fn new(total_prb: u32, masked_prb: u32) -> Self {
        assert!(masked_prb <= total_prb, "mask exceeds grid");
        PrbGrid {
            total_prb,
            masked_prb,
            allocated: Vec::new(),
            used_prb: 0,
        }
    }

    /// PRBs available to this cell this TTI.
    pub fn available(&self) -> u32 {
        self.total_prb - self.masked_prb - self.used_prb
    }

    /// Total grid size (before masking).
    pub fn total(&self) -> u32 {
        self.total_prb
    }

    /// Allocate up to `want` PRBs to `ue`; returns the number granted.
    pub fn allocate(&mut self, ue: UeId, want: u32) -> u32 {
        let grant = want.min(self.available());
        if grant > 0 {
            self.used_prb += grant;
            self.allocated.push(Allocation { ue, n_prb: grant });
        }
        grant
    }

    /// Allocations made this TTI.
    pub fn allocations(&self) -> &[Allocation] {
        &self.allocated
    }

    /// Fraction of the *unmasked* grid in use.
    pub fn utilization(&self) -> f64 {
        let usable = self.total_prb - self.masked_prb;
        if usable == 0 {
            0.0
        } else {
            self.used_prb as f64 / usable as f64
        }
    }

    /// Clear allocations for the next TTI (mask persists).
    pub fn reset(&mut self) {
        self.allocated.clear();
        self.used_prb = 0;
    }

    /// Change the mask (fair-share renegotiation between TTIs).
    pub fn set_mask(&mut self, masked_prb: u32) {
        assert!(masked_prb <= self.total_prb);
        debug_assert_eq!(self.used_prb, 0, "re-mask only between TTIs");
        self.masked_prb = masked_prb;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_respects_capacity() {
        let mut g = PrbGrid::new(50, 0);
        assert_eq!(g.allocate(1, 30), 30);
        assert_eq!(g.allocate(2, 30), 20, "only 20 left");
        assert_eq!(g.allocate(3, 5), 0, "grid full");
        assert_eq!(g.available(), 0);
        assert!((g.utilization() - 1.0).abs() < 1e-12);
        assert_eq!(g.allocations().len(), 2);
    }

    #[test]
    fn mask_reserves_peer_share() {
        let mut g = PrbGrid::new(50, 25);
        assert_eq!(g.available(), 25);
        assert_eq!(g.allocate(1, 50), 25);
        // Utilization is measured against the unmasked portion.
        assert!((g.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_allocations_but_not_mask() {
        let mut g = PrbGrid::new(50, 10);
        g.allocate(1, 10);
        g.reset();
        assert_eq!(g.available(), 40);
        assert!(g.allocations().is_empty());
        g.set_mask(0);
        assert_eq!(g.available(), 50);
    }

    #[test]
    #[should_panic(expected = "mask exceeds grid")]
    fn oversized_mask_panics() {
        PrbGrid::new(10, 11);
    }

    #[test]
    fn zero_want_is_noop() {
        let mut g = PrbGrid::new(50, 0);
        assert_eq!(g.allocate(1, 0), 0);
        assert!(g.allocations().is_empty());
    }

    #[test]
    fn fully_masked_grid_reports_zero_utilization() {
        let g = PrbGrid::new(10, 10);
        assert_eq!(g.available(), 0);
        assert_eq!(g.utilization(), 0.0);
    }
}
