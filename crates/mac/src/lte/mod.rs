//! The scheduled LTE MAC.

pub mod cell;
pub mod grid;
pub mod scheduler;
pub mod timing_advance;
