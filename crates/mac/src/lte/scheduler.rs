//! TTI schedulers.
//!
//! Each subframe the scheduler distributes the grid's available PRBs over
//! the UEs with pending data. Three classical disciplines are provided:
//!
//! * **Round-robin** — equal-resource, the simplest fair baseline;
//! * **Proportional fair** — maximizes Σ log(throughput); the industry
//!   default and what "LTE's built-in coordinated channel assignment and
//!   scheduling" (§6) means in practice;
//! * **Max C/I** — throughput-optimal and starvation-prone; the upper
//!   envelope in fairness/efficiency plots.
//!
//! The cooperative dLTE mode (E7) reuses [`ProportionalFair`] across cells
//! by feeding it a *joint* UE population — the scheduler itself is
//! deliberately unaware of which AP it serves.

use super::grid::{PrbGrid, UeId};
use serde::{Deserialize, Serialize};

/// Per-UE inputs to a scheduling decision.
#[derive(Clone, Debug)]
pub struct SchedUe {
    pub id: UeId,
    /// Bits this UE could carry per PRB this TTI (from its current CQI).
    pub bits_per_prb: f64,
    /// Bits waiting in this UE's queue (u64::MAX for full-buffer).
    pub backlog_bits: u64,
    /// Long-term average served rate, bits/TTI (PF denominator). The caller
    /// owns the EWMA update; the scheduler only reads it.
    pub avg_rate: f64,
}

impl SchedUe {
    fn wants_prb(&self) -> bool {
        self.backlog_bits > 0 && self.bits_per_prb > 0.0
    }

    /// PRBs needed to drain the backlog this TTI.
    fn prb_demand(&self) -> u32 {
        if !self.wants_prb() {
            return 0;
        }
        if self.backlog_bits == u64::MAX {
            return u32::MAX;
        }
        (self.backlog_bits as f64 / self.bits_per_prb).ceil() as u32
    }
}

/// A scheduling discipline.
pub trait TtiScheduler {
    /// Fill `grid` from `ues`. Implementations must only allocate to UEs
    /// with positive demand and must respect grid capacity (enforced by
    /// [`PrbGrid`] itself).
    fn schedule(&mut self, tti: u64, ues: &[SchedUe], grid: &mut PrbGrid);
}

/// Selector for constructing schedulers from experiment configs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SchedulerKind {
    RoundRobin,
    ProportionalFair,
    MaxCi,
}

impl SchedulerKind {
    pub fn build(self) -> Box<dyn TtiScheduler> {
        match self {
            SchedulerKind::RoundRobin => Box::new(RoundRobin::new()),
            SchedulerKind::ProportionalFair => Box::new(ProportionalFair::new()),
            SchedulerKind::MaxCi => Box::new(MaxCi),
        }
    }
}

/// Equal-share round robin with a rotating starting offset.
pub struct RoundRobin {
    next_start: usize,
}

impl RoundRobin {
    pub fn new() -> Self {
        RoundRobin { next_start: 0 }
    }
}

impl Default for RoundRobin {
    fn default() -> Self {
        Self::new()
    }
}

impl TtiScheduler for RoundRobin {
    fn schedule(&mut self, _tti: u64, ues: &[SchedUe], grid: &mut PrbGrid) {
        let eligible: Vec<&SchedUe> = ues.iter().filter(|u| u.wants_prb()).collect();
        if eligible.is_empty() {
            return;
        }
        let n = eligible.len();
        let start = self.next_start % n;
        self.next_start = self.next_start.wrapping_add(1);
        // Equal split, remainder to the UEs at the rotating head; then a
        // second pass hands unused capacity (from UEs with small backlogs)
        // to whoever still has demand.
        let fair_share = (grid.available() / n as u32).max(1);
        for k in 0..n {
            let ue = eligible[(start + k) % n];
            let want = ue.prb_demand().min(fair_share);
            grid.allocate(ue.id, want);
            if grid.available() == 0 {
                return;
            }
        }
        for k in 0..n {
            let ue = eligible[(start + k) % n];
            let already: u32 = grid
                .allocations()
                .iter()
                .filter(|a| a.ue == ue.id)
                .map(|a| a.n_prb)
                .sum();
            let residual = ue.prb_demand().saturating_sub(already);
            if residual > 0 {
                grid.allocate(ue.id, residual);
                if grid.available() == 0 {
                    return;
                }
            }
        }
    }
}

/// Proportional fair: PRB-by-PRB greedy on the metric `r_i / max(R_i, ε)`.
pub struct ProportionalFair {
    /// Floor on the average-rate denominator to bootstrap new UEs.
    epsilon: f64,
}

impl ProportionalFair {
    pub fn new() -> Self {
        ProportionalFair { epsilon: 1.0 }
    }
}

impl Default for ProportionalFair {
    fn default() -> Self {
        Self::new()
    }
}

impl TtiScheduler for ProportionalFair {
    fn schedule(&mut self, _tti: u64, ues: &[SchedUe], grid: &mut PrbGrid) {
        // Greedy per-PRB assignment; with wideband CQI each UE's metric is
        // flat across PRBs, so we simulate the per-PRB loop efficiently by
        // tracking how many bits each UE has been granted *this TTI* and
        // re-evaluating the metric after every grant of one PRB.
        let mut demand: Vec<(usize, u32)> = ues
            .iter()
            .enumerate()
            .filter(|(_, u)| u.wants_prb())
            .map(|(i, u)| (i, u.prb_demand()))
            .collect();
        if demand.is_empty() {
            return;
        }
        let mut granted_bits = vec![0f64; ues.len()];
        let mut granted_prb = vec![0u32; ues.len()];
        while grid.available() > 0 && !demand.is_empty() {
            // Metric uses avg updated with this TTI's provisional grants so a
            // single TTI doesn't dump the whole grid on one UE.
            let (best_pos, _) = demand
                .iter()
                .enumerate()
                .map(|(pos, &(i, _))| {
                    let u = &ues[i];
                    let denom = (u.avg_rate + granted_bits[i]).max(self.epsilon);
                    (pos, u.bits_per_prb / denom)
                })
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("metric NaN"))
                .expect("demand non-empty");
            let (i, remaining) = demand[best_pos];
            let got = grid.allocate(ues[i].id, 1);
            if got == 0 {
                break;
            }
            granted_bits[i] += ues[i].bits_per_prb;
            granted_prb[i] += 1;
            if remaining <= 1 {
                demand.swap_remove(best_pos);
            } else {
                demand[best_pos].1 = remaining - 1;
            }
        }
    }
}

/// Max C/I: all PRBs to the best-channel UE, then the next, etc.
pub struct MaxCi;

impl TtiScheduler for MaxCi {
    fn schedule(&mut self, _tti: u64, ues: &[SchedUe], grid: &mut PrbGrid) {
        let mut order: Vec<&SchedUe> = ues.iter().filter(|u| u.wants_prb()).collect();
        order.sort_by(|a, b| {
            b.bits_per_prb
                .partial_cmp(&a.bits_per_prb)
                .expect("bits_per_prb NaN")
        });
        for ue in order {
            if grid.available() == 0 {
                return;
            }
            grid.allocate(ue.id, ue.prb_demand());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_buffer(id: UeId, bits_per_prb: f64, avg_rate: f64) -> SchedUe {
        SchedUe {
            id,
            bits_per_prb,
            backlog_bits: u64::MAX,
            avg_rate,
        }
    }

    fn prb_for(grid: &PrbGrid, ue: UeId) -> u32 {
        grid.allocations()
            .iter()
            .filter(|a| a.ue == ue)
            .map(|a| a.n_prb)
            .sum()
    }

    #[test]
    fn round_robin_splits_evenly() {
        let mut s = RoundRobin::new();
        let ues = vec![
            full_buffer(0, 100.0, 0.0),
            full_buffer(1, 500.0, 0.0),
            full_buffer(2, 300.0, 0.0),
        ];
        let mut grid = PrbGrid::new(30, 0);
        s.schedule(0, &ues, &mut grid);
        for ue in 0..3 {
            assert_eq!(prb_for(&grid, ue), 10, "ue {ue}");
        }
    }

    #[test]
    fn round_robin_rotates_remainder() {
        let mut s = RoundRobin::new();
        let ues = vec![full_buffer(0, 1.0, 0.0), full_buffer(1, 1.0, 0.0)];
        // 3 PRBs over 2 UEs: someone gets 2. Over two TTIs it should even out.
        let mut total = [0u32; 2];
        for tti in 0..2 {
            let mut grid = PrbGrid::new(3, 0);
            s.schedule(tti, &ues, &mut grid);
            for (ue, t) in total.iter_mut().enumerate() {
                *t += prb_for(&grid, ue);
            }
        }
        assert_eq!(total[0] + total[1], 6);
        assert_eq!(total[0], 3);
        assert_eq!(total[1], 3);
    }

    #[test]
    fn round_robin_redistributes_unused_share() {
        let mut s = RoundRobin::new();
        // UE 0 needs only 2 PRBs; UE 1 is full-buffer and should receive the
        // leftovers.
        let ues = vec![
            SchedUe {
                id: 0,
                bits_per_prb: 100.0,
                backlog_bits: 150,
                avg_rate: 0.0,
            },
            full_buffer(1, 100.0, 0.0),
        ];
        let mut grid = PrbGrid::new(20, 0);
        s.schedule(0, &ues, &mut grid);
        assert_eq!(prb_for(&grid, 0), 2);
        assert_eq!(prb_for(&grid, 1), 18);
    }

    #[test]
    fn max_ci_starves_weak_ue() {
        let mut s = MaxCi;
        let ues = vec![full_buffer(0, 700.0, 0.0), full_buffer(1, 100.0, 0.0)];
        let mut grid = PrbGrid::new(50, 0);
        s.schedule(0, &ues, &mut grid);
        assert_eq!(prb_for(&grid, 0), 50);
        assert_eq!(prb_for(&grid, 1), 0);
    }

    #[test]
    fn pf_favors_underserved_ue() {
        let mut s = ProportionalFair::new();
        // Same channel quality, but UE 1 has been served 10× more.
        let ues = vec![full_buffer(0, 100.0, 100.0), full_buffer(1, 100.0, 1000.0)];
        let mut grid = PrbGrid::new(50, 0);
        s.schedule(0, &ues, &mut grid);
        assert!(
            prb_for(&grid, 0) > prb_for(&grid, 1),
            "underserved UE should win: {} vs {}",
            prb_for(&grid, 0),
            prb_for(&grid, 1)
        );
    }

    #[test]
    fn pf_does_not_starve_weak_channel() {
        let mut s = ProportionalFair::new();
        // UE 1 has a 5× worse channel; PF should still serve it PRBs once
        // its average falls behind. With equal starting averages, PF grants
        // both (the provisional-grant denominator self-balances).
        let ues = vec![full_buffer(0, 500.0, 10.0), full_buffer(1, 100.0, 10.0)];
        let mut grid = PrbGrid::new(50, 0);
        s.schedule(0, &ues, &mut grid);
        assert!(prb_for(&grid, 0) > 0);
        assert!(prb_for(&grid, 1) > 0, "PF must not starve the weak UE");
    }

    #[test]
    fn all_schedulers_respect_backlog_and_capacity() {
        for kind in [
            SchedulerKind::RoundRobin,
            SchedulerKind::ProportionalFair,
            SchedulerKind::MaxCi,
        ] {
            let mut s = kind.build();
            let ues = vec![
                SchedUe {
                    id: 0,
                    bits_per_prb: 100.0,
                    backlog_bits: 250, // needs 3 PRBs
                    avg_rate: 1.0,
                },
                SchedUe {
                    id: 1,
                    bits_per_prb: 100.0,
                    backlog_bits: 0, // idle
                    avg_rate: 1.0,
                },
            ];
            let mut grid = PrbGrid::new(50, 0);
            s.schedule(0, &ues, &mut grid);
            assert_eq!(prb_for(&grid, 0), 3, "{kind:?} over/under-allocated");
            assert_eq!(prb_for(&grid, 1), 0, "{kind:?} served idle UE");
        }
    }

    #[test]
    fn empty_ue_set_is_fine() {
        for kind in [
            SchedulerKind::RoundRobin,
            SchedulerKind::ProportionalFair,
            SchedulerKind::MaxCi,
        ] {
            let mut s = kind.build();
            let mut grid = PrbGrid::new(50, 0);
            s.schedule(0, &[], &mut grid);
            assert_eq!(grid.available(), 50);
        }
    }
}
