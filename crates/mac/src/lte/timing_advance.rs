//! Timing advance — how the LTE MAC "explicitly compensates for propagation
//! delay" (§3.2).
//!
//! Uplink transmissions from all UEs must arrive at the eNodeB aligned to
//! the subframe boundary. The eNodeB measures each UE's round-trip delay
//! during random access and commands a *timing advance*: the UE transmits
//! early by that amount. TA is quantized to 16·Ts ≈ 0.52 µs steps and capped
//! at 1282 steps ≈ 0.67 ms, i.e. a ~100 km cell radius.
//!
//! Without TA (the WiFi situation — 802.11 has no closed-loop timing), a
//! distant station's symbols arrive offset by the one-way propagation delay.
//! Offsets within the OFDM cyclic prefix are absorbed; beyond it they cause
//! inter-symbol interference, modeled as an SINR penalty growing with the
//! excess offset. This module quantifies both regimes so experiment E4 can
//! sweep cell radius with TA on and off.

use dlte_phy::units::SPEED_OF_LIGHT;
use dlte_phy::waveform::timing::{CP_NORMAL_US, TS_NANOS};
use serde::{Deserialize, Serialize};

/// TA step: 16 × Ts in nanoseconds (≈ 520.8 ns).
pub const TA_STEP_NANOS: f64 = 16.0 * TS_NANOS;

/// Maximum TA index (TS 36.213: N_TA ranges to 20512 Ts = 1282 steps).
pub const MAX_TA_STEPS: u32 = 1282;

/// Maximum one-way cell radius TA can compensate, km (~100 km).
pub const MAX_TA_KM: f64 =
    (MAX_TA_STEPS as f64 * TA_STEP_NANOS) * 1e-9 * SPEED_OF_LIGHT / 2.0 / 1000.0;

/// PRACH preamble formats and the initial-access radius they support
/// (TS 36.211 Table 5.7.1-1; the cyclic-shift budget limits how far a UE can
/// be *detected* before any TA is assigned).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PrachFormat {
    /// Format 0: ~14.5 km — the urban default.
    Format0,
    /// Format 1: ~77 km — extended range.
    Format1,
    /// Format 3: ~100 km — the maximum.
    Format3,
}

impl PrachFormat {
    /// Maximum initial-access radius, km.
    pub fn max_radius_km(self) -> f64 {
        match self {
            PrachFormat::Format0 => 14.5,
            PrachFormat::Format1 => 77.3,
            PrachFormat::Format3 => 100.2,
        }
    }

    /// Pick the cheapest format covering `radius_km`, if any.
    pub fn for_radius(radius_km: f64) -> Option<PrachFormat> {
        [
            PrachFormat::Format0,
            PrachFormat::Format1,
            PrachFormat::Format3,
        ]
        .into_iter()
        .find(|f| f.max_radius_km() >= radius_km)
    }
}

/// The timing-advance state for one UE.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TimingAdvance {
    /// Commanded TA in steps, or `None` if TA is disabled (the
    /// counterfactual arm of E4).
    pub steps: Option<u32>,
}

impl TimingAdvance {
    /// One-way propagation delay to a UE at `dist_km`, nanoseconds.
    pub fn one_way_delay_ns(dist_km: f64) -> f64 {
        dist_km.max(0.0) * 1000.0 / SPEED_OF_LIGHT * 1e9
    }

    /// Compute the TA command for a UE at `dist_km`. Returns `None` if the
    /// distance exceeds what TA can express (UE cannot be served).
    pub fn for_distance(dist_km: f64) -> Option<TimingAdvance> {
        let rtt_ns = 2.0 * Self::one_way_delay_ns(dist_km);
        let steps = (rtt_ns / TA_STEP_NANOS).round() as u32;
        if steps > MAX_TA_STEPS {
            None
        } else {
            Some(TimingAdvance { steps: Some(steps) })
        }
    }

    /// TA explicitly disabled.
    pub fn disabled() -> TimingAdvance {
        TimingAdvance { steps: None }
    }

    /// Residual arrival misalignment at the eNodeB for a UE at `dist_km`,
    /// nanoseconds. With TA: the quantization error (≤ half a step). Without:
    /// the full round-trip skew relative to the cell center.
    pub fn residual_offset_ns(&self, dist_km: f64) -> f64 {
        let rtt_ns = 2.0 * Self::one_way_delay_ns(dist_km);
        match self.steps {
            Some(steps) => (rtt_ns - steps as f64 * TA_STEP_NANOS).abs(),
            None => rtt_ns,
        }
    }

    /// SINR penalty (dB) from inter-symbol interference caused by a residual
    /// offset. Offsets within the normal cyclic prefix are free; beyond it
    /// the effective SINR collapses as the fraction of each symbol that
    /// lands outside its FFT window grows. The closed form follows the
    /// standard CP-violation degradation model: the useful energy scales as
    /// `(1 - x)²` where `x` is the fractional symbol overrun, and the
    /// overrun becomes self-interference.
    pub fn isi_penalty_db(&self, dist_km: f64) -> f64 {
        let offset_us = self.residual_offset_ns(dist_km) / 1000.0;
        let excess_us = (offset_us - CP_NORMAL_US).max(0.0);
        if excess_us == 0.0 {
            return 0.0;
        }
        // OFDM useful-symbol length: 66.67 µs.
        const SYMBOL_US: f64 = 66.67;
        let x = (excess_us / SYMBOL_US).min(0.999);
        let useful = (1.0 - x) * (1.0 - x);
        let interference = 1.0 - useful;
        // Penalty = loss of useful power + self-interference floor.
        let sinr_scale = useful / (1.0 + 10.0 * interference);
        -10.0 * sinr_scale.log10()
    }

    /// Whether a UE at `dist_km` can be served at all: with TA, limited by
    /// the PRACH format and the TA range; without TA, always "served" but
    /// with whatever ISI penalty applies.
    pub fn serveable(dist_km: f64, prach: PrachFormat, ta_enabled: bool) -> bool {
        if !ta_enabled {
            return true;
        }
        dist_km <= prach.max_radius_km() && TimingAdvance::for_distance(dist_km).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ta_range_is_about_100km() {
        assert!((MAX_TA_KM - 100.0).abs() < 2.0, "MAX_TA_KM = {MAX_TA_KM}");
    }

    #[test]
    fn ta_step_is_16ts() {
        assert!((TA_STEP_NANOS - 520.83).abs() < 0.1);
    }

    #[test]
    fn ta_command_round_trips() {
        for d in [0.5, 5.0, 25.0, 90.0] {
            let ta = TimingAdvance::for_distance(d).expect("within range");
            // Residual after quantization is at most half a TA step.
            assert!(
                ta.residual_offset_ns(d) <= TA_STEP_NANOS / 2.0 + 1e-6,
                "residual at {d} km"
            );
            // And therefore no ISI penalty (CP absorbs half a microsecond).
            assert_eq!(ta.isi_penalty_db(d), 0.0);
        }
    }

    #[test]
    fn beyond_ta_range_unserveable() {
        assert!(TimingAdvance::for_distance(120.0).is_none());
        assert!(!TimingAdvance::serveable(120.0, PrachFormat::Format3, true));
        assert!(TimingAdvance::serveable(120.0, PrachFormat::Format3, false));
    }

    #[test]
    fn prach_formats_gate_initial_access() {
        assert_eq!(PrachFormat::for_radius(10.0), Some(PrachFormat::Format0));
        assert_eq!(PrachFormat::for_radius(50.0), Some(PrachFormat::Format1));
        assert_eq!(PrachFormat::for_radius(90.0), Some(PrachFormat::Format3));
        assert_eq!(PrachFormat::for_radius(150.0), None);
        assert!(TimingAdvance::serveable(20.0, PrachFormat::Format1, true));
        assert!(!TimingAdvance::serveable(20.0, PrachFormat::Format0, true));
    }

    #[test]
    fn no_ta_close_ue_is_fine_far_ue_suffers() {
        let no_ta = TimingAdvance::disabled();
        // 0.5 km: RTT ≈ 3.3 µs < CP 4.69 µs → free.
        assert_eq!(no_ta.isi_penalty_db(0.5), 0.0);
        // 3 km: RTT 20 µs ≫ CP → substantial penalty.
        let p3 = no_ta.isi_penalty_db(3.0);
        assert!(p3 > 3.0, "3 km penalty {p3}");
        // Penalty grows with distance.
        let p10 = no_ta.isi_penalty_db(10.0);
        assert!(p10 > p3);
        // And is finite/positive even at absurd distances.
        let p80 = no_ta.isi_penalty_db(80.0);
        assert!(p80.is_finite() && p80 > p10);
    }

    #[test]
    fn cp_absorbs_without_ta_up_to_700m() {
        // The crossover where RTT == CP: c·CP/2 ≈ 703 m.
        let no_ta = TimingAdvance::disabled();
        assert_eq!(no_ta.isi_penalty_db(0.70), 0.0);
        assert!(no_ta.isi_penalty_db(0.75) > 0.0);
    }

    #[test]
    fn one_way_delay_reference() {
        // 30 km ≈ 100 µs.
        let d = TimingAdvance::one_way_delay_ns(30.0);
        assert!((d / 1000.0 - 100.0).abs() < 0.2);
    }
}
