//! Slotted CSMA/CA (802.11 DCF) simulator.
//!
//! The WiFi half of the paper's comparison: stations contend for the medium
//! with binary exponential backoff and carrier sensing. The simulator is
//! slot-accurate (9 µs slots) and supports an arbitrary *sensing graph*, so
//! hidden-terminal topologies (E6) are expressed by marking station pairs
//! that cannot hear each other. Collisions are judged at the access point:
//! any temporal overlap of two uplink transmissions destroys both (no
//! capture effect — conservative, and the standard Bianchi-model
//! assumption).
//!
//! Implemented: saturated and Poisson (CBR-ish) sources, per-station rate
//! selection from SNR, retry limits with frame drop, RTS/CTS omitted
//! deliberately (the paper's argument is about *replacing* carrier sensing
//! with out-of-band coordination, and RTS/CTS only partially mitigates
//! hidden terminals at a constant overhead cost — noted in DESIGN.md).

use dlte_phy::wifi::phy_rate_bps;
use dlte_sim::stats::jain_index;
use dlte_sim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// DCF timing and contention parameters (802.11n OFDM PHY defaults).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DcfConfig {
    /// Slot time, µs.
    pub slot_us: f64,
    /// Short interframe space, µs.
    pub sifs_us: f64,
    /// DIFS, µs (SIFS + 2 slots).
    pub difs_us: f64,
    /// Minimum contention window (slots, power-of-two minus one).
    pub cw_min: u32,
    /// Maximum contention window.
    pub cw_max: u32,
    /// Retransmission attempts before a frame is dropped.
    pub retry_limit: u32,
    /// MSDU payload per frame, bytes.
    pub payload_bytes: u32,
    /// PHY preamble + PLCP header, µs.
    pub preamble_us: f64,
    /// ACK frame duration, µs.
    pub ack_us: f64,
}

impl Default for DcfConfig {
    fn default() -> Self {
        DcfConfig {
            slot_us: 9.0,
            sifs_us: 16.0,
            difs_us: 34.0,
            cw_min: 15,
            cw_max: 1023,
            retry_limit: 7,
            payload_bytes: 1500,
            preamble_us: 40.0,
            ack_us: 44.0,
        }
    }
}

/// One contending station.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StationConfig {
    /// SNR of this station's link to the AP, dB (sets its PHY rate).
    pub snr_db: f64,
    /// Offered load, bits/s; `f64::INFINITY` = saturated.
    pub offered_bps: f64,
}

impl StationConfig {
    pub fn saturated(snr_db: f64) -> Self {
        StationConfig {
            snr_db,
            offered_bps: f64::INFINITY,
        }
    }
}

/// Per-station results.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StationReport {
    pub id: usize,
    /// False if the station's SNR supports no rate at all.
    pub in_range: bool,
    pub goodput_bps: f64,
    pub attempts: u64,
    pub successes: u64,
    pub collisions: u64,
    pub drops: u64,
}

/// Whole-network results.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DcfReport {
    pub stations: Vec<StationReport>,
    pub aggregate_goodput_bps: f64,
    pub jain_fairness: f64,
    /// Fraction of transmission attempts that collided.
    pub collision_rate: f64,
    /// Fraction of wall-clock time the AP's medium carried ≥1 transmission.
    pub airtime_busy_fraction: f64,
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum StState {
    /// No frame queued.
    Idle,
    /// Counting down `backoff` idle slots.
    Contending { backoff: u32 },
    /// On air until `ends_slot` (exclusive).
    Transmitting { ends_slot: u64, collided: bool },
}

struct Station {
    config: StationConfig,
    state: StState,
    cw: u32,
    retries: u32,
    queue: u64, // frames waiting (excluding the one in flight)
    arrival_accum: f64,
    duration_slots: u64,
    frame_bits: u64,
    in_range: bool,
    // stats
    attempts: u64,
    successes: u64,
    collisions: u64,
    drops: u64,
    delivered_bits: u64,
}

/// The DCF simulator.
pub struct DcfSim {
    config: DcfConfig,
    stations: Vec<Station>,
    /// `sense[i][j]` = station i hears station j's transmissions.
    sense: Vec<Vec<bool>>,
    rng: SimRng,
    slot: u64,
    busy_slots: u64,
}

impl DcfSim {
    /// Build a network where every station hears every other (no hidden
    /// terminals).
    pub fn fully_connected(config: DcfConfig, stations: Vec<StationConfig>, rng: SimRng) -> Self {
        let n = stations.len();
        Self::with_sensing(config, stations, vec![vec![true; n]; n], rng)
    }

    /// Build a network with an explicit sensing graph. `sense[i][j]` must be
    /// symmetric for physical plausibility (asserted in debug builds).
    pub fn with_sensing(
        config: DcfConfig,
        stations: Vec<StationConfig>,
        sense: Vec<Vec<bool>>,
        rng: SimRng,
    ) -> Self {
        let n = stations.len();
        assert_eq!(sense.len(), n, "sensing matrix shape");
        for row in &sense {
            assert_eq!(row.len(), n, "sensing matrix shape");
        }
        #[cfg(debug_assertions)]
        for (i, row) in sense.iter().enumerate() {
            for (j, &cell) in row.iter().enumerate() {
                debug_assert_eq!(cell, sense[j][i], "sensing must be symmetric");
            }
        }
        let stations = stations
            .into_iter()
            .map(|cfg| {
                let rate = phy_rate_bps(cfg.snr_db);
                let in_range = rate > 0.0;
                let frame_bits = cfg.payload_bits(config.payload_bytes);
                let duration_slots = if in_range {
                    let tx_us = config.preamble_us
                        + frame_bits as f64 / rate * 1e6
                        + config.sifs_us
                        + config.ack_us
                        + config.difs_us;
                    (tx_us / config.slot_us).ceil() as u64
                } else {
                    0
                };
                Station {
                    config: cfg,
                    state: StState::Idle,
                    cw: config.cw_min,
                    retries: 0,
                    queue: 0,
                    arrival_accum: 0.0,
                    duration_slots,
                    frame_bits,
                    in_range,
                    attempts: 0,
                    successes: 0,
                    collisions: 0,
                    drops: 0,
                    delivered_bits: 0,
                }
            })
            .collect();
        DcfSim {
            config,
            stations,
            sense,
            rng,
            slot: 0,
            busy_slots: 0,
        }
    }

    fn draw_backoff(rng: &mut SimRng, cw: u32) -> u32 {
        rng.uniform_u64(0, cw as u64 + 1) as u32
    }

    /// Advance one slot.
    fn step_slot(&mut self) {
        let slot = self.slot;
        let n = self.stations.len();

        // 1. Frame arrivals (Poisson approximated per slot).
        let slot_s = self.config.slot_us * 1e-6;
        for st in &mut self.stations {
            if !st.in_range {
                continue;
            }
            if st.config.offered_bps.is_finite() {
                st.arrival_accum += st.config.offered_bps * slot_s / st.frame_bits as f64;
                while st.arrival_accum >= 1.0 {
                    st.arrival_accum -= 1.0;
                    st.queue += 1;
                }
            }
        }

        // 2. Note who is on air *entering* this slot.
        let on_air: Vec<usize> = (0..n)
            .filter(|&i| matches!(self.stations[i].state, StState::Transmitting { ends_slot, .. } if ends_slot > slot))
            .collect();
        if !on_air.is_empty() {
            self.busy_slots += 1;
        }

        // 3. Idle stations with traffic enter contention; contenders sense.
        let mut starters: Vec<usize> = Vec::new();
        for i in 0..n {
            let medium_idle = on_air.iter().all(|&j| j == i || !self.sense[i][j]);
            let st = &mut self.stations[i];
            match st.state {
                StState::Idle => {
                    let has_frame =
                        st.in_range && (st.config.offered_bps.is_infinite() || st.queue > 0);
                    if has_frame {
                        if st.config.offered_bps.is_finite() {
                            st.queue -= 1;
                        }
                        let b = Self::draw_backoff(&mut self.rng, st.cw);
                        st.state = StState::Contending { backoff: b };
                    }
                }
                StState::Contending { backoff } => {
                    if medium_idle {
                        if backoff == 0 {
                            starters.push(i);
                        } else {
                            st.state = StState::Contending {
                                backoff: backoff - 1,
                            };
                        }
                    }
                    // Busy medium freezes the counter (DIFS deferral folded
                    // into the frame duration, which includes DIFS).
                }
                StState::Transmitting { .. } => {}
            }
        }

        // 4. Start transmissions; mark collisions at the AP (which hears
        //    everything): overlap with anyone already on air, or ≥2 starters.
        let overlap_with_active = !on_air.is_empty();
        let simultaneous = starters.len() >= 2;
        for &i in &starters {
            let dur = self.stations[i].duration_slots;
            let collided = overlap_with_active || simultaneous;
            self.stations[i].state = StState::Transmitting {
                ends_slot: slot + dur,
                collided,
            };
            self.stations[i].attempts += 1;
            if collided {
                self.stations[i].collisions += 1;
            }
        }
        // A newly started transmission also corrupts anything already on air.
        if !starters.is_empty() {
            for &j in &on_air {
                let st = &mut self.stations[j];
                if let StState::Transmitting { collided, .. } = &mut st.state {
                    if !*collided {
                        *collided = true;
                        st.collisions += 1;
                    }
                }
            }
        }

        // 5. Complete transmissions ending at the next slot boundary.
        for i in 0..n {
            if let StState::Transmitting {
                ends_slot,
                collided,
            } = self.stations[i].state
            {
                if ends_slot <= slot + 1 {
                    let st = &mut self.stations[i];
                    if collided {
                        st.retries += 1;
                        if st.retries > self.config.retry_limit {
                            st.drops += 1;
                            st.retries = 0;
                            st.cw = self.config.cw_min;
                            st.state = StState::Idle;
                        } else {
                            st.cw = ((st.cw + 1) * 2 - 1).min(self.config.cw_max);
                            let b = Self::draw_backoff(&mut self.rng, st.cw);
                            st.state = StState::Contending { backoff: b };
                        }
                    } else {
                        st.successes += 1;
                        st.delivered_bits += st.frame_bits;
                        st.retries = 0;
                        st.cw = self.config.cw_min;
                        st.state = StState::Idle;
                    }
                }
            }
        }

        self.slot += 1;
    }

    /// Run for `duration` of simulated time and report.
    pub fn run(&mut self, duration: SimDuration) -> DcfReport {
        let slots = (duration.as_secs_f64() / (self.config.slot_us * 1e-6)).round() as u64;
        for _ in 0..slots {
            self.step_slot();
        }
        // One DCF slot = one unit of work for the run instrumentation.
        dlte_sim::report::credit(slots, duration);
        let secs = duration.as_secs_f64().max(1e-12);
        let stations: Vec<StationReport> = self
            .stations
            .iter()
            .enumerate()
            .map(|(id, st)| StationReport {
                id,
                in_range: st.in_range,
                goodput_bps: st.delivered_bits as f64 / secs,
                attempts: st.attempts,
                successes: st.successes,
                collisions: st.collisions,
                drops: st.drops,
            })
            .collect();
        let rates: Vec<f64> = stations.iter().map(|s| s.goodput_bps).collect();
        let attempts: u64 = stations.iter().map(|s| s.attempts).sum();
        let collisions: u64 = stations.iter().map(|s| s.collisions).sum();
        DcfReport {
            aggregate_goodput_bps: rates.iter().sum(),
            jain_fairness: jain_index(&rates),
            collision_rate: if attempts > 0 {
                collisions as f64 / attempts as f64
            } else {
                0.0
            },
            airtime_busy_fraction: self.busy_slots as f64 / self.slot.max(1) as f64,
            stations,
        }
    }
}

impl StationConfig {
    fn payload_bits(&self, payload_bytes: u32) -> u64 {
        // MAC header + payload (28-byte MAC overhead folded in).
        (payload_bytes as u64 + 28) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(stations: Vec<StationConfig>) -> DcfSim {
        DcfSim::fully_connected(DcfConfig::default(), stations, SimRng::new(7))
    }

    #[test]
    fn single_saturated_station_reaches_mac_efficiency() {
        let mut s = sim(vec![StationConfig::saturated(30.0)]);
        let r = s.run(SimDuration::from_secs(2));
        // MCS7 PHY = 65 Mbit/s; DCF overhead (preamble/ACK/DIFS/backoff)
        // should leave roughly 55–70% goodput at 1500 B frames.
        let g = r.stations[0].goodput_bps;
        assert!((27e6..40e6).contains(&g), "goodput {g}");
        assert_eq!(r.collision_rate, 0.0, "one station cannot collide");
        assert!(r.airtime_busy_fraction > 0.7);
    }

    #[test]
    fn out_of_range_station_sends_nothing() {
        let mut s = sim(vec![StationConfig::saturated(-5.0)]);
        let r = s.run(SimDuration::from_secs(1));
        assert!(!r.stations[0].in_range);
        assert_eq!(r.stations[0].goodput_bps, 0.0);
        assert_eq!(r.stations[0].attempts, 0);
    }

    #[test]
    fn two_visible_stations_share_fairly() {
        let mut s = sim(vec![
            StationConfig::saturated(30.0),
            StationConfig::saturated(30.0),
        ]);
        let r = s.run(SimDuration::from_secs(2));
        assert!(r.jain_fairness > 0.98, "jain {}", r.jain_fairness);
        assert!(r.collision_rate < 0.15, "visible stations rarely collide");
        // Aggregate stays near the single-station figure (contention costs a
        // little).
        assert!(r.aggregate_goodput_bps > 30e6);
    }

    #[test]
    fn contention_overhead_grows_with_stations() {
        let agg = |n: usize| {
            let mut s = sim((0..n).map(|_| StationConfig::saturated(30.0)).collect());
            s.run(SimDuration::from_secs(1)).aggregate_goodput_bps
        };
        let one = agg(1);
        let twenty = agg(20);
        assert!(
            twenty < one,
            "20 stations {twenty} should underperform 1 station {one}"
        );
    }

    #[test]
    fn collision_rate_grows_with_stations() {
        let rate = |n: usize| {
            let mut s = sim((0..n).map(|_| StationConfig::saturated(30.0)).collect());
            s.run(SimDuration::from_secs(1)).collision_rate
        };
        assert!(rate(2) < rate(10));
        assert!(rate(10) < rate(40));
    }

    #[test]
    fn hidden_terminals_collapse_goodput_paper_e6() {
        // Two stations that cannot hear each other, both saturated: their
        // transmissions overlap almost always (the classic hidden-terminal
        // catastrophe).
        let cfg = DcfConfig::default();
        let stations = vec![
            StationConfig::saturated(25.0),
            StationConfig::saturated(25.0),
        ];
        let mut hidden_sense = vec![vec![true; 2]; 2];
        hidden_sense[0][1] = false;
        hidden_sense[1][0] = false;
        let mut hidden = DcfSim::with_sensing(cfg, stations.clone(), hidden_sense, SimRng::new(9));
        let mut visible = DcfSim::fully_connected(cfg, stations, SimRng::new(9));
        let rh = hidden.run(SimDuration::from_secs(2));
        let rv = visible.run(SimDuration::from_secs(2));
        // Binary exponential backoff is hidden-terminal CSMA's escape
        // valve: after repeated collisions the contention windows balloon
        // past the frame length, so the per-attempt collision rate settles
        // near 1/3 rather than the naive near-1. The goodput and drop
        // damage remains substantial.
        assert!(
            rh.collision_rate > 3.0 * rv.collision_rate,
            "hidden collision rate {} vs visible {}",
            rh.collision_rate,
            rv.collision_rate
        );
        assert!(
            rh.aggregate_goodput_bps < 0.75 * rv.aggregate_goodput_bps,
            "hidden {} vs visible {}",
            rh.aggregate_goodput_bps,
            rv.aggregate_goodput_bps
        );
        assert!(rh.stations[0].drops > 0, "hidden pairs drop frames");
    }

    #[test]
    fn unsaturated_station_gets_its_offered_load() {
        let mut s = sim(vec![StationConfig {
            snr_db: 30.0,
            offered_bps: 5e6,
        }]);
        let r = s.run(SimDuration::from_secs(2));
        let g = r.stations[0].goodput_bps;
        // Delivered ≈ offered (including the 28-byte MAC header bonus).
        assert!((g / 5e6 - 1.0).abs() < 0.1, "goodput {g}");
        assert!(r.airtime_busy_fraction < 0.25);
    }

    #[test]
    fn slow_station_drags_airtime_anomaly() {
        // The famous 802.11 performance anomaly: one slow station reduces
        // the fast station's goodput far below half its solo rate, because
        // DCF shares *frames*, not airtime.
        let mut both_fast = sim(vec![
            StationConfig::saturated(30.0),
            StationConfig::saturated(30.0),
        ]);
        let mut mixed = sim(vec![
            StationConfig::saturated(30.0),
            StationConfig::saturated(5.0), // MCS0 at 6.5 Mbit/s
        ]);
        let rf = both_fast.run(SimDuration::from_secs(2));
        let rm = mixed.run(SimDuration::from_secs(2));
        let fast_with_fast = rf.stations[0].goodput_bps;
        let fast_with_slow = rm.stations[0].goodput_bps;
        assert!(
            fast_with_slow < 0.5 * fast_with_fast,
            "anomaly absent: {fast_with_slow} vs {fast_with_fast}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut s = DcfSim::fully_connected(
                DcfConfig::default(),
                vec![StationConfig::saturated(20.0); 5],
                SimRng::new(seed),
            );
            s.run(SimDuration::from_millis(500)).aggregate_goodput_bps
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }
}
