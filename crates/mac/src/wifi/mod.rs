//! The contention-based 802.11 MAC.

pub mod dcf;
