//! Property-based tests for MAC invariants: schedulers never over-allocate,
//! never serve idle UEs, and the DCF simulator conserves frames.

use dlte_mac::lte::grid::PrbGrid;
use dlte_mac::lte::scheduler::{SchedUe, SchedulerKind};
use dlte_mac::lte::timing_advance::TimingAdvance;
use dlte_mac::wifi::dcf::{DcfConfig, DcfSim, StationConfig};
use dlte_sim::{SimDuration, SimRng};
use proptest::prelude::*;

fn arb_ues(max: usize) -> impl Strategy<Value = Vec<SchedUe>> {
    prop::collection::vec(
        (10.0f64..1000.0, 0u64..100_000, 0.0f64..10_000.0).prop_map(
            |(bits_per_prb, backlog, avg)| SchedUe {
                id: 0, // re-assigned below
                bits_per_prb,
                backlog_bits: backlog,
                avg_rate: avg,
            },
        ),
        0..max,
    )
    .prop_map(|mut v| {
        for (i, u) in v.iter_mut().enumerate() {
            u.id = i;
        }
        v
    })
}

fn arb_kind() -> impl Strategy<Value = SchedulerKind> {
    prop_oneof![
        Just(SchedulerKind::RoundRobin),
        Just(SchedulerKind::ProportionalFair),
        Just(SchedulerKind::MaxCi),
    ]
}

proptest! {
    /// No scheduler ever allocates more PRBs than the grid holds, serves an
    /// idle UE, or exceeds a UE's demand by more than one PRB of rounding.
    #[test]
    fn schedulers_respect_grid_and_demand(
        kind in arb_kind(),
        ues in arb_ues(12),
        n_prb in 1u32..110,
        mask in 0u32..50,
        tti in 0u64..20,
    ) {
        let mask = mask.min(n_prb);
        let mut grid = PrbGrid::new(n_prb, mask);
        let mut s = kind.build();
        s.schedule(tti, &ues, &mut grid);
        let total: u32 = grid.allocations().iter().map(|a| a.n_prb).sum();
        prop_assert!(total <= n_prb - mask, "over-allocated {total}");
        for ue in &ues {
            let got: u32 = grid
                .allocations()
                .iter()
                .filter(|a| a.ue == ue.id)
                .map(|a| a.n_prb)
                .sum();
            if ue.backlog_bits == 0 || ue.bits_per_prb <= 0.0 {
                prop_assert_eq!(got, 0, "served idle ue {}", ue.id);
            } else if ue.backlog_bits != u64::MAX {
                let needed =
                    (ue.backlog_bits as f64 / ue.bits_per_prb).ceil() as u32;
                prop_assert!(got <= needed, "ue {} got {got} needed {needed}", ue.id);
            }
        }
    }

    /// With saturated, equal-quality UEs, every scheduler is work-conserving
    /// (fills the whole unmasked grid) as long as anyone wants PRBs.
    #[test]
    fn schedulers_work_conserving_under_saturation(
        kind in arb_kind(),
        n_ues in 1usize..10,
        n_prb in 6u32..110,
    ) {
        let ues: Vec<SchedUe> = (0..n_ues)
            .map(|i| SchedUe {
                id: i,
                bits_per_prb: 100.0,
                backlog_bits: u64::MAX,
                avg_rate: 1.0,
            })
            .collect();
        let mut grid = PrbGrid::new(n_prb, 0);
        let mut s = kind.build();
        s.schedule(0, &ues, &mut grid);
        prop_assert_eq!(grid.available(), 0, "{:?} left grid idle", kind);
    }

    /// Round-robin over many TTIs splits a saturated population near-evenly.
    #[test]
    fn round_robin_long_run_fairness(n_ues in 2usize..8) {
        let ues: Vec<SchedUe> = (0..n_ues)
            .map(|i| SchedUe {
                id: i,
                bits_per_prb: 100.0,
                backlog_bits: u64::MAX,
                avg_rate: 0.0,
            })
            .collect();
        let mut s = SchedulerKind::RoundRobin.build();
        let mut totals = vec![0u64; n_ues];
        for tti in 0..100 {
            let mut grid = PrbGrid::new(50, 0);
            s.schedule(tti, &ues, &mut grid);
            for a in grid.allocations() {
                totals[a.ue] += a.n_prb as u64;
            }
        }
        let min = *totals.iter().min().unwrap() as f64;
        let max = *totals.iter().max().unwrap() as f64;
        prop_assert!(max / min < 1.05, "RR drift: {totals:?}");
    }

    /// Timing advance residual is always within half a TA step inside range,
    /// and the ISI penalty is monotone in distance without TA.
    #[test]
    fn timing_advance_invariants(d in 0.01f64..99.0) {
        if let Some(ta) = TimingAdvance::for_distance(d) {
            prop_assert!(ta.residual_offset_ns(d) <= 261.0, "residual at {d} km");
            prop_assert_eq!(ta.isi_penalty_db(d), 0.0);
        }
        let no_ta = TimingAdvance::disabled();
        let p1 = no_ta.isi_penalty_db(d);
        let p2 = no_ta.isi_penalty_db(d + 1.0);
        prop_assert!(p2 + 1e-12 >= p1, "penalty not monotone at {d}");
        prop_assert!(p1 >= 0.0 && p1.is_finite());
    }

    /// DCF conserves frames: successes + collisions ≤ attempts, drops only
    /// after collisions, and goodput only from successes.
    #[test]
    fn dcf_conservation(
        n in 1usize..10,
        snr in 5.0f64..35.0,
        seed in 0u64..1000,
    ) {
        let mut sim = DcfSim::fully_connected(
            DcfConfig::default(),
            vec![StationConfig::saturated(snr); n],
            SimRng::new(seed),
        );
        let r = sim.run(SimDuration::from_millis(300));
        for st in &r.stations {
            prop_assert!(st.successes + st.collisions <= st.attempts + 1);
            prop_assert!(st.drops <= st.collisions);
            let frame_bits = (1500 + 28) * 8;
            prop_assert_eq!(
                (st.goodput_bps * 0.3).round() as u64,
                st.successes * frame_bits
            );
        }
        prop_assert!(r.airtime_busy_fraction <= 1.0);
        prop_assert!((0.0..=1.0).contains(&r.collision_rate));
    }
}
