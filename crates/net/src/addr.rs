//! IPv4-style addressing.
//!
//! dLTE's mobility story (§4.2) hinges on addresses: clients get a *new
//! publicly routable IP* at every AP instead of a tunneled stable one. The
//! substrate therefore needs real prefixes, pools and longest-prefix
//! matching, not opaque node ids.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 32-bit network address, rendered dotted-quad.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Addr(pub u32);

impl Addr {
    /// Build from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Addr {
        Addr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// The unspecified address (0.0.0.0), used as "no address yet".
    pub const UNSPECIFIED: Addr = Addr(0);

    pub fn is_unspecified(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{}.{}.{}",
            (self.0 >> 24) & 0xff,
            (self.0 >> 16) & 0xff,
            (self.0 >> 8) & 0xff,
            self.0 & 0xff
        )
    }
}

/// A CIDR prefix.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Prefix {
    pub addr: Addr,
    pub len: u8,
}

impl Prefix {
    pub fn new(addr: Addr, len: u8) -> Prefix {
        assert!(len <= 32, "prefix length {len} > 32");
        Prefix {
            addr: Addr(addr.0 & Self::mask_of(len)),
            len,
        }
    }

    /// The default route 0.0.0.0/0.
    pub const DEFAULT: Prefix = Prefix {
        addr: Addr(0),
        len: 0,
    };

    pub(crate) fn mask_of(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len as u32)
        }
    }

    pub fn mask(&self) -> u32 {
        Self::mask_of(self.len)
    }

    pub fn contains(&self, a: Addr) -> bool {
        (a.0 & self.mask()) == self.addr.0
    }

    /// Number of host addresses in the prefix (saturating).
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len as u32)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

/// A sequential allocator over a prefix — the address pool a P-GW (or a dLTE
/// local core) assigns client addresses from. Released addresses are
/// recycled LIFO.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AddrPool {
    prefix: Prefix,
    next_offset: u64,
    free: Vec<Addr>,
}

impl AddrPool {
    /// Pool over `prefix`, skipping the network address (offset 0).
    pub fn new(prefix: Prefix) -> AddrPool {
        AddrPool {
            prefix,
            next_offset: 1,
            free: Vec::new(),
        }
    }

    pub fn prefix(&self) -> Prefix {
        self.prefix
    }

    /// Allocate the next address; `None` when exhausted.
    pub fn alloc(&mut self) -> Option<Addr> {
        if let Some(a) = self.free.pop() {
            return Some(a);
        }
        if self.next_offset >= self.prefix.size() {
            return None;
        }
        let a = Addr(self.prefix.addr.0 + self.next_offset as u32);
        self.next_offset += 1;
        Some(a)
    }

    /// Return an address to the pool. Addresses outside the prefix are
    /// rejected (debug assert) and ignored.
    pub fn release(&mut self, a: Addr) {
        debug_assert!(self.prefix.contains(a), "release of foreign address {a}");
        if self.prefix.contains(a) {
            self.free.push(a);
        }
    }

    /// Addresses currently allocatable without recycling.
    pub fn remaining(&self) -> u64 {
        self.prefix.size() - self.next_offset + self.free.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trip() {
        let a = Addr::new(10, 42, 0, 7);
        assert_eq!(a.to_string(), "10.42.0.7");
        assert_eq!(Addr::UNSPECIFIED.to_string(), "0.0.0.0");
        assert!(Addr::UNSPECIFIED.is_unspecified());
    }

    #[test]
    fn prefix_contains() {
        let p = Prefix::new(Addr::new(10, 1, 2, 0), 24);
        assert!(p.contains(Addr::new(10, 1, 2, 200)));
        assert!(!p.contains(Addr::new(10, 1, 3, 1)));
        assert_eq!(p.size(), 256);
        assert_eq!(p.to_string(), "10.1.2.0/24");
    }

    #[test]
    fn prefix_normalizes_host_bits() {
        let p = Prefix::new(Addr::new(10, 1, 2, 99), 24);
        assert_eq!(p.addr, Addr::new(10, 1, 2, 0));
    }

    #[test]
    fn default_route_matches_everything() {
        assert!(Prefix::DEFAULT.contains(Addr::new(1, 2, 3, 4)));
        assert!(Prefix::DEFAULT.contains(Addr::new(255, 255, 255, 255)));
        assert_eq!(Prefix::DEFAULT.mask(), 0);
    }

    #[test]
    fn pool_allocates_and_recycles() {
        let mut pool = AddrPool::new(Prefix::new(Addr::new(100, 64, 0, 0), 30));
        // /30 has 4 addresses, offset 0 skipped → 3 allocatable.
        let a1 = pool.alloc().unwrap();
        let a2 = pool.alloc().unwrap();
        let a3 = pool.alloc().unwrap();
        assert_eq!(pool.alloc(), None, "pool exhausted");
        assert_ne!(a1, a2);
        assert_ne!(a2, a3);
        pool.release(a2);
        assert_eq!(pool.alloc(), Some(a2), "recycled");
        assert_eq!(pool.alloc(), None);
    }

    #[test]
    fn pool_remaining() {
        let mut pool = AddrPool::new(Prefix::new(Addr::new(10, 0, 0, 0), 24));
        assert_eq!(pool.remaining(), 255);
        let a = pool.alloc().unwrap();
        assert_eq!(pool.remaining(), 254);
        pool.release(a);
        assert_eq!(pool.remaining(), 255);
    }

    #[test]
    #[should_panic(expected = "prefix length")]
    fn bad_prefix_len_panics() {
        Prefix::new(Addr::new(1, 2, 3, 4), 33);
    }
}
