//! A fast, deterministic hasher for the fabric's hot lookup maps.
//!
//! The per-packet maps — FIB prefix buckets, `owns()` sets, TEID and IMSI
//! session indexes — are probed several times per forwarded packet per hop,
//! and their keys are small integers under the simulation's control, so
//! std's DoS-resistant SipHash is pure overhead there. This is the classic
//! Firefox/rustc "FxHash" multiply-rotate mix: one rotate, one xor, one
//! multiply per word. It is also deterministic across runs (std's
//! `RandomState` is not), which means swapping it in can only make map
//! iteration *more* reproducible — and the workspace already requires that
//! no observable behavior depend on map iteration order, since goldens are
//! byte-compared across processes.
//!
//! Not for untrusted keys: no seeding, trivially collidable. Keep it inside
//! the simulator.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-word-at-a-time multiplicative hasher (the rustc/Firefox FxHash mix).
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_usable_as_map_hasher() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        m.insert(0xFFFF_FFFF, "max");
        assert_eq!(m.get(&7), Some(&"seven"));
        assert_eq!(m.get(&0xFFFF_FFFF), Some(&"max"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(42));
        assert!(!s.insert(42));
        // Same key, same hash, every time (no per-instance random state).
        let hash = |n: u64| {
            let mut h = FxHasher::default();
            h.write_u64(n);
            h.finish()
        };
        assert_eq!(hash(123), hash(123));
        assert_ne!(hash(123), hash(124), "distinct keys should separate");
    }
}
