//! GTP-U tunnel encapsulation.
//!
//! In centralized LTE, *"all packets are tunneled to the cellular core"*
//! (§2.1): the eNodeB wraps every user packet in GTP-U over UDP/IP toward
//! the S-GW, which re-wraps toward the P-GW, which finally forwards native
//! IP. dLTE terminates the tunnels at the AP instead (§4.1). This module
//! provides the encapsulation mechanics both architectures share: pushing a
//! tunnel rewrites the outer addresses and adds header overhead; popping
//! restores the inner packet.

use crate::addr::Addr;
use crate::packet::{Packet, TunnelHeader};
use dlte_sim::SimDuration;

/// GTP-U encapsulation overhead: outer IPv4 (20) + UDP (8) + GTP-U (8) bytes.
pub const GTP_OVERHEAD_BYTES: u32 = 36;

/// Wire size of a GTP-U echo request/response (outer headers + empty body).
pub const GTP_ECHO_BYTES: u32 = 40;

/// Wire size of a GTP-U error indication (headers + TEID/peer-address IEs).
pub const GTP_ERROR_BYTES: u32 = 60;

/// Tunnel endpoint identifier.
pub type Teid = u32;

/// GTP-U path-management echo (TS 29.281 §7.2): carried as a control
/// payload between tunnel endpoints. The restart counter lets a peer detect
/// that the other end rebooted (and therefore lost all bearer state) even
/// when no echo was ever missed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GtpEcho {
    pub seq: u32,
    pub restart_counter: u32,
    pub is_request: bool,
}

/// GTP-U error indication (TS 29.281 §7.3): sent back when a G-PDU arrives
/// for a TEID with no context — tells the sender to tear the bearer down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GtpErrorIndication {
    pub teid: Teid,
}

/// What a [`PathMonitor`] concluded from an echo response (or its absence).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathEvent {
    /// Peer responded and its restart counter is unchanged.
    Alive,
    /// Peer responded with a *new* restart counter: it crashed and came
    /// back, so every bearer it held is gone.
    PeerRestarted,
    /// Too many consecutive echo requests went unanswered.
    PeerDead,
}

/// Echo-driven liveness tracking of one GTP-U peer.
///
/// Pure state machine: the owner calls [`PathMonitor::tick`] on a periodic
/// timer (sending an echo request when one is returned) and
/// [`PathMonitor::on_response`] when the peer answers. Detection of death
/// happens inside `tick` — `max_misses` outstanding requests without an
/// answer flips the path dead; any later response revives it.
#[derive(Clone, Debug)]
pub struct PathMonitor {
    pub peer: Addr,
    pub interval: SimDuration,
    pub max_misses: u32,
    outstanding: u32,
    next_seq: u32,
    last_peer_restart: Option<u32>,
    dead: bool,
    /// Echo responses received (stat).
    pub responses: u64,
}

impl PathMonitor {
    pub fn new(peer: Addr, interval: SimDuration, max_misses: u32) -> PathMonitor {
        PathMonitor {
            peer,
            interval,
            max_misses,
            outstanding: 0,
            next_seq: 0,
            last_peer_restart: None,
            dead: false,
            responses: 0,
        }
    }

    /// Whether the path is currently considered dead.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Periodic tick: returns the echo request to send and, when the miss
    /// threshold is crossed *by this tick*, the `PeerDead` edge event.
    pub fn tick(&mut self, my_restart_counter: u32) -> (GtpEcho, Option<PathEvent>) {
        let newly_dead = if self.outstanding >= self.max_misses && !self.dead {
            self.dead = true;
            Some(PathEvent::PeerDead)
        } else {
            None
        };
        self.outstanding += 1;
        let echo = GtpEcho {
            seq: self.next_seq,
            restart_counter: my_restart_counter,
            is_request: true,
        };
        self.next_seq += 1;
        (echo, newly_dead)
    }

    /// The peer answered an echo. Returns `PeerRestarted` on a restart
    /// counter change, otherwise `Alive`. A response always revives a dead
    /// path (the restart event carries the "state is gone" information).
    pub fn on_response(&mut self, echo: GtpEcho) -> PathEvent {
        debug_assert!(!echo.is_request);
        self.outstanding = 0;
        self.dead = false;
        self.responses += 1;
        let restarted = match self.last_peer_restart {
            Some(prev) => prev != echo.restart_counter,
            None => false,
        };
        self.last_peer_restart = Some(echo.restart_counter);
        if restarted {
            PathEvent::PeerRestarted
        } else {
            PathEvent::Alive
        }
    }
}

/// Encapsulate `packet` into a GTP-U tunnel from `outer_src` to `outer_dst`.
/// The original addressing is preserved on the tunnel stack.
pub fn encapsulate(mut packet: Packet, teid: Teid, outer_src: Addr, outer_dst: Addr) -> Packet {
    packet.tunnels.push(TunnelHeader {
        teid,
        inner_src: packet.src,
        inner_dst: packet.dst,
    });
    packet.src = outer_src;
    packet.dst = outer_dst;
    packet.size_bytes += GTP_OVERHEAD_BYTES;
    packet
}

/// Decapsulate the outermost tunnel, restoring inner addressing. Returns
/// `Err(packet)` unchanged if the packet is not tunneled or the TEID does
/// not match (misdelivered tunnel traffic must not be silently unwrapped).
// The Err variant hands the whole packet back by design — the caller must
// keep forwarding it, and boxing here would put an allocation on the
// zero-copy path this module exists to avoid.
#[allow(clippy::result_large_err)]
pub fn decapsulate(mut packet: Packet, expected_teid: Option<Teid>) -> Result<Packet, Packet> {
    match packet.tunnels.last() {
        Some(h) if expected_teid.is_none() || expected_teid == Some(h.teid) => {
            let h = packet.tunnels.pop().expect("checked above");
            packet.src = h.inner_src;
            packet.dst = h.inner_dst;
            packet.size_bytes = packet.size_bytes.saturating_sub(GTP_OVERHEAD_BYTES);
            Ok(packet)
        }
        _ => Err(packet),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlte_sim::SimTime;

    fn user_packet() -> Packet {
        Packet::new(
            1,
            Addr::new(100, 64, 0, 5), // UE
            Addr::new(8, 8, 8, 8),    // Internet host
            1200,
            SimTime::ZERO,
        )
    }

    #[test]
    fn encap_rewrites_and_grows() {
        let enb = Addr::new(10, 1, 0, 1);
        let sgw = Addr::new(10, 2, 0, 1);
        let p = encapsulate(user_packet(), 77, enb, sgw);
        assert_eq!(p.src, enb);
        assert_eq!(p.dst, sgw);
        assert_eq!(p.size_bytes, 1200 + GTP_OVERHEAD_BYTES);
        assert!(p.is_tunneled());
        assert_eq!(p.tunnels[0].teid, 77);
    }

    #[test]
    fn decap_restores_exactly() {
        let enb = Addr::new(10, 1, 0, 1);
        let sgw = Addr::new(10, 2, 0, 1);
        let original = user_packet();
        let p = encapsulate(original.clone(), 77, enb, sgw);
        let back = decapsulate(p, Some(77)).expect("teid matches");
        assert_eq!(back.src, original.src);
        assert_eq!(back.dst, original.dst);
        assert_eq!(back.size_bytes, original.size_bytes);
        assert!(!back.is_tunneled());
    }

    #[test]
    fn nested_tunnels_pop_in_order() {
        // eNB → S-GW (teid 1), then S-GW → P-GW (teid 2): S5/S8 stacking.
        let p = encapsulate(
            user_packet(),
            1,
            Addr::new(10, 1, 0, 1),
            Addr::new(10, 2, 0, 1),
        );
        let p = encapsulate(p, 2, Addr::new(10, 2, 0, 1), Addr::new(10, 3, 0, 1));
        assert_eq!(p.size_bytes, 1200 + 2 * GTP_OVERHEAD_BYTES);
        let p = decapsulate(p, Some(2)).expect("outer");
        assert_eq!(p.dst, Addr::new(10, 2, 0, 1), "back to S1 addressing");
        let p = decapsulate(p, Some(1)).expect("inner");
        assert_eq!(p.dst, Addr::new(8, 8, 8, 8));
    }

    #[test]
    fn wrong_teid_rejected() {
        let p = encapsulate(
            user_packet(),
            77,
            Addr::new(10, 1, 0, 1),
            Addr::new(10, 2, 0, 1),
        );
        let err = decapsulate(p, Some(78)).expect_err("teid mismatch");
        assert!(err.is_tunneled(), "packet unchanged");
    }

    #[test]
    fn untunneled_packet_rejected() {
        let err = decapsulate(user_packet(), None).expect_err("not tunneled");
        assert!(!err.is_tunneled());
    }

    #[test]
    fn wildcard_teid_accepts_any() {
        let p = encapsulate(
            user_packet(),
            123,
            Addr::new(10, 1, 0, 1),
            Addr::new(10, 2, 0, 1),
        );
        assert!(decapsulate(p, None).is_ok());
    }

    fn reply_to(req: GtpEcho, restart_counter: u32) -> GtpEcho {
        GtpEcho {
            seq: req.seq,
            restart_counter,
            is_request: false,
        }
    }

    #[test]
    fn path_monitor_stays_alive_while_answered() {
        let mut m = PathMonitor::new(Addr::new(10, 2, 0, 1), SimDuration::from_secs(2), 3);
        for k in 0..10 {
            let (req, edge) = m.tick(7);
            assert_eq!(req.seq, k);
            assert!(req.is_request);
            assert_eq!(edge, None);
            assert_eq!(m.on_response(reply_to(req, 42)), PathEvent::Alive);
            assert!(!m.is_dead());
        }
        assert_eq!(m.responses, 10);
    }

    #[test]
    fn path_monitor_declares_death_after_misses() {
        let mut m = PathMonitor::new(Addr::new(10, 2, 0, 1), SimDuration::from_secs(2), 3);
        // Three unanswered requests outstanding → the 4th tick reports death
        // exactly once.
        assert_eq!(m.tick(0).1, None);
        assert_eq!(m.tick(0).1, None);
        assert_eq!(m.tick(0).1, None);
        assert!(!m.is_dead());
        assert_eq!(m.tick(0).1, Some(PathEvent::PeerDead));
        assert!(m.is_dead());
        assert_eq!(m.tick(0).1, None, "death reported only on the edge");
        // A late response revives the path.
        let (req, _) = m.tick(0);
        assert_eq!(m.on_response(reply_to(req, 1)), PathEvent::Alive);
        assert!(!m.is_dead());
    }

    #[test]
    fn path_monitor_detects_peer_restart() {
        let mut m = PathMonitor::new(Addr::new(10, 3, 0, 1), SimDuration::from_secs(2), 3);
        let (req, _) = m.tick(0);
        assert_eq!(m.on_response(reply_to(req, 5)), PathEvent::Alive);
        let (req, _) = m.tick(0);
        assert_eq!(m.on_response(reply_to(req, 5)), PathEvent::Alive);
        let (req, _) = m.tick(0);
        assert_eq!(m.on_response(reply_to(req, 6)), PathEvent::PeerRestarted);
        let (req, _) = m.tick(0);
        assert_eq!(
            m.on_response(reply_to(req, 6)),
            PathEvent::Alive,
            "restart reported once"
        );
    }
}
