//! GTP-U tunnel encapsulation.
//!
//! In centralized LTE, *"all packets are tunneled to the cellular core"*
//! (§2.1): the eNodeB wraps every user packet in GTP-U over UDP/IP toward
//! the S-GW, which re-wraps toward the P-GW, which finally forwards native
//! IP. dLTE terminates the tunnels at the AP instead (§4.1). This module
//! provides the encapsulation mechanics both architectures share: pushing a
//! tunnel rewrites the outer addresses and adds header overhead; popping
//! restores the inner packet.

use crate::addr::Addr;
use crate::packet::{Packet, TunnelHeader};

/// GTP-U encapsulation overhead: outer IPv4 (20) + UDP (8) + GTP-U (8) bytes.
pub const GTP_OVERHEAD_BYTES: u32 = 36;

/// Tunnel endpoint identifier.
pub type Teid = u32;

/// Encapsulate `packet` into a GTP-U tunnel from `outer_src` to `outer_dst`.
/// The original addressing is preserved on the tunnel stack.
pub fn encapsulate(mut packet: Packet, teid: Teid, outer_src: Addr, outer_dst: Addr) -> Packet {
    packet.tunnels.push(TunnelHeader {
        teid,
        inner_src: packet.src,
        inner_dst: packet.dst,
    });
    packet.src = outer_src;
    packet.dst = outer_dst;
    packet.size_bytes += GTP_OVERHEAD_BYTES;
    packet
}

/// Decapsulate the outermost tunnel, restoring inner addressing. Returns
/// `Err(packet)` unchanged if the packet is not tunneled or the TEID does
/// not match (misdelivered tunnel traffic must not be silently unwrapped).
pub fn decapsulate(mut packet: Packet, expected_teid: Option<Teid>) -> Result<Packet, Packet> {
    match packet.tunnels.last() {
        Some(h) if expected_teid.is_none() || expected_teid == Some(h.teid) => {
            let h = packet.tunnels.pop().expect("checked above");
            packet.src = h.inner_src;
            packet.dst = h.inner_dst;
            packet.size_bytes = packet.size_bytes.saturating_sub(GTP_OVERHEAD_BYTES);
            Ok(packet)
        }
        _ => Err(packet),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlte_sim::SimTime;

    fn user_packet() -> Packet {
        Packet::new(
            1,
            Addr::new(100, 64, 0, 5), // UE
            Addr::new(8, 8, 8, 8),    // Internet host
            1200,
            SimTime::ZERO,
        )
    }

    #[test]
    fn encap_rewrites_and_grows() {
        let enb = Addr::new(10, 1, 0, 1);
        let sgw = Addr::new(10, 2, 0, 1);
        let p = encapsulate(user_packet(), 77, enb, sgw);
        assert_eq!(p.src, enb);
        assert_eq!(p.dst, sgw);
        assert_eq!(p.size_bytes, 1200 + GTP_OVERHEAD_BYTES);
        assert!(p.is_tunneled());
        assert_eq!(p.tunnels[0].teid, 77);
    }

    #[test]
    fn decap_restores_exactly() {
        let enb = Addr::new(10, 1, 0, 1);
        let sgw = Addr::new(10, 2, 0, 1);
        let original = user_packet();
        let p = encapsulate(original.clone(), 77, enb, sgw);
        let back = decapsulate(p, Some(77)).expect("teid matches");
        assert_eq!(back.src, original.src);
        assert_eq!(back.dst, original.dst);
        assert_eq!(back.size_bytes, original.size_bytes);
        assert!(!back.is_tunneled());
    }

    #[test]
    fn nested_tunnels_pop_in_order() {
        // eNB → S-GW (teid 1), then S-GW → P-GW (teid 2): S5/S8 stacking.
        let p = encapsulate(
            user_packet(),
            1,
            Addr::new(10, 1, 0, 1),
            Addr::new(10, 2, 0, 1),
        );
        let p = encapsulate(p, 2, Addr::new(10, 2, 0, 1), Addr::new(10, 3, 0, 1));
        assert_eq!(p.size_bytes, 1200 + 2 * GTP_OVERHEAD_BYTES);
        let p = decapsulate(p, Some(2)).expect("outer");
        assert_eq!(p.dst, Addr::new(10, 2, 0, 1), "back to S1 addressing");
        let p = decapsulate(p, Some(1)).expect("inner");
        assert_eq!(p.dst, Addr::new(8, 8, 8, 8));
    }

    #[test]
    fn wrong_teid_rejected() {
        let p = encapsulate(
            user_packet(),
            77,
            Addr::new(10, 1, 0, 1),
            Addr::new(10, 2, 0, 1),
        );
        let err = decapsulate(p, Some(78)).expect_err("teid mismatch");
        assert!(err.is_tunneled(), "packet unchanged");
    }

    #[test]
    fn untunneled_packet_rejected() {
        let err = decapsulate(user_packet(), None).expect_err("not tunneled");
        assert!(!err.is_tunneled());
    }

    #[test]
    fn wildcard_teid_accepts_any() {
        let p = encapsulate(
            user_packet(),
            123,
            Addr::new(10, 1, 0, 1),
            Addr::new(10, 2, 0, 1),
        );
        assert!(decapsulate(p, None).is_ok());
    }
}
