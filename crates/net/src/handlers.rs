//! Stock node handlers: traffic sources, sinks and echo servers.
//!
//! These are the workload generators of the experiment harness — CBR and
//! Poisson flow sources, a counting sink, and an echo responder for RTT
//! measurement (standing in for the OTT services dLTE leans on).

use crate::addr::Addr;
use crate::node::{NodeCtx, NodeHandler};
use crate::packet::{FlowId, Packet, Payload};
use dlte_sim::stats::Samples;
use dlte_sim::{SimDuration, SimTime};

/// Constant-bit-rate flow source.
pub struct CbrSource {
    pub dst: Addr,
    pub flow: FlowId,
    pub rate_bps: f64,
    pub packet_bytes: u32,
    pub start: SimTime,
    pub stop: SimTime,
    seq: u64,
}

impl CbrSource {
    pub fn new(dst: Addr, flow: FlowId, rate_bps: f64, packet_bytes: u32) -> Self {
        CbrSource {
            dst,
            flow,
            rate_bps,
            packet_bytes,
            start: SimTime::ZERO,
            stop: SimTime::MAX,
            seq: 0,
        }
    }

    /// Restrict the active window.
    pub fn window(mut self, start: SimTime, stop: SimTime) -> Self {
        self.start = start;
        self.stop = stop;
        self
    }

    fn interval(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.packet_bytes as f64 * 8.0 / self.rate_bps)
    }
}

impl NodeHandler for CbrSource {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        let delay = self.start.saturating_since(ctx.now);
        ctx.set_timer(delay, 0);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _tag: u64) {
        if ctx.now > self.stop {
            return;
        }
        let p = ctx
            .make_packet(self.dst, self.packet_bytes)
            .with_payload(Payload::Flow {
                flow: self.flow,
                seq: self.seq,
            });
        self.seq += 1;
        ctx.forward(p);
        let interval = self.interval();
        ctx.set_timer(interval, 0);
    }

    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, packet: Packet) {
        // Sources also act as sinks for return traffic.
        ctx.deliver_local(&packet);
    }
}

/// Poisson packet source (exponential inter-arrivals at the same mean rate).
pub struct PoissonSource {
    pub dst: Addr,
    pub flow: FlowId,
    pub rate_bps: f64,
    pub packet_bytes: u32,
    seq: u64,
}

impl PoissonSource {
    pub fn new(dst: Addr, flow: FlowId, rate_bps: f64, packet_bytes: u32) -> Self {
        PoissonSource {
            dst,
            flow,
            rate_bps,
            packet_bytes,
            seq: 0,
        }
    }

    fn mean_interval_s(&self) -> f64 {
        self.packet_bytes as f64 * 8.0 / self.rate_bps
    }
}

impl NodeHandler for PoissonSource {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _tag: u64) {
        let p = ctx
            .make_packet(self.dst, self.packet_bytes)
            .with_payload(Payload::Flow {
                flow: self.flow,
                seq: self.seq,
            });
        self.seq += 1;
        ctx.forward(p);
        // Exponential gap via inverse CDF on the ctx RNG.
        let u = ctx.rand_unit().max(f64::MIN_POSITIVE);
        let gap = -self.mean_interval_s() * u.ln();
        ctx.set_timer(SimDuration::from_secs_f64(gap), 0);
    }

    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, packet: Packet) {
        ctx.deliver_local(&packet);
    }
}

/// Echo server: bounces every flow packet back to its source (think OTT
/// service / measurement reflector). Control packets are ignored.
pub struct EchoServer {
    pub echoed: u64,
}

impl EchoServer {
    pub fn new() -> Self {
        EchoServer { echoed: 0 }
    }
}

impl Default for EchoServer {
    fn default() -> Self {
        Self::new()
    }
}

impl NodeHandler for EchoServer {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, packet: Packet) {
        if let Payload::Flow { flow, seq } = packet.payload {
            self.echoed += 1;
            let reply = ctx
                .make_packet(packet.src, packet.size_bytes)
                .with_payload(Payload::Flow { flow, seq });
            ctx.forward(reply);
        }
    }
}

/// RTT prober: sends a probe every `interval` and records the round-trip
/// time when the echo returns. Pair with [`EchoServer`].
pub struct Pinger {
    pub dst: Addr,
    pub flow: FlowId,
    pub interval: SimDuration,
    pub probe_bytes: u32,
    /// RTT samples, milliseconds.
    pub rtt_ms: Samples,
    outstanding: std::collections::HashMap<u64, SimTime>,
    seq: u64,
}

impl Pinger {
    pub fn new(dst: Addr, flow: FlowId, interval: SimDuration) -> Self {
        Pinger {
            dst,
            flow,
            interval,
            probe_bytes: 100,
            rtt_ms: Samples::new(),
            outstanding: std::collections::HashMap::new(),
            seq: 0,
        }
    }
}

impl NodeHandler for Pinger {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _tag: u64) {
        let seq = self.seq;
        self.seq += 1;
        self.outstanding.insert(seq, ctx.now);
        let p = ctx
            .make_packet(self.dst, self.probe_bytes)
            .with_payload(Payload::Flow {
                flow: self.flow,
                seq,
            });
        ctx.forward(p);
        let interval = self.interval;
        ctx.set_timer(interval, 0);
    }

    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, packet: Packet) {
        if let Payload::Flow { flow, seq } = packet.payload {
            if flow == self.flow {
                if let Some(sent) = self.outstanding.remove(&seq) {
                    self.rtt_ms.push_duration_ms(ctx.now.saturating_since(sent));
                }
                return;
            }
        }
        ctx.deliver_local(&packet);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Prefix;
    use crate::link::LinkConfig;
    use crate::network::NetworkBuilder;

    #[test]
    fn cbr_source_sends_at_rate() {
        // 1 Mbit/s of 1250-byte packets = 100 packets/s over 2 s → 200 pkts.
        let mut b = NetworkBuilder::new(5);
        let dst_addr = Addr::new(10, 0, 0, 2);
        let src = b.host(
            "src",
            Box::new(
                CbrSource::new(dst_addr, 1, 1e6, 1250).window(SimTime::ZERO, SimTime::from_secs(2)),
            ),
        );
        b.addr(src, Addr::new(10, 0, 0, 1));
        let dst = b.node("dst");
        b.addr(dst, dst_addr);
        let l = b.link(src, dst, LinkConfig::lan());
        b.route(src, Prefix::new(dst_addr, 32), l);
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(3), 1_000_000);
        let f = sim.world().trace().flow(1).expect("flow");
        assert!(
            (199..=201).contains(&f.delivered_packets),
            "{}",
            f.delivered_packets
        );
    }

    #[test]
    fn poisson_source_mean_rate() {
        let mut b = NetworkBuilder::new(6);
        let dst_addr = Addr::new(10, 0, 0, 2);
        let src = b.host("src", Box::new(PoissonSource::new(dst_addr, 2, 1e6, 1250)));
        b.addr(src, Addr::new(10, 0, 0, 1));
        let dst = b.node("dst");
        b.addr(dst, dst_addr);
        let l = b.link(src, dst, LinkConfig::lan());
        b.route(src, Prefix::new(dst_addr, 32), l);
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(20), 1_000_000);
        let f = sim.world().trace().flow(2).expect("flow");
        // 100 pkts/s × 20 s = 2000 expected; allow ±10%.
        assert!(
            (1800..2200).contains(&f.delivered_packets),
            "{}",
            f.delivered_packets
        );
    }

    #[test]
    fn pinger_measures_rtt() {
        let mut b = NetworkBuilder::new(7);
        let server_addr = Addr::new(10, 0, 0, 2);
        let client_addr = Addr::new(10, 0, 0, 1);
        let client = b.host(
            "client",
            Box::new(Pinger::new(server_addr, 3, SimDuration::from_millis(100))),
        );
        b.addr(client, client_addr);
        let server = b.host("server", Box::new(EchoServer::new()));
        b.addr(server, server_addr);
        let l = b.link(
            client,
            server,
            LinkConfig {
                delay: SimDuration::from_millis(25),
                rate_bps: 1e9,
                queue_pkts: 100,
                loss: 0.0,
            },
        );
        b.route(client, Prefix::new(server_addr, 32), l);
        b.route(server, Prefix::new(client_addr, 32), l);
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(1), 100_000);
        // Extract the typed handlers back out for their measurements.
        let world = sim.world_mut();
        let echo = world.handler_as::<EchoServer>(server).expect("echo typed");
        assert!((9..=11).contains(&echo.echoed), "echoed {}", echo.echoed);
        let pinger = world.handler_as::<Pinger>(client).expect("pinger typed");
        assert!(pinger.rtt_ms.len() >= 9);
        // RTT ≈ 2 × 25 ms propagation (serialization negligible at 1 Gbit/s).
        let med = pinger.rtt_ms.median();
        assert!((med - 50.0).abs() < 0.5, "median RTT {med}");
        assert_eq!(world.trace().total_drops(), 0);
    }
}
