//! # dlte-net — packet-level network substrate
//!
//! The IP backhaul every dLTE component rides on: nodes connected by links
//! with finite rate, propagation delay and drop-tail queues; static routing
//! with longest-prefix match; GTP-U tunnel encapsulation (how a centralized
//! EPC hauls user traffic, §2.1); and per-flow latency tracing.
//!
//! Architecture: [`Network`] implements [`dlte_sim::World`]. Behaviour lives
//! in per-node [`NodeHandler`]s (an EPC's MME is a handler, so is a UE's
//! application). Nodes without handlers act as plain routers: packets for a
//! local address are delivered to the trace sink; everything else is
//! forwarded by the node's routing table. This keeps the substrate ignorant
//! of LTE — the cellular logic composes on top in `dlte-epc` and `dlte`.

pub mod addr;
pub mod fxhash;
pub mod gtp;
pub mod handlers;
pub mod link;
pub mod network;
pub mod node;
pub mod packet;
pub mod pool;
pub mod sharded;
pub mod trace;

pub use addr::{Addr, AddrPool, Prefix};
pub use link::{LinkConfig, LinkId, LinkOverride};
pub use network::{
    in_flight_packets, FabricCounters, NetAudit, NetEvent, NetFault, Network, NetworkBuilder,
};
pub use node::{NodeCtx, NodeHandler, NodeId};
pub use packet::{Packet, Payload, TunnelHeader, TunnelStack};
pub use pool::{PacketPool, PacketRef, PoolError};
pub use sharded::{plan_for, ShardedSim};
pub use trace::TraceStats;

use std::sync::atomic::{AtomicBool, Ordering};

/// When set, the crate routes every memory decision through the pre-§13
/// "naive" path: control payloads always `Arc`-box, tunnel stacks spill to
/// the heap on the first push, arrivals box their packets instead of
/// parking them in the arena, and handler dispatch clones. Simulation
/// *behavior* is bit-identical either way — this exists so `dlte-run bench
/// --mem-baseline` can record before/after memory columns in one process.
static NAIVE_MEMORY: AtomicBool = AtomicBool::new(false);

/// Toggle the naive-memory baseline mode (process-global; see
/// [`NAIVE_MEMORY`]). Networks capture the flag when they are *built*, so
/// flip it before constructing the topology.
pub fn set_naive_memory(on: bool) {
    NAIVE_MEMORY.store(on, Ordering::Relaxed);
}

/// Whether the naive-memory baseline mode is on.
pub fn naive_memory() -> bool {
    NAIVE_MEMORY.load(Ordering::Relaxed)
}

/// Test-only coordination for the process-global [`NAIVE_MEMORY`] flag:
/// tests that toggle it (or assert on which storage path was taken) hold
/// this lock so parallel test threads don't observe each other's mode.
#[doc(hidden)]
pub mod test_support {
    use std::sync::{Mutex, MutexGuard, OnceLock};

    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();

    pub struct NaiveMemoryGuard {
        prev: bool,
        _held: MutexGuard<'static, ()>,
    }

    impl Drop for NaiveMemoryGuard {
        fn drop(&mut self) {
            crate::set_naive_memory(self.prev);
        }
    }

    /// Acquire the mode lock and set the naive-memory flag to `on` for the
    /// guard's lifetime (restored on drop).
    pub fn naive_memory_lock(on: bool) -> NaiveMemoryGuard {
        let held = LOCK
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let prev = crate::naive_memory();
        crate::set_naive_memory(on);
        NaiveMemoryGuard { prev, _held: held }
    }
}
