//! # dlte-net — packet-level network substrate
//!
//! The IP backhaul every dLTE component rides on: nodes connected by links
//! with finite rate, propagation delay and drop-tail queues; static routing
//! with longest-prefix match; GTP-U tunnel encapsulation (how a centralized
//! EPC hauls user traffic, §2.1); and per-flow latency tracing.
//!
//! Architecture: [`Network`] implements [`dlte_sim::World`]. Behaviour lives
//! in per-node [`NodeHandler`]s (an EPC's MME is a handler, so is a UE's
//! application). Nodes without handlers act as plain routers: packets for a
//! local address are delivered to the trace sink; everything else is
//! forwarded by the node's routing table. This keeps the substrate ignorant
//! of LTE — the cellular logic composes on top in `dlte-epc` and `dlte`.

pub mod addr;
pub mod fxhash;
pub mod gtp;
pub mod handlers;
pub mod link;
pub mod network;
pub mod node;
pub mod packet;
pub mod sharded;
pub mod trace;

pub use addr::{Addr, AddrPool, Prefix};
pub use link::{LinkConfig, LinkId, LinkOverride};
pub use network::{
    in_flight_packets, FabricCounters, NetAudit, NetEvent, NetFault, Network, NetworkBuilder,
};
pub use node::{NodeCtx, NodeHandler, NodeId};
pub use packet::{Packet, Payload};
pub use sharded::{plan_for, ShardedSim};
pub use trace::TraceStats;
