//! Bidirectional point-to-point links with rate, delay and drop-tail queues.
//!
//! Queueing is modeled analytically: each direction tracks the time its
//! transmitter becomes free (`busy_until`) and the number of packets
//! enqueued but not yet fully serialized. A packet offered at time `t`
//! departs at `max(t, busy_until) + size/rate` or is dropped if the queue is
//! full. This is exact for FIFO drop-tail without needing per-byte events —
//! the EPC "buffer bloat" effect (§4.2) falls straight out of it.

use dlte_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Identifies a link in the network.
pub type LinkId = usize;

/// Static link parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LinkConfig {
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Serialization rate, bits/s.
    pub rate_bps: f64,
    /// Drop-tail queue capacity, packets (per direction).
    pub queue_pkts: usize,
    /// Independent random loss probability per packet.
    pub loss: f64,
}

impl LinkConfig {
    /// A generous LAN-ish link: 1 Gbit/s, 0.1 ms, deep queue.
    pub fn lan() -> LinkConfig {
        LinkConfig {
            delay: SimDuration::from_micros(100),
            rate_bps: 1e9,
            queue_pkts: 1000,
            loss: 0.0,
        }
    }

    /// A rural backhaul link: 50 Mbit/s, 10 ms, modest queue — the paper's
    /// deployment has VSAT/long-haul wireless backhaul.
    pub fn rural_backhaul() -> LinkConfig {
        LinkConfig {
            delay: SimDuration::from_millis(10),
            rate_bps: 50e6,
            queue_pkts: 200,
            loss: 0.0,
        }
    }

    /// Wide-area Internet transit: 10 Gbit/s, configurable delay.
    pub fn wan(delay: SimDuration) -> LinkConfig {
        LinkConfig {
            delay,
            rate_bps: 10e9,
            queue_pkts: 10_000,
            loss: 0.0,
        }
    }

    /// Serialization time of a packet of `bytes`.
    pub fn serialization(&self, bytes: u32) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.rate_bps)
    }
}

/// Per-direction dynamic state.
#[derive(Clone, Copy, Debug, Default)]
pub struct DirState {
    pub busy_until: SimTime,
    /// Packets accepted but whose serialization has not finished.
    pub queued: usize,
    // Stats.
    pub tx_packets: u64,
    pub tx_bytes: u64,
    pub drops_queue: u64,
    pub drops_loss: u64,
    /// Packets offered while the link was administratively down.
    pub drops_down: u64,
    /// Sum of queueing delays (excluding serialization), for mean queue delay.
    pub queue_delay_sum: SimDuration,
}

/// Transient parameter overrides applied on top of a link's [`LinkConfig`]
/// without losing the static configuration — fault injection installs these
/// for loss bursts, latency/jitter storms and rate throttles, then clears
/// them to restore the configured behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkOverride {
    /// Replaces the configured loss probability while set.
    pub loss: Option<f64>,
    /// Added to the configured one-way propagation delay.
    pub extra_delay: Option<SimDuration>,
    /// Uniform per-packet jitter amplitude added on top of the delay
    /// (scaled by a pre-drawn uniform [0,1)).
    pub jitter: Option<SimDuration>,
    /// Replaces the configured serialization rate while set.
    pub rate_bps: Option<f64>,
}

impl LinkOverride {
    /// True when no field overrides anything.
    pub fn is_empty(&self) -> bool {
        *self == LinkOverride::default()
    }
}

/// A link instance: endpoints plus per-direction state. Direction 0 is
/// a→b, direction 1 is b→a.
#[derive(Clone, Debug)]
pub struct Link {
    pub a: usize,
    pub b: usize,
    pub config: LinkConfig,
    pub dirs: [DirState; 2],
    /// Administrative/physical state: a down link drops everything offered
    /// to it (backhaul-failure experiments flip this at runtime).
    pub up: bool,
    /// Transient fault-injection overrides (None = configured behaviour).
    pub transient: Option<LinkOverride>,
}

/// Outcome of offering a packet to a link direction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Offer {
    /// Accepted; packet arrives at the far end at this time.
    Accepted {
        arrives_at: SimTime,
        departs_at: SimTime,
    },
    /// Dropped: queue full.
    DroppedQueueFull,
    /// Dropped: random loss.
    DroppedLoss,
    /// Dropped: the link is down.
    DroppedLinkDown,
}

impl Link {
    pub fn new(a: usize, b: usize, config: LinkConfig) -> Link {
        Link {
            a,
            b,
            config,
            dirs: [DirState::default(), DirState::default()],
            up: true,
            transient: None,
        }
    }

    /// Install a transient override (replacing any previous one).
    pub fn set_override(&mut self, ov: LinkOverride) {
        self.transient = if ov.is_empty() { None } else { Some(ov) };
    }

    /// Remove the transient override, restoring configured behaviour.
    pub fn clear_override(&mut self) {
        self.transient = None;
    }

    /// Direction index for a transmission from node `from`.
    pub fn dir_from(&self, from: usize) -> Option<usize> {
        if from == self.a {
            Some(0)
        } else if from == self.b {
            Some(1)
        } else {
            None
        }
    }

    /// The far-end node for a transmission from `from`.
    pub fn other(&self, from: usize) -> usize {
        if from == self.a {
            self.b
        } else {
            self.a
        }
    }

    /// Offer a packet for transmission. `lossy_draw` and `jitter_draw` are
    /// pre-drawn uniforms [0,1) used for random loss and (when a jitter
    /// override is active) per-packet jitter — kept outside so the link
    /// stays RNG-agnostic and deterministic to test.
    pub fn offer(
        &mut self,
        dir: usize,
        now: SimTime,
        bytes: u32,
        lossy_draw: f64,
        jitter_draw: f64,
    ) -> Offer {
        let cfg = self.config;
        let ov = self.transient.unwrap_or_default();
        let d = &mut self.dirs[dir];
        if !self.up {
            d.drops_down += 1;
            return Offer::DroppedLinkDown;
        }
        if d.queued >= cfg.queue_pkts {
            d.drops_queue += 1;
            return Offer::DroppedQueueFull;
        }
        if lossy_draw < ov.loss.unwrap_or(cfg.loss) {
            d.drops_loss += 1;
            return Offer::DroppedLoss;
        }
        let rate_bps = ov.rate_bps.unwrap_or(cfg.rate_bps);
        let ser = SimDuration::from_secs_f64(bytes as f64 * 8.0 / rate_bps);
        let start = d.busy_until.max(now);
        let departs_at = start + ser;
        d.queue_delay_sum += start.saturating_since(now);
        d.busy_until = departs_at;
        d.queued += 1;
        d.tx_packets += 1;
        d.tx_bytes += bytes as u64;
        let mut delay = cfg.delay + ov.extra_delay.unwrap_or(SimDuration::ZERO);
        if let Some(jitter) = ov.jitter {
            delay += SimDuration::from_secs_f64(jitter.as_secs_f64() * jitter_draw);
        }
        Offer::Accepted {
            arrives_at: departs_at + delay,
            departs_at,
        }
    }

    /// Called when a previously accepted packet finishes serializing.
    pub fn departed(&mut self, dir: usize) {
        let d = &mut self.dirs[dir];
        debug_assert!(d.queued > 0, "departure without queued packet");
        d.queued = d.queued.saturating_sub(1);
    }

    /// Mean queueing delay (excluding serialization) over accepted packets.
    pub fn mean_queue_delay(&self, dir: usize) -> SimDuration {
        let d = &self.dirs[dir];
        match d.queue_delay_sum.as_nanos().checked_div(d.tx_packets) {
            Some(mean) => SimDuration::from_nanos(mean),
            None => SimDuration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Link {
        Link::new(
            0,
            1,
            LinkConfig {
                delay: SimDuration::from_millis(5),
                rate_bps: 8e6, // 1 byte/µs
                queue_pkts: 2,
                loss: 0.0,
            },
        )
    }

    #[test]
    fn serialization_and_delay_compose() {
        let mut l = link();
        // 1000 bytes at 8 Mbit/s = 1 ms serialization + 5 ms propagation.
        match l.offer(0, SimTime::ZERO, 1000, 1.0, 0.0) {
            Offer::Accepted {
                arrives_at,
                departs_at,
            } => {
                assert_eq!(departs_at.as_millis(), 1);
                assert_eq!(arrives_at.as_millis(), 6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn back_to_back_packets_queue() {
        let mut l = link();
        let first = l.offer(0, SimTime::ZERO, 1000, 1.0, 0.0);
        let second = l.offer(0, SimTime::ZERO, 1000, 1.0, 0.0);
        match (first, second) {
            (Offer::Accepted { departs_at: d1, .. }, Offer::Accepted { departs_at: d2, .. }) => {
                assert_eq!(d1.as_millis(), 1);
                assert_eq!(d2.as_millis(), 2, "second waits for first");
            }
            other => panic!("{other:?}"),
        }
        // Queue capacity 2 → third drops.
        assert_eq!(
            l.offer(0, SimTime::ZERO, 1000, 1.0, 0.0),
            Offer::DroppedQueueFull
        );
        assert_eq!(l.dirs[0].drops_queue, 1);
        // After a departure there is room again.
        l.departed(0);
        assert!(matches!(
            l.offer(0, SimTime::ZERO, 1000, 1.0, 0.0),
            Offer::Accepted { .. }
        ));
    }

    #[test]
    fn idle_link_resets_queueing() {
        let mut l = link();
        l.offer(0, SimTime::ZERO, 1000, 1.0, 0.0);
        l.departed(0);
        // Much later the transmitter is idle: no queueing delay.
        match l.offer(0, SimTime::from_secs(1), 1000, 1.0, 0.0) {
            Offer::Accepted { departs_at, .. } => {
                assert_eq!(
                    departs_at,
                    SimTime::from_secs(1) + SimDuration::from_millis(1)
                );
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(l.mean_queue_delay(0), SimDuration::ZERO);
    }

    #[test]
    fn queue_delay_accounting() {
        let mut l = link();
        l.offer(0, SimTime::ZERO, 1000, 1.0, 0.0); // no wait
        l.offer(0, SimTime::ZERO, 1000, 1.0, 0.0); // waits 1 ms
                                                   // Mean queue delay = 0.5 ms.
        assert_eq!(l.mean_queue_delay(0).as_micros(), 500);
    }

    #[test]
    fn random_loss_uses_draw() {
        let mut l = link();
        l.config.loss = 0.5;
        assert_eq!(l.offer(0, SimTime::ZERO, 100, 0.4, 0.0), Offer::DroppedLoss);
        assert!(matches!(
            l.offer(0, SimTime::ZERO, 100, 0.6, 0.0),
            Offer::Accepted { .. }
        ));
        assert_eq!(l.dirs[0].drops_loss, 1);
    }

    #[test]
    fn directions_are_independent() {
        let mut l = link();
        l.offer(0, SimTime::ZERO, 1000, 1.0, 0.0);
        // Reverse direction is unaffected by forward queueing.
        match l.offer(1, SimTime::ZERO, 1000, 1.0, 0.0) {
            Offer::Accepted { departs_at, .. } => assert_eq!(departs_at.as_millis(), 1),
            other => panic!("{other:?}"),
        }
        assert_eq!(l.dir_from(0), Some(0));
        assert_eq!(l.dir_from(1), Some(1));
        assert_eq!(l.dir_from(9), None);
        assert_eq!(l.other(0), 1);
        assert_eq!(l.other(1), 0);
    }

    #[test]
    fn down_link_counts_drops_per_direction() {
        let mut l = link();
        l.up = false;
        assert_eq!(
            l.offer(0, SimTime::ZERO, 1000, 1.0, 0.0),
            Offer::DroppedLinkDown
        );
        assert_eq!(
            l.offer(1, SimTime::ZERO, 1000, 1.0, 0.0),
            Offer::DroppedLinkDown
        );
        assert_eq!(
            l.offer(1, SimTime::ZERO, 1000, 1.0, 0.0),
            Offer::DroppedLinkDown
        );
        assert_eq!(l.dirs[0].drops_down, 1);
        assert_eq!(l.dirs[1].drops_down, 2);
        // Down drops never perturb the other counters or queue state.
        assert_eq!(l.dirs[0].drops_queue, 0);
        assert_eq!(l.dirs[0].queued, 0);
        l.up = true;
        assert!(matches!(
            l.offer(0, SimTime::ZERO, 1000, 1.0, 0.0),
            Offer::Accepted { .. }
        ));
    }

    #[test]
    fn loss_override_replaces_configured_loss() {
        let mut l = link();
        // Configured lossless; a burst override makes the same draw drop.
        assert!(matches!(
            l.offer(0, SimTime::ZERO, 100, 0.4, 0.0),
            Offer::Accepted { .. }
        ));
        l.set_override(LinkOverride {
            loss: Some(0.5),
            ..Default::default()
        });
        assert_eq!(l.offer(0, SimTime::ZERO, 100, 0.4, 0.0), Offer::DroppedLoss);
        l.clear_override();
        assert!(matches!(
            l.offer(0, SimTime::ZERO, 100, 0.4, 0.0),
            Offer::Accepted { .. }
        ));
    }

    #[test]
    fn rate_and_latency_overrides_compose() {
        let mut l = link();
        l.set_override(LinkOverride {
            rate_bps: Some(0.8e6), // 10× slower: 1000 B → 10 ms
            extra_delay: Some(SimDuration::from_millis(20)),
            jitter: Some(SimDuration::from_millis(10)),
            ..Default::default()
        });
        match l.offer(0, SimTime::ZERO, 1000, 1.0, 0.5) {
            Offer::Accepted {
                arrives_at,
                departs_at,
            } => {
                assert_eq!(departs_at.as_millis(), 10, "throttled serialization");
                // 10 ser + 5 base + 20 extra + 0.5×10 jitter = 40 ms.
                assert_eq!(arrives_at.as_millis(), 40);
            }
            other => panic!("{other:?}"),
        }
        l.clear_override();
        assert!(l.transient.is_none());
        match l.offer(0, SimTime::from_secs(1), 1000, 1.0, 0.5) {
            Offer::Accepted { arrives_at, .. } => {
                assert_eq!(arrives_at.as_millis(), 1006, "configured behaviour back")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_override_is_not_installed() {
        let mut l = link();
        l.set_override(LinkOverride::default());
        assert!(l.transient.is_none());
        assert!(LinkOverride::default().is_empty());
    }
}
