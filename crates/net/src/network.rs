//! The network world: topology + event dispatch.
//!
//! [`Network`] implements [`World`] over [`NetEvent`]. Forwarding semantics:
//!
//! * a packet arriving at a node **with a handler** is given to the handler,
//!   whatever its destination (handlers implement middleboxes — EPC gateways
//!   must see traversing traffic);
//! * a packet arriving at a plain node is **delivered** if the destination
//!   is a local address, otherwise **forwarded** by longest-prefix match
//!   (dropping on no-route or TTL exhaustion).

use crate::link::{Link, LinkConfig, LinkId, LinkOverride, Offer};
use crate::node::{NodeCtx, NodeHandler, NodeId, NodeInfo};
use crate::packet::Packet;
use crate::pool::{PacketPool, PacketRef};
use crate::trace::TraceStats;
use dlte_obs::{DropReason, Event};
use dlte_sim::rng::hash_unit;
use dlte_sim::{EventQueue, OutMsg, ShardPlan, ShardWorld, SimRng, SimTime, Simulation, World};
use serde::{Deserialize, Serialize};

/// Domain-separation salts for the counter-based (hashed) draws, so the
/// loss, jitter and handler-visible streams never collide.
const LOSS_SALT: u64 = 0x6c6f_7373; // "loss"
const JITTER_SALT: u64 = 0x6a69_7474; // "jitt"
const NODE_RAND_SALT: u64 = 0x6e6f_6465; // "node"

/// Account a packet drop in all three observability surfaces: the legacy
/// `TraceStats` counter (via the caller), the always-on `drops_*` metrics
/// counter (feeds the deterministic `RunReport::drops` breakdown) and — when
/// tracing is enabled — a structured [`Event::Drop`] record.
fn note_drop(now: SimTime, node: NodeId, reason: DropReason, bytes: u32) {
    drop_counter(reason).add(1);
    dlte_obs::emit(now.as_nanos(), node as u64, Event::Drop { reason, bytes });
}

/// Interned per-reason drop counters: registered once per process, so the
/// per-drop cost is an array index, not a string-map lookup.
fn drop_counter(reason: DropReason) -> dlte_obs::metrics::CounterId {
    use dlte_obs::metrics::register_counter;
    static IDS: std::sync::OnceLock<[dlte_obs::metrics::CounterId; 6]> = std::sync::OnceLock::new();
    let ids = IDS.get_or_init(|| {
        [
            register_counter("drops_queue"),
            register_counter("drops_loss"),
            register_counter("drops_link_down"),
            register_counter("drops_node_down"),
            register_counter("drops_no_route"),
            register_counter("drops_ttl"),
        ]
    });
    match reason {
        DropReason::Queue => ids[0],
        DropReason::Loss => ids[1],
        DropReason::LinkDown => ids[2],
        DropReason::NodeDown => ids[3],
        DropReason::NoRoute => ids[4],
        DropReason::TtlExpired => ids[5],
    }
}

/// Where an in-flight packet's bytes live while its arrival event sits in
/// the queue. The fast path parks the packet in the world's [`PacketPool`]
/// and moves the 8-byte handle; cross-shard deliveries (whose bytes must
/// physically travel to another worker's replica) and the naive-memory
/// baseline mode carry an owned heap box instead. Either way the event
/// stays 2 words — the queue slab never pays `size_of::<Packet>()`.
#[derive(Debug)]
pub enum PacketSlot {
    /// Handle into the receiving world's packet arena.
    Pooled(PacketRef),
    /// The packet itself, boxed (cross-shard or naive-memory baseline).
    Owned(Box<Packet>),
}

/// Events of the network world.
#[derive(Debug)]
pub enum NetEvent {
    /// A packet reaches `node` (after link serialization + propagation);
    /// its bytes are wherever `slot` says.
    PacketArrive { node: NodeId, slot: PacketSlot },
    /// A packet finished serializing on `link` direction `dir` (frees one
    /// queue slot).
    LinkDeparted { link: LinkId, dir: usize },
    /// A handler timer.
    Timer { node: NodeId, tag: u64 },
    /// Deliver `on_start` to every handler (scheduled once at t=0).
    Start,
    /// Apply a fault (scheduled by fault plans or chaos handlers).
    Fault(NetFault),
}

/// A single fault applied to the world at a point in time. These are the
/// *mechanisms*; `dlte-faults` provides the seeded, serde-able plans that
/// compose them into scenarios.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum NetFault {
    /// Set a link's administrative state (down links drop all traffic).
    LinkUp { link: LinkId, up: bool },
    /// Install a transient parameter override on a link (an empty override
    /// clears it — restores configured behaviour).
    LinkOverride { link: LinkId, ov: LinkOverride },
    /// Crash a node: its handler loses state (`on_crash`) and, while down,
    /// every packet and timer addressed to it is dropped.
    NodeDown { node: NodeId },
    /// Restart a crashed node: `on_restart` runs with a live ctx so the
    /// handler can re-seed timers and state.
    NodeUp { node: NodeId },
    /// Pause a node: packets are dropped but handler state and timers are
    /// retained (timers fire, deferred, at resume).
    NodePause { node: NodeId },
    /// Resume a paused node, releasing its deferred timers.
    NodeResume { node: NodeId },
    /// Cut (`up: false`) or heal (`up: true`) every link with exactly one
    /// endpoint in `nodes` — partitions the set from the rest of the world.
    Partition { nodes: Vec<NodeId>, up: bool },
    /// Install (or replace) a route on a node. Exists so scripted
    /// reconvergence (e.g. E13's backhaul reroute) can be expressed as
    /// pre-planned fault events, which sharded runs broadcast into every
    /// replica instead of mutating one shard's tables from another.
    RouteSet {
        node: NodeId,
        prefix: crate::addr::Prefix,
        link: LinkId,
    },
}

/// Packet-fate counters maintained by the fabric itself (not by handlers),
/// closing the conservation ledger the `dlte-check` oracles verify: every
/// packet that enters the fabric leaves it through exactly one exit.
///
/// * entries: `originated` (handler called `forward`/`forward_via`) and
///   `reforwarded` (a plain node relayed an arrival);
/// * exits: `accepted` onto a link, or one of the per-reason drop counters
///   kept in [`TraceStats`];
/// * each `accepted` becomes exactly one `arrival` (or stays in flight in
///   the event queue), and each arrival terminates as `absorbed` (handler
///   node), `delivered_plain` (plain node owning the destination), a
///   node-down drop, or another `reforwarded` entry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FabricCounters {
    /// Packets injected by handlers (`NodeCtx::forward` / `forward_via`).
    pub originated: u64,
    /// Arrivals relayed onward by plain (handler-less) nodes.
    pub reforwarded: u64,
    /// Transmissions a link accepted (an arrival event was scheduled).
    pub accepted: u64,
    /// `PacketArrive` events dispatched (including ones dropped node-down).
    pub arrivals: u64,
    /// Arrivals consumed by a node handler (whatever it re-emits counts as
    /// freshly originated).
    pub absorbed: u64,
    /// Arrivals delivered by a plain node owning the destination address.
    pub delivered_plain: u64,
}

/// End-of-run snapshot of the fabric ledger plus the per-reason drop
/// counters and the packets still in flight — everything the packet
/// conservation oracle needs, as plain serde-able data.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetAudit {
    pub fabric: FabricCounters,
    /// `PacketArrive` events pending in the queue at audit time.
    pub in_flight: u64,
    pub drops_queue: u64,
    pub drops_loss: u64,
    pub drops_no_route: u64,
    pub drops_ttl: u64,
    pub drops_link_down: u64,
    pub drops_node_down: u64,
}

impl FabricCounters {
    /// Fold another shard's counters into this one. Each packet fate is
    /// counted by exactly one shard (the node that processed it), so the
    /// merged ledger closes exactly like a single-shard one.
    pub fn absorb(&mut self, other: &FabricCounters) {
        self.originated += other.originated;
        self.reforwarded += other.reforwarded;
        self.accepted += other.accepted;
        self.arrivals += other.arrivals;
        self.absorbed += other.absorbed;
        self.delivered_plain += other.delivered_plain;
    }
}

impl NetAudit {
    /// Fold another shard's audit into this one (see
    /// [`FabricCounters::absorb`]).
    pub fn absorb(&mut self, other: &NetAudit) {
        self.fabric.absorb(&other.fabric);
        self.in_flight += other.in_flight;
        self.drops_queue += other.drops_queue;
        self.drops_loss += other.drops_loss;
        self.drops_no_route += other.drops_no_route;
        self.drops_ttl += other.drops_ttl;
        self.drops_link_down += other.drops_link_down;
        self.drops_node_down += other.drops_node_down;
    }
}

/// Count the `PacketArrive` events still pending (canceled entries are
/// skipped) — the `in_flight` term of the conservation ledger.
pub fn in_flight_packets(queue: &EventQueue<NetEvent>) -> u64 {
    queue
        .iter_pending()
        .filter(|e| matches!(e, NetEvent::PacketArrive { .. }))
        .count() as u64
}

/// Topology + routing + tracing state (everything except the handlers, so
/// handlers can borrow it mutably through [`NodeCtx`]).
pub struct NetCore {
    pub nodes: Vec<NodeInfo>,
    pub links: Vec<Link>,
    pub trace: TraceStats,
    pub fabric: FabricCounters,
    pub rng: SimRng,
    /// Per-node packet-id sequences (see [`NetCore::next_packet_id`]).
    pkt_seqs: Vec<u64>,
    /// Per-node counters for [`NetCore::node_rand_unit`].
    draw_seqs: Vec<u64>,
    /// Which shard this replica is (0 in single-shard runs).
    pub(crate) my_shard: usize,
    /// Owner shard of every node (all zero in single-shard runs).
    pub(crate) shard_of: Vec<usize>,
    /// Cross-shard arrivals produced since the last drain.
    pub(crate) outbound: Vec<OutMsg<NetEvent>>,
    /// Arena for in-flight packets: local arrivals park their bytes here
    /// and the event queue carries only a [`PacketRef`].
    pub pool: PacketPool,
    /// Captured [`crate::naive_memory`] at build time: route the memory
    /// decisions (not the behavior) through the pre-§13 paths.
    pub(crate) naive_mem: bool,
}

impl NetCore {
    /// Allocate a packet id from the originating node's own sequence:
    /// `(node+1) << 40 | seq`. Keying the id to the originator (rather
    /// than a global counter) makes it a pure function of that node's
    /// history, so ids — and everything hashed from them, like loss
    /// draws — are identical at every shard count.
    pub(crate) fn next_packet_id(&mut self, node: NodeId) -> u64 {
        let seq = self.pkt_seqs[node];
        self.pkt_seqs[node] += 1;
        ((node as u64 + 1) << 40) | seq
    }

    /// The k-th uniform draw of `node`, as a pure hash of
    /// `(seed, salt, node, k)` — see [`crate::node::NodeCtx::rand_unit`].
    pub(crate) fn node_rand_unit(&mut self, node: NodeId) -> f64 {
        let k = self.draw_seqs[node];
        self.draw_seqs[node] += 1;
        hash_unit(&[self.rng.seed(), NODE_RAND_SALT, node as u64, k])
    }

    /// Route `packet` out of `node` via LPM and transmit. Drops (with trace
    /// accounting) on missing route or exhausted TTL.
    pub(crate) fn route_and_transmit(
        &mut self,
        now: SimTime,
        node: NodeId,
        mut packet: Packet,
        queue: &mut EventQueue<NetEvent>,
    ) {
        if packet.ttl == 0 {
            self.trace.drops_ttl += 1;
            note_drop(now, node, DropReason::TtlExpired, packet.size_bytes);
            return;
        }
        packet.ttl -= 1;
        match self.nodes[node].route_for(packet.dst) {
            Some(link) => self.transmit_on(now, node, link, packet, queue),
            None => {
                self.trace.drops_no_route += 1;
                note_drop(now, node, DropReason::NoRoute, packet.size_bytes);
            }
        }
    }

    /// Route the *pooled* packet behind `r` out of `node` — the zero-copy
    /// twin of [`NetCore::route_and_transmit`]. The packet stays parked in
    /// the arena across the hop: TTL and hop count are edited in place and
    /// the same 8-byte handle is re-scheduled, so a multi-hop traversal
    /// never copies the `Packet` until something consumes it (delivery,
    /// drop accounting, a handler, or a shard boundary). Decision order,
    /// draws and counters mirror the by-value path exactly.
    pub(crate) fn route_and_transmit_ref(
        &mut self,
        now: SimTime,
        node: NodeId,
        r: PacketRef,
        queue: &mut EventQueue<NetEvent>,
    ) {
        let Some(p) = self.pool.get_mut(r) else {
            debug_assert!(false, "stale packet handle in forward at node {node}");
            return;
        };
        if p.ttl == 0 {
            let p = self.pool.take(r).expect("just read it");
            self.trace.drops_ttl += 1;
            note_drop(now, node, DropReason::TtlExpired, p.size_bytes);
            return;
        }
        p.ttl -= 1;
        let dst = p.dst;
        match self.nodes[node].route_for(dst) {
            Some(link) => self.transmit_on_ref(now, node, link, r, queue),
            None => {
                let p = self.pool.take(r).expect("just read it");
                self.trace.drops_no_route += 1;
                note_drop(now, node, DropReason::NoRoute, p.size_bytes);
            }
        }
    }

    /// Transmit the pooled packet behind `r` from `node` on `link` (see
    /// [`NetCore::route_and_transmit_ref`]).
    pub(crate) fn transmit_on_ref(
        &mut self,
        now: SimTime,
        node: NodeId,
        link: LinkId,
        r: PacketRef,
        queue: &mut EventQueue<NetEvent>,
    ) {
        let (id, hops, size_bytes) = {
            let Some(p) = self.pool.get(r) else {
                debug_assert!(false, "stale packet handle in transmit at node {node}");
                return;
            };
            (p.id, p.hops, p.size_bytes)
        };
        let seed = self.rng.seed();
        let l = &mut self.links[link];
        let Some(dir) = l.dir_from(node) else {
            debug_assert!(false, "node {node} not on link {link}");
            let p = self.pool.take(r).expect("just read it");
            self.trace.drops_no_route += 1;
            note_drop(now, node, DropReason::NoRoute, p.size_bytes);
            return;
        };
        let key = [seed, 0, id, hops as u64, link as u64, dir as u64];
        let mut loss_key = key;
        loss_key[1] = LOSS_SALT;
        let mut jitter_key = key;
        jitter_key[1] = JITTER_SALT;
        let draw = hash_unit(&loss_key);
        let jitter_draw = hash_unit(&jitter_key);
        match l.offer(dir, now, size_bytes, draw, jitter_draw) {
            Offer::Accepted {
                arrives_at,
                departs_at,
            } => {
                self.fabric.accepted += 1;
                let dest = l.other(node);
                self.pool.get_mut(r).expect("just read it").hops += 1;
                queue.schedule_at(departs_at, NetEvent::LinkDeparted { link, dir });
                if self.shard_of[dest] == self.my_shard {
                    queue.schedule_at(
                        arrives_at,
                        NetEvent::PacketArrive {
                            node: dest,
                            slot: PacketSlot::Pooled(r),
                        },
                    );
                } else {
                    // Shard boundary: a pool handle means nothing in the
                    // peer replica, so the bytes leave the arena here.
                    let packet = self.pool.take(r).expect("just read it");
                    let (origin, oseq) = queue.alloc_key();
                    self.outbound.push(OutMsg {
                        shard: self.shard_of[dest],
                        at: arrives_at,
                        origin,
                        oseq,
                        event: NetEvent::PacketArrive {
                            node: dest,
                            slot: PacketSlot::Owned(Box::new(packet)),
                        },
                    });
                }
            }
            Offer::DroppedQueueFull => {
                let p = self.pool.take(r).expect("just read it");
                self.trace.drops_queue += 1;
                note_drop(now, node, DropReason::Queue, p.size_bytes);
            }
            Offer::DroppedLoss => {
                let p = self.pool.take(r).expect("just read it");
                self.trace.drops_loss += 1;
                note_drop(now, node, DropReason::Loss, p.size_bytes);
            }
            Offer::DroppedLinkDown => {
                let p = self.pool.take(r).expect("just read it");
                self.trace.drops_link_down += 1;
                note_drop(now, node, DropReason::LinkDown, p.size_bytes);
            }
        }
    }

    /// Transmit `packet` from `node` on `link`.
    pub(crate) fn transmit_on(
        &mut self,
        now: SimTime,
        node: NodeId,
        link: LinkId,
        mut packet: Packet,
        queue: &mut EventQueue<NetEvent>,
    ) {
        // Loss and jitter are *keyed* draws — pure hashes of the decision's
        // identity (seed, packet, hop, link, direction) rather than pulls
        // from a shared stream. A given transmission therefore sees the same
        // uniforms no matter what else ran first, which is what keeps runs
        // bit-identical when the topology is partitioned into shards.
        let seed = self.rng.seed();
        let l = &mut self.links[link];
        let Some(dir) = l.dir_from(node) else {
            // A route pointing at a link the node is not on is a topology
            // bug; surface it in debug builds, degrade to a routed-drop in
            // release so a fuzzer finds protocol bugs, not harness panics.
            debug_assert!(false, "node {node} not on link {link}");
            self.trace.drops_no_route += 1;
            note_drop(now, node, DropReason::NoRoute, packet.size_bytes);
            return;
        };
        let key = [
            seed,
            0, // replaced by the salt below
            packet.id,
            packet.hops as u64,
            link as u64,
            dir as u64,
        ];
        let mut loss_key = key;
        loss_key[1] = LOSS_SALT;
        let mut jitter_key = key;
        jitter_key[1] = JITTER_SALT;
        let draw = hash_unit(&loss_key);
        let jitter_draw = hash_unit(&jitter_key);
        match l.offer(dir, now, packet.size_bytes, draw, jitter_draw) {
            Offer::Accepted {
                arrives_at,
                departs_at,
            } => {
                self.fabric.accepted += 1;
                let dest = l.other(node);
                packet.hops += 1;
                queue.schedule_at(departs_at, NetEvent::LinkDeparted { link, dir });
                if self.shard_of[dest] == self.my_shard {
                    // Local delivery: park the bytes in the arena and move
                    // only the handle through the queue (the naive baseline
                    // boxes instead, pricing a heap round-trip per hop).
                    let slot = if self.naive_mem {
                        PacketSlot::Owned(Box::new(packet))
                    } else {
                        PacketSlot::Pooled(self.pool.insert(packet))
                    };
                    queue.schedule_at(arrives_at, NetEvent::PacketArrive { node: dest, slot });
                } else {
                    // The far end lives on another shard: allocate the
                    // canonical key *here* (consuming this origin's counter
                    // exactly as a local schedule would, so single- and
                    // multi-shard key streams agree) and ship the bytes —
                    // owned, a pool handle means nothing in another replica —
                    // across the epoch barrier.
                    let (origin, oseq) = queue.alloc_key();
                    self.outbound.push(OutMsg {
                        shard: self.shard_of[dest],
                        at: arrives_at,
                        origin,
                        oseq,
                        event: NetEvent::PacketArrive {
                            node: dest,
                            slot: PacketSlot::Owned(Box::new(packet)),
                        },
                    });
                }
            }
            Offer::DroppedQueueFull => {
                self.trace.drops_queue += 1;
                note_drop(now, node, DropReason::Queue, packet.size_bytes);
            }
            Offer::DroppedLoss => {
                self.trace.drops_loss += 1;
                note_drop(now, node, DropReason::Loss, packet.size_bytes);
            }
            Offer::DroppedLinkDown => {
                self.trace.drops_link_down += 1;
                note_drop(now, node, DropReason::LinkDown, packet.size_bytes);
            }
        }
    }
}

/// The world.
pub struct Network {
    pub core: NetCore,
    handlers: Vec<Option<Box<dyn NodeHandler>>>,
    /// Crashed nodes (packets/timers dropped until restart).
    down: Vec<bool>,
    /// Paused nodes (packets dropped, timers deferred until resume).
    paused: Vec<bool>,
    /// Timers that fired while their node was paused, in firing order.
    deferred: Vec<Vec<u64>>,
}

impl Network {
    /// Run a handler callback with the handler temporarily detached, so the
    /// handler can mutably borrow the core through the ctx.
    fn with_handler<F>(
        &mut self,
        node: NodeId,
        queue: &mut EventQueue<NetEvent>,
        now: SimTime,
        f: F,
    ) -> bool
    where
        F: FnOnce(&mut dyn NodeHandler, &mut NodeCtx<'_>),
    {
        let Some(mut handler) = self.handlers[node].take() else {
            return false;
        };
        {
            let mut ctx = NodeCtx {
                now,
                node,
                core: &mut self.core,
                queue,
            };
            f(handler.as_mut(), &mut ctx);
        }
        self.handlers[node] = Some(handler);
        true
    }

    /// Immutable access to a handler (for result extraction after a run).
    pub fn handler(&self, node: NodeId) -> Option<&dyn NodeHandler> {
        self.handlers[node].as_deref()
    }

    /// Downcast-style access for typed result extraction: the caller keeps
    /// the concrete handler type and extracts via this mutable reference.
    pub fn handler_mut(&mut self, node: NodeId) -> Option<&mut Box<dyn NodeHandler>> {
        self.handlers[node].as_mut()
    }

    /// Typed handler access — the way experiment harnesses read results
    /// (RTT samples, counters) out of a finished run.
    pub fn handler_as<T: NodeHandler>(&self, node: NodeId) -> Option<&T> {
        self.handlers[node]
            .as_deref()
            .and_then(|h| (h as &dyn std::any::Any).downcast_ref::<T>())
    }

    /// Typed mutable handler access.
    pub fn handler_as_mut<T: NodeHandler>(&mut self, node: NodeId) -> Option<&mut T> {
        self.handlers[node]
            .as_deref_mut()
            .and_then(|h| (h as &mut dyn std::any::Any).downcast_mut::<T>())
    }

    /// Install (or replace) a node's handler after build. If done before
    /// the simulation's first event, the handler's `on_start` still runs
    /// (the `Start` event is pending until then).
    pub fn set_handler(&mut self, node: NodeId, handler: Box<dyn NodeHandler>) {
        self.handlers[node] = Some(handler);
    }

    /// Trace statistics.
    pub fn trace(&self) -> &TraceStats {
        &self.core.trace
    }

    pub fn trace_mut(&mut self) -> &mut TraceStats {
        &mut self.core.trace
    }

    /// Snapshot the fabric ledger for the conservation oracle. `in_flight`
    /// comes from [`in_flight_packets`] on the simulation's queue (the world
    /// does not own its queue).
    pub fn audit(&self, in_flight: u64) -> NetAudit {
        let t = &self.core.trace;
        NetAudit {
            fabric: self.core.fabric,
            in_flight,
            drops_queue: t.drops_queue,
            drops_loss: t.drops_loss,
            drops_no_route: t.drops_no_route,
            drops_ttl: t.drops_ttl,
            drops_link_down: t.drops_link_down,
            drops_node_down: t.drops_node_down,
        }
    }

    /// Whether a node is currently crashed.
    pub fn node_is_down(&self, node: NodeId) -> bool {
        self.down[node]
    }

    /// Whether a node is currently paused.
    pub fn node_is_paused(&self, node: NodeId) -> bool {
        self.paused[node]
    }

    /// Apply a fault to the world. Normally reached through a scheduled
    /// [`NetEvent::Fault`] (see [`NodeCtx::schedule_fault`]) so faults are
    /// ordered deterministically with all other events; calling it directly
    /// between runs is also fine.
    ///
    /// Sharded runs broadcast every fault into every replica (link/route
    /// state is replicated), so the trace records a fault produces are
    /// emitted by shard 0 only — the merged trace carries each transition
    /// exactly once, whatever the shard count.
    pub fn apply_fault(&mut self, now: SimTime, fault: NetFault, queue: &mut EventQueue<NetEvent>) {
        let emitting = self.core.my_shard == 0;
        match fault {
            NetFault::LinkUp { link, up } => {
                self.core.links[link].up = up;
                if emitting {
                    dlte_obs::emit(
                        now.as_nanos(),
                        u64::MAX,
                        Event::FaultLink {
                            link: link as u64,
                            up,
                        },
                    );
                }
            }
            NetFault::LinkOverride { link, ov } => self.core.links[link].set_override(ov),
            NetFault::NodeDown { node } => {
                if !self.down[node] {
                    self.down[node] = true;
                    if emitting {
                        dlte_obs::emit(
                            now.as_nanos(),
                            node as u64,
                            Event::FaultNode {
                                node: node as u64,
                                up: false,
                            },
                        );
                    }
                    if let Some(h) = self.handlers[node].as_mut() {
                        h.on_crash();
                    }
                }
            }
            NetFault::NodeUp { node } => {
                if self.down[node] {
                    self.down[node] = false;
                    if emitting {
                        dlte_obs::emit(
                            now.as_nanos(),
                            node as u64,
                            Event::FaultNode {
                                node: node as u64,
                                up: true,
                            },
                        );
                    }
                    // The restart callback can originate packets, so it must
                    // run under the node's own scheduling origin (see
                    // `World::handle`); only the owning shard still has the
                    // handler installed.
                    queue.set_origin(node as u64 + 1);
                    self.with_handler(node, queue, now, |h, ctx| h.on_restart(ctx));
                    queue.set_origin(0);
                }
            }
            NetFault::NodePause { node } => self.paused[node] = true,
            NetFault::NodeResume { node } => {
                if self.paused[node] {
                    self.paused[node] = false;
                    for tag in std::mem::take(&mut self.deferred[node]) {
                        queue.schedule_at(now, NetEvent::Timer { node, tag });
                    }
                }
            }
            NetFault::Partition { ref nodes, up } => {
                for (lid, l) in self.core.links.iter_mut().enumerate() {
                    if nodes.contains(&l.a) != nodes.contains(&l.b) {
                        l.up = up;
                        if emitting {
                            dlte_obs::emit(
                                now.as_nanos(),
                                u64::MAX,
                                Event::FaultLink {
                                    link: lid as u64,
                                    up,
                                },
                            );
                        }
                    }
                }
            }
            NetFault::RouteSet { node, prefix, link } => {
                self.core.nodes[node].set_route(prefix, link);
            }
        }
    }

    /// Turn this replica into one shard of a partitioned run: record the
    /// ownership map and drop the handlers of nodes other shards own. Every
    /// replica keeps the *full* topology (links, routes, node info) — link
    /// endpoints only ever mutate their own direction's state, and faults
    /// are broadcast — so no cross-shard memory access is ever needed.
    pub fn apply_shard_plan(&mut self, plan: &ShardPlan, my_shard: usize) {
        assert_eq!(
            plan.num_nodes(),
            self.core.nodes.len(),
            "plan covers a different topology"
        );
        assert!(my_shard < plan.n());
        self.core.my_shard = my_shard;
        self.core.shard_of = (0..plan.num_nodes()).map(|i| plan.shard_of(i)).collect();
        for node in 0..plan.num_nodes() {
            if plan.shard_of(node) != my_shard {
                self.handlers[node] = None;
            }
        }
    }

    /// The shard this replica runs as (0 unless [`Network::apply_shard_plan`]
    /// said otherwise).
    pub fn my_shard(&self) -> usize {
        self.core.my_shard
    }
}

impl World for Network {
    type Event = NetEvent;

    /// `Start` and `Fault` are replicated into every shard of a sharded run
    /// (each shard starts its own handlers; fault state is replicated), so
    /// they are excluded from dispatch counts — otherwise `events_dispatched`
    /// would grow with the shard count instead of staying invariant.
    fn is_control(event: &NetEvent) -> bool {
        matches!(event, NetEvent::Start | NetEvent::Fault(_))
    }

    fn handle(&mut self, now: SimTime, event: NetEvent, queue: &mut EventQueue<NetEvent>) {
        // Every path that can *schedule* (handler callbacks, forwarding)
        // runs under the acting node's origin (`node+1`), making each new
        // event's canonical key a pure function of that node's scheduling
        // history. The engine resets the origin to 0 (external/control)
        // around each dispatch.
        match event {
            NetEvent::PacketArrive { node, slot } => {
                queue.set_origin(node as u64 + 1);
                self.core.fabric.arrivals += 1;
                match slot {
                    // Fast path: the bytes stay parked in the arena. Only a
                    // consuming outcome (drop accounting, handler ingest,
                    // trace delivery) takes them out; plain forwarding edits
                    // the pooled packet in place and re-schedules the same
                    // 8-byte handle.
                    PacketSlot::Pooled(r) => {
                        if self.down[node] || self.paused[node] {
                            let Ok(packet) = self.core.pool.take(r) else {
                                // A stale handle in a scheduled arrival means
                                // the packet was taken twice — a fabric bug,
                                // not a scenario outcome. Surface it in
                                // debug; drop the phantom arrival in release.
                                debug_assert!(false, "stale packet handle at node {node}");
                                return;
                            };
                            self.core.trace.drops_node_down += 1;
                            note_drop(now, node, DropReason::NodeDown, packet.size_bytes);
                            return;
                        }
                        if self.handlers[node].is_some() {
                            // One handler per node, so ownership moves
                            // straight into it — the old unconditional
                            // per-arrival `clone` is gone.
                            let Ok(packet) = self.core.pool.take(r) else {
                                debug_assert!(false, "stale packet handle at node {node}");
                                return;
                            };
                            self.with_handler(node, queue, now, move |h, ctx| {
                                h.on_packet(ctx, packet);
                            });
                            self.core.fabric.absorbed += 1;
                        } else {
                            let owns = match self.core.pool.get(r) {
                                Some(p) => self.core.nodes[node].owns(p.dst),
                                None => {
                                    debug_assert!(false, "stale packet handle at node {node}");
                                    return;
                                }
                            };
                            if owns {
                                let packet = self.core.pool.take(r).expect("just read it");
                                self.core.fabric.delivered_plain += 1;
                                self.core.trace.record_delivery(now, &packet);
                            } else {
                                self.core.fabric.reforwarded += 1;
                                self.core.route_and_transmit_ref(now, node, r, queue);
                            }
                        }
                    }
                    // Owned bytes: a shard-crossing arrival, or every hop of
                    // the naive-memory baseline (which boxes per hop and
                    // re-enacts the historical clone-per-handler so the
                    // bench's `bytes_copied` column can price it).
                    PacketSlot::Owned(b) => {
                        let packet = *b;
                        if self.down[node] || self.paused[node] {
                            self.core.trace.drops_node_down += 1;
                            note_drop(now, node, DropReason::NodeDown, packet.size_bytes);
                            return;
                        }
                        if self.handlers[node].is_some() {
                            let naive = self.core.naive_mem;
                            self.with_handler(node, queue, now, move |h, ctx| {
                                if naive {
                                    let copy = packet.clone();
                                    h.on_packet(ctx, copy);
                                } else {
                                    h.on_packet(ctx, packet);
                                }
                            });
                            self.core.fabric.absorbed += 1;
                        } else if self.core.nodes[node].owns(packet.dst) {
                            self.core.fabric.delivered_plain += 1;
                            self.core.trace.record_delivery(now, &packet);
                        } else {
                            self.core.fabric.reforwarded += 1;
                            self.core.route_and_transmit(now, node, packet, queue);
                        }
                    }
                }
            }
            NetEvent::LinkDeparted { link, dir } => {
                self.core.links[link].departed(dir);
            }
            NetEvent::Timer { node, tag } => {
                if self.down[node] {
                    // Crashed: pending timers belong to the lost state.
                    return;
                }
                if self.paused[node] {
                    self.deferred[node].push(tag);
                    return;
                }
                queue.set_origin(node as u64 + 1);
                self.with_handler(node, queue, now, |h, ctx| h.on_timer(ctx, tag));
            }
            NetEvent::Start => {
                for node in 0..self.handlers.len() {
                    queue.set_origin(node as u64 + 1);
                    self.with_handler(node, queue, now, |h, ctx| h.on_start(ctx));
                }
                queue.set_origin(0);
            }
            NetEvent::Fault(fault) => self.apply_fault(now, fault, queue),
        }
    }
}

impl ShardWorld for Network {
    fn drain_outbound(&mut self) -> Vec<OutMsg<NetEvent>> {
        std::mem::take(&mut self.core.outbound)
    }
}

/// Builder for network worlds.
pub struct NetworkBuilder {
    nodes: Vec<NodeInfo>,
    handlers: Vec<Option<Box<dyn NodeHandler>>>,
    links: Vec<Link>,
    rng: SimRng,
}

impl NetworkBuilder {
    pub fn new(seed: u64) -> Self {
        NetworkBuilder {
            nodes: Vec::new(),
            handlers: Vec::new(),
            links: Vec::new(),
            rng: SimRng::new(seed),
        }
    }

    /// Add a plain router/host node.
    pub fn node(&mut self, name: impl Into<String>) -> NodeId {
        self.nodes.push(NodeInfo::new(name));
        self.handlers.push(None);
        self.nodes.len() - 1
    }

    /// Add a node with behaviour.
    pub fn host(&mut self, name: impl Into<String>, handler: Box<dyn NodeHandler>) -> NodeId {
        let id = self.node(name);
        self.handlers[id] = Some(handler);
        id
    }

    /// Attach (or replace) a handler on an existing node.
    pub fn set_handler(&mut self, node: NodeId, handler: Box<dyn NodeHandler>) {
        self.handlers[node] = Some(handler);
    }

    /// Give a node an address.
    pub fn addr(&mut self, node: NodeId, addr: crate::addr::Addr) -> &mut Self {
        self.nodes[node].add_addr(addr);
        self
    }

    /// Connect two nodes; returns the link id.
    pub fn link(&mut self, a: NodeId, b: NodeId, config: LinkConfig) -> LinkId {
        assert!(a < self.nodes.len() && b < self.nodes.len());
        assert_ne!(a, b, "self-links not supported");
        self.links.push(Link::new(a, b, config));
        self.links.len() - 1
    }

    /// Install a static route.
    pub fn route(&mut self, node: NodeId, prefix: crate::addr::Prefix, link: LinkId) -> &mut Self {
        self.nodes[node].set_route(prefix, link);
        self
    }

    /// Compute hop-count shortest-path routes from every node to every
    /// address-owning node, installing host routes (/32). Ties broken by
    /// lower link id — deterministic. Convenient for experiment topologies;
    /// explicit routes can still override (longer prefixes win, and /32 is
    /// the longest, so use explicit /32 routes *instead of* auto_routes when
    /// both would apply).
    pub fn auto_routes(&mut self) {
        let n = self.nodes.len();
        // adjacency: node -> [(neighbor, link)]
        let mut adj: Vec<Vec<(NodeId, LinkId)>> = vec![Vec::new(); n];
        for (lid, l) in self.links.iter().enumerate() {
            adj[l.a].push((l.b, lid));
            adj[l.b].push((l.a, lid));
        }
        for target in 0..n {
            if self.nodes[target].addrs().is_empty() {
                continue;
            }
            // BFS from target; first-hop of the reverse path gives each
            // node's outgoing link toward target.
            let mut dist = vec![usize::MAX; n];
            let mut via: Vec<Option<LinkId>> = vec![None; n];
            let mut q = std::collections::VecDeque::new();
            dist[target] = 0;
            q.push_back(target);
            while let Some(u) = q.pop_front() {
                for &(v, lid) in &adj[u] {
                    if dist[v] == usize::MAX {
                        dist[v] = dist[u] + 1;
                        via[v] = Some(lid);
                        q.push_back(v);
                    }
                }
            }
            let addrs = self.nodes[target].addrs().to_vec();
            for (node, &hop) in via.iter().enumerate() {
                if node == target {
                    continue;
                }
                if let Some(link) = hop {
                    for &a in &addrs {
                        self.nodes[node].set_route(crate::addr::Prefix::new(a, 32), link);
                    }
                }
            }
        }
    }

    /// Finalize into a ready-to-run simulation (the `Start` event is already
    /// scheduled).
    pub fn build(self) -> Simulation<Network> {
        let n = self.nodes.len();
        let world = Network {
            core: NetCore {
                nodes: self.nodes,
                links: self.links,
                trace: TraceStats::new(),
                fabric: FabricCounters::default(),
                rng: self.rng,
                pkt_seqs: vec![0; n],
                draw_seqs: vec![0; n],
                my_shard: 0,
                shard_of: vec![0; n],
                outbound: Vec::new(),
                pool: PacketPool::new(),
                naive_mem: crate::naive_memory(),
            },
            handlers: self.handlers,
            down: vec![false; n],
            paused: vec![false; n],
            deferred: vec![Vec::new(); n],
        };
        let mut sim = Simulation::new(world);
        sim.queue_mut().schedule_at(SimTime::ZERO, NetEvent::Start);
        sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Addr, Prefix};
    use crate::packet::Payload;
    use dlte_sim::SimDuration;

    /// Handler that fires one flow packet at t=1ms toward a fixed address.
    struct OneShot {
        dst: Addr,
        bytes: u32,
    }

    impl NodeHandler for OneShot {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            ctx.set_timer(SimDuration::from_millis(1), 0);
        }
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _tag: u64) {
            let p = ctx
                .make_packet(self.dst, self.bytes)
                .with_payload(Payload::Flow { flow: 1, seq: 0 });
            ctx.forward(p);
        }
        fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, packet: Packet) {
            ctx.deliver_local(&packet);
        }
    }

    fn line_topology() -> (Simulation<Network>, NodeId) {
        // src —— r —— dst, 1 Gbit/s links with 1 ms delay each.
        let mut b = NetworkBuilder::new(1);
        let dst_addr = Addr::new(10, 0, 0, 2);
        let src = b.host(
            "src",
            Box::new(OneShot {
                dst: dst_addr,
                bytes: 1000,
            }),
        );
        b.addr(src, Addr::new(10, 0, 0, 1));
        let r = b.node("r");
        let dst = b.node("dst");
        b.addr(dst, dst_addr);
        let cfg = LinkConfig {
            delay: SimDuration::from_millis(1),
            rate_bps: 1e9,
            queue_pkts: 100,
            loss: 0.0,
        };
        b.link(src, r, cfg);
        b.link(r, dst, cfg);
        b.auto_routes();
        (b.build(), dst)
    }

    #[test]
    fn packet_crosses_two_hops() {
        let (mut sim, _) = line_topology();
        sim.run_to_completion(10_000);
        let t = sim.world().trace();
        let f = t.flow(1).expect("flow delivered");
        assert_eq!(f.delivered_packets, 1);
        // Latency: 2×1 ms propagation + 2×8 µs serialization ≈ 2.016 ms.
        let lat = f.latency_ms.values()[0];
        assert!((lat - 2.016).abs() < 0.01, "latency {lat}");
        assert!((f.hops.mean() - 2.0).abs() < 1e-9);
        assert_eq!(t.total_drops(), 0);
    }

    #[test]
    fn no_route_drops_and_counts() {
        let mut b = NetworkBuilder::new(1);
        let src = b.host(
            "src",
            Box::new(OneShot {
                dst: Addr::new(99, 0, 0, 1),
                bytes: 100,
            }),
        );
        b.addr(src, Addr::new(10, 0, 0, 1));
        let mut sim = b.build();
        sim.run_to_completion(100);
        assert_eq!(sim.world().trace().drops_no_route, 1);
    }

    #[test]
    fn ttl_guards_routing_loops() {
        // Two routers pointing default routes at each other.
        let mut b = NetworkBuilder::new(1);
        let src = b.host(
            "src",
            Box::new(OneShot {
                dst: Addr::new(99, 0, 0, 1),
                bytes: 100,
            }),
        );
        b.addr(src, Addr::new(10, 0, 0, 1));
        let r1 = b.node("r1");
        let r2 = b.node("r2");
        let cfg = LinkConfig::lan();
        let l0 = b.link(src, r1, cfg);
        let l1 = b.link(r1, r2, cfg);
        b.route(src, Prefix::DEFAULT, l0);
        b.route(r1, Prefix::DEFAULT, l1);
        b.route(r2, Prefix::DEFAULT, l1); // loop r1 <-> r2
        let mut sim = b.build();
        sim.run_to_completion(100_000);
        assert_eq!(sim.world().trace().drops_ttl, 1);
        // Hop counting stopped at the TTL.
        assert!(sim.now().as_millis() < 100);
    }

    #[test]
    fn queue_overflow_drops() {
        // Slow link (10 kbit/s), queue of 2, burst of 10 packets.
        struct Burst {
            dst: Addr,
        }
        impl NodeHandler for Burst {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.set_timer(SimDuration::from_millis(1), 0);
            }
            fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _tag: u64) {
                for seq in 0..10 {
                    let p = ctx
                        .make_packet(self.dst, 1000)
                        .with_payload(Payload::Flow { flow: 5, seq });
                    ctx.forward(p);
                }
            }
            fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, _p: Packet) {}
        }
        let mut b = NetworkBuilder::new(1);
        let dst_addr = Addr::new(10, 0, 0, 2);
        let src = b.host("src", Box::new(Burst { dst: dst_addr }));
        b.addr(src, Addr::new(10, 0, 0, 1));
        let dst = b.node("dst");
        b.addr(dst, dst_addr);
        let l = b.link(
            src,
            dst,
            LinkConfig {
                delay: SimDuration::from_millis(1),
                rate_bps: 10_000.0,
                queue_pkts: 2,
                loss: 0.0,
            },
        );
        b.route(src, Prefix::new(dst_addr, 32), l);
        let mut sim = b.build();
        sim.run_to_completion(10_000);
        let t = sim.world().trace();
        assert_eq!(t.drops_queue, 8, "2 fit, 8 drop");
        assert_eq!(t.flow(5).unwrap().delivered_packets, 2);
    }

    #[test]
    fn random_loss_is_applied() {
        struct Many {
            dst: Addr,
        }
        impl NodeHandler for Many {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                for k in 0..1000 {
                    ctx.set_timer(SimDuration::from_millis(k), k);
                }
            }
            fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tag: u64) {
                let p = ctx
                    .make_packet(self.dst, 100)
                    .with_payload(Payload::Flow { flow: 9, seq: tag });
                ctx.forward(p);
            }
            fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, _p: Packet) {}
        }
        let mut b = NetworkBuilder::new(33);
        let dst_addr = Addr::new(10, 0, 0, 2);
        let src = b.host("src", Box::new(Many { dst: dst_addr }));
        b.addr(src, Addr::new(10, 0, 0, 1));
        let dst = b.node("dst");
        b.addr(dst, dst_addr);
        let mut cfg = LinkConfig::lan();
        cfg.loss = 0.2;
        let l = b.link(src, dst, cfg);
        b.route(src, Prefix::new(dst_addr, 32), l);
        let mut sim = b.build();
        sim.run_to_completion(100_000);
        let t = sim.world().trace();
        let delivered = t.flow(9).unwrap().delivered_packets;
        assert!((750..850).contains(&delivered), "delivered {delivered}");
        assert_eq!(delivered + t.drops_loss, 1000);
    }

    #[test]
    fn auto_routes_reach_all_addressed_nodes() {
        // Star: center connected to 4 leaves, each leaf addressed.
        let mut b = NetworkBuilder::new(1);
        let center = b.node("center");
        let mut leaves = Vec::new();
        for i in 0..4u8 {
            let leaf = b.node(format!("leaf{i}"));
            b.addr(leaf, Addr::new(10, 0, i, 1));
            b.link(center, leaf, LinkConfig::lan());
            leaves.push(leaf);
        }
        b.auto_routes();
        let sim = b.build();
        let core = &sim.world().core;
        // Every leaf can reach every other leaf's address via the center.
        for &from in &leaves {
            for (i, &to) in leaves.iter().enumerate() {
                if from == to {
                    continue;
                }
                assert!(
                    core.nodes[from]
                        .route_for(Addr::new(10, 0, i as u8, 1))
                        .is_some(),
                    "leaf {from} cannot reach leaf {to}"
                );
            }
        }
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let (mut sim, _) = line_topology();
            sim.run_to_completion(10_000);
            sim.world().trace().flow(1).unwrap().latency_ms.values()[0]
        };
        assert_eq!(run(), run());
    }

    /// Sends one flow packet every 10 ms, forever.
    struct Periodic {
        dst: Addr,
        sent: u64,
    }

    impl NodeHandler for Periodic {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            ctx.set_timer(SimDuration::from_millis(10), 0);
        }
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _tag: u64) {
            self.sent += 1;
            let p = ctx.make_packet(self.dst, 100).with_payload(Payload::Flow {
                flow: 1,
                seq: self.sent,
            });
            ctx.forward(p);
            ctx.set_timer(SimDuration::from_millis(10), 0);
        }
        fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, _p: Packet) {}
    }

    /// Counts deliveries; loses its count on crash.
    struct Sink {
        got: u64,
        crashes: u64,
        restarts: u64,
    }

    impl NodeHandler for Sink {
        fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, p: Packet) {
            self.got += 1;
            ctx.deliver_local(&p);
        }
        fn on_crash(&mut self) {
            self.got = 0;
            self.crashes += 1;
        }
        fn on_restart(&mut self, _ctx: &mut NodeCtx<'_>) {
            self.restarts += 1;
        }
    }

    #[test]
    fn node_crash_drops_packets_and_restart_recovers() {
        let mut b = NetworkBuilder::new(1);
        let dst_addr = Addr::new(10, 0, 0, 2);
        let src = b.host(
            "src",
            Box::new(Periodic {
                dst: dst_addr,
                sent: 0,
            }),
        );
        b.addr(src, Addr::new(10, 0, 0, 1));
        let dst = b.host(
            "dst",
            Box::new(Sink {
                got: 0,
                crashes: 0,
                restarts: 0,
            }),
        );
        b.addr(dst, dst_addr);
        b.link(src, dst, LinkConfig::lan());
        b.auto_routes();
        let mut sim = b.build();
        sim.queue_mut().schedule_at(
            SimTime::from_millis(100),
            NetEvent::Fault(NetFault::NodeDown { node: dst }),
        );
        sim.queue_mut().schedule_at(
            SimTime::from_millis(200),
            NetEvent::Fault(NetFault::NodeUp { node: dst }),
        );
        sim.run_until(SimTime::from_millis(305), 100_000);
        let w = sim.world();
        assert!(!w.node_is_down(dst));
        let sink = w.handler_as::<Sink>(dst).unwrap();
        assert_eq!(sink.crashes, 1);
        assert_eq!(sink.restarts, 1);
        // ~10 packets fell into the outage window; state was lost at crash
        // so only the ~10 post-restart packets are counted.
        let dropped = w.trace().drops_node_down;
        assert!((8..=12).contains(&dropped), "node-down drops {dropped}");
        assert!(
            (8..=12).contains(&sink.got),
            "post-restart deliveries {}",
            sink.got
        );
    }

    /// Regression guard for the handler fan-out fast path: with at most one
    /// handler per node, delivery moves ownership and never clones, so an
    /// end-to-end run under [`dlte_sim::report::scope`] observes zero copied
    /// bytes. The naive-memory baseline clones per arrival and must not.
    #[test]
    fn single_handler_dispatch_copies_no_bytes() {
        fn run_flow() -> dlte_sim::report::RunReport {
            let mut b = NetworkBuilder::new(1);
            let dst_addr = Addr::new(10, 0, 0, 2);
            let src = b.host(
                "src",
                Box::new(Periodic {
                    dst: dst_addr,
                    sent: 0,
                }),
            );
            b.addr(src, Addr::new(10, 0, 0, 1));
            let dst = b.host(
                "dst",
                Box::new(Sink {
                    got: 0,
                    crashes: 0,
                    restarts: 0,
                }),
            );
            b.addr(dst, dst_addr);
            b.link(src, dst, LinkConfig::lan());
            b.auto_routes();
            let ((), report) = dlte_sim::report::scope(|| {
                let mut sim = b.build();
                sim.run_until(SimTime::from_millis(305), 100_000);
                let got = sim.world().handler_as::<Sink>(dst).unwrap().got;
                assert!(got >= 20, "flow delivered ({got} packets)");
            });
            report
        }
        {
            let _fast = crate::test_support::naive_memory_lock(false);
            let report = run_flow();
            assert_eq!(
                report.bytes_copied, 0,
                "single-handler dispatch must move, not clone"
            );
        }
        {
            let _naive = crate::test_support::naive_memory_lock(true);
            let report = run_flow();
            assert!(
                report.bytes_copied > 0,
                "naive baseline clones per handler arrival"
            );
        }
    }

    /// Records the firing time (ms) of each of 5 pre-armed timers.
    struct Ticker {
        fired: Vec<u64>,
    }

    impl NodeHandler for Ticker {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            for k in 1..=5u64 {
                ctx.set_timer(SimDuration::from_millis(10 * k), k);
            }
        }
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _tag: u64) {
            self.fired.push(ctx.now.as_millis());
        }
        fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, _p: Packet) {}
    }

    #[test]
    fn pause_defers_timers_until_resume() {
        let mut b = NetworkBuilder::new(1);
        let t = b.host("t", Box::new(Ticker { fired: vec![] }));
        let mut sim = b.build();
        sim.queue_mut().schedule_at(
            SimTime::from_millis(15),
            NetEvent::Fault(NetFault::NodePause { node: t }),
        );
        sim.queue_mut().schedule_at(
            SimTime::from_millis(45),
            NetEvent::Fault(NetFault::NodeResume { node: t }),
        );
        sim.run_to_completion(1000);
        let w = sim.world();
        assert!(!w.node_is_paused(t));
        let ticker = w.handler_as::<Ticker>(t).unwrap();
        // Timer 1 fires normally; 2–4 (20/30/40 ms) defer to the resume at
        // 45 ms in original order; 5 fires on schedule.
        assert_eq!(ticker.fired, vec![10, 45, 45, 45, 50]);
    }

    #[test]
    fn partition_cuts_only_boundary_links() {
        let mut b = NetworkBuilder::new(1);
        let a = b.node("a");
        let c = b.node("c");
        let d = b.node("d");
        let l_ac = b.link(a, c, LinkConfig::lan());
        let l_ad = b.link(a, d, LinkConfig::lan());
        let l_cd = b.link(c, d, LinkConfig::lan());
        let mut sim = b.build();
        sim.queue_mut().schedule_at(
            SimTime::ZERO,
            NetEvent::Fault(NetFault::Partition {
                nodes: vec![a],
                up: false,
            }),
        );
        sim.run_to_completion(10);
        {
            let links = &sim.world().core.links;
            assert!(!links[l_ac].up);
            assert!(!links[l_ad].up);
            assert!(links[l_cd].up, "interior link untouched");
        }
        let now = sim.now();
        sim.queue_mut().schedule_at(
            now,
            NetEvent::Fault(NetFault::Partition {
                nodes: vec![a],
                up: true,
            }),
        );
        sim.run_to_completion(10);
        let links = &sim.world().core.links;
        assert!(links[l_ac].up && links[l_ad].up && links[l_cd].up);
    }

    #[test]
    fn drops_emit_events_and_always_on_counters() {
        use dlte_obs::{DropReason, Event};

        let _ = dlte_obs::metrics::take();
        dlte_obs::set_tracing(true);
        let mut b = NetworkBuilder::new(1);
        let src = b.host(
            "src",
            Box::new(OneShot {
                dst: Addr::new(99, 0, 0, 1),
                bytes: 100,
            }),
        );
        b.addr(src, Addr::new(10, 0, 0, 1));
        let mut sim = b.build();
        sim.run_to_completion(100);
        let records = dlte_obs::take_records();
        dlte_obs::set_tracing(false);
        assert_eq!(sim.world().trace().drops_no_route, 1);
        let drop = records
            .iter()
            .find(|r| matches!(r.event, Event::Drop { .. }))
            .expect("drop event traced");
        assert_eq!(
            drop.event,
            Event::Drop {
                reason: DropReason::NoRoute,
                bytes: 100
            }
        );
        assert_eq!(drop.node, src as u64);
        let snap = dlte_obs::metrics::take();
        assert_eq!(snap.counters["drops_no_route"], 1, "counter is always on");
    }

    #[test]
    fn faults_emit_link_and_node_transition_events() {
        use dlte_obs::Event;

        dlte_obs::set_tracing(true);
        let _ = dlte_obs::take_records();
        let mut b = NetworkBuilder::new(1);
        let a = b.node("a");
        let c = b.node("c");
        let l = b.link(a, c, LinkConfig::lan());
        let mut sim = b.build();
        sim.queue_mut().schedule_at(
            SimTime::from_millis(1),
            NetEvent::Fault(NetFault::LinkUp { link: l, up: false }),
        );
        sim.queue_mut().schedule_at(
            SimTime::from_millis(2),
            NetEvent::Fault(NetFault::NodeDown { node: c }),
        );
        sim.queue_mut().schedule_at(
            SimTime::from_millis(3),
            NetEvent::Fault(NetFault::NodeUp { node: c }),
        );
        sim.run_to_completion(100);
        let records = dlte_obs::take_records();
        dlte_obs::set_tracing(false);
        let events: Vec<&Event> = records.iter().map(|r| &r.event).collect();
        assert!(events.contains(&&Event::FaultLink {
            link: l as u64,
            up: false
        }));
        assert!(events.contains(&&Event::FaultNode {
            node: c as u64,
            up: false
        }));
        assert!(events.contains(&&Event::FaultNode {
            node: c as u64,
            up: true
        }));
    }

    /// The three ledger identities the conservation oracle checks. Kept here
    /// (next to the counters) so any future forwarding change that breaks the
    /// ledger fails immediately, not only under the fuzzer.
    fn assert_conserved(audit: &NetAudit) {
        let f = &audit.fabric;
        assert_eq!(
            f.originated + f.reforwarded,
            f.accepted
                + audit.drops_ttl
                + audit.drops_no_route
                + audit.drops_queue
                + audit.drops_loss
                + audit.drops_link_down,
            "every fabric entry has exactly one exit: {audit:?}"
        );
        assert_eq!(
            f.accepted,
            f.arrivals + audit.in_flight,
            "every accepted transmission arrives or is in flight: {audit:?}"
        );
        assert_eq!(
            f.arrivals,
            f.absorbed + f.delivered_plain + audit.drops_node_down + f.reforwarded,
            "every arrival terminates exactly once: {audit:?}"
        );
    }

    #[test]
    fn conservation_ledger_closes_on_clean_and_lossy_runs() {
        // Clean two-hop run, fully drained: nothing in flight.
        let (mut sim, _) = line_topology();
        sim.run_to_completion(10_000);
        let audit = sim.world().audit(in_flight_packets(sim.queue()));
        assert_eq!(audit.in_flight, 0);
        assert_eq!(audit.fabric.delivered_plain, 1);
        assert_conserved(&audit);

        // Mid-run audit: packets legitimately in flight.
        let (mut sim, _) = line_topology();
        sim.run_until(SimTime::from_micros(1500), 10_000);
        let audit = sim.world().audit(in_flight_packets(sim.queue()));
        assert_eq!(audit.in_flight, 1, "packet crossing the second hop");
        assert_conserved(&audit);
    }

    #[test]
    fn conservation_ledger_closes_under_faults() {
        // Periodic traffic into a crashing sink across a flapping link: the
        // ledger must close with loss, link-down and node-down drops all in
        // play.
        let mut b = NetworkBuilder::new(9);
        let dst_addr = Addr::new(10, 0, 0, 2);
        let src = b.host(
            "src",
            Box::new(Periodic {
                dst: dst_addr,
                sent: 0,
            }),
        );
        b.addr(src, Addr::new(10, 0, 0, 1));
        let dst = b.host(
            "dst",
            Box::new(Sink {
                got: 0,
                crashes: 0,
                restarts: 0,
            }),
        );
        b.addr(dst, dst_addr);
        let mut cfg = LinkConfig::lan();
        cfg.loss = 0.1;
        let l = b.link(src, dst, cfg);
        b.auto_routes();
        let mut sim = b.build();
        for (ms, fault) in [
            (100, NetFault::LinkUp { link: l, up: false }),
            (200, NetFault::LinkUp { link: l, up: true }),
            (300, NetFault::NodeDown { node: dst }),
            (400, NetFault::NodeUp { node: dst }),
        ] {
            sim.queue_mut()
                .schedule_at(SimTime::from_millis(ms), NetEvent::Fault(fault));
        }
        sim.run_until(SimTime::from_millis(505), 1_000_000);
        let audit = sim.world().audit(in_flight_packets(sim.queue()));
        assert!(audit.drops_loss > 0 && audit.drops_link_down > 0);
        assert!(audit.drops_node_down > 0);
        assert_conserved(&audit);
    }

    #[test]
    fn net_fault_serde_round_trips() {
        let faults = vec![
            NetFault::LinkUp { link: 3, up: false },
            NetFault::LinkOverride {
                link: 1,
                ov: LinkOverride {
                    loss: Some(0.25),
                    extra_delay: Some(SimDuration::from_millis(40)),
                    jitter: Some(SimDuration::from_millis(5)),
                    rate_bps: Some(1e6),
                },
            },
            NetFault::NodeDown { node: 2 },
            NetFault::NodeUp { node: 2 },
            NetFault::NodePause { node: 4 },
            NetFault::NodeResume { node: 4 },
            NetFault::Partition {
                nodes: vec![0, 5],
                up: false,
            },
            NetFault::RouteSet {
                node: 7,
                prefix: Prefix::new(Addr::new(10, 2, 0, 0), 16),
                link: 4,
            },
        ];
        for f in faults {
            let json = serde_json::to_string(&f).unwrap();
            let back: NetFault = serde_json::from_str(&json).unwrap();
            assert_eq!(back, f, "{json}");
        }
    }
}
