//! Nodes, handlers and the context handed to them.
//!
//! A [`NodeHandler`] is the extension point of the substrate: EPC entities,
//! dLTE local cores, traffic sources and OTT servers all implement it. The
//! [`NodeCtx`] passed to every callback exposes exactly the operations a
//! real host has — originate packets, forward packets, arm timers — plus the
//! simulator conveniences (address lookup, deterministic RNG, trace sink).

use crate::addr::{Addr, Prefix};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::link::LinkId;
use crate::network::{NetCore, NetEvent};
use crate::packet::Packet;
use dlte_sim::engine::EventKey;
use dlte_sim::{EventQueue, SimDuration, SimTime};
use std::cell::RefCell;

/// Identifies a node.
pub type NodeId = usize;

/// The compiled forwarding table: routes bucketed by prefix length into
/// exact-match hash maps probed longest-first, plus a hashed owned-address
/// set. Compiled lazily from a [`NodeInfo`]'s route/address lists — the
/// `generation` tag says which revision it was built from.
///
/// Lookup is bit-identical to the linear reference scan
/// ([`NodeInfo::route_for_linear`]): `set_route` keeps prefixes unique, so
/// at most one route of any given length can contain a destination, and
/// probing lengths 32→0 returns exactly the longest match.
#[derive(Clone, Debug, Default)]
struct Fib {
    /// The [`NodeInfo`] generation this FIB was compiled from (0 = never;
    /// node generations start at 1, so a fresh FIB is always stale).
    generation: u64,
    /// One exact-match table per prefix length present, longest first.
    by_len: Vec<(u8, FxHashMap<u32, LinkId>)>,
    owned: FxHashSet<Addr>,
}

impl Fib {
    fn compile(&mut self, generation: u64, addrs: &[Addr], routes: &[(Prefix, LinkId)]) {
        self.generation = generation;
        self.owned.clear();
        self.owned.extend(addrs.iter().copied());
        let mut buckets: FxHashMap<u8, FxHashMap<u32, LinkId>> = FxHashMap::default();
        for &(p, l) in routes {
            buckets.entry(p.len).or_default().insert(p.addr.0, l);
        }
        self.by_len = buckets.into_iter().collect();
        self.by_len
            .sort_unstable_by_key(|&(len, _)| std::cmp::Reverse(len));
    }

    fn lookup(&self, dst: Addr) -> Option<LinkId> {
        self.by_len
            .iter()
            .find_map(|(len, table)| table.get(&(dst.0 & Prefix::mask_of(*len))).copied())
    }
}

/// Static node metadata kept by the core.
///
/// The address and route lists are private: every mutation goes through a
/// method that bumps the generation counter, which invalidates the
/// compiled [`Fib`] the hot-path `route_for`/`owns` lookups use. The FIB
/// is rebuilt lazily on the next lookup, so bursts of control-plane churn
/// (attach storms, dLTE address churn, mesh reroutes) pay one compile,
/// not one per mutation.
#[derive(Clone, Debug)]
pub struct NodeInfo {
    pub name: String,
    /// Addresses owned by this node (delivery targets).
    addrs: Vec<Addr>,
    /// Longest-prefix-match routing table: (prefix, outgoing link).
    /// Invariant (enforced by `set_route`): prefixes are unique.
    routes: Vec<(Prefix, LinkId)>,
    /// Bumped by every address/route mutation.
    generation: u64,
    fib: RefCell<Fib>,
}

impl NodeInfo {
    pub fn new(name: impl Into<String>) -> NodeInfo {
        NodeInfo {
            name: name.into(),
            addrs: Vec::new(),
            routes: Vec::new(),
            generation: 1,
            fib: RefCell::new(Fib::default()),
        }
    }

    /// Addresses owned by this node.
    pub fn addrs(&self) -> &[Addr] {
        &self.addrs
    }

    /// The routing table, in insertion order.
    pub fn routes(&self) -> &[(Prefix, LinkId)] {
        &self.routes
    }

    /// Add an owned address.
    pub fn add_addr(&mut self, addr: Addr) {
        self.addrs.push(addr);
        self.generation += 1;
    }

    /// Remove an owned address, returning whether it was present.
    pub fn remove_addr(&mut self, addr: Addr) -> bool {
        let before = self.addrs.len();
        self.addrs.retain(|&a| a != addr);
        let removed = self.addrs.len() != before;
        if removed {
            self.generation += 1;
        }
        removed
    }

    /// Run `f` over the compiled FIB, rebuilding it first if any mutation
    /// happened since the last compile.
    fn with_fib<T>(&self, f: impl FnOnce(&Fib) -> T) -> T {
        let mut fib = self.fib.borrow_mut();
        if fib.generation != self.generation {
            fib.compile(self.generation, &self.addrs, &self.routes);
        }
        f(&fib)
    }

    /// True if `a` is one of this node's addresses.
    pub fn owns(&self, a: Addr) -> bool {
        self.with_fib(|fib| fib.owned.contains(&a))
    }

    /// Longest-prefix-match lookup (via the compiled FIB).
    pub fn route_for(&self, dst: Addr) -> Option<LinkId> {
        self.with_fib(|fib| fib.lookup(dst))
    }

    /// The original linear longest-prefix scan, kept as the reference
    /// semantics `route_for` must match bit-for-bit (the proptest
    /// equivalence suite checks this on random tables).
    pub fn route_for_linear(&self, dst: Addr) -> Option<LinkId> {
        self.routes
            .iter()
            .filter(|(p, _)| p.contains(dst))
            .max_by_key(|(p, _)| p.len)
            .map(|&(_, l)| l)
    }

    /// Install (or replace) a route.
    pub fn set_route(&mut self, prefix: Prefix, link: LinkId) {
        if let Some(entry) = self.routes.iter_mut().find(|(p, _)| *p == prefix) {
            entry.1 = link;
        } else {
            self.routes.push((prefix, link));
        }
        self.generation += 1;
    }

    /// Remove a route, returning whether it existed.
    pub fn remove_route(&mut self, prefix: Prefix) -> bool {
        let before = self.routes.len();
        self.routes.retain(|(p, _)| *p != prefix);
        let removed = self.routes.len() != before;
        if removed {
            self.generation += 1;
        }
        removed
    }

    /// Keep only the routes `f` approves of (bulk removal — e.g. flushing
    /// every route pointing at a dead link).
    pub fn retain_routes(&mut self, mut f: impl FnMut(Prefix, LinkId) -> bool) {
        self.routes.retain(|&(p, l)| f(p, l));
        self.generation += 1;
    }
}

/// Behaviour attached to a node.
///
/// The `Any` supertrait lets experiment harnesses extract their concrete
/// handler (and its accumulated measurements) back out of a finished
/// [`crate::Network`] via [`crate::Network::handler_as`]. The `Send`
/// supertrait lets a shard (which owns the handler exclusively) run on a
/// worker thread; handlers never share state across nodes, so this costs
/// nothing beyond banning `Rc`/`RefCell` captures inside handlers.
pub trait NodeHandler: std::any::Any + Send {
    /// A packet destined to (or traversing) this node arrived. The handler
    /// decides its fate: consume it, reply, or `ctx.forward(packet)`.
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, packet: Packet);

    /// A timer armed via [`NodeCtx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _tag: u64) {}

    /// Called once when the simulation starts (seed initial timers here).
    fn on_start(&mut self, _ctx: &mut NodeCtx<'_>) {}

    /// The node crashed (fault injection): drop volatile state. No ctx —
    /// a crashing node gets no parting actions. Timers pending at crash
    /// time never fire.
    fn on_crash(&mut self) {}

    /// The node restarted after a crash: re-seed timers/state. Defaults to
    /// re-running [`NodeHandler::on_start`].
    fn on_restart(&mut self, ctx: &mut NodeCtx<'_>) {
        self.on_start(ctx);
    }
}

/// The capabilities handed to a handler callback.
pub struct NodeCtx<'a> {
    pub now: SimTime,
    pub node: NodeId,
    pub(crate) core: &'a mut NetCore,
    pub(crate) queue: &'a mut EventQueue<NetEvent>,
}

impl NodeCtx<'_> {
    /// This node's first address (the common single-homed case).
    pub fn my_addr(&self) -> Addr {
        self.core.nodes[self.node]
            .addrs()
            .first()
            .copied()
            .unwrap_or(Addr::UNSPECIFIED)
    }

    /// Name of this node (diagnostics).
    pub fn my_name(&self) -> &str {
        &self.core.nodes[self.node].name
    }

    /// Allocate a fresh packet id. Ids are per-origin-node sequences
    /// (`(node+1) << 40 | seq`), so the id a packet gets is a pure function
    /// of its originator's history — independent of how other nodes'
    /// events interleave, and therefore of the shard count.
    pub fn new_packet_id(&mut self) -> u64 {
        self.core.next_packet_id(self.node)
    }

    /// Build a packet originating here, stamped with the current time.
    pub fn make_packet(&mut self, dst: Addr, size_bytes: u32) -> Packet {
        let id = self.new_packet_id();
        Packet::new(id, self.my_addr(), dst, size_bytes, self.now)
    }

    /// Route `packet` out of this node by its routing table.
    pub fn forward(&mut self, packet: Packet) {
        self.core.fabric.originated += 1;
        self.core
            .route_and_transmit(self.now, self.node, packet, self.queue);
    }

    /// Transmit `packet` on a specific link (bypassing the routing table).
    pub fn forward_via(&mut self, link: LinkId, packet: Packet) {
        self.core.fabric.originated += 1;
        self.core
            .transmit_on(self.now, self.node, link, packet, self.queue);
    }

    /// Deliver `packet` locally (record it in the trace sink).
    pub fn deliver_local(&mut self, packet: &Packet) {
        self.core.trace.record_delivery(self.now, packet);
    }

    /// Arm a timer; `tag` is returned to `on_timer`.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> EventKey {
        self.queue.schedule_in(
            delay,
            NetEvent::Timer {
                node: self.node,
                tag,
            },
        )
    }

    /// Cancel a previously armed timer.
    pub fn cancel_timer(&mut self, key: EventKey) {
        self.queue.cancel(key);
    }

    /// Uniform draw in [0,1), deterministic per node: the k-th draw made by
    /// node `n` is `hash(seed, salt, n, k)`. Counter-based rather than a
    /// shared stream so the value never depends on what *other* nodes drew
    /// first — a shard-count-invariance requirement.
    pub fn rand_unit(&mut self) -> f64 {
        self.core.node_rand_unit(self.node)
    }

    /// Mutate this node's routing/address state (e.g. a P-GW announcing a
    /// UE address, or a dLTE AP assigning a new one).
    pub fn node_info_mut(&mut self) -> &mut NodeInfo {
        &mut self.core.nodes[self.node]
    }

    /// Inspect another node's info (e.g. to find a peer's address).
    pub fn peer_info(&self, node: NodeId) -> &NodeInfo {
        &self.core.nodes[node]
    }

    /// Add an address to an arbitrary node and (optionally) point a host
    /// route at it from a neighbor — used by attach procedures.
    pub fn add_addr(&mut self, node: NodeId, addr: Addr) {
        self.core.nodes[node].add_addr(addr);
    }

    /// Remove an address from a node (detach / address churn), returning
    /// whether it was present.
    pub fn remove_addr(&mut self, node: NodeId, addr: Addr) -> bool {
        self.core.nodes[node].remove_addr(addr)
    }

    /// Install a route on an arbitrary node (control-plane actions reach
    /// across the topology; the "wire" cost is modeled by the control
    /// packets the caller sends).
    pub fn set_route_on(&mut self, node: NodeId, prefix: Prefix, link: LinkId) {
        self.core.nodes[node].set_route(prefix, link);
    }

    /// Bring a link up or down (fault-injection orchestration).
    pub fn set_link_up(&mut self, link: LinkId, up: bool) {
        self.core.links[link].up = up;
    }

    /// Schedule a fault to be applied after `delay`. Faults are ordinary
    /// events, so they interleave deterministically with packets and timers.
    ///
    /// Sharding caveat: this schedules into the *local* shard's queue only.
    /// Pre-planned fault timelines are instead broadcast into every shard
    /// at build time (see `ShardedSim::schedule_fault_broadcast`), so a
    /// handler calling this at runtime must only target state its own
    /// shard reads — or the run must stay at `--shards 1`.
    pub fn schedule_fault(
        &mut self,
        delay: SimDuration,
        fault: crate::network::NetFault,
    ) -> EventKey {
        self.queue.schedule_in(delay, NetEvent::Fault(fault))
    }

    /// Whether a link is currently up.
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.core.links[link].up
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpm_prefers_longest() {
        let mut n = NodeInfo::new("r1");
        n.set_route(Prefix::DEFAULT, 0);
        n.set_route(Prefix::new(Addr::new(10, 0, 0, 0), 8), 1);
        n.set_route(Prefix::new(Addr::new(10, 1, 0, 0), 16), 2);
        assert_eq!(n.route_for(Addr::new(10, 1, 2, 3)), Some(2));
        assert_eq!(n.route_for(Addr::new(10, 9, 2, 3)), Some(1));
        assert_eq!(n.route_for(Addr::new(8, 8, 8, 8)), Some(0));
    }

    #[test]
    fn set_route_replaces() {
        let mut n = NodeInfo::new("r1");
        let p = Prefix::new(Addr::new(10, 0, 0, 0), 8);
        n.set_route(p, 1);
        n.set_route(p, 5);
        assert_eq!(n.routes().len(), 1);
        assert_eq!(n.route_for(Addr::new(10, 0, 0, 1)), Some(5));
        assert!(n.remove_route(p));
        assert!(!n.remove_route(p));
        assert_eq!(n.route_for(Addr::new(10, 0, 0, 1)), None);
    }

    #[test]
    fn owns_addr() {
        let mut n = NodeInfo::new("h");
        n.add_addr(Addr::new(192, 168, 1, 1));
        assert!(n.owns(Addr::new(192, 168, 1, 1)));
        assert!(!n.owns(Addr::new(192, 168, 1, 2)));
    }

    /// Every mutation path invalidates the compiled FIB: lookups after
    /// churn see the new state, never a stale compile.
    #[test]
    fn fib_invalidates_on_every_mutation() {
        let mut n = NodeInfo::new("r1");
        let p8 = Prefix::new(Addr::new(10, 0, 0, 0), 8);
        let p16 = Prefix::new(Addr::new(10, 1, 0, 0), 16);
        n.set_route(p8, 1);
        assert_eq!(n.route_for(Addr::new(10, 1, 2, 3)), Some(1)); // compiles
        n.set_route(p16, 2);
        assert_eq!(
            n.route_for(Addr::new(10, 1, 2, 3)),
            Some(2),
            "new route seen"
        );
        n.set_route(p16, 7);
        assert_eq!(
            n.route_for(Addr::new(10, 1, 2, 3)),
            Some(7),
            "replacement seen"
        );
        assert!(n.remove_route(p16));
        assert_eq!(n.route_for(Addr::new(10, 1, 2, 3)), Some(1), "removal seen");
        n.retain_routes(|_, _| false);
        assert_eq!(n.route_for(Addr::new(10, 1, 2, 3)), None, "bulk flush seen");

        let a = Addr::new(100, 64, 0, 1);
        assert!(!n.owns(a)); // compiles the owned set
        n.add_addr(a);
        assert!(n.owns(a), "added address seen");
        assert!(n.remove_addr(a));
        assert!(!n.owns(a), "removed address seen");
    }

    /// The compiled lookup must agree with the linear reference on the
    /// shapes that stress it: overlaps, the default route, misses.
    #[test]
    fn fib_matches_linear_reference() {
        let mut n = NodeInfo::new("r1");
        n.set_route(Prefix::DEFAULT, 0);
        n.set_route(Prefix::new(Addr::new(10, 0, 0, 0), 8), 1);
        n.set_route(Prefix::new(Addr::new(10, 1, 0, 0), 16), 2);
        n.set_route(Prefix::new(Addr::new(10, 1, 2, 3), 32), 3);
        for dst in [
            Addr::new(10, 1, 2, 3),
            Addr::new(10, 1, 2, 4),
            Addr::new(10, 9, 9, 9),
            Addr::new(8, 8, 8, 8),
            Addr::UNSPECIFIED,
        ] {
            assert_eq!(n.route_for(dst), n.route_for_linear(dst), "dst {dst}");
        }
    }
}
