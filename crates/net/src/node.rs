//! Nodes, handlers and the context handed to them.
//!
//! A [`NodeHandler`] is the extension point of the substrate: EPC entities,
//! dLTE local cores, traffic sources and OTT servers all implement it. The
//! [`NodeCtx`] passed to every callback exposes exactly the operations a
//! real host has — originate packets, forward packets, arm timers — plus the
//! simulator conveniences (address lookup, deterministic RNG, trace sink).

use crate::addr::{Addr, Prefix};
use crate::link::LinkId;
use crate::network::{NetCore, NetEvent};
use crate::packet::Packet;
use dlte_sim::engine::EventKey;
use dlte_sim::{EventQueue, SimDuration, SimTime};

/// Identifies a node.
pub type NodeId = usize;

/// Static node metadata kept by the core.
#[derive(Clone, Debug)]
pub struct NodeInfo {
    pub name: String,
    /// Addresses owned by this node (delivery targets).
    pub addrs: Vec<Addr>,
    /// Longest-prefix-match routing table: (prefix, outgoing link).
    pub routes: Vec<(Prefix, LinkId)>,
}

impl NodeInfo {
    pub fn new(name: impl Into<String>) -> NodeInfo {
        NodeInfo {
            name: name.into(),
            addrs: Vec::new(),
            routes: Vec::new(),
        }
    }

    /// True if `a` is one of this node's addresses.
    pub fn owns(&self, a: Addr) -> bool {
        self.addrs.contains(&a)
    }

    /// Longest-prefix-match lookup.
    pub fn route_for(&self, dst: Addr) -> Option<LinkId> {
        self.routes
            .iter()
            .filter(|(p, _)| p.contains(dst))
            .max_by_key(|(p, _)| p.len)
            .map(|&(_, l)| l)
    }

    /// Install (or replace) a route.
    pub fn set_route(&mut self, prefix: Prefix, link: LinkId) {
        if let Some(entry) = self.routes.iter_mut().find(|(p, _)| *p == prefix) {
            entry.1 = link;
        } else {
            self.routes.push((prefix, link));
        }
    }

    /// Remove a route, returning whether it existed.
    pub fn remove_route(&mut self, prefix: Prefix) -> bool {
        let before = self.routes.len();
        self.routes.retain(|(p, _)| *p != prefix);
        self.routes.len() != before
    }
}

/// Behaviour attached to a node.
///
/// The `Any` supertrait lets experiment harnesses extract their concrete
/// handler (and its accumulated measurements) back out of a finished
/// [`crate::Network`] via [`crate::Network::handler_as`].
pub trait NodeHandler: std::any::Any {
    /// A packet destined to (or traversing) this node arrived. The handler
    /// decides its fate: consume it, reply, or `ctx.forward(packet)`.
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, packet: Packet);

    /// A timer armed via [`NodeCtx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _tag: u64) {}

    /// Called once when the simulation starts (seed initial timers here).
    fn on_start(&mut self, _ctx: &mut NodeCtx<'_>) {}

    /// The node crashed (fault injection): drop volatile state. No ctx —
    /// a crashing node gets no parting actions. Timers pending at crash
    /// time never fire.
    fn on_crash(&mut self) {}

    /// The node restarted after a crash: re-seed timers/state. Defaults to
    /// re-running [`NodeHandler::on_start`].
    fn on_restart(&mut self, ctx: &mut NodeCtx<'_>) {
        self.on_start(ctx);
    }
}

/// The capabilities handed to a handler callback.
pub struct NodeCtx<'a> {
    pub now: SimTime,
    pub node: NodeId,
    pub(crate) core: &'a mut NetCore,
    pub(crate) queue: &'a mut EventQueue<NetEvent>,
}

impl NodeCtx<'_> {
    /// This node's first address (the common single-homed case).
    pub fn my_addr(&self) -> Addr {
        self.core.nodes[self.node]
            .addrs
            .first()
            .copied()
            .unwrap_or(Addr::UNSPECIFIED)
    }

    /// Name of this node (diagnostics).
    pub fn my_name(&self) -> &str {
        &self.core.nodes[self.node].name
    }

    /// Allocate a fresh packet id.
    pub fn new_packet_id(&mut self) -> u64 {
        self.core.next_packet_id()
    }

    /// Build a packet originating here, stamped with the current time.
    pub fn make_packet(&mut self, dst: Addr, size_bytes: u32) -> Packet {
        let id = self.new_packet_id();
        Packet::new(id, self.my_addr(), dst, size_bytes, self.now)
    }

    /// Route `packet` out of this node by its routing table.
    pub fn forward(&mut self, packet: Packet) {
        self.core.fabric.originated += 1;
        self.core
            .route_and_transmit(self.now, self.node, packet, self.queue);
    }

    /// Transmit `packet` on a specific link (bypassing the routing table).
    pub fn forward_via(&mut self, link: LinkId, packet: Packet) {
        self.core.fabric.originated += 1;
        self.core
            .transmit_on(self.now, self.node, link, packet, self.queue);
    }

    /// Deliver `packet` locally (record it in the trace sink).
    pub fn deliver_local(&mut self, packet: &Packet) {
        self.core.trace.record_delivery(self.now, packet);
    }

    /// Arm a timer; `tag` is returned to `on_timer`.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> EventKey {
        self.queue.schedule_in(
            delay,
            NetEvent::Timer {
                node: self.node,
                tag,
            },
        )
    }

    /// Cancel a previously armed timer.
    pub fn cancel_timer(&mut self, key: EventKey) {
        self.queue.cancel(key);
    }

    /// Uniform draw in [0,1) from the network's deterministic RNG.
    pub fn rand_unit(&mut self) -> f64 {
        self.core.rng.unit()
    }

    /// Mutate this node's routing/address state (e.g. a P-GW announcing a
    /// UE address, or a dLTE AP assigning a new one).
    pub fn node_info_mut(&mut self) -> &mut NodeInfo {
        &mut self.core.nodes[self.node]
    }

    /// Inspect another node's info (e.g. to find a peer's address).
    pub fn peer_info(&self, node: NodeId) -> &NodeInfo {
        &self.core.nodes[node]
    }

    /// Add an address to an arbitrary node and (optionally) point a host
    /// route at it from a neighbor — used by attach procedures.
    pub fn add_addr(&mut self, node: NodeId, addr: Addr) {
        self.core.nodes[node].addrs.push(addr);
    }

    /// Remove an address from a node (detach / address churn), returning
    /// whether it was present.
    pub fn remove_addr(&mut self, node: NodeId, addr: Addr) -> bool {
        let addrs = &mut self.core.nodes[node].addrs;
        let before = addrs.len();
        addrs.retain(|&a| a != addr);
        addrs.len() != before
    }

    /// Install a route on an arbitrary node (control-plane actions reach
    /// across the topology; the "wire" cost is modeled by the control
    /// packets the caller sends).
    pub fn set_route_on(&mut self, node: NodeId, prefix: Prefix, link: LinkId) {
        self.core.nodes[node].set_route(prefix, link);
    }

    /// Bring a link up or down (fault-injection orchestration).
    pub fn set_link_up(&mut self, link: LinkId, up: bool) {
        self.core.links[link].up = up;
    }

    /// Schedule a fault to be applied after `delay`. Faults are ordinary
    /// events, so they interleave deterministically with packets and timers.
    pub fn schedule_fault(
        &mut self,
        delay: SimDuration,
        fault: crate::network::NetFault,
    ) -> EventKey {
        self.queue.schedule_in(delay, NetEvent::Fault(fault))
    }

    /// Whether a link is currently up.
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.core.links[link].up
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpm_prefers_longest() {
        let mut n = NodeInfo::new("r1");
        n.set_route(Prefix::DEFAULT, 0);
        n.set_route(Prefix::new(Addr::new(10, 0, 0, 0), 8), 1);
        n.set_route(Prefix::new(Addr::new(10, 1, 0, 0), 16), 2);
        assert_eq!(n.route_for(Addr::new(10, 1, 2, 3)), Some(2));
        assert_eq!(n.route_for(Addr::new(10, 9, 2, 3)), Some(1));
        assert_eq!(n.route_for(Addr::new(8, 8, 8, 8)), Some(0));
    }

    #[test]
    fn set_route_replaces() {
        let mut n = NodeInfo::new("r1");
        let p = Prefix::new(Addr::new(10, 0, 0, 0), 8);
        n.set_route(p, 1);
        n.set_route(p, 5);
        assert_eq!(n.routes.len(), 1);
        assert_eq!(n.route_for(Addr::new(10, 0, 0, 1)), Some(5));
        assert!(n.remove_route(p));
        assert!(!n.remove_route(p));
        assert_eq!(n.route_for(Addr::new(10, 0, 0, 1)), None);
    }

    #[test]
    fn owns_addr() {
        let mut n = NodeInfo::new("h");
        n.addrs.push(Addr::new(192, 168, 1, 1));
        assert!(n.owns(Addr::new(192, 168, 1, 1)));
        assert!(!n.owns(Addr::new(192, 168, 1, 2)));
    }
}
