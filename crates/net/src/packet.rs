//! Packets.
//!
//! A [`Packet`] carries addressing, accounting metadata (creation time, hop
//! count) and a [`Payload`]. Control-plane layers (NAS, X2, transport
//! handshakes) attach typed messages via `Payload::control`, which upper
//! crates downcast — the substrate never needs to know their shape.

use crate::addr::Addr;
use dlte_sim::SimTime;
use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// Flow identifier used by traffic generators and the latency tracer.
pub type FlowId = u64;

/// Packet payload.
#[derive(Clone)]
pub enum Payload {
    /// Pure filler (size still counts on the wire).
    Empty,
    /// User-plane data belonging to a traced flow.
    Flow { flow: FlowId, seq: u64 },
    /// A typed control message (NAS, S1AP-ish, X2, transport frames).
    /// `Arc` keeps clones cheap and lets packets cross shard boundaries
    /// (the sharded engine moves events between worker threads).
    Control(Arc<dyn Any + Send + Sync>),
}

impl Payload {
    /// Wrap a typed control message.
    pub fn control<T: Any + Send + Sync>(msg: T) -> Payload {
        Payload::Control(Arc::new(msg))
    }

    /// Downcast a control payload to `&T`.
    pub fn as_control<T: Any>(&self) -> Option<&T> {
        match self {
            Payload::Control(rc) => rc.downcast_ref::<T>(),
            _ => None,
        }
    }

    /// The flow id, if this is flow data.
    pub fn flow_id(&self) -> Option<FlowId> {
        match self {
            Payload::Flow { flow, .. } => Some(*flow),
            _ => None,
        }
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::Empty => write!(f, "Empty"),
            Payload::Flow { flow, seq } => write!(f, "Flow({flow}#{seq})"),
            Payload::Control(_) => write!(f, "Control(..)"),
        }
    }
}

/// A tunnel header pushed by GTP-U encapsulation (see [`crate::gtp`]).
#[derive(Clone, Debug)]
pub struct TunnelHeader {
    /// Tunnel endpoint identifier.
    pub teid: u32,
    /// Inner (original) source/destination restored at decapsulation.
    pub inner_src: Addr,
    pub inner_dst: Addr,
}

/// A network packet.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Unique id for tracing.
    pub id: u64,
    pub src: Addr,
    pub dst: Addr,
    /// Current on-wire size including any tunnel overhead, bytes.
    pub size_bytes: u32,
    pub created_at: SimTime,
    pub payload: Payload,
    /// Stack of tunnel encapsulations (innermost last pushed).
    pub tunnels: Vec<TunnelHeader>,
    /// Router hops traversed so far.
    pub hops: u32,
    /// TTL — packets are dropped when it reaches zero (guards against
    /// routing loops in experiment topologies).
    pub ttl: u8,
}

impl Packet {
    /// Default TTL.
    pub const DEFAULT_TTL: u8 = 64;

    pub fn new(id: u64, src: Addr, dst: Addr, size_bytes: u32, now: SimTime) -> Packet {
        Packet {
            id,
            src,
            dst,
            size_bytes,
            created_at: now,
            payload: Payload::Empty,
            tunnels: Vec::new(),
            hops: 0,
            ttl: Self::DEFAULT_TTL,
        }
    }

    /// Builder-style payload attachment.
    pub fn with_payload(mut self, payload: Payload) -> Packet {
        self.payload = payload;
        self
    }

    /// True if currently tunnel-encapsulated.
    pub fn is_tunneled(&self) -> bool {
        !self.tunnels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;

    #[derive(Debug, PartialEq)]
    struct FakeNas {
        imsi: u64,
    }

    #[test]
    fn control_payload_downcasts() {
        let p = Packet::new(
            1,
            Addr::new(10, 0, 0, 1),
            Addr::new(10, 0, 0, 2),
            100,
            SimTime::ZERO,
        )
        .with_payload(Payload::control(FakeNas { imsi: 42 }));
        let msg = p.payload.as_control::<FakeNas>().expect("downcast");
        assert_eq!(msg.imsi, 42);
        // Wrong type → None.
        assert!(p.payload.as_control::<String>().is_none());
        assert_eq!(p.payload.flow_id(), None);
    }

    #[test]
    fn flow_payload_exposes_id() {
        let payload = Payload::Flow { flow: 7, seq: 3 };
        assert_eq!(payload.flow_id(), Some(7));
        assert!(payload.as_control::<FakeNas>().is_none());
    }

    #[test]
    fn clone_shares_control_arc() {
        let p = Payload::control(FakeNas { imsi: 1 });
        let q = p.clone();
        assert_eq!(
            p.as_control::<FakeNas>().unwrap(),
            q.as_control::<FakeNas>().unwrap()
        );
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", Payload::Empty), "Empty");
        assert_eq!(
            format!("{:?}", Payload::Flow { flow: 1, seq: 2 }),
            "Flow(1#2)"
        );
        assert_eq!(
            format!("{:?}", Payload::control(FakeNas { imsi: 0 })),
            "Control(..)"
        );
    }
}
